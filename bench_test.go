package openmxsim

// One testing.B benchmark per table and figure of the paper, at reduced
// scale (Options.Quick) so `go test -bench` stays tractable. Each iteration
// regenerates the full experiment; the interesting output is the experiment
// report itself, printed once via -v or the omxbench command.

import (
	"testing"

	"openmxsim/internal/exp"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner, err := exp.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := exp.Options{Seed: 1, Quick: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := runner(opts)
		if len(rep.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkFig4MessageRate regenerates Figure 4 (message rate vs
// coalescing delay for three host configurations).
func BenchmarkFig4MessageRate(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkOverhead regenerates the Section IV-B2 per-packet interrupt
// overhead measurement.
func BenchmarkOverhead(b *testing.B) { benchExperiment(b, "overhead") }

// BenchmarkFig5PingPong regenerates Figure 5 (ping-pong, coalescing vs
// disabled).
func BenchmarkFig5PingPong(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6PingPongOpenMX regenerates Figure 6 (ping-pong with the
// Open-MX coalescing firmware).
func BenchmarkFig6PingPongOpenMX(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkTable1MessageRate regenerates Table I (message rate by size and
// strategy).
func BenchmarkTable1MessageRate(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2LargeAnatomy regenerates Table II (234 KiB transfer time
// and interrupt counts).
func BenchmarkTable2LargeAnatomy(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable2MarkerAblation regenerates the Section IV-C3 per-marker
// ablation.
func BenchmarkTable2MarkerAblation(b *testing.B) { benchExperiment(b, "table2-ablation") }

// BenchmarkTable3Misorder regenerates Table III (mis-ordering impact on
// medium messages).
func BenchmarkTable3Misorder(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTable4NAS regenerates Table IV at reduced classes (NAS execution
// time by strategy).
func BenchmarkTable4NAS(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkTable5Interrupts regenerates Table V at reduced classes (IS
// interrupt counts).
func BenchmarkTable5Interrupts(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkAdaptiveExtension regenerates the Section VI adaptive-coalescing
// comparison.
func BenchmarkAdaptiveExtension(b *testing.B) { benchExperiment(b, "adaptive") }

// BenchmarkMultiqueueExtension regenerates the Section VI multiqueue
// comparison.
func BenchmarkMultiqueueExtension(b *testing.B) { benchExperiment(b, "multiqueue") }

// BenchmarkJumboExtension regenerates the Section IV-A MTU-9000 check.
func BenchmarkJumboExtension(b *testing.B) { benchExperiment(b, "jumbo") }
