package main

// Benchmark mode: measure each experiment (wall time and allocations for
// one full regeneration, the moral equivalent of `go test -bench -benchtime
// 1x`) and write one machine-readable BENCH_<id>.json per experiment, so
// every PR can record the simulator's performance trajectory. An optional
// baseline file turns the run into a regression gate on allocs/op.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"openmxsim/internal/exp"
)

// benchRecord is the schema of BENCH_<id>.json.
type benchRecord struct {
	ID          string `json:"id"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	Rows        int    `json:"rows"`
	Quick       bool   `json:"quick"`
	Seed        uint64 `json:"seed"`
	Reps        int    `json:"reps"`
}

// measure runs one experiment reps times and keeps the fastest wall time
// with its allocation counts (runs are deterministic, so allocations differ
// only by runtime noise; the minimum is the cleanest sample).
func measure(id string, runner exp.Runner, opts exp.Options, reps int) benchRecord {
	rec := benchRecord{ID: id, Quick: opts.Quick, Seed: opts.Seed, Reps: reps}
	for r := 0; r < reps; r++ {
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		rep := runner(opts)
		ns := time.Since(start).Nanoseconds()
		runtime.ReadMemStats(&m1)
		if r == 0 || ns < rec.NsPerOp {
			rec.NsPerOp = ns
			rec.BytesPerOp = m1.TotalAlloc - m0.TotalAlloc
			rec.AllocsPerOp = m1.Mallocs - m0.Mallocs
			rec.Rows = len(rep.Rows)
		}
	}
	return rec
}

// runBenchMode measures the given experiments, writes BENCH_<id>.json files
// into outDir, and (with a baseline) enforces the allocs/op gate.
func runBenchMode(ids []string, opts exp.Options, reps int, outDir, baselinePath string, maxRegress float64) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	var records []benchRecord
	for _, id := range ids {
		runner, err := exp.Get(id)
		if err != nil {
			return err
		}
		rec := measure(id, runner, opts, reps)
		records = append(records, rec)
		b, err := json.MarshalIndent(&rec, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(outDir, "BENCH_"+id+".json")
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[bench %-16s %12d ns/op %12d B/op %10d allocs/op]\n",
			id, rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp)
	}
	if b, err := json.MarshalIndent(records, "", "  "); err == nil {
		if err := os.WriteFile(filepath.Join(outDir, "BENCH_all.json"), append(b, '\n'), 0o644); err != nil {
			return err
		}
	}
	if baselinePath == "" {
		return nil
	}
	return checkBaseline(records, baselinePath, maxRegress)
}

// checkBaseline fails when any experiment's allocs/op exceeds the baseline
// by more than maxRegress (fractional). Wall time is not gated: it varies
// with the machine, while allocation counts of a deterministic simulation
// do not.
func checkBaseline(records []benchRecord, path string, maxRegress float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench baseline: %w", err)
	}
	var base []benchRecord
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("bench baseline %s: %w", path, err)
	}
	byID := make(map[string]benchRecord, len(base))
	for _, b := range base {
		byID[b.ID] = b
	}
	var failures []string
	for _, rec := range records {
		b, ok := byID[rec.ID]
		if !ok || b.AllocsPerOp == 0 {
			continue // new experiment or unusable baseline entry
		}
		limit := uint64(float64(b.AllocsPerOp) * (1 + maxRegress))
		if rec.AllocsPerOp > limit {
			failures = append(failures, fmt.Sprintf(
				"%s: %d allocs/op vs baseline %d (limit %d)",
				rec.ID, rec.AllocsPerOp, b.AllocsPerOp, limit))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "ALLOC REGRESSION:", f)
		}
		return fmt.Errorf("bench: %d experiment(s) regressed allocs/op beyond %.0f%%", len(failures), maxRegress*100)
	}
	fmt.Fprintf(os.Stderr, "[bench baseline ok: %d experiments within %.0f%% of %s]\n",
		len(records), maxRegress*100, path)
	return nil
}
