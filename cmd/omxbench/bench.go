package main

// Benchmark mode: measure each experiment (wall time and allocations for
// one full regeneration, the moral equivalent of `go test -bench -benchtime
// 1x`) and write one machine-readable BENCH_<id>.json per experiment, so
// every PR can record the simulator's performance trajectory. An optional
// baseline file turns the run into a regression gate: allocation counts are
// deterministic and therefore gate hard (exit non-zero), while wall time
// varies with the machine and only warns. The comparison can also be
// emitted as a Markdown table for CI job summaries.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"time"

	"openmxsim/internal/cluster"
	"openmxsim/internal/exp"
	"openmxsim/internal/fabric"
	"openmxsim/internal/sim"
	"openmxsim/internal/sweep"
)

// benchRecord is the schema of BENCH_<id>.json.
type benchRecord struct {
	ID          string `json:"id"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	Rows        int    `json:"rows"`
	Quick       bool   `json:"quick"`
	Seed        uint64 `json:"seed"`
	Reps        int    `json:"reps"`
}

// measure runs one experiment reps times and keeps the fastest wall time
// with its allocation counts (runs are deterministic, so allocations differ
// only by runtime noise; the minimum is the cleanest sample).
func measure(id string, runner exp.Runner, opts exp.Options, reps int) benchRecord {
	rec := benchRecord{ID: id, Quick: opts.Quick, Seed: opts.Seed, Reps: reps}
	for r := 0; r < reps; r++ {
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		rep := runner(opts)
		ns := time.Since(start).Nanoseconds()
		runtime.ReadMemStats(&m1)
		if r == 0 || ns < rec.NsPerOp {
			rec.NsPerOp = ns
			rec.BytesPerOp = m1.TotalAlloc - m0.TotalAlloc
			rec.AllocsPerOp = m1.Mallocs - m0.Mallocs
			rec.Rows = len(rep.Rows)
		}
	}
	return rec
}

// runBenchMode measures the given experiments, writes BENCH_<id>.json files
// into outDir, and (with a baseline) enforces the allocs/op gate, warns on
// ns/op regressions, and optionally writes a Markdown comparison table.
func runBenchMode(ids []string, opts exp.Options, reps int, outDir, baselinePath string, maxRegress, maxTimeRegress float64, summaryPath string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	var records []benchRecord
	for _, id := range ids {
		runner, err := exp.Get(id)
		if err != nil {
			return err
		}
		rec := measure(id, runner, opts, reps)
		records = append(records, rec)
		b, err := json.MarshalIndent(&rec, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(outDir, "BENCH_"+id+".json")
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "[bench %-16s %12d ns/op %12d B/op %10d allocs/op]\n",
			id, rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp)
	}
	if b, err := json.MarshalIndent(records, "", "  "); err == nil {
		if err := os.WriteFile(filepath.Join(outDir, "BENCH_all.json"), append(b, '\n'), 0o644); err != nil {
			return err
		}
	}
	var gateErr error
	if baselinePath == "" {
		if summaryPath != "" {
			// No baseline to compare against: the summary still gets the raw
			// measurements rather than silently staying empty.
			var md strings.Builder
			md.WriteString("### Benchmark measurements (no baseline)\n\n")
			md.WriteString("| experiment | ns/op | B/op | allocs/op |\n|---|---:|---:|---:|\n")
			var ns, bs, allocs []float64
			for _, rec := range records {
				fmt.Fprintf(&md, "| %s | %d | %d | %d |\n", rec.ID, rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp)
				ns = append(ns, float64(rec.NsPerOp))
				bs = append(bs, float64(rec.BytesPerOp))
				allocs = append(allocs, float64(rec.AllocsPerOp))
			}
			fmt.Fprintf(&md, "| **geomean** | %.0f | %.0f | %.0f |\n",
				geomean(ns), geomean(bs), geomean(allocs))
			if err := writeSummary(summaryPath, md.String()); err != nil {
				return err
			}
		}
	} else {
		gateErr = checkBaseline(records, baselinePath, maxRegress, maxTimeRegress, summaryPath)
	}
	// The parallel-engine A/B rides along with every summary request so the
	// job summary always shows what sharding buys (or costs) on this
	// machine; it runs after the gate so a gate failure still reports it.
	if summaryPath != "" {
		if err := writeSummary(summaryPath, parAB(opts.Seed)); err != nil {
			return err
		}
	}
	return gateErr
}

// parAB measures the sharded conservative engine against the serial
// reference on the workload parallelism exists for — a 64-node incast on
// the bounded output-queued fabric — and returns a Markdown section for
// the job summary. The two runs must produce identical measurements (the
// engine's determinism contract); the row reports the wall-clock ratio,
// which depends on the machine's core count (a single-core runner pays the
// barrier overhead with no parallelism to win it back).
func parAB(seed uint64) string {
	cfg := cluster.Paper()
	cfg.Seed = seed
	cfg.Nodes = 64
	cfg.Topology = fabric.Topology{
		Kind:              fabric.TopologyOutputQueued,
		EgressQueueFrames: 64,
	}
	run := func(par int) (sweep.IncastResult, time.Duration) {
		c := cfg
		c.Parallelism = par
		start := time.Now()
		res := sweep.RunIncast(sweep.IncastSpec{
			Cluster: c, Senders: cfg.Nodes - 1, Size: 128,
			Warmup: 5 * sim.Millisecond, Measure: 40 * sim.Millisecond,
		})
		return res, time.Since(start)
	}
	r1, t1 := run(1)
	r8, t8 := run(8)
	// Struct equality via reflect: IncastResult grew a port-stats slice, so
	// == no longer compiles; DeepEqual keeps the identity check exhaustive.
	identical := reflect.DeepEqual(r1, r8)

	var md strings.Builder
	fmt.Fprintf(&md, "### Parallel engine A/B: 64-node incast, %d cores\n\n", runtime.NumCPU())
	md.WriteString("| par | wall ms | speedup | msg/s | identical |\n|---:|---:|---:|---:|---|\n")
	fmt.Fprintf(&md, "| 1 | %.0f | 1.00x | %.0f | — |\n", float64(t1.Microseconds())/1000, r1.Rate)
	fmt.Fprintf(&md, "| 8 | %.0f | %.2fx | %.0f | %v |\n",
		float64(t8.Microseconds())/1000, t1.Seconds()/t8.Seconds(), r8.Rate, identical)
	fmt.Fprintf(os.Stderr, "[bench par A/B: par1 %.0fms par8 %.0fms speedup %.2fx identical %v]\n",
		float64(t1.Microseconds())/1000, float64(t8.Microseconds())/1000,
		t1.Seconds()/t8.Seconds(), identical)
	return md.String()
}

// checkBaseline fails when any experiment's allocs/op exceeds the baseline
// by more than maxRegress (fractional). Wall time regressions beyond
// maxTimeRegress only warn: runners vary, while allocation counts of a
// deterministic simulation do not. When summaryPath is non-empty the full
// comparison is also written there as a Markdown table (CI appends it to
// the job summary).
func checkBaseline(records []benchRecord, path string, maxRegress, maxTimeRegress float64, summaryPath string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench baseline: %w", err)
	}
	var base []benchRecord
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("bench baseline %s: %w", path, err)
	}
	byID := make(map[string]benchRecord, len(base))
	for _, b := range base {
		byID[b.ID] = b
	}
	var failures, warnings []string
	var timeRatios, allocRatios []float64
	var md strings.Builder
	fmt.Fprintf(&md, "### Benchmark comparison vs `%s`\n\n", path)
	md.WriteString("| experiment | ns/op | vs base | allocs/op | vs base | status |\n")
	md.WriteString("|---|---:|---:|---:|---:|---|\n")
	for _, rec := range records {
		b, ok := byID[rec.ID]
		if !ok || b.AllocsPerOp == 0 {
			fmt.Fprintf(&md, "| %s | %d | — | %d | — | new |\n", rec.ID, rec.NsPerOp, rec.AllocsPerOp)
			continue // new experiment or unusable baseline entry
		}
		allocRatio := float64(rec.AllocsPerOp) / float64(b.AllocsPerOp)
		allocRatios = append(allocRatios, allocRatio)
		// A zero baseline ns_per_op (older or hand-edited snapshot) only
		// disables the time comparison — the allocs gate still applies.
		timeCell := "—"
		timeRatio := 0.0
		if b.NsPerOp > 0 {
			timeRatio = float64(rec.NsPerOp) / float64(b.NsPerOp)
			timeCell = fmt.Sprintf("%+.1f%%", (timeRatio-1)*100)
			timeRatios = append(timeRatios, timeRatio)
		}
		// The two gates are independent: an experiment can regress both, and
		// the report must say so for both.
		var statuses []string
		if rec.AllocsPerOp > uint64(float64(b.AllocsPerOp)*(1+maxRegress)) {
			statuses = append(statuses, "ALLOC REGRESSION")
			failures = append(failures, fmt.Sprintf(
				"%s: %d allocs/op vs baseline %d (limit %.0f%%)",
				rec.ID, rec.AllocsPerOp, b.AllocsPerOp, maxRegress*100))
		}
		if timeRatio > 1+maxTimeRegress {
			statuses = append(statuses, "time regression (warning)")
			warnings = append(warnings, fmt.Sprintf(
				"%s: %d ns/op vs baseline %d (+%.0f%%, threshold +%.0f%%)",
				rec.ID, rec.NsPerOp, b.NsPerOp, (timeRatio-1)*100, maxTimeRegress*100))
		}
		status := "ok"
		if len(statuses) > 0 {
			status = strings.Join(statuses, ", ")
		}
		fmt.Fprintf(&md, "| %s | %d | %s | %d | %+.1f%% | %s |\n",
			rec.ID, rec.NsPerOp, timeCell, rec.AllocsPerOp, (allocRatio-1)*100, status)
	}
	// The geomean row is the run's one headline number: the average
	// multiplicative drift vs the baseline across all comparable
	// experiments (geometric, so a 2x regression and a 2x win cancel).
	timeGeo, allocGeo := "—", "—"
	if len(timeRatios) > 0 {
		timeGeo = fmt.Sprintf("%+.1f%%", (geomean(timeRatios)-1)*100)
	}
	if len(allocRatios) > 0 {
		allocGeo = fmt.Sprintf("%+.1f%%", (geomean(allocRatios)-1)*100)
	}
	fmt.Fprintf(&md, "| **geomean** | — | %s | — | %s | %d of %d compared |\n",
		timeGeo, allocGeo, len(allocRatios), len(records))
	if summaryPath != "" {
		if err := writeSummary(summaryPath, md.String()); err != nil {
			return err
		}
	}
	for _, w := range warnings {
		fmt.Fprintln(os.Stderr, "TIME REGRESSION (warning):", w)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "ALLOC REGRESSION:", f)
		}
		return fmt.Errorf("bench: %d experiment(s) regressed allocs/op beyond %.0f%%", len(failures), maxRegress*100)
	}
	fmt.Fprintf(os.Stderr, "[bench baseline ok: %d experiments, %d time warnings, allocs within %.0f%% of %s]\n",
		len(records), len(warnings), maxRegress*100, path)
	return nil
}

// geomean returns the geometric mean of vs (0 when empty; zero entries
// would collapse the product and are skipped).
func geomean(vs []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vs {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// writeSummary appends markdown to the given file ("-" = stdout). Appending
// (not truncating) matches $GITHUB_STEP_SUMMARY semantics when CI points it
// straight at that file.
func writeSummary(path, md string) error {
	var w io.WriteCloser
	if path == "-" {
		w = os.Stdout
	} else {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		w = f
	}
	_, err := io.WriteString(w, md+"\n")
	if path != "-" {
		if cerr := w.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
