// Command omxbench regenerates the paper's tables and figures.
//
// Usage:
//
//	omxbench -run table1            # one experiment
//	omxbench -run fig4,fig5,table4  # several
//	omxbench -run all               # everything (minutes at full scale)
//	omxbench -quick                 # reduced durations (for CI)
//	omxbench -list                  # available experiments
//	omxbench -csv                   # CSV instead of aligned tables
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"openmxsim/internal/exp"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	quick := flag.Bool("quick", false, "reduced durations/iterations")
	seed := flag.Uint64("seed", 1, "simulation seed (equal seeds reproduce bit-identical results)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Printf("%-16s %s\n", id, exp.Describe(id))
		}
		return
	}

	ids := exp.IDs()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}
	opts := exp.Options{Seed: *seed, Quick: *quick}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, err := exp.Get(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start := time.Now()
		rep := runner(opts)
		if *csv {
			fmt.Print(rep.CSV())
		} else {
			fmt.Println(rep)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %.1fs]\n", id, time.Since(start).Seconds())
	}
}
