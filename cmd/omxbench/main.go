// Command omxbench regenerates the paper's tables and figures.
//
// Usage:
//
//	omxbench -run table1            # one experiment
//	omxbench -run fig4,fig5,table4  # several
//	omxbench -run all               # everything (minutes at full scale)
//	omxbench -quick                 # reduced durations (for CI)
//	omxbench -list                  # available experiments
//	omxbench -csv                   # CSV instead of aligned tables
//	omxbench -json                  # JSON reports
//
// Benchmark mode measures each experiment instead of printing its report,
// writing machine-readable BENCH_<id>.json files (ns/op, B/op, allocs/op)
// plus a combined BENCH_all.json, and optionally gates on a baseline —
// hard on allocs/op (deterministic), warn-only on ns/op (machine-bound):
//
//	omxbench -bench -quick                                  # measure all, write bench-out/
//	omxbench -bench -quick -benchout dir -benchreps 3       # best of 3
//	omxbench -bench -quick -baseline bench/BENCH_baseline.json  # fail >20% allocs/op, warn >10% ns/op
//	omxbench -bench -quick -baseline ... -benchsummary "$GITHUB_STEP_SUMMARY"  # Markdown table for CI
//
// Every command accepts -sched wheel|heap to select the event scheduler
// (the O(1) timing wheel is the default; the legacy 4-ary heap is kept for
// differential runs — reports are bit-identical under either).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"openmxsim/internal/cliflag"
	"openmxsim/internal/exp"
	"openmxsim/internal/trace"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	quick := flag.Bool("quick", false, "reduced durations/iterations")
	seed := flag.Uint64("seed", 1, "simulation seed (equal seeds reproduce bit-identical results)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := flag.Bool("json", false, "emit JSON instead of aligned tables")
	list := flag.Bool("list", false, "list experiments and exit")
	bench := flag.Bool("bench", false, "benchmark mode: measure experiments and write BENCH_<id>.json")
	benchOut := flag.String("benchout", "bench-out", "output directory for BENCH_*.json (bench mode)")
	benchReps := flag.Int("benchreps", 1, "runs per experiment in bench mode (fastest is reported)")
	baseline := flag.String("baseline", "", "baseline BENCH_all.json to gate allocs/op against (bench mode)")
	maxRegress := flag.Float64("maxregress", 0.20, "allowed fractional allocs/op regression vs baseline")
	maxTimeRegress := flag.Float64("maxtimeregress", 0.10, "ns/op regression vs baseline that triggers a warning")
	sched := cliflag.Sched()
	par := cliflag.Par()
	summary := flag.String("benchsummary", "", "write a Markdown baseline-comparison table to this file (bench mode)")
	traceDir := flag.String("trace-dir", "", "write per-experiment telemetry here: <id>.trace.json timelines and (with -sample) <id>.series.csv")
	sampleSpec := flag.String("sample", "", "virtual-time metric sampling interval for -trace-dir series, e.g. 200us ('' = events only)")
	flag.Parse()

	if err := cliflag.ApplySched(*sched); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *list {
		for _, id := range exp.IDs() {
			fmt.Printf("%-16s %s\n", id, exp.Describe(id))
		}
		return
	}

	ids := exp.IDs()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}
	for i, id := range ids {
		ids[i] = strings.TrimSpace(id)
	}
	opts := exp.Options{Seed: *seed, Quick: *quick, Par: *par}

	if *bench {
		if err := runBenchMode(ids, opts, *benchReps, *benchOut, *baseline, *maxRegress, *maxTimeRegress, *summary); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	// In JSON mode the reports accumulate into one array so stdout is a
	// single valid document even with -run all (and `[]`, not `null`, when
	// nothing ran).
	sampleEvery, err := cliflag.SampleInterval(*sampleSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	reports := []*exp.Report{}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, err := exp.Get(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// One fresh recorder per experiment keeps run indices local to the
		// experiment's own clusters; only experiments that opted into
		// telemetry attach it, so the files appear only when non-empty.
		opts.Trace = nil
		if *traceDir != "" {
			opts.Trace = trace.New(trace.Config{SampleEvery: sampleEvery, Events: true})
		}
		start := time.Now()
		rep := runner(opts)
		if rec := opts.Trace; rec != nil && rec.Runs() > 0 {
			if err := writeTelemetry(*traceDir, id, rec, sampleEvery > 0); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		switch {
		case *jsonOut:
			reports = append(reports, rep)
		case *csv:
			fmt.Print(rep.CSV())
		default:
			fmt.Println(rep)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %.1fs]\n", id, time.Since(start).Seconds())
	}
	if *jsonOut {
		b, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", b)
	}
}

// writeTelemetry writes one experiment's recorder to dir: the Chrome
// trace-event timeline always, the sampled series only when sampling was on.
func writeTelemetry(dir, id string, rec *trace.Recorder, sampled bool) error {
	write := func(path string, fn func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(filepath.Join(dir, id+".trace.json"), rec.WriteChromeTrace); err != nil {
		return err
	}
	if sampled {
		return write(filepath.Join(dir, id+".series.csv"), rec.WriteSeriesCSV)
	}
	return nil
}
