// Command omxbench regenerates the paper's tables and figures.
//
// Usage:
//
//	omxbench -run table1            # one experiment
//	omxbench -run fig4,fig5,table4  # several
//	omxbench -run all               # everything (minutes at full scale)
//	omxbench -quick                 # reduced durations (for CI)
//	omxbench -list                  # available experiments
//	omxbench -csv                   # CSV instead of aligned tables
//	omxbench -json                  # JSON (for BENCH_*.json trajectories)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"openmxsim/internal/exp"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	quick := flag.Bool("quick", false, "reduced durations/iterations")
	seed := flag.Uint64("seed", 1, "simulation seed (equal seeds reproduce bit-identical results)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := flag.Bool("json", false, "emit JSON instead of aligned tables")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Printf("%-16s %s\n", id, exp.Describe(id))
		}
		return
	}

	ids := exp.IDs()
	if *run != "all" {
		ids = strings.Split(*run, ",")
	}
	opts := exp.Options{Seed: *seed, Quick: *quick}
	// In JSON mode the reports accumulate into one array so stdout is a
	// single valid document even with -run all (and `[]`, not `null`, when
	// nothing ran).
	reports := []*exp.Report{}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, err := exp.Get(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start := time.Now()
		rep := runner(opts)
		switch {
		case *jsonOut:
			reports = append(reports, rep)
		case *csv:
			fmt.Print(rep.CSV())
		default:
			fmt.Println(rep)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %.1fs]\n", id, time.Since(start).Seconds())
	}
	if *jsonOut {
		b, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", b)
	}
}
