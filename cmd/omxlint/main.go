// Command omxlint runs the repository's determinism-and-hot-path analyzer
// suite (internal/lint) over Go packages, optionally alongside a selected
// set of go vet passes. CI runs it on every PR; it exits non-zero on any
// unaudited finding.
//
// Usage:
//
//	omxlint [-vet] [-v] [packages]     # default ./... from the module root
//	omxlint -dir path/to/dir           # lint a bare directory (fixtures)
//	omxlint -list                      # describe the analyzers
//
// See the README "Determinism invariants" section for the rules and the
// //omxlint:allow annotation vocabulary.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"openmxsim/internal/lint"
)

func main() {
	var (
		list = flag.Bool("list", false, "describe the analyzers and exit")
		dir  = flag.String("dir", "", "lint a bare directory of Go files instead of package patterns")
		vet  = flag.Bool("vet", false, "also run the selected go vet passes (atomic, copylocks, loopclosure, unusedresult)")
		verb = flag.Bool("v", false, "print the per-run summary even when clean")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	var (
		pkgs []*lint.Package
		err  error
	)
	patterns := flag.Args()
	if *dir != "" {
		if len(patterns) > 0 {
			fatalf("omxlint: -dir and package patterns are mutually exclusive")
		}
		var pkg *lint.Package
		pkg, err = lint.LoadDir(*dir)
		if pkg != nil {
			pkgs = []*lint.Package{pkg}
		}
	} else {
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		var root string
		root, err = lint.ModuleRoot()
		if err == nil {
			pkgs, err = lint.Load(root, patterns...)
		}
	}
	if err != nil {
		fatalf("omxlint: %v", err)
	}

	findings, sum := lint.Run(pkgs, lint.Analyzers())
	for _, f := range findings {
		fmt.Println(f)
	}
	if *verb || len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "omxlint: %d packages, %d findings, %d hotpath functions, %d allow directives (%d suppressions)\n",
			sum.Packages, sum.Findings, sum.Hotpaths, sum.Allows, sum.Suppressed)
	}

	failed := len(findings) > 0
	if *vet && *dir == "" {
		if err := runVet(patterns); err != nil {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runVet executes the vet passes omxlint vouches for next to its own
// analyzers. (Listing analyzer flags explicitly restricts vet to exactly
// those passes.)
func runVet(patterns []string) error {
	args := []string{"vet", "-atomic", "-copylocks", "-loopclosure", "-unusedresult", "--"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	return cmd.Run()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
