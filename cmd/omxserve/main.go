// Command omxserve runs the simulator as a fault-tolerant service: an
// HTTP/JSON control plane over the sweep and tune executors with job
// supervision (deadlines, cancellation, panic isolation, bounded
// retries), graceful degradation (bounded admission queue shedding with
// 429, per-client caps, SIGTERM drain), and a crash-safe
// content-addressed result cache shared with the offline CLIs.
//
// Examples:
//
//	omxserve                                   # loopback, no cache
//	omxserve -addr 127.0.0.1:9090 -cache-dir /var/tmp/omxcache
//	omxserve -max-jobs 16 -job-timeout 2m -executors 2
//
// Submit work with plain HTTP — the request vocabulary is exactly the
// omxsweep/omxtune flag vocabulary:
//
//	curl -d '{"strategies":"timeout,openmx","delays":"0:100:25"}' localhost:8080/v1/sweep
//	curl localhost:8080/v1/jobs/j1/stream        # NDJSON per-point results
//	curl localhost:8080/v1/jobs/j1/result        # byte-identical to omxsweep -out -
//
// SIGTERM or SIGINT drains: submissions stop (503), queued jobs are
// cancelled, running jobs finish within -drain-timeout, and the process
// exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"openmxsim/internal/cliflag"
	"openmxsim/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := cliflag.Addr()
	cacheDir := cliflag.CacheDir()
	maxJobs := cliflag.MaxJobs()
	jobTimeout := cliflag.JobTimeout()
	maxPerClient := flag.Int("max-per-client", 4, "per-client in-flight job cap; beyond it submissions are shed with 429")
	executors := flag.Int("executors", 1, "jobs run concurrently (each parallelizes internally via -workers)")
	workers := flag.Int("workers", 0, "worker goroutines per job (0 = GOMAXPROCS)")
	par := cliflag.Par()
	retries := flag.Int("retries", 2, "max retries per job on transient failures")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "SIGTERM drain deadline before running jobs are force-cancelled")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/")
	sched := cliflag.Sched()
	flag.Parse()

	if err := cliflag.ApplySched(*sched); err != nil {
		return fail(err)
	}
	logger := log.New(os.Stderr, "omxserve: ", log.LstdFlags)

	var cache *serve.Cache
	if *cacheDir != "" {
		var err error
		cache, err = serve.OpenCache(*cacheDir, serve.ResultsVersion)
		if err != nil {
			return fail(err)
		}
		st := cache.Stats()
		logger.Printf("cache %s: %d entries verified, %d quarantined", cache.Dir(), st.Scanned-st.ScanQuarantined, st.ScanQuarantined)
	}

	cfgTimeout := *jobTimeout
	if cfgTimeout == 0 {
		cfgTimeout = -1 // Config treats 0 as "default"; the flag's 0 means none
	}
	srv := serve.New(serve.Config{
		Cache:        cache,
		MaxQueue:     *maxJobs,
		MaxPerClient: *maxPerClient,
		JobTimeout:   cfgTimeout,
		Workers:      *workers,
		Par:          *par,
		Executors:    *executors,
		Retry:        serve.RetryPolicy{Max: *retries},
		Log:          logger,
	})
	var handler http.Handler = srv
	if *pprofOn {
		// The profiling surface is opt-in: it exposes stacks, heap contents,
		// and CPU profiles, which do not belong on a default listener even a
		// loopback one. The wrapper mux routes /debug/pprof/ to the stock
		// handlers and everything else to the service unchanged.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", srv)
		handler = mux
		logger.Printf("pprof handlers exposed under /debug/pprof/")
	}
	hs := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	serveErr := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		serveErr <- hs.ListenAndServe()
	}()

	select {
	case err := <-serveErr:
		return fail(err) // bind failure or listener death; nothing to drain
	case <-ctx.Done():
	}
	logger.Printf("signal received; draining (deadline %v)", *drainTimeout)
	drainErr := srv.Drain(*drainTimeout)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("http shutdown: %v", err)
	}
	if drainErr != nil {
		logger.Printf("%v", drainErr)
		return 1
	}
	logger.Printf("drained cleanly")
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, err)
	return 1
}
