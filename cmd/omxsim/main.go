// Command omxsim runs a single custom scenario: a workload (pingpong, rate,
// incast, or a NAS benchmark) under a chosen coalescing strategy, host
// configuration, and fabric topology, printing the measurements and
// interrupt statistics.
//
// Examples:
//
//	omxsim -workload pingpong -strategy openmx -size 128
//	omxsim -workload pingpong -strategy openmx -bg 2 -qframes 64
//	omxsim -workload rate -strategy disabled -size 0
//	omxsim -workload incast -nodes 9 -strategy timeout -qframes 64
//	omxsim -workload nas -bench is -class B -ranks 16 -strategy stream
//	omxsim -workload pingpong -strategy timeout -delay 30 -irq single -nosleep
//	omxsim -workload rate -strategy stream -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"openmxsim/internal/chaos"
	"openmxsim/internal/cliflag"
	"openmxsim/internal/cluster"
	"openmxsim/internal/exp"
	"openmxsim/internal/fabric"
	"openmxsim/internal/host"
	"openmxsim/internal/nas"
	"openmxsim/internal/sim"
	"openmxsim/internal/sweep"
	"openmxsim/internal/units"
)

func main() {
	workload := flag.String("workload", "pingpong", "pingpong | rate | incast | nas")
	strategy := flag.String("strategy", "timeout", "disabled | timeout | openmx | stream | adaptive | feedback")
	delay := flag.Int("delay", 75, "coalescing delay in microseconds")
	size := flag.Int("size", 128, "message size in bytes (pingpong/rate/incast)")
	iters := flag.Int("iters", 30, "ping-pong iterations")
	bench := flag.String("bench", "is", "NAS benchmark name")
	class := flag.String("class", "W", "NAS class (S W A B C)")
	ranks := flag.Int("ranks", 16, "NAS rank count")
	irq := flag.String("irq", "all", "IRQ routing: all | single | perqueue")
	queues := flag.Int("queues", 1, "NIC receive queues")
	nosleep := flag.Bool("nosleep", false, "disable C1E idle sleep")
	nodes := flag.Int("nodes", 2, "cluster node count (incast: senders = nodes-1)")
	bg := flag.Int("bg", 0, "background bulk streams congesting the receiver port (pingpong)")
	qframes := flag.Int("qframes", 0, "switch egress queue bound in frames (0 = ideal unbounded port)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	faultFlags := cliflag.Fault()
	burst := flag.Float64("burst", 1, "loss burstiness: 1 applies -drop as a uniform static fault; > 1 moves -drop into a bursty Gilbert-Elliott scenario of this mean episode length")
	flap := flag.String("flap", "", "link flaps as comma-separated node:down[:up] Go-duration offsets ('3:10ms:12ms'; no up = down forever)")
	sched := cliflag.Sched()
	par := cliflag.Par()
	traceFlags := cliflag.Trace()
	jsonOut := flag.Bool("json", false, "emit the result as JSON instead of text")
	flag.Parse()

	if err := cliflag.ApplySched(*sched); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	st, err := cliflag.Strategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := cluster.Paper()
	cfg.Seed = *seed
	cfg.Strategy = st
	cfg.CoalesceDelay = cliflag.DelayUS(*delay)
	cfg.SleepDisabled = *nosleep
	cfg.Queues = *queues
	cfg.Nodes = *nodes
	cfg.Parallelism = *par
	if *qframes > 0 {
		cfg.Topology = fabric.Topology{
			Kind:              fabric.TopologyOutputQueued,
			EgressQueueFrames: *qframes,
		}
	}
	cfg.IRQPolicy, err = host.ParseIRQPolicy(*irq)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fault, err := faultFlags.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *burst > 1 && fault != nil && fault.DropProb > 0 {
		// Bursty loss needs per-frame chain state: route the drop
		// probability through the chaos scenario layer instead of the
		// static fault, leaving any dup/delay knobs where they were.
		cfg.Scenario = &chaos.Scenario{Loss: chaos.Bursty(fault.DropProb, *burst), Seed: *seed}
		fault.DropProb = 0
		if fault.DupProb == 0 && fault.DelayProb == 0 {
			fault = nil
		}
	}
	cfg.Fault = fault
	flaps, err := cliflag.Flaps(*flap)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(flaps) > 0 {
		if cfg.Scenario == nil {
			cfg.Scenario = &chaos.Scenario{Seed: *seed}
		}
		cfg.Scenario.Flaps = append(cfg.Scenario.Flaps, flaps...)
	}
	rec, err := traceFlags.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg.Trace = rec

	// emit prints v as JSON when -json is set; otherwise it runs text().
	emit := func(v any, text func()) {
		if !*jsonOut {
			text()
			return
		}
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", b)
	}

	// addTelemetry folds the optional observability payloads into a -json
	// body: per-port switch statistics (queued topologies only) and the
	// sampled metric series when -sample is on.
	addTelemetry := func(m map[string]any, ports []fabric.PortStats) map[string]any {
		if len(ports) > 0 {
			m["port_stats"] = ports
		}
		if rec != nil && rec.SampleEvery() > 0 {
			m["series"] = rec.Samples()
		}
		return m
	}

	switch *workload {
	case "pingpong":
		out, err := sweep.RunPingPongLoadedOutcome(cfg, []int{*size}, *iters, sweep.Background{Streams: *bg})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		lat := out.Latency
		emit(addTelemetry(map[string]any{
			"workload": "pingpong", "strategy": st.String(), "delay_us": *delay,
			"irq": cfg.IRQPolicy.String(), "size_bytes": *size,
			"bg_streams": *bg, "latency_ns": int64(lat[*size]),
		}, out.Ports), func() {
			fmt.Printf("one-way %s latency: %s (%s, delay %dus, irq %s, bg %d)\n",
				units.FormatBytes(*size), units.FormatDuration(lat[*size]), st, *delay, *irq, *bg)
		})
	case "incast":
		if *nodes < 2 {
			fmt.Fprintln(os.Stderr, "incast needs -nodes >= 2 (senders = nodes-1)")
			os.Exit(1)
		}
		res := sweep.RunIncast(sweep.IncastSpec{
			Cluster: cfg, Senders: *nodes - 1, Size: *size,
			Warmup: 5 * sim.Millisecond, Measure: 40 * sim.Millisecond,
		})
		emit(addTelemetry(map[string]any{
			"workload": "incast", "strategy": st.String(), "delay_us": *delay,
			"senders": *nodes - 1, "size_bytes": *size,
			"rate_msg_per_sec": res.Rate, "intr_per_sec": res.IntrRate,
			"port_drops": res.PortDrops, "max_queue_frames": res.MaxQueueFrames,
			"queue_wait_ns": res.QueueWaitNS,
		}, res.Ports), func() {
			fmt.Printf("incast %d->1 %s: %s msg/s, %s intr/s, %d drops, maxq %d (%s)\n",
				*nodes-1, units.FormatBytes(*size), units.FormatRate(res.Rate),
				units.FormatRate(res.IntrRate), res.PortDrops, res.MaxQueueFrames, st)
		})
	case "rate":
		rate := exp.MessageRate(cfg, *size, 20*sim.Millisecond, 100*sim.Millisecond)
		emit(addTelemetry(map[string]any{
			"workload": "rate", "strategy": st.String(), "delay_us": *delay,
			"irq": cfg.IRQPolicy.String(), "size_bytes": *size,
			"rate_msg_per_sec": rate,
		}, nil), func() {
			fmt.Printf("message rate %s: %s msg/s (%s, delay %dus, irq %s)\n",
				units.FormatBytes(*size), units.FormatRate(rate), st, *delay, *irq)
		})
	case "nas":
		wl, err := nas.Get(*bench, (*class)[0], *ranks)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := nas.Run(cfg, wl)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		emit(map[string]any{
			"workload": "nas", "bench": res.Workload, "strategy": st.String(),
			"delay_us": *delay, "irq": cfg.IRQPolicy.String(),
			"elapsed_ns": int64(res.Elapsed), "interrupts": res.Interrupts,
			"wakeups": res.Wakeups, "packets": res.PacketsDelivered,
		}, func() {
			fmt.Printf("%s: %s, %s interrupts, %d wakeups, %d packets (%s)\n",
				res.Workload, units.FormatDuration(res.Elapsed),
				units.FormatCount(float64(res.Interrupts)), res.Wakeups,
				res.PacketsDelivered, st)
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown -workload %q\n", *workload)
		os.Exit(1)
	}

	if err := traceFlags.WriteOutputs(rec); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
