// Command omxsweep runs a parallel parameter sweep over the simulator's
// tuning space — including the cluster-size and background-load axes of
// the shared-fabric extension — and writes machine-readable results. Every
// grid point is an independent deterministic simulation, so the sweep
// scales to all cores and the output is byte-identical regardless of
// worker count.
//
// Axes take comma-separated lists; delays also accept lo:hi:step ranges
// (microseconds). Examples:
//
//	omxsweep -strategies openmx,timeout -delays 0:100:25 -sizes 0,128,4096 -out sweep.json -workers 8
//	omxsweep -strategies disabled,timeout,openmx,stream -sizes 1,128,65536 -rate -csvout sweep.csv
//	omxsweep -delays 75 -irq round-robin,single-core -seeds 1,2,3 -out -
//	omxsweep -strategies timeout,openmx -sizes 128,4096 -bg 0,2 -out congested.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"openmxsim/internal/cliflag"
	"openmxsim/internal/serve"
	"openmxsim/internal/sweep"
	"openmxsim/internal/trace"
)

func main() {
	// The sweep body runs in run() so the profile-flushing defers execute
	// before the process exits with a failure status.
	os.Exit(run())
}

func run() int {
	strategies := flag.String("strategies", "disabled,timeout,openmx,stream", "comma-separated coalescing strategies")
	delays := flag.String("delays", "15:75:30", "coalescing delays in us: list (25,75) or range lo:hi:step")
	sizes := flag.String("sizes", "1,128,4096,65536", "comma-separated message sizes in bytes")
	irq := flag.String("irq", "round-robin", "comma-separated IRQ policies: round-robin | single-core | per-queue")
	queues := flag.String("queues", "1", "comma-separated NIC receive-queue counts")
	nodes := flag.String("nodes", "2", "comma-separated cluster node counts")
	bg := flag.String("bg", "0", "comma-separated background bulk-stream counts (congest the ping-pong)")
	seeds := flag.String("seeds", "1", "comma-separated simulation seeds")
	drops := flag.String("drop", "0", "comma-separated loss-rate axis in [0,1) (0 = clean fabric, no scenario installed)")
	bursts := flag.String("burst", "1", "comma-separated loss-burst axis: mean loss-episode length at equal average rate")
	iters := flag.Int("iters", 30, "ping-pong iterations per point")
	rate := flag.Bool("rate", false, "also measure message rate at every point")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	par := cliflag.Par()
	cacheDir := cliflag.CacheDir()
	qframes := flag.Int("qframes", 0, "switch egress queue bound in frames (0 = ideal unbounded port; -par > 1 needs it)")
	out := flag.String("out", "-", "JSON output path ('-' = stdout, '' = none)")
	csvOut := flag.String("csvout", "", "CSV output path ('-' = stdout, '' = none)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	sched := cliflag.Sched()
	traceFlags := cliflag.Trace()
	flag.Parse()

	if err := cliflag.ApplySched(*sched); err != nil {
		return fail(err)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // report the retained, not transient, picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	// The same string-axes vocabulary omxserve accepts over HTTP: one
	// parser, one grid, whichever way the sweep arrives.
	spec := cliflag.GridSpec{
		Strategies: *strategies, Delays: *delays, Sizes: *sizes,
		IRQ: *irq, Queues: *queues, Nodes: *nodes, Bg: *bg,
		Seeds: *seeds, Drop: *drops, Burst: *bursts,
		Iters: *iters, Rate: *rate, QFrames: *qframes,
		Sample: *traceFlags.Sample,
	}
	grid, err := spec.Grid()
	if err != nil {
		return fail(err)
	}
	grid.Par = *par

	// A timeline (-trace) or merged series file (-sample-out) needs one
	// recorder spanning every point; per-point sampling alone does not (each
	// point records privately, keeping the worker pool parallel).
	var rec *trace.Recorder
	if *traceFlags.Trace != "" || *traceFlags.SampleOut != "" {
		if rec, err = traceFlags.Build(); err != nil {
			return fail(err)
		}
		grid.Trace = rec
	}
	tracing := grid.Trace != nil

	// The crash-safe result cache omxserve uses, shared: a sweep run here
	// pre-warms the server, a server run answers this CLI instantly. The
	// key is the canonical grid — execution shape (-workers, -par) never
	// splits it, because results are byte-identical across both.
	var cache *serve.Cache
	if *cacheDir != "" {
		if cache, err = serve.OpenCache(*cacheDir, serve.ResultsVersion); err != nil {
			return fail(err)
		}
	}
	key, err := cache.Key("sweep", grid.Canonical())
	if err != nil {
		return fail(err)
	}

	var results sweep.Results
	var payload []byte
	// Tracing bypasses the cache in both directions: a hit would skip the
	// simulations the recorder exists to observe, and the run itself is
	// serialized (single worker), so its wall time is not representative.
	if p, ok := cache.Get(key); ok && !tracing {
		if err := json.Unmarshal(p, &results); err != nil {
			return fail(fmt.Errorf("cached entry %s undecodable: %w", key, err))
		}
		payload = p
		fmt.Fprintf(os.Stderr, "[%d points from cache %s]\n", len(results), *cacheDir)
	} else {
		poolSize := grid.Workers(*workers)
		if tracing {
			poolSize = 1 // the shared recorder forces a single worker
		}
		fmt.Fprintf(os.Stderr, "sweeping %d points on %d workers\n", grid.Size(), poolSize)
		start := time.Now()
		if results, err = sweep.Run(grid, *workers); err != nil {
			return fail(err)
		}
		var buf bytes.Buffer
		if err := results.WriteJSON(&buf); err != nil {
			return fail(err)
		}
		payload = buf.Bytes()
		if !tracing {
			if cerr := cache.Put(key, payload); cerr != nil {
				fmt.Fprintln(os.Stderr, cerr) // costs a future hit, not this run
			}
		}
		fmt.Fprintf(os.Stderr, "[%d points in %.2fs wall]\n",
			len(results), time.Since(start).Seconds())
	}

	failed := 0
	for _, r := range results {
		if r.Err != "" {
			failed++
			fmt.Fprintf(os.Stderr, "point %d failed: %s\n", r.Index, r.Err)
		}
	}
	// JSON output re-emits the payload bytes verbatim so fresh runs,
	// cache hits, and the server's /result body are all byte-identical.
	if err := emit(*out, func(w io.Writer) error { _, werr := w.Write(payload); return werr }); err != nil {
		return fail(err)
	}
	if err := emit(*csvOut, results.WriteCSV); err != nil {
		return fail(err)
	}
	if err := traceFlags.WriteOutputs(rec); err != nil {
		return fail(err)
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// emit writes via fn to path: stdout for "-", nothing for "".
func emit(path string, fn func(w io.Writer) error) error {
	switch path {
	case "":
		return nil
	case "-":
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fail reports err and yields the failure exit code, letting deferred
// profile writers run (unlike os.Exit).
func fail(err error) int {
	fmt.Fprintln(os.Stderr, err)
	return 1
}
