// Command omxsweep runs a parallel parameter sweep over the simulator's
// tuning space — including the cluster-size and background-load axes of
// the shared-fabric extension — and writes machine-readable results. Every
// grid point is an independent deterministic simulation, so the sweep
// scales to all cores and the output is byte-identical regardless of
// worker count.
//
// Axes take comma-separated lists; delays also accept lo:hi:step ranges
// (microseconds). Examples:
//
//	omxsweep -strategies openmx,timeout -delays 0:100:25 -sizes 0,128,4096 -out sweep.json -workers 8
//	omxsweep -strategies disabled,timeout,openmx,stream -sizes 1,128,65536 -rate -csvout sweep.csv
//	omxsweep -delays 75 -irq round-robin,single-core -seeds 1,2,3 -out -
//	omxsweep -strategies timeout,openmx -sizes 128,4096 -bg 0,2 -out congested.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"openmxsim/internal/host"
	"openmxsim/internal/nic"
	"openmxsim/internal/sim"
	"openmxsim/internal/sweep"
)

func main() {
	// The sweep body runs in run() so the profile-flushing defers execute
	// before the process exits with a failure status.
	os.Exit(run())
}

func run() int {
	strategies := flag.String("strategies", "disabled,timeout,openmx,stream", "comma-separated coalescing strategies")
	delays := flag.String("delays", "15:75:30", "coalescing delays in us: list (25,75) or range lo:hi:step")
	sizes := flag.String("sizes", "1,128,4096,65536", "comma-separated message sizes in bytes")
	irq := flag.String("irq", "round-robin", "comma-separated IRQ policies: round-robin | single-core | per-queue")
	queues := flag.String("queues", "1", "comma-separated NIC receive-queue counts")
	nodes := flag.String("nodes", "2", "comma-separated cluster node counts")
	bg := flag.String("bg", "0", "comma-separated background bulk-stream counts (congest the ping-pong)")
	seeds := flag.String("seeds", "1", "comma-separated simulation seeds")
	iters := flag.Int("iters", 30, "ping-pong iterations per point")
	rate := flag.Bool("rate", false, "also measure message rate at every point")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	out := flag.String("out", "-", "JSON output path ('-' = stdout, '' = none)")
	csvOut := flag.String("csvout", "", "CSV output path ('-' = stdout, '' = none)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	sched := flag.String("sched", "wheel", "event scheduler: wheel (timing wheel, default) | heap (legacy 4-ary heap)")
	flag.Parse()

	if err := sim.SetDefaultSchedulerByName(*sched); err != nil {
		return fail(err)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // report the retained, not transient, picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	grid, err := buildGrid(*strategies, *delays, *sizes, *irq, *queues, *nodes, *bg, *seeds)
	if err != nil {
		return fail(err)
	}
	grid.Iters = *iters
	grid.Rate = *rate

	n := *workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if s := grid.Size(); n > s {
		n = s // mirror sweep.Run's cap so the banner states the real count
	}
	fmt.Fprintf(os.Stderr, "sweeping %d points on %d workers\n", grid.Size(), n)
	start := time.Now()
	results, err := sweep.Run(grid, *workers)
	if err != nil {
		return fail(err)
	}
	elapsed := time.Since(start)

	failed := 0
	for _, r := range results {
		if r.Err != "" {
			failed++
			fmt.Fprintf(os.Stderr, "point %d failed: %s\n", r.Index, r.Err)
		}
	}
	if err := emit(*out, results.WriteJSON); err != nil {
		return fail(err)
	}
	if err := emit(*csvOut, results.WriteCSV); err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "[%d points in %.2fs wall, %d failed]\n",
		len(results), elapsed.Seconds(), failed)
	if failed > 0 {
		return 1
	}
	return 0
}

// emit writes via fn to path: stdout for "-", nothing for "".
func emit(path string, fn func(w io.Writer) error) error {
	switch path {
	case "":
		return nil
	case "-":
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func buildGrid(strategies, delays, sizes, irq, queues, nodes, bg, seeds string) (sweep.Grid, error) {
	var g sweep.Grid
	for _, s := range split(strategies) {
		st, err := nic.ParseStrategy(s)
		if err != nil {
			return g, err
		}
		g.Strategies = append(g.Strategies, st)
	}
	ds, err := parseDelays(delays)
	if err != nil {
		return g, err
	}
	g.Delays = ds
	for _, s := range split(sizes) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return g, fmt.Errorf("bad size %q: %v", s, err)
		}
		g.Sizes = append(g.Sizes, v)
	}
	for _, s := range split(irq) {
		p, err := host.ParseIRQPolicy(s)
		if err != nil {
			return g, err
		}
		g.IRQ = append(g.IRQ, p)
	}
	for _, s := range split(queues) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return g, fmt.Errorf("bad queue count %q: %v", s, err)
		}
		g.Queues = append(g.Queues, v)
	}
	for _, s := range split(nodes) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return g, fmt.Errorf("bad node count %q: %v", s, err)
		}
		g.Nodes = append(g.Nodes, v)
	}
	for _, s := range split(bg) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return g, fmt.Errorf("bad background stream count %q: %v", s, err)
		}
		g.BgStreams = append(g.BgStreams, v)
	}
	for _, s := range split(seeds) {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return g, fmt.Errorf("bad seed %q: %v", s, err)
		}
		g.Seeds = append(g.Seeds, v)
	}
	return g, nil
}

// parseDelays reads either a comma list ("25,75") or an inclusive range
// with step ("0:100:25"), both in microseconds.
func parseDelays(spec string) ([]sim.Time, error) {
	if strings.Contains(spec, ":") {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad delay range %q, want lo:hi:step", spec)
		}
		lo, err1 := strconv.Atoi(parts[0])
		hi, err2 := strconv.Atoi(parts[1])
		step, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil || step <= 0 || hi < lo {
			return nil, fmt.Errorf("bad delay range %q", spec)
		}
		var ds []sim.Time
		for d := lo; d <= hi; d += step {
			ds = append(ds, sim.Time(d)*sim.Microsecond)
		}
		return ds, nil
	}
	var ds []sim.Time
	for _, s := range split(spec) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("bad delay %q: %v", s, err)
		}
		ds = append(ds, sim.Time(v)*sim.Microsecond)
	}
	return ds, nil
}

func split(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// fail reports err and yields the failure exit code, letting deferred
// profile writers run (unlike os.Exit).
func fail(err error) int {
	fmt.Fprintln(os.Stderr, err)
	return 1
}
