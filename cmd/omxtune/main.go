// Command omxtune finds the interrupt-load/latency tradeoff for a
// workload automatically: it drives the sweep executor adaptively (coarse
// grid, successive halving, local refinement) instead of exhaustively,
// extracts the Pareto frontier of the evaluated points, and reports the
// knee — plus the closed-loop feedback goal to run it with
// (-strategy feedback on omxsim, Config.Feedback in the library).
//
// Examples:
//
//	omxtune                                  # tune the 128B ping-pong
//	omxtune -size 4096 -bg 2 -budget 30      # congested workload, 30 evals
//	omxtune -weight 0.9                      # latency-priority pick
//	omxtune -rate -delays 0:100:5 -json      # interrupts/sec objective, JSON
//	omxtune -strategies timeout,openmx -delays 0:60:15 -budget 8 -iters 4
//
// The search is deterministic: the same flags converge to the same point
// at any -workers count, and -json output is byte-identical.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"openmxsim/internal/cliflag"
	"openmxsim/internal/nic"
	"openmxsim/internal/serve"
	"openmxsim/internal/sim"
	"openmxsim/internal/sweep"
	"openmxsim/internal/tune"
	"openmxsim/internal/units"
)

func main() {
	os.Exit(run())
}

func run() int {
	size := flag.Int("size", 128, "message size in bytes")
	nodes := flag.Int("nodes", 0, "cluster node count (0 = paper default, raised for -bg)")
	bg := flag.Int("bg", 0, "background bulk streams congesting the receiver")
	iters := flag.Int("iters", 30, "ping-pong iterations per evaluation")
	rate := flag.Bool("rate", false, "measure stream interrupt rate per point (load objective becomes intr/s)")
	strategies := flag.String("strategies", "disabled,timeout,openmx,stream", "comma-separated strategy search space")
	delays := flag.String("delays", "0:100:5", "delay lattice in us: list (25,75) or range lo:hi:step")
	budget := flag.Int("budget", 0, "max evaluations (0 = 30% of the exhaustive grid, min 8)")
	weight := flag.Float64("weight", 0.5, "latency weight in [0,1]: 1 chases latency, 0 interrupt load")
	workers := flag.Int("workers", 0, "worker goroutines per search round (0 = GOMAXPROCS)")
	par := cliflag.Par()
	drop := flag.Float64("drop", 0, "tune under bursty loss of this stationary rate in [0,1) (0 = clean fabric)")
	burst := flag.Float64("burst", 1, "mean loss-episode length for -drop (1 = uniform loss)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	jsonOut := flag.Bool("json", false, "emit the full outcome as JSON instead of text")
	cacheDir := cliflag.CacheDir()
	sched := cliflag.Sched()
	traceFlags := cliflag.Trace()
	flag.Parse()

	if err := cliflag.ApplySched(*sched); err != nil {
		return fail(err)
	}
	sts, err := cliflag.Strategies(*strategies)
	if err != nil {
		return fail(err)
	}
	lattice, err := cliflag.Delays(*delays)
	if err != nil {
		return fail(err)
	}

	w := *weight
	if w == 0 {
		// Spec treats a zero weight as "unset" (balanced 0.5); an explicit
		// -weight 0 means pure interrupt-load priority, which the smallest
		// positive weight delivers exactly (the latency term vanishes,
		// latency still breaks load ties).
		w = math.SmallestNonzeroFloat64
	}
	spec := tune.Spec{
		Size:          *size,
		Nodes:         *nodes,
		BgStreams:     *bg,
		DropProb:      *drop,
		Burst:         *burst,
		Iters:         *iters,
		Seed:          *seed,
		Rate:          *rate,
		Strategies:    sts,
		Delays:        lattice,
		MaxEvals:      *budget,
		LatencyWeight: w,
		Workers:       *workers,
		Par:           *par,
	}
	// The same cache omxserve and omxsweep share: a tuned workload is
	// answered from disk the next time, by this CLI or by the server.
	var cache *serve.Cache
	if *cacheDir != "" {
		if cache, err = serve.OpenCache(*cacheDir, serve.ResultsVersion); err != nil {
			return fail(err)
		}
	}
	key, err := cache.Key("tune", spec.Canonical())
	if err != nil {
		return fail(err)
	}

	var out *tune.Outcome
	var payload []byte
	if p, ok := cache.Get(key); ok {
		out = new(tune.Outcome)
		if err := json.Unmarshal(p, out); err != nil {
			return fail(fmt.Errorf("cached entry %s undecodable: %w", key, err))
		}
		payload = p
		fmt.Fprintf(os.Stderr, "[%d/%d evaluations from cache %s]\n",
			out.Evals, out.Exhaustive, *cacheDir)
	} else {
		start := time.Now()
		if out, err = tune.Search(spec); err != nil {
			return fail(err)
		}
		var buf bytes.Buffer
		if err := out.WriteJSON(&buf); err != nil {
			return fail(err)
		}
		payload = buf.Bytes()
		if cerr := cache.Put(key, payload); cerr != nil {
			fmt.Fprintln(os.Stderr, cerr) // costs a future hit, not this run
		}
		fmt.Fprintf(os.Stderr, "[%d/%d evaluations in %.2fs wall]\n",
			out.Evals, out.Exhaustive, time.Since(start).Seconds())
	}

	// Telemetry (-trace / -sample) re-runs the knee configuration as a
	// one-point sweep with the recorder attached: the search itself may be
	// answered from cache, but the timeline always comes from a live,
	// deterministic re-execution of the winning point.
	rec, err := traceFlags.Build()
	if err != nil {
		return fail(err)
	}
	if rec != nil {
		if _, ok := out.Tradeoff.Knee(); ok {
			knee := out.Knee
			st, err := cliflag.Strategy(knee.Strategy)
			if err != nil {
				return fail(err)
			}
			kg := sweep.Grid{
				Strategies: []nic.Strategy{st},
				Delays:     []sim.Time{sim.Time(math.Round(knee.DelayUS * 1000))},
				Sizes:      []int{spec.Size},
				BgStreams:  []int{spec.BgStreams},
				Seeds:      []uint64{spec.Seed},
				DropProb:   []float64{spec.DropProb},
				Burst:      []float64{spec.Burst},
				Iters:      spec.Iters,
				Rate:       spec.Rate,
				Par:        *par,
				Sample:     rec.SampleEvery(),
				Trace:      rec,
			}
			if spec.Nodes > 0 {
				kg.Nodes = []int{spec.Nodes}
			}
			if _, err := sweep.Run(kg, 1); err != nil {
				return fail(err)
			}
			if err := traceFlags.WriteOutputs(rec); err != nil {
				return fail(err)
			}
		} else {
			fmt.Fprintln(os.Stderr, "[no valid knee to trace; telemetry outputs skipped]")
		}
	}

	if *jsonOut {
		// The payload bytes verbatim: fresh runs, cache hits, and the
		// server's /result body are all byte-identical.
		if _, err := os.Stdout.Write(payload); err != nil {
			return fail(err)
		}
		return 0
	}

	// The load objective is fractional without -rate (interrupts per
	// message, typically 0-3), a large rate with it; format accordingly.
	loadUnit, loadFmt := "intr/msg", func(v float64) string { return fmt.Sprintf("%.2f", v) }
	if *rate {
		loadUnit, loadFmt = "intr/s", units.FormatRate
	}
	fmt.Printf("searched %d of %d configurations (%.0f%%), frontier holds %d\n",
		out.Evals, out.Exhaustive,
		100*float64(out.Evals)/float64(out.Exhaustive), len(out.Tradeoff.Front))
	if _, ok := out.Tradeoff.Knee(); !ok {
		fmt.Println("no valid point found")
		return 1
	}
	describe := func(label string, p tune.Point) {
		fmt.Printf("%-14s %s @ %gus — latency %.1fus, %s %s\n",
			label, p.Strategy, p.DelayUS, p.LatencyUS,
			loadFmt(p.Load), loadUnit)
	}
	describe("knee:", out.Knee)
	if out.Best.Index != out.Knee.Index {
		describe(fmt.Sprintf("best(w=%.2f):", spec.LatencyWeight), out.Best)
	}
	fmt.Printf("feedback goal: target %s intr/s, latency budget %s (run with -strategy feedback)\n",
		units.FormatRate(out.Feedback.TargetIntrPerSec),
		units.FormatDuration(int64(out.Feedback.MaxLatency)))
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, err)
	return 1
}
