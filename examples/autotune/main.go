// Command autotune walks through the tuning subsystem end to end: find
// the interrupt-load/latency tradeoff for a workload with the adaptive
// search, inspect the Pareto frontier it built, then close the loop by
// running the workload under the feedback firmware with the goal the
// tuner derived.
//
// The paper's title promises *finding* the tradeoff; the sweep engine
// (cmd/omxsweep) only enumerates it. This example is the finding.
package main

import (
	"fmt"
	"log"

	"openmxsim"
)

func main() {
	// Part 1: search the strategy x delay space adaptively. The budget
	// caps the search at far fewer simulations than the exhaustive grid;
	// Rate makes interrupts/sec (under a message stream) the load
	// objective (Spec fields left zero keep their documented defaults).
	spec := openmxsim.TuneSpec{
		Size:     128,
		Iters:    10,
		Rate:     true,
		MaxEvals: 16,
	}
	out, err := openmxsim.Tune(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("part 1: adaptive search — %d of %d configurations evaluated (%.0f%%)\n",
		out.Evals, out.Exhaustive, 100*float64(out.Evals)/float64(out.Exhaustive))
	fmt.Printf("%-10s %10s %13s %10s %9s\n", "strategy", "delay(us)", "latency(us)", "intr/s", "frontier")
	for _, p := range out.Tradeoff.Points {
		tag := ""
		if !p.Dominated {
			tag = "*"
		}
		if p.Knee {
			tag = "knee"
		}
		fmt.Printf("%-10s %10.0f %13.1f %10.0f %9s\n",
			p.Strategy, p.DelayUS, p.LatencyUS, p.Load, tag)
	}
	fmt.Printf("\nknee: %s @ %.0fus; feedback goal: %.0f intr/s under %.1fus\n\n",
		out.Knee.Strategy, out.Knee.DelayUS,
		out.Feedback.TargetIntrPerSec,
		float64(out.Feedback.MaxLatency)/1000)

	// Part 2: close the loop. The feedback firmware starts from the stock
	// 75 us timeout and walks its delay toward the tuner's goal at run
	// time — no firmware swap, no fixed delay choice.
	cfg := openmxsim.PaperPlatform()
	cfg.Strategy = openmxsim.StrategyFeedback
	cfg.Feedback = out.Feedback
	lat, err := openmxsim.PingPong(cfg, []int{128}, 30)
	if err != nil {
		log.Fatal(err)
	}
	stock := openmxsim.PaperPlatform()
	stockLat, err := openmxsim.PingPong(stock, []int{128}, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("part 2: closed-loop feedback firmware vs stock 75us timeout (128B ping-pong)")
	fmt.Printf("%-22s %13.1f us\n", "stock timeout(75us):", float64(stockLat[128])/1000)
	fmt.Printf("%-22s %13.1f us (delay steered toward the tuner's goal)\n",
		"feedback(goal-seeking):", float64(lat[128])/1000)
}
