// Command incast walks through the N-node shared-fabric extension: an
// output-queued switch with bounded drop-tail egress queues, N senders
// converging on one receiver, and the interrupt-coalescing tradeoff under
// congestion.
//
// The paper's testbed is two nodes on a back-to-back link, so its
// interrupt-load / latency tradeoff is measured without contention. This
// example scales the fan-in and shows (a) the receiver's interrupt load
// per strategy as convergence grows and (b) what background bulk traffic
// does to a latency-sensitive ping-pong sharing the congested port.
package main

import (
	"fmt"
	"log"

	"openmxsim"
)

func main() {
	fmt.Println("part 1: N-to-1 incast through a bounded output-queued switch (128B messages)")
	fmt.Printf("%-8s %-10s %14s %14s %10s %8s\n",
		"senders", "strategy", "rate(msg/s)", "intr/s", "drops", "maxq")

	for _, senders := range []int{2, 4, 8} {
		for _, st := range []openmxsim.Strategy{
			openmxsim.StrategyDisabled, openmxsim.StrategyTimeout, openmxsim.StrategyOpenMX,
		} {
			cfg := openmxsim.PaperPlatform()
			cfg.Strategy = st
			// The zero-value Topology is the paper's ideal direct link;
			// selecting the output-queued switch bounds each egress port
			// with a FIFO drop-tail buffer and records congestion stats.
			cfg.Topology = openmxsim.Topology{
				Kind:              openmxsim.TopologyOutputQueued,
				EgressQueueFrames: 64,
			}
			res := openmxsim.Incast(openmxsim.IncastSpec{
				Cluster: cfg,
				Senders: senders,
				Size:    128,
				Warmup:  5 * openmxsim.Millisecond,
				Measure: 20 * openmxsim.Millisecond,
			})
			fmt.Printf("%-8d %-10v %14.0f %14.0f %10d %8d\n",
				senders, st, res.Rate, res.IntrRate, res.PortDrops, res.MaxQueueFrames)
		}
	}

	fmt.Println("\npart 2: 128B ping-pong while 2 bulk streams congest the receiver's port")
	fmt.Printf("%-10s %14s %14s %10s\n", "strategy", "quiet(us)", "loaded(us)", "slowdown")
	for _, st := range []openmxsim.Strategy{openmxsim.StrategyTimeout, openmxsim.StrategyOpenMX} {
		cfg := openmxsim.PaperPlatform()
		cfg.Strategy = st
		quiet, err := openmxsim.PingPong(cfg, []int{128}, 20)
		if err != nil {
			log.Fatal(err)
		}
		loaded, err := openmxsim.PingPongLoaded(cfg, []int{128}, 20, openmxsim.Background{Streams: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10v %14.1f %14.1f %9.2fx\n", st,
			float64(quiet[128])/1000, float64(loaded[128])/1000,
			float64(loaded[128])/float64(quiet[128]))
	}
	fmt.Println("\nthe marker-driven firmware keeps its latency advantage under congestion,")
	fmt.Println("while per-packet interrupts (disabled) scale their host load with the fan-in.")
}
