// Command misordering reproduces the Table III scenario. It moves the
// latency-sensitive mark off the last fragment of 32 KiB medium messages
// (the paper's emulation of packet mis-ordering) and compares how the
// Open-MX and Stream coalescing firmwares cope, then repeats the
// experiment with real reordering injected in the fabric.
package main

import (
	"fmt"
	"log"

	"openmxsim"
	"openmxsim/internal/fabric"
	"openmxsim/internal/wire"
)

func measure(cfg openmxsim.Config, shift int) float64 {
	mark := openmxsim.DefaultMarkPolicy()
	mark.MediumMarkShift = shift
	cfg.Mark = &mark
	lat, err := openmxsim.PingPong(cfg, []int{32 << 10}, 40)
	if err != nil {
		log.Fatal(err)
	}
	return float64(lat[32<<10]) / 1000
}

func main() {
	fmt.Println("32kiB medium transfers with the mark moved off the last fragment")
	fmt.Printf("%-10s %14s %14s %14s\n", "strategy", "in-order(us)", "degree1(us)", "degree3(us)")
	for _, s := range []struct {
		name     string
		strategy openmxsim.Strategy
	}{
		{"open-mx", openmxsim.StrategyOpenMX},
		{"stream", openmxsim.StrategyStream},
	} {
		cfg := openmxsim.PaperPlatform()
		cfg.Strategy = s.strategy
		fmt.Printf("%-10s %14.1f %14.1f %14.1f\n",
			s.name, measure(cfg, 0), measure(cfg, 1), measure(cfg, 3))
	}

	fmt.Println("\nwith real fabric reordering (8% of medium fragments delayed 25us):")
	for _, s := range []struct {
		name     string
		strategy openmxsim.Strategy
	}{
		{"open-mx", openmxsim.StrategyOpenMX},
		{"stream", openmxsim.StrategyStream},
	} {
		cfg := openmxsim.PaperPlatform()
		cfg.Strategy = s.strategy
		cfg.Fault = &fabric.Fault{
			DelayProb: 0.08,
			DelayTime: 25 * openmxsim.Microsecond,
			Filter: func(f *wire.Frame) bool {
				return f.Header.Type == wire.TypeMediumFrag
			},
		}
		lat, err := openmxsim.PingPong(cfg, []int{32 << 10}, 40)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14.1f\n", s.name, float64(lat[32<<10])/1000)
	}
}
