// Command nas_is reproduces the paper's headline application result: the
// NAS Integer Sort communication kernel (16 ranks on 2 nodes) under all
// four coalescing strategies, reporting execution time and interrupt
// counts — Tables IV and V for the IS rows.
//
// Class W by default so it finishes in seconds; pass -class B for the
// paper's smaller configuration (minutes of virtual time).
package main

import (
	"flag"
	"fmt"
	"log"

	"openmxsim"
)

func main() {
	class := flag.String("class", "W", "NAS class: S W A B C")
	flag.Parse()

	fmt.Printf("NAS IS class %s, 16 ranks on 2 nodes\n", *class)
	fmt.Printf("%-22s %12s %14s %10s\n", "strategy", "time(s)", "interrupts", "wakeups")

	var base float64
	for _, s := range []struct {
		name     string
		strategy openmxsim.Strategy
	}{
		{"timeout 75us (default)", openmxsim.StrategyTimeout},
		{"disabled", openmxsim.StrategyDisabled},
		{"open-mx", openmxsim.StrategyOpenMX},
		{"stream", openmxsim.StrategyStream},
	} {
		cfg := openmxsim.PaperPlatform()
		cfg.Strategy = s.strategy
		res, err := openmxsim.RunNAS(cfg, "is", (*class)[0], 16)
		if err != nil {
			log.Fatal(err)
		}
		secs := float64(res.Elapsed) / 1e9
		note := ""
		if base == 0 {
			base = secs
		} else {
			note = fmt.Sprintf("  (%+.1f%% vs default)", 100*(base-secs)/base)
		}
		fmt.Printf("%-22s %12.3f %14d %10d%s\n", s.name, secs, res.Interrupts, res.Wakeups, note)
	}
}
