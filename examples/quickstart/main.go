// Command quickstart builds the paper's two-node platform, exchanges a
// message with real payload between two ranks, and measures small-message
// latency under two coalescing strategies.
package main

import (
	"fmt"
	"log"

	"openmxsim"
)

func main() {
	// A classic hello-world exchange over the simulated fabric.
	cfg := openmxsim.PaperPlatform()
	_, world := openmxsim.NewWorld(cfg, 1) // one rank per node
	comm := world.CommWorld()
	buf := make([]byte, 64)
	elapsed, err := world.Run(func(r *openmxsim.Rank) {
		switch r.ID {
		case 0:
			r.Send(comm, 1, 42, []byte("hello, open-mx!"), 0)
		case 1:
			st := r.Recv(comm, 0, 42, buf, 0)
			fmt.Printf("rank 1 got %q from rank %d (tag %d)\n", buf[:st.Len], st.Source, st.Tag)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exchange finished at t=%.1fus of virtual time\n\n", float64(elapsed)/1000)

	// The paper's headline tradeoff in two measurements: the default 75us
	// coalescing ruins small-message latency; the Open-MX firmware fixes
	// it without giving up coalescing.
	for _, s := range []struct {
		name     string
		strategy openmxsim.Strategy
	}{
		{"timeout 75us (default)", openmxsim.StrategyTimeout},
		{"disabled", openmxsim.StrategyDisabled},
		{"open-mx coalescing", openmxsim.StrategyOpenMX},
	} {
		cfg := openmxsim.PaperPlatform()
		cfg.Strategy = s.strategy
		lat, err := openmxsim.PingPong(cfg, []int{128}, 30)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s 128B one-way latency: %6.1f us\n", s.name, float64(lat[128])/1000)
	}
}
