// Command tuning sweeps the interrupt-coalescing delay and reports the
// latency / message-rate / interrupt-load tradeoff the paper studies,
// ending with a recommendation per metric — exactly the manual tuning the
// Open-MX firmware modifications make unnecessary. (For grid sweeps over
// more axes, in parallel, see cmd/omxsweep.)
package main

import (
	"fmt"
	"log"

	"openmxsim"
)

func main() {
	fmt.Println("coalescing-delay sweep on the paper platform (128B messages)")
	fmt.Printf("%-10s %14s %14s\n", "delay(us)", "latency(us)", "rate(msg/s)")

	type point struct {
		delay int
		lat   float64
		rate  float64
	}
	var points []point
	for _, d := range []int{0, 5, 15, 30, 50, 75, 100} {
		cfg := openmxsim.PaperPlatform()
		if d == 0 {
			cfg.Strategy = openmxsim.StrategyDisabled
		} else {
			cfg.Strategy = openmxsim.StrategyTimeout
			cfg.CoalesceDelay = openmxsim.Time(d) * openmxsim.Microsecond
		}
		lat, err := openmxsim.PingPong(cfg, []int{128}, 20)
		if err != nil {
			log.Fatal(err)
		}
		rate := openmxsim.MessageRate(cfg, 128, 10*openmxsim.Millisecond, 50*openmxsim.Millisecond)
		p := point{d, float64(lat[128]) / 1000, rate}
		points = append(points, p)
		fmt.Printf("%-10d %14.1f %14.0f\n", p.delay, p.lat, p.rate)
	}

	best := points[0]
	bestRate := points[0]
	for _, p := range points {
		if p.lat < best.lat {
			best = p
		}
		if p.rate > bestRate.rate {
			bestRate = p
		}
	}
	fmt.Printf("\nbest latency at %dus delay, best rate at %dus delay —\n", best.delay, bestRate.delay)
	fmt.Println("no single delay wins both; the Open-MX coalescing firmware does:")

	cfg := openmxsim.PaperPlatform()
	cfg.Strategy = openmxsim.StrategyOpenMX
	lat, err := openmxsim.PingPong(cfg, []int{128}, 20)
	if err != nil {
		log.Fatal(err)
	}
	rate := openmxsim.MessageRate(cfg, 128, 10*openmxsim.Millisecond, 50*openmxsim.Millisecond)
	fmt.Printf("%-10s %14.1f %14.0f\n", "open-mx", float64(lat[128])/1000, rate)
}
