module openmxsim

go 1.24
