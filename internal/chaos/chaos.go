// Package chaos is the time-varying fault scenario engine: it composes
// link flaps, Gilbert–Elliott bursty loss, and transient bandwidth
// degradation into a single fabric.Hook. Every random decision comes from
// a per-source-node stream derived from the scenario seed, and all
// mutable state (the Gilbert–Elliott chain, the RNG cursor) is keyed by
// source node — the fabric consults the hook on the source port's shard,
// so under -par N each node's state is touched by exactly one goroutine
// per barrier window and results are bit-identical at any shard count.
//
// Link up/down is a pure function of virtual time (no per-frame state at
// all), which is what allows the destination side of a flap to be
// evaluated from the source's shard without synchronization.
package chaos

import (
	"fmt"
	"slices"

	"openmxsim/internal/fabric"
	"openmxsim/internal/sim"
	"openmxsim/internal/wire"
)

// LinkFlap takes one node's link down for a window of virtual time.
// While down, every frame to or from the node is dropped before it
// occupies the wire. With Period > 0 the window repeats: down during
// [DownAt+k·Period, UpAt+k·Period) for every k >= 0.
type LinkFlap struct {
	Node   int      // node index (wire.MAC.NodeIndex)
	DownAt sim.Time // window start (inclusive)
	UpAt   sim.Time // window end (exclusive); <= DownAt means down forever
	Period sim.Time // repeat interval; 0 = one-shot
}

// down reports whether the flap holds the link down at time t.
func (lf *LinkFlap) down(t sim.Time) bool {
	if lf.UpAt <= lf.DownAt { // permanent outage from DownAt on
		return t >= lf.DownAt
	}
	if lf.Period > 0 && t >= lf.DownAt {
		t = lf.DownAt + (t-lf.DownAt)%lf.Period
	}
	return t >= lf.DownAt && t < lf.UpAt
}

// GilbertElliott is the classic two-state bursty-loss chain: a Good state
// with loss probability GoodLoss and a Bad state with loss probability
// BadLoss, with per-frame transition probabilities PGoodBad and PBadGood.
// Each source node runs its own chain (started in Good) advanced once per
// frame the node sends.
type GilbertElliott struct {
	GoodLoss float64
	BadLoss  float64
	PGoodBad float64
	PBadGood float64
}

// Loss returns the chain's stationary (long-run average) loss rate.
func (ge *GilbertElliott) Loss() float64 {
	pg, pb := ge.PGoodBad, ge.PBadGood
	if pg+pb <= 0 {
		return ge.GoodLoss
	}
	fracBad := pg / (pg + pb)
	return (1-fracBad)*ge.GoodLoss + fracBad*ge.BadLoss
}

// Bursty builds a Gilbert–Elliott chain with stationary loss rate p whose
// losses arrive in bursts of mean length burst. burst <= 1 degenerates to
// uniform (Bernoulli) loss. The Bad state loses half its frames (so a
// "burst" is a dense loss episode, not a blackout) and the mean Bad-state
// dwell time is chosen to make the expected losses per episode equal
// burst; the Good/Bad occupancy split then pins the stationary rate to p.
func Bursty(p, burst float64) *GilbertElliott {
	if p <= 0 {
		return &GilbertElliott{}
	}
	if p >= 1 {
		return &GilbertElliott{GoodLoss: 1, BadLoss: 1, PBadGood: 1}
	}
	if burst <= 1 {
		return &GilbertElliott{GoodLoss: p, BadLoss: p, PBadGood: 1}
	}
	const badLoss = 0.5
	pbg := badLoss / burst // mean losses per Bad dwell = badLoss/pbg = burst
	x := p / badLoss       // required stationary Bad-state occupancy
	pgb := pbg * x / (1 - x)
	if pgb > 1 {
		pgb = 1
	}
	return &GilbertElliott{BadLoss: badLoss, PGoodBad: pgb, PBadGood: pbg}
}

// Degrade scales one node's frame serialization time by Factor during
// [From, Until) — transient bandwidth degradation (a flaky autoneg, a
// shared uplink saturating). Factor <= 1 is a no-op.
type Degrade struct {
	Node   int
	From   sim.Time
	Until  sim.Time // <= From means degraded forever
	Factor float64
}

func (dg *Degrade) active(t sim.Time) bool {
	if dg.Until <= dg.From {
		return t >= dg.From
	}
	return t >= dg.From && t < dg.Until
}

// Scenario is a declarative time-varying fault plan. Compose it onto a
// cluster via cluster.Config.Scenario; the zero value injects nothing.
type Scenario struct {
	// Flaps lists link-down windows; a node may appear in several.
	Flaps []LinkFlap
	// Loss, when non-nil, runs a Gilbert–Elliott chain per source node.
	Loss *GilbertElliott
	// Degrade lists bandwidth-degradation windows.
	Degrade []Degrade
	// Seed derives every per-node RNG stream; two runs of the same
	// scenario with the same seed make identical decisions.
	Seed uint64
}

// Validate checks the scenario's parameters.
func (sc *Scenario) Validate() error {
	for i, lf := range sc.Flaps {
		if lf.Node < 0 {
			return fmt.Errorf("chaos: flap %d: negative node %d", i, lf.Node)
		}
		if lf.DownAt < 0 {
			return fmt.Errorf("chaos: flap %d: negative DownAt %v", i, lf.DownAt)
		}
		if lf.Period < 0 {
			return fmt.Errorf("chaos: flap %d: negative Period %v", i, lf.Period)
		}
		if lf.Period > 0 && lf.UpAt > lf.DownAt+lf.Period {
			return fmt.Errorf("chaos: flap %d: down window %v longer than period %v", i, lf.UpAt-lf.DownAt, lf.Period)
		}
	}
	if ge := sc.Loss; ge != nil {
		for _, v := range []struct {
			name string
			p    float64
		}{
			{"GoodLoss", ge.GoodLoss}, {"BadLoss", ge.BadLoss},
			{"PGoodBad", ge.PGoodBad}, {"PBadGood", ge.PBadGood},
		} {
			if v.p < 0 || v.p > 1 {
				return fmt.Errorf("chaos: loss %s=%v outside [0,1]", v.name, v.p)
			}
		}
	}
	for i, dg := range sc.Degrade {
		if dg.Node < 0 {
			return fmt.Errorf("chaos: degrade %d: negative node %d", i, dg.Node)
		}
		if dg.Factor < 0 {
			return fmt.Errorf("chaos: degrade %d: negative factor %v", i, dg.Factor)
		}
	}
	return nil
}

// empty reports whether the scenario injects nothing.
func (sc *Scenario) empty() bool {
	return len(sc.Flaps) == 0 && sc.Loss == nil && len(sc.Degrade) == 0
}

// geGood / geBad are the chain states.
const (
	geGood = iota
	geBad
)

// nodeState is one source node's mutable scenario state. It is only ever
// touched from that node's shard (fabric consults the hook on the source
// port's shard), so no locking is needed.
type nodeState struct {
	rng   *sim.RNG
	ge    int
	stats NodeStats
}

// NodeStats counts one node's scenario activity (as frame source; flap
// drops where the node is the down destination are charged to the
// sender).
type NodeStats struct {
	FlapDrops   uint64 // frames dropped because either endpoint was down
	GEDrops     uint64 // frames lost to the Gilbert–Elliott chain
	Transitions uint64 // Good<->Bad state changes
	Degraded    uint64 // frames with stretched serialization
}

// Engine evaluates a Scenario as a fabric.Hook. Construct with New and
// install via fabric.Fault.Hook (cluster.Config.Scenario does both).
type Engine struct {
	sc    Scenario
	base  *sim.RNG
	nodes map[int]*nodeState
	// flapsBy and degradeBy index the windows by node so Decide is O(own
	// windows), not O(all windows).
	flapsBy   map[int][]LinkFlap
	degradeBy map[int][]Degrade
}

// New builds the evaluation engine for sc. nodes is the cluster size;
// every per-node stream is derived up front so Decide never mutates the
// map.
func New(sc Scenario, nodes int) (*Engine, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		sc:        sc,
		base:      sim.NewRNG(sc.Seed ^ 0xC4A05),
		nodes:     make(map[int]*nodeState, nodes),
		flapsBy:   make(map[int][]LinkFlap),
		degradeBy: make(map[int][]Degrade),
	}
	for i := 0; i < nodes; i++ {
		e.nodes[i] = &nodeState{rng: e.base.Derive(0xCA<<56 | uint64(i))}
	}
	for _, lf := range sc.Flaps {
		e.flapsBy[lf.Node] = append(e.flapsBy[lf.Node], lf)
	}
	for _, dg := range sc.Degrade {
		e.degradeBy[dg.Node] = append(e.degradeBy[dg.Node], dg)
	}
	return e, nil
}

// LinkDown reports whether node's link is down at time t — a pure
// function of the scenario and t, safe from any shard.
func (e *Engine) LinkDown(node int, t sim.Time) bool {
	for i := range e.flapsBy[node] {
		if e.flapsBy[node][i].down(t) {
			return true
		}
	}
	return false
}

// serScale returns the serialization stretch for node at time t (1 if
// none).
func (e *Engine) serScale(node int, t sim.Time) float64 {
	scale := 1.0
	for i := range e.degradeBy[node] {
		dg := &e.degradeBy[node][i]
		if dg.Factor > scale && dg.active(t) {
			scale = dg.Factor
		}
	}
	return scale
}

// Decide implements fabric.Hook. It runs on the source port's shard and
// touches only src's nodeState.
func (e *Engine) Decide(src, dst int, now sim.Time, f *wire.Frame) fabric.Decision {
	ns := e.nodes[src]
	if ns == nil {
		// A node outside the cluster size New was given: static windows
		// still apply, the loss chain does not.
		if e.LinkDown(src, now) || e.LinkDown(dst, now) {
			return fabric.Decision{Drop: true}
		}
		return fabric.Decision{SerScale: e.serScale(src, now)}
	}
	if e.LinkDown(src, now) || e.LinkDown(dst, now) {
		ns.stats.FlapDrops++
		return fabric.Decision{Drop: true}
	}
	if ge := e.sc.Loss; ge != nil {
		loss, flip := ge.GoodLoss, ge.PGoodBad
		if ns.ge == geBad {
			loss, flip = ge.BadLoss, ge.PBadGood
		}
		drop := loss > 0 && ns.rng.Bool(loss)
		if flip > 0 && ns.rng.Bool(flip) {
			ns.ge ^= geGood ^ geBad
			ns.stats.Transitions++
		}
		if drop {
			ns.stats.GEDrops++
			return fabric.Decision{Drop: true}
		}
	}
	d := fabric.Decision{SerScale: e.serScale(src, now)}
	if d.SerScale > 1 {
		ns.stats.Degraded++
	}
	return d
}

// Stats returns the summed per-node counters.
func (e *Engine) Stats() NodeStats {
	var t NodeStats
	//omxlint:allow maprange: integer sums are order-independent
	for _, ns := range e.nodes {
		t.FlapDrops += ns.stats.FlapDrops
		t.GEDrops += ns.stats.GEDrops
		t.Transitions += ns.stats.Transitions
		t.Degraded += ns.stats.Degraded
	}
	return t
}

// NodeStats returns one node's counters (zero value for unknown nodes).
func (e *Engine) NodeStats(node int) NodeStats {
	if ns := e.nodes[node]; ns != nil {
		return ns.stats
	}
	return NodeStats{}
}

// Edges lists the one-shot flap transition times (down and up edges) in
// ascending order — the marker events cluster wiring schedules on each
// owning shard so a trace of the run shows when the scenario acted.
// Periodic flaps contribute only their first window (their later edges
// are evaluated arithmetically by down(); scheduling an unbounded edge
// train would keep the engines from ever draining).
func (sc *Scenario) Edges(node int) []sim.Time {
	var ts []sim.Time
	for _, lf := range sc.Flaps {
		if lf.Node != node {
			continue
		}
		ts = append(ts, lf.DownAt)
		if lf.UpAt > lf.DownAt {
			ts = append(ts, lf.UpAt)
		}
	}
	slices.Sort(ts)
	return ts
}
