package chaos

import (
	"math"
	"testing"

	"openmxsim/internal/sim"
)

func TestLinkFlapWindows(t *testing.T) {
	ms := sim.Millisecond
	cases := []struct {
		name string
		lf   LinkFlap
		t    sim.Time
		want bool
	}{
		{"one-shot before", LinkFlap{DownAt: 10 * ms, UpAt: 20 * ms}, 9 * ms, false},
		{"one-shot start inclusive", LinkFlap{DownAt: 10 * ms, UpAt: 20 * ms}, 10 * ms, true},
		{"one-shot inside", LinkFlap{DownAt: 10 * ms, UpAt: 20 * ms}, 15 * ms, true},
		{"one-shot end exclusive", LinkFlap{DownAt: 10 * ms, UpAt: 20 * ms}, 20 * ms, false},
		{"permanent equal bounds", LinkFlap{DownAt: 10 * ms, UpAt: 10 * ms}, 1000 * ms, true},
		{"permanent zero UpAt", LinkFlap{DownAt: 10 * ms}, 10 * ms, true},
		{"permanent before start", LinkFlap{DownAt: 10 * ms}, 9 * ms, false},
		{"periodic first window", LinkFlap{DownAt: 10 * ms, UpAt: 12 * ms, Period: 100 * ms}, 11 * ms, true},
		{"periodic gap", LinkFlap{DownAt: 10 * ms, UpAt: 12 * ms, Period: 100 * ms}, 50 * ms, false},
		{"periodic second window", LinkFlap{DownAt: 10 * ms, UpAt: 12 * ms, Period: 100 * ms}, 111 * ms, true},
		{"periodic second gap", LinkFlap{DownAt: 10 * ms, UpAt: 12 * ms, Period: 100 * ms}, 112 * ms, false},
		{"periodic distant window", LinkFlap{DownAt: 10 * ms, UpAt: 12 * ms, Period: 100 * ms}, 910*ms + 500, true},
		{"periodic before first", LinkFlap{DownAt: 10 * ms, UpAt: 12 * ms, Period: 100 * ms}, 5 * ms, false},
	}
	for _, tc := range cases {
		if got := tc.lf.down(tc.t); got != tc.want {
			t.Errorf("%s: down(%v) = %v, want %v", tc.name, tc.t, got, tc.want)
		}
	}
}

func TestBurstyStationaryLoss(t *testing.T) {
	for _, tc := range []struct{ p, burst float64 }{
		{0.01, 1}, {0.01, 4}, {0.05, 8}, {0.2, 16}, {0.4, 2},
	} {
		ge := Bursty(tc.p, tc.burst)
		if got := ge.Loss(); math.Abs(got-tc.p) > 1e-12 {
			t.Errorf("Bursty(%g, %g).Loss() = %g, want %g", tc.p, tc.burst, got, tc.p)
		}
	}
	if ge := Bursty(0, 8); ge.Loss() != 0 {
		t.Errorf("Bursty(0, 8).Loss() = %g, want 0", ge.Loss())
	}
	if ge := Bursty(1, 8); ge.Loss() != 1 {
		t.Errorf("Bursty(1, 8).Loss() = %g, want 1", ge.Loss())
	}
	// burst <= 1 degenerates to Bernoulli: both states lose at rate p.
	ge := Bursty(0.03, 0.5)
	if ge.GoodLoss != 0.03 || ge.BadLoss != 0.03 {
		t.Errorf("Bursty(0.03, 0.5) = %+v, want uniform 0.03", ge)
	}
}

// TestEngineEmpiricalLoss drives the per-node chain with many frames and
// checks the realized drop rate converges on the stationary target, for
// uniform and bursty shapes alike.
func TestEngineEmpiricalLoss(t *testing.T) {
	const frames = 200_000
	for _, tc := range []struct{ p, burst float64 }{
		{0.02, 1}, {0.02, 8}, {0.1, 4},
	} {
		e, err := New(Scenario{Loss: Bursty(tc.p, tc.burst), Seed: 9}, 1)
		if err != nil {
			t.Fatal(err)
		}
		drops := 0
		for i := 0; i < frames; i++ {
			if e.Decide(0, 1, sim.Time(i), nil).Drop {
				drops++
			}
		}
		got := float64(drops) / frames
		// Bursty chains mix slowly, so allow 15% relative slack.
		if math.Abs(got-tc.p) > 0.15*tc.p {
			t.Errorf("Bursty(%g, %g): empirical loss %g over %d frames", tc.p, tc.burst, got, frames)
		}
		st := e.Stats()
		if st.GEDrops != uint64(drops) {
			t.Errorf("GEDrops = %d, want %d", st.GEDrops, drops)
		}
		if tc.burst > 1 && st.Transitions == 0 {
			t.Errorf("Bursty(%g, %g): chain never left Good", tc.p, tc.burst)
		}
	}
}

// TestDecideDeterministic requires two engines built from the same
// scenario to make bit-identical per-frame decisions — the property the
// par-N equivalence of every resilience experiment rests on.
func TestDecideDeterministic(t *testing.T) {
	sc := Scenario{
		Flaps:   []LinkFlap{{Node: 1, DownAt: 5 * sim.Millisecond, UpAt: 6 * sim.Millisecond}},
		Loss:    Bursty(0.05, 4),
		Degrade: []Degrade{{Node: 0, From: 2 * sim.Millisecond, Until: 3 * sim.Millisecond, Factor: 4}},
		Seed:    1234,
	}
	build := func() *Engine {
		e, err := New(sc, 3)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	e1, e2 := build(), build()
	for i := 0; i < 50_000; i++ {
		now := sim.Time(i) * 200
		src, dst := i%3, (i+1)%3
		d1 := e1.Decide(src, dst, now, nil)
		d2 := e2.Decide(src, dst, now, nil)
		if d1 != d2 {
			t.Fatalf("frame %d: decisions diverge: %+v vs %+v", i, d1, d2)
		}
	}
	if e1.Stats() != e2.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", e1.Stats(), e2.Stats())
	}
}

// TestDecidePerNodeStreams checks that interleaving order across source
// nodes does not change any single node's decision sequence: node state is
// keyed by source, which is what makes shard layout invisible.
func TestDecidePerNodeStreams(t *testing.T) {
	sc := Scenario{Loss: Bursty(0.1, 4), Seed: 77}
	solo, err := New(sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	var want []bool
	for i := 0; i < 10_000; i++ {
		want = append(want, solo.Decide(0, 1, sim.Time(i), nil).Drop)
	}
	mixed, err := New(sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		// Node 1's draws are interleaved; node 0's sequence must not move.
		mixed.Decide(1, 0, sim.Time(i), nil)
		if got := mixed.Decide(0, 1, sim.Time(i), nil).Drop; got != want[i] {
			t.Fatalf("frame %d: node 0 decision changed when node 1 traffic interleaved", i)
		}
	}
}

func TestDecideFlapAndDegrade(t *testing.T) {
	ms := sim.Millisecond
	sc := Scenario{
		Flaps:   []LinkFlap{{Node: 1, DownAt: 10 * ms, UpAt: 20 * ms}},
		Degrade: []Degrade{{Node: 0, From: 30 * ms, Until: 40 * ms, Factor: 5}},
		Seed:    1,
	}
	e, err := New(sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Down destination drops frames from either side; charged to source.
	if !e.Decide(0, 1, 15*ms, nil).Drop {
		t.Error("frame toward down node not dropped")
	}
	if !e.Decide(1, 0, 15*ms, nil).Drop {
		t.Error("frame from down node not dropped")
	}
	if e.Decide(0, 1, 25*ms, nil).Drop {
		t.Error("frame dropped after link came back")
	}
	if d := e.Decide(0, 1, 35*ms, nil); d.SerScale != 5 {
		t.Errorf("degraded SerScale = %g, want 5", d.SerScale)
	}
	if d := e.Decide(0, 1, 45*ms, nil); d.SerScale > 1 {
		t.Errorf("SerScale = %g after degradation window", d.SerScale)
	}
	st := e.Stats()
	if st.FlapDrops != 2 || st.Degraded != 1 {
		t.Errorf("stats = %+v, want 2 flap drops and 1 degraded", st)
	}
	if e.NodeStats(0).FlapDrops != 1 || e.NodeStats(1).FlapDrops != 1 {
		t.Errorf("per-node flap drops = %+v / %+v, want 1 each",
			e.NodeStats(0), e.NodeStats(1))
	}
	// Unknown source node: windows still apply, no chain state mutates.
	if !e.Decide(9, 1, 15*ms, nil).Drop {
		t.Error("unknown-node frame toward down node not dropped")
	}
	if e.NodeStats(9) != (NodeStats{}) {
		t.Errorf("unknown node grew stats: %+v", e.NodeStats(9))
	}
}

func TestScenarioValidate(t *testing.T) {
	ms := sim.Millisecond
	bad := []Scenario{
		{Flaps: []LinkFlap{{Node: -1}}},
		{Flaps: []LinkFlap{{DownAt: -ms}}},
		{Flaps: []LinkFlap{{Period: -ms}}},
		{Flaps: []LinkFlap{{DownAt: 0, UpAt: 5 * ms, Period: 2 * ms}}},
		{Loss: &GilbertElliott{GoodLoss: 1.5}},
		{Loss: &GilbertElliott{PBadGood: -0.1}},
		{Degrade: []Degrade{{Node: -2}}},
		{Degrade: []Degrade{{Factor: -1}}},
	}
	for i, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("bad scenario %d validated: %+v", i, sc)
		}
	}
	good := Scenario{
		Flaps:   []LinkFlap{{Node: 0, DownAt: ms, UpAt: 2 * ms, Period: 10 * ms}},
		Loss:    Bursty(0.01, 8),
		Degrade: []Degrade{{Node: 1, From: ms, Factor: 2}},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("good scenario rejected: %v", err)
	}
}

func TestScenarioEdges(t *testing.T) {
	ms := sim.Millisecond
	sc := Scenario{Flaps: []LinkFlap{
		{Node: 0, DownAt: 30 * ms, UpAt: 40 * ms},
		{Node: 0, DownAt: 10 * ms}, // permanent: down edge only
		{Node: 1, DownAt: 5 * ms, UpAt: 6 * ms},
		{Node: 0, DownAt: 50 * ms, UpAt: 51 * ms, Period: 100 * ms}, // first window only
	}}
	got := sc.Edges(0)
	want := []sim.Time{10 * ms, 30 * ms, 40 * ms, 50 * ms, 51 * ms}
	if len(got) != len(want) {
		t.Fatalf("Edges(0) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Edges(0) = %v, want %v", got, want)
		}
	}
	if n := len(sc.Edges(2)); n != 0 {
		t.Errorf("Edges(2) returned %d edges for a node with no flaps", n)
	}
}
