// Package cliflag centralizes the flag vocabulary shared by the omx*
// commands (omxbench, omxsim, omxsweep, omxtune): the -sched scheduler
// selector and the parsers for strategy, delay, IRQ-policy, and numeric
// list flags. Before this package each command carried its own copy and
// they had already drifted; a flag spelling accepted by one command is now
// accepted by all of them.
package cliflag

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"openmxsim/internal/chaos"
	"openmxsim/internal/fabric"
	"openmxsim/internal/host"
	"openmxsim/internal/nic"
	"openmxsim/internal/sim"
	"openmxsim/internal/sweep"
	"openmxsim/internal/trace"
)

// Sched registers the canonical -sched flag on the default flag set.
func Sched() *string {
	return flag.String("sched", "wheel", "event scheduler: wheel (timing wheel, default) | heap (legacy 4-ary heap)")
}

// ApplySched installs the named scheduler as the process default; call it
// with the parsed -sched value before building any cluster.
func ApplySched(name string) error {
	return sim.SetDefaultSchedulerByName(name)
}

// Par registers the canonical -par flag on the default flag set: the
// number of shard engines per simulated cluster (cluster.Config
// .Parallelism). 1 is the serial reference engine; higher values need an
// output-queued topology to engage and produce bit-identical results.
func Par() *int {
	return flag.Int("par", 1, "simulation shards per cluster (1 = serial reference engine; needs an output-queued topology to engage)")
}

// Addr registers the canonical -addr flag: the host:port the simulation
// service listens on. The default binds loopback only — exposing a
// simulation executor to a network is an explicit decision.
func Addr() *string {
	return flag.String("addr", "127.0.0.1:8080", "host:port the service listens on (loopback by default)")
}

// CacheDir registers the canonical -cache-dir flag: the directory of the
// crash-safe content-addressed result cache shared by omxserve and the
// offline CLIs. Empty (the default) disables caching entirely.
func CacheDir() *string {
	return flag.String("cache-dir", "", "content-addressed result cache directory ('' = no cache)")
}

// MaxJobs registers the canonical -max-jobs flag: the admission-queue
// bound of the simulation service. Submissions beyond it are shed with
// HTTP 429 rather than queued into unbounded memory.
func MaxJobs() *int {
	return flag.Int("max-jobs", 64, "admission queue bound; beyond it submissions are shed with 429")
}

// JobTimeout registers the canonical -job-timeout flag: the per-job
// deadline of the simulation service. A job still running past it is
// cancelled at the next between-points seam and reported failed.
func JobTimeout() *time.Duration {
	return flag.Duration("job-timeout", 10*time.Minute, "per-job wall-clock deadline (0 = none)")
}

// Strategy parses a single coalescing-strategy name.
func Strategy(name string) (nic.Strategy, error) {
	return nic.ParseStrategy(name)
}

// Strategies parses a comma-separated strategy list.
func Strategies(spec string) ([]nic.Strategy, error) {
	var out []nic.Strategy
	for _, s := range Split(spec) {
		st, err := nic.ParseStrategy(s)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

// DelayUS converts a microsecond count (the unit every delay flag uses)
// into simulated time.
func DelayUS(us int) sim.Time { return sim.Time(us) * sim.Microsecond }

// Delays parses a delay axis in microseconds: either a comma list
// ("25,75") or an inclusive lo:hi:step range ("0:100:25").
func Delays(spec string) ([]sim.Time, error) {
	if strings.Contains(spec, ":") {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad delay range %q, want lo:hi:step", spec)
		}
		lo, err1 := strconv.Atoi(parts[0])
		hi, err2 := strconv.Atoi(parts[1])
		step, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil || step <= 0 || hi < lo {
			return nil, fmt.Errorf("bad delay range %q", spec)
		}
		var ds []sim.Time
		for d := lo; d <= hi; d += step {
			ds = append(ds, DelayUS(d))
		}
		return ds, nil
	}
	var ds []sim.Time
	for _, s := range Split(spec) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("bad delay %q: %v", s, err)
		}
		ds = append(ds, DelayUS(v))
	}
	return ds, nil
}

// IRQPolicies parses a comma-separated IRQ-routing list.
func IRQPolicies(spec string) ([]host.IRQPolicy, error) {
	var out []host.IRQPolicy
	for _, s := range Split(spec) {
		p, err := host.ParseIRQPolicy(s)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Ints parses a comma-separated int list; what names the values in error
// messages ("size", "queue count", ...).
func Ints(spec, what string) ([]int, error) {
	var out []int
	for _, s := range Split(spec) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("bad %s %q: %v", what, s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// Uint64s parses a comma-separated uint64 list (seed axes).
func Uint64s(spec, what string) ([]uint64, error) {
	var out []uint64
	for _, s := range Split(spec) {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad %s %q: %v", what, s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// Float64s parses a comma-separated float list (probability axes).
func Float64s(spec, what string) ([]float64, error) {
	var out []float64
	for _, s := range Split(spec) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("bad %s %q: %v", what, s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// FaultFlags holds the static fault-injection flag group registered by
// Fault: uniform per-frame drop/duplicate/delay probabilities applied to
// every frame of the run (fabric.Fault). Time-varying faults (flaps,
// bursty loss) are the chaos scenario layer's job, not these knobs'.
type FaultFlags struct {
	Drop      *float64
	Dup       *float64
	DelayProb *float64
	DelayUS   *int
}

// Fault registers the canonical static fault flags (-drop, -dup, -delayp,
// -delayt) on the default flag set.
func Fault() *FaultFlags {
	return &FaultFlags{
		Drop:      flag.Float64("drop", 0, "per-frame drop probability in [0,1)"),
		Dup:       flag.Float64("dup", 0, "per-frame duplicate probability in [0,1)"),
		DelayProb: flag.Float64("delayp", 0, "per-frame reorder-delay probability in [0,1)"),
		DelayUS:   flag.Int("delayt", 100, "reorder hold-back in us for frames -delayp selects"),
	}
}

// Build validates the parsed values and assembles the fault, or nil when
// every probability is zero (no fault injected, frozen fast paths
// untouched).
func (ff *FaultFlags) Build() (*fabric.Fault, error) {
	for _, v := range []struct {
		name string
		p    float64
	}{
		{"-drop", *ff.Drop}, {"-dup", *ff.Dup}, {"-delayp", *ff.DelayProb},
	} {
		if v.p < 0 || v.p >= 1 {
			return nil, fmt.Errorf("%s %g outside [0,1)", v.name, v.p)
		}
	}
	if *ff.DelayUS < 0 {
		return nil, fmt.Errorf("-delayt %d is negative", *ff.DelayUS)
	}
	if *ff.Drop == 0 && *ff.Dup == 0 && *ff.DelayProb == 0 {
		return nil, nil
	}
	return &fabric.Fault{
		DropProb:  *ff.Drop,
		DupProb:   *ff.Dup,
		DelayProb: *ff.DelayProb,
		DelayTime: DelayUS(*ff.DelayUS),
	}, nil
}

// TraceFlags holds the telemetry flag group registered by Trace: the
// Chrome trace-event timeline path, the virtual-time sampling interval,
// and the sampled-series output path.
type TraceFlags struct {
	Trace     *string
	Sample    *string
	SampleOut *string
}

// Trace registers the canonical telemetry flags (-trace, -sample,
// -sample-out) on the default flag set.
func Trace() *TraceFlags {
	return &TraceFlags{
		Trace:     flag.String("trace", "", "write a Chrome/Perfetto trace-event timeline (JSON) to this path"),
		Sample:    flag.String("sample", "", "virtual-time metric sampling interval as a Go duration, e.g. 200us ('' = off)"),
		SampleOut: flag.String("sample-out", "", "write the sampled metric series to this path (.csv = CSV, else JSON)"),
	}
}

// Build validates the parsed values and creates the recorder, or nil when
// no telemetry was requested (the zero-overhead default).
func (tf *TraceFlags) Build() (*trace.Recorder, error) {
	every, err := SampleInterval(*tf.Sample)
	if err != nil {
		return nil, err
	}
	if *tf.SampleOut != "" && every == 0 {
		return nil, fmt.Errorf("-sample-out needs -sample to record a series")
	}
	if *tf.Trace == "" && every == 0 {
		return nil, nil
	}
	return trace.New(trace.Config{SampleEvery: every, Events: *tf.Trace != ""}), nil
}

// WriteOutputs writes the recorder's trace and series files as the parsed
// flags request. A nil recorder (telemetry off) writes nothing.
func (tf *TraceFlags) WriteOutputs(rec *trace.Recorder) error {
	if rec == nil {
		return nil
	}
	if path := *tf.Trace; path != "" {
		if err := writeTo(path, rec.WriteChromeTrace); err != nil {
			return err
		}
	}
	if path := *tf.SampleOut; path != "" {
		write := rec.WriteSeriesJSON
		if strings.HasSuffix(path, ".csv") {
			write = rec.WriteSeriesCSV
		}
		if err := writeTo(path, write); err != nil {
			return err
		}
	}
	return nil
}

// writeTo streams one exporter into a freshly created file.
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Flaps parses a -flap spec: comma-separated "node:down[:up]" link-flap
// windows with Go-duration offsets ("3:10ms:12ms"; omitted or zero up
// means down forever). Empty means no flaps (nil).
func Flaps(spec string) ([]chaos.LinkFlap, error) {
	var out []chaos.LinkFlap
	for _, s := range Split(spec) {
		parts := strings.Split(s, ":")
		if len(parts) != 2 && len(parts) != 3 {
			return nil, fmt.Errorf("bad flap %q, want node:down[:up]", s)
		}
		node, err := strconv.Atoi(parts[0])
		if err != nil || node < 0 {
			return nil, fmt.Errorf("bad flap node %q", parts[0])
		}
		down, err := time.ParseDuration(parts[1])
		if err != nil || down < 0 {
			return nil, fmt.Errorf("bad flap down time %q", parts[1])
		}
		lf := chaos.LinkFlap{Node: node, DownAt: sim.Time(down.Nanoseconds())}
		if len(parts) == 3 {
			up, err := time.ParseDuration(parts[2])
			if err != nil || up < 0 {
				return nil, fmt.Errorf("bad flap up time %q", parts[2])
			}
			lf.UpAt = sim.Time(up.Nanoseconds())
		}
		out = append(out, lf)
	}
	return out, nil
}

// GridSpec is the string-form sweep description shared by omxsweep's
// flags and omxserve's JSON job submissions: every axis in exactly the
// spelling the CLI accepts, so a job POSTed to the server and a sweep run
// offline parse through one vocabulary and produce one grid — the
// byte-identical-results contract between the two starts here. Empty
// fields leave the corresponding Grid axis empty (paper defaults).
type GridSpec struct {
	Strategies string `json:"strategies,omitempty"`
	Delays     string `json:"delays,omitempty"`
	Sizes      string `json:"sizes,omitempty"`
	IRQ        string `json:"irq,omitempty"`
	Queues     string `json:"queues,omitempty"`
	Nodes      string `json:"nodes,omitempty"`
	Bg         string `json:"bg,omitempty"`
	Seeds      string `json:"seeds,omitempty"`
	Drop       string `json:"drop,omitempty"`
	Burst      string `json:"burst,omitempty"`
	Iters      int    `json:"iters,omitempty"`
	Rate       bool   `json:"rate,omitempty"`
	QFrames    int    `json:"qframes,omitempty"`
	// Sample is the virtual-time metric-sampling interval as a Go
	// duration ("200us", "1ms"); empty disables per-point series.
	Sample string `json:"sample,omitempty"`
}

// Grid parses every axis and assembles the sweep grid. Errors carry the
// axis vocabulary's own messages, pinpointing the bad element.
func (s GridSpec) Grid() (sweep.Grid, error) {
	var g sweep.Grid
	var err error
	if g.Strategies, err = Strategies(s.Strategies); err != nil {
		return g, err
	}
	if g.Delays, err = Delays(s.Delays); err != nil {
		return g, err
	}
	if g.Sizes, err = Ints(s.Sizes, "size"); err != nil {
		return g, err
	}
	if g.IRQ, err = IRQPolicies(s.IRQ); err != nil {
		return g, err
	}
	if g.Queues, err = Ints(s.Queues, "queue count"); err != nil {
		return g, err
	}
	if g.Nodes, err = Ints(s.Nodes, "node count"); err != nil {
		return g, err
	}
	if g.BgStreams, err = Ints(s.Bg, "background stream count"); err != nil {
		return g, err
	}
	if g.Seeds, err = Uint64s(s.Seeds, "seed"); err != nil {
		return g, err
	}
	if g.DropProb, err = Float64s(s.Drop, "drop probability"); err != nil {
		return g, err
	}
	if g.Burst, err = Float64s(s.Burst, "burst length"); err != nil {
		return g, err
	}
	g.Iters = s.Iters
	g.Rate = s.Rate
	g.QFrames = s.QFrames
	if g.Sample, err = SampleInterval(s.Sample); err != nil {
		return g, err
	}
	return g, nil
}

// SampleInterval parses a metric-sampling interval: a Go duration string
// ("200us", "1ms") mapped onto virtual time; empty means disabled (0).
func SampleInterval(spec string) (sim.Time, error) {
	if spec == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(spec)
	if err != nil {
		return 0, fmt.Errorf("bad sample interval %q: %v", spec, err)
	}
	if d <= 0 {
		return 0, fmt.Errorf("bad sample interval %q: want > 0", spec)
	}
	return sim.Time(d.Nanoseconds()), nil
}

// Split breaks a comma-separated list, trimming blanks and dropping empty
// entries.
func Split(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
