// Package cliflag centralizes the flag vocabulary shared by the omx*
// commands (omxbench, omxsim, omxsweep, omxtune): the -sched scheduler
// selector and the parsers for strategy, delay, IRQ-policy, and numeric
// list flags. Before this package each command carried its own copy and
// they had already drifted; a flag spelling accepted by one command is now
// accepted by all of them.
package cliflag

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"openmxsim/internal/fabric"
	"openmxsim/internal/host"
	"openmxsim/internal/nic"
	"openmxsim/internal/sim"
)

// Sched registers the canonical -sched flag on the default flag set.
func Sched() *string {
	return flag.String("sched", "wheel", "event scheduler: wheel (timing wheel, default) | heap (legacy 4-ary heap)")
}

// ApplySched installs the named scheduler as the process default; call it
// with the parsed -sched value before building any cluster.
func ApplySched(name string) error {
	return sim.SetDefaultSchedulerByName(name)
}

// Par registers the canonical -par flag on the default flag set: the
// number of shard engines per simulated cluster (cluster.Config
// .Parallelism). 1 is the serial reference engine; higher values need an
// output-queued topology to engage and produce bit-identical results.
func Par() *int {
	return flag.Int("par", 1, "simulation shards per cluster (1 = serial reference engine; needs an output-queued topology to engage)")
}

// Strategy parses a single coalescing-strategy name.
func Strategy(name string) (nic.Strategy, error) {
	return nic.ParseStrategy(name)
}

// Strategies parses a comma-separated strategy list.
func Strategies(spec string) ([]nic.Strategy, error) {
	var out []nic.Strategy
	for _, s := range Split(spec) {
		st, err := nic.ParseStrategy(s)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

// DelayUS converts a microsecond count (the unit every delay flag uses)
// into simulated time.
func DelayUS(us int) sim.Time { return sim.Time(us) * sim.Microsecond }

// Delays parses a delay axis in microseconds: either a comma list
// ("25,75") or an inclusive lo:hi:step range ("0:100:25").
func Delays(spec string) ([]sim.Time, error) {
	if strings.Contains(spec, ":") {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad delay range %q, want lo:hi:step", spec)
		}
		lo, err1 := strconv.Atoi(parts[0])
		hi, err2 := strconv.Atoi(parts[1])
		step, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil || step <= 0 || hi < lo {
			return nil, fmt.Errorf("bad delay range %q", spec)
		}
		var ds []sim.Time
		for d := lo; d <= hi; d += step {
			ds = append(ds, DelayUS(d))
		}
		return ds, nil
	}
	var ds []sim.Time
	for _, s := range Split(spec) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("bad delay %q: %v", s, err)
		}
		ds = append(ds, DelayUS(v))
	}
	return ds, nil
}

// IRQPolicies parses a comma-separated IRQ-routing list.
func IRQPolicies(spec string) ([]host.IRQPolicy, error) {
	var out []host.IRQPolicy
	for _, s := range Split(spec) {
		p, err := host.ParseIRQPolicy(s)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Ints parses a comma-separated int list; what names the values in error
// messages ("size", "queue count", ...).
func Ints(spec, what string) ([]int, error) {
	var out []int
	for _, s := range Split(spec) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("bad %s %q: %v", what, s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// Uint64s parses a comma-separated uint64 list (seed axes).
func Uint64s(spec, what string) ([]uint64, error) {
	var out []uint64
	for _, s := range Split(spec) {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad %s %q: %v", what, s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// Float64s parses a comma-separated float list (probability axes).
func Float64s(spec, what string) ([]float64, error) {
	var out []float64
	for _, s := range Split(spec) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("bad %s %q: %v", what, s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// FaultFlags holds the static fault-injection flag group registered by
// Fault: uniform per-frame drop/duplicate/delay probabilities applied to
// every frame of the run (fabric.Fault). Time-varying faults (flaps,
// bursty loss) are the chaos scenario layer's job, not these knobs'.
type FaultFlags struct {
	Drop      *float64
	Dup       *float64
	DelayProb *float64
	DelayUS   *int
}

// Fault registers the canonical static fault flags (-drop, -dup, -delayp,
// -delayt) on the default flag set.
func Fault() *FaultFlags {
	return &FaultFlags{
		Drop:      flag.Float64("drop", 0, "per-frame drop probability in [0,1)"),
		Dup:       flag.Float64("dup", 0, "per-frame duplicate probability in [0,1)"),
		DelayProb: flag.Float64("delayp", 0, "per-frame reorder-delay probability in [0,1)"),
		DelayUS:   flag.Int("delayt", 100, "reorder hold-back in us for frames -delayp selects"),
	}
}

// Build validates the parsed values and assembles the fault, or nil when
// every probability is zero (no fault injected, frozen fast paths
// untouched).
func (ff *FaultFlags) Build() (*fabric.Fault, error) {
	for _, v := range []struct {
		name string
		p    float64
	}{
		{"-drop", *ff.Drop}, {"-dup", *ff.Dup}, {"-delayp", *ff.DelayProb},
	} {
		if v.p < 0 || v.p >= 1 {
			return nil, fmt.Errorf("%s %g outside [0,1)", v.name, v.p)
		}
	}
	if *ff.DelayUS < 0 {
		return nil, fmt.Errorf("-delayt %d is negative", *ff.DelayUS)
	}
	if *ff.Drop == 0 && *ff.Dup == 0 && *ff.DelayProb == 0 {
		return nil, nil
	}
	return &fabric.Fault{
		DropProb:  *ff.Drop,
		DupProb:   *ff.Dup,
		DelayProb: *ff.DelayProb,
		DelayTime: DelayUS(*ff.DelayUS),
	}, nil
}

// Split breaks a comma-separated list, trimming blanks and dropping empty
// entries.
func Split(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
