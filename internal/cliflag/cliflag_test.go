package cliflag

import (
	"reflect"
	"testing"

	"openmxsim/internal/host"
	"openmxsim/internal/nic"
	"openmxsim/internal/sim"
)

func TestDelaysListAndRange(t *testing.T) {
	got, err := Delays("25,75")
	if err != nil || !reflect.DeepEqual(got, []sim.Time{25 * sim.Microsecond, 75 * sim.Microsecond}) {
		t.Errorf("Delays list = %v, %v", got, err)
	}
	got, err = Delays("0:100:50")
	want := []sim.Time{0, 50 * sim.Microsecond, 100 * sim.Microsecond}
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Errorf("Delays range = %v, %v; want %v", got, err, want)
	}
	for _, bad := range []string{"1:2", "5:1:1", "0:10:0", "0:10:-1", "a,b", "1:b:3"} {
		if _, err := Delays(bad); err == nil {
			t.Errorf("Delays(%q) accepted", bad)
		}
	}
}

func TestStrategiesAndPolicies(t *testing.T) {
	got, err := Strategies("openmx, stream")
	if err != nil || !reflect.DeepEqual(got, []nic.Strategy{nic.StrategyOpenMX, nic.StrategyStream}) {
		t.Errorf("Strategies = %v, %v", got, err)
	}
	if _, err := Strategies("openmx,bogus"); err == nil {
		t.Error("unknown strategy accepted")
	}
	ps, err := IRQPolicies("all,single-core")
	if err != nil || !reflect.DeepEqual(ps, []host.IRQPolicy{host.IRQRoundRobin, host.IRQSingleCore}) {
		t.Errorf("IRQPolicies = %v, %v", ps, err)
	}
}

func TestNumericLists(t *testing.T) {
	is, err := Ints("1, 128,4096", "size")
	if err != nil || !reflect.DeepEqual(is, []int{1, 128, 4096}) {
		t.Errorf("Ints = %v, %v", is, err)
	}
	if _, err := Ints("x", "size"); err == nil {
		t.Error("bad int accepted")
	}
	us, err := Uint64s("1,7", "seed")
	if err != nil || !reflect.DeepEqual(us, []uint64{1, 7}) {
		t.Errorf("Uint64s = %v, %v", us, err)
	}
	if _, err := Uint64s("-1", "seed"); err == nil {
		t.Error("negative seed accepted")
	}
}

func TestSplitDropsBlanks(t *testing.T) {
	if got := Split(" a, ,b,,c "); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Split = %v", got)
	}
	if got := Split(""); got != nil {
		t.Errorf("Split(\"\") = %v, want nil", got)
	}
}
