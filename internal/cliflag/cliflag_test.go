package cliflag

import (
	"flag"
	"strings"
	"time"

	"reflect"
	"testing"

	"openmxsim/internal/host"
	"openmxsim/internal/nic"
	"openmxsim/internal/sim"
)

func TestDelaysListAndRange(t *testing.T) {
	got, err := Delays("25,75")
	if err != nil || !reflect.DeepEqual(got, []sim.Time{25 * sim.Microsecond, 75 * sim.Microsecond}) {
		t.Errorf("Delays list = %v, %v", got, err)
	}
	got, err = Delays("0:100:50")
	want := []sim.Time{0, 50 * sim.Microsecond, 100 * sim.Microsecond}
	if err != nil || !reflect.DeepEqual(got, want) {
		t.Errorf("Delays range = %v, %v; want %v", got, err, want)
	}
	for _, bad := range []string{"1:2", "5:1:1", "0:10:0", "0:10:-1", "a,b", "1:b:3"} {
		if _, err := Delays(bad); err == nil {
			t.Errorf("Delays(%q) accepted", bad)
		}
	}
}

func TestStrategiesAndPolicies(t *testing.T) {
	got, err := Strategies("openmx, stream")
	if err != nil || !reflect.DeepEqual(got, []nic.Strategy{nic.StrategyOpenMX, nic.StrategyStream}) {
		t.Errorf("Strategies = %v, %v", got, err)
	}
	if _, err := Strategies("openmx,bogus"); err == nil {
		t.Error("unknown strategy accepted")
	}
	ps, err := IRQPolicies("all,single-core")
	if err != nil || !reflect.DeepEqual(ps, []host.IRQPolicy{host.IRQRoundRobin, host.IRQSingleCore}) {
		t.Errorf("IRQPolicies = %v, %v", ps, err)
	}
}

func TestNumericLists(t *testing.T) {
	is, err := Ints("1, 128,4096", "size")
	if err != nil || !reflect.DeepEqual(is, []int{1, 128, 4096}) {
		t.Errorf("Ints = %v, %v", is, err)
	}
	if _, err := Ints("x", "size"); err == nil {
		t.Error("bad int accepted")
	}
	us, err := Uint64s("1,7", "seed")
	if err != nil || !reflect.DeepEqual(us, []uint64{1, 7}) {
		t.Errorf("Uint64s = %v, %v", us, err)
	}
	if _, err := Uint64s("-1", "seed"); err == nil {
		t.Error("negative seed accepted")
	}
}

func TestSplitDropsBlanks(t *testing.T) {
	if got := Split(" a, ,b,,c "); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Split = %v", got)
	}
	if got := Split(""); got != nil {
		t.Errorf("Split(\"\") = %v, want nil", got)
	}
}

// TestGridSpecSharedVocabulary: the string-axes form the server accepts
// over HTTP must build exactly the grid the omxsweep flags build — the
// byte-identical server-vs-offline contract rides on this equality.
func TestGridSpecSharedVocabulary(t *testing.T) {
	spec := GridSpec{
		Strategies: "timeout,openmx",
		Delays:     "0:50:25",
		Sizes:      "1,4096",
		IRQ:        "round-robin",
		Seeds:      "1,7",
		Drop:       "0,0.02",
		Burst:      "1",
		Iters:      5,
		Rate:       true,
		QFrames:    64,
	}
	g, err := spec.Grid()
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	if len(g.Strategies) != 2 || len(g.Delays) != 3 || len(g.Sizes) != 2 ||
		len(g.Seeds) != 2 || len(g.DropProb) != 2 {
		t.Fatalf("axes mis-parsed: %+v", g)
	}
	if g.Iters != 5 || !g.Rate || g.QFrames != 64 {
		t.Errorf("scalar knobs lost: %+v", g)
	}
	// The zero GridSpec is the paper-default single point.
	g, err = GridSpec{}.Grid()
	if err != nil {
		t.Fatalf("zero GridSpec: %v", err)
	}
	if g.Size() != 1 {
		t.Errorf("zero GridSpec expands to %d points, want 1", g.Size())
	}
	// Axis errors surface with the axis's own message.
	if _, err := (GridSpec{Sizes: "12,bogus"}).Grid(); err == nil {
		t.Error("bad size accepted")
	}
	if _, err := (GridSpec{Strategies: "nope"}).Grid(); err == nil {
		t.Error("bad strategy accepted")
	}
}

// TestServiceFlagsRegister pins the service flag group's names and
// defaults: loopback-only addr, cache off, bounded queue, finite job
// deadline.
func TestServiceFlagsRegister(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	old := flag.CommandLine
	flag.CommandLine = fs
	defer func() { flag.CommandLine = old }()

	addr, dir, jobs, timeout := Addr(), CacheDir(), MaxJobs(), JobTimeout()
	if err := fs.Parse([]string{"-addr", "127.0.0.1:0", "-cache-dir", "/tmp/c", "-max-jobs", "3", "-job-timeout", "30s"}); err != nil {
		t.Fatal(err)
	}
	if *addr != "127.0.0.1:0" || *dir != "/tmp/c" || *jobs != 3 || *timeout != 30*time.Second {
		t.Errorf("parsed %q %q %d %v", *addr, *dir, *jobs, *timeout)
	}

	fs2 := flag.NewFlagSet("defaults", flag.ContinueOnError)
	flag.CommandLine = fs2
	addr, dir, jobs, timeout = Addr(), CacheDir(), MaxJobs(), JobTimeout()
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(*addr, "127.0.0.1") {
		t.Errorf("default -addr %q is not loopback-only", *addr)
	}
	if *dir != "" || *jobs <= 0 || *timeout <= 0 {
		t.Errorf("defaults: dir=%q jobs=%d timeout=%v", *dir, *jobs, *timeout)
	}
}
