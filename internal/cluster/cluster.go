// Package cluster wires complete simulated testbeds: N hosts with their
// cores, NICs with a chosen coalescing strategy, the switch between them,
// and an Open-MX stack per node — the equivalent of the paper's two
// dual-socket quad-core Xeon nodes with Myri-10G NICs.
package cluster

import (
	"fmt"

	"openmxsim/internal/fabric"
	"openmxsim/internal/host"
	"openmxsim/internal/nic"
	"openmxsim/internal/omx"
	"openmxsim/internal/params"
	"openmxsim/internal/sim"
	"openmxsim/internal/wire"
)

// Config describes a testbed.
type Config struct {
	// Nodes is the host count (paper: 2).
	Nodes int
	// Topology selects the fabric switching model. The zero value is the
	// legacy direct model (ideal unbounded egress), which keeps every
	// existing 2-node configuration bit-identical; TopologyOutputQueued
	// enables bounded drop-tail egress queues with per-port stats for
	// N-node congestion scenarios.
	Topology fabric.Topology
	// Strategy and CoalesceDelay select the NIC interrupt behaviour.
	Strategy      nic.Strategy
	CoalesceDelay sim.Time
	// MaxFrames is the optional rx-frames coalescing bound.
	MaxFrames int
	// Feedback is the goal for StrategyFeedback (ignored by the other
	// strategies; zero fields fall back to the params defaults). The
	// tuner in internal/tune derives a goal from the chosen tradeoff
	// point.
	Feedback nic.FeedbackGoal
	// Queues > 1 enables the multiqueue extension.
	Queues int
	// IRQPolicy and IRQCore set interrupt routing (default round-robin).
	IRQPolicy host.IRQPolicy
	IRQCore   int
	// SleepDisabled keeps idle cores out of C1E ("Sleeping disabled").
	SleepDisabled bool
	// Seed drives all stochastic elements; equal seeds reproduce runs
	// bit for bit.
	Seed uint64
	// Params overrides the calibrated defaults when non-nil.
	Params *params.Params
	// Mark overrides the sender marking policy when non-nil.
	Mark *omx.MarkPolicy
	// Fault installs network fault injection.
	Fault *fabric.Fault
}

// Paper returns the paper's evaluation platform: two 8-core nodes, default
// 75 us timeout coalescing, round-robin IRQs, sleep enabled.
func Paper() Config {
	return Config{
		Nodes:         2,
		Strategy:      nic.StrategyTimeout,
		CoalesceDelay: 75 * sim.Microsecond,
		Seed:          1,
	}
}

// Validate reports whether the configuration can be built; New panics on
// exactly these conditions. Batch drivers (the sweep executor) call
// Validate up front so a malformed grid fails before any worker starts.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("cluster: need at least one node, have %d", c.Nodes)
	}
	if c.CoalesceDelay < 0 {
		return fmt.Errorf("cluster: negative coalescing delay %d", c.CoalesceDelay)
	}
	if c.MaxFrames < 0 {
		return fmt.Errorf("cluster: negative rx-frames bound %d", c.MaxFrames)
	}
	if c.Queues < 0 {
		return fmt.Errorf("cluster: negative queue count %d", c.Queues)
	}
	if !c.Strategy.Known() {
		return fmt.Errorf("cluster: unknown strategy %d", int(c.Strategy))
	}
	if c.Feedback.TargetIntrPerSec < 0 {
		return fmt.Errorf("cluster: negative feedback interrupt-rate target %g", c.Feedback.TargetIntrPerSec)
	}
	if c.Feedback.MaxLatency < 0 {
		return fmt.Errorf("cluster: negative feedback latency budget %d", c.Feedback.MaxLatency)
	}
	if err := c.Topology.Validate(); err != nil {
		return err
	}
	for node := range c.Topology.PortBandwidthBps {
		if node >= c.Nodes {
			return fmt.Errorf("cluster: port bandwidth override for node %d, have %d nodes", node, c.Nodes)
		}
	}
	if c.IRQPolicy < host.IRQRoundRobin || c.IRQPolicy > host.IRQPerQueue {
		return fmt.Errorf("cluster: unknown IRQ policy %d", int(c.IRQPolicy))
	}
	p := c.Params
	if p == nil {
		p = params.Default()
	}
	if c.IRQCore < 0 || c.IRQCore >= p.Host.Cores {
		return fmt.Errorf("cluster: IRQ core %d out of range [0,%d)", c.IRQCore, p.Host.Cores)
	}
	return nil
}

// stackRNGKey derives the per-node stack RNG namespace. Nodes 0..57 keep
// the historical 0xC0+i keys (existing seeds reproduce bit for bit); from
// node 58 on, 0xC0+i would collide with the switch's 0xFA key and correlate
// that stack's jitter with the fabric's, so large clusters jump to a
// disjoint namespace.
func stackRNGKey(i int) uint64 {
	k := uint64(0xC0 + i)
	if k >= 0xFA {
		return 0x1000 + uint64(i)
	}
	return k
}

// Cluster is a wired testbed.
type Cluster struct {
	Cfg    Config
	Eng    *sim.Engine
	P      *params.Params
	Switch *fabric.Switch
	Hosts  []*host.Host
	NICs   []*nic.NIC
	Stacks []*omx.Stack
	RNG    *sim.RNG
}

// New builds a cluster from cfg.
func New(cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := cfg.Params
	if p == nil {
		p = params.Default()
	}
	if cfg.SleepDisabled {
		p = p.Clone()
		p.Host.SleepEnabled = false
	}
	eng := sim.NewEngine()
	rng := sim.NewRNG(cfg.Seed)
	sw := fabric.NewSwitch(eng, p.Link, rng.Derive(0xFA))
	sw.SetTopology(cfg.Topology)
	if cfg.Fault != nil {
		sw.SetFault(cfg.Fault)
	}

	c := &Cluster{Cfg: cfg, Eng: eng, P: p, Switch: sw, RNG: rng}
	// One frame pool spans the cluster: frames allocated by a sender are
	// recycled when the receiving node releases them, so cross-node traffic
	// reuses a small working set instead of allocating per packet.
	pool := wire.NewPool()
	for i := 0; i < cfg.Nodes; i++ {
		h := host.New(eng, i, p.Host)
		h.SetIRQPolicy(cfg.IRQPolicy, cfg.IRQCore)
		n := nic.New(eng, p, h, sw, wire.NodeMAC(i), nic.Config{
			Strategy:  cfg.Strategy,
			Delay:     cfg.CoalesceDelay,
			MaxFrames: cfg.MaxFrames,
			Queues:    cfg.Queues,
			Feedback:  cfg.Feedback,
		})
		s := omx.NewStack(eng, p, h, n, rng.Derive(stackRNGKey(i)))
		s.SetFramePool(pool)
		if cfg.Mark != nil {
			s.Mark = *cfg.Mark
		}
		c.Hosts = append(c.Hosts, h)
		c.NICs = append(c.NICs, n)
		c.Stacks = append(c.Stacks, s)
	}
	// Per-port bandwidth overrides apply after the NICs registered their
	// ports (map order is irrelevant: ports are independent).
	for node, bps := range cfg.Topology.PortBandwidthBps {
		sw.SetPortBandwidth(wire.NodeMAC(node), bps)
	}
	return c
}

// OpenEndpoints opens ranksPerNode endpoints on every node, pinning rank r
// to node r/ranksPerNode, core (r mod ranksPerNode) mod cores, endpoint id
// r mod ranksPerNode — the paper's "8 processes per node (one per core)".
func (c *Cluster) OpenEndpoints(ranksPerNode int) []*omx.Endpoint {
	nodes := make([]int, c.Cfg.Nodes)
	for i := range nodes {
		nodes[i] = i
	}
	return c.OpenEndpointsOn(nodes, ranksPerNode)
}

// OpenEndpointsOn opens ranksPerNode endpoints on each listed node, in
// list order, with the same id/core placement as OpenEndpoints. It exists
// for N-node scenarios where the MPI job spans a subset of the cluster
// (e.g. a ping-pong pair on nodes 0-1 while nodes 2..N carry background
// traffic on separately opened endpoints).
func (c *Cluster) OpenEndpointsOn(nodes []int, ranksPerNode int) []*omx.Endpoint {
	if ranksPerNode <= 0 {
		panic("cluster: ranksPerNode must be positive")
	}
	var eps []*omx.Endpoint
	for _, node := range nodes {
		if node < 0 || node >= c.Cfg.Nodes {
			panic(fmt.Sprintf("cluster: node %d out of range [0,%d)", node, c.Cfg.Nodes))
		}
		h := c.Hosts[node]
		for i := 0; i < ranksPerNode; i++ {
			core := h.Cores[i%len(h.Cores)]
			eps = append(eps, c.Stacks[node].Open(uint8(i), core))
		}
	}
	return eps
}

// Addr returns the fabric address of endpoint ep on a node (world
// construction helper for >2-host scenarios).
func (c *Cluster) Addr(node int, ep uint8) omx.Addr {
	return omx.Addr{MAC: c.NICs[node].MAC(), EP: ep}
}

// PortStats returns the switch's egress-port counters for a node
// (occupancy, drops, queueing latency — meaningful under the
// output-queued topology).
func (c *Cluster) PortStats(node int) fabric.PortStats {
	return c.Switch.PortStats(c.NICs[node].MAC())
}

// Interrupts sums interrupts raised across all NICs ("on both sides", as
// Table II counts them).
func (c *Cluster) Interrupts() uint64 {
	var total uint64
	for _, n := range c.NICs {
		total += n.Stats.Interrupts
	}
	return total
}

// String describes the cluster.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster(%d nodes, %v, irq=%v)", c.Cfg.Nodes, c.NICs[0].Strategy(), c.Hosts[0].IRQPolicy())
}
