// Package cluster wires complete simulated testbeds: N hosts with their
// cores, NICs with a chosen coalescing strategy, the switch between them,
// and an Open-MX stack per node — the equivalent of the paper's two
// dual-socket quad-core Xeon nodes with Myri-10G NICs.
package cluster

import (
	"fmt"
	"slices"

	"openmxsim/internal/chaos"
	"openmxsim/internal/fabric"
	"openmxsim/internal/host"
	"openmxsim/internal/nic"
	"openmxsim/internal/omx"
	"openmxsim/internal/params"
	"openmxsim/internal/sim"
	"openmxsim/internal/trace"
	"openmxsim/internal/wire"
)

// Config describes a testbed.
type Config struct {
	// Nodes is the host count (paper: 2).
	Nodes int
	// Topology selects the fabric switching model. The zero value is the
	// legacy direct model (ideal unbounded egress), which keeps every
	// existing 2-node configuration bit-identical; TopologyOutputQueued
	// enables bounded drop-tail egress queues with per-port stats for
	// N-node congestion scenarios.
	Topology fabric.Topology
	// Strategy and CoalesceDelay select the NIC interrupt behaviour.
	Strategy      nic.Strategy
	CoalesceDelay sim.Time
	// MaxFrames is the optional rx-frames coalescing bound.
	MaxFrames int
	// Feedback is the goal for StrategyFeedback (ignored by the other
	// strategies; zero fields fall back to the params defaults). The
	// tuner in internal/tune derives a goal from the chosen tradeoff
	// point.
	Feedback nic.FeedbackGoal
	// Queues > 1 enables the multiqueue extension.
	Queues int
	// IRQPolicy and IRQCore set interrupt routing (default round-robin).
	IRQPolicy host.IRQPolicy
	IRQCore   int
	// SleepDisabled keeps idle cores out of C1E ("Sleeping disabled").
	SleepDisabled bool
	// Seed drives all stochastic elements; equal seeds reproduce runs
	// bit for bit.
	Seed uint64
	// Parallelism shards the simulation across this many engines running
	// on their own goroutines under the conservative synchronizer (see
	// internal/sim.Group): nodes are split into contiguous shards and
	// cross-node traffic crosses shards through the fabric's lookahead
	// window. Reports are bit-identical at every value. <= 1 (and any
	// value, for models that cannot shard: the direct topology has zero
	// lookahead) runs the classic single-engine simulation; the value is
	// clamped to the node count.
	Parallelism int
	// Params overrides the calibrated defaults when non-nil.
	Params *params.Params
	// Mark overrides the sender marking policy when non-nil.
	Mark *omx.MarkPolicy
	// Fault installs static network fault injection (uniform per-frame
	// drop/duplicate/delay probabilities).
	Fault *fabric.Fault
	// Scenario installs a time-varying fault plan — link flaps,
	// Gilbert–Elliott bursty loss, bandwidth degradation — evaluated by a
	// chaos.Engine composed onto the fabric's fault hook. Scenario and
	// Fault compose: the scenario decides first, the static probabilities
	// still apply to frames it lets through.
	Scenario *chaos.Scenario
	// Trace installs deterministic telemetry: per-node event timelines
	// and virtual-time-sampled metric series recorded into the given
	// recorder (see internal/trace). Each New claims the recorder's next
	// run index; a recorder must only be shared by clusters built and run
	// strictly sequentially. Nil (the default) records nothing and leaves
	// every report bit-identical to pre-trace builds.
	Trace *trace.Recorder
}

// Paper returns the paper's evaluation platform: two 8-core nodes, default
// 75 us timeout coalescing, round-robin IRQs, sleep enabled.
func Paper() Config {
	return Config{
		Nodes:         2,
		Strategy:      nic.StrategyTimeout,
		CoalesceDelay: 75 * sim.Microsecond,
		Seed:          1,
	}
}

// Validate reports whether the configuration can be built; New panics on
// exactly these conditions. Batch drivers (the sweep executor) call
// Validate up front so a malformed grid fails before any worker starts.
// Every rejection names the offending value and the accepted range in one
// consistent shape ("invalid <field> <value>: want <range>") so a sweep
// over thousands of points pinpoints the bad axis value immediately.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("cluster: invalid node count %d: want >= 1", c.Nodes)
	}
	if c.CoalesceDelay < 0 {
		return fmt.Errorf("cluster: invalid coalescing delay %dns: want >= 0", c.CoalesceDelay)
	}
	if c.MaxFrames < 0 {
		return fmt.Errorf("cluster: invalid rx-frames bound %d: want >= 0", c.MaxFrames)
	}
	if c.Queues < 0 {
		return fmt.Errorf("cluster: invalid queue count %d: want >= 0 (0 means 1)", c.Queues)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("cluster: invalid parallelism %d: want >= 0 (0 means serial)", c.Parallelism)
	}
	if !c.Strategy.Known() {
		return fmt.Errorf("cluster: invalid strategy %d: want one of %s", int(c.Strategy), nic.KnownStrategies())
	}
	if c.Feedback.TargetIntrPerSec < 0 {
		return fmt.Errorf("cluster: invalid feedback interrupt-rate target %g/s: want >= 0", c.Feedback.TargetIntrPerSec)
	}
	if c.Feedback.MaxLatency < 0 {
		return fmt.Errorf("cluster: invalid feedback latency budget %dns: want >= 0", c.Feedback.MaxLatency)
	}
	if err := c.Topology.Validate(); err != nil {
		return err
	}
	// Sorted iteration: with several out-of-range overrides the error
	// reported must not depend on randomized map order.
	var overridden []int
	for node := range c.Topology.PortBandwidthBps {
		overridden = append(overridden, node)
	}
	slices.Sort(overridden)
	for _, node := range overridden {
		if node >= c.Nodes {
			return fmt.Errorf("cluster: invalid port bandwidth override node %d: want [0,%d)", node, c.Nodes)
		}
	}
	if c.IRQPolicy < host.IRQRoundRobin || c.IRQPolicy > host.IRQPerQueue {
		return fmt.Errorf("cluster: invalid IRQ policy %d: want [%d,%d]", int(c.IRQPolicy), int(host.IRQRoundRobin), int(host.IRQPerQueue))
	}
	if c.Scenario != nil {
		if err := c.Scenario.Validate(); err != nil {
			return err
		}
	}
	p := c.Params
	if p == nil {
		p = params.Default()
	}
	if c.IRQCore < 0 || c.IRQCore >= p.Host.Cores {
		return fmt.Errorf("cluster: invalid IRQ core %d: want [0,%d)", c.IRQCore, p.Host.Cores)
	}
	return nil
}

// stackRNGKey derives the per-node stack RNG namespace. Nodes 0..57 keep
// the historical 0xC0+i keys (existing seeds reproduce bit for bit); from
// node 58 on, 0xC0+i would collide with the switch's 0xFA key and correlate
// that stack's jitter with the fabric's, so large clusters jump to a
// disjoint namespace.
func stackRNGKey(i int) uint64 {
	k := uint64(0xC0 + i)
	if k >= 0xFA {
		return 0x1000 + uint64(i)
	}
	return k
}

// Cluster is a wired testbed.
type Cluster struct {
	Cfg Config
	// Eng is the shard-0 engine — the only engine when Parallelism
	// resolves to 1, which is how all pre-PDES code paths use it. Code
	// that may face a sharded cluster uses EngineFor/ScheduleOn and the
	// cluster-level Run/RunUntil instead.
	Eng *sim.Engine
	// Engines holds one engine per shard; Engines[0] == Eng. Its length is
	// the resolved parallelism (see Parallelism).
	Engines []*sim.Engine
	P       *params.Params
	Switch  *fabric.Switch
	Hosts   []*host.Host
	NICs    []*nic.NIC
	Stacks  []*omx.Stack
	RNG     *sim.RNG
	// Chaos is the scenario evaluation engine when Config.Scenario is
	// set (nil otherwise); its counters report what the scenario did.
	Chaos *chaos.Engine

	group   *sim.Group
	shardOf []int // node index -> shard index
	// flapEdges counts scenario flap-edge marker events fired per node.
	// Each slot is only written from the owning shard's engine.
	flapEdges []uint64
	// traceNodes holds one telemetry handle per node when Config.Trace is
	// set (nil otherwise). Each handle is only written from the owning
	// shard's engine — the same ownership discipline as flapEdges.
	traceNodes []*trace.Node
}

// resolvePar maps the configured Parallelism to the effective shard count:
// clamped to the node count, and forced to 1 when the topology cannot shard
// (the direct model's shared egress horizons have zero lookahead). The
// fallback is silent by design — "run this config at -par N" is always
// safe, never wrong, and at worst serial.
func resolvePar(cfg Config, lookahead sim.Time) int {
	par := cfg.Parallelism
	if par < 1 {
		par = 1
	}
	if par > cfg.Nodes {
		par = cfg.Nodes
	}
	if lookahead <= 0 {
		par = 1
	}
	return par
}

// New builds a cluster from cfg.
func New(cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := cfg.Params
	if p == nil {
		p = params.Default()
	}
	if cfg.SleepDisabled {
		p = p.Clone()
		p.Host.SleepEnabled = false
	}
	eng := sim.NewEngine()
	rng := sim.NewRNG(cfg.Seed)
	sw := fabric.NewSwitch(eng, p.Link, rng.Derive(0xFA))
	sw.SetTopology(cfg.Topology)
	// Compose the scenario hook onto the static fault plan. The caller's
	// Fault is copied, never mutated; with no scenario the original
	// pointer is installed untouched, keeping pre-existing configurations
	// bit-identical.
	fault := cfg.Fault
	var chaosEng *chaos.Engine
	if cfg.Scenario != nil {
		ce, err := chaos.New(*cfg.Scenario, cfg.Nodes)
		if err != nil {
			panic(err) // Validate caught everything reachable here
		}
		chaosEng = ce
		fl := fabric.Fault{}
		if cfg.Fault != nil {
			fl = *cfg.Fault
		}
		fl.Hook = ce
		fault = &fl
	}
	if fault != nil {
		sw.SetFault(fault)
	}

	par := resolvePar(cfg, sw.Lookahead())
	engs := make([]*sim.Engine, par)
	engs[0] = eng
	for i := 1; i < par; i++ {
		engs[i] = sim.NewEngine()
	}

	c := &Cluster{Cfg: cfg, Eng: eng, Engines: engs, P: p, Switch: sw, RNG: rng}
	c.shardOf = make([]int, cfg.Nodes)
	for i := range c.shardOf {
		// Contiguous balanced shards: node i -> shard i*par/Nodes.
		c.shardOf[i] = i * par / cfg.Nodes
	}
	if par > 1 {
		sw.SetShardCount(par)
		c.group = sim.NewGroup(engs, sw.Lookahead(), sw.FlushShards)
	}

	// One frame pool spans the cluster: frames allocated by a sender are
	// recycled when the receiving node releases them, so cross-node traffic
	// reuses a small working set instead of allocating per packet. Under
	// sharding the sender and releaser may be on different goroutines, so
	// the free list goes behind its mutex.
	pool := wire.NewPool()
	if par > 1 {
		pool.Share()
	}
	for i := 0; i < cfg.Nodes; i++ {
		neng := engs[c.shardOf[i]]
		h := host.New(neng, i, p.Host)
		h.SetIRQPolicy(cfg.IRQPolicy, cfg.IRQCore)
		n := nic.New(neng, p, h, sw, wire.NodeMAC(i), nic.Config{
			Strategy:  cfg.Strategy,
			Delay:     cfg.CoalesceDelay,
			MaxFrames: cfg.MaxFrames,
			Queues:    cfg.Queues,
			Feedback:  cfg.Feedback,
		})
		if par > 1 {
			sw.BindPort(wire.NodeMAC(i), c.shardOf[i], neng)
		}
		s := omx.NewStack(neng, p, h, n, rng.Derive(stackRNGKey(i)))
		s.SetFramePool(pool)
		if cfg.Mark != nil {
			s.Mark = *cfg.Mark
		}
		c.Hosts = append(c.Hosts, h)
		c.NICs = append(c.NICs, n)
		c.Stacks = append(c.Stacks, s)
	}
	if cfg.Trace != nil {
		c.traceNodes = cfg.Trace.Start(cfg.Nodes)
		every := cfg.Trace.SampleEvery()
		for i := 0; i < cfg.Nodes; i++ {
			c.NICs[i].SetTrace(c.traceNodes[i])
			c.Stacks[i].SetTrace(c.traceNodes[i])
			if cfg.Topology.Kind == fabric.TopologyOutputQueued {
				// The node's egress port is bound to the node's shard, so
				// its drop events share the handle's single-writer shard.
				sw.BindTrace(wire.NodeMAC(i), c.traceNodes[i])
			}
			if every > 0 {
				c.installSampler(i, every)
			}
		}
	}
	// Per-port bandwidth overrides apply after the NICs registered their
	// ports (map order is irrelevant: ports are independent).
	//omxlint:allow maprange: ports are independent, each override touches only its own port
	for node, bps := range cfg.Topology.PortBandwidthBps {
		sw.SetPortBandwidth(wire.NodeMAC(node), bps)
	}
	if chaosEng != nil {
		c.Chaos = chaosEng
		// Mark each one-shot flap edge with an event on the owning
		// node's shard engine: a trace of the run shows when the
		// scenario acted, and an otherwise idle shard still advances its
		// clock across the edge. Periodic flaps beyond the first window
		// are evaluated arithmetically (an unbounded edge train would
		// keep the engines from draining), so the marker set is finite.
		c.flapEdges = make([]uint64, cfg.Nodes)
		for node := 0; node < cfg.Nodes; node++ {
			n := node
			for _, at := range cfg.Scenario.Edges(node) {
				c.ScheduleOn(n, at, func() {
					c.flapEdges[n]++
					c.traceNode(n).Event(c.EngineFor(n).Now(), trace.EvFlapEdge, int64(c.flapEdges[n]))
				})
			}
		}
	}
	return c
}

// traceNode returns node n's telemetry handle (nil when tracing is off;
// every trace.Node method is a nil-receiver no-op).
func (c *Cluster) traceNode(n int) *trace.Node {
	if c.traceNodes == nil {
		return nil
	}
	return c.traceNodes[n]
}

// installSampler plants node's metric sampler: a self-re-arming tick on
// the node's own shard engine, so every read below touches only state the
// tick's shard owns. The tick stops re-arming after one fully quiet
// interval (no packet or interrupt activity on the node), so a cluster
// that would otherwise drain still drains and the liveness watchdog keeps
// seeing real deadlocks; window-driven harnesses (RunUntil) simply leave
// the final pending tick unexecuted.
func (c *Cluster) installSampler(node int, every sim.Time) {
	eng := c.EngineFor(node)
	// ^uint64(0) cannot equal a real activity count, so the first tick
	// always re-arms and an idle node still contributes one sample.
	last := ^uint64(0)
	var tick func()
	tick = func() {
		now := eng.Now()
		c.sampleNode(now, node)
		act := c.nodeActivity(node)
		if act == last {
			return
		}
		last = act
		eng.Schedule(now+every, tick)
	}
	eng.Schedule(every, tick)
}

// nodeActivity fingerprints a node's traffic counters; an unchanged value
// across a whole sampling interval means the node has gone quiet.
func (c *Cluster) nodeActivity(node int) uint64 {
	n, s := c.NICs[node], c.Stacks[node]
	return n.Stats.PacketsReceived + n.Stats.PacketsSent + n.Stats.Interrupts +
		s.Stats.PacketsIn + s.Stats.PacketsOut
}

// sampleNode records one metric sample for node at virtual time at. All
// reads are confined to the node's own NIC, stack, and egress port — state
// owned by the sampler's shard — and are read-only, so sampling never
// changes what the simulation reports.
func (c *Cluster) sampleNode(at sim.Time, node int) {
	n, s := c.NICs[node], c.Stacks[node]
	smp := trace.Sample{
		At:              at,
		Interrupts:      n.Stats.Interrupts,
		CoalesceDelayNS: int64(n.CurrentDelay()),
		PacketsIn:       s.Stats.PacketsIn,
		PacketsOut:      s.Stats.PacketsOut,
		RingDrops:       n.Stats.RingDrops,
		Retransmits:     s.Stats.Retransmits,
		Backoffs:        s.Stats.Backoffs,
		GiveUps:         s.Stats.GiveUps,
		PullRetries:     s.Stats.PullBlockRetries,
		FeedbackSteps:   n.Stats.FeedbackSteps,
		FeedbackClamps:  n.Stats.FeedbackClamps,
	}
	if c.Cfg.Topology.Kind == fabric.TopologyOutputQueued {
		smp.QueueFrames = c.Switch.QueueLen(n.MAC())
		smp.PortDrops = c.Switch.PortStats(n.MAC()).Drops
	}
	c.traceNodes[node].Sample(smp)
}

// FlapEdges returns how many scenario flap-edge markers have fired so
// far across all nodes. Call it at a quiescent point (after Run or
// between RunUntil windows), like every cross-shard counter read.
func (c *Cluster) FlapEdges() uint64 {
	var t uint64
	for _, n := range c.flapEdges {
		t += n
	}
	return t
}

// Parallelism returns the resolved shard count (>= 1; see Config).
func (c *Cluster) Parallelism() int { return len(c.Engines) }

// EngineFor returns the engine that owns node's events. Model code bound
// to a node must schedule there; cluster-wide control belongs on Run /
// RunUntil instead.
func (c *Cluster) EngineFor(node int) *sim.Engine { return c.Engines[c.shardOf[node]] }

// ScheduleOn schedules fn at virtual time at on node's shard engine — the
// harness-facing way to plant per-node workload drivers that is correct at
// any parallelism.
func (c *Cluster) ScheduleOn(node int, at sim.Time, fn func()) *sim.Event {
	return c.EngineFor(node).Schedule(at, fn)
}

// Run executes the simulation to completion: the conservative synchronizer
// when sharded, the engine's own loop otherwise.
func (c *Cluster) Run() {
	if c.group != nil {
		c.group.Run()
		return
	}
	c.Eng.Run()
}

// RunUntil executes all events with timestamps <= t and advances every
// shard's clock to t.
func (c *Cluster) RunUntil(t sim.Time) {
	if c.group != nil {
		c.group.RunUntil(t)
		return
	}
	c.Eng.RunUntil(t)
}

// Now returns the cluster-wide virtual time: the maximum over shard clocks,
// which equals the serial engine's clock at every quiescent point (idle
// shards' clocks park at their own last event).
func (c *Cluster) Now() sim.Time {
	now := c.Eng.Now()
	for _, e := range c.Engines[1:] {
		if t := e.Now(); t > now {
			now = t
		}
	}
	return now
}

// OpenEndpoints opens ranksPerNode endpoints on every node, pinning rank r
// to node r/ranksPerNode, core (r mod ranksPerNode) mod cores, endpoint id
// r mod ranksPerNode — the paper's "8 processes per node (one per core)".
func (c *Cluster) OpenEndpoints(ranksPerNode int) []*omx.Endpoint {
	nodes := make([]int, c.Cfg.Nodes)
	for i := range nodes {
		nodes[i] = i
	}
	return c.OpenEndpointsOn(nodes, ranksPerNode)
}

// OpenEndpointsOn opens ranksPerNode endpoints on each listed node, in
// list order, with the same id/core placement as OpenEndpoints. It exists
// for N-node scenarios where the MPI job spans a subset of the cluster
// (e.g. a ping-pong pair on nodes 0-1 while nodes 2..N carry background
// traffic on separately opened endpoints).
func (c *Cluster) OpenEndpointsOn(nodes []int, ranksPerNode int) []*omx.Endpoint {
	if ranksPerNode <= 0 {
		panic("cluster: ranksPerNode must be positive")
	}
	var eps []*omx.Endpoint
	for _, node := range nodes {
		if node < 0 || node >= c.Cfg.Nodes {
			panic(fmt.Sprintf("cluster: node %d out of range [0,%d)", node, c.Cfg.Nodes))
		}
		h := c.Hosts[node]
		for i := 0; i < ranksPerNode; i++ {
			core := h.Cores[i%len(h.Cores)]
			eps = append(eps, c.Stacks[node].Open(uint8(i), core))
		}
	}
	return eps
}

// Addr returns the fabric address of endpoint ep on a node (world
// construction helper for >2-host scenarios).
func (c *Cluster) Addr(node int, ep uint8) omx.Addr {
	return omx.Addr{MAC: c.NICs[node].MAC(), EP: ep}
}

// PortStats returns the switch's egress-port counters for a node
// (occupancy, drops, queueing latency — meaningful under the
// output-queued topology).
func (c *Cluster) PortStats(node int) fabric.PortStats {
	return c.Switch.PortStats(c.NICs[node].MAC())
}

// Interrupts sums interrupts raised across all NICs ("on both sides", as
// Table II counts them).
func (c *Cluster) Interrupts() uint64 {
	var total uint64
	for _, n := range c.NICs {
		total += n.Stats.Interrupts
	}
	return total
}

// String describes the cluster.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster(%d nodes, %v, irq=%v)", c.Cfg.Nodes, c.NICs[0].Strategy(), c.Hosts[0].IRQPolicy())
}
