package cluster

import (
	"strings"
	"testing"

	"openmxsim/internal/fabric"
	"openmxsim/internal/host"
	"openmxsim/internal/nic"
	"openmxsim/internal/sim"
)

func TestPaperConfig(t *testing.T) {
	cfg := Paper()
	if cfg.Nodes != 2 {
		t.Errorf("nodes = %d", cfg.Nodes)
	}
	if cfg.Strategy != nic.StrategyTimeout {
		t.Errorf("strategy = %v", cfg.Strategy)
	}
	if cfg.CoalesceDelay != 75*sim.Microsecond {
		t.Errorf("delay = %v", cfg.CoalesceDelay)
	}
}

func TestNewWiresEverything(t *testing.T) {
	c := New(Paper())
	if len(c.Hosts) != 2 || len(c.NICs) != 2 || len(c.Stacks) != 2 {
		t.Fatalf("wiring: %d hosts %d nics %d stacks", len(c.Hosts), len(c.NICs), len(c.Stacks))
	}
	if len(c.Hosts[0].Cores) != 8 {
		t.Errorf("cores = %d, want 8 (dual-socket quad-core)", len(c.Hosts[0].Cores))
	}
	if c.NICs[0].MAC() == c.NICs[1].MAC() {
		t.Error("NICs share a MAC")
	}
}

func TestOpenEndpointsPlacement(t *testing.T) {
	c := New(Paper())
	eps := c.OpenEndpoints(8)
	if len(eps) != 16 {
		t.Fatalf("endpoints = %d", len(eps))
	}
	// Rank 0 on node 0 core 0; rank 8 is the first rank of node 1.
	if eps[0].Addr().MAC != c.NICs[0].MAC() {
		t.Error("rank 0 not on node 0")
	}
	if eps[8].Addr().MAC != c.NICs[1].MAC() {
		t.Error("rank 8 not on node 1")
	}
	if eps[0].Core().ID != 0 || eps[15].Core().ID != 7 {
		t.Errorf("core pinning: rank0->%d rank15->%d", eps[0].Core().ID, eps[15].Core().ID)
	}
}

func TestSleepDisabledPropagates(t *testing.T) {
	cfg := Paper()
	cfg.SleepDisabled = true
	c := New(cfg)
	if c.P.Host.SleepEnabled {
		t.Error("SleepDisabled did not reach host params")
	}
	// The shared default params must not have been mutated.
	c2 := New(Paper())
	if !c2.P.Host.SleepEnabled {
		t.Error("params leaked between configs")
	}
}

func TestIRQPolicyPropagates(t *testing.T) {
	cfg := Paper()
	cfg.IRQPolicy = host.IRQSingleCore
	cfg.IRQCore = 3
	c := New(cfg)
	for i := 0; i < 4; i++ {
		if got := c.Hosts[0].IRQTarget(0); got.ID != 3 {
			t.Fatalf("IRQ target core %d, want 3", got.ID)
		}
	}
}

func TestInterruptsAggregation(t *testing.T) {
	c := New(Paper())
	if c.Interrupts() != 0 {
		t.Errorf("fresh cluster has %d interrupts", c.Interrupts())
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-node cluster did not panic")
		}
	}()
	New(Config{Nodes: 0})
}

func TestValidate(t *testing.T) {
	if err := Paper().Validate(); err != nil {
		t.Errorf("paper platform invalid: %v", err)
	}
	bad := []Config{
		{Nodes: 0},
		func() Config { c := Paper(); c.CoalesceDelay = -1; return c }(),
		func() Config { c := Paper(); c.Queues = -1; return c }(),
		func() Config { c := Paper(); c.Strategy = 99; return c }(),
		func() Config { c := Paper(); c.IRQPolicy = 99; return c }(),
		func() Config { c := Paper(); c.IRQCore = 99; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestValidateTopology(t *testing.T) {
	good := Paper()
	good.Nodes = 4
	good.Topology = fabric.Topology{
		Kind:              fabric.TopologyOutputQueued,
		EgressQueueFrames: 32,
		PortBandwidthBps:  map[int]int64{3: 1_000_000_000},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("good topology rejected: %v", err)
	}
	bad := []Config{
		func() Config { c := Paper(); c.Topology.Kind = 9; return c }(),
		func() Config { c := Paper(); c.Topology.EgressQueueFrames = -1; return c }(),
		func() Config { c := Paper(); c.Topology.Discipline = 5; return c }(),
		func() Config { // override beyond the node count
			c := Paper()
			c.Topology.Kind = fabric.TopologyOutputQueued
			c.Topology.PortBandwidthBps = map[int]int64{5: 1_000_000_000}
			return c
		}(),
		func() Config { // override under the frozen direct model
			c := Paper()
			c.Topology.PortBandwidthBps = map[int]int64{1: 1_000_000_000}
			return c
		}(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad topology %d accepted: %+v", i, c.Topology)
		}
	}
}

func TestNNodeClusterWiring(t *testing.T) {
	cfg := Paper()
	cfg.Nodes = 5
	cfg.Topology = fabric.Topology{Kind: fabric.TopologyOutputQueued}
	cl := New(cfg)
	if len(cl.Hosts) != 5 || len(cl.NICs) != 5 || len(cl.Stacks) != 5 {
		t.Fatalf("wired %d/%d/%d hosts/nics/stacks, want 5 each", len(cl.Hosts), len(cl.NICs), len(cl.Stacks))
	}
	// Every port is attached and reachable for stats.
	for node := 0; node < 5; node++ {
		_ = cl.PortStats(node)
	}
	if a := cl.Addr(3, 7); a.MAC != cl.NICs[3].MAC() || a.EP != 7 {
		t.Errorf("Addr(3,7) = %v", a)
	}
}

func TestOpenEndpointsOnSubset(t *testing.T) {
	cfg := Paper()
	cfg.Nodes = 4
	cl := New(cfg)
	eps := cl.OpenEndpointsOn([]int{0, 2}, 2)
	if len(eps) != 4 {
		t.Fatalf("opened %d endpoints, want 4", len(eps))
	}
	if eps[0].Addr().MAC != cl.NICs[0].MAC() || eps[2].Addr().MAC != cl.NICs[2].MAC() {
		t.Error("endpoints landed on wrong nodes")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range node did not panic")
		}
	}()
	cl.OpenEndpointsOn([]int{9}, 1)
}

// TestValidateMessages pins the rejection style: every message names the
// offending value and the valid range ("invalid <field> <value>: want
// <range>"), so a bad knob in a wide sweep is pinpointed by value rather
// than hunted by position.
func TestValidateMessages(t *testing.T) {
	mut := func(f func(*Config)) Config { c := Paper(); f(&c); return c }
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"nodes", mut(func(c *Config) { c.Nodes = 0 }), "invalid node count 0: want >= 1"},
		{"delay", mut(func(c *Config) { c.CoalesceDelay = -5 }), "invalid coalescing delay -5ns: want >= 0"},
		{"frames", mut(func(c *Config) { c.MaxFrames = -2 }), "invalid rx-frames bound -2: want >= 0"},
		{"queues", mut(func(c *Config) { c.Queues = -1 }), "invalid queue count -1: want >= 0"},
		{"par", mut(func(c *Config) { c.Parallelism = -3 }), "invalid parallelism -3: want >= 0"},
		{"strategy", mut(func(c *Config) { c.Strategy = 99 }), "invalid strategy 99: want one of"},
		{"feedback rate", mut(func(c *Config) { c.Feedback.TargetIntrPerSec = -1 }), "invalid feedback interrupt-rate target -1/s: want >= 0"},
		{"feedback budget", mut(func(c *Config) { c.Feedback.MaxLatency = -7 }), "invalid feedback latency budget -7ns: want >= 0"},
		{"irq policy", mut(func(c *Config) { c.IRQPolicy = 99 }), "invalid IRQ policy 99: want ["},
		{"irq core", mut(func(c *Config) { c.IRQCore = 99 }), "invalid IRQ core 99: want [0,"},
		{"port override", mut(func(c *Config) {
			c.Topology.Kind = fabric.TopologyOutputQueued
			c.Topology.PortBandwidthBps = map[int]int64{99: 1}
		}), "invalid port bandwidth override node 99: want [0,"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil {
				t.Fatalf("config accepted: %+v", tc.cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}
