package cluster

import (
	"context"
	"fmt"
	"strings"

	"openmxsim/internal/sim"
)

// Watchdog bounds a watched run's liveness. The zero value gets sane
// defaults from its fields' docs.
type Watchdog struct {
	// Interval is the virtual-time check granularity (default 100 ms).
	Interval sim.Time
	// Idle is how many consecutive intervals may pass without any frame
	// delivered, packet sent, or shared-memory message before the run is
	// declared wedged (default 3).
	Idle int
	// MaxVirtual, when > 0, is an absolute virtual-time budget; a run
	// still holding pending events past it fails.
	MaxVirtual sim.Time
}

func (w Watchdog) withDefaults() Watchdog {
	if w.Interval <= 0 {
		w.Interval = 100 * sim.Millisecond
	}
	if w.Idle <= 0 {
		w.Idle = 3
	}
	return w
}

// WedgeError reports a run that failed liveness: either no progress for
// Idle consecutive intervals with events still pending, or the virtual
// clock exceeding MaxVirtual. Diagnostics is a multi-line snapshot of
// engine and stack state at the moment the watchdog fired.
type WedgeError struct {
	At          sim.Time
	Reason      string
	Diagnostics string
}

func (e *WedgeError) Error() string {
	return fmt.Sprintf("cluster: run wedged at t=%v: %s\n%s", e.At, e.Reason, e.Diagnostics)
}

// RunWatched executes the simulation to completion like Run, but under a
// liveness watchdog: it advances the cluster in Interval-sized windows
// and, between windows, checks that traffic is still flowing. A run
// whose engines hold pending events yet move no frames for Idle
// consecutive intervals — a retry loop that lost its peer, a
// self-rearming timer with no workload behind it — fails with a
// *WedgeError carrying diagnostics instead of spinning forever. Returns
// nil when every engine drains (the normal end of a run).
//
// The interval check is a quiescent point (all shards parked), so
// reading cross-shard counters here is safe at any parallelism.
func (c *Cluster) RunWatched(w Watchdog) error {
	return c.RunWatchedContext(context.Background(), w)
}

// RunWatchedContext is RunWatched under external supervision. The two
// failure modes are deliberately distinct error types: a run the caller
// cancelled (or whose deadline expired) returns an error wrapping the
// context's — errors.Is against context.Canceled / DeadlineExceeded
// works, errors.As against *WedgeError fails — while a genuine liveness
// failure returns a *WedgeError exactly as RunWatched does. A supervisor
// classifying failures for retry or alerting must never mistake a user's
// cancel for a wedged simulation, and vice versa.
//
// Cancellation is observed at the window boundary (the same quiescent
// point as the liveness check), so a cancelled run stops with all shards
// parked and its per-window progress identical to an uncancelled run's.
func (c *Cluster) RunWatchedContext(ctx context.Context, w Watchdog) error {
	w = w.withDefaults()
	last := c.progress()
	idle := 0
	for {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("cluster: run cancelled at t=%v: %w", c.Now(), err)
		}
		t, ok := c.peekTime()
		if !ok {
			return nil // all engines drained: normal completion
		}
		if w.MaxVirtual > 0 && t > w.MaxVirtual {
			return &WedgeError{
				At:          c.Now(),
				Reason:      fmt.Sprintf("virtual time budget %v exceeded (next event at %v)", w.MaxVirtual, t),
				Diagnostics: c.diagnostics(),
			}
		}
		// Advance one window from the earliest pending work, so a long
		// quiet gap (a backed-off retry far in the future) counts as one
		// interval, not thousands.
		c.RunUntil(t + w.Interval)
		cur := c.progress()
		if cur == last {
			idle++
			if idle >= w.Idle {
				return &WedgeError{
					At:          c.Now(),
					Reason:      fmt.Sprintf("no frame progress for %d consecutive %v intervals with events pending", idle, w.Interval),
					Diagnostics: c.diagnostics(),
				}
			}
		} else {
			idle = 0
			last = cur
		}
	}
}

// progress is the watchdog's progress signature: anything that moves a
// message. Event execution alone deliberately does not count — a
// self-rearming timer executes forever without progressing the run.
func (c *Cluster) progress() uint64 {
	p := c.Switch.FramesDelivered()
	for _, s := range c.Stacks {
		p += s.Stats.PacketsOut + s.Stats.ShmSent
	}
	return p
}

// peekTime returns the earliest pending event time across all shard
// engines.
func (c *Cluster) peekTime() (sim.Time, bool) {
	var best sim.Time
	found := false
	for _, e := range c.Engines {
		if t, ok := e.PeekTime(); ok && (!found || t < best) {
			best, found = t, true
		}
	}
	return best, found
}

// diagnostics renders the per-engine and per-node state the moment the
// watchdog fired.
func (c *Cluster) diagnostics() string {
	var b strings.Builder
	for i, e := range c.Engines {
		t, ok := e.PeekTime()
		next := "drained"
		if ok {
			next = fmt.Sprint(t)
		}
		fmt.Fprintf(&b, "  engine[%d]: now=%v executed=%d pending=%d next=%s\n",
			i, e.Now(), e.Executed, e.Pending(), next)
	}
	for i, s := range c.Stacks {
		st := &s.Stats
		fmt.Fprintf(&b, "  node[%d]: out=%d in=%d retx=%d backoffs=%d giveups=%d pullRetries=%d\n",
			i, st.PacketsOut, st.PacketsIn, st.Retransmits, st.Backoffs, st.GiveUps, st.PullBlockRetries)
	}
	if c.Chaos != nil {
		cs := c.Chaos.Stats()
		fmt.Fprintf(&b, "  chaos: flapDrops=%d geDrops=%d transitions=%d degraded=%d flapEdges=%d\n",
			cs.FlapDrops, cs.GEDrops, cs.Transitions, cs.Degraded, c.FlapEdges())
	}
	return strings.TrimRight(b.String(), "\n")
}
