package cluster

import (
	"context"
	"errors"
	"strings"
	"testing"

	"openmxsim/internal/chaos"
	"openmxsim/internal/fabric"
	"openmxsim/internal/omx"
	"openmxsim/internal/sim"
)

// TestRunWatchedDrainsCleanly: an ordinary exchange under the watchdog
// completes exactly like Run — the watchdog stays quiet.
func TestRunWatchedDrainsCleanly(t *testing.T) {
	c := New(Paper())
	eps := c.OpenEndpoints(1)
	done := false
	eps[1].Irecv(0, 0, nil, 4096, nil)
	c.ScheduleOn(0, 0, func() {
		eps[0].Isend(c.Addr(1, 0), 1, nil, 4096, func() { done = true })
	})
	if err := c.RunWatched(Watchdog{}); err != nil {
		t.Fatalf("watchdog fired on a healthy run: %v", err)
	}
	if !done {
		t.Fatal("send never completed")
	}
}

// TestRunWatchedPermanentFlapGivesUp is the PR's acceptance scenario: a
// large (rendezvous) send into a permanently-down link must terminate
// with ErrGiveUp on the handle within the retry budget — and because the
// retry train is bounded, the engines drain and the watchdog never fires.
func TestRunWatchedPermanentFlapGivesUp(t *testing.T) {
	const size = 64 << 10 // rendezvous path: handle completes only on peer receipt
	cfg := Paper()
	cfg.Scenario = &chaos.Scenario{
		Flaps: []chaos.LinkFlap{{Node: 1, DownAt: sim.Millisecond}}, // UpAt 0 = never back
		Seed:  1,
	}
	c := New(cfg)
	eps := c.OpenEndpoints(1)
	var h *omx.SendHandle
	eps[1].Irecv(0, 0, nil, size, nil)
	c.ScheduleOn(0, 2*sim.Millisecond, func() {
		h = eps[0].Isend(c.Addr(1, 0), 1, nil, size, nil)
	})

	if err := c.RunWatched(Watchdog{MaxVirtual: 5 * sim.Second}); err != nil {
		t.Fatalf("bounded give-up should drain quietly, watchdog fired: %v", err)
	}
	if h == nil {
		t.Fatal("send never launched")
	}
	if !errors.Is(h.Err, omx.ErrGiveUp) {
		t.Fatalf("handle error = %v, want ErrGiveUp", h.Err)
	}
	// The retry budget bounds virtual time: MaxResends=8 exponential
	// backoffs capped at 100ms is well under a second.
	if c.Now() > 2*sim.Second {
		t.Errorf("give-up took %v of virtual time — retry train not bounded", c.Now())
	}
	var giveUps uint64
	for _, s := range c.Stacks {
		giveUps += s.Stats.GiveUps
	}
	if giveUps == 0 {
		t.Error("no give-up counted in stack stats")
	}
}

// TestRunWatchedTransientFlapRecovers: the same send against a flap that
// ends inside the retry budget completes normally.
func TestRunWatchedTransientFlapRecovers(t *testing.T) {
	const size = 64 << 10
	cfg := Paper()
	cfg.Scenario = &chaos.Scenario{
		Flaps: []chaos.LinkFlap{{Node: 1, DownAt: sim.Millisecond, UpAt: 41 * sim.Millisecond}},
		Seed:  1,
	}
	c := New(cfg)
	eps := c.OpenEndpoints(1)
	done := false
	var h *omx.SendHandle
	eps[1].Irecv(0, 0, nil, size, nil)
	c.ScheduleOn(0, 2*sim.Millisecond, func() {
		h = eps[0].Isend(c.Addr(1, 0), 1, nil, size, func() { done = true })
	})
	if err := c.RunWatched(Watchdog{MaxVirtual: 5 * sim.Second}); err != nil {
		t.Fatalf("watchdog fired on a recovering run: %v", err)
	}
	if !done || h.Err != nil {
		t.Fatalf("send did not recover after the link returned (done=%v err=%v)", done, h.Err)
	}
	var retx uint64
	for _, s := range c.Stacks {
		retx += s.Stats.Retransmits
	}
	if retx == 0 {
		t.Error("a 40ms outage should have forced at least one retransmit")
	}
	if c.FlapEdges() != 2 {
		t.Errorf("flap edge markers = %d, want 2 (down + up)", c.FlapEdges())
	}
}

// TestRunWatchedCatchesWedge plants a self-rearming timer that moves no
// frames: event execution alone is not progress, so the watchdog must
// fail the run with diagnostics instead of spinning forever.
func TestRunWatchedCatchesWedge(t *testing.T) {
	c := New(Paper())
	var spin func()
	spin = func() { c.Eng.After(sim.Millisecond, spin) }
	c.Eng.After(0, spin)

	err := c.RunWatched(Watchdog{Interval: 10 * sim.Millisecond, Idle: 3})
	var we *WedgeError
	if !errors.As(err, &we) {
		t.Fatalf("RunWatched = %v, want *WedgeError", err)
	}
	if !strings.Contains(we.Diagnostics, "engine[0]") || !strings.Contains(we.Diagnostics, "node[0]") {
		t.Errorf("diagnostics missing engine/node snapshot:\n%s", we.Diagnostics)
	}
	// Fired after ~Idle intervals, not after hours of virtual time.
	if we.At > sim.Second {
		t.Errorf("watchdog fired at %v, expected within a few intervals", we.At)
	}
}

// TestRunWatchedMaxVirtual: the absolute budget fails a run whose next
// event lies beyond it, even if the run is making progress.
func TestRunWatchedMaxVirtual(t *testing.T) {
	c := New(Paper())
	c.Eng.After(3*sim.Second, func() {})
	err := c.RunWatched(Watchdog{MaxVirtual: sim.Second})
	var we *WedgeError
	if !errors.As(err, &we) {
		t.Fatalf("RunWatched = %v, want *WedgeError for budget overrun", err)
	}
	if !strings.Contains(we.Reason, "budget") {
		t.Errorf("reason = %q, want a virtual-time budget message", we.Reason)
	}
}

// TestScenarioComposesWithStaticFault: installing a scenario must not
// discard configured static fault probabilities — the hook decides first,
// the static draws still apply to frames it lets through.
func TestScenarioComposesWithStaticFault(t *testing.T) {
	const size = 64 << 10
	cfg := Paper()
	cfg.Fault = &fabric.Fault{DropProb: 1}
	cfg.Scenario = &chaos.Scenario{Seed: 1} // empty scenario, hook installed
	c := New(cfg)
	eps := c.OpenEndpoints(1)
	eps[1].Irecv(0, 0, nil, size, nil)
	var h *omx.SendHandle
	c.ScheduleOn(0, 0, func() {
		h = eps[0].Isend(c.Addr(1, 0), 1, nil, size, nil)
	})
	if err := c.RunWatched(Watchdog{MaxVirtual: 5 * sim.Second}); err != nil {
		t.Fatalf("bounded give-up should drain quietly, watchdog fired: %v", err)
	}
	if h == nil || !errors.Is(h.Err, omx.ErrGiveUp) {
		t.Fatalf("static DropProb=1 under a scenario did not give up (h=%v)", h)
	}
}

// TestRunWatchedContextCancelIsNotAWedge is the classification boundary:
// an externally-cancelled run — even one making zero progress, the exact
// signature a wedge check keys on — must surface the context's error, not
// a *WedgeError, so supervisors never mislabel a user cancel as a
// liveness failure (and never retry it as transient).
func TestRunWatchedContextCancelIsNotAWedge(t *testing.T) {
	// The same self-rearming no-progress timer TestRunWatchedCatchesWedge
	// plants, but with the context cancelled before the watchdog's idle
	// budget can expire.
	c := New(Paper())
	var spin func()
	spin = func() { c.Eng.After(sim.Millisecond, spin) }
	c.Eng.After(0, spin)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := c.RunWatchedContext(ctx, Watchdog{Interval: 10 * sim.Millisecond, Idle: 3})
	if err == nil {
		t.Fatal("cancelled run returned nil")
	}
	var we *WedgeError
	if errors.As(err, &we) {
		t.Fatalf("cancelled run surfaced a *WedgeError: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled in the chain", err)
	}
	if !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("error message %q does not say cancelled", err)
	}
}

// TestRunWatchedContextWedgeStillFires: a live (never-cancelled) context
// must not soften the watchdog — the genuine wedge still returns a
// *WedgeError, and errors.Is against the context sentinels stays false.
func TestRunWatchedContextWedgeStillFires(t *testing.T) {
	c := New(Paper())
	var spin func()
	spin = func() { c.Eng.After(sim.Millisecond, spin) }
	c.Eng.After(0, spin)

	err := c.RunWatchedContext(context.Background(), Watchdog{Interval: 10 * sim.Millisecond, Idle: 3})
	var we *WedgeError
	if !errors.As(err, &we) {
		t.Fatalf("RunWatchedContext = %v, want *WedgeError", err)
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wedge error claims cancellation: %v", err)
	}
}
