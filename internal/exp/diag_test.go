package exp

import (
	"testing"

	"openmxsim/internal/cluster"
	"openmxsim/internal/omx"
	"openmxsim/internal/sim"
)

// TestDiagStreamDetail prints the internals of the Table I measurements;
// run with -v to inspect interrupt/wakeup behaviour per strategy.
func TestDiagStreamDetail(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	for _, size := range []int{0, 32 << 10, 1 << 20} {
		for _, st := range table1Strategies {
			cfg := cluster.Paper()
			cfg.Strategy = st.strategy
			cl := cluster.New(cfg)
			snd := cl.Stacks[0].Open(0, cl.Hosts[0].Cores[1])
			rcv := cl.Stacks[1].Open(0, cl.Hosts[1].Cores[1])
			received := 0
			var repost func()
			repost = func() {
				rcv.Irecv(0, 0, nil, size, func(*omx.RecvHandle) {
					received++
					repost()
				})
			}
			dst := rcv.Addr()
			var chain func()
			chain = func() { snd.Isend(dst, 1, nil, size, chain) }
			cl.Eng.After(0, func() {
				for i := 0; i < 192; i++ {
					repost()
				}
				for i := 0; i < 8; i++ {
					chain()
				}
			})
			cl.Eng.RunUntil(50 * sim.Millisecond)

			rxHost := cl.Hosts[1].Stats()
			rxNIC := cl.NICs[1].Stats
			rxStack := cl.Stacks[1].Stats
			txStack := cl.Stacks[0].Stats
			t.Logf("size=%-8d %-9s rate=%8.0f/s intr=%7d wake=%7d polls=%7d pkts=%8d irqbusy=%5.1f%% user=%5.1f%% drops=%d ringfull=%d rtx=%d acks=%d",
				size, st.name,
				float64(received)/0.05,
				rxNIC.Interrupts, rxHost.Wakeups, rxNIC.PollCycles,
				rxNIC.PacketsReceived,
				100*float64(rxHost.IRQBusy)/float64(50*sim.Millisecond*8),
				100*float64(rxHost.UserBusy)/float64(50*sim.Millisecond*8),
				rxNIC.RingDrops, rxStack.EventRingFull, txStack.Retransmits,
				rxStack.AcksSent)
		}
	}
}
