package exp

import (
	"strconv"
	"strings"
	"testing"

	"openmxsim/internal/cluster"
	"openmxsim/internal/nic"
	"openmxsim/internal/sim"
)

var quick = Options{Seed: 1, Quick: true}

// parseRate reads a units.FormatRate cell ("490k" or "14507").
func parseRate(t *testing.T, cell string) float64 {
	t.Helper()
	mult := 1.0
	if strings.HasSuffix(cell, "k") {
		mult = 1000
		cell = strings.TrimSuffix(cell, "k")
	}
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("bad rate cell %q: %v", cell, err)
	}
	return v * mult
}

func parseFloat(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.Fields(cell)[0], 64)
	if err != nil {
		t.Fatalf("bad cell %q: %v", cell, err)
	}
	return v
}

func TestOverheadShape(t *testing.T) {
	rep := Overhead(quick)
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	disAll := parseFloat(t, rep.Rows[0][1])
	disOne := parseFloat(t, rep.Rows[1][1])
	coalAll := parseFloat(t, rep.Rows[2][1])
	// Paper: 965 ns uncoalesced, ~20% less coalesced, ~40 ns from binding.
	if disAll < 900 || disAll > 1050 {
		t.Errorf("uncoalesced overhead %.0f ns, want ~965", disAll)
	}
	if coalAll > disAll*0.85 {
		t.Errorf("coalesced overhead %.0f not <= 85%% of %.0f", coalAll, disAll)
	}
	if disOne >= disAll {
		t.Errorf("binding did not reduce overhead: %v vs %v", disOne, disAll)
	}
}

func TestFig5LatencyShape(t *testing.T) {
	rep := Fig5(quick)
	if len(rep.Rows) != len(pingPongSizes) {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Small messages: disabled is dramatically faster than 75us coalescing.
	small := parseFloat(t, rep.Rows[0][2])
	if small > 0.3 {
		t.Errorf("disabled/coalesced at 1B = %.2f, want << 1", small)
	}
	// The normalized curve must rise with message size (coalescing's
	// relative cost shrinks as messages grow).
	large := parseFloat(t, rep.Rows[len(rep.Rows)-1][2])
	if large < 3*small {
		t.Errorf("normalized time did not rise with size: %.2f -> %.2f", small, large)
	}
}

func TestFig6OpenMXTracksDisabledForSmall(t *testing.T) {
	rep := Fig6(quick)
	for i := 0; i < 4; i++ { // 1B..64B rows
		dis := parseFloat(t, rep.Rows[i][2])
		omx := parseFloat(t, rep.Rows[i][3])
		if omx > dis*2 {
			t.Errorf("size %s: openmx %.2f not close to disabled %.2f",
				rep.Rows[i][0], omx, dis)
		}
	}
}

func TestTable1SmallRateOrdering(t *testing.T) {
	rep := Table1(quick)
	// Row 0 is 0B: Default, Disabled, Open-MX, Stream.
	def := parseRate(t, rep.Rows[0][1])
	dis := parseRate(t, rep.Rows[0][2])
	if def < dis {
		t.Errorf("0B: default (%.0f) below disabled (%.0f)", def, dis)
	}
	for col := 1; col <= 4; col++ {
		for row := 0; row < 3; row++ {
			if parseRate(t, rep.Rows[row][col]) <= 0 {
				t.Errorf("row %d col %d: zero rate", row, col)
			}
		}
	}
}

func TestTable2InterruptShape(t *testing.T) {
	rep := Table2(quick)
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	disIRQ := parseFloat(t, rep.Rows[0][2])
	tmoIRQ := parseFloat(t, rep.Rows[1][2])
	omxIRQ := parseFloat(t, rep.Rows[2][2])
	// Paper: disabled needs ~6x the interrupts; Open-MX needs slightly
	// fewer than the timeout.
	if disIRQ < 2*tmoIRQ {
		t.Errorf("disabled %.1f irq/msg not >> timeout %.1f", disIRQ, tmoIRQ)
	}
	if omxIRQ > tmoIRQ*1.2 {
		t.Errorf("openmx %.1f irq/msg above timeout %.1f", omxIRQ, tmoIRQ)
	}
	// Open-MX transfer time beats the timeout configuration.
	tmoT := parseFloat(t, rep.Rows[1][1])
	omxT := parseFloat(t, rep.Rows[2][1])
	if omxT >= tmoT {
		t.Errorf("openmx transfer %.1fus not faster than timeout %.1fus", omxT, tmoT)
	}
}

func TestTable2AblationRanking(t *testing.T) {
	rep := Table2Ablation(quick)
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Paper's ranking: rendezvous > pull-request > last-pull-reply >
	// notify (~0).
	rndv := parseFloat(t, rep.Rows[1][2])
	lastReply := parseFloat(t, rep.Rows[3][2])
	notify := parseFloat(t, rep.Rows[4][2])
	if rndv < lastReply {
		t.Errorf("rendezvous delta %.1f below last-reply delta %.1f", rndv, lastReply)
	}
	if notify > 10 {
		t.Errorf("notify delta %.1fus, paper found it ~0", notify)
	}
}

func TestTable3MisorderDegrades(t *testing.T) {
	rep := Table3(quick)
	for _, row := range rep.Rows {
		inOrder := parseFloat(t, row[1])
		deg3 := parseFloat(t, row[3])
		if deg3 < inOrder {
			t.Errorf("%s: degree-3 (%0.1f) faster than in-order (%0.1f)", row[0], deg3, inOrder)
		}
	}
}

func TestTable4And5Quick(t *testing.T) {
	rep4 := Table4(quick)
	if len(rep4.Rows) == 0 {
		t.Fatal("table4 empty")
	}
	rep5 := Table5(quick)
	if len(rep5.Rows) != 2 {
		t.Fatalf("table5 rows = %d", len(rep5.Rows))
	}
	// Disabled raises far more interrupts than the default (paper: x22).
	for _, row := range rep5.Rows {
		if !strings.Contains(row[2], "x") {
			t.Errorf("%s: disabled interrupts %q lack a multiplier annotation (want >=2x default)",
				row[0], row[2])
		}
	}
}

func TestExtensionsRun(t *testing.T) {
	if rep := Multiqueue(quick); len(rep.Rows) != 3 {
		t.Errorf("multiqueue rows = %d", len(rep.Rows))
	}
	if rep := Jumbo(quick); len(rep.Rows) != 4 {
		t.Errorf("jumbo rows = %d", len(rep.Rows))
	}
}

func TestAdaptiveHelpsLatencyMicrobenchmark(t *testing.T) {
	// Section VI: adaptive coalescing approaches disabled-like latency for
	// an idle ping-pong (traffic is sparse, delay converges to minimum).
	cfgA := cluster.Paper()
	cfgA.Strategy = nic.StrategyAdaptive
	latA, err := pingPong(cfgA, []int{128}, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfgT := cluster.Paper()
	latT, err := pingPong(cfgT, []int{128}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if latA[128] >= latT[128] {
		t.Errorf("adaptive latency %v not below fixed-75us %v", latA[128], latT[128])
	}
}

func TestStreamHarnessDeterminism(t *testing.T) {
	cfg := cluster.Paper()
	cfg.Strategy = nic.StrategyStream
	spec := streamSpec{Cluster: cfg, Size: 128, Chains: 4,
		Warmup: 2 * sim.Millisecond, Measure: 10 * sim.Millisecond}
	a := runStream(spec)
	b := runStream(spec)
	if a != b {
		t.Fatalf("stream results differ: %+v vs %+v", a, b)
	}
}

func TestFig4Quick(t *testing.T) {
	rep := Fig4(quick)
	if len(rep.Rows) != 4 {
		t.Fatalf("fig4 quick rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		for c := 1; c < len(row); c++ {
			if parseRate(t, row[c]) < 10_000 {
				t.Errorf("delay %s col %d: rate %s implausibly low", row[0], c, row[c])
			}
		}
	}
}
