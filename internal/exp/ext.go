package exp

import (
	"fmt"

	"openmxsim/internal/cluster"
	"openmxsim/internal/host"
	"openmxsim/internal/nas"
	"openmxsim/internal/nic"
	"openmxsim/internal/sim"
	"openmxsim/internal/units"
)

// Adaptive explores the Section VI future-work idea: a firmware whose
// coalescing delay follows the observed packet rate. The paper's early
// tests found it "helps microbenchmarks but cannot help real applications
// as well as our firmware modifications do".
func Adaptive(opts Options) *Report {
	iters := 20
	if opts.Quick {
		iters = 5
	}
	rep := &Report{
		ID:     "adaptive",
		Title:  "Adaptive coalescing vs fixed strategies (Section VI extension)",
		Header: []string{"metric", "Default", "Disabled", "Open-MX", "Adaptive"},
		Notes: []string{
			"paper: adaptive tuning reacts only to past traffic, so it helps steady microbenchmarks but not phase-changing applications",
		},
	}
	strategies := []struct {
		name     string
		strategy nic.Strategy
	}{
		{"Default", nic.StrategyTimeout},
		{"Disabled", nic.StrategyDisabled},
		{"Open-MX", nic.StrategyOpenMX},
		{"Adaptive", nic.StrategyAdaptive},
	}

	// Microbenchmark 1: small-message ping-pong latency.
	latRow := []string{"pingpong 128B (us)"}
	for _, st := range strategies {
		cfg := cluster.Paper()
		cfg.Seed = opts.Seed
		cfg.Parallelism = opts.Par
		cfg.Strategy = st.strategy
		m, err := pingPong(cfg, []int{128}, iters)
		if err != nil {
			latRow = append(latRow, "err")
			continue
		}
		latRow = append(latRow, us(m[128]))
	}
	rep.Rows = append(rep.Rows, latRow)

	// Microbenchmark 2: 128B message rate.
	rateRow := []string{"rate 128B (msg/s)"}
	measure := 120 * sim.Millisecond
	if opts.Quick {
		measure = 25 * sim.Millisecond
	}
	for _, st := range strategies {
		cfg := cluster.Paper()
		cfg.Seed = opts.Seed
		cfg.Parallelism = opts.Par
		cfg.Strategy = st.strategy
		res := runStream(streamSpec{Cluster: cfg, Size: 128, Chains: 8,
			Warmup: 10 * sim.Millisecond, Measure: measure})
		rateRow = append(rateRow, units.FormatRate(res.Rate))
	}
	rep.Rows = append(rep.Rows, rateRow)

	// Application: NAS IS (class W in quick mode, B otherwise).
	class := byte('B')
	if opts.Quick {
		class = 'W'
	}
	wl, err := nas.Get("is", class, 16)
	if err == nil {
		isRow := []string{fmt.Sprintf("is.%c.16 (s)", class)}
		for _, st := range strategies {
			cfg := cluster.Paper()
			cfg.Seed = opts.Seed
			cfg.Parallelism = opts.Par
			cfg.Strategy = st.strategy
			res, err := nas.Run(cfg, wl)
			if err != nil {
				isRow = append(isRow, "err")
				continue
			}
			isRow = append(isRow, seconds(res.Elapsed))
		}
		rep.Rows = append(rep.Rows, isRow)
	}
	return rep
}

// Multiqueue explores the Section VI multiqueue extension: per-channel
// receive queues with per-queue IRQ affinity remove the cache-line bounces
// of round-robin interrupt scattering.
func Multiqueue(opts Options) *Report {
	measure := 120 * sim.Millisecond
	if opts.Quick {
		measure = 25 * sim.Millisecond
	}
	rep := &Report{
		ID:     "multiqueue",
		Title:  "Multiqueue NIC with per-queue IRQ binding (Section VI extension)",
		Header: []string{"configuration", "rate 128B (msg/s)", "interrupts/s"},
		Notes: []string{
			"paper (Section VI): attaching each channel's processing to one core is cheap stateless NIC support",
		},
	}
	cases := []struct {
		name   string
		queues int
		policy host.IRQPolicy
	}{
		{"single queue, round-robin", 1, host.IRQRoundRobin},
		{"single queue, bound", 1, host.IRQSingleCore},
		{"8 queues, per-queue IRQs", 8, host.IRQPerQueue},
	}
	for _, cs := range cases {
		cfg := cluster.Paper()
		cfg.Seed = opts.Seed
		cfg.Parallelism = opts.Par
		cfg.Strategy = nic.StrategyOpenMX
		cfg.Queues = cs.queues
		cfg.IRQPolicy = cs.policy
		res := runStream(streamSpec{Cluster: cfg, Size: 128, Chains: 8,
			Warmup: 10 * sim.Millisecond, Measure: measure})
		rep.Rows = append(rep.Rows, []string{
			cs.name,
			units.FormatRate(res.Rate),
			units.FormatRate(res.IntrRate),
		})
	}
	return rep
}

// Jumbo validates the Section IV-A claim that a 9000-byte MTU exhibits the
// same small-message behaviour and proportionally shifted large-message
// behaviour.
func Jumbo(opts Options) *Report {
	iters := 20
	if opts.Quick {
		iters = 5
	}
	rep := &Report{
		ID:     "jumbo",
		Title:  "MTU 1500 vs 9000: ping-pong with Open-MX coalescing (Section IV-A extension)",
		Header: []string{"size", "mtu1500(us)", "mtu9000(us)"},
		Notes: []string{
			"paper: a larger MTU shows the same behaviour for small messages and proportionally-larger messages",
		},
	}
	sizes := []int{64, 1 << 10, 32 << 10, 1 << 20}
	results := map[int]map[int]sim.Time{}
	for _, mtu := range []int{1500, 9000} {
		cfg := cluster.Paper()
		cfg.Seed = opts.Seed
		cfg.Parallelism = opts.Par
		cfg.Strategy = nic.StrategyOpenMX
		p := cfg.Params
		if p == nil {
			p = clusterParams()
		}
		p = p.Clone()
		p.Proto.MTU = mtu
		p.Proto.PullReplyPayload = mtu
		cfg.Params = p
		m, err := pingPong(cfg, sizes, iters)
		if err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("ERROR mtu %d: %v", mtu, err))
			m = map[int]sim.Time{}
		}
		results[mtu] = m
	}
	for _, size := range sizes {
		rep.Rows = append(rep.Rows, []string{
			units.FormatBytes(size),
			us(results[1500][size]),
			us(results[9000][size]),
		})
	}
	return rep
}
