package exp

import (
	"fmt"

	"openmxsim/internal/cluster"
	"openmxsim/internal/host"
	"openmxsim/internal/nic"
	"openmxsim/internal/sim"
	"openmxsim/internal/units"
)

// Fig4 reproduces Figure 4: message rate of a stream of 128-byte Open-MX
// messages as a function of the interrupt coalescing delay (0 = disabled),
// for the three host configurations the paper compares:
//
//	single-core IRQs + sleeping disabled
//	single-core IRQs + sleeping possible
//	all-cores (round-robin) IRQs + sleeping possible (the default)
func Fig4(opts Options) *Report {
	delays := []sim.Time{0, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60, 65, 70, 75, 80}
	warmup, measure := 20*sim.Millisecond, 120*sim.Millisecond
	if opts.Quick {
		delays = []sim.Time{0, 15, 45, 75}
		warmup, measure = 5*sim.Millisecond, 25*sim.Millisecond
	}
	for i := range delays {
		delays[i] *= sim.Microsecond
	}

	type hostCfg struct {
		name   string
		policy host.IRQPolicy
		sleep  bool
	}
	configs := []hostCfg{
		{"single-core, no-sleep", host.IRQSingleCore, false},
		{"single-core, sleep", host.IRQSingleCore, true},
		{"all-cores, sleep (default)", host.IRQRoundRobin, true},
	}

	rep := &Report{
		ID:     "fig4",
		Title:  "Message rate of a stream of 128B Open-MX messages vs coalescing delay",
		Header: []string{"delay(us)"},
		Notes: []string{
			"paper: default config peaks ~433k msg/s at 75us; disabling coalescing cuts the rate by more than 2x",
			"paper: single-core binding and disabling sleep both raise the curve",
		},
	}
	for _, c := range configs {
		rep.Header = append(rep.Header, c.name)
	}

	for _, d := range delays {
		row := []string{fmt.Sprintf("%d", d/sim.Microsecond)}
		for _, hc := range configs {
			cfg := cluster.Paper()
			cfg.Seed = opts.Seed
			cfg.Parallelism = opts.Par
			cfg.IRQPolicy = hc.policy
			cfg.SleepDisabled = !hc.sleep
			if d == 0 {
				cfg.Strategy = nic.StrategyDisabled
			} else {
				cfg.Strategy = nic.StrategyTimeout
				cfg.CoalesceDelay = d
			}
			res := runStream(streamSpec{
				Cluster: cfg, Size: 128, Chains: 8,
				Warmup: warmup, Measure: measure,
			})
			row = append(row, units.FormatRate(res.Rate))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// Overhead reproduces Section IV-B2: per-packet receive-stack overhead for
// a stream of invalid 128-byte packets, with coalescing on/off and IRQs
// round-robin vs bound to one core.
func Overhead(opts Options) *Report {
	packets := 200_000
	if opts.Quick {
		packets = 20_000
	}
	gap := 5 * sim.Microsecond // ~200k packets/s blast

	type cfgRow struct {
		name     string
		strategy nic.Strategy
		policy   host.IRQPolicy
	}
	rows := []cfgRow{
		{"disabled, all-cores", nic.StrategyDisabled, host.IRQRoundRobin},
		{"disabled, single-core", nic.StrategyDisabled, host.IRQSingleCore},
		{"coalescing 75us, all-cores", nic.StrategyTimeout, host.IRQRoundRobin},
		{"coalescing 75us, single-core", nic.StrategyTimeout, host.IRQSingleCore},
	}

	rep := &Report{
		ID:     "overhead",
		Title:  "Per-packet receive overhead, invalid 128B packets dropped by the handler",
		Header: []string{"configuration", "ns/packet", "interrupts"},
		Notes: []string{
			"paper: 965 ns/packet uncoalesced, ~774 ns (-20%) coalesced; binding to one core saves ~40 ns",
		},
	}
	for _, c := range rows {
		cfg := cluster.Paper()
		cfg.Seed = opts.Seed
		cfg.Parallelism = opts.Par
		cfg.Strategy = c.strategy
		cfg.IRQPolicy = c.policy
		res := runOverhead(cfg, packets, gap)
		rep.Rows = append(rep.Rows, []string{
			c.name,
			fmt.Sprintf("%d", res.PerPacket),
			fmt.Sprintf("%d", res.Interrupts),
		})
	}
	return rep
}
