package exp

import (
	"fmt"

	"openmxsim/internal/cluster"
	"openmxsim/internal/fabric"
	"openmxsim/internal/nic"
	"openmxsim/internal/sim"
	"openmxsim/internal/sweep"
	"openmxsim/internal/units"
)

// Incast measures the N-to-1 fan-in regime the paper's 2-node testbed
// cannot reach: N senders blast small messages at one receiver through an
// output-queued switch with a bounded egress buffer, and the receiver's
// message rate, interrupt load, and switch-port congestion are reported
// per coalescing strategy and fan-in. This is where the interrupt-load /
// latency tradeoff meets shared-fabric congestion (cf. the congestion
// characterization literature in PAPERS.md).
func Incast(opts Options) *Report {
	fanins := []int{2, 4, 8}
	measure := 40 * sim.Millisecond
	if opts.Quick {
		fanins = []int{2, 4}
		measure = 8 * sim.Millisecond
	}
	strategies := []struct {
		name     string
		strategy nic.Strategy
	}{
		{"disabled", nic.StrategyDisabled},
		{"timeout", nic.StrategyTimeout},
		{"openmx", nic.StrategyOpenMX},
		{"stream", nic.StrategyStream},
	}
	rep := &Report{
		ID:     "incast",
		Title:  "N-to-1 incast: receiver rate and interrupt load vs fan-in (shared-fabric extension)",
		Header: []string{"senders", "strategy", "rate(msg/s)", "intr/s", "intr/msg", "drops", "maxq"},
		Notes: []string{
			"output-queued switch, 64-frame egress buffer at the receiver port; drops are drop-tail losses",
			"the coalescing tradeoff sharpens with fan-in: per-packet interrupts scale with N, timeouts do not",
		},
	}
	for _, n := range fanins {
		for _, st := range strategies {
			cfg := cluster.Paper()
			cfg.Seed = opts.Seed
			cfg.Parallelism = opts.Par
			cfg.Strategy = st.strategy
			// Clusters are built strictly sequentially here, so one shared
			// recorder can observe the whole experiment run-by-run.
			cfg.Trace = opts.Trace
			cfg.Topology = fabric.Topology{
				Kind:              fabric.TopologyOutputQueued,
				EgressQueueFrames: 64,
			}
			res := sweep.RunIncast(sweep.IncastSpec{
				Cluster: cfg,
				Senders: n,
				Size:    128,
				Warmup:  5 * sim.Millisecond,
				Measure: measure,
			})
			perMsg := "-"
			if res.Received > 0 {
				perMsg = fmt.Sprintf("%.2f", float64(res.Interrupts)/float64(res.Received))
			}
			rep.Rows = append(rep.Rows, []string{
				fmt.Sprintf("%d", n),
				st.name,
				units.FormatRate(res.Rate),
				units.FormatRate(res.IntrRate),
				perMsg,
				fmt.Sprintf("%d", res.PortDrops),
				fmt.Sprintf("%d", res.MaxQueueFrames),
			})
		}
	}
	return rep
}

// CongestedPingPong runs the Fig. 5 ping-pong while background bulk
// streams share the receiver's switch port: the latency cost of congestion
// per coalescing strategy, unloaded vs loaded.
func CongestedPingPong(opts Options) *Report {
	iters := 20
	sizes := []int{1, 128, 4 << 10, 64 << 10}
	bg := sweep.Background{Streams: 2}
	if opts.Quick {
		iters = 5
		sizes = []int{128, 4 << 10}
	}
	strategies := []struct {
		name     string
		strategy nic.Strategy
	}{
		{"timeout", nic.StrategyTimeout},
		{"openmx", nic.StrategyOpenMX},
	}
	rep := &Report{
		ID:     "congested-pingpong",
		Title:  "Ping-pong under background bulk streams on the receiver port (shared-fabric extension)",
		Header: []string{"size"},
		Notes: []string{
			"loaded columns: 2 bulk senders (64KiB chains) on extra nodes share node 1's egress port and receive path",
			"openmx keeps its small-message advantage under load: marked packets still interrupt immediately",
		},
	}
	for _, st := range strategies {
		rep.Header = append(rep.Header, st.name+"(us)", st.name+"+bg(us)", "x")
	}

	type col struct{ base, loaded map[int]sim.Time }
	cols := make([]col, len(strategies))
	for i, st := range strategies {
		cfg := cluster.Paper()
		cfg.Seed = opts.Seed
		cfg.Parallelism = opts.Par
		cfg.Strategy = st.strategy
		base, _, _, err := sweep.RunPingPongLoaded(cfg, sizes, iters, sweep.Background{})
		if err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("ERROR %s base: %v", st.name, err))
			base = map[int]sim.Time{}
		}
		loaded, _, _, err := sweep.RunPingPongLoaded(cfg, sizes, iters, bg)
		if err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("ERROR %s loaded: %v", st.name, err))
			loaded = map[int]sim.Time{}
		}
		cols[i] = col{base: base, loaded: loaded}
	}
	for _, size := range sizes {
		row := []string{units.FormatBytes(size)}
		for _, c := range cols {
			b, l := c.base[size], c.loaded[size]
			slow := "-"
			if b > 0 {
				slow = fmt.Sprintf("%.2f", float64(l)/float64(b))
			}
			row = append(row, us(b), us(l), slow)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}
