package exp

import (
	"strings"
	"testing"
)

func TestIncastQuick(t *testing.T) {
	rep := Incast(quick)
	if len(rep.Rows) != 8 { // 2 fan-ins x 4 strategies
		t.Fatalf("incast quick rows = %d, want 8", len(rep.Rows))
	}
	for _, n := range rep.Notes {
		if strings.Contains(n, "ERROR") {
			t.Errorf("incast reported %q", n)
		}
	}
	// The disabled strategy must pay more interrupts per message than the
	// timeout strategy at every fan-in (the paper's tradeoff, now under
	// convergence).
	byKey := map[string]float64{}
	for _, row := range rep.Rows {
		if rate := parseRate(t, row[2]); rate <= 0 {
			t.Errorf("fan-in %s strategy %s: non-positive rate %s", row[0], row[1], row[2])
		}
		byKey[row[0]+"/"+row[1]] = parseFloat(t, row[4])
	}
	for _, fanin := range []string{"2", "4"} {
		if byKey[fanin+"/disabled"] <= byKey[fanin+"/timeout"] {
			t.Errorf("fan-in %s: disabled intr/msg %.3f not above timeout %.3f",
				fanin, byKey[fanin+"/disabled"], byKey[fanin+"/timeout"])
		}
	}
}

func TestIncastDeterministic(t *testing.T) {
	a, b := Incast(quick), Incast(quick)
	if a.String() != b.String() {
		t.Error("incast is not deterministic across runs")
	}
}

func TestCongestedPingPongQuick(t *testing.T) {
	rep := CongestedPingPong(quick)
	if len(rep.Rows) != 2 { // quick sizes
		t.Fatalf("congested-pingpong quick rows = %d, want 2", len(rep.Rows))
	}
	for _, n := range rep.Notes {
		if strings.Contains(n, "ERROR") {
			t.Errorf("congested-pingpong reported %q", n)
		}
	}
	// Columns: size, timeout, timeout+bg, x, openmx, openmx+bg, x. The
	// loaded openmx latency must stay positive and the 128B openmx case
	// must remain below the loaded timeout latency (the marker-driven
	// firmware keeps its advantage under congestion).
	row := rep.Rows[0] // 128B
	if parseFloat(t, row[4]) <= 0 || parseFloat(t, row[5]) <= 0 {
		t.Fatalf("non-positive openmx latencies: %v", row)
	}
	if openmxLoaded, timeoutLoaded := parseFloat(t, row[5]), parseFloat(t, row[2]); openmxLoaded >= timeoutLoaded {
		t.Errorf("128B loaded: openmx %.1fus not below timeout %.1fus", openmxLoaded, timeoutLoaded)
	}
}
