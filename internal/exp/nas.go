package exp

import (
	"fmt"

	"openmxsim/internal/cluster"
	"openmxsim/internal/nas"
	"openmxsim/internal/nic"
	"openmxsim/internal/units"
)

// nasStrategies are the four columns of Tables IV and V.
var nasStrategies = []struct {
	name     string
	strategy nic.Strategy
}{
	{"Coal.", nic.StrategyTimeout},
	{"Disabled", nic.StrategyDisabled},
	{"Open-MX", nic.StrategyOpenMX},
	{"Stream", nic.StrategyStream},
}

// table4Workloads is the paper's benchmark list, in table order.
var table4Workloads = []struct {
	name  string
	class byte
}{
	{"bt", 'C'}, {"cg", 'C'}, {"ep", 'C'},
	{"ft", 'C'}, {"ft", 'B'},
	{"is", 'C'}, {"is", 'B'},
	{"lu", 'C'}, {"mg", 'C'}, {"sp", 'C'},
}

// quickTable4Workloads shrinks classes so the sweep stays fast.
var quickTable4Workloads = []struct {
	name  string
	class byte
}{
	{"is", 'W'}, {"cg", 'S'}, {"ep", 'S'}, {"ft", 'S'},
}

// nasSweep runs a workload list across the four strategies and returns
// results keyed by [workload][strategy].
func nasSweep(opts Options, workloads []struct {
	name  string
	class byte
}, ranks int) (map[string]map[string]*nas.Result, []string, []string) {
	results := map[string]map[string]*nas.Result{}
	var order, notes []string
	for _, wls := range workloads {
		wl, err := nas.Get(wls.name, wls.class, ranks)
		if err != nil {
			notes = append(notes, fmt.Sprintf("ERROR %s.%c: %v", wls.name, wls.class, err))
			continue
		}
		key := wl.FullName()
		order = append(order, key)
		results[key] = map[string]*nas.Result{}
		if !wl.MemOK {
			continue // rendered as "Not enough memory", like the paper
		}
		for _, st := range nasStrategies {
			cfg := cluster.Paper()
			cfg.Seed = opts.Seed
			cfg.Parallelism = opts.Par
			cfg.Strategy = st.strategy
			res, err := nas.Run(cfg, wl)
			if err != nil {
				notes = append(notes, fmt.Sprintf("ERROR %s/%s: %v", key, st.name, err))
				continue
			}
			results[key][st.name] = res
		}
	}
	return results, order, notes
}

// Table4 reproduces Table IV: NAS Parallel Benchmark execution times with
// 16 processes on 2 nodes under each coalescing strategy, with speedup
// percentages relative to the default coalescing.
func Table4(opts Options) *Report {
	workloads := table4Workloads
	ranks := 16
	if opts.Quick {
		workloads = quickTable4Workloads
	}
	results, order, notes := nasSweep(opts, workloads, ranks)

	rep := &Report{
		ID:     "table4",
		Title:  fmt.Sprintf("NAS Parallel Benchmarks, %d processes on 2 nodes: execution time (s)", ranks),
		Header: []string{"NAS", "Coal.", "Disabled", "Open-MX", "Stream"},
		Notes: append([]string{
			"paper: disabling coalescing costs up to 11.6% on is.C; Open-MX coalescing gains 7.3%/8.2% on is.C/is.B",
			"speedup percentages are relative to the default coalescing column",
		}, notes...),
	}
	for _, key := range order {
		row := []string{key}
		base := results[key]["Coal."]
		if base == nil {
			row = append(row, "Not enough memory", "", "", "")
			rep.Rows = append(rep.Rows, row)
			continue
		}
		for _, st := range nasStrategies {
			res := results[key][st.name]
			if res == nil {
				row = append(row, "-")
				continue
			}
			cell := seconds(res.Elapsed)
			if st.name != "Coal." {
				pct := 100 * (float64(base.Elapsed) - float64(res.Elapsed)) / float64(base.Elapsed)
				if pct >= 1 || pct <= -1 {
					cell += fmt.Sprintf(" (%+.1f%%)", pct)
				}
			}
			row = append(row, cell)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// Table5 reproduces Table V: total interrupts during the IS runs.
func Table5(opts Options) *Report {
	workloads := []struct {
		name  string
		class byte
	}{{"is", 'C'}, {"is", 'B'}}
	ranks := 16
	if opts.Quick {
		workloads = []struct {
			name  string
			class byte
		}{{"is", 'W'}, {"is", 'S'}}
	}
	results, order, notes := nasSweep(opts, workloads, ranks)

	rep := &Report{
		ID:     "table5",
		Title:  "Total interrupts during the NAS IS runs (both nodes)",
		Header: []string{"NAS", "Coal.", "Disabled", "Open-MX", "Stream"},
		Notes: append([]string{
			"paper is.C: 86.4k / 1.93M (x22) / 100.5k (+16%) / 101.6k (+17%)",
			"paper is.B: 22.4k / 496k (x22) / 26.7k (+19%) / 27.2k (+21%)",
		}, notes...),
	}
	for _, key := range order {
		row := []string{key}
		base := results[key]["Coal."]
		for _, st := range nasStrategies {
			res := results[key][st.name]
			if res == nil {
				row = append(row, "-")
				continue
			}
			cell := units.FormatCount(float64(res.Interrupts))
			if st.name != "Coal." && base != nil && base.Interrupts > 0 {
				ratio := float64(res.Interrupts) / float64(base.Interrupts)
				if ratio >= 2 {
					cell += fmt.Sprintf(" (x%.0f)", ratio)
				} else {
					cell += fmt.Sprintf(" (%+.0f%%)", 100*(ratio-1))
				}
			}
			row = append(row, cell)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}
