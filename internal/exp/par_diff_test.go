package exp

import "testing"

// TestReportsBitIdenticalAcrossParallelism regenerates registry
// experiments on the serial reference engine and on sharded engines and
// requires byte-identical reports: conservative parallel execution must be
// invisible to every model. Experiments on the ideal direct topology fall
// back to the serial engine (zero lookahead) and pass trivially; the
// output-queued experiments — incast above all — are the ones that
// genuinely shard. Two seeds guard against a single lucky ordering. In
// -short mode (and under -race, where each sharded run costs minutes) only
// the cheapest experiments run; the full registry runs in CI.
func TestReportsBitIdenticalAcrossParallelism(t *testing.T) {
	ids := IDs()
	if testing.Short() || !fullDiffRegistry {
		ids = []string{"fig5", "table2", "table3", "sweep", "incast", "resilience-incast"}
	}
	seeds := []uint64{1, 7}
	for _, id := range ids {
		runner, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range seeds {
			serial, err := runner(Options{Seed: seed, Quick: true, Par: 1}).JSON()
			if err != nil {
				t.Fatalf("%s seed %d (par 1): %v", id, seed, err)
			}
			for _, par := range []int{2, 4, 8} {
				sharded, err := runner(Options{Seed: seed, Quick: true, Par: par}).JSON()
				if err != nil {
					t.Fatalf("%s seed %d (par %d): %v", id, seed, par, err)
				}
				if string(sharded) != string(serial) {
					t.Errorf("%s seed %d: report differs between par 1 and par %d\npar 1: %s\npar %d: %s",
						id, seed, par, serial, par, sharded)
				}
			}
		}
	}
}
