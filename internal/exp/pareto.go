package exp

import (
	"fmt"

	"openmxsim/internal/nic"
	"openmxsim/internal/sim"
	"openmxsim/internal/sweep"
	"openmxsim/internal/tune"
	"openmxsim/internal/units"
)

// paretoSpace is the tradeoff space both tuner experiments share: the
// fig4-6 grid (every strategy crossed with the coalescing-delay axis) with
// the stream interrupt rate as the load objective and the ping-pong
// latency as the latency objective.
func paretoSpace(opts Options) ([]nic.Strategy, []sim.Time, sweep.Grid) {
	strategies := []nic.Strategy{
		nic.StrategyDisabled, nic.StrategyTimeout,
		nic.StrategyOpenMX, nic.StrategyStream,
	}
	var delays []sim.Time
	step, hi := 6*sim.Microsecond, 96*sim.Microsecond
	if opts.Quick {
		step = 12 * sim.Microsecond
	}
	for d := sim.Time(0); d <= hi; d += step {
		delays = append(delays, d)
	}
	g := sweep.Grid{
		Strategies:  strategies,
		Delays:      delays,
		Sizes:       []int{128},
		Seeds:       []uint64{opts.Seed},
		Iters:       20,
		Rate:        true,
		RateWarmup:  5 * sim.Millisecond,
		RateMeasure: 20 * sim.Millisecond,
		Par:         opts.Par,
	}
	if opts.Quick {
		g.Iters = 6
		g.RateWarmup = 2 * sim.Millisecond
		g.RateMeasure = 8 * sim.Millisecond
	}
	return strategies, delays, g
}

// Pareto runs the exhaustive fig4-6 tradeoff grid and reports every point
// with its frontier tag: which (strategy, delay) pairs are Pareto-optimal
// over (interrupts/sec, latency), and which one is the knee. This is the
// paper's Figures 4-6 turned from three plots a human cross-reads into
// one machine-checkable answer.
func Pareto(opts Options) *Report {
	_, _, g := paretoSpace(opts)
	rep := &Report{
		ID:     "pareto",
		Title:  "Pareto frontier of the strategy x delay tradeoff grid (interrupts/sec vs latency)",
		Header: []string{"strategy", "delay(us)", "latency(us)", "intr/s", "frontier", "knee"},
		Notes: []string{
			"frontier: no other point is at least as good on both objectives and better on one",
			"knee: frontier point farthest from the chord between the frontier's endpoints",
			"paper: openmx/stream pair disabled-like latency with coalesced-like interrupt load, so they should own the frontier",
		},
	}
	results, err := sweep.Run(g, 0)
	if err != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("ERROR: %v", err))
		return rep
	}
	tr := tune.Frontier(results)
	for _, p := range tr.Points {
		if p.Err != "" {
			rep.Notes = append(rep.Notes, fmt.Sprintf("ERROR point %d: %s", p.Index, p.Err))
			continue
		}
		frontier, knee := "", ""
		if !p.Dominated {
			frontier = "*"
		}
		if p.Knee {
			knee = "knee"
		}
		rep.Rows = append(rep.Rows, []string{
			p.Strategy,
			fmt.Sprintf("%.0f", p.DelayUS),
			fmt.Sprintf("%.1f", p.LatencyUS),
			units.FormatRate(p.Load),
			frontier,
			knee,
		})
	}
	if k, ok := tr.Knee(); ok {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"knee: %s @ %.0fus — %.1fus latency at %s intr/s",
			k.Strategy, k.DelayUS, k.LatencyUS, units.FormatRate(k.Load)))
	}
	return rep
}

// Autotune demonstrates the adaptive search against ground truth: the
// exhaustive frontier of the same space is computed first, then
// tune.Search is budgeted at 30% of the exhaustive cost and must land on
// the same knee. The report carries both answers and the evaluation
// counts so the saving is visible (and CI-checkable).
func Autotune(opts Options) *Report {
	strategies, delays, g := paretoSpace(opts)
	rep := &Report{
		ID:     "autotune",
		Title:  "Adaptive tradeoff search vs exhaustive frontier (same knee, fraction of the evaluations)",
		Header: []string{"method", "evals", "knee", "delay(us)", "latency(us)", "intr/s"},
	}
	results, err := sweep.Run(g, 0)
	if err != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("ERROR: %v", err))
		return rep
	}
	exhaustive := tune.Frontier(results)
	ek, ok := exhaustive.Knee()
	if !ok {
		rep.Notes = append(rep.Notes, "ERROR: exhaustive grid produced no valid point")
		return rep
	}

	budget := 3 * len(results) / 10
	out, err := tune.Search(tune.Spec{
		Size:        128,
		Iters:       g.Iters,
		Seed:        opts.Seed,
		Rate:        true,
		RateWarmup:  g.RateWarmup,
		RateMeasure: g.RateMeasure,
		Strategies:  strategies,
		Delays:      delays,
		MaxEvals:    budget,
		Par:         opts.Par,
	})
	if err != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("ERROR: %v", err))
		return rep
	}

	row := func(method string, evals int, p tune.Point) []string {
		return []string{
			method, fmt.Sprintf("%d", evals), p.Strategy,
			fmt.Sprintf("%.0f", p.DelayUS),
			fmt.Sprintf("%.1f", p.LatencyUS),
			units.FormatRate(p.Load),
		}
	}
	rep.Rows = append(rep.Rows,
		row("exhaustive", len(results), ek),
		row("search", out.Evals, out.Knee))
	match := out.Knee.Strategy == ek.Strategy && out.Knee.DelayUS == ek.DelayUS
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("search used %d of %d evaluations (%.0f%%, budget %d)",
			out.Evals, len(results), 100*float64(out.Evals)/float64(len(results)), budget),
		fmt.Sprintf("knee match: %v (the search must reproduce the exhaustive knee)", match),
	)
	if !match {
		rep.Notes = append(rep.Notes, "ERROR: search knee differs from exhaustive knee")
	}
	return rep
}
