package exp

import (
	"strings"
	"testing"
)

func reportErrors(rep *Report) []string {
	var errs []string
	for _, n := range rep.Notes {
		if strings.Contains(n, "ERROR") {
			errs = append(errs, n)
		}
	}
	return errs
}

// TestParetoQuick checks the frontier experiment's shape: full grid in the
// rows, at least one frontier point, exactly one knee, and the knee on the
// frontier.
func TestParetoQuick(t *testing.T) {
	rep := Pareto(quick)
	if errs := reportErrors(rep); len(errs) > 0 {
		t.Fatalf("pareto reported %v", errs)
	}
	if len(rep.Rows) != 4*9 { // 4 strategies x 9 quick delays
		t.Fatalf("rows = %d, want 36", len(rep.Rows))
	}
	frontier, knees := 0, 0
	for _, row := range rep.Rows {
		if row[4] == "*" {
			frontier++
		}
		if row[5] == "knee" {
			knees++
			if row[4] != "*" {
				t.Errorf("knee row %v not tagged as frontier", row)
			}
		}
	}
	if frontier == 0 {
		t.Error("no frontier point tagged")
	}
	if knees != 1 {
		t.Errorf("knee rows = %d, want exactly 1", knees)
	}
}

// TestAutotuneQuick is the headline acceptance check: the budgeted search
// must land on the exhaustive knee in at most 30% of the evaluations.
func TestAutotuneQuick(t *testing.T) {
	rep := Autotune(quick)
	if errs := reportErrors(rep); len(errs) > 0 {
		t.Fatalf("autotune reported %v", errs)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (exhaustive + search)", len(rep.Rows))
	}
	ex, se := rep.Rows[0], rep.Rows[1]
	if ex[2] != se[2] || ex[3] != se[3] {
		t.Errorf("search knee %s@%s differs from exhaustive %s@%s", se[2], se[3], ex[2], ex[3])
	}
	exEvals, seEvals := parseFloat(t, ex[1]), parseFloat(t, se[1])
	if seEvals > 0.3*exEvals {
		t.Errorf("search used %v evals, above 30%% of exhaustive %v", seEvals, exEvals)
	}
	matched := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "knee match: true") {
			matched = true
		}
	}
	if !matched {
		t.Error("report does not state a knee match")
	}
}
