package exp

import (
	"fmt"

	"openmxsim/internal/cluster"
	"openmxsim/internal/nic"
	"openmxsim/internal/sim"
	"openmxsim/internal/sweep"
	"openmxsim/internal/units"
)

// pingPongSizes is the Fig. 5/6 x-axis: 1 B to 1 MiB in powers of four.
var pingPongSizes = []int{1, 4, 16, 64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

// pingPong measures mean one-way transfer time per message size between
// two ranks on different nodes. The harness itself is the canonical copy
// in internal/sweep, shared with the parallel sweep executor.
func pingPong(cfg cluster.Config, sizes []int, iters int) (map[int]sim.Time, error) {
	res, _, _, err := sweep.RunPingPong(cfg, sizes, iters)
	return res, err
}

type ppStrategy struct {
	name     string
	strategy nic.Strategy
}

func pingPongReport(id, title string, opts Options, strategies []ppStrategy, notes []string) *Report {
	iters := 30
	if opts.Quick {
		iters = 6
	}
	rep := &Report{
		ID:     id,
		Title:  title,
		Header: []string{"size", "base(us)"},
		Notes:  notes,
	}
	results := make([]map[int]sim.Time, len(strategies))
	for i, s := range strategies {
		cfg := cluster.Paper()
		cfg.Seed = opts.Seed
		cfg.Parallelism = opts.Par
		cfg.Strategy = s.strategy
		m, err := pingPong(cfg, pingPongSizes, iters)
		if err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("ERROR %s: %v", s.name, err))
			m = map[int]sim.Time{}
		}
		results[i] = m
	}
	for _, s := range strategies[1:] {
		rep.Header = append(rep.Header, s.name+"(norm)")
	}
	for _, size := range pingPongSizes {
		base := results[0][size]
		row := []string{units.FormatBytes(size), us(base)}
		for i := range strategies[1:] {
			t := results[i+1][size]
			norm := "-"
			if base > 0 {
				norm = fmt.Sprintf("%.2f", float64(t)/float64(base))
			}
			row = append(row, norm)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// Fig5 reproduces Figure 5: ping-pong transfer time with the default 75 us
// coalescing versus coalescing disabled, normalized to the former.
func Fig5(opts Options) *Report {
	return pingPongReport("fig5",
		"Ping-pong transfer time normalized to 75us interrupt coalescing",
		opts,
		[]ppStrategy{
			{"coalescing-75us", nic.StrategyTimeout},
			{"disabled", nic.StrategyDisabled},
		},
		[]string{
			"paper: small-message latency ~10us disabled vs ~75us coalesced; large messages favour coalescing",
			"values < 1 mean faster than the 75us-coalescing baseline",
		})
}

// Fig6 reproduces Figure 6: Fig. 5 plus the Open-MX coalescing firmware,
// which should track the lower envelope of both curves.
func Fig6(opts Options) *Report {
	return pingPongReport("fig6",
		"Ping-pong transfer time with Open-MX coalescing, normalized to 75us coalescing",
		opts,
		[]ppStrategy{
			{"coalescing-75us", nic.StrategyTimeout},
			{"disabled", nic.StrategyDisabled},
			{"openmx", nic.StrategyOpenMX},
			{"stream", nic.StrategyStream}, // extension: paper omits it (same as openmx here)
		},
		[]string{
			"paper: Open-MX coalescing achieves disabled-like small-message latency AND coalesced-like large-message throughput",
			"stream column is an extension; the paper notes it matches openmx for ping-pong",
		})
}
