package exp

import (
	"openmxsim/internal/cluster"
	"openmxsim/internal/sim"
)

// PingPongLatency exposes the ping-pong harness: mean one-way transfer
// time per message size between two ranks on different nodes.
func PingPongLatency(cfg cluster.Config, sizes []int, iters int) (map[int]sim.Time, error) {
	if iters <= 0 {
		iters = 10
	}
	return pingPong(cfg, sizes, iters)
}

// MessageRate exposes the unidirectional stream harness: sustained
// receiver-side message completions per second.
func MessageRate(cfg cluster.Config, size int, warmup, measure sim.Time) float64 {
	if warmup <= 0 {
		warmup = 10 * sim.Millisecond
	}
	if measure <= 0 {
		measure = 50 * sim.Millisecond
	}
	return runStream(streamSpec{
		Cluster: cfg, Size: size,
		Warmup: warmup, Measure: measure,
	}).Rate
}
