package exp

import (
	"fmt"
	"sort"

	"openmxsim/internal/params"
)

// Runner is an experiment entry point.
type Runner func(Options) *Report

// registry maps experiment ids to runners, in the paper's order.
var registry = []struct {
	id     string
	desc   string
	runner Runner
}{
	{"fig4", "message rate vs coalescing delay, 3 host configs", Fig4},
	{"overhead", "per-packet receive overhead (Section IV-B2)", Overhead},
	{"fig5", "ping-pong: coalescing vs disabled", Fig5},
	{"fig6", "ping-pong with Open-MX coalescing", Fig6},
	{"table1", "message rate by size and strategy", Table1},
	{"table2", "234kiB transfer anatomy", Table2},
	{"table2-ablation", "per-marker transfer time deltas", Table2Ablation},
	{"table3", "mis-ordering impact on medium messages", Table3},
	{"table4", "NAS execution times x strategy", Table4},
	{"table5", "NAS IS interrupt counts", Table5},
	{"adaptive", "adaptive coalescing extension (Section VI)", Adaptive},
	{"multiqueue", "multiqueue extension (Section VI)", Multiqueue},
	{"jumbo", "MTU 9000 extension (Section IV-A)", Jumbo},
	{"sweep", "parallel tradeoff grid: strategy x delay x size (Figs. 4-6 in one run)", Sweep},
	{"incast", "N senders -> 1 receiver: rate and interrupts vs fan-in (shared-fabric extension)", Incast},
	{"congested-pingpong", "Fig. 5 ping-pong with background bulk streams on the receiver port", CongestedPingPong},
	{"pareto", "Pareto frontier of the fig4-6 tradeoff grid: dominated-point tagging + knee selection", Pareto},
	{"resilience", "latency/interrupt knee vs loss rate and burstiness (robustness counters per point)", Resilience},
	{"resilience-incast", "incast under bursty loss on a sharded cluster: rate vs protocol recovery work", ResilienceIncast},
	{"resilience-flap", "link flap vs the retry budget: transient recovery, bounded give-up, quiet watchdog", ResilienceFlap},
	{"autotune", "adaptive tradeoff search vs exhaustive frontier: same knee, fraction of the evaluations", Autotune},
}

// IDs lists experiment identifiers in run order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.id
	}
	return ids
}

// Describe returns the one-line description for an experiment id.
func Describe(id string) string {
	for _, e := range registry {
		if e.id == id {
			return e.desc
		}
	}
	return ""
}

// Get returns the runner for an experiment id.
func Get(id string) (Runner, error) {
	for _, e := range registry {
		if e.id == id {
			return e.runner, nil
		}
	}
	known := IDs()
	sort.Strings(known)
	return nil, fmt.Errorf("exp: unknown experiment %q (known: %v)", id, known)
}

// clusterParams returns the default parameter set (helper for extensions
// that need to derive modified parameters).
func clusterParams() *params.Params { return params.Default() }
