package exp

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRegistryComplete checks every advertised experiment id resolves to a
// runner and carries a description.
func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	if len(ids) == 0 {
		t.Fatal("registry is empty")
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate experiment id %q", id)
		}
		seen[id] = true
		r, err := Get(id)
		if err != nil || r == nil {
			t.Errorf("Get(%q) = %v, %v", id, r, err)
		}
		if Describe(id) == "" {
			t.Errorf("Describe(%q) is empty", id)
		}
	}
	if _, err := Get("no-such-experiment"); err == nil {
		t.Error("Get accepted an unknown id")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	rep := &Report{
		ID:     "t",
		Title:  "test",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"3", "4"}},
		Notes:  []string{"n"},
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	if got.ID != rep.ID || len(got.Rows) != 2 || got.Rows[1][1] != "4" {
		t.Errorf("round trip mangled the report: %+v", got)
	}
	var buf strings.Builder
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Error("WriteJSON output lacks trailing newline")
	}
}

// TestSweepQuick runs the registry's sweep experiment in quick mode and
// checks the grid shape survives into the report.
func TestSweepQuick(t *testing.T) {
	rep := Sweep(quick)
	if len(rep.Rows) != 6 { // 3 strategies x 1 delay x 2 sizes
		t.Fatalf("sweep quick rows = %d, want 6", len(rep.Rows))
	}
	for _, n := range rep.Notes {
		if strings.Contains(n, "ERROR") {
			t.Errorf("sweep reported %q", n)
		}
	}
	for _, row := range rep.Rows {
		if parseFloat(t, row[3]) <= 0 {
			t.Errorf("%s/%s/%s: non-positive latency %s", row[0], row[1], row[2], row[3])
		}
	}
}
