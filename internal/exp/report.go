// Package exp contains one runner per table and figure of the paper's
// evaluation (Section IV), plus the Section VI extensions. Each runner
// builds fresh clusters, drives the workload, and formats the same rows or
// series the paper reports.
package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"openmxsim/internal/sim"
	"openmxsim/internal/trace"
)

// Options control experiment scale.
type Options struct {
	// Seed drives all randomness; equal seeds reproduce results exactly.
	Seed uint64
	// Quick shrinks durations/iterations for tests and CI (the shapes
	// survive, the precision does not).
	Quick bool
	// Par shards every cluster the experiment builds across this many
	// engines (cluster.Config.Parallelism). Reports are bit-identical at
	// any value; only wall-clock time changes. Zero means 1 (serial).
	Par int
	// Trace, when non-nil, records event timelines and sampled metric
	// series from the experiments that support telemetry (incast,
	// resilience-flap). Reports stay bit-identical with it attached.
	Trace *trace.Recorder
}

// DefaultOptions returns the full-scale configuration.
func DefaultOptions() Options { return Options{Seed: 1} }

// Report is a formatted experiment result. It renders three ways: an
// aligned text table (String), comma-separated values (CSV), and indented
// JSON (JSON/WriteJSON) for machine consumers such as benchmark-trajectory
// tooling.
type Report struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	// Header and Rows form the table; Notes carries commentary
	// (paper-reference values, definitions).
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// CSV renders the report as comma-separated values.
func (r *Report) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Header, ","))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the report as indented JSON. The encoding is deterministic:
// equal seeds produce byte-identical output. Nil Header/Rows are encoded
// as empty arrays, never null, so consumers see one schema on every path
// (an errored report still has its rows key).
func (r *Report) JSON() ([]byte, error) {
	c := *r
	if c.Header == nil {
		c.Header = []string{}
	}
	if c.Rows == nil {
		c.Rows = [][]string{}
	}
	return json.MarshalIndent(&c, "", "  ")
}

// WriteJSON writes the JSON form followed by a newline.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := r.JSON()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

func us(t sim.Time) string {
	return fmt.Sprintf("%.1f", float64(t)/1000)
}

func seconds(t sim.Time) string {
	return fmt.Sprintf("%.2f", float64(t)/1e9)
}
