package exp

import (
	"errors"
	"fmt"

	"openmxsim/internal/chaos"
	"openmxsim/internal/cluster"
	"openmxsim/internal/fabric"
	"openmxsim/internal/nic"
	"openmxsim/internal/omx"
	"openmxsim/internal/sim"
	"openmxsim/internal/sweep"
	"openmxsim/internal/units"
)

// Resilience sweeps the paper's latency/interrupt tradeoff against frame
// loss: the fig4-6 grid's strategy axis crossed with a stationary drop
// probability and a loss-burst length (chaos.Bursty per point). The rows
// show how the knee moves — coalescing strategies that win on a clean
// fabric pay retransmission latency under loss, and bursty loss (same
// average rate, clustered) is harsher than uniform because consecutive
// fragments of one message die together.
func Resilience(opts Options) *Report {
	g := sweep.Grid{
		Strategies: []nic.Strategy{
			nic.StrategyDisabled, nic.StrategyTimeout, nic.StrategyOpenMX,
		},
		// Large messages: dozens of fragments per transfer give the loss
		// chain real exposure even at low rates (a 4KiB quick run can
		// finish without a single unlucky draw, which would make every
		// row identical to the clean baseline).
		Sizes:    []int{64 << 10},
		Seeds:    []uint64{opts.Seed},
		DropProb: []float64{0, 0.005, 0.02},
		Burst:    []float64{1, 8},
		Iters:    20,
		Par:      opts.Par,
	}
	if opts.Quick {
		g.Strategies = []nic.Strategy{nic.StrategyTimeout, nic.StrategyOpenMX}
		g.DropProb = []float64{0, 0.02}
		g.Iters = 6
	}

	rep := &Report{
		ID:     "resilience",
		Title:  "Latency/interrupt knee vs loss rate and burstiness (64KiB ping-pong + robustness counters)",
		Header: []string{"strategy", "drop", "burst", "latency(us)", "intr/msg", "retx", "pullretry", "backoffs", "giveups"},
		Notes: []string{
			"drop 0 rows are the clean baseline; burst is the mean loss-episode length at equal average rate",
			"retx/backoffs/giveups sum the protocol's recovery work across both nodes for the whole measurement",
		},
	}
	results, err := sweep.Run(g, 0)
	if err != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("ERROR: %v", err))
		return rep
	}
	for _, r := range results {
		if r.Err != "" {
			rep.Notes = append(rep.Notes, fmt.Sprintf("ERROR point %d: %s", r.Index, r.Err))
			continue
		}
		rep.Rows = append(rep.Rows, []string{
			r.Strategy,
			fmt.Sprintf("%g", r.DropProb),
			fmt.Sprintf("%g", r.Burst),
			us(sim.Time(r.LatencyNS)),
			fmt.Sprintf("%.2f", r.IntrPerMsg),
			fmt.Sprintf("%d", r.Retransmits),
			fmt.Sprintf("%d", r.PullRetries),
			fmt.Sprintf("%d", r.Backoffs),
			fmt.Sprintf("%d", r.GiveUps),
		})
	}
	return rep
}

// ResilienceIncast runs the N-to-1 incast under Gilbert–Elliott loss on a
// sharded cluster: unlike the ping-pong harness (which pins the reference
// engine), this experiment genuinely fans out across -par engines, so it
// doubles as the chaos layer's parallel-determinism probe — its report
// must be bit-identical at any opts.Par.
func ResilienceIncast(opts Options) *Report {
	senders := 4
	measure := 30 * sim.Millisecond
	loss := []struct{ drop, burst float64 }{{0, 0}, {0.01, 1}, {0.01, 8}}
	if opts.Quick {
		measure = 8 * sim.Millisecond
		loss = []struct{ drop, burst float64 }{{0, 0}, {0.01, 8}}
	}
	strategies := []struct {
		name     string
		strategy nic.Strategy
	}{
		{"timeout", nic.StrategyTimeout},
		{"openmx", nic.StrategyOpenMX},
	}
	rep := &Report{
		ID:     "resilience-incast",
		Title:  "4-to-1 incast under bursty loss: receiver rate vs protocol recovery work (sharded)",
		Header: []string{"strategy", "drop", "burst", "rate(msg/s)", "intr/msg", "qdrops", "retx", "backoffs", "giveups"},
		Notes: []string{
			"output-queued switch, 64-frame egress buffer; the loss chain runs per source node on its own shard",
			"loss converts receiver-side interrupt pressure into sender-side retransmission work",
		},
	}
	for _, st := range strategies {
		for _, lo := range loss {
			cfg := cluster.Paper()
			cfg.Seed = opts.Seed
			cfg.Parallelism = opts.Par
			cfg.Strategy = st.strategy
			cfg.Topology = fabric.Topology{
				Kind:              fabric.TopologyOutputQueued,
				EgressQueueFrames: 64,
			}
			if lo.drop > 0 {
				cfg.Scenario = &chaos.Scenario{
					Loss: chaos.Bursty(lo.drop, lo.burst),
					Seed: opts.Seed,
				}
			}
			res := sweep.RunIncast(sweep.IncastSpec{
				Cluster: cfg,
				Senders: senders,
				Size:    128,
				Warmup:  5 * sim.Millisecond,
				Measure: measure,
			})
			perMsg := "-"
			if res.Received > 0 {
				perMsg = fmt.Sprintf("%.2f", float64(res.Interrupts)/float64(res.Received))
			}
			rep.Rows = append(rep.Rows, []string{
				st.name,
				fmt.Sprintf("%g", lo.drop),
				fmt.Sprintf("%g", lo.burst),
				units.FormatRate(res.Rate),
				perMsg,
				fmt.Sprintf("%d", res.PortDrops),
				fmt.Sprintf("%d", res.Proto.Retransmits),
				fmt.Sprintf("%d", res.Proto.Backoffs),
				fmt.Sprintf("%d", res.Proto.GiveUps),
			})
		}
	}
	return rep
}

// ResilienceFlap demonstrates the bounded-retry contract end to end: a
// medium send launched into a transient link flap recovers after the
// link returns, and the same send against a permanent outage terminates
// with ErrGiveUp within the retry budget — under the liveness watchdog,
// which must stay quiet in both cases (the engine drains; nothing
// retries forever).
func ResilienceFlap(opts Options) *Report {
	// Large message: the rendezvous handshake means the send handle only
	// completes when the peer actually received the data, so a permanent
	// outage surfaces ErrGiveUp on the handle (a medium send would
	// complete at buffered handoff and fail silently into the counters).
	const size = 64 << 10
	down := sim.Millisecond
	cases := []struct {
		name string
		upAt sim.Time // 0 = permanent outage
	}{
		{"transient-40ms", 41 * sim.Millisecond},
		{"permanent", 0},
	}
	rep := &Report{
		ID:     "resilience-flap",
		Title:  "Link flap vs the retry budget: recovery after a transient outage, bounded give-up after a permanent one",
		Header: []string{"flap", "outcome", "watchdog", "retx", "backoffs", "giveups", "t(s)"},
		Notes: []string{
			"64KiB rendezvous send launched 1ms into the outage; MaxResends bounds the exponential-backoff retry train",
			"watchdog 'quiet' means the run drained on its own — no unbounded retry loop either way",
		},
	}
	for _, tc := range cases {
		cfg := cluster.Paper()
		cfg.Seed = opts.Seed
		cfg.Parallelism = opts.Par
		// Sequential cluster construction: the shared recorder sees one run
		// per flap case, flap edges included.
		cfg.Trace = opts.Trace
		cfg.Scenario = &chaos.Scenario{
			Flaps: []chaos.LinkFlap{{Node: 1, DownAt: down, UpAt: tc.upAt}},
			Seed:  opts.Seed,
		}
		cl := cluster.New(cfg)
		eps := cl.OpenEndpoints(1)

		completed := false
		var h *omx.SendHandle
		eps[1].Irecv(0, 0, nil, size, nil)
		cl.ScheduleOn(0, 2*sim.Millisecond, func() {
			h = eps[0].Isend(cl.Addr(1, 0), 1, nil, size, func() { completed = true })
		})

		werr := cl.RunWatched(cluster.Watchdog{MaxVirtual: 5 * sim.Second})
		outcome := "pending"
		switch {
		case h != nil && errors.Is(h.Err, omx.ErrGiveUp):
			outcome = "gave-up"
		case completed && h != nil && h.Err == nil:
			outcome = "completed"
		case h != nil && h.Err != nil:
			outcome = fmt.Sprintf("failed: %v", h.Err)
		}
		wd := "quiet"
		if werr != nil {
			wd = "FIRED"
			rep.Notes = append(rep.Notes, fmt.Sprintf("WATCHDOG %s: %v", tc.name, werr))
		}
		pc := sweep.ProtoCounters{}
		for _, s := range cl.Stacks {
			pc.Retransmits += s.Stats.Retransmits
			pc.Backoffs += s.Stats.Backoffs
			pc.GiveUps += s.Stats.GiveUps
		}
		rep.Rows = append(rep.Rows, []string{
			tc.name, outcome, wd,
			fmt.Sprintf("%d", pc.Retransmits),
			fmt.Sprintf("%d", pc.Backoffs),
			fmt.Sprintf("%d", pc.GiveUps),
			seconds(cl.Now()),
		})
	}
	return rep
}
