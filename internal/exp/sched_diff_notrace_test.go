//go:build !race

package exp

// fullDiffRegistry lets the scheduler-differential test cover the whole
// registry in the normal CI test job; under the race detector the same
// sweep takes minutes, so the race job falls back to the -short subset.
const fullDiffRegistry = true
