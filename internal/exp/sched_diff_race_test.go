//go:build race

package exp

// Under -race the full-registry differential is minutes of runtime for no
// added interleaving coverage (experiments are single-goroutine); the
// -short subset keeps the race job fast.
const fullDiffRegistry = false
