package exp

import (
	"testing"

	"openmxsim/internal/sim"
)

// TestReportsBitIdenticalAcrossSchedulers regenerates every registry
// experiment under the timing-wheel scheduler and the legacy heap and
// requires byte-identical reports: the scheduler swap must be invisible to
// every model. Two seeds guard against a single lucky ordering. In -short
// mode only the cheapest experiments run; the full registry runs in CI.
func TestReportsBitIdenticalAcrossSchedulers(t *testing.T) {
	ids := IDs()
	if testing.Short() || !fullDiffRegistry {
		ids = []string{"fig5", "table2", "table3", "sweep", "incast"}
	}
	seeds := []uint64{1, 7}
	for _, id := range ids {
		runner, err := Get(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range seeds {
			opts := Options{Seed: seed, Quick: true}

			restore := sim.SetDefaultScheduler(sim.NewWheelScheduler)
			wheelRep, err := runner(opts).JSON()
			if err != nil {
				t.Fatalf("%s seed %d (wheel): %v", id, seed, err)
			}
			sim.SetDefaultScheduler(sim.NewHeapScheduler)
			heapRep, err := runner(opts).JSON()
			sim.SetDefaultScheduler(restore)
			if err != nil {
				t.Fatalf("%s seed %d (heap): %v", id, seed, err)
			}

			if string(wheelRep) != string(heapRep) {
				t.Errorf("%s seed %d: report differs between wheel and heap schedulers\nwheel: %s\nheap:  %s",
					id, seed, wheelRep, heapRep)
			}
		}
	}
}
