package exp

import (
	"openmxsim/internal/cluster"
	"openmxsim/internal/sim"
	"openmxsim/internal/sweep"
	"openmxsim/internal/wire"
)

// The stream harness lives in internal/sweep (the canonical copy, shared
// with the parallel sweep executor); these aliases keep the experiment
// runners reading naturally.
type (
	streamSpec   = sweep.StreamSpec
	streamResult = sweep.StreamResult
)

func runStream(spec streamSpec) streamResult { return sweep.RunStream(spec) }

// nullPort absorbs frames addressed to the blaster's MAC (none arrive).
type nullPort struct{}

func (nullPort) ReceiveFrame(*wire.Frame) {}

// overheadResult is the Section IV-B2 measurement: receive-stack CPU time
// per packet for a stream of invalid packets dropped by the handler.
type overheadResult struct {
	PerPacket  sim.Time
	Interrupts uint64
	Packets    int
}

func runOverhead(cfg cluster.Config, packets int, gap sim.Time) overheadResult {
	cl := cluster.New(cfg)
	// The stack must exist so the receive handler runs; no endpoint is
	// needed because invalid packets are dropped before demultiplexing.
	blaster := wire.NodeMAC(9)
	cl.Switch.Attach(blaster, nullPort{})

	dst := cl.NICs[0].MAC()
	sent := 0
	var next func()
	next = func() {
		if sent >= packets {
			return
		}
		sent++
		h := wire.Header{Type: wire.TypeInvalid}
		f := wire.NewFrame(blaster, dst, h, nil, 128)
		cl.Switch.Send(f)
		cl.Eng.After(gap, next)
	}
	cl.Eng.After(0, next)
	cl.Run()

	st := cl.Hosts[0].Stats()
	dropped := cl.Stacks[0].Stats.InvalidDropped
	var per sim.Time
	if dropped > 0 {
		per = st.IRQBusy / sim.Time(dropped)
	}
	return overheadResult{
		PerPacket:  per,
		Interrupts: cl.NICs[0].Stats.Interrupts,
		Packets:    int(dropped),
	}
}
