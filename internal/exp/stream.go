package exp

import (
	"openmxsim/internal/cluster"
	"openmxsim/internal/omx"
	"openmxsim/internal/sim"
	"openmxsim/internal/wire"
)

// streamSpec describes a unidirectional message-rate measurement: a sender
// on node 0 keeps `Chains` back-to-back send chains running toward a
// receiver on node 1, which reposts wildcard receives. The receiver side is
// where interrupts matter (Table I is measured there).
type streamSpec struct {
	Cluster cluster.Config
	Size    int
	Chains  int
	Warmup  sim.Time
	Measure sim.Time
}

type streamResult struct {
	// Rate is messages per second completed at the receiving application
	// during the measurement window.
	Rate float64
	// Interrupts and IntrRate cover the receiver NIC in the window.
	Interrupts uint64
	IntrRate   float64
	// Wakeups on the receiving host in the window.
	Wakeups uint64
	// Received is the raw message count in the window.
	Received int
}

func runStream(spec streamSpec) streamResult {
	cl := cluster.New(spec.Cluster)
	// Application processes pinned away from the default IRQ core. Like
	// the paper's benchmark processes, they wait in blocking mode, so
	// their cores enter C1E between message batches and pay the wake-up
	// penalty — the dominant effect behind Fig. 4's sleep curves.
	snd := cl.Stacks[0].Open(0, cl.Hosts[0].Cores[1])
	rcv := cl.Stacks[1].Open(0, cl.Hosts[1].Cores[1])

	received := 0
	var repost func()
	repost = func() {
		rcv.Irecv(0, 0, nil, spec.Size, func(*omx.RecvHandle) {
			received++
			repost()
		})
	}
	dst := rcv.Addr()
	var chain func()
	chain = func() { snd.Isend(dst, 1, nil, spec.Size, chain) }

	cl.Eng.After(0, func() {
		for i := 0; i < 192; i++ {
			repost()
		}
		for i := 0; i < spec.Chains; i++ {
			chain()
		}
	})

	var startCount int
	var startIntr, startWake uint64
	cl.Eng.Schedule(spec.Warmup, func() {
		startCount = received
		startIntr = cl.NICs[1].Stats.Interrupts
		startWake = cl.Hosts[1].Stats().Wakeups
	})
	cl.Eng.RunUntil(spec.Warmup + spec.Measure)

	got := received - startCount
	secs := float64(spec.Measure) / 1e9
	intr := cl.NICs[1].Stats.Interrupts - startIntr
	return streamResult{
		Rate:       float64(got) / secs,
		Interrupts: intr,
		IntrRate:   float64(intr) / secs,
		Wakeups:    cl.Hosts[1].Stats().Wakeups - startWake,
		Received:   got,
	}
}

// nullPort absorbs frames addressed to the blaster's MAC (none arrive).
type nullPort struct{}

func (nullPort) ReceiveFrame(*wire.Frame) {}

// overheadResult is the Section IV-B2 measurement: receive-stack CPU time
// per packet for a stream of invalid packets dropped by the handler.
type overheadResult struct {
	PerPacket  sim.Time
	Interrupts uint64
	Packets    int
}

func runOverhead(cfg cluster.Config, packets int, gap sim.Time) overheadResult {
	cl := cluster.New(cfg)
	// The stack must exist so the receive handler runs; no endpoint is
	// needed because invalid packets are dropped before demultiplexing.
	blaster := wire.NodeMAC(9)
	cl.Switch.Attach(blaster, nullPort{})

	dst := cl.NICs[0].MAC()
	sent := 0
	var next func()
	next = func() {
		if sent >= packets {
			return
		}
		sent++
		h := wire.Header{Type: wire.TypeInvalid}
		f := wire.NewFrame(blaster, dst, h, nil, 128)
		cl.Switch.Send(f)
		cl.Eng.After(gap, next)
	}
	cl.Eng.After(0, next)
	cl.Eng.Run()

	st := cl.Hosts[0].Stats()
	dropped := cl.Stacks[0].Stats.InvalidDropped
	var per sim.Time
	if dropped > 0 {
		per = st.IRQBusy / sim.Time(dropped)
	}
	return overheadResult{
		PerPacket:  per,
		Interrupts: cl.NICs[0].Stats.Interrupts,
		Packets:    int(dropped),
	}
}
