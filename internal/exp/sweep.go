package exp

import (
	"fmt"

	"openmxsim/internal/nic"
	"openmxsim/internal/sim"
	"openmxsim/internal/sweep"
	"openmxsim/internal/units"
)

// Sweep reproduces the Fig. 4/5 tradeoff grid in one parallel run: every
// coalescing strategy crossed with the delay and message-size axes, each
// point measured on its own cluster by the worker-pool executor in
// internal/sweep. The rows expose both sides of the paper's tradeoff —
// latency and interrupts per message — at every point.
func Sweep(opts Options) *Report {
	g := sweep.Grid{
		Strategies: []nic.Strategy{
			nic.StrategyDisabled, nic.StrategyTimeout,
			nic.StrategyOpenMX, nic.StrategyStream,
		},
		Delays: []sim.Time{25 * sim.Microsecond, 75 * sim.Microsecond},
		Sizes:  []int{1, 128, 4 << 10, 64 << 10},
		Seeds:  []uint64{opts.Seed},
		Iters:  30,
		Par:    opts.Par,
	}
	if opts.Quick {
		g.Strategies = []nic.Strategy{
			nic.StrategyDisabled, nic.StrategyTimeout, nic.StrategyOpenMX,
		}
		g.Delays = []sim.Time{75 * sim.Microsecond}
		g.Sizes = []int{1, 4 << 10}
		g.Iters = 6
	}

	rep := &Report{
		ID:     "sweep",
		Title:  "Latency/interrupt tradeoff grid (strategy x delay x size), run in parallel",
		Header: []string{"strategy", "delay(us)", "size", "latency(us)", "intr/msg"},
		Notes: []string{
			fmt.Sprintf("%d points, one worker per core; results are ordered by grid position, not completion", g.Size()),
			"paper: openmx/stream should pair disabled-like latency with coalesced-like interrupt counts",
		},
	}
	results, err := sweep.Run(g, 0)
	if err != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("ERROR: %v", err))
		return rep
	}
	for _, r := range results {
		if r.Err != "" {
			rep.Notes = append(rep.Notes, fmt.Sprintf("ERROR point %d: %s", r.Index, r.Err))
			continue
		}
		rep.Rows = append(rep.Rows, []string{
			r.Strategy,
			fmt.Sprintf("%.0f", r.DelayUS),
			units.FormatBytes(r.SizeBytes),
			us(sim.Time(r.LatencyNS)),
			fmt.Sprintf("%.2f", r.IntrPerMsg),
		})
	}
	return rep
}
