package exp

import (
	"openmxsim/internal/cluster"
	"openmxsim/internal/nic"
	"openmxsim/internal/sim"
	"openmxsim/internal/units"
)

// table1Strategies are the four columns of Table I.
var table1Strategies = []struct {
	name     string
	strategy nic.Strategy
}{
	{"Default", nic.StrategyTimeout},
	{"Disabled", nic.StrategyDisabled},
	{"Open-MX", nic.StrategyOpenMX},
	{"Stream", nic.StrategyStream},
}

// Table1 reproduces Table I: message rate on the receiver side for 0 B,
// 32 KiB and 1 MiB messages under each coalescing strategy.
func Table1(opts Options) *Report {
	type sizeSpec struct {
		label   string
		size    int
		chains  int
		warmup  sim.Time
		measure sim.Time
	}
	sizes := []sizeSpec{
		{"0B", 0, 8, 20 * sim.Millisecond, 150 * sim.Millisecond},
		{"32kiB", 32 << 10, 8, 20 * sim.Millisecond, 250 * sim.Millisecond},
		{"1MiB", 1 << 20, 4, 50 * sim.Millisecond, 1000 * sim.Millisecond},
	}
	if opts.Quick {
		for i := range sizes {
			sizes[i].warmup /= 4
			sizes[i].measure /= 5
		}
	}

	rep := &Report{
		ID:     "table1",
		Title:  "Message rate (msg/s, receiver side) by size and coalescing strategy",
		Header: []string{"size", "Default", "Disabled", "Open-MX", "Stream"},
		Notes: []string{
			"paper:   0B: 490k / 252k / 423k / 435k",
			"paper: 32kiB: 14507 / 6476 / 14533 / 14691",
			"paper:  1MiB: 452 / 334 / 451 / 447",
		},
	}

	for _, ss := range sizes {
		row := []string{ss.label}
		for _, st := range table1Strategies {
			cfg := cluster.Paper()
			cfg.Seed = opts.Seed
			cfg.Parallelism = opts.Par
			cfg.Strategy = st.strategy
			res := runStream(streamSpec{
				Cluster: cfg, Size: ss.size, Chains: ss.chains,
				Warmup: ss.warmup, Measure: ss.measure,
			})
			row = append(row, units.FormatRate(res.Rate))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}
