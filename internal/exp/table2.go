package exp

import (
	"fmt"

	"openmxsim/internal/cluster"
	"openmxsim/internal/mpi"
	"openmxsim/internal/nic"
	"openmxsim/internal/omx"
	"openmxsim/internal/sim"
)

// largeAnatomy measures the mean transfer time of one size-234KiB message
// (send post to receive completion on the target, as the paper measures:
// the Notify mark "does not appear critical" there) and the interrupts
// raised per transfer across both NICs.
func largeAnatomy(cfg cluster.Config, iters int) (mean sim.Time, irqPerMsg float64, err error) {
	const size = 234 << 10
	cl := cluster.New(cfg)
	w := mpi.NewWorld(cl, cl.OpenEndpoints(1))
	c := w.CommWorld()
	var total sim.Time
	var irqStart uint64
	var t0 sim.Time
	_, err = w.Run(func(r *mpi.Rank) {
		for k := 0; k < iters+2; k++ {
			measuring := k >= 2
			switch r.ID {
			case 0:
				if measuring && k == 2 {
					irqStart = cl.Interrupts()
				}
				t0 = r.Now()
				r.Send(c, 1, 7, nil, size)
				// Per-iteration handshake isolates transfers.
				r.Recv(c, 1, 8, nil, 0)
				r.Compute(300 * sim.Microsecond)
			case 1:
				r.Recv(c, 0, 7, nil, size)
				if measuring {
					total += r.Now() - t0
				}
				r.Send(c, 0, 8, nil, 0)
				r.Compute(300 * sim.Microsecond)
			}
		}
	})
	if err != nil {
		return 0, 0, err
	}
	irqs := cl.Interrupts() - irqStart
	return total / sim.Time(iters), float64(irqs) / float64(iters), nil
}

// Table2 reproduces Table II: transfer time and interrupt count for a
// 234 KiB message under disabled / timeout / Open-MX coalescing.
func Table2(opts Options) *Report {
	iters := 40
	if opts.Quick {
		iters = 8
	}
	strategies := []struct {
		name     string
		strategy nic.Strategy
	}{
		{"Disabled", nic.StrategyDisabled},
		{"Timeout 75us", nic.StrategyTimeout},
		{"Open-MX", nic.StrategyOpenMX},
	}
	rep := &Report{
		ID:     "table2",
		Title:  "234kiB transfer: time and interrupts (both sides) per message",
		Header: []string{"strategy", "transfer(us)", "interrupts/msg"},
		Notes: []string{
			"paper: Disabled 705us / ~92.4; Timeout-75us 762us / ~14.4; Open-MX 708us / ~13.7",
			"a 234kiB pull = 1 rendezvous + 5 requests + 160 replies + 1 notify (+acks)",
		},
	}
	for _, st := range strategies {
		cfg := cluster.Paper()
		cfg.Seed = opts.Seed
		cfg.Parallelism = opts.Par
		cfg.Strategy = st.strategy
		mean, irq, err := largeAnatomy(cfg, iters)
		if err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("ERROR %s: %v", st.name, err))
			continue
		}
		rep.Rows = append(rep.Rows, []string{st.name, us(mean), fmt.Sprintf("%.1f", irq)})
	}
	return rep
}

// Table2Ablation reproduces the Section IV-C3 marker study: the transfer
// time delta when each latency-sensitive marker is individually removed
// from the Open-MX coalescing firmware.
func Table2Ablation(opts Options) *Report {
	iters := 40
	if opts.Quick {
		iters = 8
	}
	base := cluster.Paper()
	base.Seed = opts.Seed
	base.Parallelism = opts.Par
	base.Strategy = nic.StrategyOpenMX
	full, _, err := largeAnatomy(base, iters)

	rep := &Report{
		ID:     "table2-ablation",
		Title:  "234kiB transfer time when individual markers are removed (Open-MX coalescing)",
		Header: []string{"marker removed", "transfer(us)", "delta(us)"},
		Notes: []string{
			"paper: removing the rendezvous mark costs ~20us, pull-request ~5us, last-pull-reply ~2us, notify ~0us",
		},
	}
	if err != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("ERROR baseline: %v", err))
		return rep
	}
	rep.Rows = append(rep.Rows, []string{"(none: full marking)", us(full), "0.0"})

	cases := []struct {
		name string
		mod  func(*omx.MarkPolicy)
	}{
		{"rendezvous", func(m *omx.MarkPolicy) { m.Rendezvous = false }},
		{"pull-request", func(m *omx.MarkPolicy) { m.PullRequest = false }},
		{"last-pull-reply", func(m *omx.MarkPolicy) { m.PullLastReply = false }},
		{"notify", func(m *omx.MarkPolicy) { m.Notify = false }},
	}
	for _, cse := range cases {
		cfg := base
		mark := omx.DefaultMarkPolicy()
		cse.mod(&mark)
		cfg.Mark = &mark
		mean, _, err := largeAnatomy(cfg, iters)
		if err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("ERROR %s: %v", cse.name, err))
			continue
		}
		rep.Rows = append(rep.Rows, []string{
			cse.name, us(mean), fmt.Sprintf("%+.1f", float64(mean-full)/1000),
		})
	}
	return rep
}
