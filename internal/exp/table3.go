package exp

import (
	"fmt"

	"openmxsim/internal/cluster"
	"openmxsim/internal/mpi"
	"openmxsim/internal/nic"
	"openmxsim/internal/omx"
	"openmxsim/internal/sim"
)

// mediumMisorder measures 32 KiB medium transfers (23 fragments) while the
// latency-sensitive mark sits `shift` fragments before the last — the
// paper's emulation of packet mis-ordering. Transfer time is send-post to
// receive-completion; "success" counts transfers that stayed within 20 us
// of the in-order mean (the deferral/absorption race was won).
type misorderResult struct {
	Mean    sim.Time
	Success float64 // fraction vs baseline, only meaningful for shift > 0
}

func mediumMisorder(cfg cluster.Config, shift, iters int, baseline sim.Time) (misorderResult, error) {
	const size = 32 << 10
	mark := omx.DefaultMarkPolicy()
	mark.MediumMarkShift = shift
	cfg.Mark = &mark

	cl := cluster.New(cfg)
	w := mpi.NewWorld(cl, cl.OpenEndpoints(1))
	c := w.CommWorld()

	var times []sim.Time
	var t0 sim.Time
	_, err := w.Run(func(r *mpi.Rank) {
		for k := 0; k < iters+2; k++ {
			switch r.ID {
			case 0:
				t0 = r.Now()
				r.Send(c, 1, 5, nil, size) // completes at last-fragment transmit
				// Wait for the receiver's per-iteration handshake so the
				// next transfer cannot flush this one's stragglers.
				r.Recv(c, 1, 6, nil, 0)
				r.Compute(150 * sim.Microsecond)
			case 1:
				r.Recv(c, 0, 5, nil, size)
				if k >= 2 {
					times = append(times, r.Now()-t0)
				}
				r.Send(c, 0, 6, nil, 0)
				r.Compute(150 * sim.Microsecond)
			}
		}
	})
	if err != nil {
		return misorderResult{}, err
	}
	var total sim.Time
	success := 0
	for _, t := range times {
		total += t
		if baseline > 0 && t <= baseline+20*sim.Microsecond {
			success++
		}
	}
	return misorderResult{
		Mean:    total / sim.Time(len(times)),
		Success: float64(success) / float64(len(times)),
	}, nil
}

// Table3 reproduces Table III: the impact of mark displacement
// (mis-ordering degrees 0, 1, 3) on 32 KiB medium transfers under Open-MX
// and Stream coalescing, plus the Stream deferral success rate.
func Table3(opts Options) *Report {
	iters := 150
	if opts.Quick {
		iters = 25
	}
	rep := &Report{
		ID:     "table3",
		Title:  "32kiB medium transfer vs mis-ordering degree (mark moved off the last fragment)",
		Header: []string{"strategy", "in-order(us)", "degree1(us)", "degree3(us)", "succ@1", "succ@3"},
		Notes: []string{
			"paper: Open-MX 156/177/177us; Stream 156/171/174us; Stream success 30% @1, 15% @3",
			"success = transfer within 20us of the in-order mean (trailing fragments were absorbed)",
		},
	}
	for _, st := range []struct {
		name     string
		strategy nic.Strategy
	}{
		{"Open-MX", nic.StrategyOpenMX},
		{"Stream", nic.StrategyStream},
	} {
		cfg := cluster.Paper()
		cfg.Seed = opts.Seed
		cfg.Parallelism = opts.Par
		cfg.Strategy = st.strategy
		base, err := mediumMisorder(cfg, 0, iters, 0)
		if err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("ERROR %s: %v", st.name, err))
			continue
		}
		row := []string{st.name, us(base.Mean)}
		var succ []string
		for _, shift := range []int{1, 3} {
			res, err := mediumMisorder(cfg, shift, iters, base.Mean)
			if err != nil {
				rep.Notes = append(rep.Notes, fmt.Sprintf("ERROR %s shift %d: %v", st.name, shift, err))
				row = append(row, "-")
				succ = append(succ, "-")
				continue
			}
			row = append(row, us(res.Mean))
			succ = append(succ, fmt.Sprintf("%.0f%%", res.Success*100))
		}
		row = append(row, succ...)
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}
