package exp

import (
	"bytes"
	"reflect"
	"testing"

	"openmxsim/internal/sim"
	"openmxsim/internal/trace"
)

// tracedRunners are the registry experiments wired for telemetry: both
// build every cluster strictly sequentially, so one shared recorder can
// observe the whole experiment.
var tracedRunners = []struct {
	id  string
	run Runner
}{
	{"incast", Incast},
	{"resilience-flap", ResilienceFlap},
}

// TestReportsBitIdenticalTraceOnOff is the observer-effect gate: attaching
// a recorder (events + sampling) must not change a single byte of any
// report, at the seeds the registry experiments actually ship with.
func TestReportsBitIdenticalTraceOnOff(t *testing.T) {
	for _, tr := range tracedRunners {
		for _, seed := range []uint64{1, 7} {
			off := tr.run(Options{Seed: seed, Quick: true})
			rec := trace.New(trace.Config{Events: true, SampleEvery: 200 * sim.Microsecond})
			on := tr.run(Options{Seed: seed, Quick: true, Trace: rec})
			if !reflect.DeepEqual(off, on) {
				t.Errorf("%s seed %d: report changed when tracing was enabled:\noff: %+v\non:  %+v",
					tr.id, seed, off, on)
			}
			if rec.Runs() == 0 {
				t.Errorf("%s seed %d: recorder attached but no runs recorded", tr.id, seed)
			}
		}
	}
}

// TestTraceBytesBitIdenticalAcrossPar is the shard-layout half of the
// determinism contract: the exported timeline and series bytes must be
// identical between the serial reference engine and an 8-way sharded run.
func TestTraceBytesBitIdenticalAcrossPar(t *testing.T) {
	for _, tr := range tracedRunners {
		capture := func(par int) (rep *Report, traceB, seriesB []byte) {
			rec := trace.New(trace.Config{Events: true, SampleEvery: 200 * sim.Microsecond})
			rep = tr.run(Options{Seed: 1, Quick: true, Par: par, Trace: rec})
			var tb, sb bytes.Buffer
			if err := rec.WriteChromeTrace(&tb); err != nil {
				t.Fatalf("%s par %d: WriteChromeTrace: %v", tr.id, par, err)
			}
			if err := rec.WriteSeriesCSV(&sb); err != nil {
				t.Fatalf("%s par %d: WriteSeriesCSV: %v", tr.id, par, err)
			}
			return rep, tb.Bytes(), sb.Bytes()
		}
		rep1, trace1, series1 := capture(1)
		rep8, trace8, series8 := capture(8)
		if !reflect.DeepEqual(rep1, rep8) {
			t.Errorf("%s: report differs between par 1 and par 8", tr.id)
		}
		if !bytes.Equal(trace1, trace8) {
			t.Errorf("%s: trace bytes differ between par 1 and par 8 (%d vs %d bytes)",
				tr.id, len(trace1), len(trace8))
		}
		if !bytes.Equal(series1, series8) {
			t.Errorf("%s: series bytes differ between par 1 and par 8 (%d vs %d bytes)",
				tr.id, len(series1), len(series8))
		}
		if len(series1) == 0 {
			t.Errorf("%s: sampling produced no series", tr.id)
		}
	}
}
