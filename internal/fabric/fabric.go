// Package fabric models the Ethernet network between hosts: full-duplex
// links into a store-and-forward switch with per-egress-port serialization
// and queueing, propagation delay, per-frame timing jitter, and optional
// fault injection (drop, duplicate, delay-induced reordering).
//
// The fabric is where large-message bandwidth and the inter-packet gaps seen
// by the receiving NIC are decided, so it directly shapes the pull-protocol
// results (Table II) and the Stream-coalescing deferral window (Table III).
package fabric

import (
	"fmt"

	"openmxsim/internal/params"
	"openmxsim/internal/sim"
	"openmxsim/internal/wire"
)

// Receiver consumes frames delivered by the fabric (implemented by the NIC).
type Receiver interface {
	// ReceiveFrame is invoked at the virtual time the last bit of the frame
	// arrives at the port.
	ReceiveFrame(f *wire.Frame)
}

// Fault describes an injected network imperfection, applied per frame.
type Fault struct {
	// DropProb is the probability a frame is silently lost.
	DropProb float64
	// DupProb is the probability a frame is delivered twice.
	DupProb float64
	// DelayProb is the probability a frame is held back by DelayTime,
	// which reorders it behind later traffic.
	DelayProb float64
	// DelayTime is the hold-back applied to delayed frames.
	DelayTime sim.Time
	// Filter, when non-nil, restricts the fault to matching frames.
	Filter func(*wire.Frame) bool
}

func (fl *Fault) matches(f *wire.Frame) bool {
	return fl != nil && (fl.Filter == nil || fl.Filter(f))
}

// Switch is the central store-and-forward element. Ports are registered by
// MAC; each port has an independent ingress (host->switch) and egress
// (switch->host) serialization resource, which is how both directions of a
// full-duplex link and cross-traffic contention are modelled.
type Switch struct {
	eng   *sim.Engine
	link  params.Link
	rng   *sim.RNG
	ports map[wire.MAC]*port
	fault *Fault

	// In-flight deliveries are recycled through a free list and fire
	// through one bound callback, so forwarding a frame never allocates.
	delivFree []*delivery
	deliverFn func(any)

	// Stats
	FramesDelivered uint64
	FramesDropped   uint64
	BytesDelivered  uint64
}

// delivery is one scheduled frame arrival at a port.
type delivery struct {
	p *port
	f *wire.Frame
}

type port struct {
	mac         wire.MAC
	rx          Receiver
	ingressBusy sim.Time // sender-side wire occupancy
	egressBusy  sim.Time // receiver-side wire occupancy
}

// NewSwitch creates a switch with the given link characteristics.
func NewSwitch(eng *sim.Engine, link params.Link, rng *sim.RNG) *Switch {
	s := &Switch{eng: eng, link: link, rng: rng, ports: make(map[wire.MAC]*port)}
	s.deliverFn = func(x any) { s.deliverNow(x.(*delivery)) }
	return s
}

// SetFault installs (or clears, with nil) the fault-injection plan.
func (s *Switch) SetFault(f *Fault) { s.fault = f }

// Attach registers a receiver under its MAC address.
func (s *Switch) Attach(mac wire.MAC, rx Receiver) {
	if _, dup := s.ports[mac]; dup {
		panic(fmt.Sprintf("fabric: duplicate port %s", mac))
	}
	s.ports[mac] = &port{mac: mac, rx: rx}
}

// Send injects a frame at the source port at the current virtual time. The
// frame serializes onto the source link, crosses the switch, serializes onto
// the destination link, and is delivered after the propagation delays.
func (s *Switch) Send(f *wire.Frame) {
	src, ok := s.ports[f.Src]
	if !ok {
		panic(fmt.Sprintf("fabric: unknown source %s", f.Src))
	}
	dst, ok := s.ports[f.Dst]
	if !ok {
		panic(fmt.Sprintf("fabric: unknown destination %s", f.Dst))
	}

	now := s.eng.Now()
	ser := s.link.SerializationTime(f.WireBytes())

	// Ingress: the sender's wire is busy until the frame has left the NIC.
	start := now
	if src.ingressBusy > start {
		start = src.ingressBusy
	}
	atSwitch := start + ser + s.link.PropagationDelay
	src.ingressBusy = start + ser

	// Store-and-forward switch latency, then egress serialization toward
	// the destination (shared by all flows targeting that port).
	ready := atSwitch + s.link.SwitchLatency
	egStart := ready
	if dst.egressBusy > egStart {
		egStart = dst.egressBusy
	}
	dst.egressBusy = egStart + ser
	arrival := egStart + ser + s.link.PropagationDelay
	arrival += s.rng.Jitter(0, s.link.JitterSD)

	// Fault injection. The caller's frame reference transfers to the
	// delivery; drops release it and duplicates take an extra one.
	if s.fault.matches(f) {
		if s.rng.Bool(s.fault.DropProb) {
			s.FramesDropped++
			f.Release()
			return
		}
		if s.fault.DelayProb > 0 && s.rng.Bool(s.fault.DelayProb) {
			arrival += s.fault.DelayTime
		}
		if s.fault.DupProb > 0 && s.rng.Bool(s.fault.DupProb) {
			f.Ref()
			s.deliver(dst, f, arrival+s.rng.Jitter(ser, s.link.JitterSD))
		}
	}
	s.deliver(dst, f, arrival)
}

func (s *Switch) deliver(p *port, f *wire.Frame, at sim.Time) {
	var d *delivery
	if k := len(s.delivFree); k > 0 {
		d = s.delivFree[k-1]
		s.delivFree[k-1] = nil
		s.delivFree = s.delivFree[:k-1]
	} else {
		d = &delivery{}
	}
	d.p, d.f = p, f
	s.eng.ScheduleArg(at, s.deliverFn, d)
}

// deliverNow hands the frame (and its reference) to the destination port.
func (s *Switch) deliverNow(d *delivery) {
	p, f := d.p, d.f
	d.p, d.f = nil, nil
	s.delivFree = append(s.delivFree, d)
	s.FramesDelivered++
	s.BytesDelivered += uint64(f.WireBytes())
	p.rx.ReceiveFrame(f)
}
