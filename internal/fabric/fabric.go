// Package fabric models the Ethernet network between hosts: full-duplex
// links into a store-and-forward switch with per-egress-port serialization
// and queueing, propagation delay, per-frame timing jitter, and optional
// fault injection (drop, duplicate, delay-induced reordering).
//
// Two switching models are available, selected by Topology:
//
//   - TopologyDirect (the default, and the paper's evaluation setup): every
//     egress port is an ideal unbounded serialization resource. Frames are
//     never lost to congestion; a burst into one port simply stretches the
//     busy-until horizon. This is exact for the paper's 2-node back-to-back
//     link and stays bit-identical across releases.
//   - TopologyOutputQueued: an output-queued switch with a bounded FIFO
//     drop-tail queue per egress port and per-port occupancy/drop/latency
//     statistics. This is the model for N-node shared-fabric scenarios
//     (incast fan-in, background bulk streams congesting a port) where the
//     interrupt-load/latency tradeoff meets switch buffering.
//
// The fabric is where large-message bandwidth and the inter-packet gaps seen
// by the receiving NIC are decided, so it directly shapes the pull-protocol
// results (Table II) and the Stream-coalescing deferral window (Table III).
//
// # Sharded execution
//
// The output-queued switch can run under the conservative parallel engine
// (see internal/sim.Group): every port is bound to a shard engine
// (BindPort), all port state — busy horizons, egress queue, statistics,
// RNG stream, delivery-record free list — is touched only by events running
// on that port's shard, and a send whose destination port lives on another
// shard is parked in a per-source-shard outbox instead of being scheduled
// directly. The synchronizer drains the outboxes between windows
// (FlushShards) while every shard goroutine is parked.
//
// The switch supplies the two properties the synchronizer's determinism
// argument needs:
//
//   - Lookahead: a frame sent at time u reaches the destination port's
//     egress queue no earlier than u + PropagationDelay + SwitchLatency
//     (plus ingress serialization), so Lookahead() is a true lower bound on
//     cross-shard latency.
//   - Order-independent tie-breaking: every egress-enqueue event carries a
//     pri key derived from the source port identity and a per-port message
//     ordinal — a pure function of the model, stamped identically by the
//     serial (Parallelism 1) and sharded runs — so the engine's (at, pri,
//     seq) total order places cross-shard arrivals identically no matter
//     which engine's seq counter stamped them.
//
// To keep "same model, any Parallelism" bit-identical, the queued path uses
// the per-port RNG streams and pri stamps even when running on a single
// engine. The direct topology predates all of this and is frozen
// (zero-lookahead shared egress horizons); it always runs serially.
//
// # Frame ownership and reference counting
//
// The fabric follows the wire.Frame rules (see the internal/wire package
// comment): Send takes over the caller's reference and the frame travels
// with exactly that one reference until it is handed to the destination
// Receiver, which inherits it.  Every path that ends a frame's journey
// inside the fabric — a fault-injected drop, a drop-tail rejection at a
// full egress queue — calls Release exactly once. Duplicate delivery takes
// one extra reference with Ref, so each of the two deliveries hands an
// independently owned reference to the receiver. The fabric never touches a
// frame after delivering or releasing it: queue entries, in-flight delivery
// records, and the free lists they recycle through only ever hold frames
// the fabric currently owns.
package fabric

import (
	"fmt"
	"slices"

	"openmxsim/internal/params"
	"openmxsim/internal/sim"
	"openmxsim/internal/trace"
	"openmxsim/internal/wire"
)

// Receiver consumes frames delivered by the fabric (implemented by the NIC).
type Receiver interface {
	// ReceiveFrame is invoked at the virtual time the last bit of the frame
	// arrives at the port.
	ReceiveFrame(f *wire.Frame)
}

// TopologyKind selects the switching model.
type TopologyKind int

const (
	// TopologyDirect is the legacy ideal model: unbounded per-port egress
	// serialization, no queue, no congestion loss.
	TopologyDirect TopologyKind = iota
	// TopologyOutputQueued is the bounded output-queued switch: each egress
	// port owns a FIFO queue of at most Topology.EgressQueueFrames frames;
	// arrivals beyond that are dropped (drop-tail).
	TopologyOutputQueued
)

var topologyNames = [...]string{"direct", "output-queued"}

func (k TopologyKind) String() string {
	if k >= 0 && int(k) < len(topologyNames) {
		return topologyNames[k]
	}
	return fmt.Sprintf("topology(%d)", int(k))
}

// QueueDiscipline selects how a bounded egress queue admits frames.
type QueueDiscipline int

const (
	// DropTail rejects the arriving frame when the queue is full (the
	// classic FIFO discipline of commodity Ethernet switches).
	DropTail QueueDiscipline = iota
)

var disciplineNames = [...]string{"drop-tail"}

func (d QueueDiscipline) String() string {
	if d >= 0 && int(d) < len(disciplineNames) {
		return disciplineNames[d]
	}
	return fmt.Sprintf("discipline(%d)", int(d))
}

// DefaultEgressQueueFrames is the per-port buffer used when a Topology
// selects the output-queued model without an explicit bound. 128 full
// frames per port is in the range of the shallow shared-buffer switches of
// the paper's era.
const DefaultEgressQueueFrames = 128

// Topology configures the switching model. The zero value is the legacy
// direct model, guaranteeing existing 2-node configurations behave (and
// measure) exactly as before.
type Topology struct {
	// Kind selects direct (ideal) or output-queued (bounded) switching.
	Kind TopologyKind
	// EgressQueueFrames bounds each egress port's queue in frames for the
	// output-queued model; <= 0 selects DefaultEgressQueueFrames. Ignored
	// by the direct model.
	EgressQueueFrames int
	// Discipline is the bounded queue's admission policy (drop-tail only,
	// for now).
	Discipline QueueDiscipline
	// PortBandwidthBps overrides the egress line rate of individual ports,
	// keyed by node index (see wire.NodeMAC); absent ports use the link's
	// default rate. Applied by cluster wiring via SetPortBandwidth. Only
	// meaningful with TopologyOutputQueued — the direct model's timing is
	// frozen, so Validate rejects overrides there rather than silently
	// ignoring them.
	PortBandwidthBps map[int]int64
}

// Validate reports whether the topology is buildable.
func (t Topology) Validate() error {
	if t.Kind != TopologyDirect && t.Kind != TopologyOutputQueued {
		return fmt.Errorf("fabric: invalid topology kind %d: want TopologyDirect (%d) or TopologyOutputQueued (%d)", int(t.Kind), int(TopologyDirect), int(TopologyOutputQueued))
	}
	if t.Kind == TopologyDirect && len(t.PortBandwidthBps) > 0 {
		return fmt.Errorf("fabric: port bandwidth overrides require the output-queued topology (the direct model is frozen)")
	}
	if t.Discipline != DropTail {
		return fmt.Errorf("fabric: invalid queue discipline %d: want DropTail (%d)", int(t.Discipline), int(DropTail))
	}
	if t.EgressQueueFrames < 0 {
		return fmt.Errorf("fabric: invalid egress queue bound %d frames: want >= 0", t.EgressQueueFrames)
	}
	// Iterate the overrides in sorted key order: with several bad entries
	// the error reported must not depend on randomized map order.
	var nodes []int
	for node := range t.PortBandwidthBps {
		nodes = append(nodes, node)
	}
	slices.Sort(nodes)
	for _, node := range nodes {
		if node < 0 {
			return fmt.Errorf("fabric: invalid port bandwidth override node %d: want >= 0", node)
		}
		if bps := t.PortBandwidthBps[node]; bps <= 0 {
			return fmt.Errorf("fabric: invalid bandwidth %d B/s for node %d: want > 0", bps, node)
		}
	}
	return nil
}

// queueCap returns the effective per-port queue bound.
func (t Topology) queueCap() int {
	if t.EgressQueueFrames > 0 {
		return t.EgressQueueFrames
	}
	return DefaultEgressQueueFrames
}

// Fault describes an injected network imperfection, applied per frame.
type Fault struct {
	// DropProb is the probability a frame is silently lost.
	DropProb float64
	// DupProb is the probability a frame is delivered twice.
	DupProb float64
	// DelayProb is the probability a frame is held back by DelayTime,
	// which reorders it behind later traffic.
	DelayProb float64
	// DelayTime is the hold-back applied to delayed frames.
	DelayTime sim.Time
	// Filter, when non-nil, restricts the static fault probabilities
	// above to matching frames (it does not gate Hook, which carries its
	// own filtering).
	//
	// Thread-safety contract under Parallelism > 1: the filter runs on
	// the shard-owned send paths, so within a barrier window it is
	// invoked concurrently from every shard goroutine. It must therefore
	// be safe for concurrent use: reading the frame and immutable
	// configuration is always fine; mutating shared state (counters,
	// maps, slices) requires the filter's own synchronization. And
	// because shard layout changes the interleaving of those calls, a
	// filter whose *decisions* depend on mutable shared state forfeits
	// the bit-identical-at-any-par guarantee — keep decision state keyed
	// per source node (see internal/chaos) or make the filter pure.
	Filter func(*wire.Frame) bool
	// Hook, when non-nil, is consulted per frame before the static
	// probabilities and may drop, delay, or stretch the frame's
	// serialization — the extension point for time-varying fault
	// scenarios (link flaps, bursty loss, bandwidth degradation; see
	// internal/chaos). The same concurrency rules as Filter apply:
	// Decide runs on the source port's shard, so implementations must
	// key mutable state (Markov chains, RNG streams) by source node.
	Hook Hook
}

// Decision is a Hook's verdict on one frame.
type Decision struct {
	// Drop loses the frame before it occupies the sender's wire (a down
	// link transmits nothing).
	Drop bool
	// Delay holds the frame back at the switch, reordering it behind
	// later traffic.
	Delay sim.Time
	// SerScale stretches the frame's serialization time when > 1
	// (transient bandwidth degradation); values <= 1 leave it unchanged.
	SerScale float64
}

// Hook decides time-varying per-frame faults. src and dst are the node
// indices of the frame's source and destination ports (wire.MAC.NodeIndex)
// and now is the source shard's current virtual time.
type Hook interface {
	Decide(src, dst int, now sim.Time, f *wire.Frame) Decision
}

func (fl *Fault) matches(f *wire.Frame) bool {
	return fl != nil && (fl.Filter == nil || fl.Filter(f))
}

// hook returns the installed scenario hook, if any.
func (s *Switch) hook() Hook {
	if s.fault == nil {
		return nil
	}
	return s.fault.Hook
}

// PortStats are the per-egress-port counters of the switch. In the direct
// model only the delivery counters advance; the queue fields are specific
// to the output-queued model.
type PortStats struct {
	// FramesDelivered and BytesDelivered count frames handed to the port's
	// receiver.
	FramesDelivered uint64 `json:"frames_delivered"`
	BytesDelivered  uint64 `json:"bytes_delivered"`
	// Enqueued counts frames admitted to the egress queue.
	Enqueued uint64 `json:"enqueued"`
	// Drops counts frames rejected by the full egress queue (drop-tail).
	Drops uint64 `json:"drops"`
	// MaxQueueFrames is the queue-occupancy high-water mark, in frames.
	MaxQueueFrames int `json:"max_queue_frames"`
	// QueueWait accumulates the time frames spent waiting in the egress
	// queue before their transmission started; QueueWait / Enqueued is the
	// mean per-frame queueing latency.
	QueueWait sim.Time `json:"queue_wait_ns"`
}

// Switch is the central store-and-forward element. Ports are registered by
// MAC; each port has an independent ingress (host->switch) and egress
// (switch->host) serialization resource, which is how both directions of a
// full-duplex link and cross-traffic contention are modelled.
type Switch struct {
	eng   *sim.Engine
	link  params.Link
	rng   *sim.RNG
	topo  Topology
	qcap  int
	ports map[wire.MAC]*port
	fault *Fault

	// In-flight deliveries (and, in the output-queued model, pending
	// egress-enqueue records) are recycled through per-port free lists and
	// fire through bound callbacks, so forwarding a frame never allocates.
	deliverFn func(any)
	enqueueFn func(any)
	txDoneFn  func(any)

	// outbox parks cross-shard sends, one slice per source shard so shard
	// goroutines never contend; FlushShards drains them between windows.
	// Nil until SetShardCount.
	outbox [][]xmsg
}

// xmsg is one cross-shard egress-enqueue message: frame f is offered to
// port p's egress queue at virtual time at, ordered by pri.
type xmsg struct {
	p   *port
	f   *wire.Frame
	at  sim.Time
	pri uint64
}

// delivery is one scheduled frame arrival at a port (also reused as the
// switch-internal "frame ready for egress queueing" record).
type delivery struct {
	p *port
	f *wire.Frame
}

// qent is one frame waiting in an egress queue, stamped with its enqueue
// time for the queueing-latency statistics. Entries are plain values inside
// the port's queue slice, so the queue itself never allocates per frame
// once its backing array has grown.
type qent struct {
	f  *wire.Frame
	at sim.Time
}

type port struct {
	mac  wire.MAC
	rx   Receiver
	link params.Link // egress link (per-port bandwidth overrides)
	node int         // wire.MAC.NodeIndex of mac, passed to scenario hooks

	// Shard binding: all events touching this port's state run on eng
	// (shard 0 / the switch's engine until BindPort says otherwise). rng is
	// the port's private stream for queued-path draws, priBase|++msgSeq the
	// order-independent tie-break key for the port's sends, and delivFree
	// the port-local record free list — each owned by the port's shard.
	eng     *sim.Engine
	shard   int
	rng     *sim.RNG
	priBase uint64
	msgSeq  uint64
	// faultDrops counts this port's sends lost to fault injection (the
	// egress-queue drop-tail counter lives in stats.Drops).
	faultDrops uint64
	delivFree  []*delivery

	ingressBusy sim.Time // sender-side wire occupancy
	egressBusy  sim.Time // receiver-side wire occupancy (direct model)

	// Output-queued model state: the bounded FIFO (a head-indexed slice
	// ring: qhead..len(q) are live, dequeue is O(1), compaction is
	// amortized over a full buffer's worth of frames) and whether the port
	// is currently clocking a frame out.
	q      []qent
	qhead  int
	txBusy bool

	// tr is the node's telemetry handle for egress-queue events (nil =
	// tracing disabled); it is owned by the same shard as the port.
	tr *trace.Node

	stats PortStats
}

// NewSwitch creates a switch with the given link characteristics and the
// default direct topology.
func NewSwitch(eng *sim.Engine, link params.Link, rng *sim.RNG) *Switch {
	s := &Switch{eng: eng, link: link, rng: rng, ports: make(map[wire.MAC]*port), qcap: Topology{}.queueCap()}
	s.deliverFn = func(x any) { s.deliverNow(x.(*delivery)) }
	s.enqueueFn = func(x any) { s.enqueueNow(x.(*delivery)) }
	s.txDoneFn = func(x any) { s.txDone(x.(*port)) }
	return s
}

// SetTopology installs the switching model. It must be called before any
// traffic flows (cluster wiring calls it right after construction); the
// configuration is validated here so malformed topologies fail loudly.
func (s *Switch) SetTopology(t Topology) {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	s.topo = t
	s.qcap = t.queueCap()
}

// Topology returns the active switching model.
func (s *Switch) Topology() Topology { return s.topo }

// SetFault installs (or clears, with nil) the fault-injection plan.
func (s *Switch) SetFault(f *Fault) { s.fault = f }

// Attach registers a receiver under its MAC address. The port starts on
// the switch's own engine (shard 0); BindPort reassigns it. Its RNG stream
// and pri base are derived from the MAC alone — Derive does not consume
// the parent stream — so attaching ports perturbs neither the frozen
// direct-path draw order nor any sibling port's stream.
func (s *Switch) Attach(mac wire.MAC, rx Receiver) {
	if _, dup := s.ports[mac]; dup {
		panic(fmt.Sprintf("fabric: duplicate port %s", mac))
	}
	idx := uint64(mac[3])<<16 | uint64(mac[4])<<8 | uint64(mac[5])
	s.ports[mac] = &port{
		mac:     mac,
		rx:      rx,
		link:    s.link,
		node:    int(idx),
		eng:     s.eng,
		rng:     s.rng.Derive(0xF0<<56 | idx),
		priBase: (idx + 1) << 40,
	}
}

// SetShardCount prepares the switch for sharded execution across n engines:
// it allocates one cross-shard outbox per source shard. Call once during
// cluster wiring, before traffic, together with BindPort for every port.
func (s *Switch) SetShardCount(n int) {
	if n < 1 {
		panic(fmt.Sprintf("fabric: shard count %d < 1", n))
	}
	s.outbox = make([][]xmsg, n)
}

// BindPort assigns an attached port to a shard engine. Every event touching
// the port's state will be scheduled on eng; sends from a port on one shard
// to a port on another go through the outbox/FlushShards path.
func (s *Switch) BindPort(mac wire.MAC, shard int, eng *sim.Engine) {
	p, ok := s.ports[mac]
	if !ok {
		panic(fmt.Sprintf("fabric: unknown port %s", mac))
	}
	if s.outbox == nil || shard < 0 || shard >= len(s.outbox) {
		panic(fmt.Sprintf("fabric: shard %d out of range (SetShardCount first)", shard))
	}
	p.shard, p.eng = shard, eng
}

// FlushShards schedules every parked cross-shard message into its
// destination port's engine and reports whether there were any. Only the
// Group coordinator calls it, between windows, with all shard goroutines
// parked — which is what makes touching every shard's engine here safe.
// Messages inject in deterministic (source shard, send order) sequence, and
// their pri keys — not the destination engine's seq stamps — decide their
// execution order, so the injection order never shows through.
func (s *Switch) FlushShards() bool {
	any := false
	for si := range s.outbox {
		ob := s.outbox[si]
		if len(ob) == 0 {
			continue
		}
		any = true
		for i := range ob {
			m := &ob[i]
			m.p.eng.ScheduleArgPri(m.at, m.pri, s.enqueueFn, m.p.getDelivery(m.f))
			*m = xmsg{} // don't pin frames from the recycled backing array
		}
		s.outbox[si] = ob[:0]
	}
	return any
}

// Lookahead returns the minimum virtual-time distance between a send on one
// node and its earliest effect on any other node — the window size for
// conservative parallel execution. Every queued-path frame reaches the
// destination's egress queue at ingress-start + serialization +
// PropagationDelay + SwitchLatency, so propagation + switch latency is a
// strict lower bound. The direct topology's shared egress busy-horizons
// couple ports at zero distance, so its lookahead is 0 (cannot shard).
func (s *Switch) Lookahead() sim.Time {
	if s.topo.Kind != TopologyOutputQueued {
		return 0
	}
	return s.link.PropagationDelay + s.link.SwitchLatency
}

// SetPortBandwidth overrides the egress line rate of an attached port.
func (s *Switch) SetPortBandwidth(mac wire.MAC, bps int64) {
	p, ok := s.ports[mac]
	if !ok {
		panic(fmt.Sprintf("fabric: unknown port %s", mac))
	}
	if bps <= 0 {
		panic(fmt.Sprintf("fabric: non-positive bandwidth %d for port %s", bps, mac))
	}
	p.link.BandwidthBps = bps
}

// PortStats returns a snapshot of the per-port counters for mac.
func (s *Switch) PortStats(mac wire.MAC) PortStats {
	p, ok := s.ports[mac]
	if !ok {
		panic(fmt.Sprintf("fabric: unknown port %s", mac))
	}
	return p.stats
}

// BindTrace attaches a telemetry handle to mac's port: egress-queue drops
// on that port are then emitted to the handle's timeline. The handle must
// belong to the same node (shard) as the port.
func (s *Switch) BindTrace(mac wire.MAC, h *trace.Node) {
	p, ok := s.ports[mac]
	if !ok {
		panic(fmt.Sprintf("fabric: unknown port %s", mac))
	}
	p.tr = h
}

// QueueLen returns the current egress-queue depth of mac's port (always 0
// in the direct model).
func (s *Switch) QueueLen(mac wire.MAC) int {
	p, ok := s.ports[mac]
	if !ok {
		panic(fmt.Sprintf("fabric: unknown port %s", mac))
	}
	return p.qlen()
}

// qlen is the live egress-queue depth.
func (p *port) qlen() int { return len(p.q) - p.qhead }

// Send injects a frame at the source port at the current virtual time. The
// frame serializes onto the source link, crosses the switch, and reaches
// the destination port's egress resource: an ideal serializer in the direct
// model, a bounded drop-tail queue in the output-queued model. Send takes
// over the caller's frame reference (see the package comment).
func (s *Switch) Send(f *wire.Frame) {
	src, ok := s.ports[f.Src]
	if !ok {
		panic(fmt.Sprintf("fabric: unknown source %s", f.Src))
	}
	dst, ok := s.ports[f.Dst]
	if !ok {
		panic(fmt.Sprintf("fabric: unknown destination %s", f.Dst))
	}
	if s.topo.Kind == TopologyOutputQueued {
		s.sendQueued(src, dst, f)
		return
	}
	s.sendDirect(src, dst, f)
}

// sendDirect is the legacy ideal path: all timing is computed up front on
// busy-until horizons and only the final arrival is a scheduled event. This
// code path (including its RNG draw order) is frozen: existing 2-node
// reports depend on it bit for bit.
func (s *Switch) sendDirect(src, dst *port, f *wire.Frame) {
	now := s.eng.Now()
	ser := s.link.SerializationTime(f.WireBytes())

	// Scenario hook: consulted before any horizon arithmetic, so a
	// hook-dropped frame never occupies the wire. When no hook is
	// installed (every pre-existing configuration) this path — timing and
	// RNG draws alike — is untouched.
	var hookDelay sim.Time
	if h := s.hook(); h != nil {
		d := h.Decide(src.node, dst.node, now, f)
		if d.Drop {
			src.faultDrops++
			f.Release()
			return
		}
		if d.SerScale > 1 {
			ser = sim.Time(float64(ser) * d.SerScale)
		}
		hookDelay = d.Delay
	}

	// Ingress: the sender's wire is busy until the frame has left the NIC.
	start := now
	if src.ingressBusy > start {
		start = src.ingressBusy
	}
	atSwitch := start + ser + s.link.PropagationDelay
	src.ingressBusy = start + ser

	// Store-and-forward switch latency, then egress serialization toward
	// the destination (shared by all flows targeting that port).
	ready := atSwitch + s.link.SwitchLatency + hookDelay
	egStart := ready
	if dst.egressBusy > egStart {
		egStart = dst.egressBusy
	}
	dst.egressBusy = egStart + ser
	arrival := egStart + ser + s.link.PropagationDelay
	arrival += s.rng.Jitter(0, s.link.JitterSD)

	// Fault injection. The caller's frame reference transfers to the
	// delivery; drops release it and duplicates take an extra one.
	if s.fault.matches(f) {
		if s.rng.Bool(s.fault.DropProb) {
			src.faultDrops++
			f.Release()
			return
		}
		if s.fault.DelayProb > 0 && s.rng.Bool(s.fault.DelayProb) {
			arrival += s.fault.DelayTime
		}
		if s.fault.DupProb > 0 && s.rng.Bool(s.fault.DupProb) {
			f.Ref()
			s.deliver(dst, f, arrival+s.rng.Jitter(ser, s.link.JitterSD))
		}
	}
	s.deliver(dst, f, arrival)
}

// sendQueued is the output-queued path: ingress serialization and switch
// transit are computed up front, but the egress port is a real queue whose
// occupancy is evaluated when the frame reaches it, so congestion, loss and
// queueing delay emerge from event order rather than busy-until arithmetic.
// It runs on the source port's shard and touches only source-port state,
// the fault/topology configuration (read-only), and scheduleEgress.
func (s *Switch) sendQueued(src, dst *port, f *wire.Frame) {
	now := src.eng.Now()
	// Ingress always runs at the fabric's default rate: per-port overrides
	// model the egress direction only (SetPortBandwidth's contract).
	ser := s.link.SerializationTime(f.WireBytes())

	// Scenario hook, before any source-port state changes: a down link
	// transmits nothing. Decide runs on the source port's shard, keyed by
	// source node, which is what makes time-varying hook state par-safe.
	var hookDelay sim.Time
	if h := s.hook(); h != nil {
		d := h.Decide(src.node, dst.node, now, f)
		if d.Drop {
			src.faultDrops++
			f.Release()
			return
		}
		if d.SerScale > 1 {
			ser = sim.Time(float64(ser) * d.SerScale)
		}
		hookDelay = d.Delay
	}

	start := now
	if src.ingressBusy > start {
		start = src.ingressBusy
	}
	atSwitch := start + ser + s.link.PropagationDelay
	src.ingressBusy = start + ser
	ready := atSwitch + s.link.SwitchLatency + hookDelay

	// Fault injection happens at the switch, before the egress queue: a
	// dropped frame never occupies buffer space. Draws come from the source
	// port's private stream so the sequence is shard-independent.
	if s.fault.matches(f) {
		if src.rng.Bool(s.fault.DropProb) {
			src.faultDrops++
			f.Release()
			return
		}
		if s.fault.DelayProb > 0 && src.rng.Bool(s.fault.DelayProb) {
			ready += s.fault.DelayTime
		}
		if s.fault.DupProb > 0 && src.rng.Bool(s.fault.DupProb) {
			f.Ref()
			s.scheduleEgress(src, dst, f, ready+ser)
		}
	}
	s.scheduleEgress(src, dst, f, ready)
}

// scheduleEgress queues an "offer frame to dst's egress queue" event at
// virtual time at, stamped with the source port's next pri key: directly on
// the destination's engine when both ports share a shard, via the
// cross-shard outbox otherwise. Note ready-time >= now + serialization +
// Lookahead(), the bound FlushShards' safety rests on.
func (s *Switch) scheduleEgress(src, dst *port, f *wire.Frame, at sim.Time) {
	src.msgSeq++
	pri := src.priBase | src.msgSeq
	if dst.shard != src.shard {
		s.outbox[src.shard] = append(s.outbox[src.shard], xmsg{p: dst, f: f, at: at, pri: pri})
		return
	}
	dst.eng.ScheduleArgPri(at, pri, s.enqueueFn, dst.getDelivery(f))
}

// enqueueNow offers a frame to the egress queue: drop-tail when full,
// otherwise FIFO admission; an idle port starts transmitting immediately.
// Runs on p's shard.
func (s *Switch) enqueueNow(d *delivery) {
	p, f := d.p, d.f
	p.putDelivery(d)
	if p.qlen() >= s.qcap {
		p.stats.Drops++
		p.tr.Event(p.eng.Now(), trace.EvPortDrop, int64(p.stats.Drops))
		f.Release()
		return
	}
	p.q = append(p.q, qent{f: f, at: p.eng.Now()})
	p.stats.Enqueued++
	if n := p.qlen(); n > p.stats.MaxQueueFrames {
		p.stats.MaxQueueFrames = n
	}
	if !p.txBusy {
		s.txStart(p)
	}
}

// txStart pops the egress queue's head and clocks it onto the port's link:
// the frame arrives after serialization + propagation (+ jitter), and the
// port frees up for the next queued frame after serialization alone.
func (s *Switch) txStart(p *port) {
	e := p.q[p.qhead]
	p.q[p.qhead] = qent{} // don't pin the frame from the dead prefix
	p.qhead++
	switch {
	case p.qhead == len(p.q):
		// Drained: reuse the backing array from the start.
		p.q = p.q[:0]
		p.qhead = 0
	case p.qhead >= s.qcap:
		// A full buffer's worth of dead prefix: compact once, keeping
		// dequeue amortized O(1) and the slice bounded by 2*qcap.
		n := copy(p.q, p.q[p.qhead:])
		clearTail := p.q[n:]
		for i := range clearTail {
			clearTail[i] = qent{}
		}
		p.q = p.q[:n]
		p.qhead = 0
	}

	now := p.eng.Now()
	p.stats.QueueWait += now - e.at
	p.txBusy = true
	ser := p.link.SerializationTime(e.f.WireBytes())
	arrival := now + ser + s.link.PropagationDelay + p.rng.Jitter(0, s.link.JitterSD)
	s.deliver(p, e.f, arrival)
	p.eng.ScheduleArg(now+ser, s.txDoneFn, p)
}

// txDone frees the egress link and starts the next queued frame, if any.
func (s *Switch) txDone(p *port) {
	p.txBusy = false
	if len(p.q) > 0 {
		s.txStart(p)
	}
}

// getDelivery takes a record for port p off p's free list. Records for a
// port are only ever allocated and recycled by p's own shard (or by the
// coordinator during a flush, with all shards parked), so the list needs no
// locking.
func (p *port) getDelivery(f *wire.Frame) *delivery {
	var d *delivery
	if k := len(p.delivFree); k > 0 {
		d = p.delivFree[k-1]
		p.delivFree[k-1] = nil
		p.delivFree = p.delivFree[:k-1]
	} else {
		d = &delivery{}
	}
	d.p, d.f = p, f
	return d
}

// putDelivery clears and recycles a delivery record.
func (p *port) putDelivery(d *delivery) {
	d.p, d.f = nil, nil
	p.delivFree = append(p.delivFree, d)
}

// deliver schedules the frame's arrival at p. Its callers run on p's shard
// (direct sends are always single-shard; queued arrivals come from p's own
// txStart), so scheduling on p.eng is always a same-shard operation.
func (s *Switch) deliver(p *port, f *wire.Frame, at sim.Time) {
	p.eng.ScheduleArg(at, s.deliverFn, p.getDelivery(f))
}

// deliverNow hands the frame (and its reference) to the destination port.
func (s *Switch) deliverNow(d *delivery) {
	p, f := d.p, d.f
	p.putDelivery(d)
	p.stats.FramesDelivered++
	p.stats.BytesDelivered += uint64(f.WireBytes())
	p.rx.ReceiveFrame(f)
}

// FramesDelivered is the total frame count handed to receivers, summed over
// ports. Aggregate switch counters are sums of per-shard port counters —
// that is what lets each shard count without synchronization; read them
// only while no engine is running.
func (s *Switch) FramesDelivered() uint64 {
	var n uint64
	//omxlint:allow maprange: integer sums are order-independent
	for _, p := range s.ports {
		n += p.stats.FramesDelivered
	}
	return n
}

// FramesDropped is the total loss count: fault-injected drops plus egress
// drop-tail rejections, summed over ports.
func (s *Switch) FramesDropped() uint64 {
	var n uint64
	//omxlint:allow maprange: integer sums are order-independent
	for _, p := range s.ports {
		n += p.faultDrops + p.stats.Drops
	}
	return n
}

// BytesDelivered is the total wire-byte count handed to receivers.
func (s *Switch) BytesDelivered() uint64 {
	var n uint64
	//omxlint:allow maprange: integer sums are order-independent
	for _, p := range s.ports {
		n += p.stats.BytesDelivered
	}
	return n
}
