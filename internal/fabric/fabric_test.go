package fabric

import (
	"testing"

	"openmxsim/internal/params"
	"openmxsim/internal/sim"
	"openmxsim/internal/wire"
)

type sink struct {
	frames []*wire.Frame
	times  []sim.Time
	eng    *sim.Engine
}

func (s *sink) ReceiveFrame(f *wire.Frame) {
	s.frames = append(s.frames, f)
	s.times = append(s.times, s.eng.Now())
}

func testLink() params.Link {
	l := params.Default().Link
	l.JitterSD = 0 // deterministic unless a test wants noise
	return l
}

func setup(t *testing.T, link params.Link) (*sim.Engine, *Switch, *sink, *sink) {
	t.Helper()
	eng := sim.NewEngine()
	sw := NewSwitch(eng, link, sim.NewRNG(1))
	a, b := &sink{eng: eng}, &sink{eng: eng}
	sw.Attach(wire.NodeMAC(0), a)
	sw.Attach(wire.NodeMAC(1), b)
	return eng, sw, a, b
}

func smallFrame(src, dst int, seq uint32) *wire.Frame {
	h := wire.Header{Type: wire.TypeSmall, Seq: seq}
	return wire.NewFrame(wire.NodeMAC(src), wire.NodeMAC(dst), h, nil, 128)
}

func TestDeliveryLatency(t *testing.T) {
	link := testLink()
	eng, sw, _, b := setup(t, link)
	f := smallFrame(0, 1, 0)
	sw.Send(f)
	eng.Run()
	if len(b.frames) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(b.frames))
	}
	ser := link.SerializationTime(f.WireBytes())
	want := 2*ser + 2*link.PropagationDelay + link.SwitchLatency
	if b.times[0] != want {
		t.Errorf("arrival at %d, want %d", b.times[0], want)
	}
}

func TestSerializationScalesWithSize(t *testing.T) {
	link := testLink()
	small := link.SerializationTime(60)
	big := link.SerializationTime(1546)
	if big <= small {
		t.Fatalf("1546B (%d ns) not slower than 60B (%d ns)", big, small)
	}
	// 10 Gb/s: 1546+24 bytes = 12560 bits = 1256 ns.
	if big != 1256 {
		t.Errorf("1546B serialization = %d ns, want 1256", big)
	}
}

func TestBackToBackFramesSerialize(t *testing.T) {
	link := testLink()
	eng, sw, _, b := setup(t, link)
	const n = 10
	for i := 0; i < n; i++ {
		sw.Send(smallFrame(0, 1, uint32(i)))
	}
	eng.Run()
	if len(b.times) != n {
		t.Fatalf("delivered %d, want %d", len(b.times), n)
	}
	ser := link.SerializationTime(smallFrame(0, 1, 0).WireBytes())
	for i := 1; i < n; i++ {
		gap := b.times[i] - b.times[i-1]
		if gap != ser {
			t.Errorf("frame %d gap %d, want %d (wire-rate spacing)", i, gap, ser)
		}
	}
}

func TestPerFlowFIFOWithoutFaults(t *testing.T) {
	eng, sw, _, b := setup(t, testLink())
	const n = 200
	for i := 0; i < n; i++ {
		sw.Send(smallFrame(0, 1, uint32(i)))
	}
	eng.Run()
	for i, f := range b.frames {
		if f.Header.Seq != uint32(i) {
			t.Fatalf("frame %d has seq %d: fabric reordered without faults", i, f.Header.Seq)
		}
	}
}

func TestEgressContention(t *testing.T) {
	// Two senders targeting one port share its egress: aggregate delivery
	// cannot beat the line rate.
	link := testLink()
	eng := sim.NewEngine()
	sw := NewSwitch(eng, link, sim.NewRNG(1))
	a, b, c := &sink{eng: eng}, &sink{eng: eng}, &sink{eng: eng}
	sw.Attach(wire.NodeMAC(0), a)
	sw.Attach(wire.NodeMAC(1), b)
	sw.Attach(wire.NodeMAC(2), c)
	const n = 50
	for i := 0; i < n; i++ {
		sw.Send(smallFrame(0, 2, uint32(i)))
		sw.Send(smallFrame(1, 2, uint32(1000+i)))
	}
	eng.Run()
	if len(c.times) != 2*n {
		t.Fatalf("delivered %d, want %d", len(c.times), 2*n)
	}
	ser := link.SerializationTime(smallFrame(0, 2, 0).WireBytes())
	span := c.times[len(c.times)-1] - c.times[0]
	if min := ser * sim.Time(2*n-1); span < min {
		t.Errorf("2x%d frames delivered in %d ns, beats line rate (min %d)", n, span, min)
	}
}

func TestDropFault(t *testing.T) {
	eng, sw, _, b := setup(t, testLink())
	sw.SetFault(&Fault{DropProb: 1.0})
	sw.Send(smallFrame(0, 1, 0))
	eng.Run()
	if len(b.frames) != 0 {
		t.Fatal("frame delivered despite DropProb=1")
	}
	if sw.FramesDropped() != 1 {
		t.Errorf("FramesDropped = %d, want 1", sw.FramesDropped())
	}
}

func TestDuplicateFault(t *testing.T) {
	eng, sw, _, b := setup(t, testLink())
	sw.SetFault(&Fault{DupProb: 1.0})
	sw.Send(smallFrame(0, 1, 7))
	eng.Run()
	if len(b.frames) != 2 {
		t.Fatalf("delivered %d frames, want 2 (duplicate)", len(b.frames))
	}
}

func TestDelayFaultReorders(t *testing.T) {
	eng, sw, _, b := setup(t, testLink())
	sw.SetFault(&Fault{
		DelayProb: 1.0,
		DelayTime: 100 * sim.Microsecond,
		Filter:    func(f *wire.Frame) bool { return f.Header.Seq == 0 },
	})
	sw.Send(smallFrame(0, 1, 0)) // delayed
	sw.Send(smallFrame(0, 1, 1))
	eng.Run()
	if len(b.frames) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(b.frames))
	}
	if b.frames[0].Header.Seq != 1 || b.frames[1].Header.Seq != 0 {
		t.Errorf("delay fault did not reorder: got seqs %d,%d",
			b.frames[0].Header.Seq, b.frames[1].Header.Seq)
	}
}

func TestFaultFilterScopes(t *testing.T) {
	eng, sw, _, b := setup(t, testLink())
	sw.SetFault(&Fault{
		DropProb: 1.0,
		Filter:   func(f *wire.Frame) bool { return f.Header.Type == wire.TypeAck },
	})
	sw.Send(smallFrame(0, 1, 0))
	ack := wire.NewFrame(wire.NodeMAC(0), wire.NodeMAC(1), wire.Header{Type: wire.TypeAck}, nil, 0)
	sw.Send(ack)
	eng.Run()
	if len(b.frames) != 1 || b.frames[0].Header.Type != wire.TypeSmall {
		t.Fatalf("filter did not scope the fault: %d frames", len(b.frames))
	}
}

func TestUnknownPortPanics(t *testing.T) {
	eng, sw, _, _ := setup(t, testLink())
	_ = eng
	defer func() {
		if recover() == nil {
			t.Error("send to unknown MAC did not panic")
		}
	}()
	sw.Send(smallFrame(0, 9, 0))
}

func TestDuplicateAttachPanics(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, testLink(), sim.NewRNG(1))
	sw.Attach(wire.NodeMAC(0), &sink{eng: eng})
	defer func() {
		if recover() == nil {
			t.Error("duplicate Attach did not panic")
		}
	}()
	sw.Attach(wire.NodeMAC(0), &sink{eng: eng})
}

func TestJitterPerturbsArrivals(t *testing.T) {
	link := testLink()
	link.JitterSD = 200
	eng, sw, _, b := setup(t, link)
	for i := 0; i < 20; i++ {
		sw.Send(smallFrame(0, 1, uint32(i)))
	}
	eng.Run()
	ser := link.SerializationTime(smallFrame(0, 1, 0).WireBytes())
	varied := false
	for i := 1; i < len(b.times); i++ {
		if b.times[i]-b.times[i-1] != ser {
			varied = true
		}
	}
	if !varied {
		t.Error("jitter produced perfectly regular arrivals")
	}
}

func TestStatsAccumulate(t *testing.T) {
	eng, sw, _, _ := setup(t, testLink())
	for i := 0; i < 5; i++ {
		sw.Send(smallFrame(0, 1, uint32(i)))
	}
	eng.Run()
	if sw.FramesDelivered() != 5 {
		t.Errorf("FramesDelivered = %d, want 5", sw.FramesDelivered())
	}
	if sw.BytesDelivered() == 0 {
		t.Error("BytesDelivered = 0")
	}
}
