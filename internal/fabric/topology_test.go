package fabric

import (
	"testing"

	"openmxsim/internal/sim"
	"openmxsim/internal/wire"
)

// queuedSwitch builds a switch in output-queued mode with n attached sinks.
func queuedSwitch(t *testing.T, topo Topology, n int) (*sim.Engine, *Switch, []*sink) {
	t.Helper()
	eng := sim.NewEngine()
	sw := NewSwitch(eng, testLink(), sim.NewRNG(1))
	topo.Kind = TopologyOutputQueued
	sw.SetTopology(topo)
	sinks := make([]*sink, n)
	for i := range sinks {
		sinks[i] = &sink{eng: eng}
		sw.Attach(wire.NodeMAC(i), sinks[i])
	}
	return eng, sw, sinks
}

func TestTopologyValidate(t *testing.T) {
	cases := []struct {
		name string
		topo Topology
		ok   bool
	}{
		{"zero value (direct)", Topology{}, true},
		{"output-queued default", Topology{Kind: TopologyOutputQueued}, true},
		{"explicit bound", Topology{Kind: TopologyOutputQueued, EgressQueueFrames: 4}, true},
		{"unknown kind", Topology{Kind: TopologyKind(9)}, false},
		{"negative kind", Topology{Kind: TopologyKind(-1)}, false},
		{"unknown discipline", Topology{Discipline: QueueDiscipline(3)}, false},
		{"negative bound", Topology{Kind: TopologyOutputQueued, EgressQueueFrames: -1}, false},
		{"bad port override", Topology{Kind: TopologyOutputQueued, PortBandwidthBps: map[int]int64{0: 0}}, false},
		{"negative override node", Topology{Kind: TopologyOutputQueued, PortBandwidthBps: map[int]int64{-1: 1e9}}, false},
		{"good override", Topology{Kind: TopologyOutputQueued, PortBandwidthBps: map[int]int64{1: 1_000_000_000}}, true},
		{"override under frozen direct model", Topology{PortBandwidthBps: map[int]int64{1: 1_000_000_000}}, false},
	}
	for _, tc := range cases {
		if err := tc.topo.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestQueuedMatchesDirectWhenUncongested checks the output-queued model
// delivers an isolated frame at exactly the direct model's latency: the
// bounded queue only changes behaviour under contention.
func TestQueuedMatchesDirectWhenUncongested(t *testing.T) {
	link := testLink()
	eng, sw, sinks := queuedSwitch(t, Topology{}, 2)
	f := smallFrame(0, 1, 0)
	sw.Send(f)
	eng.Run()
	if len(sinks[1].frames) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(sinks[1].frames))
	}
	ser := link.SerializationTime(f.WireBytes())
	want := 2*ser + 2*link.PropagationDelay + link.SwitchLatency
	if sinks[1].times[0] != want {
		t.Errorf("arrival at %d, want %d (direct-model latency)", sinks[1].times[0], want)
	}
}

// TestQueuedEgressKeepsLineRate checks two senders converging on one port
// drain at exactly the egress line rate, FIFO, with no loss while the
// burst fits the buffer.
func TestQueuedEgressKeepsLineRate(t *testing.T) {
	link := testLink()
	eng, sw, sinks := queuedSwitch(t, Topology{EgressQueueFrames: 256}, 3)
	const n = 40
	for i := 0; i < n; i++ {
		sw.Send(smallFrame(0, 2, uint32(i)))
		sw.Send(smallFrame(1, 2, uint32(1000+i)))
	}
	eng.Run()
	if got := len(sinks[2].times); got != 2*n {
		t.Fatalf("delivered %d, want %d", got, 2*n)
	}
	ser := link.SerializationTime(smallFrame(0, 2, 0).WireBytes())
	for i := 1; i < len(sinks[2].times); i++ {
		if gap := sinks[2].times[i] - sinks[2].times[i-1]; gap < ser {
			t.Fatalf("frames %d..%d delivered %d ns apart, beats egress line rate %d", i-1, i, gap, ser)
		}
	}
	st := sw.PortStats(wire.NodeMAC(2))
	if st.Drops != 0 {
		t.Errorf("Drops = %d, want 0 (burst fits the buffer)", st.Drops)
	}
	if st.Enqueued != 2*n || st.FramesDelivered != 2*n {
		t.Errorf("Enqueued/Delivered = %d/%d, want %d/%d", st.Enqueued, st.FramesDelivered, 2*n, 2*n)
	}
	if st.MaxQueueFrames == 0 {
		t.Error("MaxQueueFrames = 0: contention never queued")
	}
	if st.QueueWait == 0 {
		t.Error("QueueWait = 0: contention was free")
	}
}

// TestDropTailBoundsTheQueue floods a port far beyond its buffer and checks
// the excess is dropped, the survivors arrive in FIFO order, and occupancy
// never exceeds the bound.
func TestDropTailBoundsTheQueue(t *testing.T) {
	const qcap = 8
	eng, sw, sinks := queuedSwitch(t, Topology{EgressQueueFrames: qcap}, 3)
	const n = 200
	for i := 0; i < n; i++ {
		// Two ingress ports at full rate into one egress port: a 2:1
		// overload that must overflow an 8-frame buffer.
		sw.Send(smallFrame(0, 2, uint32(i)))
		sw.Send(smallFrame(1, 2, uint32(1000+i)))
	}
	eng.Run()
	st := sw.PortStats(wire.NodeMAC(2))
	if st.Drops == 0 {
		t.Fatal("no drops under 2:1 overload of an 8-frame buffer")
	}
	if st.MaxQueueFrames > qcap {
		t.Errorf("MaxQueueFrames = %d, exceeds bound %d", st.MaxQueueFrames, qcap)
	}
	if got := uint64(len(sinks[2].frames)); got != st.FramesDelivered {
		t.Errorf("sink saw %d frames, port counted %d", got, st.FramesDelivered)
	}
	if st.Enqueued+st.Drops != 2*n {
		t.Errorf("Enqueued(%d) + Drops(%d) != offered(%d)", st.Enqueued, st.Drops, 2*n)
	}
	// Per-flow FIFO: each flow's surviving sequence numbers stay ordered.
	last0, last1 := -1, -1
	for _, f := range sinks[2].frames {
		seq := int(f.Header.Seq)
		if seq < 1000 {
			if seq <= last0 {
				t.Fatalf("flow 0 reordered: %d after %d", seq, last0)
			}
			last0 = seq
		} else {
			if seq <= last1 {
				t.Fatalf("flow 1 reordered: %d after %d", seq, last1)
			}
			last1 = seq
		}
	}
}

// TestDropTailReleasesFrames checks drop-tail rejections release the pooled
// frame reference (the ownership rule in the package comment).
func TestDropTailReleasesFrames(t *testing.T) {
	eng, sw, _ := queuedSwitch(t, Topology{EgressQueueFrames: 2}, 2)
	// A 10x slower egress port guarantees the 2-frame buffer overflows.
	sw.SetPortBandwidth(wire.NodeMAC(1), testLink().BandwidthBps/10)
	pool := wire.NewPool()
	const n = 50
	for i := 0; i < n; i++ {
		h := wire.Header{Type: wire.TypeSmall, Seq: uint32(i)}
		sw.Send(pool.Get(wire.NodeMAC(0), wire.NodeMAC(1), h, nil, 128))
	}
	eng.Run()
	st := sw.PortStats(wire.NodeMAC(1))
	if st.Drops == 0 {
		t.Fatal("expected drops from a 2-frame buffer")
	}
	// Every frame ended its journey (delivered or dropped); re-Getting n
	// frames from the pool must not find any still referenced. A leaked
	// reference would panic wire.Release during later recycling, and a
	// double release panics immediately, so surviving to here with matching
	// counters is the check.
	if st.FramesDelivered+st.Drops != n {
		t.Errorf("delivered(%d) + dropped(%d) != sent(%d)", st.FramesDelivered, st.Drops, n)
	}
}

// TestPortBandwidthOverride slows one egress port and checks its drain rate
// follows the override while the stock port is unaffected.
func TestPortBandwidthOverride(t *testing.T) {
	link := testLink()
	eng, sw, sinks := queuedSwitch(t, Topology{EgressQueueFrames: 256}, 3)
	slow := link
	slow.BandwidthBps = link.BandwidthBps / 10
	sw.SetPortBandwidth(wire.NodeMAC(2), slow.BandwidthBps)
	const n = 10
	for i := 0; i < n; i++ {
		sw.Send(smallFrame(0, 2, uint32(i)))
		sw.Send(smallFrame(1, 2, uint32(i)))
	}
	_ = sinks
	eng.Run()
	gap := sinks[2].times[1] - sinks[2].times[0]
	if want := slow.SerializationTime(smallFrame(0, 2, 0).WireBytes()); gap != want {
		t.Errorf("slow-port inter-arrival %d, want %d", gap, want)
	}
}

// TestQueuedFaultInjection checks drops and duplicates behave in the
// output-queued model: drops never occupy buffer, duplicates deliver twice.
func TestQueuedFaultInjection(t *testing.T) {
	eng, sw, sinks := queuedSwitch(t, Topology{}, 2)
	sw.SetFault(&Fault{DropProb: 1.0})
	sw.Send(smallFrame(0, 1, 0))
	eng.Run()
	if len(sinks[1].frames) != 0 || sw.FramesDropped() != 1 {
		t.Fatalf("fault drop: delivered=%d dropped=%d", len(sinks[1].frames), sw.FramesDropped())
	}
	if st := sw.PortStats(wire.NodeMAC(1)); st.Enqueued != 0 {
		t.Errorf("fault-dropped frame was enqueued (%d)", st.Enqueued)
	}

	sw.SetFault(&Fault{DupProb: 1.0})
	sw.Send(smallFrame(0, 1, 7))
	eng.Run()
	if len(sinks[1].frames) != 2 {
		t.Errorf("duplicate fault delivered %d frames, want 2", len(sinks[1].frames))
	}
}

// TestQueuedNoAllocSteadyState checks the queued hot path recycles its
// records: a long unidirectional flow must not allocate per frame.
func TestQueuedNoAllocSteadyState(t *testing.T) {
	eng, sw, sinks := queuedSwitch(t, Topology{EgressQueueFrames: 64}, 2)
	// Warm up the free lists and queue backing array.
	for i := 0; i < 100; i++ {
		sw.Send(smallFrame(0, 1, uint32(i)))
	}
	eng.Run()
	warm := len(sinks[1].frames)
	sinks[1].frames = sinks[1].frames[:0]
	sinks[1].times = sinks[1].times[:0]
	_ = warm

	avg := testing.AllocsPerRun(50, func() {
		sw.Send(smallFrame(0, 1, 1)) // NewFrame itself allocates the frame...
		eng.Run()
	})
	// ...so the budget is the frame allocation plus the sink's append; the
	// switch's own records must all come from free lists.
	if avg > 3 {
		t.Errorf("queued forwarding allocates %.1f objects/frame in steady state", avg)
	}
}

func TestTopologyKindStrings(t *testing.T) {
	if TopologyDirect.String() != "direct" || TopologyOutputQueued.String() != "output-queued" {
		t.Errorf("kind names: %q, %q", TopologyDirect, TopologyOutputQueued)
	}
	if DropTail.String() != "drop-tail" {
		t.Errorf("discipline name: %q", DropTail)
	}
	if TopologyKind(-3).String() != "topology(-3)" {
		t.Errorf("negative kind: %q", TopologyKind(-3))
	}
	if QueueDiscipline(7).String() != "discipline(7)" {
		t.Errorf("unknown discipline: %q", QueueDiscipline(7))
	}
}
