package host

import (
	"fmt"

	"openmxsim/internal/sim"
)

// Core models one processor core with two execution contexts:
//
//   - IRQ context: interrupt work (ISR + NAPI poll packet processing). IRQ
//     items run serially, at top priority, and preempt user work.
//   - User context: application/library work (compute phases, event pickup,
//     send posting). One task runs at a time; it is paused while IRQ work
//     executes and resumes afterwards, which is how interrupt load "steals"
//     application time in the NAS runs (Table IV).
//
// A core with no work, no busy-polling rank, and sleep enabled enters the
// C1E state after IdleSleepDelay; the next interrupt then pays
// WakeupLatency before its handler starts (Section IV-B1).
//
// Both contexts recycle their bookkeeping records (userTask, irqItem)
// through per-core free lists and schedule through pre-bound callbacks, so
// submitting work allocates nothing in steady state. Use the Arg variants
// with a long-lived callback to keep the caller side allocation-free too.
type Core struct {
	host *Host
	ID   int

	irqBusyUntil sim.Time // completion time of the last queued IRQ item
	irqDepth     int      // IRQ items submitted but not finished

	curUser *userTask
	userQ   []*userTask

	pollers    int // busy-polling ranks pinned here (prevent sleep)
	sleeping   bool
	sleepTimer *sim.Event
	idleSince  sim.Time

	// Free lists and callbacks bound once at construction; see newCore.
	taskFree     []*userTask
	irqFree      []*irqItem
	irqFireFn    func(any)
	completeFn   func(any)
	sleepEnterFn func()

	Stats CoreStats
}

// newCore builds a core with its bound callbacks, so scheduling later never
// creates a closure.
func newCore(h *Host, id int) *Core {
	c := &Core{host: h, ID: id}
	c.irqFireFn = func(x any) { c.irqFire(x.(*irqItem)) }
	c.completeFn = func(x any) { c.userComplete(x.(*userTask)) }
	c.sleepEnterFn = func() {
		c.sleepTimer = nil
		if !c.Busy() && c.pollers == 0 && !c.sleeping {
			c.sleeping = true
			c.idleSince = c.host.eng.Now()
		}
	}
	return c
}

// CoreStats accumulates per-core accounting.
type CoreStats struct {
	// Interrupts delivered to this core.
	Interrupts uint64
	// Wakeups counts interrupts that found the core in C1E.
	Wakeups uint64
	// IRQBusy and UserBusy are total virtual time spent per context.
	IRQBusy  sim.Time
	UserBusy sim.Time
	// SleepTime is total time spent in C1E.
	SleepTime sim.Time
	// UserTasks counts completed user-context tasks.
	UserTasks uint64
}

type userTask struct {
	remaining sim.Time
	fn        func(any)
	arg       any
	timer     *sim.Event
	lastStart sim.Time
	running   bool
}

// irqItem carries one queued IRQ-context callback through the engine.
type irqItem struct {
	fn  func(any)
	arg any
}

// callFunc adapts a plain func() carried as the arg of an Arg-variant
// submission. func values are pointer-shaped, so the conversion to any does
// not allocate; only the caller's closure (if any) does.
func callFunc(x any) { x.(func())() }

func (c *Core) getTask(dur sim.Time, fn func(any), arg any) *userTask {
	var t *userTask
	if n := len(c.taskFree); n > 0 {
		t = c.taskFree[n-1]
		c.taskFree[n-1] = nil
		c.taskFree = c.taskFree[:n-1]
	} else {
		t = &userTask{}
	}
	t.remaining = dur
	t.fn = fn
	t.arg = arg
	return t
}

func (c *Core) putTask(t *userTask) {
	t.fn = nil
	t.arg = nil
	t.timer = nil
	t.running = false
	c.taskFree = append(c.taskFree, t)
}

func (c *Core) getIRQItem(fn func(any), arg any) *irqItem {
	var it *irqItem
	if n := len(c.irqFree); n > 0 {
		it = c.irqFree[n-1]
		c.irqFree[n-1] = nil
		c.irqFree = c.irqFree[:n-1]
	} else {
		it = &irqItem{}
	}
	it.fn = fn
	it.arg = arg
	return it
}

// SubmitIRQ queues interrupt-context work of the given duration; fn runs at
// its virtual completion time. The boolean wasInterrupt marks the item as a
// hardware interrupt delivery for wake-up/statistics purposes (NAPI
// per-packet items pass false).
func (c *Core) SubmitIRQ(dur sim.Time, wasInterrupt bool, fn func()) {
	c.SubmitIRQArg(dur, wasInterrupt, callFunc, fn)
}

// SubmitIRQArg is the allocation-free variant of SubmitIRQ: fn should be a
// long-lived callback and arg a pointer, so nothing escapes per call.
func (c *Core) SubmitIRQArg(dur sim.Time, wasInterrupt bool, fn func(any), arg any) {
	eng := c.host.eng
	now := eng.Now()
	start := now
	if c.irqBusyUntil > start {
		start = c.irqBusyUntil
	}
	if wasInterrupt {
		c.Stats.Interrupts++
	}
	if c.sleeping {
		// C1E exit penalty before any handler work runs.
		c.wake(now)
		c.Stats.Wakeups++
		start += c.host.P.WakeupLatency
	}
	c.cancelSleepTimer()
	if c.irqDepth == 0 && c.curUser != nil && c.curUser.running {
		c.pauseUser(now)
	}
	c.irqDepth++
	c.irqBusyUntil = start + dur
	c.Stats.IRQBusy += dur
	eng.ScheduleArg(start+dur, c.irqFireFn, c.getIRQItem(fn, arg))
}

func (c *Core) irqFire(it *irqItem) {
	fn, arg := it.fn, it.arg
	it.fn = nil
	it.arg = nil
	c.irqFree = append(c.irqFree, it)
	fn(arg)
	c.irqDone()
}

func (c *Core) irqDone() {
	c.irqDepth--
	if c.irqDepth < 0 {
		panic("host: irqDepth underflow")
	}
	if c.irqDepth > 0 {
		return
	}
	now := c.host.eng.Now()
	if c.curUser != nil {
		c.resumeUser(now)
		return
	}
	c.startNextUser(now)
}

// SubmitUser queues user-context work of the given duration on this core;
// fn runs at its completion. User work is FIFO and preempted by IRQ work.
func (c *Core) SubmitUser(dur sim.Time, fn func()) {
	c.SubmitUserArg(dur, callFunc, fn)
}

// SubmitUserArg is the allocation-free variant of SubmitUser.
func (c *Core) SubmitUserArg(dur sim.Time, fn func(any), arg any) {
	if dur < 0 {
		panic(fmt.Sprintf("host: negative user work %d", dur))
	}
	t := c.getTask(dur, fn, arg)
	c.cancelSleepTimer()
	now := c.host.eng.Now()
	if c.sleeping {
		// A rank resuming on a sleeping core (blocking-wait mode) pays the
		// wake-up penalty too.
		c.wake(now)
		t.remaining += c.host.P.WakeupLatency
	}
	if c.curUser == nil && c.irqDepth == 0 && len(c.userQ) == 0 {
		c.curUser = t
		c.runUser(now)
		return
	}
	c.userQ = append(c.userQ, t)
}

func (c *Core) runUser(now sim.Time) {
	t := c.curUser
	t.running = true
	t.lastStart = now
	t.timer = c.host.eng.ScheduleArg(now+t.remaining, c.completeFn, t)
}

func (c *Core) userComplete(t *userTask) {
	c.Stats.UserBusy += t.remaining
	t.remaining = 0
	c.curUser = nil
	c.Stats.UserTasks++
	fn, arg := t.fn, t.arg
	c.putTask(t)
	fn(arg)
	now := c.host.eng.Now()
	if c.curUser == nil && c.irqDepth == 0 {
		c.startNextUser(now)
	}
}

func (c *Core) startNextUser(now sim.Time) {
	if len(c.userQ) == 0 {
		c.maybeIdle(now)
		return
	}
	c.curUser = c.userQ[0]
	copy(c.userQ, c.userQ[1:])
	c.userQ[len(c.userQ)-1] = nil
	c.userQ = c.userQ[:len(c.userQ)-1]
	c.runUser(now)
}

func (c *Core) pauseUser(now sim.Time) {
	t := c.curUser
	ran := now - t.lastStart
	if ran < 0 {
		panic("host: user task ran negative time")
	}
	t.remaining -= ran
	c.Stats.UserBusy += ran
	if t.remaining < 0 {
		t.remaining = 0
	}
	t.running = false
	if t.timer != nil {
		t.timer.Cancel()
		t.timer = nil
	}
}

func (c *Core) resumeUser(now sim.Time) {
	t := c.curUser
	if t.running {
		return
	}
	t.running = true
	t.lastStart = now
	t.timer = c.host.eng.ScheduleArg(now+t.remaining, c.completeFn, t)
}

// Poll registers (true) or unregisters (false) a busy-polling rank on this
// core. Busy-polling cores never sleep, matching Open MPI's spin-wait
// progression over MX.
func (c *Core) Poll(active bool) {
	if active {
		c.pollers++
		if c.sleeping {
			c.wake(c.host.eng.Now())
		}
		c.cancelSleepTimer()
		return
	}
	c.pollers--
	if c.pollers < 0 {
		panic("host: poller underflow")
	}
	if c.pollers == 0 {
		c.maybeIdle(c.host.eng.Now())
	}
}

// Busy reports whether the core currently has queued or running work.
// Host returns the host this core belongs to — the hook rank placement
// uses to find a core's engine under the sharded runtime.
func (c *Core) Host() *Host { return c.host }

func (c *Core) Busy() bool {
	return c.irqDepth > 0 || c.curUser != nil || len(c.userQ) > 0
}

// Sleeping reports whether the core is in C1E.
func (c *Core) Sleeping() bool { return c.sleeping }

func (c *Core) maybeIdle(now sim.Time) {
	if c.Busy() || c.pollers > 0 || !c.host.P.SleepEnabled || c.sleeping {
		return
	}
	c.cancelSleepTimer()
	c.sleepTimer = c.host.eng.Schedule(now+c.host.P.IdleSleepDelay, c.sleepEnterFn)
}

func (c *Core) wake(now sim.Time) {
	if !c.sleeping {
		return
	}
	c.sleeping = false
	c.Stats.SleepTime += now - c.idleSince
}

func (c *Core) cancelSleepTimer() {
	if c.sleepTimer != nil {
		c.sleepTimer.Cancel()
		c.sleepTimer = nil
	}
}
