// Package host models the compute node: processor cores with preemptive
// interrupt scheduling, C1E idle sleep, and the IRQ-to-core routing policy
// of the platform chipset (round-robin scattering by default, optionally
// bound to a single core, or per-queue for the multiqueue extension).
package host

import (
	"fmt"

	"openmxsim/internal/params"
	"openmxsim/internal/sim"
)

// IRQPolicy selects how hardware interrupts are routed to cores.
type IRQPolicy int

const (
	// IRQRoundRobin scatters interrupts across all cores, the default
	// behaviour of the paper's platform ("interrupts are usually scattered
	// across all processor cores by the hardware chipset").
	IRQRoundRobin IRQPolicy = iota
	// IRQSingleCore binds all interrupts to one core (the paper's
	// "interrupts on single core" configurations).
	IRQSingleCore
	// IRQPerQueue routes each NIC queue to a fixed core (multiqueue
	// extension, Section VI).
	IRQPerQueue
)

func (p IRQPolicy) String() string {
	switch p {
	case IRQRoundRobin:
		return "round-robin"
	case IRQSingleCore:
		return "single-core"
	case IRQPerQueue:
		return "per-queue"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParseIRQPolicy converts a policy name into an IRQPolicy. It accepts the
// canonical String forms ("round-robin", "single-core", "per-queue") and
// the short CLI spellings ("all", "single", "perqueue").
func ParseIRQPolicy(name string) (IRQPolicy, error) {
	switch name {
	case "round-robin", "all":
		return IRQRoundRobin, nil
	case "single-core", "single":
		return IRQSingleCore, nil
	case "per-queue", "perqueue":
		return IRQPerQueue, nil
	}
	return 0, fmt.Errorf("host: unknown IRQ policy %q", name)
}

// Host is one node: a set of cores sharing a NIC.
type Host struct {
	ID    int
	eng   *sim.Engine
	P     params.Host
	Cores []*Core

	policy    IRQPolicy
	fixedCore int
	rrNext    int
}

// New creates a host with the configured number of cores.
func New(eng *sim.Engine, id int, p params.Host) *Host {
	h := &Host{ID: id, eng: eng, P: p}
	h.Cores = make([]*Core, p.Cores)
	for i := range h.Cores {
		h.Cores[i] = newCore(h, i)
		// Idle cores start their C1E countdown immediately.
		h.Cores[i].maybeIdle(eng.Now())
	}
	return h
}

// Engine returns the simulation engine driving this host.
func (h *Host) Engine() *sim.Engine { return h.eng }

// SetIRQPolicy configures interrupt routing. core is only used by
// IRQSingleCore.
func (h *Host) SetIRQPolicy(p IRQPolicy, core int) {
	if core < 0 || core >= len(h.Cores) {
		panic(fmt.Sprintf("host: bad IRQ core %d", core))
	}
	h.policy = p
	h.fixedCore = core
}

// IRQPolicy returns the active routing policy.
func (h *Host) IRQPolicy() IRQPolicy { return h.policy }

// IRQTarget picks the core that will service the next interrupt from the
// given NIC queue.
func (h *Host) IRQTarget(queue int) *Core {
	switch h.policy {
	case IRQSingleCore:
		return h.Cores[h.fixedCore]
	case IRQPerQueue:
		return h.Cores[queue%len(h.Cores)]
	default:
		c := h.Cores[h.rrNext]
		h.rrNext = (h.rrNext + 1) % len(h.Cores)
		return c
	}
}

// Stats returns the aggregated core statistics.
func (h *Host) Stats() CoreStats {
	var s CoreStats
	for _, c := range h.Cores {
		s.Interrupts += c.Stats.Interrupts
		s.Wakeups += c.Stats.Wakeups
		s.IRQBusy += c.Stats.IRQBusy
		s.UserBusy += c.Stats.UserBusy
		s.SleepTime += c.Stats.SleepTime
		s.UserTasks += c.Stats.UserTasks
	}
	return s
}
