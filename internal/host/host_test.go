package host

import (
	"testing"

	"openmxsim/internal/params"
	"openmxsim/internal/sim"
)

func testHost(sleep bool) (*sim.Engine, *Host) {
	eng := sim.NewEngine()
	p := params.Default().Host
	p.SleepEnabled = sleep
	return eng, New(eng, 0, p)
}

func TestUserWorkRuns(t *testing.T) {
	eng, h := testHost(false)
	c := h.Cores[0]
	var doneAt sim.Time
	c.SubmitUser(1000, func() { doneAt = eng.Now() })
	eng.Run()
	if doneAt != 1000 {
		t.Fatalf("user work completed at %d, want 1000", doneAt)
	}
	if c.Stats.UserBusy != 1000 {
		t.Errorf("UserBusy = %d, want 1000", c.Stats.UserBusy)
	}
}

func TestUserWorkFIFO(t *testing.T) {
	eng, h := testHost(false)
	c := h.Cores[0]
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		c.SubmitUser(100, func() { order = append(order, i) })
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("user work out of order: %v", order)
		}
	}
	if eng.Now() != 300 {
		t.Errorf("three 100ns tasks finished at %d, want 300", eng.Now())
	}
}

func TestIRQPreemptsUser(t *testing.T) {
	eng, h := testHost(false)
	c := h.Cores[0]
	var userDone, irqDone sim.Time
	c.SubmitUser(10_000, func() { userDone = eng.Now() })
	eng.After(2_000, func() {
		c.SubmitIRQ(3_000, true, func() { irqDone = eng.Now() })
	})
	eng.Run()
	if irqDone != 5_000 {
		t.Fatalf("IRQ done at %d, want 5000", irqDone)
	}
	// User task had 8000ns left at preemption; resumes at 5000.
	if userDone != 13_000 {
		t.Fatalf("user done at %d, want 13000 (preempted by IRQ)", userDone)
	}
}

func TestNestedIRQSerializes(t *testing.T) {
	eng, h := testHost(false)
	c := h.Cores[0]
	var times []sim.Time
	c.SubmitIRQ(100, true, func() {
		times = append(times, eng.Now())
		// Handler-chained work (e.g. NAPI per-packet items).
		c.SubmitIRQ(200, false, func() { times = append(times, eng.Now()) })
		c.SubmitIRQ(300, false, func() { times = append(times, eng.Now()) })
	})
	eng.Run()
	want := []sim.Time{100, 300, 600}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times %v, want %v", times, want)
		}
	}
}

func TestUserResumeAfterChainedIRQ(t *testing.T) {
	eng, h := testHost(false)
	c := h.Cores[0]
	var userDone sim.Time
	c.SubmitUser(1_000, func() { userDone = eng.Now() })
	eng.After(100, func() {
		c.SubmitIRQ(100, true, func() {
			c.SubmitIRQ(100, false, func() {})
		})
	})
	eng.Run()
	// 100ns ran, then 200ns of IRQ, then the remaining 900ns.
	if userDone != 1_200 {
		t.Fatalf("user done at %d, want 1200", userDone)
	}
}

func TestSleepAndWakeup(t *testing.T) {
	eng, h := testHost(true)
	c := h.Cores[0]
	var handlerAt sim.Time
	// Let the core go idle and sleep, then deliver an interrupt.
	eng.After(h.P.IdleSleepDelay+100, func() {
		if !c.Sleeping() {
			t.Error("core not sleeping after idle delay")
		}
		c.SubmitIRQ(500, true, func() { handlerAt = eng.Now() })
	})
	eng.Run()
	want := h.P.IdleSleepDelay + 100 + h.P.WakeupLatency + 500
	if handlerAt != want {
		t.Fatalf("handler at %d, want %d (includes wakeup)", handlerAt, want)
	}
	if c.Stats.Wakeups != 1 {
		t.Errorf("Wakeups = %d, want 1", c.Stats.Wakeups)
	}
	if c.Stats.SleepTime == 0 {
		t.Error("SleepTime not accounted")
	}
}

func TestSleepDisabled(t *testing.T) {
	eng, h := testHost(false)
	c := h.Cores[0]
	eng.After(1_000_000, func() {
		if c.Sleeping() {
			t.Error("core slept with SleepEnabled=false")
		}
		var at sim.Time
		c.SubmitIRQ(500, true, func() { at = eng.Now() })
		eng.After(600, func() {
			if at != 1_000_500 {
				t.Errorf("handler at %d, want 1000500 (no wakeup)", at)
			}
		})
	})
	eng.Run()
	if c.Stats.Wakeups != 0 {
		t.Errorf("Wakeups = %d, want 0", c.Stats.Wakeups)
	}
}

func TestPollingPreventsSleep(t *testing.T) {
	eng, h := testHost(true)
	c := h.Cores[0]
	c.Poll(true)
	eng.After(10*h.P.IdleSleepDelay, func() {
		if c.Sleeping() {
			t.Error("polling core slept")
		}
		c.Poll(false)
	})
	eng.After(11*h.P.IdleSleepDelay+100, func() {
		if !c.Sleeping() {
			t.Error("core did not sleep after polling stopped")
		}
	})
	eng.Run()
}

func TestWorkCancelsPendingSleep(t *testing.T) {
	eng, h := testHost(true)
	c := h.Cores[0]
	// Submit work just before the sleep timer fires.
	eng.After(h.P.IdleSleepDelay-100, func() {
		c.SubmitUser(50, func() {})
	})
	eng.After(h.P.IdleSleepDelay+10, func() {
		if c.Sleeping() {
			t.Error("core slept despite fresh work")
		}
	})
	eng.Run()
}

func TestBusyReporting(t *testing.T) {
	eng, h := testHost(false)
	c := h.Cores[0]
	if c.Busy() {
		t.Fatal("fresh core is busy")
	}
	c.SubmitUser(100, func() {})
	if !c.Busy() {
		t.Fatal("core with queued work not busy")
	}
	eng.Run()
	if c.Busy() {
		t.Fatal("drained core still busy")
	}
}

func TestIRQRoundRobinRouting(t *testing.T) {
	eng, h := testHost(false)
	_ = eng
	h.SetIRQPolicy(IRQRoundRobin, 0)
	seen := map[int]int{}
	for i := 0; i < 16; i++ {
		seen[h.IRQTarget(0).ID]++
	}
	if len(seen) != len(h.Cores) {
		t.Fatalf("round robin hit %d cores, want %d", len(seen), len(h.Cores))
	}
	for id, n := range seen {
		if n != 2 {
			t.Errorf("core %d hit %d times, want 2", id, n)
		}
	}
}

func TestIRQSingleCoreRouting(t *testing.T) {
	_, h := testHost(false)
	h.SetIRQPolicy(IRQSingleCore, 3)
	for i := 0; i < 8; i++ {
		if c := h.IRQTarget(i); c.ID != 3 {
			t.Fatalf("single-core routing hit core %d", c.ID)
		}
	}
}

func TestIRQPerQueueRouting(t *testing.T) {
	_, h := testHost(false)
	h.SetIRQPolicy(IRQPerQueue, 0)
	for q := 0; q < 16; q++ {
		if c := h.IRQTarget(q); c.ID != q%len(h.Cores) {
			t.Fatalf("queue %d routed to core %d", q, c.ID)
		}
	}
}

func TestHostStatsAggregate(t *testing.T) {
	eng, h := testHost(false)
	h.Cores[0].SubmitUser(100, func() {})
	h.Cores[1].SubmitIRQ(200, true, func() {})
	eng.Run()
	s := h.Stats()
	if s.UserBusy != 100 || s.IRQBusy != 200 || s.Interrupts != 1 || s.UserTasks != 1 {
		t.Errorf("aggregate stats %+v", s)
	}
}

func TestZeroDurationUserWork(t *testing.T) {
	eng, h := testHost(false)
	ran := false
	h.Cores[0].SubmitUser(0, func() { ran = true })
	eng.Run()
	if !ran {
		t.Fatal("zero-duration work never ran")
	}
}

func TestManyInterruptsAccounting(t *testing.T) {
	eng, h := testHost(true)
	h.SetIRQPolicy(IRQRoundRobin, 0)
	const n = 100
	gap := 20 * sim.Microsecond // long enough for cores to re-sleep
	for i := 0; i < n; i++ {
		at := sim.Time(i+1) * gap
		eng.Schedule(at, func() {
			h.IRQTarget(0).SubmitIRQ(500, true, func() {})
		})
	}
	eng.Run()
	s := h.Stats()
	if s.Interrupts != n {
		t.Fatalf("Interrupts = %d, want %d", s.Interrupts, n)
	}
	// Round-robin over 8 cores with 20us gaps: every delivery should find
	// its target asleep (each core idles 160us between hits).
	if s.Wakeups < n*9/10 {
		t.Errorf("Wakeups = %d, want nearly %d (round-robin hits sleepers)", s.Wakeups, n)
	}
}
