// Package analysis is a minimal, stdlib-only reimplementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic).
//
// The build environment vendors no third-party modules and has no module
// proxy, so the real x/tools framework cannot be imported; this package
// keeps the same shape so the analyzers in internal/lint read like (and
// could later be ported to) standard go/analysis analyzers. Only the
// surface the omxlint suite needs is implemented: no facts, no
// requires-graph, no suggested fixes.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //omxlint:allow <name> directives. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description printed by omxlint -list.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers a diagnostic to the driver (which applies the
	// //omxlint:allow suppression layer before surfacing it).
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
