// Package analysistest runs omxlint analyzers over fixture directories,
// mirroring golang.org/x/tools/go/analysis/analysistest: each fixture line
// that should produce a finding carries a trailing `// want "regexp"`
// comment, and the runner fails the test on any finding without a matching
// want and on any want without a matching finding.
//
// Expectations are matched by file and line. A line may carry several
// expectations (`// want "a" "b"`); each matches at most one finding.
// Regexps may be written as interpreted strings or backquoted raw strings
// and are unanchored — they need only match a substring of the finding's
// message. Findings go through lint.Run, so the full directive layer is
// under test too: suppressions apply, and malformed or unused directives
// surface as findings of the "omxlint" pseudo-analyzer that fixtures can
// (and must) `want` like any other.
package analysistest

import (
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"openmxsim/internal/lint"
	"openmxsim/internal/lint/analysis"
)

// want is one expectation parsed from a fixture source line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the bare fixture directory dir (the package's import path is
// the directory's base name, which is how fixtures opt into the
// simulation-visible rules), applies the analyzers through lint.Run, and
// compares the findings against the fixture's want expectations. It
// returns the run summary so callers can additionally assert on
// suppression or hotpath counts.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) lint.Summary {
	t.Helper()
	pkg, err := lint.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	var wants []*want
	for _, name := range pkg.FileNames() {
		ws, err := parseWants(name)
		if err != nil {
			t.Fatalf("parsing wants in %s: %v", name, err)
		}
		wants = append(wants, ws...)
	}
	findings, sum := lint.Run([]*lint.Package{pkg}, analyzers)
	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %s", w.file, w.line, w.re)
		}
	}
	return sum
}

// claim marks the first unmatched expectation on the finding's line whose
// regexp matches the finding's message, reporting whether one was found.
func claim(wants []*want, f lint.Finding) bool {
	for _, w := range wants {
		if w.matched || w.file != f.Pos.Filename || w.line != f.Pos.Line {
			continue
		}
		if w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantRE extracts the marker and the quoted regexps following it. Raw
// strings let fixtures write regexp metacharacters without double escaping.
var wantRE = regexp.MustCompile("// want ((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)$")

var wantArgRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func parseWants(file string) ([]*want, error) {
	src, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var wants []*want
	for i, line := range strings.Split(string(src), "\n") {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			if strings.Contains(line, "// want ") {
				return nil, fmt.Errorf("line %d: malformed want comment (expect quoted or backquoted regexps): %s", i+1, line)
			}
			continue
		}
		for _, tok := range wantArgRE.FindAllString(m[1], -1) {
			pat, err := strconv.Unquote(tok)
			if err != nil {
				return nil, fmt.Errorf("line %d: unquoting %s: %v", i+1, tok, err)
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				return nil, fmt.Errorf("line %d: compiling want regexp %s: %v", i+1, tok, err)
			}
			wants = append(wants, &want{file: file, line: i + 1, re: re})
		}
	}
	return wants, nil
}
