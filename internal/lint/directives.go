package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"openmxsim/internal/lint/analysis"
)

// The annotation vocabulary. Two directives exist:
//
//	//omxlint:hotpath
//	    in a function's doc comment, opts the function into the
//	    hotpathalloc allocation check.
//
//	//omxlint:allow <analyzer>: <justification>
//	    suppresses <analyzer>'s findings on the directive's own line and
//	    on the line immediately below it. The justification is mandatory:
//	    every escape hatch is an audited claim, not a mute button. The
//	    driver counts suppressions and reports directives that suppress
//	    nothing, so stale allows cannot linger.
const directivePrefix = "//omxlint:"

// wantMarker lets analysistest fixtures carry a `// want "..."` expectation
// inside a deliberately malformed directive comment (a line can only hold
// one comment). Everything from the marker on is invisible to the parser.
const wantMarker = " // want "

// allow is one parsed //omxlint:allow directive.
type allow struct {
	pos      token.Pos
	line     int
	analyzer string
	reason   string
	used     bool
}

// fileDirectives is the annotation state of one file.
type fileDirectives struct {
	allows []*allow
	// hotpath is the set of functions annotated //omxlint:hotpath.
	hotpath map[*ast.FuncDecl]bool
	// errs are malformed-directive diagnostics (reported under the
	// "omxlint" pseudo-analyzer, never suppressible).
	errs []analysis.Diagnostic
}

// parseDirectives extracts the omxlint annotations of one file and
// validates them against the known analyzer names.
func parseDirectives(fset *token.FileSet, f *ast.File, known map[string]bool) *fileDirectives {
	d := &fileDirectives{hotpath: map[*ast.FuncDecl]bool{}}
	hotpathAt := map[int]token.Pos{} // line -> directive position, until claimed
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if i := strings.Index(text, wantMarker); i >= 0 {
				text = strings.TrimRight(text[:i], " \t")
			}
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			body := text[len(directivePrefix):]
			line := fset.Position(c.Pos()).Line
			switch {
			case body == "hotpath":
				hotpathAt[line] = c.Pos()
			case strings.HasPrefix(body, "hotpath"):
				d.errorf(c.Pos(), "malformed //omxlint:hotpath directive %q: the directive takes no arguments", text)
			case body == "allow" || strings.HasPrefix(body, "allow "):
				rest := strings.TrimSpace(strings.TrimPrefix(body, "allow"))
				name, reason, ok := strings.Cut(rest, ":")
				name = strings.TrimSpace(name)
				reason = strings.TrimSpace(reason)
				switch {
				case name == "":
					d.errorf(c.Pos(), "malformed directive %q: want //omxlint:allow <analyzer>: <justification>", text)
				case !known[name]:
					d.errorf(c.Pos(), "unknown analyzer %q in //omxlint:allow directive", name)
				case !ok || reason == "":
					d.errorf(c.Pos(), "missing justification in //omxlint:allow %s directive: want //omxlint:allow %s: <why this is safe>", name, name)
				default:
					d.allows = append(d.allows, &allow{
						pos: c.Pos(), line: line, analyzer: name, reason: reason,
					})
				}
			default:
				d.errorf(c.Pos(), "unknown omxlint directive %q", text)
			}
		}
	}
	// A hotpath directive must sit in the doc comment of a function
	// declaration; anywhere else it silently checks nothing, so it is an
	// error.
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Doc == nil {
			continue
		}
		for _, c := range fn.Doc.List {
			line := fset.Position(c.Pos()).Line
			if _, ok := hotpathAt[line]; ok {
				d.hotpath[fn] = true
				delete(hotpathAt, line)
			}
		}
	}
	for _, pos := range hotpathAt {
		d.errorf(pos, "//omxlint:hotpath directive is not attached to a function declaration")
	}
	return d
}

func (d *fileDirectives) errorf(pos token.Pos, format string, args ...any) {
	p := &analysis.Pass{Report: func(diag analysis.Diagnostic) { d.errs = append(d.errs, diag) }}
	p.Reportf(pos, format, args...)
}

// allowFor returns the directive suppressing findings of the named
// analyzer at the given line, if any: a directive applies to its own line
// (trailing comment) and to the line directly below it (comment on its own
// line above the construct).
func (d *fileDirectives) allowFor(name string, line int) *allow {
	for _, a := range d.allows {
		if a.analyzer == name && (a.line == line || a.line == line-1) {
			return a
		}
	}
	return nil
}
