package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSrc runs the directive parser over an in-memory file.
func parseSrc(t *testing.T, src string) *fileDirectives {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", "package p\n\n"+src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	return parseDirectives(fset, f, knownNames())
}

// TestParseDirectiveErrors walks every way to write a directive wrong; each
// must produce exactly one error naming the problem, and none may produce a
// silently-accepted allow.
func TestParseDirectiveErrors(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantErr string
	}{
		{
			name:    "allow without operand",
			src:     "//omxlint:allow\nvar x int",
			wantErr: `malformed directive "//omxlint:allow"`,
		},
		{
			name:    "allow without justification",
			src:     "//omxlint:allow maprange\nvar x int",
			wantErr: "missing justification in //omxlint:allow maprange directive",
		},
		{
			name:    "allow with colon but empty justification",
			src:     "//omxlint:allow maprange:\nvar x int",
			wantErr: "missing justification in //omxlint:allow maprange directive",
		},
		{
			name:    "allow for unknown analyzer",
			src:     "//omxlint:allow spellcheck: because\nvar x int",
			wantErr: `unknown analyzer "spellcheck"`,
		},
		{
			name:    "unknown directive",
			src:     "//omxlint:frobnicate\nvar x int",
			wantErr: `unknown omxlint directive "//omxlint:frobnicate"`,
		},
		{
			name:    "hotpath with arguments",
			src:     "//omxlint:hotpath fast\nfunc F() {}",
			wantErr: "malformed //omxlint:hotpath directive",
		},
		{
			name:    "hotpath not on a function",
			src:     "//omxlint:hotpath\nvar x int",
			wantErr: "not attached to a function declaration",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := parseSrc(t, tc.src)
			if len(d.errs) != 1 {
				t.Fatalf("got %d directive errors, want 1: %v", len(d.errs), d.errs)
			}
			if msg := d.errs[0].Message; !strings.Contains(msg, tc.wantErr) {
				t.Errorf("error %q does not contain %q", msg, tc.wantErr)
			}
			if len(d.allows) != 0 {
				t.Errorf("malformed directive still produced %d allows", len(d.allows))
			}
		})
	}
}

// TestParseDirectiveValid checks the accepted forms parse into the right
// structure: analyzer and justification split, hotpath attached to its
// function, and the analysistest want marker stripped before parsing.
func TestParseDirectiveValid(t *testing.T) {
	d := parseSrc(t, strings.Join([]string{
		"//omxlint:allow maprange: sums are order-independent",
		"var x int",
		"",
		"//omxlint:hotpath",
		"func F() {}",
	}, "\n"))
	if len(d.errs) != 0 {
		t.Fatalf("valid directives produced errors: %v", d.errs)
	}
	if len(d.allows) != 1 {
		t.Fatalf("got %d allows, want 1", len(d.allows))
	}
	al := d.allows[0]
	if al.analyzer != "maprange" || al.reason != "sums are order-independent" {
		t.Errorf("allow parsed as (%q, %q)", al.analyzer, al.reason)
	}
	if len(d.hotpath) != 1 {
		t.Errorf("got %d hotpath functions, want 1", len(d.hotpath))
	}
}

func TestParseDirectiveWantMarkerStripped(t *testing.T) {
	// The trailing want expectation must be invisible: the justification
	// ends before the marker.
	d := parseSrc(t, "//omxlint:allow goroutine: audited pool // want `unused`\nvar x int")
	if len(d.errs) != 0 {
		t.Fatalf("want marker leaked into the parser: %v", d.errs)
	}
	if len(d.allows) != 1 || d.allows[0].reason != "audited pool" {
		t.Fatalf("allow parsed as %+v, want reason %q", d.allows, "audited pool")
	}
}

// TestAllowFor pins the suppression span: a directive covers its own line
// and the line directly below — nothing further.
func TestAllowFor(t *testing.T) {
	d := parseSrc(t, "//omxlint:allow maprange: covers this line and the next\nvar x int")
	line := d.allows[0].line
	if d.allowFor("maprange", line) == nil {
		t.Error("directive does not cover its own line")
	}
	if d.allowFor("maprange", line+1) == nil {
		t.Error("directive does not cover the next line")
	}
	if al := d.allowFor("maprange", line+2); al != nil {
		t.Errorf("directive leaks to line+2: %+v", al)
	}
	if al := d.allowFor("forbiddencalls", line); al != nil {
		t.Errorf("directive suppresses a different analyzer: %+v", al)
	}
}
