package lint

import (
	"go/ast"
	"sort"

	"openmxsim/internal/lint/analysis"
)

// ForbiddenCalls bans ambient-nondeterminism entry points from
// simulation-visible packages: wall-clock time, the global math/rand
// streams, environment lookups, and the unstable sort.Slice. All model
// time must come from the engine clock (sim.Time), all randomness from a
// seeded per-stream sim.RNG, all configuration through Config structs, and
// all sorts must be total on the sorted keys.
var ForbiddenCalls = &analysis.Analyzer{
	Name: "forbiddencalls",
	Doc: "bans time.Now/time.Since, math/rand, os.Getenv and friends, and sort.Slice " +
		"in simulation-visible packages: virtual time, seeded sim.RNG streams, and " +
		"total-order sorts only",
	Run: runForbiddenCalls,
}

// forbiddenSymbol describes one banned package-level symbol. An empty name
// bans every exported symbol of the package.
type forbiddenSymbol struct {
	pkg, name, advice string
}

var forbiddenSymbols = []forbiddenSymbol{
	{"time", "Now", "use the engine's virtual clock (Engine.Now / sim.Time)"},
	{"time", "Since", "use differences of the engine's virtual clock"},
	{"time", "Until", "use differences of the engine's virtual clock"},
	{"time", "Sleep", "schedule an event with Engine.After instead"},
	{"time", "After", "schedule an event with Engine.After instead"},
	{"time", "AfterFunc", "schedule an event with Engine.After instead"},
	{"time", "Tick", "schedule repeating events on the engine instead"},
	{"time", "NewTimer", "schedule an event with Engine.After instead"},
	{"time", "NewTicker", "schedule repeating events on the engine instead"},
	{"math/rand", "", "draw from a seeded per-stream sim.RNG"},
	{"math/rand/v2", "", "draw from a seeded per-stream sim.RNG"},
	{"os", "Getenv", "behaviour must not depend on the environment; thread options through Config"},
	{"os", "LookupEnv", "behaviour must not depend on the environment; thread options through Config"},
	{"os", "Environ", "behaviour must not depend on the environment; thread options through Config"},
	{"os", "ExpandEnv", "behaviour must not depend on the environment; thread options through Config"},
	{"sort", "Slice", "sort.Slice is not stable; use slices.Sort / sort.SliceStable with a key that is total over the sorted elements"},
}

func runForbiddenCalls(pass *analysis.Pass) error {
	if !simVisible(pass.Pkg.Path()) {
		return nil
	}
	// TypesInfo.Uses is a map; collect idents and sort by position so
	// reporting order is deterministic (the driver sorts findings too, but
	// an analyzer should not depend on that).
	idents := make([]*ast.Ident, 0, len(pass.TypesInfo.Uses))
	for id := range pass.TypesInfo.Uses {
		idents = append(idents, id)
	}
	sort.Slice(idents, func(i, j int) bool { return idents[i].Pos() < idents[j].Pos() })
	for _, id := range idents {
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || obj.Pkg() == nil {
			continue
		}
		path := obj.Pkg().Path()
		for _, f := range forbiddenSymbols {
			if path != f.pkg || (f.name != "" && obj.Name() != f.name) {
				continue
			}
			pass.Reportf(id.Pos(), "use of %s.%s in simulation-visible package %s: %s",
				f.pkg, obj.Name(), pass.Pkg.Path(), f.advice)
			break
		}
	}
	return nil
}
