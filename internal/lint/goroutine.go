package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"openmxsim/internal/lint/analysis"
)

// Goroutine confines concurrency to the audited layer. Simulation state is
// shard-owned under the PR 6/7 conservative-PDES contract: within a
// barrier window exactly one goroutine (the shard's worker) touches a
// shard's engines, NICs, stacks, and RNG streams. An ad-hoc goroutine,
// channel, or lock inside a simulation-visible package either races that
// state or — worse — serializes nondeterministically and changes report
// bytes depending on the host scheduler. Only sim (the Group synchronizer)
// and cluster (the liveness watchdog) may use concurrency primitives;
// everything else must run inside the event loop.
var Goroutine = &analysis.Analyzer{
	Name: "goroutine",
	Doc: "confines go statements, channel operations, and sync/atomic primitives to the " +
		"audited concurrency layer (sim.Group, the sweep worker pool, the cluster watchdog)",
	Run: runGoroutine,
}

func runGoroutine(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if !simVisible(path) || auditedConcurrency[pathBase(path)] {
		return nil
	}
	const fix = "simulation packages are shard-owned and single-threaded; move concurrency " +
		"into the audited layer (sim.Group, cluster watchdog) or justify with //omxlint:allow goroutine"
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in simulation-visible package %s: %s", path, fix)
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send in simulation-visible package %s: %s", path, fix)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive in simulation-visible package %s: %s", path, fix)
				}
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select statement in simulation-visible package %s: %s", path, fix)
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						pass.Reportf(n.For, "range over channel in simulation-visible package %s: %s", path, fix)
					}
				}
			case *ast.CallExpr:
				if isBuiltin(pass.TypesInfo, n.Fun, "make") && len(n.Args) > 0 {
					if t := pass.TypesInfo.TypeOf(n.Args[0]); t != nil {
						if _, ok := t.Underlying().(*types.Chan); ok {
							pass.Reportf(n.Pos(), "channel creation in simulation-visible package %s: %s", path, fix)
						}
					}
				}
				if isBuiltin(pass.TypesInfo, n.Fun, "close") {
					pass.Reportf(n.Pos(), "channel close in simulation-visible package %s: %s", path, fix)
				}
			}
			return true
		})
	}
	// Any reference into sync or sync/atomic (types and functions alike —
	// a sync.Mutex field is as much a concurrency claim as a Lock call).
	idents := make([]*ast.Ident, 0, len(pass.TypesInfo.Uses))
	for id := range pass.TypesInfo.Uses {
		idents = append(idents, id)
	}
	sort.Slice(idents, func(i, j int) bool { return idents[i].Pos() < idents[j].Pos() })
	for _, id := range idents {
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || obj.Pkg() == nil {
			continue
		}
		if p := obj.Pkg().Path(); p == "sync" || p == "sync/atomic" {
			pass.Reportf(id.Pos(), "use of %s.%s in simulation-visible package %s: %s",
				p, obj.Name(), path, fix)
		}
	}
	return nil
}
