package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"openmxsim/internal/lint/analysis"
)

// HotPathAlloc checks functions annotated //omxlint:hotpath — the PR 2
// zero-alloc paths: the engine event loop, wheel push/pop, the frame pool,
// coalescer decisions, rx dispatch — for allocation-inducing constructs.
// The dynamic AllocsPerRun guards catch a regression as "got 3 allocs,
// want 0" with no location; this analyzer names the file:line that
// allocates before the benchmark ever runs.
//
// The check is intentionally conservative (escape analysis may prove some
// flagged constructs stack-allocatable); a construct the benchmarks show
// to be free can carry an //omxlint:allow hotpathalloc directive citing
// them. Subtrees feeding panic() are skipped — a panicking path is never
// hot.
var HotPathAlloc = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: "flags allocation-inducing constructs (closures, fmt, make/new/append, " +
		"composite literals, string building, interface boxing) in functions " +
		"annotated //omxlint:hotpath",
	Run: runHotPathAlloc,
}

func runHotPathAlloc(pass *analysis.Pass) error {
	known := knownNames()
	for _, f := range pass.Files {
		dirs := parseDirectives(pass.Fset, f, known)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !dirs.hotpath[fn] || fn.Body == nil {
				continue
			}
			checkHotPath(pass, fn)
		}
	}
	return nil
}

func checkHotPath(pass *analysis.Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in hot path %s: a func literal and its "+
				"captured variables may allocate; bind the callback once at construction "+
				"(ScheduleArg pattern)", name)
			return false
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in hot path %s: spawning a goroutine allocates its stack", name)
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal in hot path %s allocates; reuse a pooled buffer", name)
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal in hot path %s allocates; reuse a long-lived map", name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "address of composite literal in hot path %s heap-allocates; "+
						"take values from a free list", name)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t := pass.TypesInfo.TypeOf(n); t != nil && isString(t) {
					pass.Reportf(n.Pos(), "string concatenation in hot path %s allocates", name)
				}
			}
		case *ast.CallExpr:
			return checkHotPathCall(pass, name, n)
		}
		return true
	})
}

// checkHotPathCall examines one call expression; its return value tells
// ast.Inspect whether to descend into the call's children.
func checkHotPathCall(pass *analysis.Pass, name string, call *ast.CallExpr) bool {
	info := pass.TypesInfo
	// Conversions: string <-> []byte/[]rune copy their contents.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := info.TypeOf(call.Args[0])
		if from != nil && convAllocates(from, to) {
			pass.Reportf(call.Pos(), "conversion %s -> %s in hot path %s copies and allocates",
				from, to, name)
		}
		return true
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make in hot path %s allocates; preallocate at construction", name)
			case "new":
				pass.Reportf(call.Pos(), "new in hot path %s allocates; take values from a free list", name)
			case "append":
				pass.Reportf(call.Pos(), "append in hot path %s may grow and allocate; preallocate capacity "+
					"or justify with //omxlint:allow hotpathalloc citing the AllocsPerRun guard", name)
			case "panic":
				// A panicking path is cold by definition: do not descend
				// into the argument (typically a fmt.Sprintf).
				return false
			}
			return true
		}
	}
	// Calls into fmt always allocate (formatting state, boxing).
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if obj := info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s call in hot path %s allocates", obj.Name(), name)
			return true
		}
	}
	// Interface boxing: passing a non-pointer concrete value where a
	// parameter has interface type forces a heap copy (pointers, channels,
	// maps, and funcs are word-sized and box for free).
	sig, ok := typeAsSignature(info.TypeOf(call.Fun))
	if !ok {
		return true
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || boxesFree(at) {
			continue
		}
		pass.Reportf(arg.Pos(), "argument of type %s boxed into interface parameter in hot path %s "+
			"may allocate; pass a pointer or a pre-boxed value", at, name)
	}
	return true
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// convAllocates reports whether a conversion between these types copies
// backing storage.
func convAllocates(from, to types.Type) bool {
	return (isString(from) && isByteOrRuneSlice(to)) || (isByteOrRuneSlice(from) && isString(to))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// boxesFree reports whether values of this type fit an interface word
// without heap allocation.
func boxesFree(t types.Type) bool {
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return true
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	}
	return false
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
