// Package lint is the omxlint determinism-and-hot-path analyzer suite.
//
// Every number this repository reports rests on simulations being
// bit-identical across scheduler, worker count, and shard layout. The
// differential CI jobs check that property dynamically on a handful of
// grids; this package enforces the invariants behind it statically, on
// every package, on every run:
//
//   - forbiddencalls: no wall-clock time, ambient randomness,
//     environment-dependent behaviour, or unstable sorts inside
//     simulation-visible packages.
//   - maprange: no map iteration feeding simulation-visible state — map
//     order is randomized per process.
//   - goroutine: goroutines, channels, and sync primitives are confined
//     to the audited concurrency layer (sim.Group, the sweep worker
//     pool, the cluster watchdog).
//   - hotpathalloc: functions annotated //omxlint:hotpath must avoid
//     allocation-inducing constructs, turning the AllocsPerRun guards
//     into compile-time findings.
//
// Escape hatches are explicit and audited: see directives.go for the
// //omxlint:allow vocabulary. The driver counts every suppression and
// fails on directives that suppress nothing.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"openmxsim/internal/lint/analysis"
)

// simVisiblePackages are the packages whose state is reachable from a
// running simulation: any nondeterminism here shows up in reports. The
// check matches the last import-path segment so analysistest fixtures can
// opt in by directory name.
var simVisiblePackages = map[string]bool{
	"sim":     true,
	"fabric":  true,
	"nic":     true,
	"omx":     true,
	"host":    true,
	"chaos":   true,
	"cluster": true,
	"mpi":     true,
	"wire":    true,
	"trace":   true,
}

// auditedConcurrency are the sim-visible packages allowed to use
// goroutines, channels, and sync primitives: sim owns the conservative
// Group synchronizer, cluster owns the liveness watchdog. (The sweep
// worker pool is audited too, but sweep is not sim-visible, so the
// goroutine analyzer never reaches it.)
var auditedConcurrency = map[string]bool{
	"sim":     true,
	"cluster": true,
}

// pathBase returns the last segment of an import path.
func pathBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

func simVisible(path string) bool { return simVisiblePackages[pathBase(path)] }

// SimVisible reports whether the package at path is inside the
// simulation-visible boundary the suite polices. Exported so tests can
// pin the boundary itself: the serve control plane, for example, must
// stay outside it — its goroutines, clocks, and maps are load-bearing —
// and a rename or map edit that silently pulled it inside (or pushed a
// simulation package outside) should fail a test, not a code review.
func SimVisible(path string) bool { return simVisible(path) }

// Analyzers returns the full omxlint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{ForbiddenCalls, MapRange, Goroutine, HotPathAlloc}
}

// knownNames returns the valid analyzer names for //omxlint:allow
// directives — always the full suite, regardless of which analyzers a run
// enables, so a partial run never misreports a valid directive as unknown.
// (A literal list, not derived from Analyzers(): the analyzers themselves
// parse directives, and deriving the set would cycle their initializers.)
func knownNames() map[string]bool {
	return map[string]bool{
		"forbiddencalls": true,
		"maprange":       true,
		"goroutine":      true,
		"hotpathalloc":   true,
	}
}

// Finding is one surfaced (unsuppressed) diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Summary counts the run for the omxlint banner.
type Summary struct {
	Packages   int
	Findings   int
	Allows     int // //omxlint:allow directives seen
	Suppressed int // diagnostics suppressed by them
	Hotpaths   int // functions checked by hotpathalloc
}

// Run applies the analyzers to the packages, applying the directive layer:
// malformed directives are findings, matching //omxlint:allow directives
// suppress, and allow directives that suppress nothing (for an analyzer
// that ran) are findings themselves. Findings come back sorted by
// position.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer) ([]Finding, Summary) {
	var findings []Finding
	sum := Summary{Packages: len(pkgs)}
	known := knownNames()
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, pkg := range pkgs {
		dirs := directivesFor(pkg, known)
		for _, fd := range dirs {
			sum.Allows += len(fd.allows)
			sum.Hotpaths += len(fd.hotpath)
			for _, diag := range fd.errs {
				findings = append(findings, Finding{
					Pos:      pkg.Fset.Position(diag.Pos),
					Analyzer: "omxlint",
					Message:  diag.Message,
				})
			}
		}
		for _, a := range analyzers {
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Message:  fmt.Sprintf("analyzer failed: %v", err),
				})
				continue
			}
			for _, diag := range diags {
				pos := pkg.Fset.Position(diag.Pos)
				if fd := dirs[pos.Filename]; fd != nil {
					if al := fd.allowFor(a.Name, pos.Line); al != nil {
						al.used = true
						sum.Suppressed++
						continue
					}
				}
				findings = append(findings, Finding{Pos: pos, Analyzer: a.Name, Message: diag.Message})
			}
		}
		// An allow that suppressed nothing is stale — unless its analyzer
		// was not part of this run, in which case we cannot tell.
		for _, fd := range dirs {
			for _, al := range fd.allows {
				if !al.used && ran[al.analyzer] {
					findings = append(findings, Finding{
						Pos:      pkg.Fset.Position(al.pos),
						Analyzer: "omxlint",
						Message:  fmt.Sprintf("unused //omxlint:allow %s directive: nothing on this or the next line triggers %s", al.analyzer, al.analyzer),
					})
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	sum.Findings = len(findings)
	return findings, sum
}

// directivesFor parses the annotations of every file in the package,
// keyed by filename.
func directivesFor(pkg *Package, known map[string]bool) map[string]*fileDirectives {
	dirs := map[string]*fileDirectives{}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		dirs[name] = parseDirectives(pkg.Fset, f, known)
	}
	return dirs
}
