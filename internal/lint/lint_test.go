package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"openmxsim/internal/lint"
	"openmxsim/internal/lint/analysistest"
)

func fixture(parts ...string) string {
	return filepath.Join(append([]string{"testdata"}, parts...)...)
}

func TestForbiddenCallsFixture(t *testing.T) {
	sum := analysistest.Run(t, fixture("src", "nic"), lint.ForbiddenCalls)
	if sum.Suppressed != 1 {
		t.Errorf("got %d suppressions, want 1 (the audited time.Now)", sum.Suppressed)
	}
}

func TestMapRangeFixture(t *testing.T) {
	sum := analysistest.Run(t, fixture("src", "fabric"), lint.MapRange)
	if sum.Suppressed != 1 {
		t.Errorf("got %d suppressions, want 1 (the audited sum loop)", sum.Suppressed)
	}
}

func TestGoroutineFixture(t *testing.T) {
	sum := analysistest.Run(t, fixture("src", "omx"), lint.Goroutine)
	if sum.Suppressed != 1 {
		t.Errorf("got %d suppressions, want 1 (the trailing-form allow)", sum.Suppressed)
	}
}

func TestHotPathAllocFixture(t *testing.T) {
	sum := analysistest.Run(t, fixture("src", "hotpath"), lint.HotPathAlloc)
	if sum.Hotpaths != 3 {
		t.Errorf("got %d hotpath functions, want 3", sum.Hotpaths)
	}
	if sum.Suppressed != 1 {
		t.Errorf("got %d suppressions, want 1 (the guarded append)", sum.Suppressed)
	}
}

// TestDirectiveFixture runs the full suite so both the used and the unused
// allow behave as the fixture documents.
func TestDirectiveFixture(t *testing.T) {
	analysistest.Run(t, fixture("src", "host"), lint.Analyzers()...)
}

// TestControlFixture is the negative control: a package whose name is not
// simulation-visible draws no findings from the entire suite, whatever it
// does with clocks, maps, and goroutines.
func TestControlFixture(t *testing.T) {
	sum := analysistest.Run(t, fixture("src", "tools"), lint.Analyzers()...)
	if sum.Findings != 0 {
		t.Errorf("control fixture produced %d findings, want 0", sum.Findings)
	}
}

// TestServeFixtureOutsideBoundary pins the service boundary: the serve
// control plane lives outside the simulation-visible set, so its
// goroutines, wall-clock deadlines, and map-ordered bookkeeping — all
// load-bearing for an HTTP service — draw no findings. The fixture
// mirrors internal/serve's structure; if the boundary ever moves, the
// suite lights up here before it silences real findings elsewhere.
func TestServeFixtureOutsideBoundary(t *testing.T) {
	sum := analysistest.Run(t, fixture("src", "serve"), lint.Analyzers()...)
	if sum.Findings != 0 {
		t.Errorf("serve fixture produced %d findings, want 0 (control plane must stay outside the sim-visible boundary)", sum.Findings)
	}
}

// TestSimVisibleBoundary pins the boundary map itself in both
// directions: the packages whose determinism the reports rest on are
// inside, and the operational layers (service, sweep pool, CLIs) are
// outside — where goroutines and clocks are legal and audited by tests
// instead.
func TestSimVisibleBoundary(t *testing.T) {
	for _, path := range []string{
		"openmxsim/internal/sim", "openmxsim/internal/fabric",
		"openmxsim/internal/nic", "openmxsim/internal/omx",
		"openmxsim/internal/host", "openmxsim/internal/chaos",
		"openmxsim/internal/cluster", "openmxsim/internal/mpi",
		"openmxsim/internal/trace",
	} {
		if !lint.SimVisible(path) {
			t.Errorf("%s fell outside the sim-visible boundary; the suite no longer polices it", path)
		}
	}
	for _, path := range []string{
		"openmxsim/internal/serve", "openmxsim/internal/sweep",
		"openmxsim/internal/tune", "openmxsim/internal/cliflag",
		"openmxsim/cmd/omxserve",
	} {
		if lint.SimVisible(path) {
			t.Errorf("%s moved inside the sim-visible boundary; its intentional concurrency/clocks would now be findings", path)
		}
	}
}

// TestCIRedFixtureFails proves the seeded CI fixture actually trips the
// suite — if this test fails, the red step in the lint job is testing
// nothing.
func TestCIRedFixtureFails(t *testing.T) {
	pkg, err := lint.LoadDir(fixture("ci_red", "sim"))
	if err != nil {
		t.Fatalf("loading ci_red fixture: %v", err)
	}
	findings, _ := lint.Run([]*lint.Package{pkg}, lint.Analyzers())
	if len(findings) == 0 {
		t.Fatal("ci_red fixture produced no findings; the CI red step would pass vacuously")
	}
	for _, f := range findings {
		if f.Analyzer == "forbiddencalls" && strings.Contains(f.Message, "time.Now") {
			return
		}
	}
	t.Fatalf("ci_red fixture findings do not include the seeded time.Now violation: %v", findings)
}

// TestRepoIsClean is the self-test: the repository's own simulation
// packages must pass the full suite with zero findings. A legitimate new
// escape hatch belongs in an //omxlint:allow directive with a
// justification, not in an exception list here.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads every package; skipped in -short")
	}
	root, err := lint.ModuleRoot()
	if err != nil {
		t.Fatalf("resolving module root: %v", err)
	}
	pkgs, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	findings, sum := lint.Run(pkgs, lint.Analyzers())
	for _, f := range findings {
		t.Errorf("finding: %s", f)
	}
	if sum.Hotpaths == 0 {
		t.Error("no //omxlint:hotpath functions found; annotations lost?")
	}
	if sum.Suppressed == 0 {
		t.Error("no suppressions counted; the audited allow directives lost?")
	}
}
