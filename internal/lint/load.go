package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	// Path is the import path (Load) or the package name (LoadDir, which
	// has no module context). Analyzer scoping looks at the last path
	// segment, so fixture directories named after a simulation package
	// (testdata/src/nic, ...) exercise the sim-visible rules.
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// FileNames returns the on-disk path of every source file in the package,
// in parse order.
func (p *Package) FileNames() []string {
	names := make([]string, len(p.Files))
	for i, f := range p.Files {
		names[i] = p.Fset.Position(f.Pos()).Filename
	}
	return names
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
}

// goList runs `go list -export -deps -json` in dir over the given patterns
// and returns the decoded package stream.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := []string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly", "--"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup adapts a path->export-file map to the importer.ForCompiler
// lookup contract.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
}

// newInfo returns a types.Info with every map the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

// Load type-checks the packages matched by patterns (e.g. "./...") in the
// module rooted at root. Dependencies are resolved through compiler export
// data produced by `go list -export`, so loading is fast and needs no
// network. Test files are not loaded: the determinism invariants guard
// simulation code, not its tests.
func Load(root string, patterns ...string) ([]*Package, error) {
	list, err := goList(root, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []listPkg
	for _, p := range list {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool {
		return targets[i].ImportPath < targets[j].ImportPath
	})
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	var out []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, gf := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, gf), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", t.ImportPath, err)
		}
		out = append(out, &Package{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Types: pkg,
			Info:  info,
		})
	}
	return out, nil
}

// LoadDir type-checks a bare directory of Go files outside any module —
// the analysistest fixtures under testdata, which `go list ./...` cannot
// see. Imports are limited to the standard library and resolved through
// export data listed from the surrounding module context. Package.Path is
// the directory's base name, so a fixture directory named after a
// simulation package opts into the sim-visible rules.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, err
			}
			imports[path] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		paths := make([]string, 0, len(imports))
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		list, err := goList(dir, paths)
		if err != nil {
			return nil, err
		}
		for _, p := range list {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	info := newInfo()
	conf := types.Config{Importer: imp}
	path := filepath.Base(dir)
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", dir, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: pkg,
		Info:  info,
	}, nil
}

// ModuleRoot returns the directory of the enclosing module, resolved from
// the current working directory.
func ModuleRoot() (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("lint: not inside a module: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}
