package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"openmxsim/internal/lint/analysis"
)

// MapRange bans `range` over maps in simulation-visible packages: Go
// randomizes map iteration order per run, so any map-order-dependent
// scheduling, stats aggregation, RNG draw, or serialized output breaks
// bit-reproducibility. Two shapes are recognized as order-insensitive and
// exempt — a loop that only collects keys for later sorting (the
// sorted-key helper pattern) and a loop that only deletes entries. Every
// other loop must either iterate a sorted key slice instead or carry an
// audited //omxlint:allow maprange: <justification> directive.
var MapRange = &analysis.Analyzer{
	Name: "maprange",
	Doc: "bans map iteration in simulation-visible packages (map order is randomized); " +
		"collect-and-sort keys, or justify with //omxlint:allow maprange",
	Run: runMapRange,
}

func runMapRange(pass *analysis.Pass) error {
	if !simVisible(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if benignMapRange(rs, pass.TypesInfo) {
				return true
			}
			pass.Reportf(rs.For, "iteration over map in simulation-visible package %s: "+
				"map order is randomized; iterate a sorted key slice, or justify with "+
				"//omxlint:allow maprange: <why order cannot matter>", pass.Pkg.Path())
			return true
		})
	}
	return nil
}

// benignMapRange reports whether the loop body is one of the recognized
// order-insensitive shapes: every statement is an append of the key to a
// slice (key collection for later sorting), a delete from a map, or an
// if/continue guard around only those (filtered key collection). The guard
// condition itself cannot reintroduce order sensitivity: it has no side
// effects on the collection, and which keys pass is a per-key property.
func benignMapRange(rs *ast.RangeStmt, info *types.Info) bool {
	key, _ := rs.Key.(*ast.Ident)
	if len(rs.Body.List) == 0 {
		return false
	}
	return benignStmts(rs.Body.List, key, info)
}

func benignStmts(stmts []ast.Stmt, key *ast.Ident, info *types.Info) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			// s = append(s, key)
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 || s.Tok != token.ASSIGN {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok || !isBuiltin(info, call.Fun, "append") || len(call.Args) != 2 {
				return false
			}
			arg, ok := call.Args[1].(*ast.Ident)
			if !ok || key == nil || arg.Name != key.Name {
				return false
			}
		case *ast.ExprStmt:
			// delete(m, ...)
			call, ok := s.X.(*ast.CallExpr)
			if !ok || !isBuiltin(info, call.Fun, "delete") {
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil || s.Else != nil || !benignStmts(s.Body.List, key, info) {
				return false
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// isBuiltin reports whether fun resolves to the named predeclared builtin.
func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}
