// Package sim is the deliberately broken CI fixture: the lint job runs
// omxlint over this directory and MUST fail, proving the job turns red on
// a real determinism violation instead of rubber-stamping. Do not "fix"
// this file.
package sim

import "time"

// Timestamp reads the wall clock from a simulation-visible package — the
// canonical violation the suite exists to catch.
func Timestamp() int64 {
	return time.Now().UnixNano()
}
