// Package fabric is a maprange fixture: "fabric" is a simulation-visible
// package name, so map iteration must be order-insensitive or audited.
package fabric

import "sort"

// Join is the flagged case: concatenation order follows map order.
func Join(m map[int]string) string {
	var out string
	for _, v := range m { // want `iteration over map in simulation-visible package fabric`
		out += v
	}
	return out
}

// FirstError is the subtler flagged case: which entry's error surfaces
// depends on map order.
func FirstError(m map[int]int) int {
	for k, v := range m { // want `iteration over map`
		if v < 0 {
			return k
		}
	}
	return -1
}

// Keys is the benign sorted-key helper shape: the loop only collects keys.
func Keys(m map[int]string) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// ShortKeys is the filtered variant: an if/continue guard around the
// collection stays benign.
func ShortKeys(m map[int]string) []int {
	var ks []int
	for k, v := range m {
		if len(v) > 3 {
			continue
		}
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// Clear is the benign delete-only sweep.
func Clear(m map[int]string) {
	for k := range m {
		delete(m, k)
	}
}

// Total carries an audited allow: integer sums commute.
func Total(counts map[int]uint64) uint64 {
	var n uint64
	//omxlint:allow maprange: fixture — integer sums are order-independent
	for _, c := range counts {
		n += c
	}
	return n
}
