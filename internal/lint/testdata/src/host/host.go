// Package host is the fixture for the annotation parser itself: every way
// to get a directive wrong is an "omxlint" finding, never silently
// ignored. The directory borrows a simulation-visible name so the file can
// demonstrate both a used and an unused allow. The want expectations ride
// inside the malformed comments — everything from the want marker on is
// invisible to the parser.
package host

import "time"

//omxlint:allow // want `malformed directive "//omxlint:allow": want //omxlint:allow <analyzer>: <justification>`
var a int

//omxlint:allow maprange // want `missing justification in //omxlint:allow maprange directive`
var b int

//omxlint:allow maprange: // want `missing justification in //omxlint:allow maprange directive`
var c int

//omxlint:allow spellcheck: maps are fine really // want `unknown analyzer "spellcheck" in //omxlint:allow directive`
var d int

//omxlint:frobnicate // want `unknown omxlint directive "//omxlint:frobnicate"`
var e int

//omxlint:hotpath the fast one // want `malformed //omxlint:hotpath directive`
var f int

//omxlint:hotpath // want `//omxlint:hotpath directive is not attached to a function declaration`
var g int

// Stale carries an allow whose analyzer runs but finds nothing to suppress
// on either line it covers.
func Stale() int {
	//omxlint:allow forbiddencalls: nothing here actually calls time // want `unused //omxlint:allow forbiddencalls directive`
	return a + b + c + d + e + f + g
}

// Used is the counterpart: a directive that suppresses a genuine finding
// draws no unused-allow complaint.
func Used() int64 {
	//omxlint:allow forbiddencalls: fixture — a used directive draws no finding
	return time.Now().UnixNano()
}
