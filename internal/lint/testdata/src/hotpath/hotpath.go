// Package hotpath is a hotpathalloc fixture. The package name is not
// simulation-visible — hotpathalloc applies wherever a function is
// annotated, so the zero-alloc contract also covers helpers that
// sim-visible code calls into.
package hotpath

import "fmt"

// Sink takes an interface, to exercise the boxing check.
func Sink(v any) {}

// process is annotated: every allocation-inducing construct below is a
// finding.
//
//omxlint:hotpath
func process(xs []int, n int) int {
	buf := make([]int, n)        // want `make in hot path process allocates`
	buf = append(buf, n)         // want `append in hot path process`
	p := new(int)                // want `new in hot path process allocates`
	pair := []int{n, n}          // want `slice literal in hot path process`
	fmt.Println(n)               // want `fmt\.Println call in hot path process`
	Sink(n)                      // want `argument of type int boxed into interface parameter`
	f := func() int { return n } // want `closure literal in hot path process`
	return len(buf) + *p + pair[0] + f()
}

// build exercises the remaining constructs.
//
//omxlint:hotpath
func build(name string, raw []byte) string {
	go func() {}()         // want `go statement in hot path build` `closure literal in hot path build`
	s := string(raw)       // want `conversion \[\]byte -> string in hot path build`
	m := map[string]bool{} // want `map literal in hot path build`
	e := &event{}          // want `address of composite literal in hot path build`
	_ = m
	_ = e
	return name + s // want `string concatenation in hot path build`
}

type event struct{ seq uint64 }

// cold is NOT annotated: the same constructs draw no findings.
func cold(n int) []int {
	buf := make([]int, n)
	return append(buf, n)
}

// guarded shows the two blessed escape shapes: a panic subtree is cold by
// definition, and an audited append cites its dynamic guard.
//
//omxlint:hotpath
func guarded(free []*event, ev *event) []*event {
	if ev == nil {
		panic(fmt.Sprintf("nil event on free list of %d", len(free)))
	}
	//omxlint:allow hotpathalloc: fixture — free-list growth is amortized and guarded by AllocsPerRun
	return append(free, ev)
}
