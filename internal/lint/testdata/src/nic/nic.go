// Package nic is a forbiddencalls fixture: "nic" is a simulation-visible
// package name, so the ambient-nondeterminism bans apply in full.
package nic

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

// Stamp reads the wall clock, which differs on every run.
func Stamp() int64 {
	return time.Now().UnixNano() // want `use of time\.Now in simulation-visible package nic`
}

// Jitter draws from the global math/rand stream and then really sleeps.
func Jitter() time.Duration {
	d := time.Duration(rand.Intn(10)) // want `use of math/rand\.Intn`
	time.Sleep(d)                     // want `use of time\.Sleep`
	return d
}

// FromEnv lets the environment steer behaviour.
func FromEnv() string {
	return os.Getenv("OMX_DELAY") // want `use of os\.Getenv`
}

// Order uses the unstable sort.
func Order(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `use of sort\.Slice`
}

// Fine is the negative case: deterministic time arithmetic, stable sorts,
// and non-banned os symbols are all untouched.
func Fine(xs []int, base time.Duration) time.Duration {
	sort.Ints(xs)
	if len(os.Args) > 1 {
		return base * 2
	}
	return base
}

// Audited demonstrates a counted suppression: the directive on the line
// above the use silences it.
func Audited() int64 {
	//omxlint:allow forbiddencalls: fixture — demonstrates an audited, counted suppression
	return time.Now().UnixNano()
}
