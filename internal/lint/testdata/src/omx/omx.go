// Package omx is a goroutine fixture: "omx" is simulation-visible and not
// part of the audited concurrency layer, so every concurrency construct is
// a finding.
package omx

import "sync"

// Guard claims concurrency just by embedding a lock.
type Guard struct {
	mu sync.Mutex // want `use of sync\.Mutex`
}

// Spawn starts an ad-hoc goroutine.
func Spawn(fn func()) {
	go fn() // want `go statement in simulation-visible package omx`
}

// Relay uses channels end to end.
func Relay(in chan int) int {
	out := make(chan int, 1) // want `channel creation`
	v := <-in                // want `channel receive`
	out <- v                 // want `channel send`
	close(out)               // want `channel close`
	return <-out             // want `channel receive`
}

// Drain ranges over a channel and selects.
func Drain(in chan int) int {
	n := 0
	for v := range in { // want `range over channel`
		n += v
	}
	select { // want `select statement`
	default:
	}
	return n
}

// Sequential is the negative case: plain single-threaded code.
func Sequential(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// Audited carries an allow on the offending line itself (trailing form).
func Audited(done *sync.WaitGroup) { // want `use of sync\.WaitGroup`
	done.Wait() //omxlint:allow goroutine: fixture — demonstrates the trailing-comment allow form
}
