// Package serve is the control-plane fixture: it mirrors what the real
// internal/serve does — wall-clock deadlines, goroutines and channels
// for the executor pool, map-ordered bookkeeping — all of which is
// load-bearing for an HTTP service and none of which may leak into a
// simulation. The package name sits outside the simulation-visible set,
// so the entire suite must stay silent here; if serve ever becomes
// sim-visible, these same lines become findings and the lint-scope test
// catches the boundary move.
package serve

import (
	"sync"
	"time"
)

// Supervise runs jobs with a wall-clock deadline each — the service's
// job-timeout layer in miniature.
func Supervise(jobs []func(), timeout time.Duration) int {
	done := 0
	for _, job := range jobs {
		start := time.Now()
		finished := make(chan struct{})
		go func() {
			job()
			close(finished)
		}()
		select {
		case <-finished:
			if time.Since(start) <= timeout {
				done++
			}
		case <-time.After(timeout):
		}
	}
	return done
}

// Drain waits for in-flight work, the SIGTERM path in miniature.
func Drain(inflight *sync.WaitGroup, timeout time.Duration) bool {
	c := make(chan struct{})
	go func() {
		inflight.Wait()
		close(c)
	}()
	select {
	case <-c:
		return true
	case <-time.After(timeout):
		return false
	}
}

// CountStates aggregates a job table by state, iterating the map in
// whatever order the runtime picks — fine for metrics, forbidden for
// simulation state.
func CountStates(jobs map[string]string) map[string]int {
	counts := map[string]int{}
	for _, state := range jobs {
		counts[state]++
	}
	return counts
}
