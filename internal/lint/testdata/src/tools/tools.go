// Package tools is the control fixture: the name is not simulation-visible,
// so wall-clock time, ambient randomness, map iteration, and concurrency
// are all legitimate here and the suite must stay silent.
package tools

import (
	"math/rand"
	"sync"
	"time"
)

// Elapsed times a real wall-clock operation — fine outside the simulation.
func Elapsed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// Shuffle uses ambient randomness.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Sum iterates a map in arbitrary order.
func Sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Fan runs work concurrently.
func Fan(work []func()) {
	var wg sync.WaitGroup
	for _, fn := range work {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn()
		}()
	}
	wg.Wait()
}
