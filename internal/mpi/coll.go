package mpi

// Collective operations with the classic algorithms of Open MPI's "tuned"
// defaults at small scale: dissemination barrier, binomial broadcast and
// reduce, recursive-doubling allreduce, ring allgather, and pairwise
// alltoall(v). All collectives are size-driven: they move the specified
// byte counts and synchronize exactly like the real algorithms, which is
// what the interrupt study needs.

// Barrier blocks until every rank in the communicator has entered it.
func (r *Rank) Barrier(c *Comm) {
	n := c.Size()
	if n == 1 {
		return
	}
	me := c.RankOf(r.ID)
	tag := r.collTag(c)
	step := 0
	for k := 1; k < n; k <<= 1 {
		dst := (me + k) % n
		src := (me - k + n) % n
		r.Sendrecv(c, dst, tag+step, 0, src, tag+step, 0)
		step++
	}
}

// Bcast sends size bytes from root to every rank (binomial tree).
func (r *Rank) Bcast(c *Comm, root, size int) {
	n := c.Size()
	if n == 1 {
		return
	}
	me := c.RankOf(r.ID)
	tag := r.collTag(c)
	// Rotate so the root is virtual rank 0.
	vrank := (me - root + n) % n

	// Receive from parent, then forward to children.
	if vrank != 0 {
		mask := 1
		for vrank&mask == 0 {
			mask <<= 1
		}
		parent := (((vrank &^ mask) + root) % n)
		r.Recv(c, parent, tag, nil, size)
	}
	for mask := nextPow2(n) >> 1; mask > 0; mask >>= 1 {
		if vrank&(mask-1) == 0 && vrank&mask == 0 {
			child := vrank | mask
			if child < n {
				r.Send(c, (child+root)%n, tag, nil, size)
			}
		}
	}
}

// Reduce gathers size bytes of contribution from every rank onto root
// (binomial tree, combining at each step).
func (r *Rank) Reduce(c *Comm, root, size int) {
	n := c.Size()
	if n == 1 {
		return
	}
	me := c.RankOf(r.ID)
	tag := r.collTag(c)
	vrank := (me - root + n) % n

	for mask := 1; mask < nextPow2(n); mask <<= 1 {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % n
			r.Send(c, parent, tag, nil, size)
			return
		}
		child := vrank | mask
		if child < n {
			r.Recv(c, (child+root)%n, tag, nil, size)
		}
	}
}

// Allreduce combines size bytes across all ranks (recursive doubling, with
// the standard fold-in for non-power-of-two sizes).
func (r *Rank) Allreduce(c *Comm, size int) {
	n := c.Size()
	if n == 1 {
		return
	}
	me := c.RankOf(r.ID)
	tag := r.collTag(c)
	pof2 := largestPow2(n)
	rem := n - pof2

	newRank := -1
	switch {
	case me < 2*rem && me%2 == 0:
		// Fold into the odd neighbour, wait for the result afterwards.
		r.Send(c, me+1, tag, nil, size)
	case me < 2*rem:
		r.Recv(c, me-1, tag, nil, size)
		newRank = me / 2
	default:
		newRank = me - rem
	}

	if newRank >= 0 {
		step := 1
		for mask := 1; mask < pof2; mask <<= 1 {
			partnerNew := newRank ^ mask
			partner := partnerNew
			if partnerNew < rem {
				partner = partnerNew*2 + 1
			} else {
				partner = partnerNew + rem
			}
			r.Sendrecv(c, partner, tag+step, size, partner, tag+step, size)
			step++
		}
	}

	// Hand results back to the folded ranks.
	switch {
	case me < 2*rem && me%2 == 0:
		r.Recv(c, me+1, tag+2000, nil, size)
	case me < 2*rem && me%2 == 1:
		r.Send(c, me-1, tag+2000, nil, size)
	}
}

// Allgather shares blockSize bytes per rank with everyone (ring algorithm:
// n-1 steps of neighbour exchange).
func (r *Rank) Allgather(c *Comm, blockSize int) {
	n := c.Size()
	if n == 1 {
		return
	}
	me := c.RankOf(r.ID)
	tag := r.collTag(c)
	right := (me + 1) % n
	left := (me - 1 + n) % n
	for step := 0; step < n-1; step++ {
		r.Sendrecv(c, right, tag+step, blockSize, left, tag+step, blockSize)
	}
}

// Gather collects blockSize bytes from every rank at root.
func (r *Rank) Gather(c *Comm, root, blockSize int) {
	n := c.Size()
	if n == 1 {
		return
	}
	me := c.RankOf(r.ID)
	tag := r.collTag(c)
	if me == root {
		reqs := make([]*Request, 0, n-1)
		for src := 0; src < n; src++ {
			if src == root {
				continue
			}
			reqs = append(reqs, r.Irecv(c, src, tag, nil, blockSize))
		}
		r.Wait(reqs...)
		return
	}
	r.Send(c, root, tag, nil, blockSize)
}

// Scatter distributes blockSize bytes from root to every rank.
func (r *Rank) Scatter(c *Comm, root, blockSize int) {
	n := c.Size()
	if n == 1 {
		return
	}
	me := c.RankOf(r.ID)
	tag := r.collTag(c)
	if me == root {
		reqs := make([]*Request, 0, n-1)
		for dst := 0; dst < n; dst++ {
			if dst == root {
				continue
			}
			reqs = append(reqs, r.Isend(c, dst, tag, nil, blockSize))
		}
		r.Wait(reqs...)
		return
	}
	r.Recv(c, root, tag, nil, blockSize)
}

// Alltoall exchanges blockSize bytes between every rank pair (pairwise
// exchange: n-1 shifted sendrecv steps).
func (r *Rank) Alltoall(c *Comm, blockSize int) {
	n := c.Size()
	if n == 1 {
		return
	}
	me := c.RankOf(r.ID)
	tag := r.collTag(c)
	for step := 1; step < n; step++ {
		dst := (me + step) % n
		src := (me - step + n) % n
		r.Sendrecv(c, dst, tag+step, blockSize, src, tag+step, blockSize)
	}
}

// Alltoallv exchanges sizes[dst] bytes with each destination; recvSizes
// gives the per-source receive capacity (pairwise exchange).
func (r *Rank) Alltoallv(c *Comm, sendSizes, recvSizes []int) {
	n := c.Size()
	if len(sendSizes) != n || len(recvSizes) != n {
		panic("mpi: Alltoallv size vectors must match communicator size")
	}
	if n == 1 {
		return
	}
	me := c.RankOf(r.ID)
	tag := r.collTag(c)
	for step := 1; step < n; step++ {
		dst := (me + step) % n
		src := (me - step + n) % n
		rq := r.Irecv(c, src, tag+step, nil, recvSizes[src])
		sq := r.Isend(c, dst, tag+step, nil, sendSizes[dst])
		r.Wait(rq, sq)
	}
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func largestPow2(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}
