// Package mpi is a small MPI-style layer over the Open-MX stack: ranks with
// blocking and non-blocking point-to-point operations and the collectives
// the NAS Parallel Benchmarks need. It plays the role of Open MPI 1.3 in
// the paper's software stack.
package mpi

import (
	"fmt"

	"openmxsim/internal/cluster"
	"openmxsim/internal/host"
	"openmxsim/internal/omx"
	"openmxsim/internal/proc"
	"openmxsim/internal/sim"
)

// AnySource and AnyTag are wildcard receive selectors.
const (
	AnySource = -1
	AnyTag    = -1
)

// World is one MPI job: a set of ranks over a cluster.
type World struct {
	Cluster *cluster.Cluster
	ranks   []*Rank
	addrs   []omx.Addr
	nextCtx uint16
}

// Rank is one MPI process, pinned to a core, owning one endpoint.
type Rank struct {
	world *World
	ID    int
	EP    *omx.Endpoint
	Proc  *proc.Proc
	core  *host.Core

	// FinishedAt records when the rank's main function returned.
	FinishedAt sim.Time

	collSeq map[uint16]uint32 // per-communicator collective epoch
}

// NewWorld creates one rank per endpoint, in order.
func NewWorld(c *cluster.Cluster, eps []*omx.Endpoint) *World {
	w := &World{Cluster: c, nextCtx: 2}
	for i, ep := range eps {
		w.addrs = append(w.addrs, ep.Addr())
		w.ranks = append(w.ranks, &Rank{
			world:   w,
			ID:      i,
			EP:      ep,
			Proc:    proc.New(fmt.Sprintf("rank%d", i)),
			core:    ep.Core(),
			collSeq: make(map[uint16]uint32),
		})
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Comm is a communicator: an ordered group of world ranks with a matching
// context. Comm-local rank indices are positions in the group.
type Comm struct {
	world *World
	group []int // comm rank -> world rank
	ctx   uint16
}

// CommWorld returns the communicator spanning all ranks.
func (w *World) CommWorld() *Comm {
	g := make([]int, len(w.ranks))
	for i := range g {
		g[i] = i
	}
	return &Comm{world: w, group: g, ctx: 1}
}

// Sub creates a sub-communicator from world ranks (in the given order).
func (w *World) Sub(group []int) *Comm {
	w.nextCtx++
	return &Comm{world: w, group: append([]int(nil), group...), ctx: w.nextCtx}
}

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.group) }

// RankOf returns the comm-local index of world rank w, or -1.
func (c *Comm) RankOf(worldRank int) int {
	for i, g := range c.group {
		if g == worldRank {
			return i
		}
	}
	return -1
}

// Run executes fn on every rank concurrently (SPMD) and returns the maximal
// rank finish time. It errors if any rank deadlocks. Each rank's process
// lives on its own node's shard engine (the same engine for every rank when
// the cluster is unsharded), and the cluster-level Run drives all shards.
func (w *World) Run(fn func(r *Rank)) (sim.Time, error) {
	for _, r := range w.ranks {
		r := r
		eng := r.engine()
		r.Proc.Start(eng, eng.Now(), func() {
			fn(r)
			r.FinishedAt = eng.Now()
		})
	}
	w.Cluster.Run()
	var stuck []string
	var finish sim.Time
	for _, r := range w.ranks {
		if !r.Proc.Done() {
			stuck = append(stuck, r.Proc.Name)
		}
		if r.FinishedAt > finish {
			finish = r.FinishedAt
		}
	}
	if len(stuck) > 0 {
		for _, r := range w.ranks {
			r.Proc.Kill()
		}
		return 0, fmt.Errorf("mpi: deadlock, stuck ranks: %v", stuck)
	}
	return finish, nil
}

// matchKey builds the 64-bit MX match: [16 ctx | 16 src | 32 tag].
func matchKey(ctx uint16, src int, tag int) uint64 {
	return uint64(ctx)<<48 | uint64(uint16(src))<<32 | uint64(uint32(tag))
}

func matchMask(src, tag int) uint64 {
	mask := ^uint64(0)
	if src == AnySource {
		mask &^= uint64(0xFFFF) << 32
	}
	if tag == AnyTag {
		mask &^= uint64(0xFFFFFFFF)
	}
	return mask
}

// Request tracks a non-blocking operation.
type Request struct {
	done bool
	rh   *omx.RecvHandle
}

// Done reports completion.
func (q *Request) Done() bool { return q.done }

// Status describes a completed receive.
type Status struct {
	Source int // comm-local source rank
	Tag    int
	Len    int
}

// Status returns the receive status (zero Status for sends).
func (q *Request) Status() Status {
	if q.rh == nil || !q.rh.Done {
		return Status{}
	}
	return Status{
		Source: int(uint16(q.rh.MatchV >> 32)),
		Tag:    int(int32(uint32(q.rh.MatchV))),
		Len:    q.rh.Len,
	}
}

// Isend starts a non-blocking send of size bytes (data may carry real
// payload) to comm rank dst with the given tag.
func (r *Rank) Isend(c *Comm, dst, tag int, data []byte, size int) *Request {
	req := &Request{}
	me := c.RankOf(r.ID)
	addr := r.world.addrs[c.group[dst]]
	r.EP.Isend(addr, matchKey(c.ctx, me, tag), data, size, func() {
		req.done = true
		r.Proc.Wake()
	})
	return req
}

// Irecv starts a non-blocking receive from comm rank src (or AnySource).
func (r *Rank) Irecv(c *Comm, src, tag int, buf []byte, capacity int) *Request {
	req := &Request{}
	req.rh = r.EP.Irecv(matchKey(c.ctx, src, tag), matchMask(src, tag), buf, capacity, func(*omx.RecvHandle) {
		req.done = true
		r.Proc.Wake()
	})
	return req
}

// Wait blocks until every request completes.
func (r *Rank) Wait(reqs ...*Request) {
	r.pollWait(func() bool {
		for _, q := range reqs {
			if !q.done {
				return false
			}
		}
		return true
	})
}

// Send is a blocking send (buffered for eager sizes, synchronous beyond the
// rendezvous threshold, like MPI over MX).
func (r *Rank) Send(c *Comm, dst, tag int, data []byte, size int) {
	r.Wait(r.Isend(c, dst, tag, data, size))
}

// Recv is a blocking receive returning the message status.
func (r *Rank) Recv(c *Comm, src, tag int, buf []byte, capacity int) Status {
	q := r.Irecv(c, src, tag, buf, capacity)
	r.Wait(q)
	return q.Status()
}

// Sendrecv exchanges messages with the two peers simultaneously.
func (r *Rank) Sendrecv(c *Comm, dst, sendTag, sendSize, src, recvTag, recvCap int) Status {
	rq := r.Irecv(c, src, recvTag, nil, recvCap)
	sq := r.Isend(c, dst, sendTag, nil, sendSize)
	r.Wait(rq, sq)
	return rq.Status()
}

// Compute occupies the rank's core for d nanoseconds of application work.
func (r *Rank) Compute(d sim.Time) {
	if d <= 0 {
		return
	}
	r.Proc.Advance(r.core, d)
}

// engine returns the shard engine of the rank's node.
func (r *Rank) engine() *sim.Engine { return r.core.Host().Engine() }

// Now returns the current virtual time as seen by the rank's node.
func (r *Rank) Now() sim.Time { return r.engine().Now() }

// pollWait blocks until cond, busy-polling the core if configured (Open MPI
// spins on MX completion queues).
func (r *Rank) pollWait(cond func() bool) {
	if cond() {
		return
	}
	if r.world.Cluster.P.Lib.BusyPoll {
		r.core.Poll(true)
		defer r.core.Poll(false)
	}
	r.Proc.Wait(cond)
}

// collTag returns the base tag for one collective invocation: a
// per-communicator epoch with room for 4096 per-step sub-tags. MPI requires
// all ranks to invoke collectives in the same order, so per-rank counters
// stay aligned; distinct step tags keep envelopes unambiguous even when
// retransmissions reorder arrivals.
func (r *Rank) collTag(c *Comm) int {
	r.collSeq[c.ctx]++
	return int(r.collSeq[c.ctx]<<12 | 1<<30)
}
