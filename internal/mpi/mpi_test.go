package mpi

import (
	"testing"

	"openmxsim/internal/cluster"
	"openmxsim/internal/nic"
	"openmxsim/internal/sim"
)

// world builds a 2-node testbed with n ranks (n/2 per node).
func world(t *testing.T, n int) *World {
	t.Helper()
	cfg := cluster.Paper()
	cl := cluster.New(cfg)
	if n%cfg.Nodes != 0 {
		t.Fatalf("rank count %d not divisible by %d nodes", n, cfg.Nodes)
	}
	eps := cl.OpenEndpoints(n / cfg.Nodes)
	return NewWorld(cl, eps)
}

func TestPingPong(t *testing.T) {
	w := world(t, 2)
	c := w.CommWorld()
	data := []byte("ping")
	buf := make([]byte, 16)
	_, err := w.Run(func(r *Rank) {
		switch r.ID {
		case 0:
			r.Send(c, 1, 1, data, 0)
			st := r.Recv(c, 1, 2, buf, 0)
			if st.Len != 4 || string(buf[:4]) != "pong" {
				t.Errorf("rank0 got %q len %d", buf[:st.Len], st.Len)
			}
		case 1:
			st := r.Recv(c, 0, 1, buf, 0)
			if st.Source != 0 || st.Tag != 1 || string(buf[:st.Len]) != "ping" {
				t.Errorf("rank1 status %+v data %q", st, buf[:st.Len])
			}
			r.Send(c, 0, 2, []byte("pong"), 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceRecv(t *testing.T) {
	w := world(t, 4)
	c := w.CommWorld()
	got := map[int]bool{}
	_, err := w.Run(func(r *Rank) {
		if r.ID == 0 {
			for i := 0; i < 3; i++ {
				st := r.Recv(c, AnySource, 5, nil, 64)
				got[st.Source] = true
			}
			return
		}
		r.Send(c, 0, 5, nil, 8)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("received from %d distinct sources, want 3", len(got))
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	w := world(t, 2)
	var at sim.Time
	_, err := w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Compute(5 * sim.Millisecond)
			at = r.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if at != 5*sim.Millisecond {
		t.Fatalf("compute ended at %d", at)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	w := world(t, 8)
	c := w.CommWorld()
	enter := make([]sim.Time, 8)
	exit := make([]sim.Time, 8)
	_, err := w.Run(func(r *Rank) {
		// Stagger entries: rank i computes i*100us first.
		r.Compute(sim.Time(r.ID) * 100 * sim.Microsecond)
		enter[r.ID] = r.Now()
		r.Barrier(c)
		exit[r.ID] = r.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	var maxEnter sim.Time
	for _, e := range enter {
		if e > maxEnter {
			maxEnter = e
		}
	}
	for i, x := range exit {
		if x < maxEnter {
			t.Errorf("rank %d left the barrier at %d before last entry %d", i, x, maxEnter)
		}
	}
}

func TestBcastReachesAll(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		w := world(t, n)
		c := w.CommWorld()
		done := 0
		_, err := w.Run(func(r *Rank) {
			r.Bcast(c, 2%n, 4096)
			done++
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if done != n {
			t.Fatalf("n=%d: %d ranks finished", n, done)
		}
	}
}

func TestReduceCompletes(t *testing.T) {
	for _, n := range []int{2, 6, 8, 16} {
		w := world(t, n)
		c := w.CommWorld()
		_, err := w.Run(func(r *Rank) {
			r.Reduce(c, 0, 8192)
			r.Reduce(c, n-1, 64) // different root back-to-back
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestAllreducePowersAndNot(t *testing.T) {
	for _, n := range []int{2, 4, 6, 8, 16} {
		w := world(t, n)
		c := w.CommWorld()
		exit := make([]sim.Time, n)
		enter := make([]sim.Time, n)
		_, err := w.Run(func(r *Rank) {
			r.Compute(sim.Time(r.ID+1) * 50 * sim.Microsecond)
			enter[r.ID] = r.Now()
			r.Allreduce(c, 1024)
			exit[r.ID] = r.Now()
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		var maxEnter sim.Time
		for _, e := range enter {
			if e > maxEnter {
				maxEnter = e
			}
		}
		for i, x := range exit {
			if x < maxEnter {
				t.Errorf("n=%d rank %d exited allreduce before all entered", n, i)
			}
		}
	}
}

func TestAllgatherAndGatherScatter(t *testing.T) {
	w := world(t, 8)
	c := w.CommWorld()
	_, err := w.Run(func(r *Rank) {
		r.Allgather(c, 2048)
		r.Gather(c, 3, 1024)
		r.Scatter(c, 3, 1024)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallMovesExpectedBytes(t *testing.T) {
	w := world(t, 8)
	c := w.CommWorld()
	const block = 10_000
	_, err := w.Run(func(r *Rank) {
		r.Alltoall(c, block)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Inter-node traffic: ranks 0-3 on node 0, 4-7 on node 1; each rank
	// sends block bytes to each of 4 remote ranks => 16 pairs per
	// direction.
	sent := w.Cluster.NICs[0].Stats.BytesSent
	wantMin := uint64(16 * block)
	if sent < wantMin {
		t.Errorf("node0 sent %d bytes, want >= %d", sent, wantMin)
	}
}

func TestAlltoallvAsymmetricSizes(t *testing.T) {
	w := world(t, 4)
	c := w.CommWorld()
	sizes := func(me int) []int {
		s := make([]int, 4)
		for d := range s {
			s[d] = 1000 * (me + 1) * (d + 1)
		}
		return s
	}
	_, err := w.Run(func(r *Rank) {
		me := c.RankOf(r.ID)
		recv := make([]int, 4)
		for src := 0; src < 4; src++ {
			recv[src] = 1000 * (src + 1) * (me + 1)
		}
		r.Alltoallv(c, sizes(me), recv)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSubCommunicator(t *testing.T) {
	w := world(t, 8)
	rows := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
	var comms []*Comm
	for _, g := range rows {
		comms = append(comms, w.Sub(g))
	}
	_, err := w.Run(func(r *Rank) {
		c := comms[r.ID/4]
		r.Allreduce(c, 512)
		r.Barrier(c)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	w := world(t, 2)
	c := w.CommWorld()
	_, err := w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Recv(c, 1, 9, nil, 64) // rank 1 never sends
		}
	})
	if err == nil {
		t.Fatal("deadlock not reported")
	}
}

func TestLargeMessagePtToPt(t *testing.T) {
	w := world(t, 2)
	c := w.CommWorld()
	const size = 1 << 20
	var st Status
	elapsed, err := w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(c, 1, 1, nil, size)
		} else {
			st = r.Recv(c, 0, 1, nil, size)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Len != size {
		t.Fatalf("received %d bytes, want %d", st.Len, size)
	}
	if elapsed <= 0 {
		t.Fatal("zero elapsed time for 1MiB transfer")
	}
}

func TestManyRanksManyMessages(t *testing.T) {
	w := world(t, 16)
	c := w.CommWorld()
	_, err := w.Run(func(r *Rank) {
		for iter := 0; iter < 3; iter++ {
			r.Alltoall(c, 5000)
			r.Allreduce(c, 64)
			r.Barrier(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorldDeterminism(t *testing.T) {
	run := func() sim.Time {
		cfg := cluster.Paper()
		cfg.Strategy = nic.StrategyOpenMX
		cl := cluster.New(cfg)
		w := NewWorld(cl, cl.OpenEndpoints(4))
		c := w.CommWorld()
		elapsed, err := w.Run(func(r *Rank) {
			r.Alltoall(c, 40_000)
			r.Allreduce(c, 1024)
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("elapsed differs: %d vs %d", a, b)
	}
}
