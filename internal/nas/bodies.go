package nas

import (
	"openmxsim/internal/mpi"
	"openmxsim/internal/sim"
)

const (
	ms = sim.Millisecond
	us = sim.Microsecond
)

// jitterFor gives each rank a private RNG so compute phases carry ~0.2%
// deterministic noise (real ranks are never in perfect lockstep).
func jitterFor(w *mpi.World, rank int) *sim.RNG {
	return w.Cluster.RNG.Derive(0x4A5 + uint64(rank))
}

func compute(r *mpi.Rank, rng *sim.RNG, d sim.Time) {
	if d <= 0 {
		return
	}
	r.Compute(rng.Jitter(d, d/500))
}

// pmod is the always-positive modulo (Go's % keeps the dividend's sign).
func pmod(a, n int) int {
	return ((a % n) + n) % n
}

// ---- IS: integer bucket sort. Dominated by one large Alltoallv of the
// keys per iteration — the paper's headline benchmark (7-8 % improvement
// with Open-MX coalescing).

type isParams struct {
	keys        int
	iters       int
	bucketBytes int
	computeIter sim.Time // per rank, 16 ranks
}

var isClasses = map[byte]isParams{
	'S': {1 << 16, 10, 2048, 350 * us},
	'W': {1 << 20, 10, 4096, 6 * ms},
	'A': {1 << 23, 10, 4096, 450 * ms},
	'B': {1 << 25, 10, 4096, 1850 * ms},
	'C': {1 << 27, 10, 4096, 2590 * ms},
}

func buildIS(class byte, ranks int) *Workload {
	p := isClasses[class]
	return &Workload{
		Name: "is", Class: class, Ranks: ranks, MemOK: true,
		Setup: worldOnly,
		Body: func(r *mpi.Rank, w *mpi.World, cm *Comms) {
			n := cm.World.Size()
			rng := jitterFor(w, r.ID)
			perPair := p.keys * 4 / (n * n)
			sizes := make([]int, n)
			for i := range sizes {
				sizes[i] = perPair
			}
			comp := scalePerRank(p.computeIter, n)
			// One untimed warmup iteration plus the timed iterations,
			// as in NPB IS.
			for iter := 0; iter <= p.iters; iter++ {
				compute(r, rng, comp)
				r.Allreduce(cm.World, p.bucketBytes)
				r.Alltoall(cm.World, 4)
				r.Alltoallv(cm.World, sizes, sizes)
			}
		},
	}
}

// ---- FT: 3D FFT. One full-volume transpose (Alltoall) per iteration.

type ftParams struct {
	points      int
	iters       int
	computeIter sim.Time
	memOK       bool
}

var ftClasses = map[byte]ftParams{
	'S': {1 << 18, 6, 2 * ms, true},
	'W': {1 << 19, 6, 4 * ms, true},
	'A': {1 << 23, 6, 260 * ms, true},
	'B': {1 << 25, 20, 810 * ms, true},
	// Class C needs more memory than the paper's nodes had: Table IV
	// reports "Not enough memory".
	'C': {1 << 27, 20, 4200 * ms, false},
}

func buildFT(class byte, ranks int) *Workload {
	p := ftClasses[class]
	return &Workload{
		Name: "ft", Class: class, Ranks: ranks, MemOK: p.memOK,
		Setup: worldOnly,
		Body: func(r *mpi.Rank, w *mpi.World, cm *Comms) {
			n := cm.World.Size()
			rng := jitterFor(w, r.ID)
			totalBytes := p.points * 16 // complex128
			block := totalBytes / (n * n)
			comp := scalePerRank(p.computeIter, n)
			compute(r, rng, comp/2) // setup + initial FFT
			for iter := 0; iter < p.iters; iter++ {
				compute(r, rng, comp)
				r.Alltoall(cm.World, block)
			}
			r.Allreduce(cm.World, 16) // checksum
		},
	}
}

// ---- CG: conjugate gradient. Transpose exchanges plus latency-sensitive
// dot-product allreduces every inner iteration.

type cgParams struct {
	na           int
	outer, inner int
	computeInner sim.Time
}

var cgClasses = map[byte]cgParams{
	'S': {1400, 15, 25, 30 * us},
	'W': {7000, 15, 25, 150 * us},
	'A': {14000, 15, 25, 2 * ms},
	'B': {75000, 75, 25, 19 * ms},
	'C': {150000, 75, 25, 44700 * us},
}

func buildCG(class byte, ranks int) *Workload {
	p := cgClasses[class]
	return &Workload{
		Name: "cg", Class: class, Ranks: ranks, MemOK: true,
		Setup: gridSetup,
		Body: func(r *mpi.Rank, w *mpi.World, cm *Comms) {
			n := cm.World.Size()
			side := cm.GridSide
			rng := jitterFor(w, r.ID)
			me := r.ID
			row, col := me/side, me%side
			transpose := col*side + row // partner across the diagonal
			exch := p.na * 8 / side
			comp := scalePerRank(p.computeInner, n)
			rowComm := cm.Rows[row]
			tag := 1 << 27
			for o := 0; o < p.outer; o++ {
				for i := 0; i < p.inner; i++ {
					compute(r, rng, comp)
					if transpose != me {
						r.Sendrecv(cm.World, cm.World.RankOf(transpose), tag, exch,
							cm.World.RankOf(transpose), tag, exch)
						tag++
					}
					r.Allreduce(rowComm, 8) // rho
					r.Allreduce(rowComm, 8) // alpha/beta
				}
				r.Allreduce(rowComm, 8) // residual norm
			}
		},
	}
}

// ---- MG: multigrid V-cycles with 3D ghost-face exchanges whose sizes
// shrink with each level.

type mgParams struct {
	size        int // cubic grid edge
	iters       int
	computeIter sim.Time
}

var mgClasses = map[byte]mgParams{
	'S': {32, 4, 500 * us},
	'W': {128, 40, 5 * ms},
	'A': {256, 4, 330 * ms},
	'B': {256, 20, 330 * ms},
	'C': {512, 20, 1550 * ms},
}

func buildMG(class byte, ranks int) *Workload {
	p := mgClasses[class]
	return &Workload{
		Name: "mg", Class: class, Ranks: ranks, MemOK: true,
		Setup: worldOnly,
		Body: func(r *mpi.Rank, w *mpi.World, cm *Comms) {
			n := cm.World.Size()
			rng := jitterFor(w, r.ID)
			me := r.ID
			comp := scalePerRank(p.computeIter, n)
			// 3D neighbours on a 1D-folded torus (approximates the NPB
			// processor grid at 16 ranks: 4x2x2).
			nb := [6]int{
				pmod(me+1, n), pmod(me-1, n),
				pmod(me+4, n), pmod(me-4, n),
				pmod(me+8, n), pmod(me-8, n),
			}
			levels := 0
			for s := p.size; s >= 4; s >>= 1 {
				levels++
			}
			tag := 1 << 27
			for iter := 0; iter < p.iters; iter++ {
				for lvl := levels; lvl >= 1; lvl-- {
					s := p.size >> (levels - lvl)
					face := s * s * 8 / 8 // face bytes per neighbour pair
					if face < 64 {
						face = 64
					}
					// Compute share proportional to the level volume.
					compute(r, rng, comp*sim.Time(lvl*lvl)/sim.Time(levels*levels*levels/4+1))
					for d := 0; d < 3; d++ {
						r.Sendrecv(cm.World, nb[2*d], tag, face, nb[2*d+1], tag, face)
						tag++
						r.Sendrecv(cm.World, nb[2*d+1], tag, face, nb[2*d], tag, face)
						tag++
					}
				}
				r.Allreduce(cm.World, 8) // norm
			}
		},
	}
}

// ---- EP: embarrassingly parallel; almost pure compute.

type epParams struct {
	computeTotal sim.Time
}

var epClasses = map[byte]epParams{
	'S': {50 * ms},
	'W': {400 * ms},
	'A': {1950 * ms},
	'B': {7800 * ms},
	'C': {31150 * ms},
}

func buildEP(class byte, ranks int) *Workload {
	p := epClasses[class]
	return &Workload{
		Name: "ep", Class: class, Ranks: ranks, MemOK: true,
		Setup: worldOnly,
		Body: func(r *mpi.Rank, w *mpi.World, cm *Comms) {
			n := cm.World.Size()
			rng := jitterFor(w, r.ID)
			compute(r, rng, scalePerRank(p.computeTotal, n))
			for i := 0; i < 3; i++ {
				r.Allreduce(cm.World, 72) // sx, sy, counts
			}
		},
	}
}

// ---- LU: SSOR with 2D wavefront pipelines: many small pipelined messages
// per sweep, the latency-sensitive pattern of the suite.

type luParams struct {
	nz           int
	iters        int
	planesPerMsg int
	computeBlock sim.Time // per pipeline block
	faceBytes    int      // per-plane face bytes per neighbour
}

var luClasses = map[byte]luParams{
	'S': {12, 50, 3, 30 * us, 240},
	'W': {33, 300, 3, 60 * us, 660},
	'A': {64, 250, 9, 2500 * us, 1280},
	'B': {102, 250, 9, 10 * ms, 2040},
	'C': {162, 250, 9, 16500 * us, 3240},
}

func buildLU(class byte, ranks int) *Workload {
	p := luClasses[class]
	return &Workload{
		Name: "lu", Class: class, Ranks: ranks, MemOK: true,
		Setup: gridSetup,
		Body: func(r *mpi.Rank, w *mpi.World, cm *Comms) {
			n := cm.World.Size()
			side := cm.GridSide
			rng := jitterFor(w, r.ID)
			me := r.ID
			row, col := me/side, me%side
			nblocks := (p.nz + p.planesPerMsg - 1) / p.planesPerMsg
			blockBytes := p.planesPerMsg * p.faceBytes * 4 / side
			comp := scalePerRank(p.computeBlock, n)
			tagBase := 1 << 27

			north, south := me-side, me+side
			west, east := me-1, me+1

			for iter := 0; iter < p.iters; iter++ {
				// Lower-triangular sweep: wavefront from (0,0).
				for b := 0; b < nblocks; b++ {
					tag := tagBase + (iter*2*nblocks+b)*4
					if row > 0 {
						r.Recv(cm.World, north, tag, nil, blockBytes)
					}
					if col > 0 {
						r.Recv(cm.World, west, tag+1, nil, blockBytes)
					}
					compute(r, rng, comp)
					if row < side-1 {
						r.Send(cm.World, south, tag, nil, blockBytes)
					}
					if col < side-1 {
						r.Send(cm.World, east, tag+1, nil, blockBytes)
					}
				}
				// Upper-triangular sweep: wavefront from (side-1, side-1).
				for b := 0; b < nblocks; b++ {
					tag := tagBase + ((iter*2+1)*nblocks+b)*4
					if row < side-1 {
						r.Recv(cm.World, south, tag+2, nil, blockBytes)
					}
					if col < side-1 {
						r.Recv(cm.World, east, tag+3, nil, blockBytes)
					}
					compute(r, rng, comp)
					if row > 0 {
						r.Send(cm.World, north, tag+2, nil, blockBytes)
					}
					if col > 0 {
						r.Send(cm.World, west, tag+3, nil, blockBytes)
					}
				}
				r.Allreduce(cm.World, 40) // residual norms
			}
		},
	}
}

// ---- BT and SP: ADI solvers on a square process grid, face exchanges
// along rows and columns each iteration; strongly compute-dominated.

type adiParams struct {
	iters       int
	faceBytes   int
	computeIter sim.Time
}

var btClasses = map[byte]adiParams{
	'S': {60, 2000, 500 * us},
	'W': {200, 8000, 3 * ms},
	'A': {200, 40000, 170 * ms},
	'B': {200, 100000, 560 * ms},
	'C': {200, 200000, 1349 * ms},
}

var spClasses = map[byte]adiParams{
	'S': {100, 1500, 200 * us},
	'W': {400, 6000, 1500 * us},
	'A': {400, 30000, 85 * ms},
	'B': {400, 80000, 280 * ms},
	'C': {400, 120000, 1368 * ms},
}

func buildBT(class byte, ranks int) *Workload { return buildADI("bt", btClasses[class], class, ranks) }
func buildSP(class byte, ranks int) *Workload { return buildADI("sp", spClasses[class], class, ranks) }

func buildADI(name string, p adiParams, class byte, ranks int) *Workload {
	return &Workload{
		Name: name, Class: class, Ranks: ranks, MemOK: true,
		Setup: gridSetup,
		Body: func(r *mpi.Rank, w *mpi.World, cm *Comms) {
			n := cm.World.Size()
			side := cm.GridSide
			rng := jitterFor(w, r.ID)
			me := r.ID
			row, col := me/side, me%side
			rowComm, colComm := cm.Rows[row], cm.Cols[col]
			rIdx, cIdx := rowComm.RankOf(me), colComm.RankOf(me)
			comp := scalePerRank(p.computeIter, n)
			face := p.faceBytes * 4 / side
			tag := 1 << 27
			for iter := 0; iter < p.iters; iter++ {
				// x-sweep along the row, forward and backward.
				compute(r, rng, comp/3)
				r.Sendrecv(rowComm, (rIdx+1)%side, tag, face, (rIdx-1+side)%side, tag, face)
				r.Sendrecv(rowComm, (rIdx-1+side)%side, tag+1, face, (rIdx+1)%side, tag+1, face)
				// y-sweep along the column.
				compute(r, rng, comp/3)
				r.Sendrecv(colComm, (cIdx+1)%side, tag+2, face, (cIdx-1+side)%side, tag+2, face)
				r.Sendrecv(colComm, (cIdx-1+side)%side, tag+3, face, (cIdx+1)%side, tag+3, face)
				// z-sweep is node-local.
				compute(r, rng, comp/3)
				tag += 4
			}
			r.Allreduce(cm.World, 40)
		},
	}
}
