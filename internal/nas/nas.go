// Package nas models the communication behaviour of the NAS Parallel
// Benchmarks (NPB 2/3 MPI versions) used in the paper's application
// evaluation: IS, FT, CG, MG, EP, LU, BT and SP, with class-accurate
// message sizes and counts over the mini-MPI layer, and compute phases
// represented as calibrated virtual-time costs.
//
// Only the *default-strategy* execution times are calibrated (one constant
// per benchmark/class); every delta across coalescing strategies — the
// quantity the paper reports — emerges from the interrupt model.
package nas

import (
	"fmt"
	"sort"

	"openmxsim/internal/mpi"
	"openmxsim/internal/sim"
)

// Comms is the communicator set a benchmark body uses.
type Comms struct {
	World *mpi.Comm
	// Rows and Cols partition a square process grid (CG, LU, BT, SP).
	Rows []*mpi.Comm
	Cols []*mpi.Comm
	// GridSide is the square grid dimension when used.
	GridSide int
}

// Workload is a runnable benchmark instance.
type Workload struct {
	Name  string
	Class byte
	// Ranks the workload was built for.
	Ranks int
	// MemOK is false when the configuration exceeds the paper platform's
	// memory (ft.C: "Not enough memory").
	MemOK bool
	// Setup builds communicators; Body is the SPMD program.
	Setup func(w *mpi.World) *Comms
	Body  func(r *mpi.Rank, w *mpi.World, cm *Comms)
}

// FullName renders e.g. "is.C.16".
func (wl *Workload) FullName() string {
	return fmt.Sprintf("%s.%c.%d", wl.Name, wl.Class, wl.Ranks)
}

// Names lists the supported benchmarks in the paper's table order.
func Names() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Classes lists the supported classes for a benchmark.
func Classes(name string) []byte {
	b, ok := builders[name]
	if !ok {
		return nil
	}
	cs := make([]byte, 0, len(b.classes))
	for c := range b.classes {
		cs = append(cs, c)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	return cs
}

// Get builds a workload for the given benchmark, class, and rank count.
func Get(name string, class byte, ranks int) (*Workload, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("nas: unknown benchmark %q (have %v)", name, Names())
	}
	if _, ok := b.classes[class]; !ok {
		return nil, fmt.Errorf("nas: %s has no class %c", name, class)
	}
	if err := b.checkRanks(ranks); err != nil {
		return nil, err
	}
	return b.build(class, ranks), nil
}

type builder struct {
	classes    map[byte]bool
	checkRanks func(int) error
	build      func(class byte, ranks int) *Workload
}

var builders = map[string]builder{
	"is": {classMap("SWABC"), anyEven, buildIS},
	"ft": {classMap("SWABC"), anyEven, buildFT},
	"cg": {classMap("SWABC"), square, buildCG},
	"mg": {classMap("SWABC"), pow2Ranks, buildMG},
	"ep": {classMap("SWABC"), anyEven, buildEP},
	"lu": {classMap("SWABC"), square, buildLU},
	"bt": {classMap("SWABC"), square, buildBT},
	"sp": {classMap("SWABC"), square, buildSP},
}

func classMap(s string) map[byte]bool {
	m := make(map[byte]bool, len(s))
	for i := 0; i < len(s); i++ {
		m[s[i]] = true
	}
	return m
}

func anyEven(n int) error {
	if n < 2 {
		return fmt.Errorf("nas: need at least 2 ranks, got %d", n)
	}
	return nil
}

func square(n int) error {
	s := isqrt(n)
	if s*s != n {
		return fmt.Errorf("nas: need a square rank count, got %d", n)
	}
	return nil
}

func pow2Ranks(n int) error {
	if n <= 0 || n&(n-1) != 0 {
		return fmt.Errorf("nas: need a power-of-two rank count, got %d", n)
	}
	return nil
}

func isqrt(n int) int {
	s := 0
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

// worldOnly is the Setup for benchmarks without sub-communicators.
func worldOnly(w *mpi.World) *Comms {
	return &Comms{World: w.CommWorld()}
}

// gridSetup builds row and column communicators over a square grid laid
// out row-major across the ranks.
func gridSetup(w *mpi.World) *Comms {
	n := w.Size()
	side := isqrt(n)
	cm := &Comms{World: w.CommWorld(), GridSide: side}
	for r := 0; r < side; r++ {
		g := make([]int, side)
		for c := 0; c < side; c++ {
			g[c] = r*side + c
		}
		cm.Rows = append(cm.Rows, w.Sub(g))
	}
	for c := 0; c < side; c++ {
		g := make([]int, side)
		for r := 0; r < side; r++ {
			g[r] = r*side + c
		}
		cm.Cols = append(cm.Cols, w.Sub(g))
	}
	return cm
}

// scalePerRank converts a total aggregate compute budget into a per-rank
// per-iteration cost for the given rank count, relative to the 16-rank
// calibration.
func scalePerRank(perIter16 sim.Time, ranks int) sim.Time {
	return perIter16 * 16 / sim.Time(ranks)
}
