package nas

import (
	"testing"

	"openmxsim/internal/cluster"
	"openmxsim/internal/nic"
	"openmxsim/internal/sim"
)

func smallCfg() cluster.Config {
	cfg := cluster.Paper()
	return cfg
}

func TestAllBenchmarksClassSComplete(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			wl, err := Get(name, 'S', 4)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(smallCfg(), wl)
			if err != nil {
				t.Fatal(err)
			}
			if res.Elapsed <= 0 {
				t.Fatalf("%s elapsed %d", name, res.Elapsed)
			}
			if name != "ep" && res.PacketsDelivered == 0 {
				t.Errorf("%s moved no packets", name)
			}
		})
	}
}

func TestSixteenRankISClassS(t *testing.T) {
	wl, err := Get("is", 'S', 16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(smallCfg(), wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Interrupts == 0 {
		t.Error("no interrupts recorded")
	}
}

func TestGetValidation(t *testing.T) {
	if _, err := Get("nope", 'S', 4); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Get("is", 'Z', 4); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := Get("bt", 'S', 6); err == nil {
		t.Error("non-square rank count accepted for bt")
	}
	if _, err := Get("mg", 'S', 6); err == nil {
		t.Error("non-power-of-two rank count accepted for mg")
	}
}

func TestFtClassCReportsMemory(t *testing.T) {
	wl, err := Get("ft", 'C', 16)
	if err != nil {
		t.Fatal(err)
	}
	if wl.MemOK {
		t.Fatal("ft.C should be marked as exceeding platform memory")
	}
	if _, err := Run(smallCfg(), wl); err == nil {
		t.Fatal("running ft.C should fail like the paper's platform")
	}
}

func TestStrategiesChangeInterruptCount(t *testing.T) {
	wl, err := Get("is", 'S', 8)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[nic.Strategy]uint64{}
	for _, s := range []nic.Strategy{nic.StrategyDisabled, nic.StrategyTimeout, nic.StrategyOpenMX} {
		cfg := smallCfg()
		cfg.Strategy = s
		res, err := Run(cfg, wl)
		if err != nil {
			t.Fatal(err)
		}
		counts[s] = res.Interrupts
	}
	if counts[nic.StrategyDisabled] <= counts[nic.StrategyTimeout] {
		t.Errorf("disabled (%d) should raise more interrupts than timeout (%d)",
			counts[nic.StrategyDisabled], counts[nic.StrategyTimeout])
	}
	if counts[nic.StrategyOpenMX] > counts[nic.StrategyDisabled] {
		t.Errorf("openmx (%d) raised more interrupts than disabled (%d)",
			counts[nic.StrategyOpenMX], counts[nic.StrategyDisabled])
	}
}

func TestRunDeterminism(t *testing.T) {
	wl, err := Get("cg", 'S', 4)
	if err != nil {
		t.Fatal(err)
	}
	run := func() sim.Time {
		res, err := Run(smallCfg(), wl)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("elapsed differs: %d vs %d", a, b)
	}
}

func TestWorkloadNames(t *testing.T) {
	names := Names()
	if len(names) != 8 {
		t.Fatalf("have %d benchmarks, want 8: %v", len(names), names)
	}
	wl, _ := Get("is", 'C', 16)
	if wl.FullName() != "is.C.16" {
		t.Errorf("FullName = %q", wl.FullName())
	}
	if got := Classes("is"); len(got) != 5 {
		t.Errorf("is classes = %v", got)
	}
}
