package nas

import (
	"fmt"

	"openmxsim/internal/cluster"
	"openmxsim/internal/mpi"
	"openmxsim/internal/nic"
	"openmxsim/internal/omx"
	"openmxsim/internal/sim"
)

// Result captures one benchmark execution.
type Result struct {
	Workload string
	// Elapsed is the benchmark execution time (max over ranks).
	Elapsed sim.Time
	// Interrupts raised across all NICs during the run (Table V).
	Interrupts uint64
	// Wakeups counts interrupts that hit sleeping cores.
	Wakeups uint64
	// PacketsDelivered across the fabric.
	PacketsDelivered uint64
	// NIC and stack statistics per node.
	NICStats   []nic.Stats
	StackStats []omx.Stats
}

// Run executes a workload on a freshly built cluster.
func Run(cfg cluster.Config, wl *Workload) (*Result, error) {
	if !wl.MemOK {
		return nil, fmt.Errorf("nas: %s: not enough memory on the paper platform", wl.FullName())
	}
	if wl.Ranks%cfg.Nodes != 0 {
		return nil, fmt.Errorf("nas: %d ranks do not divide across %d nodes", wl.Ranks, cfg.Nodes)
	}
	cl := cluster.New(cfg)
	eps := cl.OpenEndpoints(wl.Ranks / cfg.Nodes)
	w := mpi.NewWorld(cl, eps)
	cm := wl.Setup(w)
	elapsed, err := w.Run(func(r *mpi.Rank) { wl.Body(r, w, cm) })
	if err != nil {
		return nil, fmt.Errorf("nas: %s: %w", wl.FullName(), err)
	}
	res := &Result{
		Workload:         wl.FullName(),
		Elapsed:          elapsed,
		Interrupts:       cl.Interrupts(),
		PacketsDelivered: cl.Switch.FramesDelivered(),
	}
	for _, h := range cl.Hosts {
		res.Wakeups += h.Stats().Wakeups
	}
	for i, n := range cl.NICs {
		res.NICStats = append(res.NICStats, n.Stats)
		res.StackStats = append(res.StackStats, cl.Stacks[i].Stats)
	}
	return res, nil
}
