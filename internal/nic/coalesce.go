package nic

import (
	"fmt"
	"strings"

	"openmxsim/internal/host"
	"openmxsim/internal/params"
	"openmxsim/internal/sim"
	"openmxsim/internal/trace"
)

// Strategy enumerates the interrupt coalescing strategies under study.
type Strategy int

const (
	// StrategyDisabled raises one interrupt per packet (coalescing off,
	// the "Disabled" column of the paper's tables).
	StrategyDisabled Strategy = iota
	// StrategyTimeout is classic timeout-based coalescing (the "Default"
	// column at 75 us, and the Fig. 4 sweep).
	StrategyTimeout
	// StrategyOpenMX is the paper's Algorithm 1: interrupt immediately
	// when a latency-sensitive (marked) packet's DMA completes; other
	// packets obey the timeout.
	StrategyOpenMX
	// StrategyStream is the paper's Algorithm 2: like OpenMX, but a marked
	// completion with other DMAs pending defers the interrupt until the
	// NIC goes quiet, coalescing bursts of small messages.
	StrategyStream
	// StrategyAdaptive is the Section VI future-work extension: the
	// timeout adapts to the observed packet rate.
	StrategyAdaptive
	// StrategyFeedback is the closed-loop tuner extension: the firmware
	// measures its own interrupt rate and delivery latency over sliding
	// windows and walks the delay toward a goal supplied by the tuner
	// (internal/tune). Where StrategyAdaptive maps packet rate onto a
	// delay by threshold, feedback goal-seeks: it converges to whatever
	// delay holds the interrupt rate at the target without blowing the
	// latency budget.
	StrategyFeedback
)

var strategyNames = [...]string{"disabled", "timeout", "openmx", "stream", "adaptive", "feedback"}

func (s Strategy) String() string {
	if s >= 0 && int(s) < len(strategyNames) {
		return strategyNames[s]
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Known reports whether s is one of the defined strategies.
func (s Strategy) Known() bool { return s >= 0 && int(s) < len(strategyNames) }

// KnownStrategies lists every defined strategy name, for error messages
// ("want one of ...") and CLI usage strings.
func KnownStrategies() string { return strings.Join(strategyNames[:], ", ") }

// ParseStrategy converts a name into a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	for i, n := range strategyNames {
		if n == name {
			return Strategy(i), nil
		}
	}
	return 0, fmt.Errorf("nic: unknown strategy %q", name)
}

// coalescer is the per-queue firmware decision logic.
type coalescer interface {
	Name() string
	// inspectsMarkers reports whether the firmware reads the
	// latency-sensitive flag (only the paper's modified firmwares do).
	inspectsMarkers() bool
	// onDMAComplete runs when a packet's DMA finishes; pending is the
	// number of other frames accepted but not yet DMA-complete.
	onDMAComplete(d *RxDesc, pending int)
	// onBacklog runs when a poll cycle ends with packets still queued
	// (e.g. they arrived after the final ring check).
	onBacklog()
	// currentDelay reports the instantaneous coalescing delay (0 when
	// coalescing is disabled) — a telemetry gauge, never a control input.
	currentDelay() sim.Time
}

func newCoalescer(cfg Config, q *rxQueue) coalescer {
	switch cfg.Strategy {
	case StrategyDisabled:
		return &disabledCoalescer{q: q}
	case StrategyTimeout:
		c := &timeoutCoalescer{q: q, delay: cfg.Delay, maxFrames: cfg.MaxFrames}
		c.bindTimer()
		return c
	case StrategyOpenMX:
		c := &omxCoalescer{timeoutCoalescer{q: q, delay: cfg.Delay, maxFrames: cfg.MaxFrames}}
		c.bindTimer()
		return c
	case StrategyStream:
		c := &streamCoalescer{omxCoalescer{timeoutCoalescer{q: q, delay: cfg.Delay, maxFrames: cfg.MaxFrames}}, false}
		c.bindTimer()
		return c
	case StrategyAdaptive:
		c := &adaptiveCoalescer{timeoutCoalescer: timeoutCoalescer{q: q, delay: cfg.Delay, maxFrames: cfg.MaxFrames}}
		p := q.nic.p.NIC
		if c.delay < p.AdaptiveMin {
			c.delay = p.AdaptiveMin
		}
		c.bindTimer()
		return c
	case StrategyFeedback:
		p := q.nic.p.NIC
		c := &feedbackCoalescer{
			timeoutCoalescer: timeoutCoalescer{q: q, delay: cfg.Delay, maxFrames: cfg.MaxFrames},
			goal:             cfg.Feedback.withDefaults(p),
			step:             p.FeedbackStep,
			min:              p.AdaptiveMin,
			max:              p.AdaptiveMax,
			window:           p.FeedbackWindow,
		}
		if c.delay < c.min {
			c.delay = c.min
		}
		if c.delay > c.max {
			c.delay = c.max
		}
		// The feedback strategy binds its own timer callback so timer
		// fires are observed (counted and latency-sampled), which the
		// embedded timeoutCoalescer's non-virtual fireTimeout would skip.
		c.timerFn = func() {
			c.timer = nil
			c.fireObserved(false)
		}
		return c
	default:
		panic(fmt.Sprintf("nic: unknown strategy %d", cfg.Strategy))
	}
}

// rxQueue is one receive queue: completion ring + mask + strategy. The poll
// callbacks are bound once at NIC construction; pollCore/polled/cur carry
// the state of the single in-flight NAPI cycle (the mask guarantees at most
// one per queue).
type rxQueue struct {
	nic       *NIC
	idx       int
	completed []*RxDesc
	masked    bool
	coal      coalescer

	pollCore    *host.Core
	polled      int
	cur         *RxDesc // descriptor currently at the driver
	msiFn       func()
	pollStartFn func(any)
	pollEndFn   func(any)
	contFn      func()
}

// disabledCoalescer: interrupt per packet.
type disabledCoalescer struct{ q *rxQueue }

func (c *disabledCoalescer) Name() string          { return "disabled" }
func (c *disabledCoalescer) inspectsMarkers() bool { return false }

//omxlint:hotpath
func (c *disabledCoalescer) onDMAComplete(d *RxDesc, pending int) {
	c.q.nic.requestInterrupt(c.q, causeImmediate)
}

func (c *disabledCoalescer) onBacklog() {
	c.q.nic.requestInterrupt(c.q, causeImmediate)
}

func (c *disabledCoalescer) currentDelay() sim.Time { return 0 }

// timeoutCoalescer: classic delay (+ optional max-frames) coalescing. The
// timer is armed by the first completion after the previous interrupt, so an
// isolated packet waits the full delay — the latency cost the paper
// measures in Fig. 5.
type timeoutCoalescer struct {
	q         *rxQueue
	delay     sim.Time
	maxFrames int
	timer     *sim.Event
	count     int
	timerFn   func() // bound once so arming the timer never allocates
}

// bindTimer creates the coalescing timer callback once; fireTimeout is
// shared by every strategy that embeds the timeout behaviour.
func (c *timeoutCoalescer) bindTimer() {
	c.timerFn = func() {
		c.timer = nil
		c.fireTimeout()
	}
}

func (c *timeoutCoalescer) Name() string {
	return fmt.Sprintf("timeout(%dus)", c.delay/sim.Microsecond)
}
func (c *timeoutCoalescer) inspectsMarkers() bool { return false }

//omxlint:hotpath
func (c *timeoutCoalescer) onDMAComplete(d *RxDesc, pending int) {
	c.count++
	if c.maxFrames > 0 && c.count >= c.maxFrames {
		c.fire()
		return
	}
	c.arm()
}

func (c *timeoutCoalescer) onBacklog() { c.arm() }

// currentDelay is promoted through embedding to every timeout-derived
// strategy, so the adaptive and feedback delays report their live value.
func (c *timeoutCoalescer) currentDelay() sim.Time { return c.delay }

//omxlint:hotpath
func (c *timeoutCoalescer) arm() {
	if c.timer != nil {
		return
	}
	c.timer = c.q.nic.eng.After(c.delay, c.timerFn)
}

//omxlint:hotpath
func (c *timeoutCoalescer) fireTimeout() {
	c.count = 0
	if len(c.q.completed) == 0 {
		return
	}
	c.q.nic.requestInterrupt(c.q, causeTimeout)
}

//omxlint:hotpath
func (c *timeoutCoalescer) fire() {
	if c.timer != nil {
		c.timer.Cancel()
		c.timer = nil
	}
	c.count = 0
	c.q.nic.requestInterrupt(c.q, causeTimeout)
}

// omxCoalescer implements the paper's Algorithm 1 on top of the timeout
// behaviour: a marked descriptor raises the interrupt at DMA completion.
type omxCoalescer struct{ timeoutCoalescer }

func (c *omxCoalescer) Name() string          { return fmt.Sprintf("openmx(%dus)", c.delay/sim.Microsecond) }
func (c *omxCoalescer) inspectsMarkers() bool { return true }

//omxlint:hotpath
func (c *omxCoalescer) onDMAComplete(d *RxDesc, pending int) {
	if d.Marked {
		c.raiseMarked()
		return
	}
	c.timeoutCoalescer.onDMAComplete(d, pending)
}

func (c *omxCoalescer) onBacklog() {
	for _, d := range c.q.completed {
		if d.Marked {
			c.raiseMarked()
			return
		}
	}
	c.arm()
}

func (c *omxCoalescer) raiseMarked() {
	if c.timer != nil {
		c.timer.Cancel()
		c.timer = nil
	}
	c.count = 0
	c.q.nic.requestInterrupt(c.q, causeMarked)
}

// streamCoalescer implements the paper's Algorithm 2: marked completions
// with other DMAs pending set a deferred flag instead of interrupting; the
// interrupt fires when the NIC goes quiet (no DMA pending), coalescing the
// whole burst into one interrupt. The coalescing timeout still bounds the
// deferral for very long streams.
type streamCoalescer struct {
	omxCoalescer
	deferred bool
}

func (c *streamCoalescer) Name() string { return fmt.Sprintf("stream(%dus)", c.delay/sim.Microsecond) }

//omxlint:hotpath
func (c *streamCoalescer) onDMAComplete(d *RxDesc, pending int) {
	if pending == 0 {
		if d.Marked || c.deferred {
			c.deferred = false
			if d.Marked {
				c.raiseMarked()
			} else {
				c.raiseDeferred()
			}
			return
		}
		c.timeoutCoalescer.onDMAComplete(d, pending)
		return
	}
	if d.Marked {
		if !c.deferred {
			c.deferred = true
			c.q.nic.Stats.Deferred++
		}
		return
	}
	c.timeoutCoalescer.onDMAComplete(d, pending)
}

func (c *streamCoalescer) onBacklog() {
	if c.deferred {
		c.deferred = false
		c.raiseDeferred()
		return
	}
	c.omxCoalescer.onBacklog()
}

func (c *streamCoalescer) raiseDeferred() {
	if c.timer != nil {
		c.timer.Cancel()
		c.timer = nil
	}
	c.count = 0
	c.q.nic.requestInterrupt(c.q, causeMarked)
}

// adaptiveCoalescer adjusts the timeout with the observed packet rate
// (Section VI): sparse traffic converges to the minimum delay (near
// per-packet interrupts, good latency), dense traffic to the maximum (good
// throughput). The paper's early tests found it "helps microbenchmarks but
// cannot help real applications" because it only reacts to past traffic.
type adaptiveCoalescer struct {
	timeoutCoalescer
	// windowStarted distinguishes "no window open yet" from a window that
	// genuinely opened at simulated time 0 (a plain windowStart == 0
	// sentinel would silently restart the rate window on every completion
	// until the clock moved).
	windowStarted bool
	windowStart   sim.Time
	windowCount   int
}

func (c *adaptiveCoalescer) Name() string          { return "adaptive" }
func (c *adaptiveCoalescer) inspectsMarkers() bool { return false }

//omxlint:hotpath
func (c *adaptiveCoalescer) onDMAComplete(d *RxDesc, pending int) {
	c.adapt()
	c.timeoutCoalescer.onDMAComplete(d, pending)
}

func (c *adaptiveCoalescer) adapt() {
	p := c.q.nic.p.NIC
	now := c.q.nic.eng.Now()
	if !c.windowStarted {
		c.windowStarted = true
		c.windowStart = now
	}
	c.windowCount++
	if now-c.windowStart < p.AdaptiveWindow {
		return
	}
	// Packets per window mapped linearly onto [AdaptiveMin, AdaptiveMax]:
	// <= lo packets -> min delay; >= hi packets -> max delay.
	const lo, hi = 4, 128
	n := c.windowCount
	c.windowCount = 0
	c.windowStart = now
	switch {
	case n <= lo:
		c.delay = p.AdaptiveMin
	case n >= hi:
		c.delay = p.AdaptiveMax
	default:
		span := int64(p.AdaptiveMax - p.AdaptiveMin)
		c.delay = p.AdaptiveMin + sim.Time(span*int64(n-lo)/int64(hi-lo))
	}
}

// Delay exposes the current adaptive delay for tests and diagnostics.
func (c *adaptiveCoalescer) Delay() sim.Time { return c.delay }

// FeedbackGoal is the tuner-supplied goal for StrategyFeedback: hold the
// queue's interrupt rate at the target without letting mean delivery
// latency exceed the budget. Zero fields fall back to the params defaults.
type FeedbackGoal struct {
	// TargetIntrPerSec is the interrupt-rate goal (interrupts/second on
	// this queue, poll-absorbed requests not counted).
	TargetIntrPerSec float64 `json:"target_intr_per_sec"`
	// MaxLatency bounds the mean delivery latency (frame arrival at the
	// NIC to the interrupt that hands it to the host).
	MaxLatency sim.Time `json:"max_latency_ns"`
}

// withDefaults resolves zero goal fields to the calibrated defaults.
func (g FeedbackGoal) withDefaults(p params.NIC) FeedbackGoal {
	if g.TargetIntrPerSec <= 0 {
		g.TargetIntrPerSec = p.FeedbackTargetIntrPerSec
	}
	if g.MaxLatency <= 0 {
		g.MaxLatency = p.FeedbackMaxLatency
	}
	return g
}

// feedbackLowWater is the fraction of the target rate below which the
// controller spends spare interrupt budget on latency (walks the delay
// down). The gap between it and 1.0 is the hysteresis band that keeps the
// delay from oscillating every window.
const feedbackLowWater = 0.5

// feedbackCoalescer is the closed-loop strategy: timeout coalescing whose
// delay is steered by a controller rather than fixed. Every window it
// compares the measured interrupt rate and mean delivery latency against
// the goal and walks the delay one step: down when latency is over budget,
// up when the interrupt rate is over target, down again when the rate is
// far enough under target that latency can be bought back. The delay is
// clamped to [AdaptiveMin, AdaptiveMax].
type feedbackCoalescer struct {
	timeoutCoalescer
	goal FeedbackGoal
	step sim.Time
	min  sim.Time
	max  sim.Time

	// window bookkeeping; windowStarted distinguishes "no window yet"
	// from a window opened at simulated time 0 (same sentinel rationale
	// as adaptiveCoalescer).
	window        sim.Time
	windowStarted bool
	windowStart   sim.Time
	intrWindow    int
	ageSum        sim.Time
	ageCount      int
}

func (c *feedbackCoalescer) Name() string {
	return fmt.Sprintf("feedback(%dus)", c.delay/sim.Microsecond)
}
func (c *feedbackCoalescer) inspectsMarkers() bool { return false }

//omxlint:hotpath
func (c *feedbackCoalescer) onDMAComplete(d *RxDesc, pending int) {
	c.observeWindow()
	c.count++
	if c.maxFrames > 0 && c.count >= c.maxFrames {
		c.fireObserved(true)
		return
	}
	c.arm()
}

func (c *feedbackCoalescer) onBacklog() { c.arm() }

// fireObserved raises the coalescing interrupt like timeoutCoalescer's
// fire/fireTimeout, but records it for the controller: unmasked requests
// (the ones that really interrupt) are counted, and the age of the oldest
// waiting descriptor is sampled as the delivery latency of this window.
func (c *feedbackCoalescer) fireObserved(cancelTimer bool) {
	if cancelTimer && c.timer != nil {
		c.timer.Cancel()
		c.timer = nil
	}
	c.count = 0
	if len(c.q.completed) == 0 {
		return
	}
	if !c.q.masked {
		c.intrWindow++
		c.sampleAge()
	}
	c.q.nic.requestInterrupt(c.q, causeTimeout)
}

// sampleAge records how long the oldest completed descriptor has been
// waiting: arrival-to-interrupt for received frames, DMA-done-to-interrupt
// for tx completions (which never arrived on the wire).
func (c *feedbackCoalescer) sampleAge() {
	d := c.q.completed[0]
	ref := d.ArrivedAt
	if d.Frame == nil {
		ref = d.DMADoneAt
	}
	c.ageSum += c.q.nic.eng.Now() - ref
	c.ageCount++
}

// observeWindow runs the controller when the current measurement window
// has elapsed. It is driven at DMA-completion cadence (like the adaptive
// strategy), so windows close on the next completion past their end.
func (c *feedbackCoalescer) observeWindow() {
	now := c.q.nic.eng.Now()
	if !c.windowStarted {
		c.windowStarted = true
		c.windowStart = now
		return
	}
	elapsed := now - c.windowStart
	if elapsed < c.window {
		return
	}
	rate := float64(c.intrWindow) * float64(sim.Second) / float64(elapsed)
	var meanAge sim.Time
	if c.ageCount > 0 {
		meanAge = c.ageSum / sim.Time(c.ageCount)
	}
	switch {
	case meanAge > c.goal.MaxLatency:
		// Latency over budget: coalesce less, whatever the rate says.
		c.walk(-c.step)
	case rate > c.goal.TargetIntrPerSec:
		// Interrupt load over target: coalesce harder.
		c.walk(c.step)
	case rate < feedbackLowWater*c.goal.TargetIntrPerSec && 2*meanAge <= c.goal.MaxLatency:
		// Far under the interrupt budget with latency headroom: spend
		// the spare budget on latency.
		c.walk(-c.step)
	}
	c.intrWindow, c.ageSum, c.ageCount = 0, 0, 0
	c.windowStart = now
}

// walk moves the delay by d, clamped to [min, max], counting effective
// steps in the NIC statistics.
func (c *feedbackCoalescer) walk(d sim.Time) {
	next := c.delay + d
	if next < c.min {
		next = c.min
	}
	if next > c.max {
		next = c.max
	}
	if next != c.delay {
		c.delay = next
		c.q.nic.Stats.FeedbackSteps++
		c.q.nic.tr.Event(c.q.nic.eng.Now(), trace.EvCoalesceWalk, int64(next))
		return
	}
	c.q.nic.Stats.FeedbackClamps++
	c.q.nic.tr.Event(c.q.nic.eng.Now(), trace.EvFeedbackClamp, int64(next))
}

// Delay exposes the current feedback delay for tests and diagnostics.
func (c *feedbackCoalescer) Delay() sim.Time { return c.delay }
