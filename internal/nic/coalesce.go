package nic

import (
	"fmt"

	"openmxsim/internal/host"
	"openmxsim/internal/sim"
)

// Strategy enumerates the interrupt coalescing strategies under study.
type Strategy int

const (
	// StrategyDisabled raises one interrupt per packet (coalescing off,
	// the "Disabled" column of the paper's tables).
	StrategyDisabled Strategy = iota
	// StrategyTimeout is classic timeout-based coalescing (the "Default"
	// column at 75 us, and the Fig. 4 sweep).
	StrategyTimeout
	// StrategyOpenMX is the paper's Algorithm 1: interrupt immediately
	// when a latency-sensitive (marked) packet's DMA completes; other
	// packets obey the timeout.
	StrategyOpenMX
	// StrategyStream is the paper's Algorithm 2: like OpenMX, but a marked
	// completion with other DMAs pending defers the interrupt until the
	// NIC goes quiet, coalescing bursts of small messages.
	StrategyStream
	// StrategyAdaptive is the Section VI future-work extension: the
	// timeout adapts to the observed packet rate.
	StrategyAdaptive
)

var strategyNames = [...]string{"disabled", "timeout", "openmx", "stream", "adaptive"}

func (s Strategy) String() string {
	if s >= 0 && int(s) < len(strategyNames) {
		return strategyNames[s]
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Known reports whether s is one of the defined strategies.
func (s Strategy) Known() bool { return s >= 0 && int(s) < len(strategyNames) }

// ParseStrategy converts a name into a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	for i, n := range strategyNames {
		if n == name {
			return Strategy(i), nil
		}
	}
	return 0, fmt.Errorf("nic: unknown strategy %q", name)
}

// coalescer is the per-queue firmware decision logic.
type coalescer interface {
	Name() string
	// inspectsMarkers reports whether the firmware reads the
	// latency-sensitive flag (only the paper's modified firmwares do).
	inspectsMarkers() bool
	// onDMAComplete runs when a packet's DMA finishes; pending is the
	// number of other frames accepted but not yet DMA-complete.
	onDMAComplete(d *RxDesc, pending int)
	// onBacklog runs when a poll cycle ends with packets still queued
	// (e.g. they arrived after the final ring check).
	onBacklog()
}

func newCoalescer(cfg Config, q *rxQueue) coalescer {
	switch cfg.Strategy {
	case StrategyDisabled:
		return &disabledCoalescer{q: q}
	case StrategyTimeout:
		c := &timeoutCoalescer{q: q, delay: cfg.Delay, maxFrames: cfg.MaxFrames}
		c.bindTimer()
		return c
	case StrategyOpenMX:
		c := &omxCoalescer{timeoutCoalescer{q: q, delay: cfg.Delay, maxFrames: cfg.MaxFrames}}
		c.bindTimer()
		return c
	case StrategyStream:
		c := &streamCoalescer{omxCoalescer{timeoutCoalescer{q: q, delay: cfg.Delay, maxFrames: cfg.MaxFrames}}, false}
		c.bindTimer()
		return c
	case StrategyAdaptive:
		c := &adaptiveCoalescer{timeoutCoalescer: timeoutCoalescer{q: q, delay: cfg.Delay, maxFrames: cfg.MaxFrames}}
		p := q.nic.p.NIC
		if c.delay < p.AdaptiveMin {
			c.delay = p.AdaptiveMin
		}
		c.bindTimer()
		return c
	default:
		panic(fmt.Sprintf("nic: unknown strategy %d", cfg.Strategy))
	}
}

// rxQueue is one receive queue: completion ring + mask + strategy. The poll
// callbacks are bound once at NIC construction; pollCore/polled/cur carry
// the state of the single in-flight NAPI cycle (the mask guarantees at most
// one per queue).
type rxQueue struct {
	nic       *NIC
	idx       int
	completed []*RxDesc
	masked    bool
	coal      coalescer

	pollCore    *host.Core
	polled      int
	cur         *RxDesc // descriptor currently at the driver
	msiFn       func()
	pollStartFn func(any)
	pollEndFn   func(any)
	contFn      func()
}

// disabledCoalescer: interrupt per packet.
type disabledCoalescer struct{ q *rxQueue }

func (c *disabledCoalescer) Name() string          { return "disabled" }
func (c *disabledCoalescer) inspectsMarkers() bool { return false }

func (c *disabledCoalescer) onDMAComplete(d *RxDesc, pending int) {
	c.q.nic.requestInterrupt(c.q, causeImmediate)
}

func (c *disabledCoalescer) onBacklog() {
	c.q.nic.requestInterrupt(c.q, causeImmediate)
}

// timeoutCoalescer: classic delay (+ optional max-frames) coalescing. The
// timer is armed by the first completion after the previous interrupt, so an
// isolated packet waits the full delay — the latency cost the paper
// measures in Fig. 5.
type timeoutCoalescer struct {
	q         *rxQueue
	delay     sim.Time
	maxFrames int
	timer     *sim.Event
	count     int
	timerFn   func() // bound once so arming the timer never allocates
}

// bindTimer creates the coalescing timer callback once; fireTimeout is
// shared by every strategy that embeds the timeout behaviour.
func (c *timeoutCoalescer) bindTimer() {
	c.timerFn = func() {
		c.timer = nil
		c.fireTimeout()
	}
}

func (c *timeoutCoalescer) Name() string {
	return fmt.Sprintf("timeout(%dus)", c.delay/sim.Microsecond)
}
func (c *timeoutCoalescer) inspectsMarkers() bool { return false }

func (c *timeoutCoalescer) onDMAComplete(d *RxDesc, pending int) {
	c.count++
	if c.maxFrames > 0 && c.count >= c.maxFrames {
		c.fire()
		return
	}
	c.arm()
}

func (c *timeoutCoalescer) onBacklog() { c.arm() }

func (c *timeoutCoalescer) arm() {
	if c.timer != nil {
		return
	}
	c.timer = c.q.nic.eng.After(c.delay, c.timerFn)
}

func (c *timeoutCoalescer) fireTimeout() {
	c.count = 0
	if len(c.q.completed) == 0 {
		return
	}
	c.q.nic.requestInterrupt(c.q, causeTimeout)
}

func (c *timeoutCoalescer) fire() {
	if c.timer != nil {
		c.timer.Cancel()
		c.timer = nil
	}
	c.count = 0
	c.q.nic.requestInterrupt(c.q, causeTimeout)
}

// omxCoalescer implements the paper's Algorithm 1 on top of the timeout
// behaviour: a marked descriptor raises the interrupt at DMA completion.
type omxCoalescer struct{ timeoutCoalescer }

func (c *omxCoalescer) Name() string          { return fmt.Sprintf("openmx(%dus)", c.delay/sim.Microsecond) }
func (c *omxCoalescer) inspectsMarkers() bool { return true }

func (c *omxCoalescer) onDMAComplete(d *RxDesc, pending int) {
	if d.Marked {
		c.raiseMarked()
		return
	}
	c.timeoutCoalescer.onDMAComplete(d, pending)
}

func (c *omxCoalescer) onBacklog() {
	for _, d := range c.q.completed {
		if d.Marked {
			c.raiseMarked()
			return
		}
	}
	c.arm()
}

func (c *omxCoalescer) raiseMarked() {
	if c.timer != nil {
		c.timer.Cancel()
		c.timer = nil
	}
	c.count = 0
	c.q.nic.requestInterrupt(c.q, causeMarked)
}

// streamCoalescer implements the paper's Algorithm 2: marked completions
// with other DMAs pending set a deferred flag instead of interrupting; the
// interrupt fires when the NIC goes quiet (no DMA pending), coalescing the
// whole burst into one interrupt. The coalescing timeout still bounds the
// deferral for very long streams.
type streamCoalescer struct {
	omxCoalescer
	deferred bool
}

func (c *streamCoalescer) Name() string { return fmt.Sprintf("stream(%dus)", c.delay/sim.Microsecond) }

func (c *streamCoalescer) onDMAComplete(d *RxDesc, pending int) {
	if pending == 0 {
		if d.Marked || c.deferred {
			c.deferred = false
			if d.Marked {
				c.raiseMarked()
			} else {
				c.raiseDeferred()
			}
			return
		}
		c.timeoutCoalescer.onDMAComplete(d, pending)
		return
	}
	if d.Marked {
		if !c.deferred {
			c.deferred = true
			c.q.nic.Stats.Deferred++
		}
		return
	}
	c.timeoutCoalescer.onDMAComplete(d, pending)
}

func (c *streamCoalescer) onBacklog() {
	if c.deferred {
		c.deferred = false
		c.raiseDeferred()
		return
	}
	c.omxCoalescer.onBacklog()
}

func (c *streamCoalescer) raiseDeferred() {
	if c.timer != nil {
		c.timer.Cancel()
		c.timer = nil
	}
	c.count = 0
	c.q.nic.requestInterrupt(c.q, causeMarked)
}

// adaptiveCoalescer adjusts the timeout with the observed packet rate
// (Section VI): sparse traffic converges to the minimum delay (near
// per-packet interrupts, good latency), dense traffic to the maximum (good
// throughput). The paper's early tests found it "helps microbenchmarks but
// cannot help real applications" because it only reacts to past traffic.
type adaptiveCoalescer struct {
	timeoutCoalescer
	// windowStarted distinguishes "no window open yet" from a window that
	// genuinely opened at simulated time 0 (a plain windowStart == 0
	// sentinel would silently restart the rate window on every completion
	// until the clock moved).
	windowStarted bool
	windowStart   sim.Time
	windowCount   int
}

func (c *adaptiveCoalescer) Name() string          { return "adaptive" }
func (c *adaptiveCoalescer) inspectsMarkers() bool { return false }

func (c *adaptiveCoalescer) onDMAComplete(d *RxDesc, pending int) {
	c.adapt()
	c.timeoutCoalescer.onDMAComplete(d, pending)
}

func (c *adaptiveCoalescer) adapt() {
	p := c.q.nic.p.NIC
	now := c.q.nic.eng.Now()
	if !c.windowStarted {
		c.windowStarted = true
		c.windowStart = now
	}
	c.windowCount++
	if now-c.windowStart < p.AdaptiveWindow {
		return
	}
	// Packets per window mapped linearly onto [AdaptiveMin, AdaptiveMax]:
	// <= lo packets -> min delay; >= hi packets -> max delay.
	const lo, hi = 4, 128
	n := c.windowCount
	c.windowCount = 0
	c.windowStart = now
	switch {
	case n <= lo:
		c.delay = p.AdaptiveMin
	case n >= hi:
		c.delay = p.AdaptiveMax
	default:
		span := int64(p.AdaptiveMax - p.AdaptiveMin)
		c.delay = p.AdaptiveMin + sim.Time(span*int64(n-lo)/int64(hi-lo))
	}
}

// Delay exposes the current adaptive delay for tests and diagnostics.
func (c *adaptiveCoalescer) Delay() sim.Time { return c.delay }
