package nic

import (
	"fmt"
	"testing"

	"openmxsim/internal/sim"
)

// TestAdaptiveHonorsMaxFrames is the regression test for newCoalescer
// dropping cfg.MaxFrames when building the adaptive strategy: a burst that
// reaches the rx-frames bound must interrupt immediately instead of waiting
// for the (long) adaptive timeout.
func TestAdaptiveHonorsMaxFrames(t *testing.T) {
	r := newRig(t, Config{Strategy: StrategyAdaptive, Delay: 75 * sim.Microsecond, MaxFrames: 2})
	for i := 0; i < 2; i++ {
		r.inject(0, frame(false, 128))
	}
	r.eng.Run()
	if len(r.drv.processed) != 2 {
		t.Fatalf("processed %d packets, want 2", len(r.drv.processed))
	}
	// With MaxFrames honored the second completion forces the interrupt; the
	// packets reach the driver long before the 75 us timer would have fired.
	if got := r.drv.times[0]; got >= 75*sim.Microsecond {
		t.Errorf("first packet processed at %v, want < 75us (max-frames fire)", got)
	}
}

// TestMaxFramesExactHitAllStrategies drives every timeout-based strategy to
// exactly the MaxFrames bound and checks the interrupt fires at the bound,
// not at the timer. StrategyDisabled interrupts on the first packet anyway
// (later requests are absorbed by the in-flight NAPI poll, as in Linux).
func TestMaxFramesExactHitAllStrategies(t *testing.T) {
	const maxFrames = 3
	for _, st := range []Strategy{StrategyDisabled, StrategyTimeout, StrategyOpenMX, StrategyStream, StrategyAdaptive, StrategyFeedback} {
		t.Run(st.String(), func(t *testing.T) {
			r := newRig(t, Config{Strategy: st, Delay: 75 * sim.Microsecond, MaxFrames: maxFrames})
			for i := 0; i < maxFrames; i++ {
				r.inject(0, frame(false, 128))
			}
			r.eng.Run()
			if len(r.drv.processed) != maxFrames {
				t.Fatalf("processed %d packets, want %d", len(r.drv.processed), maxFrames)
			}
			if r.nic.Stats.Interrupts == 0 {
				t.Fatal("no interrupt raised")
			}
			if got := r.drv.times[0]; got >= 75*sim.Microsecond {
				t.Errorf("first packet processed at %v, want < 75us", got)
			}
		})
	}
}

// TestAdaptiveWindowStartsAtTimeZero is the regression test for the
// windowStart == 0 "unset" sentinel: a completion at simulated time 0 must
// open the rate window there, so a dense burst inside the first window
// adapts the delay upward. With the sentinel bug every completion at a later
// time silently restarted the window and the delay never adapted.
func TestAdaptiveWindowStartsAtTimeZero(t *testing.T) {
	r := newRig(t, Config{Strategy: StrategyAdaptive, Delay: 75 * sim.Microsecond})
	c, ok := r.nic.queues[0].coal.(*adaptiveCoalescer)
	if !ok {
		t.Fatalf("queue coalescer is %T, want *adaptiveCoalescer", r.nic.queues[0].coal)
	}
	p := r.p.NIC
	// Open the window with a completion at t=0, add a dense burst shortly
	// after, then close the window exactly at its end.
	r.eng.Schedule(0, func() { c.adapt() })
	r.eng.Schedule(100, func() {
		for i := 0; i < 130; i++ {
			c.adapt()
		}
	})
	r.eng.Schedule(p.AdaptiveWindow, func() { c.adapt() })
	r.eng.Run()
	if got := c.Delay(); got != p.AdaptiveMax {
		t.Errorf("delay after dense window starting at t=0 = %v, want AdaptiveMax %v (window restarted?)", got, p.AdaptiveMax)
	}
}

// descs plants completed-but-unpolled descriptors on queue 0, simulating
// packets that slipped in after a poll's final ring check.
func (r *rig) planted(marked ...bool) {
	q := r.nic.queues[0]
	for _, m := range marked {
		d := r.nic.getDesc()
		d.Marked = m
		d.Queue = 0
		q.completed = append(q.completed, d)
	}
}

// TestOnBacklogWithMarkedFrame checks the poll-end backlog path of every
// strategy when a marked frame is among the queued descriptors: the
// marker-aware firmwares interrupt immediately, the others fall back to
// their usual behaviour (per-packet or timer).
func TestOnBacklogWithMarkedFrame(t *testing.T) {
	cases := []struct {
		strategy Strategy
		// immediate: the interrupt must be requested without waiting for
		// the coalescing timer.
		immediate bool
	}{
		{StrategyDisabled, true},
		{StrategyTimeout, false},
		{StrategyOpenMX, true},
		{StrategyStream, true},
		{StrategyAdaptive, false},
		{StrategyFeedback, false},
	}
	const delay = 75 * sim.Microsecond
	for _, tc := range cases {
		t.Run(tc.strategy.String(), func(t *testing.T) {
			r := newRig(t, Config{Strategy: tc.strategy, Delay: delay})
			q := r.nic.queues[0]
			r.planted(false, true) // unmarked + marked queued at poll end
			r.eng.Schedule(0, func() { q.coal.onBacklog() })
			r.eng.Run()
			if len(r.drv.processed) != 2 {
				t.Fatalf("processed %d descriptors, want 2", len(r.drv.processed))
			}
			early := r.drv.times[0] < delay
			if early != tc.immediate {
				t.Errorf("first descriptor processed at %v, immediate=%v, want immediate=%v",
					r.drv.times[0], early, tc.immediate)
			}
		})
	}
}

// TestStreamDeferralAccounting checks Stats.Deferred counts one deferral
// per marked burst, not one per marked completion inside the burst.
func TestStreamDeferralAccounting(t *testing.T) {
	r := newRig(t, Config{Strategy: StrategyStream, Delay: 75 * sim.Microsecond})
	q := r.nic.queues[0]
	c := q.coal.(*streamCoalescer)
	marked := &RxDesc{Marked: true}

	burst := func(at sim.Time) {
		r.eng.Schedule(at, func() {
			// Three marked completions with other DMAs pending: the burst is
			// deferred exactly once...
			for i := 0; i < 3; i++ {
				q.completed = append(q.completed, r.nic.getDesc())
				q.completed[len(q.completed)-1].Marked = true
				c.onDMAComplete(marked, 2)
			}
			// ...and the quiet completion (pending == 0) raises the interrupt.
			q.completed = append(q.completed, r.nic.getDesc())
			q.completed[len(q.completed)-1].Marked = true
			c.onDMAComplete(marked, 0)
		})
	}
	burst(0)
	burst(1 * sim.Millisecond)
	r.eng.Run()
	if r.nic.Stats.Deferred != 2 {
		t.Errorf("Stats.Deferred = %d, want 2 (one per burst)", r.nic.Stats.Deferred)
	}
	if r.nic.Stats.Interrupts != 2 {
		t.Errorf("Interrupts = %d, want 2 (one per burst)", r.nic.Stats.Interrupts)
	}
}

// TestFeedbackWalksUpUnderInterruptOverload drives the feedback strategy
// with dense traffic far above its interrupt-rate target: the controller
// must walk the delay up (coalesce harder) window after window.
func TestFeedbackWalksUpUnderInterruptOverload(t *testing.T) {
	r := newRig(t, Config{
		Strategy: StrategyFeedback,
		Delay:    5 * sim.Microsecond,
		// A 1k intr/s target that per-packet interrupts at 100k pkts/s
		// overshoot by two orders of magnitude; an effectively unbounded
		// latency budget keeps the guardrail out of the picture.
		Feedback: FeedbackGoal{TargetIntrPerSec: 1_000, MaxLatency: sim.Second},
	})
	c, ok := r.nic.queues[0].coal.(*feedbackCoalescer)
	if !ok {
		t.Fatalf("queue coalescer is %T, want *feedbackCoalescer", r.nic.queues[0].coal)
	}
	for i := 0; i < 200; i++ {
		r.inject(sim.Time(i)*10*sim.Microsecond, frame(false, 128))
	}
	r.eng.Run()
	if got := c.Delay(); got <= 5*sim.Microsecond {
		t.Errorf("delay after interrupt overload = %v, want > initial 5us", got)
	}
	if r.nic.Stats.FeedbackSteps == 0 {
		t.Error("controller recorded no delay adjustments")
	}
}

// TestFeedbackWalksDownOverLatencyBudget drives the feedback strategy with
// sparse traffic under a tight latency budget: every packet waits the full
// (long) delay before its interrupt, so the controller must walk the delay
// down even though the interrupt rate is far below target.
func TestFeedbackWalksDownOverLatencyBudget(t *testing.T) {
	r := newRig(t, Config{
		Strategy: StrategyFeedback,
		Delay:    100 * sim.Microsecond,
		Feedback: FeedbackGoal{TargetIntrPerSec: 1e12, MaxLatency: 10 * sim.Microsecond},
	})
	c := r.nic.queues[0].coal.(*feedbackCoalescer)
	for i := 0; i < 20; i++ {
		r.inject(sim.Time(i)*300*sim.Microsecond, frame(false, 128))
	}
	r.eng.Run()
	if got := c.Delay(); got >= 100*sim.Microsecond {
		t.Errorf("delay after latency overrun = %v, want < initial 100us", got)
	}
}

// TestFeedbackHoldsInsideGoal checks the hysteresis band: traffic whose
// per-packet interrupt rate sits between the low-water mark and the target
// leaves the delay alone (no oscillation in the steady state).
func TestFeedbackHoldsInsideGoal(t *testing.T) {
	r := newRig(t, Config{
		Strategy: StrategyFeedback,
		Delay:    20 * sim.Microsecond,
		// Packets every 30us with a 20us delay interrupt one-for-one:
		// ~33k intr/s, inside [0.5*target, target] for a 40k target, and
		// the ~20us waits stay inside the 60us latency budget.
		Feedback: FeedbackGoal{TargetIntrPerSec: 40_000, MaxLatency: 60 * sim.Microsecond},
	})
	c := r.nic.queues[0].coal.(*feedbackCoalescer)
	for i := 0; i < 200; i++ {
		r.inject(sim.Time(i)*30*sim.Microsecond, frame(false, 128))
	}
	r.eng.Run()
	if got := c.Delay(); got != 20*sim.Microsecond {
		t.Errorf("delay moved to %v inside the goal band, want to hold at 20us", got)
	}
	if r.nic.Stats.FeedbackSteps != 0 {
		t.Errorf("FeedbackSteps = %d inside the goal band, want 0", r.nic.Stats.FeedbackSteps)
	}
}

// TestStrategyStringNegative checks String and Known agree on rejecting
// negative values (String used to index strategyNames with only an upper
// bound check, panicking on negatives).
func TestStrategyStringNegative(t *testing.T) {
	for _, v := range []int{-1, -2, -1 << 30} {
		s := Strategy(v)
		if s.Known() {
			t.Errorf("Known(%d) = true", v)
		}
		want := fmt.Sprintf("strategy(%d)", v)
		if got := s.String(); got != want {
			t.Errorf("Strategy(%d).String() = %q, want %q", v, got, want)
		}
	}
	if got := Strategy(99).String(); got != "strategy(99)" {
		t.Errorf("Strategy(99).String() = %q, want strategy(99)", got)
	}
}

// FuzzParseStrategy fuzzes the name -> Strategy -> name round trip: any
// accepted name must map to a known strategy whose String form re-parses to
// the same value.
func FuzzParseStrategy(f *testing.F) {
	for _, n := range strategyNames {
		f.Add(n)
	}
	f.Add("")
	f.Add("bogus")
	f.Add("strategy(-1)")
	f.Fuzz(func(t *testing.T, name string) {
		s, err := ParseStrategy(name)
		if err != nil {
			return
		}
		if !s.Known() {
			t.Fatalf("ParseStrategy(%q) = %v, accepted but not Known", name, s)
		}
		if s.String() != name {
			t.Fatalf("round trip %q -> %v -> %q", name, int(s), s.String())
		}
		s2, err := ParseStrategy(s.String())
		if err != nil || s2 != s {
			t.Fatalf("re-parse %q = %v, %v; want %v", s.String(), s2, err, s)
		}
	})
}
