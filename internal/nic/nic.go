// Package nic models the Ethernet interface: receive firmware, the DMA
// engine depositing packets into host memory, interrupt signalling with
// NAPI-style masking, and — the paper's contribution — pluggable interrupt
// coalescing strategies including the marker-driven Open-MX coalescing
// (Algorithm 1) and Stream coalescing (Algorithm 2).
package nic

import (
	"fmt"

	"openmxsim/internal/fabric"
	"openmxsim/internal/host"
	"openmxsim/internal/params"
	"openmxsim/internal/sim"
	"openmxsim/internal/trace"
	"openmxsim/internal/wire"
)

// Driver is the host-side packet consumer (the Open-MX stack). Process is
// invoked in IRQ context on core during a NAPI poll; the driver charges its
// per-packet cost to the core and calls done when finished so the poll can
// move to the next packet.
type Driver interface {
	Process(d *RxDesc, core *host.Core, done func())
}

// RxDesc is a completion-ring entry: either a frame DMA'd into host memory
// or a transmit-done notification (myri10ge reports both through the same
// ring and the same interrupt coalescing).
type RxDesc struct {
	Frame *wire.Frame
	// TxDone marks a transmit-completion entry (Frame is nil).
	TxDone bool
	// Marked mirrors the latency-sensitive header flag, but only when the
	// active firmware inspects markers (Open-MX/Stream strategies).
	Marked bool
	// Queue is the receive queue the frame hashed to.
	Queue int
	// ArrivedAt and DMADoneAt timestamp the frame's path through the NIC.
	ArrivedAt sim.Time
	DMADoneAt sim.Time
}

// Stats aggregates NIC counters.
type Stats struct {
	PacketsReceived uint64
	PacketsSent     uint64
	BytesReceived   uint64
	BytesSent       uint64
	// Interrupts actually raised to the host.
	Interrupts uint64
	// TimeoutFires counts interrupts raised by the coalescing timer.
	TimeoutFires uint64
	// MarkedImmediate counts interrupts raised for marked packets at DMA
	// completion (Algorithm 1 path).
	MarkedImmediate uint64
	// Deferred counts marked interrupts deferred by Stream coalescing
	// because other DMAs were pending (Algorithm 2 path).
	Deferred uint64
	// RingDrops counts frames dropped because the receive ring was full.
	RingDrops uint64
	// FeedbackSteps counts effective delay adjustments made by the
	// feedback strategy's controller (clamped walks do not count).
	FeedbackSteps uint64
	// FeedbackClamps counts controller walks absorbed by the [min,max]
	// delay clamp — the controller wanted to move but could not.
	FeedbackClamps uint64
	// PollCycles counts NAPI poll sessions; PacketsPolled their packets.
	PollCycles    uint64
	PacketsPolled uint64
}

// NIC is one interface attached to a host and a fabric port.
//
// Completion-ring descriptors are recycled through a per-NIC free list and
// every hot-path continuation (firmware -> DMA -> completion -> NAPI poll)
// is a callback bound once at construction, so receiving and transmitting a
// frame allocates nothing in steady state. A received frame's reference is
// released after the driver finishes processing its descriptor (the next
// poll step); descriptors handed to Driver.Process are only valid until the
// driver calls done.
type NIC struct {
	eng *sim.Engine
	p   *params.Params
	hst *host.Host
	sw  *fabric.Switch
	mac wire.MAC
	drv Driver

	queues []*rxQueue

	fwBusyUntil  sim.Time
	dmaBusyUntil sim.Time
	txBusyUntil  sim.Time
	inflight     int // frames accepted but whose DMA has not completed

	descFree    []*RxDesc
	submitDMAFn func(any)
	dmaDoneFn   func(any)
	txWireFn    func(any)

	tr *trace.Node

	Stats Stats
}

// Config selects the coalescing behaviour of a NIC.
type Config struct {
	Strategy Strategy
	// Delay is the coalescing timeout (ignored by StrategyDisabled; the
	// initial value for StrategyAdaptive).
	Delay sim.Time
	// MaxFrames, when > 0, forces an interrupt once this many frames are
	// waiting (ethtool rx-frames).
	MaxFrames int
	// Queues is the number of receive queues (1 = stock single-queue NIC;
	// > 1 enables the Section VI multiqueue extension).
	Queues int
	// Feedback is the goal for StrategyFeedback (ignored by the other
	// strategies; zero fields fall back to the params defaults).
	Feedback FeedbackGoal
}

// New creates a NIC, attaches it to the switch under mac, and installs the
// configured coalescing strategy.
func New(eng *sim.Engine, p *params.Params, h *host.Host, sw *fabric.Switch, mac wire.MAC, cfg Config) *NIC {
	if cfg.Queues <= 0 {
		cfg.Queues = 1
	}
	n := &NIC{eng: eng, p: p, hst: h, sw: sw, mac: mac}
	n.submitDMAFn = func(x any) { n.submitDMA(x.(*RxDesc)) }
	n.dmaDoneFn = func(x any) { n.dmaDone(x.(*RxDesc)) }
	n.txWireFn = func(x any) { n.txWire(x.(*wire.Frame)) }
	n.queues = make([]*rxQueue, cfg.Queues)
	for i := range n.queues {
		q := &rxQueue{nic: n, idx: i}
		q.coal = newCoalescer(cfg, q)
		q.msiFn = func() {
			q.pollCore.SubmitIRQArg(n.p.Host.IRQEntry, true, q.pollStartFn, nil)
		}
		q.pollStartFn = func(any) {
			n.Stats.PollCycles++
			q.polled = 0
			n.pollStep(q)
		}
		q.pollEndFn = func(any) {
			if q.polled >= n.p.Host.NAPIBudget && len(q.completed) > 0 {
				// Budget exhausted: NAPI reschedules the poll on the same
				// core without re-enabling interrupts.
				n.Stats.PollCycles++
				q.polled = 0
				n.pollStep(q)
				return
			}
			q.masked = false
			if len(q.completed) > 0 {
				// Packets slipped in between the last pop and the unmask.
				q.coal.onBacklog()
			}
		}
		q.contFn = func() { n.pollStep(q) }
		n.queues[i] = q
	}
	sw.Attach(mac, n)
	return n
}

// getDesc takes a completion-ring descriptor from the free list.
func (n *NIC) getDesc() *RxDesc {
	if k := len(n.descFree); k > 0 {
		d := n.descFree[k-1]
		n.descFree[k-1] = nil
		n.descFree = n.descFree[:k-1]
		return d
	}
	return &RxDesc{}
}

// putDesc recycles a fully processed descriptor.
func (n *NIC) putDesc(d *RxDesc) {
	*d = RxDesc{}
	n.descFree = append(n.descFree, d)
}

// SetDriver binds the host-side packet consumer.
func (n *NIC) SetDriver(d Driver) { n.drv = d }

// SetTrace binds the node's telemetry handle (nil = tracing disabled).
func (n *NIC) SetTrace(h *trace.Node) { n.tr = h }

// CurrentDelay reports the instantaneous coalescing delay of queue 0 —
// the gauge the feedback strategy walks and samplers chart over time.
func (n *NIC) CurrentDelay() sim.Time { return n.queues[0].coal.currentDelay() }

// MAC returns the interface address.
func (n *NIC) MAC() wire.MAC { return n.mac }

// Host returns the node this NIC interrupts.
func (n *NIC) Host() *host.Host { return n.hst }

// Strategy returns the active coalescing strategy name (queue 0).
func (n *NIC) Strategy() string { return n.queues[0].coal.Name() }

// Backlog returns the number of received-but-unprocessed packets.
func (n *NIC) Backlog() int {
	total := n.inflight
	for _, q := range n.queues {
		total += len(q.completed)
	}
	return total
}

// ReceiveFrame implements fabric.Receiver: a frame's last bit arrived. The
// NIC takes over the frame's wire reference and releases it once the driver
// has processed the descriptor (or immediately, on a ring overflow drop).
func (n *NIC) ReceiveFrame(f *wire.Frame) {
	now := n.eng.Now()
	if n.Backlog() >= n.p.NIC.RxRingEntries {
		n.Stats.RingDrops++
		n.tr.Event(now, trace.EvRingDrop, int64(n.Stats.RingDrops))
		f.Release()
		return
	}
	q := n.queues[n.queueFor(f)]

	// Firmware processes packets serially: descriptor creation and, for the
	// marker-aware strategies, header inspection (plus the Stream
	// strategy's extra bookkeeping).
	fw := n.p.NIC.FirmwareRxPacket
	if q.coal.inspectsMarkers() {
		if _, isStream := q.coal.(*streamCoalescer); isStream {
			fw += n.p.NIC.FirmwareStreamExtra
		}
	}
	start := now
	if n.fwBusyUntil > start {
		start = n.fwBusyUntil
	}
	n.fwBusyUntil = start + fw

	d := n.getDesc()
	d.Frame = f
	d.Queue = q.idx
	d.ArrivedAt = now
	if q.coal.inspectsMarkers() && f.Marked() {
		d.Marked = true
	}
	n.inflight++
	n.Stats.PacketsReceived++
	n.Stats.BytesReceived += uint64(f.WireBytes())

	n.eng.ScheduleArg(n.fwBusyUntil, n.submitDMAFn, d)
}

func (n *NIC) submitDMA(d *RxDesc) {
	now := n.eng.Now()
	start := now
	if n.dmaBusyUntil > start {
		start = n.dmaBusyUntil
	}
	n.dmaBusyUntil = start + n.p.NIC.DMATime(d.Frame.PayloadLen+wire.HeaderLen)
	n.eng.ScheduleArg(n.dmaBusyUntil, n.dmaDoneFn, d)
}

func (n *NIC) dmaDone(d *RxDesc) {
	n.inflight--
	d.DMADoneAt = n.eng.Now()
	q := n.queues[d.Queue]
	q.completed = append(q.completed, d)
	q.coal.onDMAComplete(d, n.inflight)
}

func (n *NIC) queueFor(f *wire.Frame) int {
	if len(n.queues) == 1 {
		return 0
	}
	// Hash the communication channel (source node + endpoint pair) so one
	// channel's processing stays on one core (multiqueue extension).
	h := uint32(2166136261)
	for _, b := range f.Src {
		h = (h ^ uint32(b)) * 16777619
	}
	h = (h ^ uint32(f.Header.SrcEP)) * 16777619
	h = (h ^ uint32(f.Header.DstEP)) * 16777619
	return int(h % uint32(len(n.queues)))
}

// requestInterrupt asks for an interrupt on q. If the queue is masked (a
// poll is in progress) the request is absorbed: the in-flight poll will pick
// the packets up, exactly like NAPI.
func (n *NIC) requestInterrupt(q *rxQueue, cause interruptCause) {
	if q.masked {
		return
	}
	q.masked = true
	n.Stats.Interrupts++
	switch cause {
	case causeTimeout:
		n.Stats.TimeoutFires++
	case causeMarked:
		n.Stats.MarkedImmediate++
	}
	n.tr.Event(n.eng.Now(), trace.EvIRQ, int64(cause))
	// One interrupt is outstanding per queue while masked, so the target
	// core parks on the queue until the poll cycle ends.
	q.pollCore = n.hst.IRQTarget(q.idx)
	n.eng.After(n.p.NIC.MSIDelivery, q.msiFn)
}

type interruptCause int

const (
	causeTimeout interruptCause = iota
	causeMarked
	causeImmediate // coalescing disabled
)

// pollStep is the NAPI poll loop: process up to budget packets, then close
// the cycle and unmask. Each entry first retires the descriptor (and frame)
// whose driver processing just completed.
func (n *NIC) pollStep(q *rxQueue) {
	if d := q.cur; d != nil {
		q.cur = nil
		if d.Frame != nil {
			d.Frame.Release()
		}
		n.putDesc(d)
	}
	if len(q.completed) == 0 || q.polled >= n.p.Host.NAPIBudget {
		q.pollCore.SubmitIRQArg(n.p.Host.NAPIPollEnd, false, q.pollEndFn, nil)
		return
	}
	d := q.completed[0]
	copy(q.completed, q.completed[1:])
	q.completed[len(q.completed)-1] = nil
	q.completed = q.completed[:len(q.completed)-1]
	n.Stats.PacketsPolled++
	q.cur = d
	q.polled++
	n.drv.Process(d, q.pollCore, q.contFn)
}

// SendFrame transmits a frame: the NIC fetches it by DMA, hands it to the
// wire, and reports the transmit completion through the completion ring,
// where it is subject to the same interrupt coalescing as received packets
// (tx-done entries are never latency-sensitive, so only disabled coalescing
// interrupts per transmission — a large part of why disabling coalescing
// devastates message rate in Table I).
func (n *NIC) SendFrame(f *wire.Frame) {
	now := n.eng.Now()
	start := now
	if n.txBusyUntil > start {
		start = n.txBusyUntil
	}
	n.txBusyUntil = start + n.p.NIC.TxTime(f.WireBytes())
	n.Stats.PacketsSent++
	n.Stats.BytesSent += uint64(f.WireBytes())
	n.eng.ScheduleArg(n.txBusyUntil, n.txWireFn, f)
}

// txWire puts a fetched frame on the wire and reports the tx completion
// through the ring. The caller's frame reference travels with the frame into
// the fabric.
func (n *NIC) txWire(f *wire.Frame) {
	n.sw.Send(f)
	q := n.queues[0] // the tx ring reports through queue 0
	d := n.getDesc()
	d.TxDone = true
	d.Queue = q.idx
	d.DMADoneAt = n.eng.Now()
	q.completed = append(q.completed, d)
	q.coal.onDMAComplete(d, n.inflight)
}

// String describes the NIC for diagnostics.
func (n *NIC) String() string {
	return fmt.Sprintf("nic(%s, %s, %dq)", n.mac, n.Strategy(), len(n.queues))
}
