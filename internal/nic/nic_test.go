package nic

import (
	"testing"

	"openmxsim/internal/fabric"
	"openmxsim/internal/host"
	"openmxsim/internal/params"
	"openmxsim/internal/sim"
	"openmxsim/internal/wire"
)

// fakeDriver charges a fixed cost per packet and records processing times.
type fakeDriver struct {
	cost      sim.Time
	processed []*RxDesc
	times     []sim.Time
	cores     []int
	eng       *sim.Engine
}

func (f *fakeDriver) Process(d *RxDesc, core *host.Core, done func()) {
	core.SubmitIRQ(f.cost, false, func() {
		f.processed = append(f.processed, d)
		f.times = append(f.times, f.eng.Now())
		f.cores = append(f.cores, core.ID)
		done()
	})
}

type rig struct {
	eng *sim.Engine
	p   *params.Params
	hst *host.Host
	sw  *fabric.Switch
	nic *NIC
	drv *fakeDriver
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	eng := sim.NewEngine()
	p := params.Default()
	p.Link.JitterSD = 0
	p.Host.SleepEnabled = false
	hst := host.New(eng, 0, p.Host)
	hst.SetIRQPolicy(host.IRQSingleCore, 0)
	sw := fabric.NewSwitch(eng, p.Link, sim.NewRNG(1))
	n := New(eng, p, hst, sw, wire.NodeMAC(0), cfg)
	drv := &fakeDriver{cost: 500, eng: eng}
	n.SetDriver(drv)
	return &rig{eng: eng, p: p, hst: hst, sw: sw, nic: n, drv: drv}
}

func frame(marked bool, size int) *wire.Frame {
	h := wire.Header{Type: wire.TypeSmall}
	if marked {
		h.Flags = wire.FlagLatencySensitive
	}
	return wire.NewFrame(wire.NodeMAC(1), wire.NodeMAC(0), h, nil, size)
}

// inject delivers a frame to the NIC at time at.
func (r *rig) inject(at sim.Time, f *wire.Frame) {
	r.eng.Schedule(at, func() { r.nic.ReceiveFrame(f) })
}

func TestDisabledInterruptPerPacket(t *testing.T) {
	r := newRig(t, Config{Strategy: StrategyDisabled})
	const n = 10
	for i := 0; i < n; i++ {
		r.inject(sim.Time(i)*50*sim.Microsecond, frame(false, 128))
	}
	r.eng.Run()
	if len(r.drv.processed) != n {
		t.Fatalf("processed %d packets, want %d", len(r.drv.processed), n)
	}
	if r.nic.Stats.Interrupts != n {
		t.Errorf("interrupts = %d, want %d (one per packet)", r.nic.Stats.Interrupts, n)
	}
}

func TestTimeoutCoalescesBurst(t *testing.T) {
	r := newRig(t, Config{Strategy: StrategyTimeout, Delay: 75 * sim.Microsecond})
	const n = 20
	for i := 0; i < n; i++ {
		r.inject(sim.Time(i)*sim.Microsecond, frame(false, 128))
	}
	r.eng.Run()
	if len(r.drv.processed) != n {
		t.Fatalf("processed %d packets, want %d", len(r.drv.processed), n)
	}
	if r.nic.Stats.Interrupts != 1 {
		t.Errorf("interrupts = %d, want 1 (burst coalesced)", r.nic.Stats.Interrupts)
	}
	if r.nic.Stats.TimeoutFires != 1 {
		t.Errorf("timeout fires = %d, want 1", r.nic.Stats.TimeoutFires)
	}
}

func TestTimeoutLonePacketWaitsFullDelay(t *testing.T) {
	delay := 75 * sim.Microsecond
	r := newRig(t, Config{Strategy: StrategyTimeout, Delay: delay})
	r.inject(0, frame(false, 128))
	r.eng.Run()
	if len(r.drv.times) != 1 {
		t.Fatalf("processed %d packets", len(r.drv.times))
	}
	if r.drv.times[0] < delay {
		t.Errorf("packet processed at %d, before the %d coalescing delay", r.drv.times[0], delay)
	}
	if r.drv.times[0] > delay+10*sim.Microsecond {
		t.Errorf("packet processed at %d, far beyond the delay", r.drv.times[0])
	}
}

func TestDisabledLonePacketFast(t *testing.T) {
	r := newRig(t, Config{Strategy: StrategyDisabled})
	r.inject(0, frame(false, 128))
	r.eng.Run()
	if r.drv.times[0] > 5*sim.Microsecond {
		t.Errorf("uncoalesced packet took %d ns to reach the driver", r.drv.times[0])
	}
}

func TestMaxFramesForcesInterrupt(t *testing.T) {
	r := newRig(t, Config{Strategy: StrategyTimeout, Delay: sim.Millisecond, MaxFrames: 5})
	for i := 0; i < 5; i++ {
		r.inject(sim.Time(i)*sim.Microsecond, frame(false, 128))
	}
	r.eng.Run()
	if len(r.drv.processed) != 5 {
		t.Fatalf("processed %d", len(r.drv.processed))
	}
	if last := r.drv.times[4]; last > 100*sim.Microsecond {
		t.Errorf("5th packet at %d: max-frames did not force early interrupt", last)
	}
}

func TestOpenMXMarkedImmediate(t *testing.T) {
	r := newRig(t, Config{Strategy: StrategyOpenMX, Delay: 75 * sim.Microsecond})
	r.inject(0, frame(true, 128))
	r.eng.Run()
	if r.drv.times[0] > 5*sim.Microsecond {
		t.Errorf("marked packet took %d ns, want immediate interrupt", r.drv.times[0])
	}
	if r.nic.Stats.MarkedImmediate != 1 {
		t.Errorf("MarkedImmediate = %d, want 1", r.nic.Stats.MarkedImmediate)
	}
}

func TestOpenMXUnmarkedObeysTimeout(t *testing.T) {
	delay := 75 * sim.Microsecond
	r := newRig(t, Config{Strategy: StrategyOpenMX, Delay: delay})
	r.inject(0, frame(false, 128))
	r.eng.Run()
	if r.drv.times[0] < delay {
		t.Errorf("unmarked packet at %d beat the coalescing delay", r.drv.times[0])
	}
}

func TestOpenMXMediumPattern(t *testing.T) {
	// 23 fragments, only the last marked: one interrupt, raised at the
	// last fragment — the whole message processed at once.
	r := newRig(t, Config{Strategy: StrategyOpenMX, Delay: 75 * sim.Microsecond})
	const frags = 23
	gap := 1200 * sim.Nanosecond // wire-rate spacing of 1500B frames
	for i := 0; i < frags; i++ {
		r.inject(sim.Time(i)*gap, frame(i == frags-1, 1468))
	}
	r.eng.Run()
	if len(r.drv.processed) != frags {
		t.Fatalf("processed %d fragments, want %d", len(r.drv.processed), frags)
	}
	if r.nic.Stats.Interrupts != 1 {
		t.Errorf("interrupts = %d, want 1 (only last fragment marked)", r.nic.Stats.Interrupts)
	}
	lastArrival := sim.Time(frags-1) * gap
	if r.drv.times[0] < lastArrival {
		t.Errorf("processing began at %d, before last fragment arrived at %d", r.drv.times[0], lastArrival)
	}
	if r.drv.times[0] > lastArrival+10*sim.Microsecond {
		t.Errorf("processing began at %d, long after last fragment at %d", r.drv.times[0], lastArrival)
	}
}

func TestStreamDefersBurstOfMarked(t *testing.T) {
	// Back-to-back marked packets arriving within each other's DMA windows
	// must be merged into one interrupt (Algorithm 2).
	r := newRig(t, Config{Strategy: StrategyStream, Delay: 75 * sim.Microsecond})
	const n = 4
	for i := 0; i < n; i++ {
		r.inject(sim.Time(i)*200*sim.Nanosecond, frame(true, 128))
	}
	r.eng.Run()
	if len(r.drv.processed) != n {
		t.Fatalf("processed %d, want %d", len(r.drv.processed), n)
	}
	if r.nic.Stats.Interrupts != 1 {
		t.Errorf("interrupts = %d, want 1 (stream deferral)", r.nic.Stats.Interrupts)
	}
	if r.nic.Stats.Deferred == 0 {
		t.Error("Deferred counter not incremented")
	}
}

func TestStreamSingleMarkedStillImmediate(t *testing.T) {
	r := newRig(t, Config{Strategy: StrategyStream, Delay: 75 * sim.Microsecond})
	r.inject(0, frame(true, 128))
	r.eng.Run()
	if r.drv.times[0] > 5*sim.Microsecond {
		t.Errorf("lone marked packet took %d ns under stream coalescing", r.drv.times[0])
	}
}

func TestStreamSpacedMarkedPacketsInterruptEach(t *testing.T) {
	// Packets spaced far beyond the DMA window cannot be deferred.
	r := newRig(t, Config{Strategy: StrategyStream, Delay: 75 * sim.Microsecond})
	const n = 5
	for i := 0; i < n; i++ {
		r.inject(sim.Time(i)*50*sim.Microsecond, frame(true, 128))
	}
	r.eng.Run()
	if r.nic.Stats.Interrupts != n {
		t.Errorf("interrupts = %d, want %d (gaps too large to defer)", r.nic.Stats.Interrupts, n)
	}
}

func TestMaskedPollAbsorbsInterrupts(t *testing.T) {
	// Packets arriving while a poll is running are handled by that poll
	// without raising extra interrupts.
	r := newRig(t, Config{Strategy: StrategyDisabled})
	r.drv.cost = 5 * sim.Microsecond // slow handler keeps the poll busy
	for i := 0; i < 8; i++ {
		r.inject(sim.Time(i)*2*sim.Microsecond, frame(false, 128))
	}
	r.eng.Run()
	if len(r.drv.processed) != 8 {
		t.Fatalf("processed %d", len(r.drv.processed))
	}
	if r.nic.Stats.Interrupts >= 8 {
		t.Errorf("interrupts = %d: poll masking did not absorb any", r.nic.Stats.Interrupts)
	}
}

func TestNAPIBudgetReschedules(t *testing.T) {
	r := newRig(t, Config{Strategy: StrategyTimeout, Delay: 10 * sim.Microsecond})
	n := r.p.Host.NAPIBudget + 10
	for i := 0; i < n; i++ {
		r.inject(sim.Time(i)*100, frame(false, 128))
	}
	r.eng.Run()
	if len(r.drv.processed) != n {
		t.Fatalf("processed %d, want %d", len(r.drv.processed), n)
	}
	if r.nic.Stats.PollCycles < 2 {
		t.Errorf("poll cycles = %d, want >= 2 (budget exceeded)", r.nic.Stats.PollCycles)
	}
	if r.nic.Stats.Interrupts != 1 {
		t.Errorf("interrupts = %d, want 1 (budget resched does not unmask)", r.nic.Stats.Interrupts)
	}
}

func TestRingOverflowDrops(t *testing.T) {
	r := newRig(t, Config{Strategy: StrategyTimeout, Delay: sim.Millisecond})
	n := r.p.NIC.RxRingEntries + 50
	for i := 0; i < n; i++ {
		r.inject(sim.Time(i)*10, frame(false, 128))
	}
	r.eng.Run()
	if r.nic.Stats.RingDrops == 0 {
		t.Error("no drops despite ring overflow")
	}
	if got := int(r.nic.Stats.PacketsReceived); got > r.p.NIC.RxRingEntries {
		t.Errorf("accepted %d packets with ring of %d", got, r.p.NIC.RxRingEntries)
	}
}

func TestAdaptiveDelayTracksRate(t *testing.T) {
	r := newRig(t, Config{Strategy: StrategyAdaptive, Delay: 20 * sim.Microsecond})
	coal := r.nic.queues[0].coal.(*adaptiveCoalescer)
	// Dense traffic: delay should climb toward the maximum.
	for i := 0; i < 2000; i++ {
		r.inject(sim.Time(i)*sim.Microsecond, frame(false, 128))
	}
	r.eng.Run()
	dense := coal.Delay()
	if dense <= r.p.NIC.AdaptiveMin {
		t.Errorf("dense-traffic delay %d did not grow", dense)
	}
	// Sparse traffic: delay should fall back to the minimum.
	base := r.eng.Now()
	for i := 0; i < 10; i++ {
		r.inject(base+sim.Time(i+1)*300*sim.Microsecond, frame(false, 128))
	}
	r.eng.Run()
	if got := coal.Delay(); got != r.p.NIC.AdaptiveMin {
		t.Errorf("sparse-traffic delay = %d, want min %d", got, r.p.NIC.AdaptiveMin)
	}
}

func TestMultiqueueHashStable(t *testing.T) {
	r := newRig(t, Config{Strategy: StrategyDisabled, Queues: 4})
	f1 := frame(false, 128)
	q := r.nic.queueFor(f1)
	for i := 0; i < 10; i++ {
		if got := r.nic.queueFor(f1); got != q {
			t.Fatal("same channel hashed to different queues")
		}
	}
	// Different endpoints spread across queues.
	seen := map[int]bool{}
	for ep := 0; ep < 32; ep++ {
		h := wire.Header{Type: wire.TypeSmall, SrcEP: uint8(ep)}
		f := wire.NewFrame(wire.NodeMAC(1), wire.NodeMAC(0), h, nil, 64)
		seen[r.nic.queueFor(f)] = true
	}
	if len(seen) < 3 {
		t.Errorf("32 channels hit only %d of 4 queues", len(seen))
	}
}

func TestTxSerializes(t *testing.T) {
	eng := sim.NewEngine()
	p := params.Default()
	p.Link.JitterSD = 0
	hst := host.New(eng, 0, p.Host)
	sw := fabric.NewSwitch(eng, p.Link, sim.NewRNG(1))
	n := New(eng, p, hst, sw, wire.NodeMAC(0), Config{Strategy: StrategyDisabled})
	n.SetDriver(&fakeDriver{eng: eng})
	var arrivals []sim.Time
	sink := New(eng, p, host.New(eng, 1, p.Host), sw, wire.NodeMAC(1), Config{Strategy: StrategyDisabled})
	sink.SetDriver(&fakeDriver{eng: eng, cost: 1})
	_ = sink
	prev := uint64(0)
	eng.After(0, func() {
		for i := 0; i < 5; i++ {
			f := wire.NewFrame(wire.NodeMAC(0), wire.NodeMAC(1), wire.Header{Type: wire.TypeSmall}, nil, 1468)
			n.SendFrame(f)
		}
	})
	eng.Run()
	_ = arrivals
	_ = prev
	if n.Stats.PacketsSent != 5 {
		t.Fatalf("sent %d", n.Stats.PacketsSent)
	}
	if sink.Stats.PacketsReceived != 5 {
		t.Fatalf("peer received %d", sink.Stats.PacketsReceived)
	}
}

func TestInterruptCountInvariant(t *testing.T) {
	// Disabled coalescing never raises fewer interrupts than any other
	// strategy for the same arrival pattern.
	arrivals := make([]sim.Time, 60)
	for i := range arrivals {
		arrivals[i] = sim.Time(i) * 3 * sim.Microsecond
	}
	counts := map[Strategy]uint64{}
	for _, s := range []Strategy{StrategyDisabled, StrategyTimeout, StrategyOpenMX, StrategyStream} {
		r := newRig(t, Config{Strategy: s, Delay: 75 * sim.Microsecond})
		for i, at := range arrivals {
			r.inject(at, frame(i%4 == 3, 128))
		}
		r.eng.Run()
		counts[s] = r.nic.Stats.Interrupts
	}
	for s, c := range counts {
		if s != StrategyDisabled && c > counts[StrategyDisabled] {
			t.Errorf("%v raised %d interrupts, more than disabled's %d", s, c, counts[StrategyDisabled])
		}
	}
}

func TestParseStrategy(t *testing.T) {
	for i, name := range strategyNames {
		s, err := ParseStrategy(name)
		if err != nil || s != Strategy(i) {
			t.Errorf("ParseStrategy(%q) = %v, %v", name, s, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
}

// nopDriver completes packets with a fixed cost and no bookkeeping, so the
// allocation guard below measures only the stack's own hot path.
type nopDriver struct{ cost sim.Time }

func (d *nopDriver) Process(rx *RxDesc, core *host.Core, done func()) {
	core.SubmitIRQ(d.cost, false, done)
}

// The full frame round trip — pooled frame -> tx ring -> fabric -> rx ring
// -> DMA -> interrupt -> NAPI poll -> driver -> release — must allocate at
// most one object per frame in steady state (the allowance covers incidental
// runtime growth; the path itself recycles everything). This is the
// regression guard for the zero-allocation hot path: reintroducing
// per-packet garbage anywhere in nic/fabric/host/sim fails here.
func TestFrameRoundTripAllocGuard(t *testing.T) {
	eng := sim.NewEngine()
	p := params.Default()
	p.Link.JitterSD = 0
	p.Host.SleepEnabled = false
	sw := fabric.NewSwitch(eng, p.Link, sim.NewRNG(1))
	src := New(eng, p, host.New(eng, 0, p.Host), sw, wire.NodeMAC(0), Config{Strategy: StrategyDisabled})
	src.SetDriver(&nopDriver{cost: 100})
	dst := New(eng, p, host.New(eng, 1, p.Host), sw, wire.NodeMAC(1), Config{Strategy: StrategyDisabled})
	dst.SetDriver(&nopDriver{cost: 100})

	pool := wire.NewPool()
	h := wire.Header{Type: wire.TypeSmall}
	roundTrip := func() {
		src.SendFrame(pool.Get(wire.NodeMAC(0), wire.NodeMAC(1), h, nil, 64))
		eng.Run()
	}
	for i := 0; i < 64; i++ { // warm every free list on the path
		roundTrip()
	}
	if got := testing.AllocsPerRun(200, roundTrip); got > 1 {
		t.Fatalf("frame round trip allocates %v objects/op in steady state, want <= 1", got)
	}
	if want := uint64(64 + 1 + 200); dst.Stats.PacketsReceived < want {
		t.Fatalf("received %d frames, want >= %d", dst.Stats.PacketsReceived, want)
	}
}
