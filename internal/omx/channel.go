package omx

import (
	"slices"

	"openmxsim/internal/params"
	"openmxsim/internal/sim"
	"openmxsim/internal/trace"
	"openmxsim/internal/wire"
)

// channel is the reliable transport between one local endpoint and one
// remote endpoint: a sequence space with a send window and cumulative acks
// for eager traffic and the rendezvous/notify control packets. Pull
// requests and replies recover independently (block re-requests), as in
// MXoE.
//
// The channel retains sent frames (one pool reference each) until they are
// cumulatively acked; retransmission sends pooled copies so the retained
// originals stay immutable. Timer callbacks are bound once per channel.
type channel struct {
	ep     *Endpoint
	remote Addr

	connected       bool
	connectCbs      []func()
	connectTry      *sim.Event
	connectAttempts int

	// failed is set once the channel gives up (retry budget exhausted or
	// endpoint closed); every subsequent send completes immediately with
	// this error.
	failed error
	// rng jitters the backed-off retry delays. It is derived per channel
	// and never consumed on clean runs (the first resend after ack
	// progress always waits exactly ResendTimeout).
	rng *sim.RNG

	// Sender-side reliability state. resendAttempts counts consecutive
	// resend-timer expiries without ack progress; it drives the
	// exponential backoff and the MaxResends give-up.
	nextSeq        uint32
	firstUnacked   uint32
	txq            []*txPacket // waiting for window
	retained       []*txPacket // sent, not yet acked
	resendTimer    *sim.Event
	resendAttempts int

	// Receiver-side reliability state. recvNext is the next expected
	// (contiguous) sequence; consumedTo is how far the library has
	// consumed; ackedTo is the last cumulative ack sent. Acks cover only
	// consumed sequences, so the sender's window is clocked by the
	// application and the event ring stays bounded by the window.
	recvNext   uint32
	recvSeen   map[uint32]struct{}
	consumedTo uint32
	ackedTo    uint32
	ackTimer   *sim.Event
	// lastRxCoreID remembers which core last handled this channel's
	// packets so timer-driven acks are charged there; -1 before any.
	lastRxCoreID int

	// Medium send slots: concurrent mediums per channel are bounded by
	// the endpoint's send-ring capacity; excess sends queue here.
	mediumActive  int
	mediumPending []*sendOp

	// Timer callbacks, bound once at construction.
	resendFn       func()
	kernelAckFn    func()
	connectRetryFn func()
}

// txPacket is one sequenced packet: the retained frame plus the callback to
// run when it is handed to the NIC. Records recycle through the stack's
// free list.
type txPacket struct {
	frame *wire.Frame
	seq   uint32
	fn    func(any) // runs with arg when the packet is handed to the NIC
	arg   any
}

// mediumReasm is the library-level reassembly state of one medium message
// (Open-MX reassembles mediums in user space, one event per fragment).
type mediumReasm struct {
	msgID    uint32
	match    uint64
	total    int
	frags    int
	received int
	seen     []bool
	data     []byte // nil in size-only mode
	src      Addr
}

func newChannel(ep *Endpoint, remote Addr) *channel {
	key := uint64(remote.MAC[3])<<32 | uint64(remote.MAC[4])<<24 |
		uint64(remote.MAC[5])<<16 | uint64(remote.EP)<<8 | uint64(ep.ID)
	c := &channel{
		ep:           ep,
		remote:       remote,
		rng:          ep.stack.rng.Derive(0xBACC<<44 | key),
		recvSeen:     make(map[uint32]struct{}),
		lastRxCoreID: -1,
	}
	c.resendFn = func() {
		c.resendTimer = nil
		c.retransmit()
	}
	c.kernelAckFn = func() {
		c.ackTimer = nil
		p := c.stack().p
		if len(c.ep.ring) < p.Proto.EventRingEntries/16 {
			if c.recvNext != c.ackedTo {
				c.sendAck(false, c.recvNext)
			}
			return
		}
		if c.consumedTo != c.ackedTo {
			c.sendAck(false, c.consumedTo)
			return
		}
		c.armKernelAck() // still backed up: check again later
	}
	c.connectRetryFn = func() {
		c.connectTry = nil
		c.ep.sendConnect(c)
	}
	return c
}

func (c *channel) stack() *Stack { return c.ep.stack }

// inWindow reports whether seq may be transmitted now.
func (c *channel) inWindow(seq uint32) bool {
	return int(seq-c.firstUnacked) < c.stack().p.Proto.SendWindow
}

// send enqueues a sequenced packet and pumps the window. fn(arg) runs when
// the packet is handed to the NIC; both must outlive the packet (use
// long-lived callbacks). The caller's frame reference becomes the channel's
// retention reference, released once the packet is cumulatively acked.
// Sends on a failed channel complete immediately with the channel's error.
func (c *channel) send(f *wire.Frame, fn func(any), arg any) {
	if c.failed != nil {
		c.failSend(f, fn, arg, c.failed)
		return
	}
	pk := c.stack().getTx(f, c.nextSeq, fn, arg)
	f.Header.Seq = pk.seq
	c.nextSeq++
	c.txq = append(c.txq, pk)
	c.pump()
}

// pump transmits queued packets while the window allows.
func (c *channel) pump() {
	for len(c.txq) > 0 && c.inWindow(c.txq[0].seq) {
		pk := c.txq[0]
		copy(c.txq, c.txq[1:])
		c.txq[len(c.txq)-1] = nil
		c.txq = c.txq[:len(c.txq)-1]
		c.retained = append(c.retained, pk)
		// One reference travels the wire; the retained one stays here.
		pk.frame.Ref()
		c.stack().sendFrame(pk.frame)
		if pk.fn != nil {
			pk.fn(pk.arg)
		}
	}
	c.armResend()
}

func (c *channel) armResend() {
	if len(c.retained) == 0 {
		if c.resendTimer != nil {
			c.resendTimer.Cancel()
			c.resendTimer = nil
		}
		return
	}
	if c.resendTimer != nil {
		return
	}
	s := c.stack()
	d := s.p.Proto.ResendTimeout
	if c.resendAttempts > 0 {
		// Consecutive expiries without ack progress back off
		// exponentially (with deterministic jitter) instead of hammering
		// a congested or dead link at a fixed period.
		d = backoffDelay(&s.p.Proto, c.rng, c.resendAttempts)
		s.Stats.Backoffs++
	}
	c.resendTimer = s.eng.After(d, c.resendFn)
}

// backoffDelay returns the bounded-exponential retry delay for the given
// consecutive-attempt count, jittered deterministically from rng so peers
// that timed out together desynchronize identically on every run.
func backoffDelay(p *params.Proto, rng *sim.RNG, attempts int) sim.Time {
	if attempts > 20 {
		attempts = 20 // avoid shifting into the sign bit
	}
	d := p.ResendTimeout << uint(attempts)
	if p.ResendBackoffMax > 0 && d > p.ResendBackoffMax {
		d = p.ResendBackoffMax
	}
	return d + sim.Time(rng.Intn(int(d/8)+1))
}

// retransmit resends every unacked packet (go-back-N recovery). Copies go
// on the wire so the retained originals stay valid for the next timeout.
// After MaxResends consecutive timer expiries without ack progress the
// channel gives up instead of retrying forever.
func (c *channel) retransmit() {
	s := c.stack()
	if mr := s.p.Proto.MaxResends; mr > 0 && c.resendAttempts >= mr {
		c.giveUp(ErrGiveUp)
		return
	}
	c.resendAttempts++
	for _, pk := range c.retained {
		s.Stats.Retransmits++
		s.sendFrame(s.pool.Clone(pk.frame))
	}
	c.armResend()
}

// giveUp abandons the channel: the retry budget is exhausted (or the
// endpoint is closing), so retained and queued packets are dropped, their
// handles complete with err, and large sends toward the peer — which wait
// for a Notify that can never arrive — fail too. Pending connect callbacks
// are discarded; run-level liveness is the watchdog's job.
func (c *channel) giveUp(err error) {
	if c.failed != nil {
		return
	}
	s := c.stack()
	s.Stats.GiveUps++
	s.tr.Event(s.eng.Now(), trace.EvGiveUp, int64(s.Stats.GiveUps))
	c.teardown(err)

	// Sender-side large messages toward this peer, in msgID order so the
	// completion sequence is independent of map iteration.
	var ids []uint32
	for id, ls := range c.ep.pullSrc {
		if ls.dst == c.remote {
			ids = append(ids, id)
		}
	}
	slices.Sort(ids)
	for _, id := range ids {
		ls := c.ep.pullSrc[id]
		delete(c.ep.pullSrc, id)
		ls.handle.fail(err)
	}
}

// teardown marks the channel failed and flushes every queued packet and
// timer. Draining txq may cascade (a failed medium's completion hands its
// send slot to the next pending medium, whose fragments then fail through
// the send fast path), which is why failed is set first.
func (c *channel) teardown(err error) {
	s := c.stack()
	if c.failed == nil {
		c.failed = err
	}
	if c.resendTimer != nil {
		c.resendTimer.Cancel()
		c.resendTimer = nil
	}
	if c.connectTry != nil {
		c.connectTry.Cancel()
		c.connectTry = nil
	}
	c.connectCbs = nil
	for _, pk := range c.retained {
		// Handed to the NIC already: the handoff callback ran at pump
		// time, only the retention reference remains.
		pk.frame.Release()
		s.putTx(pk)
	}
	c.retained = c.retained[:0]
	for len(c.txq) > 0 {
		pk := c.txq[0]
		copy(c.txq, c.txq[1:])
		c.txq[len(c.txq)-1] = nil
		c.txq = c.txq[:len(c.txq)-1]
		c.failSend(pk.frame, pk.fn, pk.arg, err)
		s.putTx(pk)
	}
	for _, op := range c.mediumPending {
		if op.h != nil {
			op.h.fail(err)
		}
		c.ep.putOp(op)
	}
	c.mediumPending = nil
}

// failSend completes a packet's handoff callback with err instead of
// transmitting, and drops the frame reference. The handle types are
// recognized by their callback argument so eager and medium completions
// surface the error uniformly.
func (c *channel) failSend(f *wire.Frame, fn func(any), arg any, err error) {
	switch a := arg.(type) {
	case *SendHandle:
		if a.Err == nil {
			a.Err = err
		}
	case *sendOp:
		if a.h != nil && a.h.Err == nil {
			a.h.Err = err
		}
	}
	if fn != nil {
		fn(arg)
	}
	f.Release()
}

// onAck processes a cumulative ack: cum is the peer's next-expected seq.
func (c *channel) onAck(cum uint32) {
	s := c.stack()
	s.Stats.AcksReceived++
	if int32(cum-c.firstUnacked) <= 0 {
		return // stale
	}
	c.firstUnacked = cum
	c.resendAttempts = 0 // ack progress: the peer is alive, backoff resets
	keep := c.retained[:0]
	for _, pk := range c.retained {
		if int32(pk.seq-cum) >= 0 {
			keep = append(keep, pk)
			continue
		}
		pk.frame.Release() // retention reference
		s.putTx(pk)
	}
	for i := len(keep); i < len(c.retained); i++ {
		c.retained[i] = nil
	}
	c.retained = keep
	if c.resendTimer != nil {
		c.resendTimer.Cancel()
		c.resendTimer = nil
	}
	c.armResend()
	c.pump()
}

// acceptSeq deduplicates and advances the cumulative receive pointer.
// Returns false for duplicates (which are re-acked but not reprocessed).
func (c *channel) acceptSeq(seq uint32) bool {
	if int32(seq-c.recvNext) < 0 {
		c.stack().Stats.Duplicates++
		c.sendAckNow() // immediate re-ack resynchronizes the sender
		return false
	}
	if _, dup := c.recvSeen[seq]; dup {
		c.stack().Stats.Duplicates++
		c.sendAckNow()
		return false
	}
	c.recvSeen[seq] = struct{}{}
	for {
		if _, ok := c.recvSeen[c.recvNext]; !ok {
			break
		}
		delete(c.recvSeen, c.recvNext)
		c.recvNext++
	}
	c.armKernelAck()
	return true
}

// armKernelAck schedules the driver-side ack backstop: when the event ring
// is nearly empty (the library is keeping up or briefly away), the driver
// acks accepted sequences after AckDelay, so compute phases do not stall
// the sender's window into retransmits. Under sustained receive pressure
// the backstop stands down and acks stay consumption-clocked.
func (c *channel) armKernelAck() {
	if c.ackTimer != nil {
		return
	}
	c.ackTimer = c.stack().eng.After(c.stack().p.Proto.AckDelay, c.kernelAckFn)
}

// noteConsumed runs when the library applies an event covering sequences
// up to seq: every AckInterval consumed messages — or the ack-delay timer —
// trigger the cumulative ack. Acks are never marked latency-sensitive;
// that asymmetry is why the Open-MX coalescing firmware still beats
// disabled coalescing on message rate (Section IV-C2).
func (c *channel) noteConsumed(seq uint32) {
	if int32(seq-c.consumedTo) > 0 {
		c.consumedTo = seq
	}
	if int(c.consumedTo-c.ackedTo) >= c.stack().p.Proto.AckInterval {
		c.sendAck(true, c.consumedTo)
	}
}

func (c *channel) sendAckNow() {
	seq := c.consumedTo
	if int32(c.ackedTo-seq) > 0 {
		seq = c.ackedTo // never regress a previously sent kernel ack
	}
	c.sendAck(false, seq)
}

// sendAck emits a cumulative ack up to seq. fromApp acks are generated by
// the library as it consumes (charged to the application's core); kernel
// acks (duplicate resync, delay-timer backstop) run in driver context on
// the core that last handled the channel.
func (c *channel) sendAck(fromApp bool, seq uint32) {
	if int32(seq-c.ackedTo) > 0 {
		c.ackedTo = seq
	}
	if c.ackTimer != nil {
		c.ackTimer.Cancel()
		c.ackTimer = nil
	}
	if int32(c.recvNext-c.ackedTo) > 0 {
		// Accepted-but-unacked sequences remain: keep the backstop alive.
		c.armKernelAck()
	}
	s := c.stack()
	h := wire.Header{
		Type:  wire.TypeAck,
		SrcEP: c.ep.ID,
		DstEP: c.remote.EP,
		Aux:   c.ackedTo,
	}
	f := s.newFrame(s.MAC(), c.remote.MAC, h, nil, 0)
	s.Stats.AcksSent++
	if fromApp {
		c.ep.core.SubmitUserArg(s.p.Driver.AckCost, s.sendFrameFn, f)
		return
	}
	core := s.hst.Cores[0]
	if c.lastRxCoreID >= 0 {
		core = s.hst.Cores[c.lastRxCoreID]
	}
	core.SubmitIRQArg(s.p.Driver.AckCost, false, s.sendFrameFn, f)
}

// mediumDone releases the caller's medium send slot, handing it to the
// next queued medium if any.
func (c *channel) mediumDone() {
	if len(c.mediumPending) > 0 {
		next := c.mediumPending[0]
		copy(c.mediumPending, c.mediumPending[1:])
		c.mediumPending[len(c.mediumPending)-1] = nil
		c.mediumPending = c.mediumPending[:len(c.mediumPending)-1]
		c.ep.emitMediumFrags(next) // the slot passes directly to the next message
		return
	}
	c.mediumActive--
	if c.mediumActive < 0 {
		panic("omx: medium slot underflow")
	}
}
