package omx

import (
	"openmxsim/internal/sim"
	"openmxsim/internal/wire"
)

// channel is the reliable transport between one local endpoint and one
// remote endpoint: a sequence space with a send window and cumulative acks
// for eager traffic and the rendezvous/notify control packets. Pull
// requests and replies recover independently (block re-requests), as in
// MXoE.
//
// The channel retains sent frames (one pool reference each) until they are
// cumulatively acked; retransmission sends pooled copies so the retained
// originals stay immutable. Timer callbacks are bound once per channel.
type channel struct {
	ep     *Endpoint
	remote Addr

	connected  bool
	connectCbs []func()
	connectTry *sim.Event

	// Sender-side reliability state.
	nextSeq      uint32
	firstUnacked uint32
	txq          []*txPacket // waiting for window
	retained     []*txPacket // sent, not yet acked
	resendTimer  *sim.Event

	// Receiver-side reliability state. recvNext is the next expected
	// (contiguous) sequence; consumedTo is how far the library has
	// consumed; ackedTo is the last cumulative ack sent. Acks cover only
	// consumed sequences, so the sender's window is clocked by the
	// application and the event ring stays bounded by the window.
	recvNext   uint32
	recvSeen   map[uint32]struct{}
	consumedTo uint32
	ackedTo    uint32
	ackTimer   *sim.Event
	// lastRxCoreID remembers which core last handled this channel's
	// packets so timer-driven acks are charged there; -1 before any.
	lastRxCoreID int

	// Medium send slots: concurrent mediums per channel are bounded by
	// the endpoint's send-ring capacity; excess sends queue here.
	mediumActive  int
	mediumPending []*sendOp

	// Timer callbacks, bound once at construction.
	resendFn       func()
	kernelAckFn    func()
	connectRetryFn func()
}

// txPacket is one sequenced packet: the retained frame plus the callback to
// run when it is handed to the NIC. Records recycle through the stack's
// free list.
type txPacket struct {
	frame *wire.Frame
	seq   uint32
	fn    func(any) // runs with arg when the packet is handed to the NIC
	arg   any
}

// mediumReasm is the library-level reassembly state of one medium message
// (Open-MX reassembles mediums in user space, one event per fragment).
type mediumReasm struct {
	msgID    uint32
	match    uint64
	total    int
	frags    int
	received int
	seen     []bool
	data     []byte // nil in size-only mode
	src      Addr
}

func newChannel(ep *Endpoint, remote Addr) *channel {
	c := &channel{
		ep:           ep,
		remote:       remote,
		recvSeen:     make(map[uint32]struct{}),
		lastRxCoreID: -1,
	}
	c.resendFn = func() {
		c.resendTimer = nil
		c.retransmit()
	}
	c.kernelAckFn = func() {
		c.ackTimer = nil
		p := c.stack().p
		if len(c.ep.ring) < p.Proto.EventRingEntries/16 {
			if c.recvNext != c.ackedTo {
				c.sendAck(false, c.recvNext)
			}
			return
		}
		if c.consumedTo != c.ackedTo {
			c.sendAck(false, c.consumedTo)
			return
		}
		c.armKernelAck() // still backed up: check again later
	}
	c.connectRetryFn = func() {
		c.connectTry = nil
		c.ep.sendConnect(c)
	}
	return c
}

func (c *channel) stack() *Stack { return c.ep.stack }

// inWindow reports whether seq may be transmitted now.
func (c *channel) inWindow(seq uint32) bool {
	return int(seq-c.firstUnacked) < c.stack().p.Proto.SendWindow
}

// send enqueues a sequenced packet and pumps the window. fn(arg) runs when
// the packet is handed to the NIC; both must outlive the packet (use
// long-lived callbacks). The caller's frame reference becomes the channel's
// retention reference, released once the packet is cumulatively acked.
func (c *channel) send(f *wire.Frame, fn func(any), arg any) {
	pk := c.stack().getTx(f, c.nextSeq, fn, arg)
	f.Header.Seq = pk.seq
	c.nextSeq++
	c.txq = append(c.txq, pk)
	c.pump()
}

// pump transmits queued packets while the window allows.
func (c *channel) pump() {
	for len(c.txq) > 0 && c.inWindow(c.txq[0].seq) {
		pk := c.txq[0]
		copy(c.txq, c.txq[1:])
		c.txq[len(c.txq)-1] = nil
		c.txq = c.txq[:len(c.txq)-1]
		c.retained = append(c.retained, pk)
		// One reference travels the wire; the retained one stays here.
		pk.frame.Ref()
		c.stack().sendFrame(pk.frame)
		if pk.fn != nil {
			pk.fn(pk.arg)
		}
	}
	c.armResend()
}

func (c *channel) armResend() {
	if len(c.retained) == 0 {
		if c.resendTimer != nil {
			c.resendTimer.Cancel()
			c.resendTimer = nil
		}
		return
	}
	if c.resendTimer != nil {
		return
	}
	c.resendTimer = c.stack().eng.After(c.stack().p.Proto.ResendTimeout, c.resendFn)
}

// retransmit resends every unacked packet (go-back-N recovery). Copies go
// on the wire so the retained originals stay valid for the next timeout.
func (c *channel) retransmit() {
	s := c.stack()
	for _, pk := range c.retained {
		s.Stats.Retransmits++
		s.sendFrame(s.pool.Clone(pk.frame))
	}
	c.armResend()
}

// onAck processes a cumulative ack: cum is the peer's next-expected seq.
func (c *channel) onAck(cum uint32) {
	s := c.stack()
	s.Stats.AcksReceived++
	if int32(cum-c.firstUnacked) <= 0 {
		return // stale
	}
	c.firstUnacked = cum
	keep := c.retained[:0]
	for _, pk := range c.retained {
		if int32(pk.seq-cum) >= 0 {
			keep = append(keep, pk)
			continue
		}
		pk.frame.Release() // retention reference
		s.putTx(pk)
	}
	for i := len(keep); i < len(c.retained); i++ {
		c.retained[i] = nil
	}
	c.retained = keep
	if c.resendTimer != nil {
		c.resendTimer.Cancel()
		c.resendTimer = nil
	}
	c.armResend()
	c.pump()
}

// acceptSeq deduplicates and advances the cumulative receive pointer.
// Returns false for duplicates (which are re-acked but not reprocessed).
func (c *channel) acceptSeq(seq uint32) bool {
	if int32(seq-c.recvNext) < 0 {
		c.stack().Stats.Duplicates++
		c.sendAckNow() // immediate re-ack resynchronizes the sender
		return false
	}
	if _, dup := c.recvSeen[seq]; dup {
		c.stack().Stats.Duplicates++
		c.sendAckNow()
		return false
	}
	c.recvSeen[seq] = struct{}{}
	for {
		if _, ok := c.recvSeen[c.recvNext]; !ok {
			break
		}
		delete(c.recvSeen, c.recvNext)
		c.recvNext++
	}
	c.armKernelAck()
	return true
}

// armKernelAck schedules the driver-side ack backstop: when the event ring
// is nearly empty (the library is keeping up or briefly away), the driver
// acks accepted sequences after AckDelay, so compute phases do not stall
// the sender's window into retransmits. Under sustained receive pressure
// the backstop stands down and acks stay consumption-clocked.
func (c *channel) armKernelAck() {
	if c.ackTimer != nil {
		return
	}
	c.ackTimer = c.stack().eng.After(c.stack().p.Proto.AckDelay, c.kernelAckFn)
}

// noteConsumed runs when the library applies an event covering sequences
// up to seq: every AckInterval consumed messages — or the ack-delay timer —
// trigger the cumulative ack. Acks are never marked latency-sensitive;
// that asymmetry is why the Open-MX coalescing firmware still beats
// disabled coalescing on message rate (Section IV-C2).
func (c *channel) noteConsumed(seq uint32) {
	if int32(seq-c.consumedTo) > 0 {
		c.consumedTo = seq
	}
	if int(c.consumedTo-c.ackedTo) >= c.stack().p.Proto.AckInterval {
		c.sendAck(true, c.consumedTo)
	}
}

func (c *channel) sendAckNow() {
	seq := c.consumedTo
	if int32(c.ackedTo-seq) > 0 {
		seq = c.ackedTo // never regress a previously sent kernel ack
	}
	c.sendAck(false, seq)
}

// sendAck emits a cumulative ack up to seq. fromApp acks are generated by
// the library as it consumes (charged to the application's core); kernel
// acks (duplicate resync, delay-timer backstop) run in driver context on
// the core that last handled the channel.
func (c *channel) sendAck(fromApp bool, seq uint32) {
	if int32(seq-c.ackedTo) > 0 {
		c.ackedTo = seq
	}
	if c.ackTimer != nil {
		c.ackTimer.Cancel()
		c.ackTimer = nil
	}
	if int32(c.recvNext-c.ackedTo) > 0 {
		// Accepted-but-unacked sequences remain: keep the backstop alive.
		c.armKernelAck()
	}
	s := c.stack()
	h := wire.Header{
		Type:  wire.TypeAck,
		SrcEP: c.ep.ID,
		DstEP: c.remote.EP,
		Aux:   c.ackedTo,
	}
	f := s.newFrame(s.MAC(), c.remote.MAC, h, nil, 0)
	s.Stats.AcksSent++
	if fromApp {
		c.ep.core.SubmitUserArg(s.p.Driver.AckCost, s.sendFrameFn, f)
		return
	}
	core := s.hst.Cores[0]
	if c.lastRxCoreID >= 0 {
		core = s.hst.Cores[c.lastRxCoreID]
	}
	core.SubmitIRQArg(s.p.Driver.AckCost, false, s.sendFrameFn, f)
}

// mediumDone releases the caller's medium send slot, handing it to the
// next queued medium if any.
func (c *channel) mediumDone() {
	if len(c.mediumPending) > 0 {
		next := c.mediumPending[0]
		copy(c.mediumPending, c.mediumPending[1:])
		c.mediumPending[len(c.mediumPending)-1] = nil
		c.mediumPending = c.mediumPending[:len(c.mediumPending)-1]
		c.ep.emitMediumFrags(next) // the slot passes directly to the next message
		return
	}
	c.mediumActive--
	if c.mediumActive < 0 {
		panic("omx: medium slot underflow")
	}
}
