package omx

import (
	"slices"
	"sort"
)

// Close tears down the endpoint. Every outstanding timer is cancelled —
// in particular the per-block pull retry timers, which previously kept
// firing (and re-requesting blocks) against a closed endpoint — retained
// frames are released, and outstanding operations complete with ErrClosed:
// receiver-side pulls, sender-side large messages, and queued-but-unsent
// packets. The endpoint is removed from the stack, so later frames for its
// ID are counted as NoEndpointDrop; new Isend/Irecv calls fail
// immediately. Close is idempotent, and all teardown completions run in
// deterministic (address, msgID) order regardless of map iteration.
func (e *Endpoint) Close() {
	if e.closed {
		return
	}
	e.closed = true

	// Receiver-side pulls.
	pkeys := make([]pullKey, 0, len(e.pulls))
	for k := range e.pulls {
		pkeys = append(pkeys, k)
	}
	sort.SliceStable(pkeys, func(i, j int) bool { return lessPullKey(pkeys[i], pkeys[j]) })
	for _, k := range pkeys {
		ps := e.pulls[k]
		ps.done = true
		//omxlint:allow maprange: timer cancellation is idempotent and per-timer; order cannot matter
		for _, t := range ps.timers {
			t.Cancel()
		}
		ps.timers = nil
		delete(e.pulls, k)
		ps.rh.fail(ErrClosed)
	}

	// Sender-side announced large messages.
	ids := make([]uint32, 0, len(e.pullSrc))
	for id := range e.pullSrc {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		ls := e.pullSrc[id]
		delete(e.pullSrc, id)
		ls.handle.fail(ErrClosed)
	}

	// Channels: resend/ack/connect timers, retained and queued packets.
	addrs := make([]Addr, 0, len(e.channels))
	for a := range e.channels {
		addrs = append(addrs, a)
	}
	sort.SliceStable(addrs, func(i, j int) bool { return lessAddr(addrs[i], addrs[j]) })
	for _, a := range addrs {
		c := e.channels[a]
		c.teardown(ErrClosed)
		if c.ackTimer != nil {
			c.ackTimer.Cancel()
			c.ackTimer = nil
		}
	}

	// Posted receives that can no longer match anything.
	posted := e.posted
	e.posted = nil
	for _, rh := range posted {
		rh.fail(ErrClosed)
	}

	delete(e.stack.endpoints, e.ID)
}

func lessAddr(a, b Addr) bool {
	for i := range a.MAC {
		if a.MAC[i] != b.MAC[i] {
			return a.MAC[i] < b.MAC[i]
		}
	}
	return a.EP < b.EP
}

func lessPullKey(a, b pullKey) bool {
	if a.src != b.src {
		return lessAddr(a.src, b.src)
	}
	return a.msgID < b.msgID
}
