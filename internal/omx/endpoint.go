package omx

import (
	"fmt"

	"openmxsim/internal/host"
	"openmxsim/internal/sim"
	"openmxsim/internal/wire"
)

// SendHandle tracks an in-progress send. Eager sends complete when their
// last fragment is handed to the NIC (buffered semantics); large sends
// complete when the receiver's Notify arrives (Fig. 3).
type SendHandle struct {
	Done bool
	// Err is non-nil when the operation was abandoned rather than
	// delivered: ErrGiveUp after the retry budget ran out, ErrClosed when
	// the endpoint closed underneath it.
	Err    error
	Size   int
	onDone func()
}

func (h *SendHandle) complete() {
	if h.Done {
		return
	}
	h.Done = true
	if h.onDone != nil {
		h.onDone()
	}
}

// fail completes the handle with err (first error wins).
func (h *SendHandle) fail(err error) {
	if h.Done {
		return
	}
	if h.Err == nil {
		h.Err = err
	}
	h.complete()
}

// RecvHandle tracks a posted receive. Matching follows MX semantics: the
// message matches when (msgMatch & Mask) == (Match & Mask).
type RecvHandle struct {
	Done bool
	// Err is non-nil when the receive was abandoned rather than
	// delivered: ErrGiveUp when a large-message pull exhausted its retry
	// budget, ErrClosed when the endpoint closed. Len and Buf contents
	// are meaningless in that case.
	Err   error
	Match uint64
	Mask  uint64
	// Buf, when non-nil, receives the data; Cap is the logical capacity
	// for size-only operation.
	Buf []byte
	Cap int
	// Src and Len describe the matched message once Done.
	Src    Addr
	MatchV uint64
	Len    int
	onDone func(*RecvHandle)
}

func (h *RecvHandle) complete() {
	if h.Done {
		return
	}
	h.Done = true
	if h.onDone != nil {
		h.onDone(h)
	}
}

// fail completes the handle with err (first error wins).
func (h *RecvHandle) fail(err error) {
	if h.Done {
		return
	}
	if h.Err == nil {
		h.Err = err
	}
	h.complete()
}

func (h *RecvHandle) matches(m uint64) bool {
	return (m & h.Mask) == (h.Match & h.Mask)
}

type evKind int

const (
	evEager evKind = iota
	evMediumFrag
	evRendezvous
	evPullDone
	evNotifyRecvd
)

// event is one entry of the driver-to-library ring. Events recycle through
// a per-endpoint free list once the library has applied them.
type event struct {
	kind       evKind
	src        Addr
	match      uint64
	data       []byte
	size       int // message size (for mediums: total message size)
	msgID      uint32
	fragIdx    int         // evMediumFrag
	fragCount  int         // evMediumFrag
	rh         *RecvHandle // evPullDone
	ch         *channel    // non-nil for sequenced packets: acked on consume
	ackSeq     uint32      // cumulative sequence this event's consumption acks
	writerCore int
}

type unexpMsg struct {
	kind  evKind // evEager or evRendezvous
	src   Addr
	match uint64
	data  []byte
	size  int
	msgID uint32
}

// sendOp carries one posted operation (send or shared-memory transfer)
// through the user-context cost charge to its protocol action, replacing a
// per-call closure. Records recycle through a per-endpoint free list.
type sendOp struct {
	dst   Addr
	match uint64
	data  []byte
	size  int
	frags int
	h     *SendHandle
	ch    *channel
	local *Endpoint // shm destination
}

// Endpoint is an open MX endpoint: the unit an application rank talks to.
type Endpoint struct {
	stack *Stack
	ID    uint8
	core  *host.Core
	// rng jitters the pull-retry backoff; its stream is derived from the
	// stack's and never consumed on clean (retry-free) runs.
	rng    *sim.RNG
	closed bool

	channels  map[Addr]*channel
	nextMsgID uint32

	// Event ring from driver to library.
	ring         []*event
	lastWriter   int
	pickupActive bool

	// Library-level matching.
	posted     []*RecvHandle
	unexpected []*unexpMsg

	// Library-level medium reassembly, keyed by (source, message id).
	reasm map[pullKey]*mediumReasm

	// Large-message state.
	pulls   map[pullKey]*pullState // receiver side
	pullSrc map[uint32]*largeSend  // sender side

	// Free lists and once-bound callbacks for the hot paths.
	evFree        []*event
	opFree        []*sendOp
	applyFn       func(any)
	popOneFn      func(any)
	matchOrPostFn func(any)
	smallFn       func(any)
	mediumFn      func(any)
	largeFn       func(any)
	shmFn         func(any)
}

func newEndpoint(s *Stack, id uint8, core *host.Core) *Endpoint {
	e := &Endpoint{
		stack:      s,
		ID:         id,
		core:       core,
		rng:        s.rng.Derive(0xE9D0<<40 | uint64(id)),
		channels:   make(map[Addr]*channel),
		lastWriter: -1,
		reasm:      make(map[pullKey]*mediumReasm),
		pulls:      make(map[pullKey]*pullState),
		pullSrc:    make(map[uint32]*largeSend),
	}
	e.applyFn = func(x any) {
		ev := x.(*event)
		e.applyEvent(ev)
		e.putEvent(ev)
		e.popOne()
	}
	e.popOneFn = func(any) { e.popOne() }
	e.matchOrPostFn = func(x any) { e.matchOrPost(x.(*RecvHandle)) }
	e.smallFn = func(x any) { e.smallPost(x.(*sendOp)) }
	e.mediumFn = func(x any) { e.mediumPost(x.(*sendOp)) }
	e.largeFn = func(x any) { e.largePost(x.(*sendOp)) }
	e.shmFn = func(x any) { e.shmPost(x.(*sendOp)) }
	return e
}

func (e *Endpoint) getEvent() *event {
	if n := len(e.evFree); n > 0 {
		ev := e.evFree[n-1]
		e.evFree[n-1] = nil
		e.evFree = e.evFree[:n-1]
		return ev
	}
	return &event{}
}

func (e *Endpoint) putEvent(ev *event) {
	*ev = event{}
	e.evFree = append(e.evFree, ev)
}

func (e *Endpoint) getOp() *sendOp {
	if n := len(e.opFree); n > 0 {
		op := e.opFree[n-1]
		e.opFree[n-1] = nil
		e.opFree = e.opFree[:n-1]
		return op
	}
	return &sendOp{}
}

func (e *Endpoint) putOp(op *sendOp) {
	*op = sendOp{}
	e.opFree = append(e.opFree, op)
}

// Addr returns this endpoint's fabric address.
func (e *Endpoint) Addr() Addr { return Addr{MAC: e.stack.MAC(), EP: e.ID} }

// Core returns the core the owning rank is pinned to.
func (e *Endpoint) Core() *host.Core { return e.core }

func (e *Endpoint) channelFor(a Addr) *channel {
	c, ok := e.channels[a]
	if !ok {
		c = newChannel(e, a)
		e.channels[a] = c
	}
	return c
}

// Connect opens the channel to addr and calls cb once the handshake
// completes. Intra-node channels connect immediately.
func (e *Endpoint) Connect(addr Addr, cb func()) {
	if e.stack.localEndpoint(addr) != nil {
		if cb != nil {
			e.core.SubmitUser(e.stack.p.Lib.SendPost, cb)
		}
		return
	}
	c := e.channelFor(addr)
	if c.connected {
		if cb != nil {
			cb()
		}
		return
	}
	if cb != nil {
		c.connectCbs = append(c.connectCbs, cb)
	}
	e.core.SubmitUser(e.stack.p.Lib.SendPost, func() {
		e.sendConnect(c)
	})
}

func (e *Endpoint) sendConnect(c *channel) {
	if c.connected || c.failed != nil {
		return
	}
	if mr := e.stack.p.Proto.MaxResends; mr > 0 && c.connectAttempts > mr {
		c.giveUp(ErrGiveUp)
		return
	}
	c.connectAttempts++
	h := wire.Header{Type: wire.TypeConnect, SrcEP: e.ID, DstEP: c.remote.EP}
	e.stack.sendFrame(e.stack.newFrame(e.stack.MAC(), c.remote.MAC, h, nil, 0))
	if c.connectTry != nil {
		c.connectTry.Cancel()
	}
	d := e.stack.p.Proto.ResendTimeout
	if c.connectAttempts > 1 {
		d = backoffDelay(&e.stack.p.Proto, c.rng, c.connectAttempts-1)
		e.stack.Stats.Backoffs++
	}
	c.connectTry = e.stack.eng.After(d, c.connectRetryFn)
}

// Isend posts a non-blocking send. data may be nil for size-only
// simulation. onDone (optional) fires in engine context at completion.
func (e *Endpoint) Isend(dst Addr, match uint64, data []byte, size int, onDone func()) *SendHandle {
	if data != nil {
		size = len(data)
	}
	h := &SendHandle{Size: size, onDone: onDone}
	if e.closed {
		h.fail(ErrClosed)
		return h
	}
	p := e.stack.p

	if local := e.stack.localEndpoint(dst); local != nil {
		e.shmSend(local, match, data, size, h)
		return h
	}

	switch {
	case size <= p.Proto.SmallMax:
		e.sendSmall(dst, match, data, size, h)
	case size <= p.Proto.MediumMax:
		e.sendMedium(dst, match, data, size, h)
	default:
		e.sendLarge(dst, match, data, size, h)
	}
	return h
}

// Irecv posts a non-blocking receive. buf may be nil (size-only); cap is
// the logical buffer size in that case.
func (e *Endpoint) Irecv(match, mask uint64, buf []byte, capacity int, onDone func(*RecvHandle)) *RecvHandle {
	if buf != nil {
		capacity = len(buf)
	}
	rh := &RecvHandle{Match: match, Mask: mask, Buf: buf, Cap: capacity, onDone: onDone}
	if e.closed {
		rh.fail(ErrClosed)
		return rh
	}
	p := e.stack.p
	cost := p.Lib.RecvPost + p.Lib.Match
	e.core.SubmitUserArg(cost, e.matchOrPostFn, rh)
	return rh
}

// matchOrPost tries the unexpected queue, then appends to the posted queue.
func (e *Endpoint) matchOrPost(rh *RecvHandle) {
	for i, u := range e.unexpected {
		if !rh.matches(u.match) {
			continue
		}
		e.unexpected = append(e.unexpected[:i], e.unexpected[i+1:]...)
		switch u.kind {
		case evEager:
			// Copy out of the unexpected buffer in user context.
			cost := e.stack.p.Lib.CopyTime(min(u.size, rh.Cap)) + e.stack.p.Lib.PerMessage
			e.core.SubmitUser(cost, func() {
				deliverEager(rh, u.src, u.match, u.data, u.size)
			})
		case evRendezvous:
			e.startPull(u.src, u.msgID, u.size, u.match, rh)
		}
		return
	}
	e.posted = append(e.posted, rh)
}

func deliverEager(rh *RecvHandle, src Addr, match uint64, data []byte, size int) {
	rh.Src = src
	rh.MatchV = match
	rh.Len = size
	if rh.Len > rh.Cap {
		rh.Len = rh.Cap // truncation
	}
	if rh.Buf != nil && data != nil {
		copy(rh.Buf, data[:min(len(data), len(rh.Buf))])
	}
	rh.complete()
}

// ---- send paths (user context) ----

// completeSendFn is the NIC-handoff callback of eager single-packet sends.
func completeSendFn(x any) { x.(*SendHandle).complete() }

func (e *Endpoint) sendSmall(dst Addr, match uint64, data []byte, size int, h *SendHandle) {
	p := e.stack.p
	cost := p.Lib.SendPost + p.Driver.TxPacket + e.stack.hst.P.CopyTime(size)
	op := e.getOp()
	op.dst, op.match, op.data, op.size, op.h = dst, match, data, size, h
	e.core.SubmitUserArg(cost, e.smallFn, op)
}

// smallPost runs at the send-post cost's completion: build and queue the
// single eager packet.
func (e *Endpoint) smallPost(op *sendOp) {
	dst, match, data, size, h := op.dst, op.match, op.data, op.size, op.h
	e.putOp(op)
	typ := wire.TypeSmall
	if size <= 32 {
		typ = wire.TypeTiny
	}
	hd := wire.Header{
		Type: typ, SrcEP: e.ID, DstEP: dst.EP,
		Match: match, MsgID: e.allocMsgID(), Aux: uint32(size),
		FragCount: 1,
	}
	if e.stack.Mark.Small {
		hd.Flags |= wire.FlagLatencySensitive
	}
	f := e.stack.newFrame(e.stack.MAC(), dst.MAC, hd, cloneData(data), size)
	e.stack.Stats.SmallSent++
	e.channelFor(dst).send(f, completeSendFn, h)
}

func (e *Endpoint) sendMedium(dst Addr, match uint64, data []byte, size int, h *SendHandle) {
	p := e.stack.p
	fragPayload := e.stack.eagerFragPayload()
	frags := (size + fragPayload - 1) / fragPayload
	if frags == 0 {
		frags = 1
	}
	// The sender copies medium data into the driver's send ring: per-frag
	// driver work plus the kernel copy, all in user (syscall) context.
	cost := p.Lib.SendPost + sim.Time(frags)*p.Driver.TxPacket + e.stack.hst.P.CopyTime(size)
	op := e.getOp()
	op.dst, op.match, op.data, op.size, op.frags, op.h = dst, match, data, size, frags, h
	e.core.SubmitUserArg(cost, e.mediumFn, op)
}

// mediumPost claims a medium send slot or queues the message behind one.
func (e *Endpoint) mediumPost(op *sendOp) {
	ch := e.channelFor(op.dst)
	op.ch = ch
	if ch.mediumActive >= e.stack.p.Proto.MediumInflight {
		// The endpoint's send ring has no free medium slot: queue.
		ch.mediumPending = append(ch.mediumPending, op)
		return
	}
	ch.mediumActive++
	e.emitMediumFrags(op)
}

// mediumLastFn fires when the last fragment reaches the NIC: the message is
// complete (buffered semantics) and its send slot is released.
func mediumLastFn(x any) {
	op := x.(*sendOp)
	e, ch, h := op.ch.ep, op.ch, op.h
	e.putOp(op)
	h.complete()
	ch.mediumDone()
}

// emitMediumFrags owns one medium send slot: it paces the fragments onto
// the channel and releases the slot when the last fragment reaches the NIC.
// It consumes op (recycled by mediumLastFn).
func (e *Endpoint) emitMediumFrags(op *sendOp) {
	p := e.stack.p
	ch, dst, match, data, size, frags := op.ch, op.dst, op.match, op.data, op.size, op.frags
	fragPayload := e.stack.eagerFragPayload()
	{
		msgID := e.allocMsgID()
		markIdx := frags - 1 - e.stack.Mark.MediumMarkShift
		if markIdx < 0 {
			markIdx = 0
		}
		e.stack.Stats.MediumSent++
		// Fragments flow through the message's send-ring slots, paced
		// ~MediumFragGap apart (ring handling and doorbells); concurrent
		// messages pace independently.
		now := e.stack.eng.Now()
		release := now
		for i := 0; i < frags; i++ {
			off := i * fragPayload
			plen := min(fragPayload, size-off)
			hd := wire.Header{
				Type: wire.TypeMediumFrag, SrcEP: e.ID, DstEP: dst.EP,
				Match: match, MsgID: msgID, Aux: uint32(size),
				FragIndex: uint16(i), FragCount: uint16(frags),
			}
			if i == frags-1 {
				hd.Flags |= wire.FlagLastFragment
			}
			if e.stack.Mark.MediumLast && i == markIdx {
				hd.Flags |= wire.FlagLatencySensitive
			}
			var fd []byte
			if data != nil {
				fd = data[off : off+plen]
			}
			f := e.stack.newFrame(e.stack.MAC(), dst.MAC, hd, fd, plen)
			var onTx func(any)
			var onTxArg any
			if i == frags-1 {
				onTx, onTxArg = mediumLastFn, op
			}
			if release <= now {
				ch.send(f, onTx, onTxArg)
			} else {
				e.stack.schedulePaced(release, ch, f, onTx, onTxArg)
			}
			gap := p.Driver.MediumFragGap
			if d := p.Driver.MediumFragGapJitterDiv; d > 0 && gap > 0 {
				gap = e.stack.rng.Jitter(gap, gap/sim.Time(d))
			}
			release += gap
		}
	}
}

func (e *Endpoint) sendLarge(dst Addr, match uint64, data []byte, size int, h *SendHandle) {
	p := e.stack.p
	cost := p.Lib.SendPost + p.Driver.TxPacket
	op := e.getOp()
	op.dst, op.match, op.data, op.size, op.h = dst, match, data, size, h
	e.core.SubmitUserArg(cost, e.largeFn, op)
}

// largePost announces a large message with a rendezvous.
func (e *Endpoint) largePost(op *sendOp) {
	dst, match, data, size, h := op.dst, op.match, op.data, op.size, op.h
	e.putOp(op)
	if c := e.channelFor(dst); c.failed != nil {
		// The channel already gave up: the Notify this send would wait
		// for can never arrive.
		h.fail(c.failed)
		return
	}
	msgID := e.allocMsgID()
	e.pullSrc[msgID] = &largeSend{msgID: msgID, data: data, size: size, handle: h, dst: dst}
	hd := wire.Header{
		Type: wire.TypeRendezvous, SrcEP: e.ID, DstEP: dst.EP,
		Match: match, MsgID: msgID, Aux: uint32(size),
	}
	if e.stack.Mark.Rendezvous {
		hd.Flags |= wire.FlagLatencySensitive
	}
	e.stack.Stats.LargeSent++
	e.channelFor(dst).send(e.stack.newFrame(e.stack.MAC(), dst.MAC, hd, nil, 0), nil, nil)
}

func (e *Endpoint) shmSend(dst *Endpoint, match uint64, data []byte, size int, h *SendHandle) {
	p := e.stack.p
	cost := p.Lib.SendPost + p.Lib.CopyTime(size) + p.Lib.ShmLatency
	op := e.getOp()
	op.local, op.match, op.data, op.size, op.h = dst, match, data, size, h
	e.core.SubmitUserArg(cost, e.shmFn, op)
}

// shmPost delivers an intra-node message straight into the peer's ring.
func (e *Endpoint) shmPost(op *sendOp) {
	dst, match, data, size, h := op.local, op.match, op.data, op.size, op.h
	e.putOp(op)
	e.stack.Stats.ShmSent++
	h.complete()
	ev := dst.getEvent()
	ev.kind = evEager
	ev.src = e.Addr()
	ev.match = match
	ev.data = cloneData(data)
	ev.size = size
	ev.writerCore = e.core.ID
	dst.postEvent(ev)
}

func (e *Endpoint) allocMsgID() uint32 {
	e.nextMsgID++
	return e.nextMsgID
}

func cloneData(d []byte) []byte {
	if d == nil {
		return nil
	}
	return append([]byte(nil), d...)
}

// ---- event ring & pickup (library side) ----

// postEvent appends an event to the endpoint's shared ring and kicks the
// library pickup chain. Returns false when the ring is full. The ring takes
// ownership of ev; it is recycled once the library applies it.
func (e *Endpoint) postEvent(ev *event) bool {
	if len(e.ring) >= e.stack.p.Proto.EventRingEntries {
		e.stack.Stats.EventRingFull++
		e.putEvent(ev)
		return false
	}
	e.ring = append(e.ring, ev)
	e.kickPickup()
	return true
}

func (e *Endpoint) ringHasSpace() bool {
	return len(e.ring) < e.stack.p.Proto.EventRingEntries
}

func (e *Endpoint) kickPickup() {
	if e.pickupActive || len(e.ring) == 0 {
		return
	}
	e.pickupActive = true
	cost := e.stack.p.Lib.Progress
	if len(e.ring) > 0 && e.ring[0].writerCore != e.core.ID {
		// The event ring's cache lines were last written by another core.
		cost += e.stack.p.Host.CacheBounce
	}
	e.core.SubmitUserArg(cost, e.popOneFn, nil)
}

func (e *Endpoint) popOne() {
	if len(e.ring) == 0 {
		e.pickupActive = false
		return
	}
	ev := e.ring[0]
	copy(e.ring, e.ring[1:])
	e.ring[len(e.ring)-1] = nil
	e.ring = e.ring[:len(e.ring)-1]

	p := e.stack.p
	cost := p.Lib.EventPop
	switch ev.kind {
	case evEager:
		cost += p.Lib.Match
		if rh := e.peekMatch(ev.match); rh != nil {
			cost += p.Lib.CopyTime(min(ev.size, rh.Cap)) + p.Lib.PerMessage
		} else {
			cost += p.Lib.CopyTime(ev.size) // unexpected buffering copy
		}
	case evMediumFrag:
		// Library reassembly: copy the fragment out of the ring; the
		// final fragment additionally matches and completes the message.
		cost += p.Lib.FragEvent + p.Lib.CopyTime(len(ev.data))
		if ev.data == nil {
			cost += p.Lib.CopyTime(fragLenFor(e, ev))
		}
		if r, ok := e.reasm[pullKey{src: ev.src, msgID: ev.msgID}]; ok {
			if r.received+1 == r.frags {
				cost += p.Lib.Match + p.Lib.PerMessage
			}
		} else if ev.fragCount == 1 {
			cost += p.Lib.Match + p.Lib.PerMessage
		}
	case evRendezvous:
		cost += p.Lib.Match
		if e.peekMatch(ev.match) != nil {
			cost += sim.Time(p.Proto.PullParallel) * (p.Driver.PullRequestCost + p.Driver.TxPacket)
		}
	case evPullDone, evNotifyRecvd:
		cost += p.Lib.PerMessage
	}
	e.core.SubmitUserArg(cost, e.applyFn, ev)
}

// peekMatch returns the first posted receive matching m without removing it.
func (e *Endpoint) peekMatch(m uint64) *RecvHandle {
	for _, rh := range e.posted {
		if rh.matches(m) {
			return rh
		}
	}
	return nil
}

func (e *Endpoint) takeMatch(m uint64) *RecvHandle {
	for i, rh := range e.posted {
		if rh.matches(m) {
			e.posted = append(e.posted[:i], e.posted[i+1:]...)
			return rh
		}
	}
	return nil
}

func (e *Endpoint) applyEvent(ev *event) {
	if ev.ch != nil {
		// Library-clocked ack: consuming the event acknowledges its
		// sequenced packets.
		ev.ch.noteConsumed(ev.ackSeq)
	}
	switch ev.kind {
	case evEager:
		if rh := e.takeMatch(ev.match); rh != nil {
			deliverEager(rh, ev.src, ev.match, ev.data, ev.size)
			return
		}
		e.stack.Stats.UnexpectedMsgs++
		e.unexpected = append(e.unexpected, &unexpMsg{
			kind: evEager, src: ev.src, match: ev.match, data: ev.data, size: ev.size,
		})
	case evMediumFrag:
		e.applyMediumFrag(ev)
	case evRendezvous:
		if rh := e.takeMatch(ev.match); rh != nil {
			e.startPull(ev.src, ev.msgID, ev.size, ev.match, rh)
			return
		}
		e.stack.Stats.UnexpectedMsgs++
		e.unexpected = append(e.unexpected, &unexpMsg{
			kind: evRendezvous, src: ev.src, match: ev.match, size: ev.size, msgID: ev.msgID,
		})
	case evPullDone:
		ev.rh.complete()
	case evNotifyRecvd:
		if ls, ok := e.pullSrc[ev.msgID]; ok {
			delete(e.pullSrc, ev.msgID)
			ls.handle.complete()
		}
	}
}

// fragLenFor computes the payload length of a medium fragment in size-only
// mode (no data attached).
func fragLenFor(e *Endpoint, ev *event) int {
	fragPayload := e.stack.eagerFragPayload()
	off := ev.fragIdx * fragPayload
	n := ev.size - off
	if n > fragPayload {
		n = fragPayload
	}
	if n < 0 {
		n = 0
	}
	return n
}

// applyMediumFrag reassembles one medium fragment in the library and
// delivers the message when complete.
func (e *Endpoint) applyMediumFrag(ev *event) {
	key := pullKey{src: ev.src, msgID: ev.msgID}
	r, ok := e.reasm[key]
	if !ok {
		r = &mediumReasm{
			msgID: ev.msgID, match: ev.match, total: ev.size,
			frags: ev.fragCount, seen: make([]bool, ev.fragCount),
			src: ev.src,
		}
		if ev.data != nil {
			r.data = make([]byte, r.total)
		}
		e.reasm[key] = r
	}
	if ev.fragIdx >= r.frags || r.seen[ev.fragIdx] {
		return // stray or duplicate fragment
	}
	r.seen[ev.fragIdx] = true
	r.received++
	if r.data != nil && ev.data != nil {
		off := ev.fragIdx * e.stack.eagerFragPayload()
		copy(r.data[off:], ev.data)
	}
	if r.received != r.frags {
		return
	}
	delete(e.reasm, key)
	e.stack.Stats.MediumRecvd++
	if rh := e.takeMatch(r.match); rh != nil {
		deliverEager(rh, r.src, r.match, r.data, r.total)
		return
	}
	e.stack.Stats.UnexpectedMsgs++
	e.unexpected = append(e.unexpected, &unexpMsg{
		kind: evEager, src: r.src, match: r.match, data: r.data, size: r.total,
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// String describes the endpoint.
func (e *Endpoint) String() string {
	return fmt.Sprintf("endpoint(%s)", e.Addr())
}
