package omx

import "errors"

// ErrGiveUp surfaces an abandoned operation: the reliability layer
// exhausted its retry budget (params.Proto.MaxResends consecutive
// backed-off attempts) without hearing from the peer and stopped
// retransmitting. Handles complete with Err set to this value instead of
// hanging the simulation on a dead link.
var ErrGiveUp = errors.New("omx: peer unreachable (retry budget exhausted)")

// ErrClosed surfaces operations outstanding when their endpoint was
// closed.
var ErrClosed = errors.New("omx: endpoint closed")
