package omx

import (
	"bytes"
	"testing"

	"openmxsim/internal/fabric"
	"openmxsim/internal/host"
	"openmxsim/internal/nic"
	"openmxsim/internal/params"
	"openmxsim/internal/sim"
	"openmxsim/internal/wire"
)

// rig is a two-node testbed: node A (endpoint a) and node B (endpoint b).
type rig struct {
	eng    *sim.Engine
	p      *params.Params
	sw     *fabric.Switch
	hostA  *host.Host
	hostB  *host.Host
	stackA *Stack
	stackB *Stack
	a, b   *Endpoint
}

func newRig(t *testing.T, strat nic.Strategy, delay sim.Time) *rig {
	t.Helper()
	eng := sim.NewEngine()
	eng.Limit = 50_000_000
	p := params.Default()
	rng := sim.NewRNG(42)
	sw := fabric.NewSwitch(eng, p.Link, rng.Derive(1))
	hA := host.New(eng, 0, p.Host)
	hB := host.New(eng, 1, p.Host)
	cfg := nic.Config{Strategy: strat, Delay: delay}
	nA := nic.New(eng, p, hA, sw, wire.NodeMAC(0), cfg)
	nB := nic.New(eng, p, hB, sw, wire.NodeMAC(1), cfg)
	sA := NewStack(eng, p, hA, nA, rng.Derive(2))
	sB := NewStack(eng, p, hB, nB, rng.Derive(3))
	return &rig{
		eng: eng, p: p, sw: sw, hostA: hA, hostB: hB,
		stackA: sA, stackB: sB,
		a: sA.Open(0, hA.Cores[0]),
		b: sB.Open(0, hB.Cores[0]),
	}
}

func defaultRig(t *testing.T) *rig {
	return newRig(t, nic.StrategyTimeout, 75*sim.Microsecond)
}

func TestConnectHandshake(t *testing.T) {
	r := defaultRig(t)
	done := false
	r.eng.After(0, func() {
		r.a.Connect(r.b.Addr(), func() { done = true })
	})
	r.eng.Run()
	if !done {
		t.Fatal("connect callback never fired")
	}
}

func TestSmallMessageData(t *testing.T) {
	r := defaultRig(t)
	payload := []byte("hello open-mx world")
	buf := make([]byte, 64)
	var got *RecvHandle
	r.eng.After(0, func() {
		r.b.Irecv(0x42, ^uint64(0), buf, 0, func(rh *RecvHandle) { got = rh })
		r.a.Isend(r.b.Addr(), 0x42, payload, 0, nil)
	})
	r.eng.Run()
	if got == nil {
		t.Fatal("receive never completed")
	}
	if got.Len != len(payload) {
		t.Fatalf("Len = %d, want %d", got.Len, len(payload))
	}
	if !bytes.Equal(buf[:got.Len], payload) {
		t.Fatalf("data corrupted: %q", buf[:got.Len])
	}
	if got.Src != r.a.Addr() {
		t.Errorf("Src = %v, want %v", got.Src, r.a.Addr())
	}
	if got.MatchV != 0x42 {
		t.Errorf("MatchV = %#x", got.MatchV)
	}
}

func TestTinyMessageUsesOnePacket(t *testing.T) {
	r := defaultRig(t)
	r.eng.After(0, func() {
		r.b.Irecv(1, ^uint64(0), nil, 32, nil)
		r.a.Isend(r.b.Addr(), 1, []byte("hi"), 0, nil)
	})
	r.eng.Run()
	if r.stackA.Stats.SmallSent != 1 {
		t.Errorf("SmallSent = %d", r.stackA.Stats.SmallSent)
	}
}

func TestMediumMessageFragmentationAndData(t *testing.T) {
	r := defaultRig(t)
	size := 32 * 1024
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	buf := make([]byte, size)
	var got *RecvHandle
	sendDone := false
	r.eng.After(0, func() {
		r.b.Irecv(7, ^uint64(0), buf, 0, func(rh *RecvHandle) { got = rh })
		r.a.Isend(r.b.Addr(), 7, payload, 0, func() { sendDone = true })
	})
	r.eng.Run()
	if got == nil || !sendDone {
		t.Fatal("medium transfer did not complete")
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("medium data corrupted")
	}
	// 32 KiB at MTU 1500 with a 32-byte header = 23 fragments (Table III).
	fragPayload := r.p.Proto.EagerFragPayload(wire.HeaderLen)
	wantFrags := (size + fragPayload - 1) / fragPayload
	if wantFrags != 23 {
		t.Fatalf("fragment count = %d, want 23 (paper's 32kiB medium)", wantFrags)
	}
	if r.stackA.Stats.MediumSent != 1 || r.stackB.Stats.MediumRecvd != 1 {
		t.Errorf("medium counters: sent %d recvd %d", r.stackA.Stats.MediumSent, r.stackB.Stats.MediumRecvd)
	}
}

func TestLargeMessagePullProtocol(t *testing.T) {
	r := defaultRig(t)
	size := 234 * 1024
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i ^ (i >> 8))
	}
	buf := make([]byte, size)
	var got *RecvHandle
	sendDone := false
	r.eng.After(0, func() {
		r.b.Irecv(9, ^uint64(0), buf, 0, func(rh *RecvHandle) { got = rh })
		r.a.Isend(r.b.Addr(), 9, payload, 0, func() { sendDone = true })
	})
	r.eng.Run()
	if got == nil {
		t.Fatal("large receive did not complete")
	}
	if !sendDone {
		t.Fatal("large send did not complete (notify lost?)")
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("large data corrupted")
	}
	// Paper, Section IV-C3: a 234 kiB message needs 5 pull requests, each
	// answered by up to 32 replies (160 replies total).
	if r.stackB.Stats.PullRequestsSent != 5 {
		t.Errorf("pull requests = %d, want 5", r.stackB.Stats.PullRequestsSent)
	}
	if r.stackA.Stats.PullRepliesSent != 160 {
		t.Errorf("pull replies = %d, want 160", r.stackA.Stats.PullRepliesSent)
	}
	if r.stackA.Stats.LargeSent != 1 || r.stackB.Stats.LargeRecvd != 1 {
		t.Errorf("large counters: sent %d recvd %d", r.stackA.Stats.LargeSent, r.stackB.Stats.LargeRecvd)
	}
}

func TestUnexpectedMessageMatchedLater(t *testing.T) {
	r := defaultRig(t)
	payload := []byte("early bird")
	buf := make([]byte, 32)
	var got *RecvHandle
	r.eng.After(0, func() {
		r.a.Isend(r.b.Addr(), 5, payload, 0, nil)
	})
	// Post the receive well after the message has arrived.
	r.eng.After(2*sim.Millisecond, func() {
		r.b.Irecv(5, ^uint64(0), buf, 0, func(rh *RecvHandle) { got = rh })
	})
	r.eng.Run()
	if got == nil {
		t.Fatal("late-posted receive never matched the unexpected message")
	}
	if !bytes.Equal(buf[:got.Len], payload) {
		t.Fatal("unexpected-path data corrupted")
	}
	if r.stackB.Stats.UnexpectedMsgs == 0 {
		t.Error("unexpected counter not incremented")
	}
}

func TestUnexpectedRendezvousMatchedLater(t *testing.T) {
	r := defaultRig(t)
	size := 100 * 1024
	var got *RecvHandle
	r.eng.After(0, func() {
		r.a.Isend(r.b.Addr(), 5, nil, size, nil)
	})
	r.eng.After(2*sim.Millisecond, func() {
		r.b.Irecv(5, ^uint64(0), nil, size, func(rh *RecvHandle) { got = rh })
	})
	r.eng.Run()
	if got == nil {
		t.Fatal("late receive never triggered the pull")
	}
	if got.Len != size {
		t.Errorf("Len = %d, want %d", got.Len, size)
	}
}

func TestMatchingMask(t *testing.T) {
	r := defaultRig(t)
	// Receive matches only the low 32 bits (MPI_ANY_SOURCE style).
	var got *RecvHandle
	r.eng.After(0, func() {
		r.b.Irecv(0x0000_0000_0000_0BEE, 0x0000_0000_FFFF_FFFF, nil, 128, func(rh *RecvHandle) { got = rh })
		r.a.Isend(r.b.Addr(), 0xABCD_0000_0000_0BEE, nil, 16, nil)
	})
	r.eng.Run()
	if got == nil {
		t.Fatal("masked match failed")
	}
	if got.MatchV != 0xABCD_0000_0000_0BEE {
		t.Errorf("MatchV = %#x", got.MatchV)
	}
}

func TestMatchingIsFIFO(t *testing.T) {
	r := defaultRig(t)
	var order []int
	r.eng.After(0, func() {
		r.b.Irecv(1, ^uint64(0), nil, 64, func(*RecvHandle) { order = append(order, 0) })
		r.b.Irecv(1, ^uint64(0), nil, 64, func(*RecvHandle) { order = append(order, 1) })
		r.a.Isend(r.b.Addr(), 1, nil, 8, nil)
		r.a.Isend(r.b.Addr(), 1, nil, 8, nil)
	})
	r.eng.Run()
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("posted receives completed out of order: %v", order)
	}
}

func TestWindowBackpressureManySmall(t *testing.T) {
	r := defaultRig(t)
	const n = 300 // well beyond the 64-packet window
	recvd := 0
	sent := 0
	r.eng.After(0, func() {
		for i := 0; i < n; i++ {
			r.b.Irecv(uint64(i), ^uint64(0), nil, 128, func(*RecvHandle) { recvd++ })
		}
		for i := 0; i < n; i++ {
			r.a.Isend(r.b.Addr(), uint64(i), nil, 64, func() { sent++ })
		}
	})
	r.eng.Run()
	if sent != n || recvd != n {
		t.Fatalf("sent %d recvd %d, want %d", sent, recvd, n)
	}
	if r.stackB.Stats.AcksSent == 0 {
		t.Error("no acks generated")
	}
	if r.stackA.Stats.Retransmits != 0 {
		t.Errorf("clean run retransmitted %d packets", r.stackA.Stats.Retransmits)
	}
}

func TestDropRecoveryEager(t *testing.T) {
	r := defaultRig(t)
	r.sw.SetFault(&fabric.Fault{DropProb: 0.05})
	const n = 80
	recvd := 0
	r.eng.After(0, func() {
		for i := 0; i < n; i++ {
			r.b.Irecv(uint64(i), ^uint64(0), nil, 4096, func(*RecvHandle) { recvd++ })
		}
		for i := 0; i < n; i++ {
			r.a.Isend(r.b.Addr(), uint64(i), nil, 2000, nil) // 2-fragment mediums
		}
	})
	r.eng.Run()
	if recvd != n {
		t.Fatalf("recvd %d/%d despite retransmission", recvd, n)
	}
	if r.stackA.Stats.Retransmits == 0 {
		t.Error("5%% drop produced no retransmits")
	}
}

func TestDropRecoveryLarge(t *testing.T) {
	r := defaultRig(t)
	r.sw.SetFault(&fabric.Fault{DropProb: 0.02})
	size := 200 * 1024
	var got *RecvHandle
	sendDone := false
	r.eng.After(0, func() {
		r.b.Irecv(3, ^uint64(0), nil, size, func(rh *RecvHandle) { got = rh })
		r.a.Isend(r.b.Addr(), 3, nil, size, func() { sendDone = true })
	})
	r.eng.Run()
	if got == nil || !sendDone {
		t.Fatalf("large transfer with drops did not complete (recv=%v send=%v)", got != nil, sendDone)
	}
}

func TestDuplicateDeliveryFiltered(t *testing.T) {
	r := defaultRig(t)
	r.sw.SetFault(&fabric.Fault{DupProb: 0.5})
	const n = 40
	recvd := 0
	r.eng.After(0, func() {
		for i := 0; i < n; i++ {
			r.b.Irecv(uint64(i), ^uint64(0), nil, 128, func(*RecvHandle) { recvd++ })
		}
		for i := 0; i < n; i++ {
			r.a.Isend(r.b.Addr(), uint64(i), nil, 32, nil)
		}
	})
	r.eng.Run()
	if recvd != n {
		t.Fatalf("recvd %d, want exactly %d (duplicates must be filtered)", recvd, n)
	}
	if r.stackB.Stats.Duplicates == 0 {
		t.Error("no duplicates recorded despite DupProb=0.5")
	}
}

func TestReorderedMediumStillCompletes(t *testing.T) {
	r := defaultRig(t)
	// Delay ~20% of medium fragments by 30us: heavy reordering.
	r.sw.SetFault(&fabric.Fault{
		DelayProb: 0.2, DelayTime: 30 * sim.Microsecond,
		Filter: func(f *wire.Frame) bool { return f.Header.Type == wire.TypeMediumFrag },
	})
	size := 32 * 1024
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	buf := make([]byte, size)
	var got *RecvHandle
	r.eng.After(0, func() {
		r.b.Irecv(1, ^uint64(0), buf, 0, func(rh *RecvHandle) { got = rh })
		r.a.Isend(r.b.Addr(), 1, payload, 0, nil)
	})
	r.eng.Run()
	if got == nil {
		t.Fatal("reordered medium never completed")
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("reordered medium corrupted")
	}
}

func TestShmIntraNode(t *testing.T) {
	r := defaultRig(t)
	a2 := r.stackA.Open(1, r.hostA.Cores[1])
	payload := []byte("same-node neighbours")
	buf := make([]byte, 64)
	var got *RecvHandle
	r.eng.After(0, func() {
		a2.Irecv(11, ^uint64(0), buf, 0, func(rh *RecvHandle) { got = rh })
		r.a.Isend(a2.Addr(), 11, payload, 0, nil)
	})
	r.eng.Run()
	if got == nil {
		t.Fatal("shm message never arrived")
	}
	if !bytes.Equal(buf[:got.Len], payload) {
		t.Fatal("shm data corrupted")
	}
	if r.stackA.Stats.ShmSent != 1 {
		t.Errorf("ShmSent = %d", r.stackA.Stats.ShmSent)
	}
	if r.stackA.NIC().Stats.PacketsSent != 0 {
		t.Errorf("shm message touched the NIC (%d packets)", r.stackA.NIC().Stats.PacketsSent)
	}
}

func TestSizeOnlyMode(t *testing.T) {
	r := defaultRig(t)
	var got *RecvHandle
	r.eng.After(0, func() {
		r.b.Irecv(2, ^uint64(0), nil, 1<<20, func(rh *RecvHandle) { got = rh })
		r.a.Isend(r.b.Addr(), 2, nil, 1<<20, nil)
	})
	r.eng.Run()
	if got == nil {
		t.Fatal("size-only large transfer did not complete")
	}
	if got.Len != 1<<20 {
		t.Errorf("Len = %d, want %d", got.Len, 1<<20)
	}
}

func TestTruncationOnSmallBuffer(t *testing.T) {
	r := defaultRig(t)
	var got *RecvHandle
	r.eng.After(0, func() {
		r.b.Irecv(2, ^uint64(0), nil, 100, func(rh *RecvHandle) { got = rh })
		r.a.Isend(r.b.Addr(), 2, nil, 5000, nil)
	})
	r.eng.Run()
	if got == nil {
		t.Fatal("truncated receive did not complete")
	}
	if got.Len != 100 {
		t.Errorf("Len = %d, want truncation to 100", got.Len)
	}
}

func TestInvalidPacketsDropped(t *testing.T) {
	r := defaultRig(t)
	h := wire.Header{Type: wire.TypeInvalid}
	r.eng.After(0, func() {
		f := wire.NewFrame(wire.NodeMAC(1), wire.NodeMAC(0), h, nil, 128)
		r.sw.Send(f)
	})
	r.eng.Run()
	if r.stackA.Stats.InvalidDropped != 1 {
		t.Errorf("InvalidDropped = %d, want 1", r.stackA.Stats.InvalidDropped)
	}
}

func TestPacketConservation(t *testing.T) {
	r := defaultRig(t)
	const n = 50
	recvd := 0
	r.eng.After(0, func() {
		for i := 0; i < n; i++ {
			r.b.Irecv(uint64(i), ^uint64(0), nil, 64*1024, func(*RecvHandle) { recvd++ })
		}
		for i := 0; i < n; i++ {
			r.a.Isend(r.b.Addr(), uint64(i), nil, 1000*(i+1), nil)
		}
	})
	r.eng.Run()
	if recvd != n {
		t.Fatalf("recvd %d/%d", recvd, n)
	}
	sent := r.stackA.NIC().Stats.PacketsSent + r.stackB.NIC().Stats.PacketsSent
	delivered := r.sw.FramesDelivered()
	if sent != delivered+r.sw.FramesDropped() {
		t.Errorf("conservation violated: sent %d, delivered %d, dropped %d",
			sent, delivered, r.sw.FramesDropped())
	}
	got := r.stackA.NIC().Stats.PacketsReceived + r.stackB.NIC().Stats.PacketsReceived +
		r.stackA.NIC().Stats.RingDrops + r.stackB.NIC().Stats.RingDrops
	if uint64(got) != delivered {
		t.Errorf("NICs saw %d frames, fabric delivered %d", got, delivered)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (sim.Time, Stats, Stats) {
		r := newRig(t, nic.StrategyStream, 75*sim.Microsecond)
		r.sw.SetFault(&fabric.Fault{DropProb: 0.01, DelayProb: 0.05, DelayTime: 10 * sim.Microsecond})
		recvd := 0
		r.eng.After(0, func() {
			for i := 0; i < 40; i++ {
				r.b.Irecv(uint64(i), ^uint64(0), nil, 1<<20, func(*RecvHandle) { recvd++ })
			}
			for i := 0; i < 40; i++ {
				r.a.Isend(r.b.Addr(), uint64(i), nil, 3000*(i+1), nil)
			}
		})
		r.eng.Run()
		return r.eng.Now(), r.stackA.Stats, r.stackB.Stats
	}
	t1, a1, b1 := run()
	t2, a2, b2 := run()
	if t1 != t2 {
		t.Fatalf("end times differ: %d vs %d", t1, t2)
	}
	if a1 != a2 || b1 != b2 {
		t.Fatal("stats differ between identical runs")
	}
}

func TestMarkingPolicyOnWire(t *testing.T) {
	// Verify the sender marks exactly the Section III-B set by sniffing
	// frames at the switch via a counting fault filter.
	r := defaultRig(t)
	marked := map[wire.PacketType]int{}
	unmarked := map[wire.PacketType]int{}
	r.sw.SetFault(&fabric.Fault{Filter: func(f *wire.Frame) bool {
		if f.Marked() {
			marked[f.Header.Type]++
		} else {
			unmarked[f.Header.Type]++
		}
		return false
	}})
	r.eng.After(0, func() {
		r.b.Irecv(1, ^uint64(0), nil, 64, nil)
		r.b.Irecv(2, ^uint64(0), nil, 32*1024, nil)
		r.b.Irecv(3, ^uint64(0), nil, 234*1024, nil)
		r.a.Isend(r.b.Addr(), 1, nil, 64, nil)       // small
		r.a.Isend(r.b.Addr(), 2, nil, 32*1024, nil)  // medium
		r.a.Isend(r.b.Addr(), 3, nil, 234*1024, nil) // large
	})
	r.eng.Run()
	if marked[wire.TypeSmall] != 1 {
		t.Errorf("small marked %d times, want 1", marked[wire.TypeSmall])
	}
	if marked[wire.TypeMediumFrag] != 1 || unmarked[wire.TypeMediumFrag] != 22 {
		t.Errorf("medium marks: %d marked %d unmarked, want 1/22",
			marked[wire.TypeMediumFrag], unmarked[wire.TypeMediumFrag])
	}
	if marked[wire.TypeRendezvous] != 1 {
		t.Errorf("rendezvous marked %d, want 1", marked[wire.TypeRendezvous])
	}
	if marked[wire.TypePullRequest] != 5 {
		t.Errorf("pull requests marked %d, want 5", marked[wire.TypePullRequest])
	}
	// One marked reply per 32-fragment block.
	if marked[wire.TypePullReply] != 5 || unmarked[wire.TypePullReply] != 155 {
		t.Errorf("pull reply marks: %d marked %d unmarked, want 5/155",
			marked[wire.TypePullReply], unmarked[wire.TypePullReply])
	}
	if marked[wire.TypeNotify] != 1 {
		t.Errorf("notify marked %d, want 1", marked[wire.TypeNotify])
	}
	if marked[wire.TypeAck] != 0 {
		t.Errorf("%d acks marked: acks must never be latency-sensitive", marked[wire.TypeAck])
	}
}

func TestMarkShiftMovesMediumMark(t *testing.T) {
	r := defaultRig(t)
	r.stackA.Mark.MediumMarkShift = 3
	var markedIdx []int
	r.sw.SetFault(&fabric.Fault{Filter: func(f *wire.Frame) bool {
		if f.Header.Type == wire.TypeMediumFrag && f.Marked() {
			markedIdx = append(markedIdx, int(f.Header.FragIndex))
		}
		return false
	}})
	r.eng.After(0, func() {
		r.b.Irecv(1, ^uint64(0), nil, 32*1024, nil)
		r.a.Isend(r.b.Addr(), 1, nil, 32*1024, nil)
	})
	r.eng.Run()
	if len(markedIdx) != 1 || markedIdx[0] != 23-1-3 {
		t.Fatalf("marked fragments %v, want [19] (N-1-shift)", markedIdx)
	}
}
