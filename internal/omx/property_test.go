package omx

import (
	"testing"
	"testing/quick"

	"openmxsim/internal/sim"
)

// Property: the sequence-acceptance machinery delivers each sequence number
// exactly once and advances recvNext to the contiguous frontier, for any
// arrival order with duplicates.
func TestAcceptSeqProperty(t *testing.T) {
	f := func(perm []uint8, dups []uint8) bool {
		r := defaultRig(t)
		c := newChannel(r.a, r.b.Addr())
		n := len(perm)
		if n == 0 {
			return true
		}
		// Build an arrival order: a permutation of 0..n-1 plus duplicates.
		order := make([]uint32, 0, n+len(dups))
		for _, p := range perm {
			order = append(order, uint32(int(p)%n))
		}
		for _, d := range dups {
			order = append(order, uint32(int(d)%n))
		}
		accepted := map[uint32]int{}
		for _, seq := range order {
			if c.acceptSeq(seq) {
				accepted[seq]++
			}
		}
		for seq, cnt := range accepted {
			if cnt != 1 {
				t.Logf("seq %d accepted %d times", seq, cnt)
				return false
			}
		}
		// recvNext must be the first never-presented sequence.
		present := map[uint32]bool{}
		for _, s := range order {
			present[s] = true
		}
		want := uint32(0)
		for present[want] {
			want++
		}
		return c.recvNext == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: the matching mask semantics are exactly
// (msg & mask) == (match & mask).
func TestMatchMaskProperty(t *testing.T) {
	f := func(match, mask, msg uint64) bool {
		rh := &RecvHandle{Match: match, Mask: mask}
		return rh.matches(msg) == ((msg & mask) == (match & mask))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: for any message size, the class split and fragment counts are
// consistent: small <= 128 B is one packet, mediums fragment by MTU-32,
// larges compute pull blocks of <= 32 fragments covering the entire size.
func TestSizeClassProperty(t *testing.T) {
	r := defaultRig(t)
	p := r.p
	fragPayload := p.Proto.EagerFragPayload(32)
	f := func(raw uint32) bool {
		size := int(raw % (4 << 20))
		switch {
		case size <= p.Proto.SmallMax:
			return true // single packet by construction
		case size <= p.Proto.MediumMax:
			frags := (size + fragPayload - 1) / fragPayload
			return frags >= 1 && frags <= 23 && (frags-1)*fragPayload < size
		default:
			replies := (size + p.Proto.PullReplyPayload - 1) / p.Proto.PullReplyPayload
			blocks := (replies + p.Proto.PullBlockFrags - 1) / p.Proto.PullBlockFrags
			covered := replies * p.Proto.PullReplyPayload
			return covered >= size && blocks*p.Proto.PullBlockFrags >= replies
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: any mix of message sizes sent between two nodes is delivered
// exactly once with the right sizes, regardless of strategy.
func TestMixedTrafficDelivery(t *testing.T) {
	f := func(sizesRaw []uint16) bool {
		if len(sizesRaw) == 0 || len(sizesRaw) > 24 {
			return true
		}
		r := defaultRig(t)
		want := map[uint64]int{}
		got := map[uint64]int{}
		r.eng.After(0, func() {
			for i, sr := range sizesRaw {
				size := int(sr) * 17 % (200 << 10)
				tag := uint64(i)
				want[tag] = size
				r.b.Irecv(tag, ^uint64(0), nil, size, func(rh *RecvHandle) {
					got[rh.MatchV] = rh.Len
				})
				r.a.Isend(r.b.Addr(), tag, nil, size, nil)
			}
		})
		r.eng.Run()
		if len(got) != len(want) {
			t.Logf("delivered %d of %d messages", len(got), len(want))
			return false
		}
		for tag, size := range want {
			if got[tag] != size {
				t.Logf("tag %d: got %d want %d", tag, got[tag], size)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Invariant: simulated transfer duration is monotone in message size for a
// fixed strategy (no scheduling anomalies).
func TestTransferTimeMonotoneInSize(t *testing.T) {
	var prev sim.Time
	for _, size := range []int{128, 4 << 10, 32 << 10, 128 << 10, 512 << 10} {
		r := defaultRig(t)
		var done sim.Time
		r.eng.After(0, func() {
			r.b.Irecv(1, ^uint64(0), nil, size, func(*RecvHandle) { done = r.eng.Now() })
			r.a.Isend(r.b.Addr(), 1, nil, size, nil)
		})
		r.eng.Run()
		if done == 0 {
			t.Fatalf("size %d never completed", size)
		}
		if done < prev {
			t.Errorf("size %d finished at %d, before smaller size at %d", size, done, prev)
		}
		prev = done
	}
}
