package omx

import (
	"fmt"

	"openmxsim/internal/host"
	"openmxsim/internal/sim"
	"openmxsim/internal/trace"
	"openmxsim/internal/wire"
)

// The large-message protocol (Fig. 3 of the paper): the sender announces
// with a Rendezvous; once a matching receive is posted, the receiver pulls
// the data with PullRequests of up to PullBlockFrags fragments each,
// keeping PullParallel requests in flight so the wire never drains; the
// final fragment triggers a Notify back to the sender.

// largeSend is the sender-side record of an announced large message.
type largeSend struct {
	msgID  uint32
	data   []byte
	size   int
	handle *SendHandle
	dst    Addr
}

type pullKey struct {
	src   Addr
	msgID uint32
}

// pullState is the receiver-side progress of one large transfer.
type pullState struct {
	ep        *Endpoint
	src       Addr
	msgID     uint32
	total     int
	match     uint64
	rh        *RecvHandle
	frags     int
	blocks    int
	nextBlock int
	received  int
	seen      []bool
	perBlock  []int
	timers    map[int]*sim.Event
	// tries counts consecutive retries per block (reset whenever a
	// fragment of the block arrives); it drives the backed-off retry
	// delay and the MaxResends give-up.
	tries []int
	done  bool
}

func (ps *pullState) blockSize(b int) int {
	per := ps.ep.stack.p.Proto.PullBlockFrags
	n := ps.frags - b*per
	if n > per {
		n = per
	}
	return n
}

// startPull begins pulling a matched rendezvous. Runs in user context (the
// library asked the driver to start the pull); subsequent block requests
// are issued by the driver from the receive handler.
func (e *Endpoint) startPull(src Addr, msgID uint32, total int, match uint64, rh *RecvHandle) {
	p := e.stack.p
	replyPayload := p.Proto.PullReplyPayload
	frags := (total + replyPayload - 1) / replyPayload
	if frags == 0 {
		frags = 1
	}
	if frags > 0xFFFF {
		panic(fmt.Sprintf("omx: %d-byte message needs %d pull fragments (wire limit 65535)", total, frags))
	}
	blocks := (frags + p.Proto.PullBlockFrags - 1) / p.Proto.PullBlockFrags

	rh.Src = src
	rh.MatchV = match
	rh.Len = total
	if rh.Len > rh.Cap {
		rh.Len = rh.Cap
	}

	ps := &pullState{
		ep: e, src: src, msgID: msgID, total: total, match: match, rh: rh,
		frags: frags, blocks: blocks,
		seen:     make([]bool, frags),
		perBlock: make([]int, blocks),
		timers:   make(map[int]*sim.Event),
		tries:    make([]int, blocks),
	}
	e.pulls[pullKey{src: src, msgID: msgID}] = ps

	first := p.Proto.PullParallel
	if first > blocks {
		first = blocks
	}
	for b := 0; b < first; b++ {
		e.issuePullRequest(ps, b)
	}
	ps.nextBlock = first
}

// issuePullRequest sends the request for one block and arms its retry timer.
func (e *Endpoint) issuePullRequest(ps *pullState, block int) {
	p := e.stack.p
	hd := wire.Header{
		Type: wire.TypePullRequest, SrcEP: e.ID, DstEP: ps.src.EP,
		MsgID: ps.msgID, Aux: uint32(ps.total),
		FragIndex: uint16(block), FragCount: uint16(ps.blockSize(block)),
	}
	if e.stack.Mark.PullRequest {
		hd.Flags |= wire.FlagLatencySensitive
	}
	e.stack.Stats.PullRequestsSent++
	e.stack.sendFrame(e.stack.newFrame(e.stack.MAC(), ps.src.MAC, hd, nil, 0))

	if t, ok := ps.timers[block]; ok {
		t.Cancel()
	}
	d := p.Proto.ResendTimeout
	if ps.tries[block] > 0 {
		d = backoffDelay(&p.Proto, e.rng, ps.tries[block])
		e.stack.Stats.Backoffs++
	}
	ps.timers[block] = e.stack.eng.After(d, func() {
		delete(ps.timers, block)
		if ps.done || ps.perBlock[block] == ps.blockSize(block) {
			return
		}
		if mr := p.Proto.MaxResends; mr > 0 && ps.tries[block] >= mr {
			e.giveUpPull(ps)
			return
		}
		ps.tries[block]++
		e.stack.Stats.PullBlockRetries++
		e.issuePullRequest(ps, block)
	})
}

// giveUpPull abandons a pull whose block retries exhausted the budget: all
// retry timers are cancelled, the transfer is dropped, and the posted
// receive completes with ErrGiveUp.
func (e *Endpoint) giveUpPull(ps *pullState) {
	if ps.done {
		return
	}
	ps.done = true
	//omxlint:allow maprange: timer cancellation is idempotent and per-timer; order cannot matter
	for _, t := range ps.timers {
		t.Cancel()
	}
	ps.timers = nil
	delete(e.pulls, pullKey{src: ps.src, msgID: ps.msgID})
	e.stack.Stats.GiveUps++
	e.stack.tr.Event(e.stack.eng.Now(), trace.EvGiveUp, int64(e.stack.Stats.GiveUps))
	ps.rh.fail(ErrGiveUp)
}

// handlePullRequest runs on the data holder: emit one block of replies.
// Reply generation cost was charged by the rx dispatch; the NIC serializes
// the actual transmissions.
func (e *Endpoint) handlePullRequest(f *wire.Frame) {
	h := &f.Header
	ls, ok := e.pullSrc[h.MsgID]
	if !ok {
		return // stale or duplicate request for a finished transfer
	}
	p := e.stack.p
	replyPayload := p.Proto.PullReplyPayload
	totalFrags := (ls.size + replyPayload - 1) / replyPayload
	if totalFrags == 0 {
		totalFrags = 1
	}
	block := int(h.FragIndex)
	start := block * p.Proto.PullBlockFrags
	n := totalFrags - start
	if n > p.Proto.PullBlockFrags {
		n = p.Proto.PullBlockFrags
	}
	if n <= 0 {
		return
	}
	src := Addr{MAC: f.Src, EP: h.SrcEP}
	for i := 0; i < n; i++ {
		frag := start + i
		off := frag * replyPayload
		plen := ls.size - off
		if plen > replyPayload {
			plen = replyPayload
		}
		rh := wire.Header{
			Type: wire.TypePullReply, SrcEP: e.ID, DstEP: src.EP,
			MsgID: ls.msgID, Aux: uint32(off), FragIndex: uint16(frag),
			FragCount: uint16(totalFrags),
		}
		if i == n-1 {
			rh.Flags |= wire.FlagLastFragment
			if e.stack.Mark.PullLastReply {
				rh.Flags |= wire.FlagLatencySensitive
			}
		}
		var data []byte
		if ls.data != nil {
			data = ls.data[off : off+plen]
		}
		e.stack.Stats.PullRepliesSent++
		e.stack.sendFrame(e.stack.newFrame(e.stack.MAC(), src.MAC, rh, data, plen))
	}
}

// handlePullReply runs on the puller for each arriving fragment.
func (e *Endpoint) handlePullReply(ps *pullState, f *wire.Frame, core *host.Core) {
	if ps == nil || ps.done {
		return
	}
	h := &f.Header
	frag := int(h.FragIndex)
	if frag >= ps.frags || ps.seen[frag] {
		e.stack.Stats.Duplicates++
		return
	}
	ps.seen[frag] = true
	ps.received++
	p := e.stack.p
	b := frag / p.Proto.PullBlockFrags
	ps.perBlock[b]++
	ps.tries[b] = 0 // block progress: the path works, backoff resets

	// Deposit the fragment into the user buffer (kernel copy, cost already
	// charged by the rx dispatch).
	if ps.rh.Buf != nil && f.Payload != nil {
		off := int(h.Aux)
		if off < len(ps.rh.Buf) {
			copy(ps.rh.Buf[off:], f.Payload)
		}
	}

	if ps.perBlock[b] == ps.blockSize(b) {
		if t, ok := ps.timers[b]; ok {
			t.Cancel()
			delete(ps.timers, b)
		}
		if ps.nextBlock < ps.blocks {
			// Pipeline the next request straight from the handler.
			e.issuePullRequest(ps, ps.nextBlock)
			ps.nextBlock++
		}
	}

	if ps.received == ps.frags {
		ps.done = true
		//omxlint:allow maprange: timer cancellation is idempotent and per-timer; order cannot matter
		for _, t := range ps.timers {
			t.Cancel()
		}
		ps.timers = nil
		delete(e.pulls, pullKey{src: ps.src, msgID: ps.msgID})
		e.stack.Stats.LargeRecvd++

		// Notify the sender (sequenced, marked per policy).
		nh := wire.Header{
			Type: wire.TypeNotify, SrcEP: e.ID, DstEP: ps.src.EP,
			MsgID: ps.msgID,
		}
		if e.stack.Mark.Notify {
			nh.Flags |= wire.FlagLatencySensitive
		}
		e.channelFor(ps.src).send(e.stack.newFrame(e.stack.MAC(), ps.src.MAC, nh, nil, 0), nil, nil)

		// Tell the application.
		ev := e.getEvent()
		ev.kind = evPullDone
		ev.src = ps.src
		ev.rh = ps.rh
		ev.writerCore = core.ID
		e.postEvent(ev)
	}
}
