package omx

import (
	"errors"
	"testing"

	"openmxsim/internal/fabric"
	"openmxsim/internal/sim"
	"openmxsim/internal/wire"
)

// TestLargeSendGiveUpWithinBudget: with every frame lost, a rendezvous
// send must not retry forever — the backed-off retry train exhausts
// MaxResends, the handle fails with ErrGiveUp, and the engine drains
// within the budget's worth of virtual time.
func TestLargeSendGiveUpWithinBudget(t *testing.T) {
	r := defaultRig(t)
	r.sw.SetFault(&fabric.Fault{DropProb: 1})
	size := 64 << 10
	var h *SendHandle
	r.eng.After(0, func() {
		r.b.Irecv(1, ^uint64(0), nil, size, nil)
		h = r.a.Isend(r.b.Addr(), 1, nil, size, nil)
	})
	r.eng.Run()
	if h == nil || !errors.Is(h.Err, ErrGiveUp) {
		t.Fatalf("handle error = %v, want ErrGiveUp", handleErr(h))
	}
	p := &r.p.Proto
	if got := r.stackA.Stats.GiveUps; got != 1 {
		t.Errorf("GiveUps = %d, want 1", got)
	}
	// The first attempt waits the base timeout; every later one draws a
	// backed-off delay. MaxResends retries -> MaxResends backoffs.
	if got, want := r.stackA.Stats.Backoffs, uint64(p.MaxResends); got != want {
		t.Errorf("Backoffs = %d, want %d (one per retry past the first)", got, want)
	}
	// Budget bound: base + doublings capped at ResendBackoffMax, plus
	// <= d/8 jitter each. Generous factor-2 headroom on top.
	var budget sim.Time
	d := p.ResendTimeout
	for i := 0; i <= p.MaxResends; i++ {
		budget += d + d/8
		if d < p.ResendBackoffMax {
			d *= 2
			if d > p.ResendBackoffMax {
				d = p.ResendBackoffMax
			}
		}
	}
	if r.eng.Now() > 2*budget {
		t.Errorf("gave up at t=%v, want within 2x budget %v", r.eng.Now(), 2*budget)
	}
}

func handleErr(h *SendHandle) error {
	if h == nil {
		return errors.New("nil handle")
	}
	return h.Err
}

// TestSmallSendGiveUpCountsOnly pins the documented message-class
// semantics: a small send completes at buffered handoff, so a dead peer
// surfaces only in the robustness counters, never on the handle.
func TestSmallSendGiveUpCountsOnly(t *testing.T) {
	r := defaultRig(t)
	r.sw.SetFault(&fabric.Fault{DropProb: 1})
	sent := false
	var h *SendHandle
	r.eng.After(0, func() {
		h = r.a.Isend(r.b.Addr(), 1, nil, 64, func() { sent = true })
	})
	r.eng.Run()
	if !sent || h.Err != nil {
		t.Fatalf("small send should complete at handoff (sent=%v err=%v)", sent, h.Err)
	}
	if r.stackA.Stats.GiveUps == 0 {
		t.Error("channel give-up not counted")
	}
	if r.stackA.Stats.Backoffs == 0 {
		t.Error("retry train ran without arming a single backoff")
	}
}

// TestBackoffResetsOnProgress: a lossy-but-alive path must keep the
// retry delay near the base timeout — consecutive-failure state resets
// whenever an ack or fragment gets through, so moderate loss never
// walks a transfer toward the give-up cliff.
func TestBackoffResetsOnProgress(t *testing.T) {
	r := defaultRig(t)
	r.sw.SetFault(&fabric.Fault{DropProb: 0.2})
	size := 128 << 10
	var got *RecvHandle
	done := false
	r.eng.After(0, func() {
		r.b.Irecv(5, ^uint64(0), nil, size, func(rh *RecvHandle) { got = rh })
		r.a.Isend(r.b.Addr(), 5, nil, size, func() { done = true })
	})
	r.eng.Run()
	if got == nil || !done {
		t.Fatalf("transfer under 20%% loss did not complete (recv=%v send=%v)", got != nil, done)
	}
	if r.stackA.Stats.GiveUps+r.stackB.Stats.GiveUps != 0 {
		t.Error("transfer gave up despite making progress")
	}
}

// TestCloseCancelsPullRetryTimers is the regression test for the
// endpoint-close fix: closing the puller mid-transfer (with every pull
// reply dropped, so all block retry timers are armed) must cancel those
// timers — the retry counters freeze at close, no request is issued
// against the closed endpoint, and the engine drains.
func TestCloseCancelsPullRetryTimers(t *testing.T) {
	r := defaultRig(t)
	// Lose only the pull replies: rendezvous and pull requests flow, so
	// the receiver's per-block retry timers are armed and re-arming.
	r.sw.SetFault(&fabric.Fault{
		DropProb: 1,
		Filter:   func(f *wire.Frame) bool { return f.Header.Type == wire.TypePullReply },
	})
	size := 256 << 10
	var got *RecvHandle
	r.eng.After(0, func() {
		r.b.Irecv(7, ^uint64(0), nil, size, func(rh *RecvHandle) { got = rh })
		r.a.Isend(r.b.Addr(), 7, nil, size, nil)
	})

	var retriesAtClose, requestsAtClose uint64
	r.eng.After(60*sim.Millisecond, func() {
		if r.stackB.Stats.PullBlockRetries == 0 {
			t.Error("setup failed: no pull retries before close")
		}
		r.b.Close()
		r.b.Close() // idempotent
		retriesAtClose = r.stackB.Stats.PullBlockRetries
		requestsAtClose = r.stackB.Stats.PullRequestsSent
	})
	r.eng.Run()

	if got == nil || !errors.Is(got.Err, ErrClosed) {
		t.Fatalf("pending receive should fail with ErrClosed, got %v", recvErr(got))
	}
	if n := r.stackB.Stats.PullBlockRetries; n != retriesAtClose {
		t.Errorf("pull retries kept firing after Close: %d -> %d", retriesAtClose, n)
	}
	if n := r.stackB.Stats.PullRequestsSent; n != requestsAtClose {
		t.Errorf("pull requests issued against a closed endpoint: %d -> %d", requestsAtClose, n)
	}
	if r.stackB.Stats.GiveUps != 0 {
		t.Errorf("close converted into %d give-ups", r.stackB.Stats.GiveUps)
	}
}

func recvErr(rh *RecvHandle) error {
	if rh == nil {
		return errors.New("nil handle")
	}
	return rh.Err
}
