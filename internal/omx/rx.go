package omx

import (
	"openmxsim/internal/host"
	"openmxsim/internal/sim"
	"openmxsim/internal/wire"
)

// The receive handler is modelled in two phases so the IRQ-context cost can
// be charged before the protocol state changes: rxCost computes the
// per-packet processing cost (inspecting state only), and rxApply performs
// the state transition at the cost's completion. Packets within one NAPI
// poll are processed strictly in sequence, so peeking is race-free. The
// pull-reply state captured by rxCost is carried to rxApply (via the
// stack's pooled dispatch record) so both phases see the same transfer,
// exactly as the former cost/effect closure pair did.

// rxCost returns the IRQ-context processing cost of a packet and, for pull
// replies, the transfer state the cost was computed against.
//
//omxlint:hotpath
func (e *Endpoint) rxCost(f *wire.Frame, cold bool) (sim.Time, *pullState) {
	h := &f.Header
	p := e.stack.p
	base := p.Host.RxHandlerPacket

	switch h.Type {
	case wire.TypeConnect, wire.TypeConnectReply:
		return base + p.Driver.ConnectCost, nil

	case wire.TypeAck, wire.TypeNack:
		return base + p.Driver.AckCost, nil

	case wire.TypeTiny, wire.TypeSmall:
		return base + p.Driver.RxEager + e.stack.rxCopyTime(f.PayloadLen, cold) + p.Driver.EventWrite, nil

	case wire.TypeMediumFrag:
		// Touch the channel in the cost phase, as the effect will.
		src := Addr{MAC: f.Src, EP: h.SrcEP}
		e.channelFor(src)
		return base + p.Driver.RxEager + e.stack.rxCopyTime(f.PayloadLen, cold) + p.Driver.EventWrite, nil

	case wire.TypeRendezvous, wire.TypeNotify:
		return base + p.Driver.RxEager + p.Driver.EventWrite, nil

	case wire.TypePullRequest:
		// The sender's driver answers pull requests straight from the
		// receive handler: one block of replies per request.
		return base + p.Driver.RxPull + sim.Time(h.FragCount)*p.Driver.TxPacket, nil

	case wire.TypePullReply:
		src := Addr{MAC: f.Src, EP: h.SrcEP}
		ps := e.pulls[pullKey{src: src, msgID: h.MsgID}]
		cost := base + p.Driver.RxPull + e.stack.pullCopyTime(f.PayloadLen, cold)
		frag := int(h.FragIndex)
		if ps != nil && !ps.done && frag < ps.frags && !ps.seen[frag] {
			b := frag / p.Proto.PullBlockFrags
			if ps.perBlock[b]+1 == ps.blockSize(b) && ps.nextBlock < ps.blocks {
				cost += p.Driver.PullRequestCost + p.Driver.TxPacket
			}
			if ps.received+1 == ps.frags {
				cost += p.Driver.EventWrite + p.Driver.TxPacket // notify
			}
		}
		return cost, ps

	default:
		return p.Host.RxDropPacket, nil
	}
}

// rxApply performs the protocol state transition for a packet whose receive
// cost has been charged. ps is the pull state captured by rxCost.
//
//omxlint:hotpath
func (e *Endpoint) rxApply(f *wire.Frame, core *host.Core, ps *pullState) {
	h := &f.Header
	src := Addr{MAC: f.Src, EP: h.SrcEP}

	switch h.Type {
	case wire.TypeConnect:
		c := e.channelFor(src)
		c.lastRxCoreID = core.ID
		reply := wire.Header{Type: wire.TypeConnectReply, SrcEP: e.ID, DstEP: src.EP}
		e.stack.sendFrame(e.stack.newFrame(e.stack.MAC(), src.MAC, reply, nil, 0))

	case wire.TypeConnectReply:
		c := e.channelFor(src)
		if c.connected {
			return
		}
		c.connected = true
		if c.connectTry != nil {
			c.connectTry.Cancel()
			c.connectTry = nil
		}
		cbs := c.connectCbs
		c.connectCbs = nil
		for _, cb := range cbs {
			cb()
		}

	case wire.TypeAck:
		e.channelFor(src).onAck(h.Aux)

	case wire.TypeNack:
		e.channelFor(src).retransmit()

	case wire.TypeTiny, wire.TypeSmall:
		c := e.channelFor(src)
		c.lastRxCoreID = core.ID
		if !e.ringHasSpace() {
			// Do not ack: the sender will retransmit once the
			// application drains the ring.
			e.stack.Stats.EventRingFull++
			return
		}
		if !c.acceptSeq(h.Seq) {
			return
		}
		e.stack.Stats.SmallRecvd++
		ev := e.getEvent()
		ev.kind = evEager
		ev.src = src
		ev.match = h.Match
		ev.ch = c
		ev.ackSeq = c.recvNext
		ev.data = clonePayload(f)
		ev.size = int(h.Aux)
		ev.writerCore = core.ID
		e.postEvent(ev)

	case wire.TypeMediumFrag:
		// Each fragment is copied into the ring and delivered as its own
		// event; the library reassembles in user space, like Open-MX.
		c := e.channelFor(src)
		c.lastRxCoreID = core.ID
		if !e.ringHasSpace() {
			e.stack.Stats.EventRingFull++
			return
		}
		if !c.acceptSeq(h.Seq) {
			return
		}
		ev := e.getEvent()
		ev.kind = evMediumFrag
		ev.src = src
		ev.match = h.Match
		ev.ch = c
		ev.ackSeq = c.recvNext
		ev.data = clonePayload(f)
		ev.size = int(h.Aux)
		ev.msgID = h.MsgID
		ev.fragIdx = int(h.FragIndex)
		ev.fragCount = int(h.FragCount)
		ev.writerCore = core.ID
		e.postEvent(ev)

	case wire.TypeRendezvous:
		c := e.channelFor(src)
		c.lastRxCoreID = core.ID
		if !e.ringHasSpace() {
			e.stack.Stats.EventRingFull++
			return
		}
		if !c.acceptSeq(h.Seq) {
			return
		}
		ev := e.getEvent()
		ev.kind = evRendezvous
		ev.src = src
		ev.match = h.Match
		ev.ch = c
		ev.ackSeq = c.recvNext
		ev.size = int(h.Aux)
		ev.msgID = h.MsgID
		ev.writerCore = core.ID
		e.postEvent(ev)

	case wire.TypePullRequest:
		e.handlePullRequest(f)

	case wire.TypePullReply:
		e.handlePullReply(ps, f, core)

	case wire.TypeNotify:
		c := e.channelFor(src)
		c.lastRxCoreID = core.ID
		if !e.ringHasSpace() {
			e.stack.Stats.EventRingFull++
			return
		}
		if !c.acceptSeq(h.Seq) {
			return
		}
		ev := e.getEvent()
		ev.kind = evNotifyRecvd
		ev.src = src
		ev.msgID = h.MsgID
		ev.ch = c
		ev.ackSeq = c.recvNext
		ev.writerCore = core.ID
		e.postEvent(ev)

	default:
		e.stack.Stats.InvalidDropped++
	}
}

func clonePayload(f *wire.Frame) []byte {
	if f.Payload == nil {
		return nil
	}
	return append([]byte(nil), f.Payload...)
}
