package omx

import (
	"openmxsim/internal/host"
	"openmxsim/internal/sim"
	"openmxsim/internal/wire"
)

// rxCostAndEffect computes the IRQ-context processing cost of a packet and
// the protocol state transition to apply at its completion. The cost phase
// only inspects state; the effect phase mutates it. Packets within one NAPI
// poll are processed strictly in sequence, so peeking is race-free.
func (e *Endpoint) rxCostAndEffect(f *wire.Frame, core *host.Core, cold bool) (sim.Time, func()) {
	h := &f.Header
	p := e.stack.p
	src := Addr{MAC: f.Src, EP: h.SrcEP}
	base := p.Host.RxHandlerPacket

	switch h.Type {
	case wire.TypeConnect:
		return base + p.Driver.ConnectCost, func() {
			c := e.channelFor(src)
			c.lastRxCoreID = core.ID
			reply := wire.Header{Type: wire.TypeConnectReply, SrcEP: e.ID, DstEP: src.EP}
			e.stack.sendFrame(wire.NewFrame(e.stack.MAC(), src.MAC, reply, nil, 0))
		}

	case wire.TypeConnectReply:
		return base + p.Driver.ConnectCost, func() {
			c := e.channelFor(src)
			if c.connected {
				return
			}
			c.connected = true
			if c.connectTry != nil {
				c.connectTry.Cancel()
				c.connectTry = nil
			}
			cbs := c.connectCbs
			c.connectCbs = nil
			for _, cb := range cbs {
				cb()
			}
		}

	case wire.TypeAck:
		return base + p.Driver.AckCost, func() {
			e.channelFor(src).onAck(h.Aux)
		}

	case wire.TypeNack:
		return base + p.Driver.AckCost, func() {
			e.channelFor(src).retransmit()
		}

	case wire.TypeTiny, wire.TypeSmall:
		cost := base + p.Driver.RxEager + e.stack.rxCopyTime(f.PayloadLen, cold) + p.Driver.EventWrite
		return cost, func() {
			c := e.channelFor(src)
			c.lastRxCoreID = core.ID
			if !e.ringHasSpace() {
				// Do not ack: the sender will retransmit once the
				// application drains the ring.
				e.stack.Stats.EventRingFull++
				return
			}
			if !c.acceptSeq(h.Seq) {
				return
			}
			e.stack.Stats.SmallRecvd++
			e.postEvent(&event{
				kind: evEager, src: src, match: h.Match, ch: c, ackSeq: c.recvNext,
				data: clonePayload(f), size: int(h.Aux), writerCore: core.ID,
			})
		}

	case wire.TypeMediumFrag:
		// Each fragment is copied into the ring and delivered as its own
		// event; the library reassembles in user space, like Open-MX.
		c := e.channelFor(src)
		cost := base + p.Driver.RxEager + e.stack.rxCopyTime(f.PayloadLen, cold) + p.Driver.EventWrite
		return cost, func() {
			c.lastRxCoreID = core.ID
			if !e.ringHasSpace() {
				e.stack.Stats.EventRingFull++
				return
			}
			if !c.acceptSeq(h.Seq) {
				return
			}
			e.postEvent(&event{
				kind: evMediumFrag, src: src, match: h.Match, ch: c, ackSeq: c.recvNext,
				data: clonePayload(f), size: int(h.Aux), msgID: h.MsgID,
				fragIdx: int(h.FragIndex), fragCount: int(h.FragCount),
				writerCore: core.ID,
			})
		}

	case wire.TypeRendezvous:
		return base + p.Driver.RxEager + p.Driver.EventWrite, func() {
			c := e.channelFor(src)
			c.lastRxCoreID = core.ID
			if !e.ringHasSpace() {
				e.stack.Stats.EventRingFull++
				return
			}
			if !c.acceptSeq(h.Seq) {
				return
			}
			e.postEvent(&event{
				kind: evRendezvous, src: src, match: h.Match, ch: c, ackSeq: c.recvNext,
				size: int(h.Aux), msgID: h.MsgID, writerCore: core.ID,
			})
		}

	case wire.TypePullRequest:
		// The sender's driver answers pull requests straight from the
		// receive handler: one block of replies per request.
		cost := base + p.Driver.RxPull + sim.Time(h.FragCount)*p.Driver.TxPacket
		return cost, func() {
			e.handlePullRequest(f)
		}

	case wire.TypePullReply:
		ps := e.pulls[pullKey{src: src, msgID: h.MsgID}]
		cost := base + p.Driver.RxPull + e.stack.pullCopyTime(f.PayloadLen, cold)
		frag := int(h.FragIndex)
		if ps != nil && !ps.done && frag < ps.frags && !ps.seen[frag] {
			b := frag / p.Proto.PullBlockFrags
			if ps.perBlock[b]+1 == ps.blockSize(b) && ps.nextBlock < ps.blocks {
				cost += p.Driver.PullRequestCost + p.Driver.TxPacket
			}
			if ps.received+1 == ps.frags {
				cost += p.Driver.EventWrite + p.Driver.TxPacket // notify
			}
		}
		return cost, func() {
			e.handlePullReply(ps, f, core)
		}

	case wire.TypeNotify:
		return base + p.Driver.RxEager + p.Driver.EventWrite, func() {
			c := e.channelFor(src)
			c.lastRxCoreID = core.ID
			if !e.ringHasSpace() {
				e.stack.Stats.EventRingFull++
				return
			}
			if !c.acceptSeq(h.Seq) {
				return
			}
			e.postEvent(&event{kind: evNotifyRecvd, src: src, msgID: h.MsgID, ch: c, ackSeq: c.recvNext, writerCore: core.ID})
		}

	default:
		return p.Host.RxDropPacket, func() {
			e.stack.Stats.InvalidDropped++
		}
	}
}

func clonePayload(f *wire.Frame) []byte {
	if f.Payload == nil {
		return nil
	}
	return append([]byte(nil), f.Payload...)
}
