// Package omx implements the Open-MX message-passing stack over the
// simulated Ethernet substrate: MX-style endpoints with 64-bit matching,
// eager small (<= 128 B) and medium (<= 32 KiB) messages, the large-message
// rendezvous / pull / notify protocol with 32-fragment blocks and pipelined
// requests, cumulative acks with retransmission, an event ring toward the
// application, an intra-node shared-memory path, and — the paper's sender
// contribution — the latency-sensitive packet marking policy (Section
// III-B).
package omx

import (
	"fmt"

	"openmxsim/internal/host"
	"openmxsim/internal/nic"
	"openmxsim/internal/params"
	"openmxsim/internal/sim"
	"openmxsim/internal/trace"
	"openmxsim/internal/wire"
)

// Addr identifies an endpoint on the fabric.
type Addr struct {
	MAC wire.MAC
	EP  uint8
}

func (a Addr) String() string { return fmt.Sprintf("%s/%d", a.MAC, a.EP) }

// MarkPolicy selects which packets the sender driver flags as
// latency-sensitive. The default marks exactly the set from Section III-B:
// small messages, the last fragment of medium messages, rendezvous, pull
// requests, the last pull reply of each block, and notify. Individual
// toggles drive the Table II marker ablation; MediumMarkShift moves the
// medium mark off the last fragment to emulate mis-ordering (Table III).
type MarkPolicy struct {
	Small         bool
	MediumLast    bool
	Rendezvous    bool
	PullRequest   bool
	PullLastReply bool
	Notify        bool
	// MediumMarkShift marks medium fragment N-1-shift instead of N-1
	// (the paper's mis-ordering emulation: "a mis-ordering degree X means
	// that packet N-X was marked instead of N").
	MediumMarkShift int
}

// DefaultMarkPolicy marks every latency-sensitive packet type.
func DefaultMarkPolicy() MarkPolicy {
	return MarkPolicy{
		Small: true, MediumLast: true, Rendezvous: true,
		PullRequest: true, PullLastReply: true, Notify: true,
	}
}

// Stats counts stack-level activity.
type Stats struct {
	// Sends and Recvs by class.
	SmallSent, MediumSent, LargeSent    uint64
	SmallRecvd, MediumRecvd, LargeRecvd uint64
	ShmSent                             uint64
	// Packet-level counters.
	PacketsIn, PacketsOut             uint64
	AcksSent, AcksReceived            uint64
	Retransmits, Duplicates           uint64
	InvalidDropped, NoEndpointDrop    uint64
	EventRingFull                     uint64
	UnexpectedMsgs                    uint64
	PullRequestsSent, PullRepliesSent uint64
	PullBlockRetries                  uint64
	NacksSent                         uint64
	// Robustness counters: Backoffs counts retry timers armed past the
	// base ResendTimeout (consecutive losses), GiveUps counts operations
	// abandoned after MaxResends attempts (channel, connect, or pull).
	Backoffs, GiveUps uint64
}

// Stack is the per-node Open-MX driver instance bound to one NIC.
//
// The stack's hot paths recycle everything per-packet: frames come from a
// pool (its own by default, a cluster-shared one via SetFramePool),
// reliable-channel tx records and receive-dispatch records sit on per-stack
// free lists, and the dispatch/ack callbacks are bound once here, so a
// steady-state packet allocates nothing on send or receive.
type Stack struct {
	eng  *sim.Engine
	p    *params.Params
	hst  *host.Host
	nic  *nic.NIC
	rng  *sim.RNG
	Mark MarkPolicy

	endpoints map[uint8]*Endpoint
	// lastRxCore tracks which core last ran the receive handler; a change
	// costs a cache-line bounce on the shared descriptors (Section III-B).
	lastRxCore int

	pool      *wire.Pool
	txFree    []*txPacket
	rxFree    []*rxDispatch
	pacedFree []*pacedSend

	rxEffectFn   func(any)
	invalidFn    func(any)
	noEndpointFn func(any)
	sendFrameFn  func(any)
	pacedFn      func(any)

	tr *trace.Node

	Stats Stats
}

// rxDispatch carries one packet from the cost phase to the effect phase of
// the receive handler (see rx.go).
type rxDispatch struct {
	ep   *Endpoint
	f    *wire.Frame
	core *host.Core
	ps   *pullState
	done func()
}

// pacedSend is a deferred channel.send of one paced medium fragment.
type pacedSend struct {
	ch  *channel
	f   *wire.Frame
	fn  func(any)
	arg any
}

// NewStack creates the driver for one node and installs it as the NIC's
// packet consumer. rng drives the medium-fragment pacing noise; nil gets a
// fixed stream.
func NewStack(eng *sim.Engine, p *params.Params, hst *host.Host, n *nic.NIC, rng *sim.RNG) *Stack {
	if rng == nil {
		rng = sim.NewRNG(0x51AC)
	}
	s := &Stack{
		eng: eng, p: p, hst: hst, nic: n, rng: rng,
		Mark:       DefaultMarkPolicy(),
		endpoints:  make(map[uint8]*Endpoint),
		lastRxCore: -1,
		pool:       wire.NewPool(),
	}
	s.rxEffectFn = func(x any) {
		d := x.(*rxDispatch)
		ep, f, core, ps, done := d.ep, d.f, d.core, d.ps, d.done
		d.ep, d.f, d.core, d.ps, d.done = nil, nil, nil, nil, nil
		s.rxFree = append(s.rxFree, d)
		ep.rxApply(f, core, ps)
		done()
	}
	s.invalidFn = func(x any) {
		s.Stats.InvalidDropped++
		x.(func())()
	}
	s.noEndpointFn = func(x any) {
		s.Stats.NoEndpointDrop++
		x.(func())()
	}
	s.sendFrameFn = func(x any) { s.sendFrame(x.(*wire.Frame)) }
	s.pacedFn = func(x any) {
		p := x.(*pacedSend)
		ch, f, fn, arg := p.ch, p.f, p.fn, p.arg
		p.ch, p.f, p.fn, p.arg = nil, nil, nil, nil
		s.pacedFree = append(s.pacedFree, p)
		ch.send(f, fn, arg)
	}
	n.SetDriver(s)
	return s
}

// SetFramePool replaces the stack's frame pool (cluster construction shares
// one pool across all nodes so frames recycle wherever they are released).
func (s *Stack) SetFramePool(p *wire.Pool) { s.pool = p }

// SetTrace binds the node's telemetry handle (nil = tracing disabled).
func (s *Stack) SetTrace(h *trace.Node) { s.tr = h }

// newFrame builds a pooled frame; the caller owns its single reference.
func (s *Stack) newFrame(src, dst wire.MAC, h wire.Header, payload []byte, payloadLen int) *wire.Frame {
	return s.pool.Get(src, dst, h, payload, payloadLen)
}

func (s *Stack) getTx(f *wire.Frame, seq uint32, fn func(any), arg any) *txPacket {
	var pk *txPacket
	if n := len(s.txFree); n > 0 {
		pk = s.txFree[n-1]
		s.txFree[n-1] = nil
		s.txFree = s.txFree[:n-1]
	} else {
		pk = &txPacket{}
	}
	pk.frame = f
	pk.seq = seq
	pk.fn = fn
	pk.arg = arg
	return pk
}

func (s *Stack) putTx(pk *txPacket) {
	pk.frame = nil
	pk.fn = nil
	pk.arg = nil
	s.txFree = append(s.txFree, pk)
}

func (s *Stack) getRxDispatch(ep *Endpoint, f *wire.Frame, core *host.Core, ps *pullState, done func()) *rxDispatch {
	var d *rxDispatch
	if n := len(s.rxFree); n > 0 {
		d = s.rxFree[n-1]
		s.rxFree[n-1] = nil
		s.rxFree = s.rxFree[:n-1]
	} else {
		d = &rxDispatch{}
	}
	d.ep, d.f, d.core, d.ps, d.done = ep, f, core, ps, done
	return d
}

// schedulePaced queues ch.send(f, fn, arg) at virtual time at without
// allocating a closure per fragment.
func (s *Stack) schedulePaced(at sim.Time, ch *channel, f *wire.Frame, fn func(any), arg any) {
	var p *pacedSend
	if n := len(s.pacedFree); n > 0 {
		p = s.pacedFree[n-1]
		s.pacedFree[n-1] = nil
		s.pacedFree = s.pacedFree[:n-1]
	} else {
		p = &pacedSend{}
	}
	p.ch, p.f, p.fn, p.arg = ch, f, fn, arg
	s.eng.ScheduleArg(at, s.pacedFn, p)
}

// NIC returns the interface this stack drives.
func (s *Stack) NIC() *nic.NIC { return s.nic }

// Host returns the node this stack runs on.
func (s *Stack) Host() *host.Host { return s.hst }

// MAC returns the node's fabric address.
func (s *Stack) MAC() wire.MAC { return s.nic.MAC() }

// Open creates an endpoint with the given id, serviced by the rank pinned
// to core.
func (s *Stack) Open(id uint8, core *host.Core) *Endpoint {
	if _, dup := s.endpoints[id]; dup {
		panic(fmt.Sprintf("omx: endpoint %d already open", id))
	}
	e := newEndpoint(s, id, core)
	s.endpoints[id] = e
	return e
}

// eagerFragPayload is the data carried per eager fragment.
func (s *Stack) eagerFragPayload() int {
	return s.p.Proto.EagerFragPayload(wire.HeaderLen)
}

// Process implements nic.Driver: one completion-ring entry, in IRQ context
// on core.
func (s *Stack) Process(d *nic.RxDesc, core *host.Core, done func()) {
	bounce := sim.Time(0)
	cold := s.lastRxCore != core.ID
	if cold {
		bounce = s.p.Host.CacheBounce
		s.lastRxCore = core.ID
	}

	if d.TxDone {
		core.SubmitIRQ(s.p.Driver.TxFree+bounce, false, done)
		return
	}

	f := d.Frame
	h := &f.Header

	if h.Validate() != nil || h.Type == wire.TypeInvalid {
		// The overhead microbenchmark path: dropped by the receive handler
		// before any protocol work.
		core.SubmitIRQArg(s.p.Host.RxDropPacket+bounce, false, s.invalidFn, done)
		return
	}

	s.Stats.PacketsIn++
	ep, ok := s.endpoints[h.DstEP]
	if !ok {
		core.SubmitIRQArg(s.p.Host.RxDropPacket+bounce, false, s.noEndpointFn, done)
		return
	}

	cost, ps := ep.rxCost(f, cold)
	core.SubmitIRQArg(cost+bounce, false, s.rxEffectFn, s.getRxDispatch(ep, f, core, ps, done))
}

// rxCopyTime is the kernel copy cost for received eager payload into the
// ring; cold copies (after a core switch) run at the reduced bandwidth.
func (s *Stack) rxCopyTime(n int, cold bool) sim.Time {
	if cold {
		return s.p.Host.ColdCopyTime(n)
	}
	return s.p.Host.CopyTime(n)
}

// pullCopyTime is the kernel copy cost for pull replies into pinned user
// pages (slower than the ring copy).
func (s *Stack) pullCopyTime(n int, cold bool) sim.Time {
	if n <= 0 {
		return 0
	}
	bw := s.p.Host.PullCopyBandwidthBps
	if cold {
		bw = s.p.Host.PullColdCopyBandwidthBps
	}
	return sim.Time(int64(n) * 8 * int64(sim.Second) / bw)
}

// sendFrame hands a frame to the NIC (driver-side costs are charged by the
// caller in the appropriate context).
func (s *Stack) sendFrame(f *wire.Frame) {
	s.Stats.PacketsOut++
	s.nic.SendFrame(f)
}

// localEndpoint resolves an address on this node (shared-memory path).
func (s *Stack) localEndpoint(a Addr) *Endpoint {
	if a.MAC != s.MAC() {
		return nil
	}
	return s.endpoints[a.EP]
}
