// Package params centralizes every cost constant of the simulation model.
//
// The defaults are calibrated so that the paper's *baseline* configurations
// (timeout coalescing at 75 us, and coalescing disabled) land near the
// absolute numbers reported for the authors' testbed (two dual-socket
// quad-core Xeon E5345 hosts, Myri-10G NICs, MTU 1500, Open-MX 1.0.901).
// Everything else — the behaviour of the Open-MX and Stream coalescing
// strategies, NAS deltas, interrupt counts — is emergent from the model and
// is NOT individually tuned.
//
// All durations are virtual nanoseconds (sim.Time).
package params

import "openmxsim/internal/sim"

// Link models one full-duplex Ethernet port and the switch between hosts.
type Link struct {
	// BandwidthBps is the line rate in bits per second (10 Gb/s).
	BandwidthBps int64
	// PropagationDelay is the cable + PHY latency per hop.
	PropagationDelay sim.Time
	// SwitchLatency is the store-and-forward switch overhead added on top
	// of egress serialization.
	SwitchLatency sim.Time
	// JitterSD is the standard deviation of per-frame timing noise. It is
	// what limits the Stream-coalescing deferral success rate (Table III).
	JitterSD sim.Time
	// FrameOverheadBytes covers preamble + inter-frame gap + FCS, charged
	// on the wire in addition to the frame bytes.
	FrameOverheadBytes int
}

// SerializationTime returns the wire occupancy of n bytes.
func (l Link) SerializationTime(n int) sim.Time {
	bits := int64(n+l.FrameOverheadBytes) * 8
	return sim.Time(bits * int64(sim.Second) / l.BandwidthBps)
}

// NIC models the network interface: receive firmware, the DMA engine that
// deposits packets into host memory, and interrupt signalling.
type NIC struct {
	// FirmwareRxPacket is the per-packet firmware processing time
	// (descriptor creation, marker inspection).
	FirmwareRxPacket sim.Time
	// FirmwareStreamExtra is the additional per-packet firmware work of the
	// Stream-coalescing strategy (the paper notes it "requires more work in
	// the NIC and may thus limit performance under high traffic").
	FirmwareStreamExtra sim.Time
	// DMASetup is the fixed cost to start one write DMA.
	DMASetup sim.Time
	// DMABandwidthBps is the PCIe write throughput for payload DMA.
	DMABandwidthBps int64
	// MSIDelivery is the time for the interrupt message to reach the core.
	MSIDelivery sim.Time
	// TxSetup and TxBandwidthBps model the transmit-side DMA read.
	TxSetup        sim.Time
	TxBandwidthBps int64
	// DefaultCoalesceDelay is the stock myri10ge rx-usecs value.
	DefaultCoalesceDelay sim.Time
	// RxRingEntries is the completion-ring capacity; overflow drops frames.
	RxRingEntries int
	// AdaptiveMin/Max bound the adaptive strategy's delay range and
	// AdaptiveWindow is its rate-estimation window (Section VI extension).
	// The feedback strategy's delay walk is clamped to the same range.
	AdaptiveMin    sim.Time
	AdaptiveMax    sim.Time
	AdaptiveWindow sim.Time
	// FeedbackWindow is the sliding window over which the feedback
	// strategy measures its own interrupt rate and delivery latency;
	// FeedbackStep is how far it walks the delay per control decision.
	FeedbackWindow sim.Time
	FeedbackStep   sim.Time
	// FeedbackTargetIntrPerSec and FeedbackMaxLatency are the default goal
	// when the tuner supplies none: hold the interrupt rate at the target
	// without letting mean delivery latency exceed the budget.
	FeedbackTargetIntrPerSec float64
	FeedbackMaxLatency       sim.Time
}

// DMATime returns the DMA duration for a frame of n payload bytes.
func (n_ NIC) DMATime(n int) sim.Time {
	bits := int64(n) * 8
	return n_.DMASetup + sim.Time(bits*int64(sim.Second)/n_.DMABandwidthBps)
}

// TxTime returns the host-to-NIC DMA read duration for n bytes.
func (n_ NIC) TxTime(n int) sim.Time {
	bits := int64(n) * 8
	return n_.TxSetup + sim.Time(bits*int64(sim.Second)/n_.TxBandwidthBps)
}

// Host models the processor cores and the kernel receive stack.
type Host struct {
	// Cores is the core count per node (paper: dual-socket quad-core = 8).
	Cores int
	// IRQEntry is the hardware + software cost of taking one interrupt
	// (vector dispatch, ISR prologue, NAPI scheduling).
	IRQEntry sim.Time
	// NAPIPollEnd is the cost to finish a poll cycle and re-enable IRQs.
	NAPIPollEnd sim.Time
	// NAPIBudget is the Linux NAPI packet budget per poll invocation.
	NAPIBudget int
	// RxHandlerPacket is the per-packet cost of the low-level receive stack
	// plus the Open-MX receive handler's common path (the 965/774 ns
	// microbenchmark of Section IV-B2 measures this path).
	RxHandlerPacket sim.Time
	// RxDropPacket is the cost to drop an invalid packet (overhead bench).
	RxDropPacket sim.Time
	// CacheBounce is the cost of pulling the shared descriptor/ring cache
	// lines from another core, paid when the processing core changes.
	CacheBounce sim.Time
	// SleepEnabled lets idle cores enter C1E.
	SleepEnabled bool
	// IdleSleepDelay is how long a core must be idle before sleeping.
	IdleSleepDelay sim.Time
	// WakeupLatency is the C1E exit penalty paid before an interrupt is
	// serviced on a sleeping core ("several microseconds" in the paper).
	WakeupLatency sim.Time
	// CopyBandwidthBps is the kernel memcpy rate for eager payload moving
	// into the contiguous event ring, when the processing core is warm
	// (it handled the previous packet too).
	CopyBandwidthBps int64
	// ColdCopyBandwidthBps applies when the handling core just changed:
	// the channel descriptors, ring lines and destination buffer must be
	// pulled from the previous core's cache. Scattered (round-robin,
	// per-packet) interrupts pay this on every packet — the paper's
	// cache-line bounce effect (Sections III-B, IV-B).
	ColdCopyBandwidthBps int64
	// PullCopyBandwidthBps and PullColdCopyBandwidthBps are the same pair
	// for pull replies, which deposit into scattered pinned user pages
	// rather than the ring (slower than the ring copy).
	PullCopyBandwidthBps     int64
	PullColdCopyBandwidthBps int64
}

// CopyTime returns the duration of a warm host memcpy of n bytes.
func (h Host) CopyTime(n int) sim.Time {
	if n <= 0 {
		return 0
	}
	bits := int64(n) * 8
	return sim.Time(bits * int64(sim.Second) / h.CopyBandwidthBps)
}

// ColdCopyTime returns the memcpy duration on a core that just took over
// the receive path.
func (h Host) ColdCopyTime(n int) sim.Time {
	if n <= 0 {
		return 0
	}
	bits := int64(n) * 8
	return sim.Time(bits * int64(sim.Second) / h.ColdCopyBandwidthBps)
}

// Proto holds Open-MX protocol constants (wire-visible behaviour).
type Proto struct {
	// MTU is the Ethernet payload limit; Open-MX headers live inside it for
	// eager fragments. 1500 in the paper's evaluation.
	MTU int
	// SmallMax is the largest single-packet eager message (128 B).
	SmallMax int
	// MediumMax is the largest fragmented eager message (32 KiB).
	MediumMax int
	// PullBlockFrags is the number of fragments requested by one pull
	// request (32 in the MXoE wire spec).
	PullBlockFrags int
	// PullParallel is how many pull requests the driver keeps in flight
	// ("the driver tries to pipeline 4 requests at the same time").
	PullParallel int
	// PullReplyPayload is the data carried by one pull reply. The paper's
	// packet accounting (5 requests for 234 KiB) implies a full MTU of data
	// per reply, headers not counted against it.
	PullReplyPayload int
	// AckInterval: an explicit ack is returned every AckInterval eager
	// messages (the paper observes acks are "up to 20 % of the traffic").
	AckInterval int
	// AckDelay flushes a pending ack after this time even if the interval
	// was not reached.
	AckDelay sim.Time
	// ResendTimeout triggers retransmission of unacked sends. It is the
	// base of the exponential backoff: the k-th consecutive expiry of the
	// same timer waits ResendTimeout<<k (plus deterministic jitter),
	// capped at ResendBackoffMax.
	ResendTimeout sim.Time
	// ResendBackoffMax caps the backed-off retry interval. Zero or
	// negative disables the cap (pure exponential growth up to
	// MaxResends attempts).
	ResendBackoffMax sim.Time
	// MaxResends bounds consecutive unacknowledged retries of each
	// reliability timer — the channel resend timer, the per-block pull
	// retry timer, and the connect retry. Once exhausted the operation
	// gives up: the channel fails, outstanding handles complete with
	// ErrGiveUp, and Stats.GiveUps is incremented, instead of
	// retransmitting forever into a dead link. Zero or negative restores
	// the historic retry-forever behaviour.
	MaxResends int
	// SendWindow is the per-peer limit on outstanding unacked packets.
	SendWindow int
	// MediumInflight caps concurrent medium messages per channel (the
	// endpoint's send ring has a bounded number of medium slots); it sets
	// the pacing-chain overlap that shapes the medium stream rate.
	MediumInflight int
	// EventRingEntries is the per-endpoint shared event ring capacity.
	EventRingEntries int
}

// EagerFragPayload returns the per-fragment payload for eager messages: the
// 32-byte Open-MX header is carried inside the MTU (32768-byte mediums split
// into 23 fragments at MTU 1500, matching Table III).
func (p Proto) EagerFragPayload(headerLen int) int {
	return p.MTU - headerLen
}

// Driver models the Open-MX kernel driver costs beyond the common handler.
type Driver struct {
	// TxPacket is the per-packet send cost in the driver (descriptor setup,
	// queueing to the NIC).
	TxPacket sim.Time
	// TxFree is the per-packet cost of reaping a transmit completion in
	// the NAPI poll (skb free, ring advance).
	TxFree sim.Time
	// MediumFragGap is the pacing between successive medium fragments of
	// one endpoint (send-ring slot handling and doorbells): ~3 us/fragment
	// reproduces the paper's 14.5k msg/s medium rate and the inter-packet
	// gaps that make Stream coalescing's deferral a genuine race.
	MediumFragGap sim.Time
	// MediumFragGapJitterDiv sets pacing noise: sd = gap/div (0 disables).
	MediumFragGapJitterDiv int64
	// RxEager is the extra per-fragment cost of eager reassembly
	// bookkeeping (beyond Host.RxHandlerPacket and the payload copy).
	RxEager sim.Time
	// RxPull is the per-reply cost of the pull engine bookkeeping.
	RxPull sim.Time
	// PullRequestCost is the cost to build and send one pull request.
	PullRequestCost sim.Time
	// EventWrite is the cost to post one event into the user ring.
	EventWrite sim.Time
	// AckCost is the cost to generate or process one ack.
	AckCost sim.Time
	// ConnectCost is the per-packet cost of connection management.
	ConnectCost sim.Time
}

// Lib models the user-space MX library.
type Lib struct {
	// SendPost is the fixed cost of posting a send from the application.
	SendPost sim.Time
	// RecvPost is the fixed cost of posting a receive.
	RecvPost sim.Time
	// Match is the cost of matching one event against the posted queue.
	Match sim.Time
	// EventPop is the per-event cost of reading the shared ring.
	EventPop sim.Time
	// Progress is the fixed cost of one progression/poll loop iteration,
	// paid once per pickup burst.
	Progress sim.Time
	// PerMessage is the per-message completion cost in the library and the
	// middleware above it (request tracking, MPI envelope handling).
	PerMessage sim.Time
	// FragEvent is the per-fragment reassembly bookkeeping cost in the
	// library (Open-MX mediums are reassembled in user space).
	FragEvent sim.Time
	// CopyBandwidthBps is the user-space copy rate (unexpected-queue and
	// eager delivery copies).
	CopyBandwidthBps int64
	// BusyPoll: the application spins for completions (cores never sleep
	// while a rank is waiting). This is how Open MPI drives MX.
	BusyPoll bool
	// ShmLatency is the fixed cost of the intra-node shared-memory path
	// (Open-MX delivers same-host messages without touching the NIC).
	ShmLatency sim.Time
}

// CopyTime returns the duration of a user-space copy of n bytes.
func (l Lib) CopyTime(n int) sim.Time {
	if n <= 0 {
		return 0
	}
	bits := int64(n) * 8
	return sim.Time(bits * int64(sim.Second) / l.CopyBandwidthBps)
}

// Params aggregates the full model.
type Params struct {
	Link   Link
	NIC    NIC
	Host   Host
	Proto  Proto
	Driver Driver
	Lib    Lib
}

// Default returns the calibrated paper-platform parameters.
func Default() *Params {
	return &Params{
		Link: Link{
			BandwidthBps:       10_000_000_000, // Myri-10G in Ethernet mode
			PropagationDelay:   200,
			SwitchLatency:      450,
			JitterSD:           25,
			FrameOverheadBytes: 24, // preamble 8 + FCS 4 + IFG 12
		},
		NIC: NIC{
			FirmwareRxPacket:     150,
			FirmwareStreamExtra:  60,
			DMASetup:             350,
			DMABandwidthBps:      16_000_000_000, // PCIe x8 effective
			MSIDelivery:          250,
			TxSetup:              300,
			TxBandwidthBps:       16_000_000_000,
			DefaultCoalesceDelay: 75 * sim.Microsecond,
			RxRingEntries:        4096,
			AdaptiveMin:          5 * sim.Microsecond,
			AdaptiveMax:          100 * sim.Microsecond,
			AdaptiveWindow:       200 * sim.Microsecond,
			FeedbackWindow:       200 * sim.Microsecond,
			FeedbackStep:         5 * sim.Microsecond,

			FeedbackTargetIntrPerSec: 20_000,
			FeedbackMaxLatency:       40 * sim.Microsecond, // ~half the worst fig5 latency cost
		},
		Host: Host{
			Cores:                    8,
			IRQEntry:                 150,
			NAPIPollEnd:              85,
			NAPIBudget:               64,
			RxHandlerPacket:          480,
			RxDropPacket:             690,
			CacheBounce:              40,
			SleepEnabled:             true,
			IdleSleepDelay:           1200,
			WakeupLatency:            3200,
			CopyBandwidthBps:         7_200_000_000, // ~0.9 GB/s warm ring copy
			ColdCopyBandwidthBps:     4_400_000_000, // ~0.55 GB/s after a core switch
			PullCopyBandwidthBps:     4_800_000_000, // ~0.6 GB/s into pinned user pages
			PullColdCopyBandwidthBps: 3_000_000_000, // ~0.38 GB/s cold
		},
		Proto: Proto{
			MTU:              1500,
			SmallMax:         128,
			MediumMax:        32 * 1024,
			PullBlockFrags:   32,
			PullParallel:     4,
			PullReplyPayload: 1500,
			AckInterval:      4,
			AckDelay:         50 * sim.Microsecond,
			ResendTimeout:    10 * sim.Millisecond,
			ResendBackoffMax: 100 * sim.Millisecond,
			MaxResends:       8,
			SendWindow:       128,
			MediumInflight:   2,
			EventRingEntries: 1024,
		},
		Driver: Driver{
			TxPacket:               350,
			TxFree:                 260,
			MediumFragGap:          6500,
			MediumFragGapJitterDiv: 2,
			RxEager:                160,
			RxPull:                 140,
			PullRequestCost:        400,
			EventWrite:             170,
			AckCost:                420,
			ConnectCost:            500,
		},
		Lib: Lib{
			SendPost:         420,
			RecvPost:         260,
			Match:            140,
			EventPop:         230,
			Progress:         180,
			PerMessage:       1600,
			FragEvent:        150,
			CopyBandwidthBps: 12_800_000_000, // ~1.6 GB/s user memcpy
			BusyPoll:         true,
			ShmLatency:       400,
		},
	}
}

// Clone returns a deep copy (Params contains only value fields).
func (p *Params) Clone() *Params {
	c := *p
	return &c
}
