// Package proc provides deterministic process-style coroutines over the
// event engine: each simulated rank runs straight-line blocking code in its
// own goroutine, but control strictly alternates between the engine and at
// most one rank at a time, so simulations remain bit-reproducible and free
// of data races by construction.
package proc

import (
	"fmt"

	"openmxsim/internal/host"
	"openmxsim/internal/sim"
)

type killSentinel struct{}

// Proc is one simulated process (MPI rank).
type Proc struct {
	Name string

	resume  chan struct{}
	yield   chan struct{}
	waiting bool
	done    bool
	killed  bool
	started bool
}

// New creates a process; Start launches it.
func New(name string) *Proc {
	return &Proc{
		Name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
}

// Start schedules the process body to begin at virtual time at. The body
// runs in its own goroutine but only while the engine is blocked on it.
func (p *Proc) Start(eng *sim.Engine, at sim.Time, fn func()) {
	if p.started {
		panic("proc: double Start")
	}
	p.started = true
	go p.run(fn)
	eng.Schedule(at, p.step)
}

func (p *Proc) run(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSentinel); !ok {
				panic(r) // real bug in rank code: crash loudly
			}
		}
		p.done = true
		p.yield <- struct{}{}
	}()
	<-p.resume
	if p.killed {
		panic(killSentinel{})
	}
	fn()
}

// step transfers control to the process until it blocks or finishes.
// It must only be called from engine context.
func (p *Proc) step() {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-p.yield
}

// block parks the process until the next Wake. Must be called from the
// process goroutine.
func (p *Proc) block() {
	p.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killSentinel{})
	}
}

// Wait blocks the process until cond() is true. cond is evaluated in
// process context; Wake re-evaluates it.
func (p *Proc) Wait(cond func() bool) {
	for !cond() {
		p.waiting = true
		p.block()
		p.waiting = false
	}
}

// Wake resumes a process blocked in Wait. Calling it when the process is
// not waiting is a harmless no-op (the condition is re-checked before any
// block). Must be called from engine context.
func (p *Proc) Wake() {
	if p.done || !p.waiting {
		return
	}
	p.step()
}

// IsKill reports whether a value recovered inside a process body is the
// sentinel Kill unwinds with. Rank-level recover wrappers must re-panic it
// so teardown proceeds normally.
func IsKill(r any) bool { _, ok := r.(killSentinel); return ok }

// Done reports whether the process body returned.
func (p *Proc) Done() bool { return p.done }

// Waiting reports whether the process is blocked in Wait.
func (p *Proc) Waiting() bool { return p.waiting }

// Kill aborts a blocked process (used to tear down abandoned simulations
// without leaking goroutines). Must be called from engine context.
func (p *Proc) Kill() {
	if p.done {
		return
	}
	p.killed = true
	if !p.started {
		return
	}
	p.step()
	if !p.done {
		panic(fmt.Sprintf("proc: %s survived Kill", p.Name))
	}
}

// Advance charges d nanoseconds of user-context work (a compute phase) to
// core and blocks the process until it completes. Interrupt load on the
// core stretches the phase, which is how interrupt processing steals
// application time in the NAS runs.
func (p *Proc) Advance(core *host.Core, d sim.Time) {
	done := false
	core.SubmitUser(d, func() {
		done = true
		p.Wake()
	})
	p.Wait(func() bool { return done })
}
