package proc

import (
	"testing"

	"openmxsim/internal/host"
	"openmxsim/internal/params"
	"openmxsim/internal/sim"
)

func TestProcRunsToCompletion(t *testing.T) {
	eng := sim.NewEngine()
	p := New("p")
	ran := false
	p.Start(eng, 0, func() { ran = true })
	eng.Run()
	if !ran || !p.Done() {
		t.Fatalf("ran=%v done=%v", ran, p.Done())
	}
}

func TestWaitAndWake(t *testing.T) {
	eng := sim.NewEngine()
	p := New("p")
	flag := false
	var wokeAt sim.Time
	p.Start(eng, 0, func() {
		p.Wait(func() bool { return flag })
		wokeAt = eng.Now()
	})
	eng.After(500, func() {
		flag = true
		p.Wake()
	})
	eng.Run()
	if !p.Done() {
		t.Fatal("proc stuck")
	}
	if wokeAt != 500 {
		t.Fatalf("woke at %d, want 500", wokeAt)
	}
}

func TestWaitConditionAlreadyTrue(t *testing.T) {
	eng := sim.NewEngine()
	p := New("p")
	p.Start(eng, 0, func() {
		p.Wait(func() bool { return true }) // must not block
	})
	eng.Run()
	if !p.Done() {
		t.Fatal("proc blocked on an already-true condition")
	}
}

func TestSpuriousWakeIgnored(t *testing.T) {
	eng := sim.NewEngine()
	p := New("p")
	flag := false
	p.Start(eng, 0, func() {
		p.Wait(func() bool { return flag })
	})
	eng.After(100, func() { p.Wake() }) // condition still false
	eng.After(200, func() {
		flag = true
		p.Wake()
	})
	eng.Run()
	if !p.Done() {
		t.Fatal("proc stuck after spurious wake")
	}
}

func TestWakeWhenNotWaitingIsNoop(t *testing.T) {
	eng := sim.NewEngine()
	p := New("p")
	p.Start(eng, 0, func() {})
	eng.Run()
	p.Wake() // done proc: must not hang or panic
}

func TestAdvanceChargesCore(t *testing.T) {
	eng := sim.NewEngine()
	hp := params.Default().Host
	hp.SleepEnabled = false
	h := host.New(eng, 0, hp)
	p := New("p")
	var t1, t2 sim.Time
	p.Start(eng, 0, func() {
		p.Advance(h.Cores[0], 1000)
		t1 = eng.Now()
		p.Advance(h.Cores[0], 2000)
		t2 = eng.Now()
	})
	eng.Run()
	if t1 != 1000 || t2 != 3000 {
		t.Fatalf("advance times %d, %d; want 1000, 3000", t1, t2)
	}
}

func TestAdvanceStretchedByIRQ(t *testing.T) {
	eng := sim.NewEngine()
	hp := params.Default().Host
	hp.SleepEnabled = false
	h := host.New(eng, 0, hp)
	p := New("p")
	var end sim.Time
	p.Start(eng, 0, func() {
		p.Advance(h.Cores[0], 10_000)
		end = eng.Now()
	})
	eng.After(1000, func() {
		h.Cores[0].SubmitIRQ(5000, true, func() {})
	})
	eng.Run()
	if end != 15_000 {
		t.Fatalf("compute finished at %d, want 15000 (stretched by IRQ)", end)
	}
}

func TestTwoProcsInterleave(t *testing.T) {
	eng := sim.NewEngine()
	hp := params.Default().Host
	hp.SleepEnabled = false
	h := host.New(eng, 0, hp)
	a, b := New("a"), New("b")
	var order []string
	ready := false
	a.Start(eng, 0, func() {
		order = append(order, "a1")
		a.Wait(func() bool { return ready })
		order = append(order, "a2")
	})
	b.Start(eng, 0, func() {
		order = append(order, "b1")
		b.Advance(h.Cores[1], 100)
		ready = true
		a.Wake()
		order = append(order, "b2")
	})
	eng.Run()
	want := []string{"a1", "b1", "a2", "b2"}
	if len(order) != 4 {
		t.Fatalf("order %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	if !a.Done() || !b.Done() {
		t.Fatal("procs stuck")
	}
}

func TestKillUnblocksStuckProc(t *testing.T) {
	eng := sim.NewEngine()
	p := New("p")
	p.Start(eng, 0, func() {
		p.Wait(func() bool { return false }) // never satisfied
	})
	eng.Run()
	if p.Done() {
		t.Fatal("proc should be stuck")
	}
	if !p.Waiting() {
		t.Fatal("proc should be waiting")
	}
	p.Kill()
	if !p.Done() {
		t.Fatal("Kill did not terminate the proc")
	}
}

func TestKillFinishedProcIsNoop(t *testing.T) {
	eng := sim.NewEngine()
	p := New("p")
	p.Start(eng, 0, func() {})
	eng.Run()
	p.Kill()
	if !p.Done() {
		t.Fatal("done proc un-done by Kill")
	}
}

func TestDoubleStartPanics(t *testing.T) {
	eng := sim.NewEngine()
	p := New("p")
	p.Start(eng, 0, func() {})
	defer func() {
		if recover() == nil {
			t.Error("double Start did not panic")
		}
	}()
	p.Start(eng, 0, func() {})
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []int {
		eng := sim.NewEngine()
		hp := params.Default().Host
		hp.SleepEnabled = false
		h := host.New(eng, 0, hp)
		var trace []int
		procs := make([]*Proc, 4)
		for i := range procs {
			i := i
			procs[i] = New("p")
			procs[i].Start(eng, 0, func() {
				for k := 0; k < 5; k++ {
					procs[i].Advance(h.Cores[i%len(h.Cores)], sim.Time(100*(i+1)))
					trace = append(trace, i)
				}
			})
		}
		eng.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("trace lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interleaving differs at %d: %v vs %v", i, a, b)
		}
	}
}
