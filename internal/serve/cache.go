package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ResultsVersion is the code-version component of every cache key. It
// must be bumped whenever a change alters simulator output for the same
// spec (new Result fields, changed event ordering, new defaults) — the
// old entries then simply stop matching and age out, instead of serving
// stale bytes as if they were fresh execution. Execution-shape changes
// that provably do not alter output (worker count, parallelism,
// scheduler) must NOT bump it; the differential CI jobs are the proof.
const ResultsVersion = "omxsim-r10"

// entryMagic versions the on-disk entry layout itself (header format),
// independent of the simulator semantics ResultsVersion tracks.
const entryMagic = "omxcache1"

// Cache is a crash-safe, content-addressed result cache: payloads are
// stored whole under their spec's key, written via temp-file + rename so
// a crash mid-write (power cut, kill -9) can never leave a partially
// visible entry, and every read re-verifies a per-entry SHA-256 before a
// byte is served. Entries that fail verification — truncated by a crash,
// bit-flipped by the disk — are quarantined, not deleted and never
// served; the subsequent miss makes the caller re-execute.
//
// A nil *Cache is valid and caches nothing: Get always misses, Put is a
// no-op. The CLIs use that for "no -cache-dir".
type Cache struct {
	dir     string
	version string

	// writeMu serializes Put's temp-file dance per process; cross-process
	// safety comes from rename atomicity, not this lock.
	writeMu sync.Mutex

	hits, misses, puts, quarantined atomic.Uint64
	recoveredQuarantined            int
	scanned                         int
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Puts        uint64 `json:"puts"`
	Quarantined uint64 `json:"quarantined"`
	// ScanQuarantined and Scanned describe the startup recovery scan:
	// how many entries the scan inspected and how many it quarantined.
	Scanned         int `json:"scanned"`
	ScanQuarantined int `json:"scan_quarantined"`
}

// OpenCache opens (creating if needed) the cache rooted at dir and runs
// the startup recovery scan: leftover temp files from interrupted writes
// are deleted, and every committed entry is verified — truncated or
// corrupt ones move to dir/quarantine/ for post-mortem instead of ever
// being served. The scan makes restart-after-kill -9 safe by
// construction: whatever state the crash left, the surviving entries all
// verify.
func OpenCache(dir, version string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: empty cache directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "quarantine"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: creating cache directory: %w", err)
	}
	c := &Cache{dir: dir, version: version}

	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: scanning cache directory: %w", err)
	}
	// Deterministic scan order (ReadDir sorts, but be explicit: the scan
	// log and quarantine numbering should not depend on the filesystem).
	sorted := make([]string, 0, len(names))
	for _, e := range names {
		if !e.IsDir() {
			sorted = append(sorted, e.Name())
		}
	}
	sort.Strings(sorted)
	for _, name := range sorted {
		path := filepath.Join(dir, name)
		if strings.HasPrefix(name, tmpPrefix) {
			// An interrupted Put: the entry was never committed, so the
			// fragment carries no information worth quarantining.
			os.Remove(path)
			continue
		}
		if !strings.HasSuffix(name, entrySuffix) {
			continue // not ours; leave foreign files alone
		}
		c.scanned++
		key := strings.TrimSuffix(name, entrySuffix)
		if _, err := readEntry(path, key); err != nil {
			if qerr := c.quarantine(path); qerr != nil {
				return nil, fmt.Errorf("serve: quarantining corrupt entry %s: %v (verify error: %w)", name, qerr, err)
			}
			c.recoveredQuarantined++
		}
	}
	return c, nil
}

const (
	tmpPrefix   = ".tmp-"
	entrySuffix = ".res"
)

// Key content-addresses a spec: SHA-256 over the cache's code version,
// the job kind, and the spec's canonical JSON. Callers pass the
// *canonical* form (sweep.Grid.Canonical, tune.Spec.Canonical) so
// equivalent spellings of one workload collide on one key and
// machine-shape knobs never reach it.
func (c *Cache) Key(kind string, spec any) (string, error) {
	b, err := json.Marshal(spec)
	if err != nil {
		return "", fmt.Errorf("serve: canonicalizing %s spec: %w", kind, err)
	}
	h := sha256.New()
	version := ResultsVersion
	if c != nil {
		version = c.version
	}
	fmt.Fprintf(h, "%s\x00%s\x00", version, kind)
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Get returns the payload stored under key. ok is false on a miss — and
// on a corrupt entry, which is quarantined on the way out so the
// fallback re-execution can repopulate the slot.
func (c *Cache) Get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	path := c.entryPath(key)
	payload, err := readEntry(path, key)
	if err != nil {
		if !os.IsNotExist(err) {
			// Committed but unreadable/corrupt: never serve it, keep the
			// evidence.
			if c.quarantine(path) == nil {
				c.quarantined.Add(1)
			}
		}
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return payload, true
}

// Put commits payload under key atomically: temp file in the same
// directory, fsync, rename. A crash at any instant leaves either the old
// state or the complete new entry — never a torn one — and the startup
// scan sweeps the temp fragment.
func (c *Cache) Put(key string, payload []byte) error {
	if c == nil {
		return nil
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()

	f, err := os.CreateTemp(c.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("serve: cache write: %w", err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("serve: cache write: %w", err)
	}
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s %s %d\n", entryMagic, key, hex.EncodeToString(sum[:]), len(payload))
	if _, err := f.WriteString(header); err != nil {
		return cleanup(err)
	}
	if _, err := f.Write(payload); err != nil {
		return cleanup(err)
	}
	// fsync before rename: the rename must never become visible ahead of
	// the data it names.
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: cache write: %w", err)
	}
	if err := os.Rename(tmp, c.entryPath(key)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("serve: cache commit: %w", err)
	}
	c.puts.Add(1)
	return nil
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:            c.hits.Load(),
		Misses:          c.misses.Load(),
		Puts:            c.puts.Load(),
		Quarantined:     c.quarantined.Load(),
		Scanned:         c.scanned,
		ScanQuarantined: c.recoveredQuarantined,
	}
}

// Dir returns the cache root ("" for a nil cache).
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

func (c *Cache) entryPath(key string) string {
	return filepath.Join(c.dir, key+entrySuffix)
}

// quarantine moves a corrupt entry aside under a non-colliding name.
func (c *Cache) quarantine(path string) error {
	base := filepath.Base(path)
	for i := 0; ; i++ {
		dst := filepath.Join(c.dir, "quarantine", base)
		if i > 0 {
			dst += "." + strconv.Itoa(i)
		}
		if _, err := os.Lstat(dst); err == nil {
			continue
		}
		return os.Rename(path, dst)
	}
}

// readEntry loads and fully verifies one entry: magic, key match against
// the filename, payload length, and payload SHA-256. Any mismatch is an
// error; the caller decides between miss and quarantine.
func readEntry(path, wantKey string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("entry %s: truncated header", filepath.Base(path))
	}
	fields := strings.Fields(string(raw[:nl]))
	if len(fields) != 4 || fields[0] != entryMagic {
		return nil, fmt.Errorf("entry %s: malformed header", filepath.Base(path))
	}
	if fields[1] != wantKey {
		return nil, fmt.Errorf("entry %s: key mismatch (header %s)", filepath.Base(path), fields[1])
	}
	wantLen, err := strconv.Atoi(fields[3])
	if err != nil {
		return nil, fmt.Errorf("entry %s: bad length field: %v", filepath.Base(path), err)
	}
	payload := raw[nl+1:]
	if len(payload) != wantLen {
		return nil, fmt.Errorf("entry %s: payload %d bytes, header says %d (truncated write?)", filepath.Base(path), len(payload), wantLen)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != fields[2] {
		return nil, fmt.Errorf("entry %s: checksum mismatch (bit rot?)", filepath.Base(path))
	}
	return payload, nil
}
