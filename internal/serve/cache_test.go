package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"openmxsim/internal/sweep"
)

func openTestCache(t *testing.T) *Cache {
	t.Helper()
	c, err := OpenCache(t.TempDir(), ResultsVersion)
	if err != nil {
		t.Fatalf("OpenCache: %v", err)
	}
	return c
}

func TestCachePutGetRoundtrip(t *testing.T) {
	c := openTestCache(t)
	key, err := c.Key("sweep", sweep.Grid{Iters: 5}.Canonical())
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("Get on empty cache reported a hit")
	}
	payload := []byte(`[{"latency_ns":1234}]` + "\n")
	if err := c.Put(key, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mutated through the cache:\nput %q\ngot %q", payload, got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Quarantined != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 put / 0 quarantined", st)
	}
}

func TestCacheNilIsNoop(t *testing.T) {
	var c *Cache
	key, err := c.Key("sweep", sweep.Grid{}.Canonical())
	if err != nil || key == "" {
		t.Fatalf("nil cache Key: %q, %v", key, err)
	}
	if err := c.Put(key, []byte("x")); err != nil {
		t.Fatalf("nil cache Put: %v", err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("nil cache claimed a hit")
	}
	if c.Stats() != (CacheStats{}) || c.Dir() != "" {
		t.Fatal("nil cache leaked state")
	}
}

func TestCacheKeySeparatesVersionKindSpec(t *testing.T) {
	c := openTestCache(t)
	g1 := sweep.Grid{Iters: 5}.Canonical()
	g2 := sweep.Grid{Iters: 6}.Canonical()
	k1, _ := c.Key("sweep", g1)
	k2, _ := c.Key("sweep", g2)
	k3, _ := c.Key("tune", g1)
	if k1 == k2 {
		t.Fatal("different specs share a key")
	}
	if k1 == k3 {
		t.Fatal("different kinds share a key")
	}
	old, err := OpenCache(c.Dir(), "omxsim-r0")
	if err != nil {
		t.Fatalf("OpenCache old version: %v", err)
	}
	k4, _ := old.Key("sweep", g1)
	if k1 == k4 {
		t.Fatal("different code versions share a key — stale results would survive upgrades")
	}
}

// TestCacheGridCanonicalSharesKey pins the contract that machine-shape
// knobs never split the cache: the same axes at different parallelism
// hash to one key.
func TestCacheGridCanonicalSharesKey(t *testing.T) {
	c := openTestCache(t)
	g := sweep.Grid{Iters: 5}
	gp := g
	gp.Par = 8
	k1, _ := c.Key("sweep", g.Canonical())
	k2, _ := c.Key("sweep", gp.Canonical())
	if k1 != k2 {
		t.Fatal("Par split the cache key; canonicalization must strip execution shape")
	}
}

func corruptEntry(t *testing.T, c *Cache, key string, mutate func([]byte) []byte) {
	t.Helper()
	path := c.entryPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading entry to corrupt: %v", err)
	}
	if err := os.WriteFile(path, mutate(raw), 0o644); err != nil {
		t.Fatalf("writing corrupted entry: %v", err)
	}
}

func quarantineCount(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil {
		t.Fatalf("reading quarantine: %v", err)
	}
	return len(ents)
}

// TestCacheTruncatedEntryQuarantined is the kill -9-mid-write story:
// a torn payload must never be served; it is quarantined, the Get
// misses, and re-execution repopulates the slot with good bytes.
func TestCacheTruncatedEntryQuarantined(t *testing.T) {
	c := openTestCache(t)
	key, _ := c.Key("sweep", sweep.Grid{Iters: 5}.Canonical())
	payload := []byte(strings.Repeat("result-bytes ", 64))
	if err := c.Put(key, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	corruptEntry(t, c, key, func(raw []byte) []byte { return raw[:len(raw)-7] })

	if _, ok := c.Get(key); ok {
		t.Fatal("truncated entry was served")
	}
	if n := quarantineCount(t, c.Dir()); n != 1 {
		t.Fatalf("quarantine holds %d entries, want 1", n)
	}
	if st := c.Stats(); st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d, want 1", st.Quarantined)
	}
	// Fallback re-execution path: Put again, Get serves the fresh bytes.
	if err := c.Put(key, payload); err != nil {
		t.Fatalf("re-Put after quarantine: %v", err)
	}
	got, ok := c.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("re-populated entry not served byte-identically")
	}
}

// TestCacheBitFlipQuarantined covers silent corruption: length intact,
// one payload bit flipped — only the checksum can catch it.
func TestCacheBitFlipQuarantined(t *testing.T) {
	c := openTestCache(t)
	key, _ := c.Key("sweep", sweep.Grid{Iters: 7}.Canonical())
	if err := c.Put(key, []byte(`{"knee_delay_ns":75000}`+"\n")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	corruptEntry(t, c, key, func(raw []byte) []byte {
		raw[len(raw)-3] ^= 0x40 // flip a bit deep in the payload
		return raw
	})
	if _, ok := c.Get(key); ok {
		t.Fatal("bit-flipped entry was served")
	}
	if n := quarantineCount(t, c.Dir()); n != 1 {
		t.Fatalf("quarantine holds %d entries, want 1", n)
	}
}

// TestCacheStartupScan replays a crashed process's leavings: a stray
// temp fragment (interrupted Put), a truncated committed entry, and a
// healthy one. Recovery must sweep the fragment, quarantine the corpse,
// and keep serving the survivor.
func TestCacheStartupScan(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, ResultsVersion)
	if err != nil {
		t.Fatalf("OpenCache: %v", err)
	}
	goodKey, _ := c.Key("sweep", sweep.Grid{Iters: 5}.Canonical())
	badKey, _ := c.Key("sweep", sweep.Grid{Iters: 9}.Canonical())
	goodPayload := []byte("good result\n")
	if err := c.Put(goodKey, goodPayload); err != nil {
		t.Fatalf("Put good: %v", err)
	}
	if err := c.Put(badKey, []byte("doomed result\n")); err != nil {
		t.Fatalf("Put bad: %v", err)
	}
	corruptEntry(t, c, badKey, func(raw []byte) []byte { return raw[:len(raw)/2] })
	tmp := filepath.Join(dir, tmpPrefix+"crashed-write")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatalf("planting temp fragment: %v", err)
	}

	// "Restart" the server: reopen over the same directory.
	c2, err := OpenCache(dir, ResultsVersion)
	if err != nil {
		t.Fatalf("OpenCache after crash: %v", err)
	}
	if _, err := os.Lstat(tmp); !os.IsNotExist(err) {
		t.Fatal("interrupted-write fragment survived recovery")
	}
	if n := quarantineCount(t, dir); n != 1 {
		t.Fatalf("quarantine holds %d entries after scan, want 1", n)
	}
	st := c2.Stats()
	if st.Scanned != 2 || st.ScanQuarantined != 1 {
		t.Fatalf("scan stats = %+v, want Scanned 2 / ScanQuarantined 1", st)
	}
	if _, ok := c2.Get(badKey); ok {
		t.Fatal("quarantined entry still served after recovery")
	}
	got, ok := c2.Get(goodKey)
	if !ok || !bytes.Equal(got, goodPayload) {
		t.Fatal("healthy entry lost during recovery")
	}
}

// TestCacheQuarantineNameCollision: quarantining the same key twice
// must keep both corpses.
func TestCacheQuarantineNameCollision(t *testing.T) {
	c := openTestCache(t)
	key, _ := c.Key("sweep", sweep.Grid{Iters: 5}.Canonical())
	for i := 0; i < 2; i++ {
		if err := c.Put(key, []byte("payload\n")); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		corruptEntry(t, c, key, func(raw []byte) []byte { return raw[:3] })
		if _, ok := c.Get(key); ok {
			t.Fatalf("corrupt entry %d served", i)
		}
	}
	if n := quarantineCount(t, c.Dir()); n != 2 {
		t.Fatalf("quarantine holds %d entries, want 2 (collision overwrote evidence?)", n)
	}
}
