package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"openmxsim/internal/cluster"
	"openmxsim/internal/sweep"
)

// JobState is the lifecycle: queued → running → done | failed |
// cancelled. Cache hits are born done.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// terminal reports whether the state can never change again.
func (s JobState) terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// runFunc executes one job attempt: it returns the final result payload
// (the exact bytes the offline CLI would emit) and feeds obs each
// completed point. It must honor ctx at the between-points seam.
type runFunc func(ctx context.Context, obs sweep.Observer) ([]byte, error)

// Job is one supervised unit of work. All mutable fields are guarded by
// the owning Server's mu; snapshots leave the lock as JobStatus copies.
type Job struct {
	ID     string
	Kind   string // "sweep" | "tune"
	Client string
	Key    string // cache key (content address of the canonical spec)

	run    runFunc
	cancel context.CancelCauseFunc // nil until running; see Server.cancelJob

	state     JobState
	slotHeld  bool // true while the job counts against its client's cap
	err       string
	attempts  int
	retries   int
	cacheHit  bool
	result    []byte
	points    []sweep.Result
	updated   chan struct{} // closed and replaced on every mutation
	submitted time.Time
	finished  time.Time
}

// JobStatus is the wire form of a job's state.
type JobStatus struct {
	ID       string   `json:"id"`
	Kind     string   `json:"kind"`
	State    JobState `json:"state"`
	CacheKey string   `json:"cache_key"`
	Cached   bool     `json:"cached"`
	Attempts int      `json:"attempts"`
	Retries  int      `json:"retries"`
	Points   int      `json:"points_done"`
	Error    string   `json:"error,omitempty"`
}

// Transient marks an error worth retrying: the failure came from the
// environment (filesystem hiccup, resource pressure), not from the
// deterministic simulation — re-running the same spec can succeed.
// Everything not wrapped in Transient is treated as permanent, because a
// deterministic executor reproduces its own failures exactly.
type Transient struct{ Err error }

func (e *Transient) Error() string { return "transient: " + e.Err.Error() }
func (e *Transient) Unwrap() error { return e.Err }

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var t *Transient
	return errors.As(err, &t)
}

// errClass is the supervisor's failure taxonomy.
type errClass int

const (
	classOK        errClass = iota
	classCancelled          // user cancel / server drain: not a failure, never retried
	classTimeout            // job deadline: failed, never retried (same spec, same wall)
	classWedge              // liveness failure (*cluster.WedgeError): deterministic, never retried
	classTransient          // environmental: retried with backoff, bounded
	classPermanent          // everything else: deterministic, never retried
)

// classify maps an attempt's error to the supervisor's taxonomy. The
// cancellation checks run first: RunWatchedContext guarantees a cancelled
// run never surfaces as a *WedgeError, and this ordering keeps the same
// promise for errors that wrap both.
func classify(err error) errClass {
	var we *cluster.WedgeError
	switch {
	case err == nil:
		return classOK
	case errors.Is(err, context.Canceled):
		return classCancelled
	case errors.Is(err, context.DeadlineExceeded):
		return classTimeout
	case errors.As(err, &we):
		return classWedge
	case IsTransient(err):
		return classTransient
	default:
		return classPermanent
	}
}

func (c errClass) String() string {
	switch c {
	case classOK:
		return "ok"
	case classCancelled:
		return "cancelled"
	case classTimeout:
		return "timeout"
	case classWedge:
		return "wedged"
	case classTransient:
		return "transient"
	default:
		return "permanent"
	}
}

// RetryPolicy bounds the transient-failure retry loop: at most Max
// retries per job, exponentially backed off from Base and capped at Cap —
// the same doubling-to-a-ceiling discipline the protocol layer's resend
// path uses, at supervisor scale.
type RetryPolicy struct {
	Max  int
	Base time.Duration
	Cap  time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Max == 0 {
		p.Max = 2
	}
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 2 * time.Second
	}
	return p
}

// backoff returns the wait before retry attempt n (1-based), doubling
// from Base and saturating at Cap.
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.Base
	for i := 1; i < n; i++ {
		d *= 2
		if d >= p.Cap {
			return p.Cap
		}
	}
	if d > p.Cap {
		d = p.Cap
	}
	return d
}

// runJob is the executor body for one job: per-attempt panic isolation,
// classification, bounded backed-off retries for transients, and cache
// commit on success. Runs on an executor goroutine.
func (s *Server) runJob(j *Job) {
	ctx, cancel := s.jobContext(j)
	if ctx == nil {
		return // job was cancelled while queued
	}
	defer cancel(nil)

	policy := s.cfg.Retry
	for attempt := 1; ; attempt++ {
		s.noteAttempt(j, attempt)
		payload, err := s.runAttempt(ctx, j)
		switch cls := classify(err); cls {
		case classOK:
			if cerr := s.cache.Put(j.Key, payload); cerr != nil {
				// The result is in hand; a cache-commit failure costs a
				// future hit, not this job.
				s.logf("job %s: %v", j.ID, cerr)
			}
			s.finishJob(j, JobDone, payload, "")
			return
		case classCancelled:
			s.finishJob(j, JobCancelled, nil, cancelMessage(ctx, err))
			return
		case classTimeout:
			s.finishJob(j, JobFailed, nil, fmt.Sprintf("deadline %v exceeded: %v", s.cfg.JobTimeout, err))
			return
		case classTransient:
			if attempt <= policy.Max && ctx.Err() == nil {
				wait := policy.backoff(attempt)
				s.logf("job %s: attempt %d failed (transient), retrying in %v: %v", j.ID, attempt, wait, err)
				s.retriesTotal.Add(1)
				s.noteRetry(j)
				select {
				case <-time.After(wait):
					continue
				case <-ctx.Done():
					s.finishJob(j, JobCancelled, nil, cancelMessage(ctx, context.Cause(ctx)))
					return
				}
			}
			s.finishJob(j, JobFailed, nil, fmt.Sprintf("retry budget exhausted after %d attempts: %v", attempt, err))
			return
		default: // classWedge, classPermanent
			s.finishJob(j, JobFailed, nil, fmt.Sprintf("%s: %v", cls, err))
			return
		}
	}
}

// runAttempt executes one attempt with panic isolation: a panicking
// simulation (or a bug in ours) fails this job and only this job — the
// executor goroutine, the queue, and every other job keep going.
func (s *Server) runAttempt(ctx context.Context, j *Job) (payload []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panicsTotal.Add(1)
			err = fmt.Errorf("job panicked: %v", r)
		}
	}()
	// Each attempt streams into a fresh point log so a retried job's
	// stream replays only the attempt that counts.
	s.resetPoints(j)
	return j.run(ctx, func(r sweep.Result) { s.appendPoint(j, r) })
}

// cancelMessage distinguishes the three ways a job context dies so the
// status a client polls says which one happened.
func cancelMessage(ctx context.Context, err error) string {
	if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, context.Canceled) {
		return cause.Error()
	}
	if err != nil {
		return err.Error()
	}
	return "cancelled"
}
