// Package serve is the simulation-as-a-service control plane: an
// HTTP/JSON front end over the sweep and tune executors, built so that
// robustness is structural rather than incidental.
//
// Four layers:
//
//   - Job supervision: every job runs under its own context (deadline +
//     cancellation, observed only at the executors' between-points seam,
//     so per-point determinism is untouched), with per-attempt panic
//     isolation and a transient/permanent/cancelled/wedged error taxonomy
//     driving bounded, exponentially backed-off retries.
//   - Graceful degradation: a bounded admission queue sheds overload with
//     429 + Retry-After instead of growing without bound, per-client
//     in-flight caps keep one client from starving the rest, and Drain
//     (SIGTERM) finishes running jobs within a deadline before forcing
//     cancellation at the seam.
//   - Crash-safe persistence: finished results are memoized in the
//     content-addressed Cache (atomic commit, per-entry checksums,
//     startup quarantine scan), so a repeated job is a byte-identical
//     cache hit and a kill -9 at any instant is survivable.
//   - Streaming and health: per-point results and their telemetry stream
//     as NDJSON with client-disconnect handling, and /healthz, /readyz,
//     /metricz expose liveness, readiness, and the queue/shed/retry/cache
//     counters.
//
// The package deliberately lives outside the simulation-visible set:
// its goroutines, clocks, and maps never touch simulation state except
// through the executors' supervised entry points (see the lint-scope
// test in internal/lint).
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"openmxsim/internal/cliflag"
	"openmxsim/internal/sweep"
	"openmxsim/internal/tune"
)

// Config shapes a Server. The zero value is usable: no cache, a
// 64-deep queue, 4 in-flight jobs per client, a 10-minute job deadline,
// one executor.
type Config struct {
	// Cache is the shared result cache; nil disables persistence.
	Cache *Cache
	// MaxQueue bounds the admission queue; submissions beyond it are
	// shed with 429 + Retry-After (default 64).
	MaxQueue int
	// MaxPerClient caps one client's queued+running jobs (default 4).
	MaxPerClient int
	// JobTimeout is the per-job deadline (default 10 minutes; < 0 = none).
	JobTimeout time.Duration
	// Workers and Par are handed to the executors (sweep.Run semantics);
	// they shape execution speed, never results.
	Workers, Par int
	// Executors is the number of jobs run concurrently (default 1: many
	// clients share one warm executor; each job parallelizes internally).
	Executors int
	// Retry bounds the transient-failure retry loop.
	Retry RetryPolicy
	// Log receives supervision events; nil silences them.
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.MaxPerClient <= 0 {
		c.MaxPerClient = 4
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 10 * time.Minute
	}
	if c.Executors <= 0 {
		c.Executors = 1
	}
	if c.Workers < 0 {
		c.Workers = 0
	}
	c.Retry = c.Retry.withDefaults()
	return c
}

// Server is the control plane. Create with New, expose via ServeHTTP,
// stop with Drain.
type Server struct {
	cfg   Config
	cache *Cache
	mux   *http.ServeMux

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup // executor goroutines

	mu        sync.Mutex
	jobs      map[string]*Job
	order     []string // submission order, for listing
	queue     chan *Job
	perClient map[string]int
	nextID    int
	draining  bool

	submittedTotal, shedQueueTotal, shedClientTotal atomic.Uint64
	retriesTotal, panicsTotal, cacheHitJobs         atomic.Uint64
	sampledPoints, seriesSamples                    atomic.Uint64
}

// New builds the server and starts its executors.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		cache:     cfg.Cache,
		jobs:      map[string]*Job{},
		queue:     make(chan *Job, cfg.MaxQueue),
		perClient: map[string]int{},
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/tune", s.handleTune)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metricz", s.handleMetricz)
	for i := 0; i < cfg.Executors; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

// Drain is the SIGTERM path: stop admitting (submissions get 503,
// /readyz goes unready), cancel everything still queued, let running
// jobs finish within timeout, then force-cancel the stragglers at the
// between-points seam and wait for them to unwind. Returns nil on a
// clean drain, an error naming the forced jobs otherwise.
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.draining = true
	for _, id := range s.order {
		j := s.jobs[id]
		if j.state == JobQueued {
			s.finishLocked(j, JobCancelled, nil, "server draining")
		}
	}
	close(s.queue)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		s.baseCancel()
		return nil
	case <-time.After(timeout):
		forced := s.countByState()[JobRunning]
		s.baseCancel() // running jobs see cancellation at the next point boundary
		<-done
		return fmt.Errorf("serve: drain deadline %v exceeded; cancelled %d running job(s)", timeout, forced)
	}
}

// ---- submission -----------------------------------------------------

// SweepRequest is the sweep-job wire form: exactly the omxsweep axis
// vocabulary (cliflag.GridSpec), so a job POSTed here and a sweep run
// offline are the same grid by construction.
type SweepRequest = cliflag.GridSpec

// TuneRequest is the tune-job wire form, mirroring omxtune's flags.
// Zero fields mean the same defaults the CLI uses.
type TuneRequest struct {
	Size       int     `json:"size,omitempty"`
	Nodes      int     `json:"nodes,omitempty"`
	Bg         int     `json:"bg,omitempty"`
	Iters      int     `json:"iters,omitempty"`
	Rate       bool    `json:"rate,omitempty"`
	Strategies string  `json:"strategies,omitempty"`
	Delays     string  `json:"delays,omitempty"`
	Budget     int     `json:"budget,omitempty"`
	Weight     float64 `json:"weight,omitempty"`
	Drop       float64 `json:"drop,omitempty"`
	Burst      float64 `json:"burst,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
}

// Spec parses the request into a tune.Spec (execution knobs unset; the
// server fills those at run time).
func (r TuneRequest) Spec() (tune.Spec, error) {
	spec := tune.Spec{
		Size:          r.Size,
		Nodes:         r.Nodes,
		BgStreams:     r.Bg,
		Iters:         r.Iters,
		Rate:          r.Rate,
		MaxEvals:      r.Budget,
		LatencyWeight: r.Weight,
		DropProb:      r.Drop,
		Burst:         r.Burst,
		Seed:          r.Seed,
	}
	var err error
	if spec.Strategies, err = cliflag.Strategies(r.Strategies); err != nil {
		return spec, err
	}
	if spec.Delays, err = cliflag.Delays(r.Delays); err != nil {
		return spec, err
	}
	return spec, nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeBody(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	grid, err := req.Grid()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	key, err := s.cache.Key("sweep", grid.Canonical())
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	grid.Par = s.cfg.Par
	run := func(ctx context.Context, obs sweep.Observer) ([]byte, error) {
		rs, err := sweep.RunContext(ctx, grid, s.cfg.Workers, obs)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := rs.WriteJSON(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	s.admit(w, r, "sweep", key, run, decodeSweepPoints)
}

func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	var req TuneRequest
	if err := decodeBody(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	spec, err := req.Spec()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	key, err := s.cache.Key("tune", spec.Canonical())
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	run := func(ctx context.Context, obs sweep.Observer) ([]byte, error) {
		sp := spec
		sp.Workers, sp.Par, sp.Observer = s.cfg.Workers, s.cfg.Par, obs
		out, err := tune.SearchContext(ctx, sp)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := out.WriteJSON(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	s.admit(w, r, "tune", key, run, decodeTunePoints)
}

// admit is the degradation gate: cache hit → job born done; draining →
// 503; client over its cap → 429; queue full → 429 + Retry-After. The
// pointDecoder rebuilds the streamable per-point log from a cached
// payload so /stream replays identically for hits and fresh runs.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, kind, key string, run runFunc, decode func([]byte) []sweep.Result) {
	client := clientID(r)
	if payload, ok := s.cache.Get(key); ok {
		s.cacheHitJobs.Add(1)
		j := s.newJob(kind, client, key, run)
		s.mu.Lock()
		j.cacheHit = true
		j.points = decode(payload)
		s.finishLocked(j, JobDone, payload, "")
		status := s.statusLocked(j)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, status)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	if s.perClient[client] >= s.cfg.MaxPerClient {
		s.mu.Unlock()
		s.shedClientTotal.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, fmt.Sprintf("client %q at its in-flight cap (%d)", client, s.cfg.MaxPerClient))
		return
	}
	j := s.newJobLocked(kind, client, key, run)
	select {
	case s.queue <- j:
		s.perClient[client]++
		j.slotHeld = true
		s.submittedTotal.Add(1)
		status := s.statusLocked(j)
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, status)
	default:
		// Queue full: forget the job ever existed and shed. The queue is
		// the only job memory, so server memory stays bounded by
		// MaxQueue + running, whatever the arrival rate.
		delete(s.jobs, j.ID)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		s.shedQueueTotal.Add(1)
		w.Header().Set("Retry-After", "2")
		httpError(w, http.StatusTooManyRequests, fmt.Sprintf("admission queue full (%d jobs)", s.cfg.MaxQueue))
	}
}

func (s *Server) newJob(kind, client, key string, run runFunc) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.newJobLocked(kind, client, key, run)
}

func (s *Server) newJobLocked(kind, client, key string, run runFunc) *Job {
	s.nextID++
	j := &Job{
		ID:        fmt.Sprintf("j%d", s.nextID),
		Kind:      kind,
		Client:    client,
		Key:       key,
		run:       run,
		state:     JobQueued,
		updated:   make(chan struct{}),
		submitted: time.Now(),
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	return j
}

// decodeSweepPoints rebuilds the per-point log from a cached sweep
// payload (best effort: a failure just means an empty replay).
func decodeSweepPoints(payload []byte) []sweep.Result {
	var rs []sweep.Result
	if json.Unmarshal(payload, &rs) != nil {
		return nil
	}
	return rs
}

// decodeTunePoints rebuilds the evaluated-point log from a cached tune
// payload.
func decodeTunePoints(payload []byte) []sweep.Result {
	var out struct {
		Evaluated []sweep.Result `json:"evaluated"`
	}
	if json.Unmarshal(payload, &out) != nil {
		return nil
	}
	return out.Evaluated
}

// ---- job state under s.mu -------------------------------------------

// jobContext transitions a dequeued job to running and builds its
// supervision context. Returns nil when the job was cancelled while
// queued (drain or client cancel) — the executor just skips it.
func (s *Server) jobContext(j *Job) (context.Context, context.CancelCauseFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state != JobQueued {
		return nil, nil
	}
	j.state = JobRunning
	s.bumpLocked(j)
	ctx, cancelCause := context.WithCancelCause(s.baseCtx)
	j.cancel = cancelCause
	if s.cfg.JobTimeout > 0 {
		tctx, tcancel := context.WithTimeout(ctx, s.cfg.JobTimeout)
		return tctx, func(cause error) { tcancel(); cancelCause(cause) }
	}
	return ctx, cancelCause
}

func (s *Server) noteAttempt(j *Job, attempt int) {
	s.mu.Lock()
	j.attempts = attempt
	s.bumpLocked(j)
	s.mu.Unlock()
}

func (s *Server) noteRetry(j *Job) {
	s.mu.Lock()
	j.retries++
	s.bumpLocked(j)
	s.mu.Unlock()
}

func (s *Server) resetPoints(j *Job) {
	s.mu.Lock()
	j.points = nil
	s.bumpLocked(j)
	s.mu.Unlock()
}

func (s *Server) appendPoint(j *Job, r sweep.Result) {
	if n := len(r.Series); n > 0 {
		s.sampledPoints.Add(1)
		s.seriesSamples.Add(uint64(n))
	}
	s.mu.Lock()
	j.points = append(j.points, r)
	s.bumpLocked(j)
	s.mu.Unlock()
}

func (s *Server) finishJob(j *Job, state JobState, payload []byte, errMsg string) {
	s.mu.Lock()
	s.finishLocked(j, state, payload, errMsg)
	s.mu.Unlock()
}

func (s *Server) finishLocked(j *Job, state JobState, payload []byte, errMsg string) {
	if j.state.terminal() {
		return
	}
	j.state = state
	j.result = payload
	j.err = errMsg
	j.finished = time.Now()
	if j.slotHeld {
		j.slotHeld = false
		if s.perClient[j.Client]--; s.perClient[j.Client] <= 0 {
			delete(s.perClient, j.Client)
		}
	}
	s.bumpLocked(j)
	s.logf("job %s (%s, client %s): %s%s", j.ID, j.Kind, j.Client, state, suffixIf(errMsg))
}

func suffixIf(msg string) string {
	if msg == "" {
		return ""
	}
	return ": " + msg
}

// bumpLocked wakes every watcher of j (stream handlers, pollers).
func (s *Server) bumpLocked(j *Job) {
	close(j.updated)
	j.updated = make(chan struct{})
}

func (s *Server) statusLocked(j *Job) JobStatus {
	return JobStatus{
		ID:       j.ID,
		Kind:     j.Kind,
		State:    j.state,
		CacheKey: j.Key,
		Cached:   j.cacheHit,
		Attempts: j.attempts,
		Retries:  j.retries,
		Points:   len(j.points),
		Error:    j.err,
	}
}

func (s *Server) countByState() map[JobState]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	counts := map[JobState]int{}
	for _, j := range s.jobs {
		counts[j.state]++
	}
	return counts
}

// ---- read-side handlers ---------------------------------------------

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *Job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Sprintf("no job %q", r.PathValue("id")))
	}
	return j
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		list = append(list, s.statusLocked(s.jobs[id]))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	status := s.statusLocked(j)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, status)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	switch {
	case j.state == JobQueued:
		s.finishLocked(j, JobCancelled, nil, "cancelled by client")
	case j.state == JobRunning && j.cancel != nil:
		// The executor observes the cancellation at the next point
		// boundary and finishes the job as cancelled.
		j.cancel(fmt.Errorf("cancelled by client"))
	}
	status := s.statusLocked(j)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, status)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	state, payload, errMsg := j.state, j.result, j.err
	s.mu.Unlock()
	switch state {
	case JobDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(payload)
	case JobFailed:
		httpError(w, http.StatusBadGateway, errMsg)
	case JobCancelled:
		httpError(w, http.StatusGone, "job cancelled"+suffixIf(errMsg))
	default:
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusConflict, fmt.Sprintf("job is %s; retry when done", state))
	}
}

// streamEvent is one NDJSON line of /stream: a per-point result (with
// its telemetry riding in the result fields — feedback_steps, retransmit
// and backoff counters) or the terminal end marker.
type streamEvent struct {
	Type   string        `json:"type"` // "point" | "end"
	Job    string        `json:"job"`
	Result *sweep.Result `json:"result,omitempty"`
	State  JobState      `json:"state,omitempty"`
	Cached bool          `json:"cached,omitempty"`
	Error  string        `json:"error,omitempty"`
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	sent := 0
	for {
		s.mu.Lock()
		if sent > len(j.points) {
			sent = 0 // a retry reset the log; replay the attempt that counts
		}
		fresh := append([]sweep.Result(nil), j.points[sent:]...)
		state, errMsg, cached := j.state, j.err, j.cacheHit
		updated := j.updated
		s.mu.Unlock()

		for i := range fresh {
			if err := enc.Encode(streamEvent{Type: "point", Job: j.ID, Result: &fresh[i]}); err != nil {
				return // client went away mid-line; the job runs on
			}
		}
		sent += len(fresh)
		if state.terminal() {
			enc.Encode(streamEvent{Type: "end", Job: j.ID, State: state, Cached: cached, Error: errMsg})
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-updated:
		case <-r.Context().Done():
			return // client disconnected; never cancels the job
		}
	}
}

// ---- health ----------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	depth := len(s.queue)
	s.mu.Unlock()
	switch {
	case draining:
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "draining"})
	case depth >= s.cfg.MaxQueue:
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "queue full"})
	default:
		writeJSON(w, http.StatusOK, map[string]any{"ready": true})
	}
}

// Metrics is the /metricz payload.
type Metrics struct {
	Jobs          map[JobState]int `json:"jobs"`
	QueueDepth    int              `json:"queue_depth"`
	QueueCapacity int              `json:"queue_capacity"`
	Submitted     uint64           `json:"submitted"`
	ShedQueueFull uint64           `json:"shed_queue_full"`
	ShedClientCap uint64           `json:"shed_client_cap"`
	Retries       uint64           `json:"retries"`
	Panics        uint64           `json:"panics"`
	CacheHitJobs  uint64           `json:"cache_hit_jobs"`
	// SampledPoints counts streamed results that carried a sampled metric
	// series; SeriesSamples totals the samples across them. Both move only
	// when clients submit grids with "sample" set.
	SampledPoints uint64     `json:"sampled_points"`
	SeriesSamples uint64     `json:"series_samples"`
	Draining      bool       `json:"draining"`
	Cache         CacheStats `json:"cache"`
}

// MetricsSnapshot returns the current counters (the /metricz body).
func (s *Server) MetricsSnapshot() Metrics {
	m := Metrics{
		Jobs:          s.countByState(),
		QueueCapacity: s.cfg.MaxQueue,
		Submitted:     s.submittedTotal.Load(),
		ShedQueueFull: s.shedQueueTotal.Load(),
		ShedClientCap: s.shedClientTotal.Load(),
		Retries:       s.retriesTotal.Load(),
		Panics:        s.panicsTotal.Load(),
		CacheHitJobs:  s.cacheHitJobs.Load(),
		SampledPoints: s.sampledPoints.Load(),
		SeriesSamples: s.seriesSamples.Load(),
		Cache:         s.cache.Stats(),
	}
	s.mu.Lock()
	m.QueueDepth = len(s.queue)
	m.Draining = s.draining
	s.mu.Unlock()
	return m
}

func (s *Server) handleMetricz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}

// ---- plumbing --------------------------------------------------------

// clientID identifies the caller for the per-client cap: the
// self-declared X-Omx-Client header when present (cooperating clients
// get stable identities across connections), the remote host otherwise.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Omx-Client"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func decodeBody(r *http.Request, into any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// DefaultWorkers is the Workers value omxserve uses when the flag is 0:
// everything the machine has, shared across the executor pool.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }
