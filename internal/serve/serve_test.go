package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"openmxsim/internal/cliflag"
	"openmxsim/internal/sweep"
	"openmxsim/internal/tune"
)

// testGrid is the small differential workload: 2 strategies x 3 delays
// x 2 sizes = 12 points, a few ms of simulation.
var testGrid = SweepRequest{
	Strategies: "timeout,openmx",
	Delays:     "0:30:15",
	Sizes:      "1,128",
	Iters:      5,
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		if err := s.Drain(10 * time.Second); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts
}

func postJSON(t *testing.T, url, client string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if client != "" {
		req.Header.Set("X-Omx-Client", client)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func submit(t *testing.T, ts *httptest.Server, path, client string, body any, wantCode int) JobStatus {
	t.Helper()
	resp, b := postJSON(t, ts.URL+path, client, body)
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s = %d, want %d (body %s)", path, resp.StatusCode, wantCode, b)
	}
	var st JobStatus
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("bad status body %q: %v", b, err)
	}
	return st
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, b := getBody(t, ts.URL+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job %s = %d (%s)", id, resp.StatusCode, b)
		}
		var st JobStatus
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatalf("bad status body %q: %v", b, err)
		}
		if st.State.terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

// enqueueRaw plants a hand-built job, bypassing the HTTP submission
// path — the white-box lever for occupying the executor deterministically.
func enqueueRaw(t *testing.T, s *Server, client, key string, run runFunc) *Job {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.newJobLocked("sweep", client, key, run)
	select {
	case s.queue <- j:
		s.perClient[client]++
		j.slotHeld = true
	default:
		t.Fatal("test queue unexpectedly full")
	}
	return j
}

func offlineSweepBytes(t *testing.T, req SweepRequest) []byte {
	t.Helper()
	grid, err := req.Grid()
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	rs, err := sweep.Run(grid, 0)
	if err != nil {
		t.Fatalf("offline sweep: %v", err)
	}
	var buf bytes.Buffer
	if err := rs.WriteJSON(&buf); err != nil {
		t.Fatalf("offline marshal: %v", err)
	}
	return buf.Bytes()
}

// TestServerSweepDifferential is the headline contract: the service and
// the offline path produce byte-identical output for the same request —
// fresh execution, cache hit, and re-execution after cache corruption.
func TestServerSweepDifferential(t *testing.T) {
	cache := openTestCache(t)
	_, ts := newTestServer(t, Config{Cache: cache})
	want := offlineSweepBytes(t, testGrid)

	st := submit(t, ts, "/v1/sweep", "diff", testGrid, http.StatusAccepted)
	if st.Cached {
		t.Fatal("first submission claimed a cache hit")
	}
	fin := waitTerminal(t, ts, st.ID)
	if fin.State != JobDone {
		t.Fatalf("job finished %s (%s), want done", fin.State, fin.Error)
	}
	if fin.Points != bytes.Count(want, []byte(`"index"`)) {
		t.Fatalf("streamed %d points, offline grid has %d", fin.Points, bytes.Count(want, []byte(`"index"`)))
	}
	resp, got := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d (%s)", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("server result differs from offline run:\nserver %d bytes\noffline %d bytes", len(got), len(want))
	}

	// Same request again: born done from the cache, same bytes.
	st2 := submit(t, ts, "/v1/sweep", "diff", testGrid, http.StatusOK)
	if !st2.Cached || st2.State != JobDone {
		t.Fatalf("repeat submission: cached=%v state=%s, want cache-hit done", st2.Cached, st2.State)
	}
	_, got2 := getBody(t, ts.URL+"/v1/jobs/"+st2.ID+"/result")
	if !bytes.Equal(got2, want) {
		t.Fatal("cache hit not byte-identical to fresh execution")
	}

	// Corrupt the entry on disk: next submission must fall back to
	// re-execution and still match.
	corruptEntry(t, cache, st.CacheKey, func(raw []byte) []byte { return raw[:len(raw)-1] })
	st3 := submit(t, ts, "/v1/sweep", "diff", testGrid, http.StatusAccepted)
	if st3.Cached {
		t.Fatal("corrupt entry served as a cache hit")
	}
	fin3 := waitTerminal(t, ts, st3.ID)
	if fin3.State != JobDone {
		t.Fatalf("fallback re-execution finished %s (%s)", fin3.State, fin3.Error)
	}
	_, got3 := getBody(t, ts.URL+"/v1/jobs/"+st3.ID+"/result")
	if !bytes.Equal(got3, want) {
		t.Fatal("re-execution after corruption not byte-identical")
	}
	if cache.Stats().Quarantined == 0 {
		t.Fatal("corruption left no quarantine trace")
	}
}

// TestServerTuneDifferential: same contract for the search executor.
func TestServerTuneDifferential(t *testing.T) {
	req := TuneRequest{
		Strategies: "timeout,openmx",
		Delays:     "0:60:30",
		Budget:     6,
		Iters:      4,
	}
	spec, err := req.Spec()
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	out, err := tune.Search(spec)
	if err != nil {
		t.Fatalf("offline tune: %v", err)
	}
	var wantBuf bytes.Buffer
	if err := out.WriteJSON(&wantBuf); err != nil {
		t.Fatalf("offline marshal: %v", err)
	}
	want := wantBuf.Bytes()

	_, ts := newTestServer(t, Config{Cache: openTestCache(t)})
	st := submit(t, ts, "/v1/tune", "tuner", req, http.StatusAccepted)
	fin := waitTerminal(t, ts, st.ID)
	if fin.State != JobDone {
		t.Fatalf("tune job finished %s (%s)", fin.State, fin.Error)
	}
	_, got := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if !bytes.Equal(got, want) {
		t.Fatal("server tune result differs from offline tune.Search")
	}
	st2 := submit(t, ts, "/v1/tune", "tuner", req, http.StatusOK)
	if !st2.Cached {
		t.Fatal("repeat tune not served from cache")
	}
	_, got2 := getBody(t, ts.URL+"/v1/jobs/"+st2.ID+"/result")
	if !bytes.Equal(got2, want) {
		t.Fatal("cached tune result not byte-identical")
	}
}

// TestServerShedsWhenQueueFull: with the executor pinned and the queue
// full, further submissions get 429 + Retry-After and leave no job
// behind — bounded memory under overload.
func TestServerShedsWhenQueueFull(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxQueue: 1, MaxPerClient: 10})
	block := make(chan struct{})
	defer func() { close(block) }()
	enqueueRaw(t, s, "pin", "pin-key", func(ctx context.Context, obs sweep.Observer) ([]byte, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return []byte("{}\n"), nil
	})
	// Give the executor a moment to dequeue the pin job.
	waitRunning(t, s, "j1")

	submit(t, ts, "/v1/sweep", "c1", testGrid, http.StatusAccepted) // fills the 1-slot queue
	resp, body := postJSON(t, ts.URL+"/v1/sweep", "c2", testGrid)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload submission = %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carried no Retry-After")
	}
	if n := s.MetricsSnapshot().ShedQueueFull; n != 1 {
		t.Fatalf("shed_queue_full = %d, want 1", n)
	}
	// The shed job left no record: exactly pin + queued remain.
	if got := len(s.MetricsSnapshot().Jobs); got != 2 {
		resp, b := getBody(t, ts.URL+"/v1/jobs")
		t.Fatalf("job table has %d states (%d: %s)", got, resp.StatusCode, b)
	}
}

func waitRunning(t *testing.T, s *Server, id string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		j := s.jobs[id]
		running := j != nil && j.state == JobRunning
		s.mu.Unlock()
		if running {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never started running", id)
}

// TestServerPerClientCap: one client at its cap is shed with 429 while
// another client is still admitted.
func TestServerPerClientCap(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxQueue: 8, MaxPerClient: 1})
	block := make(chan struct{})
	defer func() { close(block) }()
	enqueueRaw(t, s, "pin", "pin-key", func(ctx context.Context, obs sweep.Observer) ([]byte, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return []byte("{}\n"), nil
	})
	waitRunning(t, s, "j1")

	submit(t, ts, "/v1/sweep", "greedy", testGrid, http.StatusAccepted)
	resp, _ := postJSON(t, ts.URL+"/v1/sweep", "greedy", testGrid)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap submission = %d, want 429", resp.StatusCode)
	}
	submit(t, ts, "/v1/sweep", "patient", testGrid, http.StatusAccepted)
	if n := s.MetricsSnapshot().ShedClientCap; n != 1 {
		t.Fatalf("shed_client_cap = %d, want 1", n)
	}
}

// TestServerCancelRunningJob: DELETE on a running job cancels at the
// seam and the status says a client asked for it — not a wedge, not a
// failure.
func TestServerCancelRunningJob(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	j := enqueueRaw(t, s, "c", "cancel-key", func(ctx context.Context, obs sweep.Observer) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	waitRunning(t, s, j.ID)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	fin := waitTerminal(t, ts, j.ID)
	if fin.State != JobCancelled {
		t.Fatalf("state = %s (%s), want cancelled", fin.State, fin.Error)
	}
	if !strings.Contains(fin.Error, "cancelled by client") {
		t.Fatalf("cancel cause lost: %q", fin.Error)
	}
}

// TestServerJobTimeout: a job outliving its deadline fails (it would
// fail again identically), and the error names the deadline.
func TestServerJobTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{JobTimeout: 20 * time.Millisecond})
	j := enqueueRaw(t, s, "c", "slow-key", func(ctx context.Context, obs sweep.Observer) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	fin := waitTerminal(t, ts, j.ID)
	if fin.State != JobFailed || !strings.Contains(fin.Error, "deadline") {
		t.Fatalf("state = %s (%q), want failed with deadline message", fin.State, fin.Error)
	}
}

// TestServerPanicIsolation: a panicking job fails alone; the executor
// survives and the next job runs to completion.
func TestServerPanicIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	j := enqueueRaw(t, s, "c", "panic-key", func(ctx context.Context, obs sweep.Observer) ([]byte, error) {
		panic("synthetic executor bug")
	})
	fin := waitTerminal(t, ts, j.ID)
	if fin.State != JobFailed || !strings.Contains(fin.Error, "job panicked") {
		t.Fatalf("state = %s (%q), want failed via panic isolation", fin.State, fin.Error)
	}
	if n := s.MetricsSnapshot().Panics; n != 1 {
		t.Fatalf("panics counter = %d, want 1", n)
	}
	st := submit(t, ts, "/v1/sweep", "c", testGrid, http.StatusAccepted)
	if fin := waitTerminal(t, ts, st.ID); fin.State != JobDone {
		t.Fatalf("job after panic finished %s — executor did not survive", fin.State)
	}
}

// TestServerTransientRetry: transient failures retry with backoff up to
// the budget, then succeed; permanent failures never retry.
func TestServerTransientRetry(t *testing.T) {
	s, ts := newTestServer(t, Config{Retry: RetryPolicy{Max: 2, Base: time.Millisecond, Cap: 2 * time.Millisecond}})
	attempts := 0
	j := enqueueRaw(t, s, "c", "flaky-key", func(ctx context.Context, obs sweep.Observer) ([]byte, error) {
		attempts++ // executor goroutine only; reads happen after terminal state
		if attempts < 3 {
			return nil, &Transient{Err: fmt.Errorf("synthetic I/O hiccup %d", attempts)}
		}
		return []byte("{}\n"), nil
	})
	fin := waitTerminal(t, ts, j.ID)
	if fin.State != JobDone {
		t.Fatalf("state = %s (%q), want done after retries", fin.State, fin.Error)
	}
	if fin.Attempts != 3 || fin.Retries != 2 {
		t.Fatalf("attempts/retries = %d/%d, want 3/2", fin.Attempts, fin.Retries)
	}

	jp := enqueueRaw(t, s, "c", "perm-key", func(ctx context.Context, obs sweep.Observer) ([]byte, error) {
		return nil, fmt.Errorf("deterministic failure")
	})
	finp := waitTerminal(t, ts, jp.ID)
	if finp.State != JobFailed || finp.Retries != 0 {
		t.Fatalf("permanent failure: state=%s retries=%d, want failed/0 (deterministic errors must not retry)", finp.State, finp.Retries)
	}
}

// TestServerRetryBudgetExhausted: an always-transient job fails after
// Max retries with a budget message.
func TestServerRetryBudgetExhausted(t *testing.T) {
	s, ts := newTestServer(t, Config{Retry: RetryPolicy{Max: 2, Base: time.Millisecond, Cap: time.Millisecond}})
	j := enqueueRaw(t, s, "c", "doomed-key", func(ctx context.Context, obs sweep.Observer) ([]byte, error) {
		return nil, &Transient{Err: fmt.Errorf("always down")}
	})
	fin := waitTerminal(t, ts, j.ID)
	if fin.State != JobFailed || !strings.Contains(fin.Error, "retry budget exhausted") {
		t.Fatalf("state = %s (%q), want failed with exhausted budget", fin.State, fin.Error)
	}
	if fin.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", fin.Attempts)
	}
}

// TestServerStreamNDJSON: /stream delivers every point as NDJSON and a
// terminal end event; the point count and telemetry fields match the
// final result body.
func TestServerStreamNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st := submit(t, ts, "/v1/sweep", "streamer", testGrid, http.StatusAccepted)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	points := 0
	sawEnd := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "point":
			if ev.Result == nil {
				t.Fatal("point event without a result")
			}
			points++
		case "end":
			sawEnd = true
			if ev.State != JobDone {
				t.Fatalf("end state = %s (%s)", ev.State, ev.Error)
			}
		default:
			t.Fatalf("unknown event type %q", ev.Type)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	grid, _ := testGrid.Grid()
	if !sawEnd || points != grid.Size() {
		t.Fatalf("stream saw %d points, end=%v; want %d points and an end event", points, sawEnd, grid.Size())
	}
}

// TestServerDrain: SIGTERM semantics — running work finishes, queued
// work is cancelled, submissions and readiness reflect the drain.
func TestServerDrain(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	block := make(chan struct{})
	j := enqueueRaw(t, s, "c", "drain-key", func(ctx context.Context, obs sweep.Observer) ([]byte, error) {
		select {
		case <-block:
			return []byte("{}\n"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	waitRunning(t, s, j.ID)
	queued := enqueueRaw(t, s, "c", "queued-key", func(ctx context.Context, obs sweep.Observer) ([]byte, error) {
		return []byte("{}\n"), nil
	})

	drainErr := make(chan error, 1)
	go func() { drainErr <- s.Drain(10 * time.Second) }()
	waitDraining(t, s)

	if resp, _ := getBody(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/sweep", "late", testGrid); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining = %d, want 503", resp.StatusCode)
	}

	close(block) // let the running job finish
	if err := <-drainErr; err != nil {
		t.Fatalf("drain was not clean: %v", err)
	}
	fin := waitTerminal(t, ts, j.ID)
	if fin.State != JobDone {
		t.Fatalf("running job drained as %s, want done (drain must finish running work)", fin.State)
	}
	finq := waitTerminal(t, ts, queued.ID)
	if finq.State != JobCancelled || !strings.Contains(finq.Error, "draining") {
		t.Fatalf("queued job drained as %s (%q), want cancelled by drain", finq.State, finq.Error)
	}
}

func waitDraining(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		d := s.draining
		s.mu.Unlock()
		if d {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("server never entered draining state")
}

// TestServerDrainDeadlineForcesCancel: a wedged-forever job cannot hold
// the drain hostage; past the deadline it is cancelled at the seam and
// Drain reports the forced exit.
func TestServerDrainDeadlineForcesCancel(t *testing.T) {
	s := New(Config{})
	j := enqueueRaw(t, s, "c", "stuck-key", func(ctx context.Context, obs sweep.Observer) ([]byte, error) {
		<-ctx.Done() // honors the seam, but never finishes on its own
		return nil, ctx.Err()
	})
	waitRunning(t, s, j.ID)
	err := s.Drain(20 * time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "drain deadline") {
		t.Fatalf("Drain = %v, want deadline-exceeded error", err)
	}
	s.mu.Lock()
	state := j.state
	s.mu.Unlock()
	if state != JobCancelled {
		t.Fatalf("forced job state = %s, want cancelled", state)
	}
}

// TestServerHealthAndMetrics: the liveness/readiness/counters surface.
func TestServerHealthAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Cache: openTestCache(t)})
	if resp, _ := getBody(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	if resp, _ := getBody(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d", resp.StatusCode)
	}
	st := submit(t, ts, "/v1/sweep", "m", testGrid, http.StatusAccepted)
	waitTerminal(t, ts, st.ID)
	resp, b := getBody(t, ts.URL+"/metricz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricz = %d", resp.StatusCode)
	}
	var m Metrics
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("bad metricz body: %v", err)
	}
	if m.Submitted != 1 || m.QueueCapacity == 0 {
		t.Fatalf("metrics = %+v, want 1 submitted and a queue capacity", m)
	}
	if m.Cache.Puts != 1 {
		t.Fatalf("cache puts = %d, want 1 (finished job must commit)", m.Cache.Puts)
	}
}

// TestServerRejectsBadRequests: parse errors are 400s with the axis
// vocabulary's own message, and unknown fields are refused (a typo'd
// axis must not silently become the default).
func TestServerRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/sweep", "c", map[string]string{"strategies": "warp-drive"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad strategy = %d (%s), want 400", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/sweep", "c", map[string]any{"strategeis": "timeout"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("typo'd field = %d, want 400", resp.StatusCode)
	}
	resp, _ = getBody(t, ts.URL+"/v1/jobs/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", resp.StatusCode)
	}
}

// TestGridSpecServerMatchesCLIVocabulary pins that the server accepts
// exactly the omxsweep axis spellings — the shared-vocabulary satellite.
func TestGridSpecServerMatchesCLIVocabulary(t *testing.T) {
	req := SweepRequest{
		Strategies: "disabled,timeout,openmx,stream",
		Delays:     "0:100:25",
		Sizes:      "1,128,4096",
		IRQ:        "round-robin,single-core",
		Queues:     "1,4",
		Seeds:      "1,2",
		Iters:      3,
	}
	var viaServer cliflag.GridSpec = req // same type by construction
	g1, err := viaServer.Grid()
	if err != nil {
		t.Fatalf("server-side parse failed on CLI vocabulary: %v", err)
	}
	if g1.Size() == 0 {
		t.Fatal("parsed grid is empty")
	}
}
