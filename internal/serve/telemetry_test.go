package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"testing"
)

// TestSampledSeriesRideTheStream is the live-telemetry satellite end to
// end: a sweep submitted with a sampling interval streams per-point
// results whose series arrive on the same NDJSON lines, and /metricz
// counts the sampled points and their samples.
func TestSampledSeriesRideTheStream(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	g := SweepRequest{
		Strategies: "timeout",
		Delays:     "15",
		Sizes:      "128",
		Iters:      5,
		Sample:     "200us",
	}
	st := submit(t, ts, "/v1/sweep", "", g, http.StatusAccepted)
	waitTerminal(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer resp.Body.Close()
	points, sampled, samples := 0, 0, 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Type   string `json:"type"`
			Result *struct {
				Series []json.RawMessage `json:"series"`
			} `json:"result"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ev.Type != "point" || ev.Result == nil {
			continue
		}
		points++
		if n := len(ev.Result.Series); n > 0 {
			sampled++
			samples += n
		}
	}
	if points == 0 || sampled != points {
		t.Fatalf("streamed %d points, %d with series; want every point sampled", points, sampled)
	}

	m := s.MetricsSnapshot()
	if m.SampledPoints != uint64(sampled) || m.SeriesSamples != uint64(samples) {
		t.Errorf("metrics sampled_points=%d series_samples=%d, stream saw %d/%d",
			m.SampledPoints, m.SeriesSamples, sampled, samples)
	}
}

// TestUnsampledSweepMovesNoTelemetryCounters pins the zero-cost default:
// without a sample interval the new /metricz counters stay at zero.
func TestUnsampledSweepMovesNoTelemetryCounters(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	st := submit(t, ts, "/v1/sweep", "", testGrid, http.StatusAccepted)
	waitTerminal(t, ts, st.ID)
	m := s.MetricsSnapshot()
	if m.SampledPoints != 0 || m.SeriesSamples != 0 {
		t.Errorf("unsampled sweep moved telemetry counters: %+v", m)
	}
}
