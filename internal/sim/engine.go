// Package sim provides a deterministic discrete-event simulation engine.
//
// All model time is virtual, expressed in integer nanoseconds (Time). Events
// scheduled for the same instant fire in scheduling order (FIFO), which makes
// every simulation bit-reproducible for a given seed regardless of host
// scheduling or garbage collection — the property that lets this repository
// measure sub-microsecond interrupt effects from Go.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a virtual timestamp or duration in nanoseconds.
type Time = int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel it (e.g. a coalescing timer that is reset when the
// interrupt fires early).
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	index     int // heap index, -1 once popped
	cancelled bool
}

// At returns the virtual time the event is scheduled for.
func (ev *Event) At() Time { return ev.at }

// Cancelled reports whether Cancel was called on the event.
func (ev *Event) Cancelled() bool { return ev.cancelled }

// Cancel prevents the event's callback from running. Cancelling an event that
// already fired or was already cancelled is a no-op.
func (ev *Event) Cancel() { ev.cancelled = true }

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; the process layer (internal/proc) serializes all access.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stopped bool
	// Executed counts callbacks run, for diagnostics and budget guards.
	Executed uint64
	// Limit, when non-zero, aborts Run with a panic after this many events.
	// It exists to catch runaway protocol loops in tests.
	Limit uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events still scheduled (including cancelled
// events that have not yet been discarded).
func (e *Engine) Pending() int { return e.queue.Len() }

// Schedule runs fn at virtual time at. Scheduling in the past panics: it is
// always a model bug.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After runs fn d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Step runs the next event, if any, advancing the clock to it. It reports
// whether an event ran.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.Executed++
		if e.Limit > 0 && e.Executed > e.Limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%d", e.Limit, e.now))
		}
		ev.fn()
		return true
	}
	return false
}

// Run processes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil processes events with timestamps <= t, then sets the clock to t
// (if it is ahead of the last event).
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped {
		ev := e.queue.peek()
		if ev == nil || ev.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Stop makes the innermost Run/RunUntil return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// eventHeap orders events by (time, sequence), giving FIFO order at equal
// timestamps.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

func (h eventHeap) peek() *Event {
	// Skip cancelled heads lazily: the heap root is the only cheap peek.
	for len(h) > 0 && h[0].cancelled {
		return h[0] // caller Steps; Step discards cancelled events
	}
	if len(h) == 0 {
		return nil
	}
	return h[0]
}
