// Package sim provides a deterministic discrete-event simulation engine.
//
// All model time is virtual, expressed in integer nanoseconds (Time). Events
// scheduled for the same instant fire in scheduling order (FIFO), which makes
// every simulation bit-reproducible for a given seed regardless of host
// scheduling or garbage collection — the property that lets this repository
// measure sub-microsecond interrupt effects from Go.
//
// # Event ownership and recycling
//
// The engine owns every *Event it returns and recycles fired or cancelled
// events through an internal free list, so steady-state scheduling performs
// no allocation. That gives event handles arena semantics:
//
//   - A handle returned by Schedule/After is valid until its callback starts
//     (or, for cancelled events, until the engine discards them in Step or
//     peek). After that the Event may be reused for a different callback.
//   - Cancel must therefore only be called on events that have not fired.
//     Callers that retain a timer handle must clear it inside the callback
//     (first thing), which every subsystem in this repository does; a Cancel
//     through a stale handle would cancel whatever event now occupies the
//     slot.
//   - Callbacks never receive the firing *Event, so the common pattern
//     "timer = nil at the top of the callback" is all that is required.
//
// The heap is an inlined 4-ary min-heap specialized to *Event: no
// container/heap interface calls, no any-boxing, and cache-friendlier sift
// paths than a binary heap for the pop-heavy workload of a packet-per-event
// simulation.
package sim

import (
	"fmt"
)

// Time is a virtual timestamp or duration in nanoseconds.
type Time = int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel it (e.g. a coalescing timer that is reset when the
// interrupt fires early). See the package comment for the handle lifetime
// rules: an Event is recycled once it fires or its cancellation is observed.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	afn       func(any)
	arg       any
	cancelled bool
}

// At returns the virtual time the event is scheduled for.
func (ev *Event) At() Time { return ev.at }

// Cancelled reports whether Cancel was called on the event.
func (ev *Event) Cancelled() bool { return ev.cancelled }

// Cancel prevents the event's callback from running. Cancelling an event that
// was already cancelled is a no-op. Cancel must not be called on an event
// whose callback has already started: the engine may have recycled it (see
// the package comment).
func (ev *Event) Cancel() { ev.cancelled = true }

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; the process layer (internal/proc) serializes all access.
type Engine struct {
	now     Time
	heap    []*Event
	free    []*Event
	seq     uint64
	stopped bool
	// Executed counts callbacks run, for diagnostics and budget guards.
	Executed uint64
	// Limit, when non-zero, aborts Run with a panic after this many events.
	// It exists to catch runaway protocol loops in tests.
	Limit uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events still scheduled (including cancelled
// events that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.heap) }

// alloc takes an Event from the free list (or the Go heap when empty),
// stamps it, and pushes it onto the queue.
func (e *Engine) alloc(at Time) *Event {
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.at = at
	ev.seq = e.seq
	ev.cancelled = false
	e.seq++
	return ev
}

// release recycles a fired or discarded event. Callback references are
// cleared so the free list never pins driver state for the GC.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	e.free = append(e.free, ev)
}

// Schedule runs fn at virtual time at. Scheduling in the past panics: it is
// always a model bug.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", at, e.now))
	}
	ev := e.alloc(at)
	ev.fn = fn
	e.push(ev)
	return ev
}

// ScheduleArg runs fn(arg) at virtual time at. It is the allocation-free
// variant of Schedule for hot paths: a long-lived fn (bound once at
// subsystem construction) plus a pointer-typed arg schedule without any
// per-call closure or boxing allocation.
func (e *Engine) ScheduleArg(at Time, fn func(any), arg any) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", at, e.now))
	}
	ev := e.alloc(at)
	ev.afn = fn
	ev.arg = arg
	e.push(ev)
	return ev
}

// After runs fn d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.Schedule(e.now+d, fn)
}

// AfterArg runs fn(arg) d nanoseconds from now. Negative d panics.
func (e *Engine) AfterArg(d Time, fn func(any), arg any) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.ScheduleArg(e.now+d, fn, arg)
}

// Step runs the next event, if any, advancing the clock to it. It reports
// whether an event ran.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := e.pop()
		if ev.cancelled {
			e.release(ev)
			continue
		}
		e.now = ev.at
		e.Executed++
		if e.Limit > 0 && e.Executed > e.Limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%d", e.Limit, e.now))
		}
		fn, afn, arg := ev.fn, ev.afn, ev.arg
		if fn != nil {
			fn()
		} else {
			afn(arg)
		}
		// Recycle only after the callback: handles held by driver state are
		// cleared inside the callback itself, so reuse cannot race them.
		e.release(ev)
		return true
	}
	return false
}

// Run processes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil processes events with timestamps <= t, then sets the clock to t
// (if it is ahead of the last event).
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped {
		ev := e.peek()
		if ev == nil || ev.at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Stop makes the innermost Run/RunUntil return after the current event.
func (e *Engine) Stop() { e.stopped = true }

// peek returns the next live event without running it. Cancelled heads are
// popped and recycled here: returning one would hand RunUntil a timestamp
// that never fires and terminate it early.
func (e *Engine) peek() *Event {
	for len(e.heap) > 0 && e.heap[0].cancelled {
		e.release(e.pop())
	}
	if len(e.heap) == 0 {
		return nil
	}
	return e.heap[0]
}

// The queue is a 4-ary min-heap ordered by (time, sequence), giving FIFO
// order at equal timestamps. Methods are specialized to *Event so Push/Pop
// compile to direct slice operations with no interface dispatch.

// before reports strict heap order between two events. (at, seq) pairs are
// unique, so the order is total and the heap minimum is deterministic.
func before(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev *Event) {
	i := len(e.heap)
	e.heap = append(e.heap, ev)
	for i > 0 {
		p := (i - 1) >> 2
		pe := e.heap[p]
		if before(pe, ev) {
			break
		}
		e.heap[i] = pe
		i = p
	}
	e.heap[i] = ev
}

func (e *Engine) pop() *Event {
	h := e.heap
	root := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	e.heap = h[:n]
	if n > 0 {
		e.siftDown(last)
	}
	return root
}

// siftDown places ev, displaced from the root by a pop, back into heap
// position.
func (e *Engine) siftDown(ev *Event) {
	h := e.heap
	n := len(h)
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m, me := c, h[c]
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if je := h[j]; before(je, me) {
				m, me = j, je
			}
		}
		if before(ev, me) {
			break
		}
		h[i] = me
		i = m
	}
	h[i] = ev
}
