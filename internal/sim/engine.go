// Package sim provides a deterministic discrete-event simulation engine.
//
// All model time is virtual, expressed in integer nanoseconds (Time). Events
// scheduled for the same instant fire in scheduling order (FIFO), which makes
// every simulation bit-reproducible for a given seed regardless of host
// scheduling or garbage collection — the property that lets this repository
// measure sub-microsecond interrupt effects from Go.
//
// # Event ordering
//
// The queue's total order is (at, pri, seq): virtual time first, then an
// optional caller-assigned priority key, then scheduling order. Ordinary
// events carry pri 0, so for them the order is the classic (at, seq) FIFO.
// The pri key exists for the parallel engine (see Group): events injected
// across shard boundaries carry a globally unique, execution-order-independent
// pri > 0, which makes their position in the total order a pure function of
// the model rather than of which shard scheduled first. The rule "pri 0
// before pri > 0 at equal timestamps" is applied identically by the serial
// and sharded engines, which is one leg of the bit-identical-reports
// guarantee.
//
// # Event ownership and recycling
//
// The engine owns every *Event it returns and recycles fired or cancelled
// events through an internal free list, so steady-state scheduling performs
// no allocation. That gives event handles arena semantics:
//
//   - A handle returned by Schedule/After is valid until its callback starts
//     (or, for cancelled events, until the engine discards them in Step or
//     peek). After that the Event may be reused for a different callback.
//   - Cancel must therefore only be called on events that have not fired.
//     Callers that retain a timer handle must clear it inside the callback
//     (first thing), which every subsystem in this repository does; a Cancel
//     through a stale handle would cancel whatever event now occupies the
//     slot.
//   - Callbacks never receive the firing *Event, so the common pattern
//     "timer = nil at the top of the callback" is all that is required.
//
// # Scheduling
//
// The pending-event queue sits behind the Scheduler interface. The default
// is a hierarchical timing wheel (see Wheel): a 4096-slot level at 1 ns
// granularity and two 1024-slot levels at ~4 µs and ~4.2 ms — sized to the
// simulation's dominant horizons, wire events a few ns..µs out and
// coalescing timers tens of µs out — with a 4-ary overflow heap for events
// beyond the ~4.3 s level-2 horizon. Scheduling is O(1) (bitwise slot placement plus an intrusive
// list append) and dispatch is amortized O(1) (bitmap scans to the next
// populated slot; same-instant bursts drain from the cursor's slot with no
// rescan, so Engine.Step dispatches them back-to-back). Events cascade down
// at most two levels as the clock approaches them. The legacy single 4-ary
// min-heap remains available via NewHeapScheduler / SetDefaultScheduler for
// differential testing; both schedulers pop live events in the identical
// (at, pri, seq) total order, so reports are bit-identical under either —
// the determinism argument lives with the Wheel type.
package sim

import (
	"fmt"
)

// Time is a virtual timestamp or duration in nanoseconds.
type Time = int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Event is a scheduled callback. It is returned by the scheduling methods so
// callers can cancel it (e.g. a coalescing timer that is reset when the
// interrupt fires early). See the package comment for the handle lifetime
// rules: an Event is recycled once it fires or its cancellation is observed.
type Event struct {
	at Time
	// pri is the cross-shard priority key: 0 for ordinary events, a
	// globally unique model-derived key for events injected across shard
	// boundaries (see the package comment and Group). It sorts between at
	// and seq in the queue's total order.
	pri uint64
	seq uint64
	fn  func()
	afn func(any)
	arg any
	// next threads the intrusive FIFO of a timing-wheel slot. It is owned
	// by whichever scheduler currently queues the event.
	next      *Event
	cancelled bool
}

// At returns the virtual time the event is scheduled for.
func (ev *Event) At() Time { return ev.at }

// Cancelled reports whether Cancel was called on the event.
func (ev *Event) Cancelled() bool { return ev.cancelled }

// Cancel prevents the event's callback from running. Cancelling an event that
// was already cancelled is a no-op. Cancel must not be called on an event
// whose callback has already started: the engine may have recycled it (see
// the package comment).
func (ev *Event) Cancel() { ev.cancelled = true }

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; the process layer (internal/proc) serializes all access.
type Engine struct {
	now   Time
	sched Scheduler
	// wheel mirrors sched when it is the default timing wheel, so the
	// per-event push/pop calls on the hot path are concrete (inlinable)
	// rather than interface dispatches. It is nil for other schedulers.
	wheel   *Wheel
	free    []*Event
	seq     uint64
	stopped bool
	// Executed counts callbacks run, for diagnostics and budget guards.
	Executed uint64
	// Limit, when non-zero, aborts Run with a panic after this many events.
	// It exists to catch runaway protocol loops in tests.
	Limit uint64
}

// NewEngine returns an engine with the clock at zero, using the default
// scheduler (the timing wheel, unless SetDefaultScheduler changed it).
func NewEngine() *Engine {
	return NewEngineWithScheduler(newDefaultScheduler())
}

// NewEngineWithScheduler returns an engine backed by the given scheduler.
// The engine takes ownership: the scheduler must be fresh and must not be
// shared.
func NewEngineWithScheduler(s Scheduler) *Engine {
	e := &Engine{sched: s}
	e.wheel, _ = s.(*Wheel)
	s.Bind(e)
	return e
}

// push enqueues a stamped event, preferring the concrete wheel path.
//
//omxlint:hotpath
func (e *Engine) push(ev *Event) {
	if e.wheel != nil {
		e.wheel.Push(ev)
	} else {
		e.sched.Push(ev)
	}
}

// popLE dequeues the next live event at or before t (maxHorizon = no bound),
// preferring the concrete wheel path.
//
//omxlint:hotpath
func (e *Engine) popLE(t Time) *Event {
	if e.wheel != nil {
		return e.wheel.popLE(t)
	}
	if t == maxHorizon {
		return e.sched.Pop()
	}
	return e.sched.PopLE(t)
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events still scheduled (including cancelled
// events that have not yet been discarded).
func (e *Engine) Pending() int { return e.sched.Len() }

// alloc takes an Event from the free list (or the Go heap when empty) and
// stamps it.
//
//omxlint:hotpath
func (e *Engine) alloc(at Time) *Event {
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		//omxlint:allow hotpathalloc: cold-path free-list refill; steady state recycles (guarded by the ZeroAllocSteadyState tests)
		ev = &Event{}
	}
	ev.at = at
	ev.pri = 0
	ev.seq = e.seq
	ev.cancelled = false
	e.seq++
	return ev
}

// release recycles a fired or discarded event. Callback references are
// cleared so the free list never pins driver state for the GC; the next
// link is left stale on purpose — every consumer (list append, alloc)
// overwrites it before use.
//
//omxlint:hotpath
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	ev.afn = nil
	ev.arg = nil
	//omxlint:allow hotpathalloc: free-list growth is amortized; steady state is append-into-capacity (guarded by the ZeroAllocSteadyState tests)
	e.free = append(e.free, ev)
}

// Schedule runs fn at virtual time at. Scheduling in the past panics: it is
// always a model bug.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", at, e.now))
	}
	ev := e.alloc(at)
	ev.fn = fn
	e.push(ev)
	return ev
}

// ScheduleArg runs fn(arg) at virtual time at. It is the allocation-free
// variant of Schedule for hot paths: a long-lived fn (bound once at
// subsystem construction) plus a pointer-typed arg schedule without any
// per-call closure or boxing allocation.
//
//omxlint:hotpath
func (e *Engine) ScheduleArg(at Time, fn func(any), arg any) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", at, e.now))
	}
	ev := e.alloc(at)
	ev.afn = fn
	ev.arg = arg
	e.push(ev)
	return ev
}

// ScheduleArgPri is ScheduleArg with an explicit cross-shard priority key
// (see the package comment). The fabric stamps the same model-derived key
// on a message whether the simulation runs on one engine or many, which
// pins the event's position in the (at, pri, seq) total order independently
// of engine count — the scheduling half of the parallel engine's
// bit-identical guarantee.
//
//omxlint:hotpath
func (e *Engine) ScheduleArgPri(at Time, pri uint64, fn func(any), arg any) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", at, e.now))
	}
	ev := e.alloc(at)
	ev.pri = pri
	ev.afn = fn
	ev.arg = arg
	e.push(ev)
	return ev
}

// After runs fn d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.Schedule(e.now+d, fn)
}

// AfterArg runs fn(arg) d nanoseconds from now. Negative d panics.
//
//omxlint:hotpath
func (e *Engine) AfterArg(d Time, fn func(any), arg any) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.ScheduleArg(e.now+d, fn, arg)
}

// Step runs the next event, if any, advancing the clock to it. It reports
// whether an event ran. The scheduler discards cancelled events internally,
// so every event Step sees is live; same-instant bursts come off the
// wheel's current slot without a queue rescan.
//
//omxlint:hotpath
func (e *Engine) Step() bool {
	ev := e.popLE(maxHorizon)
	if ev == nil {
		return false
	}
	e.runEvent(ev)
	return true
}

// runEvent advances the clock to a popped event and fires its callback.
//
//omxlint:hotpath
func (e *Engine) runEvent(ev *Event) {
	e.now = ev.at
	e.Executed++
	if e.Limit > 0 && e.Executed > e.Limit {
		panic(fmt.Sprintf("sim: event limit %d exceeded at t=%d", e.Limit, e.now))
	}
	fn, afn, arg := ev.fn, ev.afn, ev.arg
	if fn != nil {
		fn()
	} else {
		afn(arg)
	}
	// Recycle only after the callback: handles held by driver state are
	// cleared inside the callback itself, so reuse cannot race them.
	e.release(ev)
}

// Run processes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil processes events with timestamps <= t, then sets the clock to t
// (if it is ahead of the last event).
//
//omxlint:hotpath
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped {
		ev := e.popLE(t)
		if ev == nil {
			break
		}
		e.runEvent(ev)
	}
	if e.now < t {
		e.now = t
	}
}

// Stop makes the innermost Run/RunUntil return after the current event.
// Stop is a whole-simulation control and is not supported under the sharded
// Group runtime (no shard can know its peers' progress); harnesses that
// rely on it force Parallelism 1.
func (e *Engine) Stop() { e.stopped = true }

// PeekTime returns the timestamp of the next live event, if any. The Group
// synchronizer calls it between windows (workers parked) to compute the
// cluster-wide minimum next-event time.
func (e *Engine) PeekTime() (Time, bool) {
	ev := e.sched.Peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// runWindow processes every event with timestamp <= t but — unlike
// RunUntil — leaves the clock at the last event executed rather than
// advancing it to t. Idle windows therefore leave no trace: after a full
// Group run each shard's clock sits at its own last event, and the maximum
// over shards equals the serial engine's final clock. It also ignores the
// Stop flag (see Stop).
//
//omxlint:hotpath
func (e *Engine) runWindow(t Time) {
	for {
		ev := e.popLE(t)
		if ev == nil {
			return
		}
		e.runEvent(ev)
	}
}
