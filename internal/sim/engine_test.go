package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, d := range []Time{50, 10, 30, 20, 40} {
		d := d
		e.After(d, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at t=%d, want %d", i, got[i], want[i])
		}
	}
}

func TestEngineFIFOAtSameTimestamp(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events ran out of order: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.After(10, func() {
		times = append(times, e.Now())
		e.After(5, func() { times = append(times, e.Now()) })
		e.Schedule(e.Now(), func() { times = append(times, e.Now()) })
	})
	e.Run()
	want := []Time{10, 10, 15}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times %v, want %v", times, want)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.After(10, func() { ran = true })
	e.After(5, func() { ev.Cancel() })
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestEngineCancelAfterFire(t *testing.T) {
	e := NewEngine()
	n := 0
	ev := e.After(10, func() { n++ })
	e.Run()
	ev.Cancel() // must be a harmless no-op
	if n != 1 {
		t.Fatalf("event ran %d times, want 1", n)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{10, 20, 30, 40} {
		e.After(d, func() { fired = append(fired, e.Now()) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=25, want 2", len(fired))
	}
	if e.Now() != 25 {
		t.Fatalf("Now() = %d after RunUntil(25)", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
	if e.Now() != 100 {
		t.Fatalf("Now() = %d after RunUntil(100)", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	n := 0
	e.After(1, func() { n++; e.Stop() })
	e.After(2, func() { n++ })
	e.Run()
	if n != 1 {
		t.Fatalf("ran %d events before stop, want 1", n)
	}
	e.Run() // resumes
	if n != 2 {
		t.Fatalf("ran %d events after resume, want 2", n)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.After(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.Run()
}

func TestNegativeAfterPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEngineLimitGuard(t *testing.T) {
	e := NewEngine()
	e.Limit = 10
	var loop func()
	loop = func() { e.After(1, loop) }
	e.After(1, loop)
	defer func() {
		if recover() == nil {
			t.Error("event limit did not panic")
		}
	}()
	e.Run()
}

func TestEnginePending(t *testing.T) {
	e := NewEngine()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d on empty engine", e.Pending())
	}
	e.After(1, func() {})
	e.After(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after Run, want 0", e.Pending())
	}
}

// Property: for any set of delays, the engine visits them in sorted order.
func TestEngineOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var got []Time
		for _, d := range delays {
			e.After(Time(d), func() { got = append(got, e.Now()) })
		}
		e.Run()
		want := make([]Time, len(delays))
		for i, d := range delays {
			want[i] = Time(d)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: interleaved scheduling and stepping never yields a time decrease.
func TestEngineMonotonicClock(t *testing.T) {
	e := NewEngine()
	r := rand.New(rand.NewSource(42))
	last := Time(0)
	for i := 0; i < 1000; i++ {
		e.After(Time(r.Intn(100)), func() {})
		if r.Intn(2) == 0 {
			e.Step()
		}
		if e.Now() < last {
			t.Fatalf("clock went backwards: %d -> %d", last, e.Now())
		}
		last = e.Now()
	}
}

func BenchmarkEngineScheduleStep(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%1000), func() {})
		if i%2 == 1 {
			e.Step()
		}
	}
	for e.Step() {
	}
}

// Regression test for the RunUntil/peek cancelled-head bug: a cancelled
// event at the heap root used to be returned by peek, pass the "<= t" gate,
// and make Step run the next live event even when that event lay beyond the
// horizon — overshooting RunUntil.
func TestRunUntilCancelledHeadDoesNotOvershoot(t *testing.T) {
	e := NewEngine()
	cancelled := e.After(50, func() { t.Error("cancelled event ran") })
	cancelled.Cancel()
	ran := false
	e.After(150, func() { ran = true })
	e.RunUntil(100)
	if ran {
		t.Fatal("RunUntil(100) ran an event scheduled at t=150")
	}
	if e.Now() != 100 {
		t.Fatalf("Now() = %d after RunUntil(100), want 100", e.Now())
	}
	e.RunUntil(200)
	if !ran {
		t.Fatal("event at t=150 never ran")
	}
}

// A cancelled-only queue must leave RunUntil at exactly t.
func TestRunUntilAllCancelled(t *testing.T) {
	e := NewEngine()
	for i := Time(1); i <= 5; i++ {
		e.After(i*10, func() { t.Error("cancelled event ran") }).Cancel()
	}
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("Now() = %d, want 100", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0 (cancelled heads discarded)", e.Pending())
	}
}

func TestScheduleArgDelivers(t *testing.T) {
	e := NewEngine()
	var got []int
	fn := func(x any) { got = append(got, *x.(*int)) }
	a, b := 1, 2
	e.ScheduleArg(20, fn, &b)
	e.AfterArg(10, fn, &a)
	e.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}

// FIFO order must hold across the Schedule and ScheduleArg variants.
func TestScheduleArgFIFOWithSchedule(t *testing.T) {
	e := NewEngine()
	var order []int
	afn := func(x any) { order = append(order, x.(int)) }
	e.Schedule(5, func() { order = append(order, 0) })
	e.ScheduleArg(5, afn, 1)
	e.Schedule(5, func() { order = append(order, 2) })
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("mixed-variant events ran out of order: %v", order)
		}
	}
}

// The recycle path must be allocation-free in steady state: once the free
// list is warm, Schedule+Step performs zero heap allocations. This is the
// tentpole guarantee of the zero-allocation hot path PR; future changes that
// reintroduce per-event garbage fail here.
func TestScheduleStepZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	var arg int
	afn := func(any) {}
	for i := 0; i < 64; i++ { // warm the free list and heap capacity
		e.After(Time(i), fn)
	}
	for e.Step() {
	}
	if got := testing.AllocsPerRun(1000, func() {
		e.After(1, fn)
		e.Step()
	}); got != 0 {
		t.Fatalf("Schedule+Step allocates %v objects/op in steady state, want 0", got)
	}
	if got := testing.AllocsPerRun(1000, func() {
		e.AfterArg(1, afn, &arg)
		e.Step()
	}); got != 0 {
		t.Fatalf("ScheduleArg+Step allocates %v objects/op in steady state, want 0", got)
	}
}

// Cancelled events must be recycled, not leaked, whether discarded by Step
// or by peek.
func TestCancelledEventsRecycleAllocFree(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.After(Time(i), fn)
	}
	for e.Step() {
	}
	if got := testing.AllocsPerRun(1000, func() {
		e.After(1, fn).Cancel()
		e.After(2, fn)
		e.Step()
		e.Step()
	}); got != 0 {
		t.Fatalf("cancel+discard allocates %v objects/op in steady state, want 0", got)
	}
}
