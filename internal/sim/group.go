package sim

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// Group is the conservative parallel (PDES) runtime: it drives a set of
// shard engines through barrier-synchronized windows so that a multi-core
// run executes the exact same event sequence as a single engine would.
//
// # Protocol
//
// The Group uses the barrier-window ("synchronous"/YAWNS-style) variant of
// conservative synchronization rather than null messages: the shard count
// is small (<= NumCPU) and the lookahead is a single global constant (the
// fabric's fixed wire propagation + switch forwarding delay), so one
// cluster-wide reduction per window is cheaper and simpler than O(P²)
// per-pair null-message bookkeeping. Each round:
//
//  1. With every worker parked at the barrier, the coordinator injects all
//     cross-shard messages produced in the previous window (the flush
//     hook), then computes tmin = min over shards of the next event time.
//  2. Every shard — in parallel, one goroutine each — executes all of its
//     events in the window [tmin, tmin+L-1], where L is the lookahead.
//  3. Barrier; repeat until no shard has events and the flush injects
//     nothing.
//
// Windows are hundreds of nanoseconds of virtual time and a typical run has
// tens of thousands of them, so the barrier is a spin barrier on atomic
// counters (with a Gosched fallback for oversubscribed hosts), not a
// channel or sync.Cond rendezvous — a microsecond-scale barrier would eat
// the entire parallel speedup. The caller's goroutine acts as the
// coordinator and runs shard 0; P-1 workers run the rest and live only for
// the duration of one Run/RunUntil call.
//
// # Correctness (no causality violation)
//
// A shard executing an event at u < tmin+L can only affect another shard
// through a cross-shard message, and the model guarantees (the fabric's
// lookahead contract) that such a message is timestamped at >= u + L >=
// tmin + L — strictly beyond the window every shard is executing. Messages
// from the previous window were injected at step 1 before tmin was
// computed. So when a shard executes its window it already holds every
// event it will ever receive for that window: no straggler can arrive in a
// shard's past.
//
// # Determinism (bit-identical to the serial engine)
//
// Within a shard, events execute in (at, pri, seq) order — the engine's
// total order. Cross-shard messages carry a pri key that is a pure function
// of the model (source port identity and per-port message ordinal), not of
// execution interleaving, and the serial engine stamps the identical key on
// the identical message. The argument is an induction on windows over the
// per-shard projections of the event history:
//
//   - Same inputs, same window: by induction each shard enters window k
//     having executed exactly the events the serial engine executed for
//     that shard's nodes before tmin(k) (base case: identical initial
//     events). tmin(k) itself is then equal in both runs.
//   - Same order within the window: a shard's window events are totally
//     ordered by (at, pri, seq). Local events (pri 0) were scheduled by the
//     shard's own execution, whose seq stamps match the serial run's
//     relative order by the induction hypothesis; injected events (pri > 0)
//     are ordered among themselves and against locals purely by (at, pri),
//     because two distinct injected events never share (at, pri) — pri
//     embeds the source port and a per-port counter — and a pri-0 local
//     never ties with a pri>0 injectee. seq is only ever the tie-breaker
//     for same-shard scheduling, exactly as in the serial run.
//   - Therefore every shard executes, for its own nodes, the same events in
//     the same relative order with the same clock readings as the serial
//     engine — and every per-node statistic, report and trace is
//     bit-identical. (Aggregate fabric counters are summed over per-port
//     counters for the same reason; see internal/fabric.)
//
// What the model must supply for the above to hold: every cross-shard
// interaction goes through the flush hook with delay >= the lookahead, and
// cross-shard pri keys are unique and execution-order-independent. The
// fabric's output-queued topology satisfies both; the direct topology has
// zero lookahead and is therefore always run serially (the cluster falls
// back to one shard).
type Group struct {
	engs []*Engine
	la   Time
	// flush moves all pending cross-shard messages into their destination
	// engines (via ScheduleArgPri) and reports whether it injected any. It
	// is only called while every worker is parked, so it may touch all
	// shards freely. Nil means the shards are fully independent.
	flush func() bool
}

// NewGroup returns a Group over the given shard engines with the given
// lookahead (must be positive — zero-lookahead models cannot shard; run
// them on a single engine instead). The flush hook delivers cross-shard
// messages between windows; it may be nil.
func NewGroup(engs []*Engine, lookahead Time, flush func() bool) *Group {
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: Group lookahead must be positive, got %d", lookahead))
	}
	if len(engs) == 0 {
		panic("sim: Group needs at least one engine")
	}
	return &Group{engs: engs, la: lookahead, flush: flush}
}

// Engines returns the shard engines, indexed by shard.
func (g *Group) Engines() []*Engine { return g.engs }

// Run executes windows until every shard is drained and the flush hook has
// nothing left to inject.
func (g *Group) Run() { g.run(maxHorizon - 1) }

// RunUntil executes all events with timestamps <= t, then advances every
// shard's clock to t — the multi-shard analogue of Engine.RunUntil.
func (g *Group) RunUntil(t Time) {
	g.run(t)
	for _, e := range g.engs {
		if e.now < t {
			e.now = t
		}
	}
}

// quitWindow is the window sentinel that tells workers to exit.
const quitWindow = -1 << 62

// groupCtl is the spin-barrier shared state. The coordinator publishes a
// window end in win, then bumps epoch to release the workers; each worker
// bumps done when its shard has drained the window. All cross-goroutine
// engine access is ordered by these atomics (the epoch bump
// happens-after the flush/peek writes; the done observation happens-after
// the workers' event execution).
type groupCtl struct {
	win   atomic.Int64
	epoch atomic.Uint64
	done  atomic.Int64
}

// spinWait spins on cond, yielding the OS thread periodically so an
// oversubscribed host (fewer cores than shards, or a busy CI runner) makes
// progress instead of livelocking.
func spinWait(cond func() bool) {
	for spins := 0; !cond(); spins++ {
		if spins > 2000 {
			runtime.Gosched()
		}
	}
}

// run executes barrier windows covering all events with timestamps <=
// bound. A worker panic is captured, the fleet is shut down, and the panic
// is re-raised on the caller's goroutine.
func (g *Group) run(bound Time) {
	if len(g.engs) == 1 {
		// Degenerate single-shard group: no workers, no barrier — just
		// alternate flush and drain (self-sends via the flush hook still
		// work this way).
		for {
			injected := g.flush != nil && g.flush()
			if t, ok := g.engs[0].PeekTime(); ok && t <= bound {
				g.engs[0].runWindow(bound)
			} else if !injected {
				return
			}
		}
	}

	ctl := &groupCtl{}
	panics := make([]any, len(g.engs))
	for i := 1; i < len(g.engs); i++ {
		go g.worker(i, ctl, panics)
	}
	workers := int64(len(g.engs) - 1)

	release := func(w Time) {
		ctl.done.Store(0)
		ctl.win.Store(w)
		ctl.epoch.Add(1)
	}
	shutdown := func() {
		release(quitWindow)
		spinWait(func() bool { return ctl.done.Load() == workers })
		for _, p := range panics {
			if p != nil {
				panic(p)
			}
		}
	}

	for {
		// Workers are parked here (either not yet released, or spinning on
		// the next epoch), so the coordinator owns all shards: deliver the
		// previous window's cross-shard messages, then find the next one.
		injected := g.flush != nil && g.flush()
		tmin, any := Time(0), false
		for _, e := range g.engs {
			if t, ok := e.PeekTime(); ok && (!any || t < tmin) {
				tmin, any = t, true
			}
		}
		if !any {
			if injected {
				continue // flush raced nothing in; re-check emptied outboxes
			}
			shutdown()
			return
		}
		if tmin > bound {
			shutdown()
			return
		}
		w := tmin + g.la - 1
		if w > bound {
			w = bound
		}
		release(w)
		func() {
			defer func() { panics[0] = recover() }()
			g.engs[0].runWindow(w)
		}()
		spinWait(func() bool { return ctl.done.Load() == workers })
		for _, p := range panics {
			if p != nil {
				shutdown()
			}
		}
	}
}

// worker drives one shard: wait for the coordinator's epoch bump, run the
// published window, report done; exit on the quit sentinel. Panics are
// parked in panics[i] for the coordinator to re-raise — letting one escape
// here would kill the process before the fleet can be torn down.
func (g *Group) worker(i int, ctl *groupCtl, panics []any) {
	var epoch uint64
	for {
		target := epoch + 1
		spinWait(func() bool { return ctl.epoch.Load() >= target })
		epoch = ctl.epoch.Load()
		w := ctl.win.Load()
		if w == quitWindow {
			ctl.done.Add(1)
			return
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					panics[i] = p
				}
			}()
			g.engs[i].runWindow(w)
		}()
		ctl.done.Add(1)
	}
}
