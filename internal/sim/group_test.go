package sim

import (
	"fmt"
	"strings"
	"testing"
)

// The twin-model property test below is the engine-level analogue of the
// experiment differential tests: one randomized workload of logical
// processes (LPs) runs twice — once on a single serial engine, once
// sharded across a Group — and every LP must observe the identical
// execution trace, entry for entry. LPs spawn local follow-up work, cancel
// some of it, and send cross-LP messages that respect the Group contract:
// a message sent at time u is timestamped at >= u + lookahead and carries
// a sender-unique priority, so its arrival order is decided by (at, pri)
// alone and never by which engine or flush round injected it.

type twinMsg struct {
	dst int
	at  Time
	pri uint64
	tag uint64
}

type twinLP struct {
	id     int
	eng    *Engine
	rng    *RNG
	trace  []string
	msgSeq uint64
	budget int
}

type twinModel struct {
	lps     []*twinLP
	la      Time
	sharded bool
	outbox  [][]twinMsg
	recv    func(any)
}

type twinDelivery struct {
	lp  *twinLP
	tag uint64
}

func newTwinModel(seed uint64, nLP int, engs []*Engine, la Time) *twinModel {
	m := &twinModel{la: la, sharded: len(engs) > 1, outbox: make([][]twinMsg, nLP)}
	root := NewRNG(seed)
	for i := 0; i < nLP; i++ {
		lp := &twinLP{
			id:     i,
			eng:    engs[i*len(engs)/nLP],
			rng:    root.Derive(uint64(i) + 1),
			budget: 120,
		}
		m.lps = append(m.lps, lp)
	}
	m.recv = func(a any) {
		d := a.(*twinDelivery)
		m.step(d.lp, d.tag)
	}
	// Initial stimulus: a few events per LP in the first window, scheduled
	// in LP order so the serial reference assigns the same seqs every run.
	for _, lp := range m.lps {
		for k := 0; k < 3; k++ {
			at := Time(lp.rng.Intn(100))
			tag := lp.rng.Uint64()
			l := lp
			lp.eng.Schedule(at, func() { m.step(l, tag) })
		}
	}
	return m
}

// step is the single LP event handler: record, spawn, cancel, send. Every
// random draw comes from the LP's own stream, so the draw sequence depends
// only on the LP's event order — exactly the quantity the Group must
// preserve.
func (m *twinModel) step(lp *twinLP, tag uint64) {
	lp.trace = append(lp.trace, fmt.Sprintf("%d@%d", tag, lp.eng.Now()))

	var spawned []*Event
	for n := lp.rng.Intn(3); n > 0 && lp.budget > 0; n-- {
		lp.budget--
		at := lp.eng.Now() + 1 + Time(lp.rng.Intn(200))
		t := lp.rng.Uint64()
		l := lp
		spawned = append(spawned, lp.eng.Schedule(at, func() { m.step(l, t) }))
	}
	// Cancel one of this handler's own spawns sometimes; cancelled events
	// still pop (in both modes) but leave no trace entry.
	if len(spawned) > 0 && lp.rng.Intn(3) == 0 {
		spawned[lp.rng.Intn(len(spawned))].Cancel()
	}

	if lp.budget > 0 && lp.rng.Intn(3) == 0 {
		lp.budget--
		dst := lp.rng.Intn(len(m.lps) - 1)
		if dst >= lp.id {
			dst++
		}
		lp.msgSeq++
		msg := twinMsg{
			dst: dst,
			at:  lp.eng.Now() + m.la + Time(lp.rng.Intn(150)),
			pri: uint64(lp.id+1)<<40 | lp.msgSeq,
			tag: lp.rng.Uint64(),
		}
		if m.sharded {
			m.outbox[lp.id] = append(m.outbox[lp.id], msg)
		} else {
			to := m.lps[msg.dst]
			to.eng.ScheduleArgPri(msg.at, msg.pri, m.recv, &twinDelivery{lp: to, tag: msg.tag})
		}
	}
}

// flush drains the cross-LP outboxes into the destination engines; the
// Group calls it at every barrier, mirroring fabric.FlushShards.
func (m *twinModel) flush() bool {
	injected := false
	for src := range m.outbox {
		for _, msg := range m.outbox[src] {
			to := m.lps[msg.dst]
			to.eng.ScheduleArgPri(msg.at, msg.pri, m.recv, &twinDelivery{lp: to, tag: msg.tag})
			injected = true
		}
		m.outbox[src] = m.outbox[src][:0]
	}
	return injected
}

func TestGroupTwinEngineEquivalence(t *testing.T) {
	const nLP = 8
	const la = 50
	for seed := uint64(1); seed <= 6; seed++ {
		ref := NewEngine()
		serial := newTwinModel(seed, nLP, []*Engine{ref}, la)
		ref.Run()

		for _, shards := range []int{2, 3, 4, 8} {
			engs := make([]*Engine, shards)
			for i := range engs {
				engs[i] = NewEngine()
			}
			m := newTwinModel(seed, nLP, engs, la)
			NewGroup(engs, la, m.flush).Run()

			for i := range m.lps {
				got := strings.Join(m.lps[i].trace, "\n")
				want := strings.Join(serial.lps[i].trace, "\n")
				if got != want {
					t.Fatalf("seed %d shards %d: LP %d trace diverged from serial reference\nserial:\n%s\nsharded:\n%s",
						seed, shards, i, want, got)
				}
			}
		}
	}
}

// TestGroupRunUntilAdvancesClocks pins the RunUntil contract: after the
// horizon every shard's clock sits exactly at t, matching the serial
// engine, even for shards that ran out of events early.
func TestGroupRunUntilAdvancesClocks(t *testing.T) {
	engs := []*Engine{NewEngine(), NewEngine()}
	engs[0].Schedule(10, func() {})
	g := NewGroup(engs, 25, func() bool { return false })
	g.RunUntil(1000)
	for i, e := range engs {
		if e.Now() != 1000 {
			t.Errorf("shard %d clock %d after RunUntil(1000)", i, e.Now())
		}
	}
}

// TestGroupPanicPropagates pins the failure path: a panic inside any
// shard's event must surface on the caller's goroutine (after the worker
// fleet shuts down), not kill the process from a worker.
func TestGroupPanicPropagates(t *testing.T) {
	for shard := 0; shard < 2; shard++ {
		engs := []*Engine{NewEngine(), NewEngine()}
		engs[shard].Schedule(5, func() { panic("boom") })
		g := NewGroup(engs, 25, func() bool { return false })
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Errorf("shard %d panic did not propagate", shard)
				}
			}()
			g.Run()
		}()
	}
}

// TestGroupLookaheadValidation pins the constructor contract.
func TestGroupLookaheadValidation(t *testing.T) {
	for _, la := range []Time{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("lookahead %d accepted", la)
				}
			}()
			NewGroup([]*Engine{NewEngine()}, la, func() bool { return false })
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty engine list accepted")
			}
		}()
		NewGroup(nil, 10, func() bool { return false })
	}()
}
