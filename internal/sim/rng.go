package sim

import "math"

// RNG is a small, fast, deterministic random-number generator (splitmix64).
// Every stochastic element of the model (fabric jitter, compute-time noise,
// reorder injection) draws from its own RNG stream derived from the scenario
// seed, so adding randomness to one subsystem never perturbs another.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Derive returns a new independent stream labelled by tag. Equal (seed, tag)
// pairs always yield the same stream.
func (r *RNG) Derive(tag uint64) *RNG {
	// Mix the tag through one splitmix round so nearby tags diverge.
	d := NewRNG(r.state ^ (tag*0x9E3779B97F4A7C15 + 0x632BE59BD9B4E019))
	d.Uint64()
	return d
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Jitter returns a duration drawn from a normal distribution with the given
// mean and standard deviation, clamped at zero. It is used for wire and
// timing noise.
func (r *RNG) Jitter(mean, sd Time) Time {
	if sd == 0 {
		return mean
	}
	v := float64(mean) + r.normFloat64()*float64(sd)
	if v < 0 {
		return 0
	}
	return Time(v)
}

// Exp returns an exponentially distributed duration with the given mean.
func (r *RNG) Exp(mean Time) Time {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return Time(-float64(mean) * math.Log(u))
}

// normFloat64 returns a standard normal variate (Box–Muller, one branch).
func (r *RNG) normFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
