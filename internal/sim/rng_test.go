package sim

import (
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGDeriveIndependent(t *testing.T) {
	root := NewRNG(1)
	a := root.Derive(1)
	b := root.Derive(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("derived streams collided %d times", same)
	}
}

func TestRNGDeriveStable(t *testing.T) {
	a := NewRNG(5).Derive(9)
	b := NewRNG(5).Derive(9)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Derive is not a pure function of (seed, tag)")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(4)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for i, s := range seen {
		if !s {
			t.Errorf("value %d never drawn in 10000 tries", i)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestJitterStats(t *testing.T) {
	r := NewRNG(11)
	const mean, sd = 10000, 500
	var sum, sum2 float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := float64(r.Jitter(mean, sd))
		sum += v
		sum2 += v * v
	}
	m := sum / n
	s := math.Sqrt(sum2/n - m*m)
	if math.Abs(m-mean) > 50 {
		t.Errorf("jitter mean %.1f, want ~%d", m, mean)
	}
	if math.Abs(s-sd) > 60 {
		t.Errorf("jitter sd %.1f, want ~%d", s, sd)
	}
}

func TestJitterNonNegative(t *testing.T) {
	r := NewRNG(12)
	for i := 0; i < 10000; i++ {
		if v := r.Jitter(100, 400); v < 0 {
			t.Fatalf("negative jitter %d", v)
		}
	}
}

func TestJitterZeroSD(t *testing.T) {
	r := NewRNG(13)
	if v := r.Jitter(42, 0); v != 42 {
		t.Fatalf("Jitter(42, 0) = %d, want 42", v)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(14)
	const mean = 5000
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(r.Exp(mean))
	}
	m := sum / n
	if math.Abs(m-mean) > mean*0.05 {
		t.Errorf("Exp mean %.1f, want ~%d", m, mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(15)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.02 {
		t.Errorf("Bool(0.3) hit rate %.3f", frac)
	}
}
