package sim

import "fmt"

// Scheduler is the engine's pending-event queue. Implementations must pop
// live (non-cancelled) events in strict (at, pri, seq) order — time first,
// then the cross-shard priority key, then scheduling order — which is the
// total order that makes every simulation bit-reproducible. Two
// implementations ship with the package:
//
//   - NewWheelScheduler: a hierarchical timing wheel (calendar queue) with
//     O(1) scheduling and amortized O(1) dispatch. The default.
//   - NewHeapScheduler: the legacy inlined 4-ary min-heap, kept selectable
//     for differential testing against the wheel.
//
// A Scheduler is owned by exactly one Engine and is not safe for concurrent
// use. Cancelled events are discarded lazily: Pop and Peek release them to
// the engine's free list (via the Bind callback) as they are encountered,
// and Len counts them until then.
type Scheduler interface {
	// Push inserts an event. The engine guarantees ev.at is never earlier
	// than the timestamp of the last event returned by Pop.
	Push(ev *Event)
	// Pop removes and returns the minimum live event, or nil when no live
	// events remain.
	Pop() *Event
	// PopLE is Pop bounded by a horizon: it removes and returns the minimum
	// live event only if its timestamp is <= t, and returns nil (leaving
	// the event queued) otherwise. It is RunUntil's workhorse — one bounded
	// search per event instead of a peek-then-pop pair.
	PopLE(t Time) *Event
	// Peek returns the minimum live event without removing it, or nil when
	// no live events remain. It may discard cancelled events as a side
	// effect but must not reorder or drop live ones.
	Peek() *Event
	// Len reports the number of queued events, including cancelled events
	// that have not yet been discarded.
	Len() int
	// Bind attaches the scheduler to its owning engine (event arena and
	// recycler). The engine calls it exactly once, before any Push.
	Bind(e *Engine)
}

// newDefaultScheduler is what NewEngine installs. It is a package-level
// knob (see SetDefaultScheduler) so differential harnesses — and the
// -sched flag on the commands — can run entire experiments under the
// legacy heap without threading a parameter through every constructor.
var newDefaultScheduler = NewWheelScheduler

// SetDefaultScheduler changes the scheduler constructor used by NewEngine
// and returns the previous one so callers can restore it. Passing nil
// restores the built-in default (the timing wheel). It must not be called
// concurrently with NewEngine; set it once at process or test start.
func SetDefaultScheduler(f func() Scheduler) func() Scheduler {
	prev := newDefaultScheduler
	if f == nil {
		f = NewWheelScheduler
	}
	newDefaultScheduler = f
	return prev
}

// SetDefaultSchedulerByName is the command-line shorthand the omx*
// binaries share for their -sched flag: resolve a scheduler name and
// install it as the NewEngine default.
func SetDefaultSchedulerByName(name string) error {
	f, err := SchedulerByName(name)
	if err != nil {
		return err
	}
	SetDefaultScheduler(f)
	return nil
}

// SchedulerByName resolves a scheduler constructor from its command-line
// name: "wheel" (the default) or "heap" (the legacy 4-ary min-heap).
func SchedulerByName(name string) (func() Scheduler, error) {
	switch name {
	case "", "wheel":
		return NewWheelScheduler, nil
	case "heap":
		return NewHeapScheduler, nil
	default:
		return nil, fmt.Errorf("sim: unknown scheduler %q (known: wheel, heap)", name)
	}
}

// before reports strict queue order between two events: (at, pri, seq).
// (at, seq) pairs are unique, so the order is total and the queue minimum
// is deterministic; pri slots cross-shard events into a position that does
// not depend on which engine scheduled them (see the package comment).
func before(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.seq < b.seq
}

// heap4 is an inlined 4-ary min-heap ordered by (time, priority, sequence),
// giving FIFO order at equal timestamps and priorities. Methods are specialized to *Event so
// push/pop compile to direct slice operations with no interface dispatch,
// and a 4-way branch keeps the tree half as deep as a binary heap for the
// pop-heavy workload of a packet-per-event simulation. It backs the legacy
// scheduler and the timing wheel's far-future overflow queue.
type heap4 struct {
	evs []*Event
}

func (h *heap4) len() int { return len(h.evs) }

func (h *heap4) peek() *Event {
	if len(h.evs) == 0 {
		return nil
	}
	return h.evs[0]
}

func (h *heap4) push(ev *Event) {
	i := len(h.evs)
	h.evs = append(h.evs, ev)
	for i > 0 {
		p := (i - 1) >> 2
		pe := h.evs[p]
		if before(pe, ev) {
			break
		}
		h.evs[i] = pe
		i = p
	}
	h.evs[i] = ev
}

func (h *heap4) pop() *Event {
	if len(h.evs) == 0 {
		return nil
	}
	evs := h.evs
	root := evs[0]
	n := len(evs) - 1
	last := evs[n]
	evs[n] = nil
	h.evs = evs[:n]
	if n > 0 {
		h.siftDown(last)
	}
	return root
}

// siftDown places ev, displaced from the root by a pop, back into heap
// position.
func (h *heap4) siftDown(ev *Event) {
	evs := h.evs
	n := len(evs)
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m, me := c, evs[c]
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if je := evs[j]; before(je, me) {
				m, me = j, je
			}
		}
		if before(ev, me) {
			break
		}
		evs[i] = me
		i = m
	}
	evs[i] = ev
}

// heapSched is the legacy scheduler: one 4-ary min-heap over all pending
// events. O(log n) per operation.
type heapSched struct {
	h   heap4
	eng *Engine
}

// NewHeapScheduler returns the legacy 4-ary min-heap scheduler.
func NewHeapScheduler() Scheduler { return &heapSched{} }

func (s *heapSched) Bind(e *Engine) { s.eng = e }

func (s *heapSched) Push(ev *Event) { s.h.push(ev) }

func (s *heapSched) Pop() *Event {
	for {
		ev := s.h.pop()
		if ev == nil || !ev.cancelled {
			return ev
		}
		s.eng.release(ev)
	}
}

func (s *heapSched) PopLE(t Time) *Event {
	ev := s.Peek()
	if ev == nil || ev.at > t {
		return nil
	}
	return s.h.pop()
}

// Peek discards cancelled heads as it goes: returning one would hand
// RunUntil a timestamp that never fires and terminate it early.
func (s *heapSched) Peek() *Event {
	for {
		ev := s.h.peek()
		if ev == nil || !ev.cancelled {
			return ev
		}
		s.h.pop()
		s.eng.release(ev)
	}
}

func (s *heapSched) Len() int { return s.h.len() }
