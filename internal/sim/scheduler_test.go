package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// twin drives a wheel-backed and a heap-backed engine with an identical
// operation stream and asserts they fire callbacks in an identical order.
// It is the determinism proof for the scheduler swap: the timing wheel must
// reproduce the legacy heap's (at, seq) total order exactly, including
// same-timestamp FIFO bursts, cancellations, horizon-bounded runs, and
// events that overflow past the wheels into the far-future heap.
type twin struct {
	engines [2]*Engine
	logs    [2][]string
	pending [2][]*Event // parallel outstanding handles, for cancels
}

func newTwin() *twin {
	return &twin{engines: [2]*Engine{
		NewEngineWithScheduler(NewWheelScheduler()),
		NewEngineWithScheduler(NewHeapScheduler()),
	}}
}

// schedule registers the same callback on both engines at now+d. Callbacks
// log "<id>@<time>"; a nested flag schedules a follow-up from inside the
// callback, covering schedule-during-dispatch.
func (tw *twin) schedule(id int, d Time, nested bool) {
	for i, e := range tw.engines {
		i, e := i, e
		ev := e.After(d, func() {
			tw.logs[i] = append(tw.logs[i], fmt.Sprintf("%d@%d", id, e.Now()))
			if nested {
				e.After(3, func() {
					tw.logs[i] = append(tw.logs[i], fmt.Sprintf("%d.n@%d", id, e.Now()))
				})
				e.Schedule(e.Now(), func() {
					tw.logs[i] = append(tw.logs[i], fmt.Sprintf("%d.z@%d", id, e.Now()))
				})
			}
		})
		tw.pending[i] = append(tw.pending[i], ev)
	}
}

// cancel cancels the k-th tracked handle on both engines. Handles may have
// fired already in model terms; the harness only cancels handles it has not
// observed firing, mirroring the engine's reuse contract, by dropping
// handles once their timestamp passes.
func (tw *twin) cancel(k int) {
	for i := range tw.engines {
		if k < len(tw.pending[i]) && tw.pending[i][k] != nil {
			tw.pending[i][k].Cancel()
			tw.pending[i][k] = nil
		}
	}
}

// expire drops tracked handles at or before the clock so cancel never
// touches a possibly-recycled event.
func (tw *twin) expire() {
	now := tw.engines[0].Now()
	for i := range tw.engines {
		for k, ev := range tw.pending[i] {
			if ev != nil && ev.At() <= now {
				tw.pending[i][k] = nil
			}
		}
	}
}

func (tw *twin) compare(t *testing.T) {
	t.Helper()
	if tw.engines[0].Now() != tw.engines[1].Now() {
		t.Fatalf("clocks diverged: wheel %d vs heap %d", tw.engines[0].Now(), tw.engines[1].Now())
	}
	if len(tw.logs[0]) != len(tw.logs[1]) {
		t.Fatalf("fired %d events on wheel vs %d on heap", len(tw.logs[0]), len(tw.logs[1]))
	}
	for k := range tw.logs[0] {
		if tw.logs[0][k] != tw.logs[1][k] {
			t.Fatalf("dispatch order diverged at event %d: wheel %q vs heap %q",
				k, tw.logs[0][k], tw.logs[1][k])
		}
	}
}

// TestSchedulerEquivalenceRandom is the randomized differential harness:
// many rounds of mixed Schedule/After/Cancel/Step/RunUntil traffic with
// delay scales chosen to exercise every wheel level and the overflow heap.
func TestSchedulerEquivalenceRandom(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			tw := newTwin()
			id := 0
			// Delay scales: same-instant, sub-µs (level 0), tens of µs
			// (level 1), tens of ms (level 2), and > level-2 horizon
			// (overflow heap).
			scales := []int64{0, 1 << 6, 1 << 14, 1 << 25, 1 << 37}
			for round := 0; round < 400; round++ {
				switch r.Intn(10) {
				case 0, 1, 2, 3: // schedule a burst (bursts hit same-ts FIFO)
					n := 1 + r.Intn(4)
					scale := scales[r.Intn(len(scales))]
					var d Time
					if scale > 0 {
						d = Time(r.Int63n(scale))
					}
					for j := 0; j < n; j++ {
						id++
						tw.schedule(id, d, r.Intn(8) == 0)
					}
				case 4: // t=0-style burst at the exact current instant
					id++
					tw.schedule(id, 0, false)
				case 5: // cancel a random tracked handle
					if n := len(tw.pending[0]); n > 0 {
						tw.cancel(r.Intn(n))
					}
				case 6, 7: // step a few events
					for j := r.Intn(5); j >= 0; j-- {
						tw.engines[0].Step()
						tw.engines[1].Step()
					}
					tw.expire()
				case 8: // bounded run to a shared horizon
					d := Time(r.Int63n(scales[r.Intn(len(scales)-1)+1]))
					horizon := tw.engines[0].Now() + d
					tw.engines[0].RunUntil(horizon)
					tw.engines[1].RunUntil(horizon)
					tw.expire()
				case 9: // drain completely
					tw.engines[0].Run()
					tw.engines[1].Run()
					tw.pending[0] = tw.pending[0][:0]
					tw.pending[1] = tw.pending[1][:0]
				}
			}
			tw.engines[0].Run()
			tw.engines[1].Run()
			tw.compare(t)
			if p0, p1 := tw.engines[0].Pending(), tw.engines[1].Pending(); p0 != 0 || p1 != 0 {
				t.Fatalf("events left after drain: wheel %d, heap %d", p0, p1)
			}
		})
	}
}

// TestSchedulerEquivalenceSameInstantStorm hammers the one ordering rule a
// calendar queue most easily gets wrong: large same-timestamp bursts mixed
// across Schedule and ScheduleArg, scheduled from different epochs.
func TestSchedulerEquivalenceSameInstantStorm(t *testing.T) {
	tw := newTwin()
	const at = 1 << 20 // lives at level 1/2 when scheduled from t=0
	for id := 1; id <= 64; id++ {
		id := id
		for i, e := range tw.engines {
			i, e := i, e
			if id%2 == 0 {
				e.Schedule(at, func() { tw.logs[i] = append(tw.logs[i], fmt.Sprintf("%d@%d", id, e.Now())) })
			} else {
				e.ScheduleArg(at, func(any) { tw.logs[i] = append(tw.logs[i], fmt.Sprintf("%d@%d", id, e.Now())) }, nil)
			}
		}
	}
	// A later event at the same instant scheduled after time has advanced
	// close to the target (exercises direct level-0 placement behind the
	// earlier level-1 copies).
	for i, e := range tw.engines {
		i, e := i, e
		e.Schedule(at-5, func() {
			e.Schedule(at, func() { tw.logs[i] = append(tw.logs[i], fmt.Sprintf("late@%d", e.Now())) })
		})
	}
	tw.engines[0].Run()
	tw.engines[1].Run()
	tw.compare(t)
}

// TestWheelOverflowReanchor pins the heap->wheel demotion path: events far
// beyond the level-2 horizon must come back in exact order, including
// same-timestamp FIFO and interleaved near-term events.
func TestWheelOverflowReanchor(t *testing.T) {
	tw := newTwin()
	far := Time(1) << 40 // well past the level-2 horizon
	for id := 1; id <= 10; id++ {
		tw.schedule(id, far+Time(id%3)*1000, false)
	}
	for id := 11; id <= 20; id++ {
		tw.schedule(id, Time(id)*777, false)
	}
	tw.engines[0].Run()
	tw.engines[1].Run()
	tw.compare(t)
}

// TestWheelCancelAcrossLevels cancels events parked at every level and in
// the overflow heap, then verifies the survivors' order and that the
// cancelled events are all discarded (Pending drains to zero).
func TestWheelCancelAcrossLevels(t *testing.T) {
	tw := newTwin()
	delays := []Time{5, 100, 1 << 13, 1 << 20, 1 << 30, 1 << 40}
	id := 0
	for _, d := range delays {
		id++
		tw.schedule(id, d, false) // survivor
		id++
		tw.schedule(id, d, false) // cancelled below
		tw.cancel(len(tw.pending[0]) - 1)
	}
	tw.engines[0].Run()
	tw.engines[1].Run()
	tw.compare(t)
	if got := len(tw.logs[0]); got != len(delays) {
		t.Fatalf("fired %d events, want %d survivors", got, len(delays))
	}
	if p := tw.engines[0].Pending(); p != 0 {
		t.Fatalf("wheel Pending = %d after full drain", p)
	}
}

// TestWheelRunUntilHorizonThenEarlierSchedule pins the Peek/PopLE safety
// property: probing far past the next event must not let a later Push land
// behind the wheel's cursor state. RunUntil stops short, a new earlier
// event arrives, and it must still fire first.
func TestWheelRunUntilHorizonThenEarlierSchedule(t *testing.T) {
	for _, name := range []string{"wheel", "heap"} {
		t.Run(name, func(t *testing.T) {
			ctor, err := SchedulerByName(name)
			if err != nil {
				t.Fatal(err)
			}
			e := NewEngineWithScheduler(ctor())
			var got []Time
			log := func() { got = append(got, e.Now()) }
			e.Schedule(1<<21, log) // parked at a high level
			e.RunUntil(1 << 18)    // probes far ahead, fires nothing
			if e.Now() != 1<<18 {
				t.Fatalf("Now = %d after RunUntil", e.Now())
			}
			e.Schedule(1<<18+5, log) // earlier than the parked event
			e.Run()
			want := []Time{1<<18 + 5, 1 << 21}
			if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
				t.Fatalf("fired at %v, want %v", got, want)
			}
		})
	}
}

// The zero-allocation guarantee must hold for both schedulers, including
// the wheel's cascade and cancel paths. Level-0-only traffic is covered by
// the engine tests; this exercises timers that park at level 1/2 and a
// cancel+discard cycle, in steady state.
func TestSchedulersZeroAllocSteadyState(t *testing.T) {
	for _, name := range []string{"wheel", "heap"} {
		t.Run(name, func(t *testing.T) {
			ctor, err := SchedulerByName(name)
			if err != nil {
				t.Fatal(err)
			}
			e := NewEngineWithScheduler(ctor())
			fn := func() {}
			for i := 0; i < 64; i++ { // warm free list and structures
				e.After(Time(i)*30000, fn)
			}
			for e.Step() {
			}
			if got := testing.AllocsPerRun(1000, func() {
				e.After(40000, fn) // parks at level 1, cascades on pop
				e.After(3, fn)
				e.Step()
				e.Step()
			}); got != 0 {
				t.Fatalf("cross-level Schedule+Step allocates %v objects/op in steady state, want 0", got)
			}
			if got := testing.AllocsPerRun(1000, func() {
				e.After(50000, fn).Cancel()
				e.After(1, fn)
				e.Step()
				e.RunUntil(e.Now() + 60000) // discards the cancelled timer
			}); got != 0 {
				t.Fatalf("cancel+discard allocates %v objects/op in steady state, want 0", got)
			}
		})
	}
}

func BenchmarkSchedulers(b *testing.B) {
	for _, name := range []string{"wheel", "heap"} {
		ctor, _ := SchedulerByName(name)
		// Mixed-horizon workload: mostly near events plus a rotating
		// coalescing-style timer population, the shape of the simulator's
		// real queues.
		b.Run(name, func(b *testing.B) {
			e := NewEngineWithScheduler(ctor())
			fn := func() {}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.After(Time(i%900), fn)
				if i%8 == 0 {
					e.After(75000, fn)
				}
				if i%2 == 1 {
					e.Step()
				}
			}
			for e.Step() {
			}
		})
	}
}

// TestWheelHorizonIntoOverflowEpoch is the regression test for a cursor
// commit that crosses into the overflow minimum's top-level epoch: a
// RunUntil horizon inside that epoch (but before the parked event) must not
// reroute later Pushes around the heap. Before the clamp in popLE's
// overflow guard, the wheel fired these events out of order and drove the
// clock backwards; the heap scheduler always had it right.
func TestWheelHorizonIntoOverflowEpoch(t *testing.T) {
	const topSpan = Time(1) << topShift
	for _, name := range []string{"wheel", "heap"} {
		t.Run(name, func(t *testing.T) {
			ctor, err := SchedulerByName(name)
			if err != nil {
				t.Fatal(err)
			}
			e := NewEngineWithScheduler(ctor())
			var got []Time
			log := func() { got = append(got, e.Now()) }
			first := topSpan + topSpan/4 // overflow-heap resident
			e.Schedule(first, log)
			e.RunUntil(topSpan + topSpan/8)  // horizon inside first's top epoch
			e.Schedule(first+topSpan/8, log) // later event, same top epoch
			e.Run()
			if len(got) != 2 || got[0] != first || got[1] != first+topSpan/8 {
				t.Fatalf("fired at %v, want [%d %d]", got, first, first+topSpan/8)
			}
		})
	}
}
