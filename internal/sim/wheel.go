package sim

import "math/bits"

// The timing wheel is a 3-level hierarchical calendar queue sized to the
// simulation's dominant horizons:
//
//	level 0: 4096 slots x 1 ns      — horizon ~4 µs   (wire/NIC events)
//	level 1: 1024 slots x ~4 µs     — horizon ~4.2 ms (coalescing timers)
//	level 2: 1024 slots x ~4.2 ms   — horizon ~4.3 s  (app/NAS phases)
//
// The level-0 span is chosen from the measured push-delta distribution of
// the repository's workloads: ~80% of all events are scheduled less than
// 4 µs ahead of the clock (wire, DMA, IRQ and protocol steps), so the wide
// bottom level places the vast majority of events in O(1) with no cascade
// at all, while 25–750 µs coalescing timers settle one level up. The upper
// levels carry far fewer events and stay narrow to keep the wheel's
// footprint — which the garbage collector scans, since slots anchor event
// pointers — small. Events beyond the level-2 horizon wait in a 4-ary
// overflow heap and are demoted into the wheels when the cursor's level-2
// epoch advances.
//
// # Geometry
//
// All levels are powers of two, so placement is pure bit arithmetic. A
// timestamp's level-l slot index is (at >> shift_l) & mask_l and its
// level-l "epoch" is at >> shift_(l+1), with shifts 0/12/22 and a top
// shift of 32. Within one level-(l+1) epoch the level-l slot indexes are
// monotone in time (they span their full range exactly once, in order), so
// a forward bitmap scan visits slots in timestamp order and the wheel
// never wraps within an epoch — there is no modular aliasing to resolve.
//
// # Determinism
//
// Pop must return live events in exactly the (at, pri, seq) order the
// legacy heap produces. That follows from three invariants:
//
//  1. Placement is monotone: an event is inserted at the lowest level whose
//     current epoch (relative to the cursor) contains its timestamp, and
//     cascades only move events downward when the cursor reaches their
//     epoch. A level-0 slot therefore holds events of exactly one timestamp
//     (plus possibly stale cancelled leftovers from earlier rotations), so
//     slot order at level 0 is (at, pri, seq) order.
//  2. Level-0 slots are explicitly ordered: every insertion into level 0 —
//     direct Push, cascade, overflow drain — goes through an (at, pri, seq)
//     ordered insert (see evList.insertOrdered), so the slot head is always
//     the slot minimum regardless of arrival order. In an all-pri-0 run
//     arrivals are already in seq order (Pushes carry monotonically
//     increasing seq, cascades preserve list order, and the overflow heap
//     drains in order), so the insert degenerates to the historical O(1)
//     FIFO append.
//  3. The cursor never outruns the commit point: it advances to a popped
//     event's timestamp, or to a RunUntil horizon t that the engine then
//     adopts as now, and cascades only touch slots that start at or before
//     that commit. The engine never schedules before now, so a Push always
//     lands relative to a cursor that is <= every live timestamp; a search
//     that comes up empty (queue drained, or only cancelled events left)
//     may release cancelled events but moves no live event and leaves the
//     cursor untouched.
//
// # Cost model
//
// Push is O(1): three epoch compares, a list append, a bitmap OR. Pop is
// amortized O(1): same-instant bursts drain from the cursor's slot without
// rescanning (the slot's bit stays set while events remain — this is what
// batches same-timestamp dispatch in Engine.Step and RunUntil), gaps are
// crossed with a two-level bitmap (one summary word of non-empty 64-slot
// groups per level, then one trailing-zeros scan), a sparse slot pops
// directly from its level without cascading (takeSingle), and each event
// otherwise cascades at most twice on its way down. The overflow heap only
// sees events more than ~4 virtual seconds ahead, which no workload in the
// repository does.
type Wheel struct {
	// cur is the committed cursor: every live event with at < cur has been
	// popped. It only advances when Pop returns an event or a bounded
	// search proves nothing remains at or before its horizon.
	cur Time
	n   int
	eng *Engine
	// sum[l] bit w mirrors "bits[l][w] != 0": the two-level bitmap that
	// finds the next populated slot in O(1).
	sum   [wheelLevels]uint64
	bits  [wheelLevels][]uint64
	slots [wheelLevels][]evList
	over  heap4
}

const (
	wheelLevels = 3

	l0Bits  = 12
	l1Bits  = 10
	l2Bits  = 10
	l0Slots = 1 << l0Bits
	l1Slots = 1 << l1Bits
	l2Slots = 1 << l2Bits
	l0Mask  = l0Slots - 1
	l1Mask  = l1Slots - 1
	l2Mask  = l2Slots - 1
	// lNShift positions a level's slot index within a timestamp; topShift
	// is the level-2 epoch boundary, past which events overflow to the
	// heap.
	l1Shift  = l0Bits
	l2Shift  = l0Bits + l1Bits
	topShift = l0Bits + l1Bits + l2Bits

	// maxHorizon disables the horizon guards: no simulated timestamp
	// reaches it (it is ~146 years of virtual nanoseconds).
	maxHorizon = Time(1) << 62
)

// evList is an intrusive FIFO of events threaded through Event.next, so
// slot membership costs no allocation and no slice growth.
type evList struct {
	head, tail *Event
}

//omxlint:hotpath
func (q *evList) pushBack(ev *Event) {
	ev.next = nil
	if q.tail == nil {
		q.head = ev
	} else {
		q.tail.next = ev
	}
	q.tail = ev
}

// insertOrdered places ev in (at, pri, seq) order. The fast path — ev not
// before the current tail — is a plain append, which is every insertion in
// an all-pri-0 simulation (level-0 slots hold a single timestamp and events
// arrive in seq order). Only cross-shard events (pri > 0) landing among
// same-instant peers ever take the scan, and a level-0 slot holds a handful
// of events at most.
//
//omxlint:hotpath
func (q *evList) insertOrdered(ev *Event) {
	if q.tail == nil || !before(ev, q.tail) {
		q.pushBack(ev)
		return
	}
	if before(ev, q.head) {
		ev.next = q.head
		q.head = ev
		return
	}
	p := q.head
	for !before(ev, p.next) {
		p = p.next
	}
	ev.next = p.next
	p.next = ev
}

// NewWheelScheduler returns the hierarchical timing-wheel scheduler, the
// package default.
func NewWheelScheduler() Scheduler {
	w := &Wheel{}
	w.slots[0] = make([]evList, l0Slots)
	w.slots[1] = make([]evList, l1Slots)
	w.slots[2] = make([]evList, l2Slots)
	w.bits[0] = make([]uint64, l0Slots/64)
	w.bits[1] = make([]uint64, l1Slots/64)
	w.bits[2] = make([]uint64, l2Slots/64)
	return w
}

func (w *Wheel) Bind(e *Engine) { w.eng = e }

func (w *Wheel) Len() int { return w.n }

//omxlint:hotpath
func (w *Wheel) setBit(level, idx int) {
	w.bits[level][idx>>6] |= 1 << uint(idx&63)
	w.sum[level] |= 1 << uint(idx>>6)
}

//omxlint:hotpath
func (w *Wheel) clearBit(level, idx int) {
	word := idx >> 6
	w.bits[level][word] &^= 1 << uint(idx&63)
	if w.bits[level][word] == 0 {
		w.sum[level] &^= 1 << uint(word)
	}
}

// findBit returns the first set bit >= from at the given level, or -1.
//
//omxlint:hotpath
func (w *Wheel) findBit(level, from int) int {
	b := w.bits[level]
	word := from >> 6
	if word >= len(b) {
		return -1
	}
	if v := b[word] >> uint(from&63); v != 0 {
		return from + bits.TrailingZeros64(v)
	}
	// Resume from the summary word, masking off groups up to and including
	// the word just checked. When that word is the 64th the mask shift
	// reaches 64, which Go defines as 0 — the wrapped mask then covers
	// everything, exactly as intended.
	rest := w.sum[level] &^ (1<<uint(word+1) - 1)
	if rest == 0 {
		return -1
	}
	word = bits.TrailingZeros64(rest)
	return word<<6 + bits.TrailingZeros64(b[word])
}

// put files an event into a slot. Level-0 slots are kept in full (at, pri,
// seq) order — they are what popLE drains head-first — while the higher
// levels stay FIFO: their slots are only ever redistributed (cascade),
// popped when they hold a single event (takeSingle), or min-scanned in full
// (peekSlotMin), none of which needs a sorted list.
//
//omxlint:hotpath
func (w *Wheel) put(level, idx int, ev *Event) {
	if level == 0 {
		w.slots[0][idx].insertOrdered(ev)
	} else {
		w.slots[level][idx].pushBack(ev)
	}
	w.setBit(level, idx)
}

// place files an event relative to base (the cursor, or the new epoch start
// during an overflow drain): the lowest level whose current epoch contains
// at, or the overflow heap past the level-2 horizon.
//
//omxlint:hotpath
func (w *Wheel) place(base Time, ev *Event) {
	at := ev.at
	switch {
	case at>>l1Shift == base>>l1Shift:
		w.put(0, int(at&l0Mask), ev)
	case at>>l2Shift == base>>l2Shift:
		w.put(1, int((at>>l1Shift)&l1Mask), ev)
	case at>>topShift == base>>topShift:
		w.put(2, int((at>>l2Shift)&l2Mask), ev)
	default:
		w.over.push(ev)
	}
}

//omxlint:hotpath
func (w *Wheel) Push(ev *Event) {
	w.n++
	w.place(w.cur, ev)
}

// cascade redistributes a level-1 or level-2 slot one level down, releasing
// cancelled events instead of moving them. List order is preserved, which
// keeps per-timestamp FIFO order intact.
//
//omxlint:hotpath
func (w *Wheel) cascade(level, idx int) {
	q := &w.slots[level][idx]
	ev := q.head
	q.head, q.tail = nil, nil
	w.clearBit(level, idx)
	for ev != nil {
		next := ev.next
		switch {
		case ev.cancelled:
			w.n--
			w.eng.release(ev)
		case level == 1:
			w.put(0, int(ev.at&l0Mask), ev)
		default:
			w.put(1, int((ev.at>>l1Shift)&l1Mask), ev)
		}
		ev = next
	}
}

func (w *Wheel) Pop() *Event { return w.popLE(maxHorizon) }

func (w *Wheel) PopLE(t Time) *Event { return w.popLE(t) }

// popLE removes and returns the minimum live event if its timestamp is <= t,
// advancing the cursor to it. When the minimum lies beyond t the cursor
// advances to t instead (the engine adopts t as now), so the next search
// resumes there; when nothing live remains at all the cursor stays put —
// that keeps an idle drain from stranding the cursor ahead of later Pushes.
//
//omxlint:hotpath
func (w *Wheel) popLE(t Time) *Event {
	lc := w.cur // local cursor; committed only at a pop or proven horizon
	for {
		// Level 0: within lc's epoch each set slot holds one timestamp in
		// FIFO order, so the first live event in index order is the global
		// minimum.
		for idx := w.findBit(0, int(lc&l0Mask)); idx >= 0; idx = w.findBit(0, idx+1) {
			q := &w.slots[0][idx]
			for ev := q.head; ev != nil; ev = q.head {
				live := !ev.cancelled
				if live && ev.at > t {
					if w.cur < t {
						w.cur = t
					}
					return nil
				}
				q.head = ev.next
				if q.head == nil {
					q.tail = nil
					w.clearBit(0, idx)
				}
				w.n--
				if live {
					w.cur = ev.at
					return ev
				}
				w.eng.release(ev)
			}
		}
		// Level-0 epoch exhausted: cascade the next pending level-1 slot.
		// The scan starts at the cursor's own slot — it cannot hold live
		// events (they would have been placed at level 0), but cascading it
		// sweeps out stale cancelled leftovers. Cascading past the horizon
		// would let events settle below a cursor position the engine never
		// adopts, so the search gives up first.
		if idx := w.findBit(1, int((lc>>l1Shift)&l1Mask)); idx >= 0 {
			slotStart := lc&^(1<<l2Shift-1) | Time(idx)<<l1Shift
			if slotStart > t {
				if w.cur < t {
					w.cur = t
				}
				return nil
			}
			if ev := w.takeSingle(1, idx, t); ev != nil {
				return ev
			}
			w.cascade(1, idx)
			if lc < slotStart {
				lc = slotStart
			}
			continue
		}
		// Level-1 epoch exhausted: cascade the next pending level-2 slot.
		if idx := w.findBit(2, int((lc>>l2Shift)&l2Mask)); idx >= 0 {
			slotStart := lc&^(1<<topShift-1) | Time(idx)<<l2Shift
			if slotStart > t {
				if w.cur < t {
					w.cur = t
				}
				return nil
			}
			if ev := w.takeSingle(2, idx, t); ev != nil {
				return ev
			}
			w.cascade(2, idx)
			if lc < slotStart {
				lc = slotStart
			}
			continue
		}
		// Wheels empty: re-anchor on the overflow heap. The heap only holds
		// events in later level-2 epochs than the cursor, so everything in
		// the wheels (nothing, at this point) precedes it.
		for {
			top := w.over.peek()
			if top == nil {
				return nil
			}
			if !top.cancelled {
				break
			}
			w.over.pop()
			w.n--
			w.eng.release(top)
		}
		m := w.over.peek()
		if m.at > t {
			// Horizon commit, with one extra guard: the cursor must never
			// enter the overflow minimum's top-level epoch while that epoch
			// is still parked in the heap. Pushes route by comparing epochs
			// against the cursor, so crossing the boundary here would send
			// later events of that epoch into the wheels, where the scan
			// would pop them ahead of earlier heap residents. Clamp the
			// commit to just below the epoch; the engine still adopts t as
			// now, and the next search resumes from the clamped cursor.
			c := t
			if epoch := m.at &^ (1<<topShift - 1); c >= epoch {
				c = epoch - 1
			}
			if w.cur < c {
				w.cur = c
			}
			return nil
		}
		// Drain the minimum's whole level-2 epoch into the wheels. Heap
		// pops arrive in (at, seq) order, so same-timestamp events append
		// to their slots in seq order; placement is relative to the epoch
		// start, which is <= m.at and therefore <= every commit that
		// follows.
		lc = m.at &^ (1<<topShift - 1)
		for {
			top := w.over.peek()
			if top == nil || top.at>>topShift != lc>>topShift {
				break
			}
			w.over.pop()
			if top.cancelled {
				w.n--
				w.eng.release(top)
				continue
			}
			w.place(lc, top)
		}
	}
}

// takeSingle is popLE's sparse-queue fast path: when the first pending slot
// of a level holds exactly one live event, that event is the level's — and
// with all lower levels drained, the queue's — minimum, so it pops directly
// instead of cascading down and rescanning. Returns nil (leaving the slot
// for the caller's cascade) when the slot holds several events; the caller
// has already bounded slotStart by the horizon, but the event itself may
// still lie beyond it, in which case it stays parked and popLE's horizon
// commit is applied here.
//
//omxlint:hotpath
func (w *Wheel) takeSingle(level, idx int, t Time) *Event {
	q := &w.slots[level][idx]
	ev := q.head
	if ev.next != nil {
		return nil
	}
	if ev.cancelled {
		q.head, q.tail = nil, nil
		w.clearBit(level, idx)
		w.n--
		w.eng.release(ev)
		return nil
	}
	if ev.at > t {
		if w.cur < t {
			w.cur = t
		}
		return nil
	}
	q.head, q.tail = nil, nil
	w.clearBit(level, idx)
	w.n--
	w.cur = ev.at
	return ev
}

// Peek returns the minimum live event without structural movement: no
// cascades, no cursor advance. It may release cancelled events it walks
// over. Not cascading matters for correctness, not just cost: Peek can look
// arbitrarily far ahead, and moving events down for an epoch the cursor
// never commits to would let a later Push land "behind" the wheels' state
// and be missed.
func (w *Wheel) Peek() *Event {
	lc := w.cur
	for idx := w.findBit(0, int(lc&l0Mask)); idx >= 0; idx = w.findBit(0, idx+1) {
		if ev := w.peekSlot0(idx); ev != nil {
			return ev
		}
	}
	// Higher levels hold mixed timestamps per slot, but slots are monotone
	// in time within an epoch, so the minimum live event of the first
	// non-empty slot is the level's minimum.
	for idx := w.findBit(1, int((lc>>l1Shift)&l1Mask)); idx >= 0; idx = w.findBit(1, idx+1) {
		if ev := w.peekSlotMin(1, idx); ev != nil {
			return ev
		}
	}
	for idx := w.findBit(2, int((lc>>l2Shift)&l2Mask)); idx >= 0; idx = w.findBit(2, idx+1) {
		if ev := w.peekSlotMin(2, idx); ev != nil {
			return ev
		}
	}
	for {
		top := w.over.peek()
		if top == nil || !top.cancelled {
			return top
		}
		w.over.pop()
		w.n--
		w.eng.release(top)
	}
}

// peekSlot0 trims cancelled events off the front of a level-0 slot and
// returns the first live event without removing it, or nil (clearing the
// slot's bit) when only cancelled events remained.
func (w *Wheel) peekSlot0(idx int) *Event {
	q := &w.slots[0][idx]
	for ev := q.head; ev != nil; ev = q.head {
		if !ev.cancelled {
			return ev
		}
		q.head = ev.next
		if q.head == nil {
			q.tail = nil
			w.clearBit(0, idx)
		}
		w.n--
		w.eng.release(ev)
	}
	return nil
}

// peekSlotMin scans a level-1/2 slot for its minimum live event, unlinking
// and releasing cancelled events along the way. Equal timestamps keep the
// first (lowest-seq) entry, preserving FIFO semantics.
func (w *Wheel) peekSlotMin(level, idx int) *Event {
	q := &w.slots[level][idx]
	var prev, best *Event
	for ev := q.head; ev != nil; {
		if ev.cancelled {
			next := ev.next
			if prev == nil {
				q.head = next
			} else {
				prev.next = next
			}
			if next == nil {
				q.tail = prev
			}
			w.n--
			w.eng.release(ev)
			ev = next
			continue
		}
		if best == nil || before(ev, best) {
			best = ev
		}
		prev = ev
		ev = ev.next
	}
	if q.head == nil {
		w.clearBit(level, idx)
	}
	return best
}
