package sweep

import (
	"openmxsim/internal/cluster"
	"openmxsim/internal/fabric"
	"openmxsim/internal/mpi"
	"openmxsim/internal/omx"
	"openmxsim/internal/sim"
)

// Background describes bulk traffic congesting the ping-pong receiver's
// port: Streams senders (one per extra node, nodes 2..2+Streams-1) each
// keep Chains back-to-back bulk sends running toward dedicated endpoints
// on node 1, so their frames share node 1's egress port and receive path
// with the latency-sensitive ping-pong.
type Background struct {
	// Streams is the number of background bulk senders (0 = no load).
	Streams int
	// Size is the bulk message size; <= 0 selects 64 KiB (large enough for
	// the rendezvous/pull path, the paper's throughput regime).
	Size int
	// Chains is the number of concurrent send chains per sender; <= 0
	// selects 1.
	Chains int
}

func (b Background) normalized() Background {
	if b.Size <= 0 {
		b.Size = 64 << 10
	}
	if b.Chains <= 0 {
		b.Chains = 1
	}
	return b
}

// RunPingPongLoaded is RunPingPong under background congestion: the same
// two-rank ping-pong on nodes 0 and 1, plus bg.Streams bulk senders on
// extra nodes aimed at node 1. cfg.Nodes is raised to 2+bg.Streams when
// too small. With bg.Streams == 0 it is exactly RunPingPong (same cluster,
// same event order, bit-identical results).
//
// The interrupt count covers the two ping-pong nodes' NICs only (as in
// RunPingPong, whose cluster has no other NICs); the bulk senders'
// interrupt load is background, not measurement. Node 1's count does
// include interrupts its NIC raises for background arrivals — sharing the
// receive path is exactly the congestion under study.
//
// The background chains stop re-arming once the ping-pong measurement
// completes, so the engine drains and the MPI world terminates normally.
func RunPingPongLoaded(cfg cluster.Config, sizes []int, iters int, bg Background) (map[int]sim.Time, uint64, int, error) {
	res, intr, msgs, _, err := RunPingPongLoadedStats(cfg, sizes, iters, bg)
	return res, intr, msgs, err
}

// RunPingPongLoadedStats is RunPingPongLoaded plus the cluster's summed
// protocol robustness counters.
func RunPingPongLoadedStats(cfg cluster.Config, sizes []int, iters int, bg Background) (map[int]sim.Time, uint64, int, ProtoCounters, error) {
	out, err := RunPingPongLoadedOutcome(cfg, sizes, iters, bg)
	return out.Latency, out.Interrupts, out.Messages, out.Proto, err
}

// RunPingPongLoadedOutcome is the full-outcome form of
// RunPingPongLoadedStats, additionally snapshotting per-port switch
// counters on queued topologies.
func RunPingPongLoadedOutcome(cfg cluster.Config, sizes []int, iters int, bg Background) (PingPongOutcome, error) {
	if bg.Streams <= 0 {
		return RunPingPongOutcome(cfg, sizes, iters)
	}
	bg = bg.normalized()
	if min := 2 + bg.Streams; cfg.Nodes < min {
		cfg.Nodes = min
	}
	// This harness is engine-global by construction: the stop flag is
	// shared by the quench hook, the watchdog and every sender chain, and
	// the watchdog on node 0's engine reads node-0 stack counters while
	// chains run on other nodes. Sharding it would race all of that for no
	// gain (the loaded ping-pong is latency-, not throughput-bound), so it
	// always runs the reference single-engine simulation.
	cfg.Parallelism = 1

	cl := cluster.New(cfg)
	w := mpi.NewWorld(cl, cl.OpenEndpointsOn([]int{0, 1}, 1))

	// Background plumbing: sender endpoint 0 on each bulk node, one
	// dedicated receiving endpoint per stream on node 1 (ids 1..Streams,
	// clear of the MPI rank's endpoint 0), all pinned off core 0 where the
	// ping-pong rank spins.
	stop := false
	for i := 0; i < bg.Streams; i++ {
		node := 2 + i
		sndCores := cl.Hosts[node].Cores
		snd := cl.Stacks[node].Open(0, sndCores[1%len(sndCores)])
		rcvCores := cl.Hosts[1].Cores
		rcv := cl.Stacks[1].Open(uint8(1+i), rcvCores[(2+i)%len(rcvCores)])

		var onRecv func(*omx.RecvHandle)
		onRecv = func(*omx.RecvHandle) { rcv.Irecv(0, 0, nil, bg.Size, onRecv) }
		dst := rcv.Addr()
		var chain func()
		chain = func() {
			if stop {
				return
			}
			snd.Isend(dst, 1, nil, bg.Size, chain)
		}
		cl.Eng.After(0, func() {
			for k := 0; k < 32; k++ {
				rcv.Irecv(0, 0, nil, bg.Size, onRecv)
			}
			for k := 0; k < bg.Chains; k++ {
				chain()
			}
		})
	}

	// A wedged ping-pong (mutual rank deadlock) would otherwise keep the
	// self-re-arming chains alive forever and the engine would never drain
	// — defeating World.Run's runs-dry deadlock detection. The watchdog
	// quenches the chains when node 0 (which carries only ping-pong
	// traffic, retransmissions included) goes silent for a full interval,
	// letting the engine empty so Run reports the stuck ranks.
	const watchdogInterval = 50 * sim.Millisecond
	lastActivity := ^uint64(0)
	var watchdog func()
	watchdog = func() {
		if stop {
			return
		}
		cur := cl.Stacks[0].Stats.PacketsIn + cl.Stacks[0].Stats.PacketsOut
		if cur == lastActivity {
			stop = true
			return
		}
		lastActivity = cur
		cl.Eng.After(watchdogInterval, watchdog)
	}
	cl.Eng.After(watchdogInterval, watchdog)

	// Whichever rank finishes first quenches the background chains so
	// in-flight bulk transfers drain and the engine can empty.
	res, msgs, err := runPingPong(w, sizes, iters, func() { stop = true })
	intr := cl.NICs[0].Stats.Interrupts + cl.NICs[1].Stats.Interrupts
	return PingPongOutcome{
		Latency:    res,
		Interrupts: intr,
		Messages:   msgs,
		Proto:      protoCounters(cl),
		Ports:      portSnapshots(cl),
	}, err
}

// IncastSpec describes an N-to-1 fan-in measurement: Senders nodes blast
// size-byte messages at one receiver node (node 0), whose egress port,
// receive ring, and interrupt path absorb the convergence.
type IncastSpec struct {
	// Cluster is the testbed configuration; Nodes is raised to Senders+1
	// when too small. Select an output-queued Topology to bound the
	// receiver's switch buffer.
	Cluster cluster.Config
	// Senders is the fan-in (>= 1); senders live on nodes 1..Senders.
	Senders int
	// Size is the message size; <= 0 selects 128 B (the paper's
	// small-message regime, where per-message interrupt cost dominates).
	Size int
	// Chains is the number of concurrent send chains per sender; <= 0
	// selects 2.
	Chains int
	// Warmup and Measure bound the measurement window.
	Warmup, Measure sim.Time
}

// IncastResult is the receiver-side outcome of an incast measurement.
type IncastResult struct {
	// Rate is messages per second completed at the receiving application
	// during the measurement window.
	Rate float64
	// Interrupts and IntrRate cover the receiver NIC in the window.
	Interrupts uint64
	IntrRate   float64
	// Wakeups on the receiving host in the window.
	Wakeups uint64
	// Received is the raw message count in the window.
	Received int
	// PortDrops counts drop-tail losses at the receiver's egress port over
	// the whole run (0 under the direct topology).
	PortDrops uint64
	// MaxQueueFrames is the receiver port's queue high-water mark.
	MaxQueueFrames int
	// QueueWaitNS is the mean per-frame egress queueing delay in ns.
	QueueWaitNS float64
	// Proto sums the protocol robustness counters over all nodes.
	Proto ProtoCounters
	// Ports holds every node's egress-port statistics when the topology is
	// output-queued (nil under the direct topology, which has no ports).
	Ports []fabric.PortStats
}

// RunIncast builds a cluster from the spec and runs the fan-in measurement.
func RunIncast(spec IncastSpec) IncastResult {
	if spec.Senders < 1 {
		spec.Senders = 1
	}
	if spec.Size <= 0 {
		spec.Size = 128
	}
	if spec.Chains <= 0 {
		spec.Chains = 2
	}
	cfg := spec.Cluster
	if min := spec.Senders + 1; cfg.Nodes < min {
		cfg.Nodes = min
	}
	cl := cluster.New(cfg)

	// Receiver on node 0, pinned off the IRQ core like the stream harness;
	// one sender endpoint per fan-in node.
	rcv := cl.Stacks[0].Open(0, cl.Hosts[0].Cores[1])
	received := 0
	var onRecv func(*omx.RecvHandle)
	onRecv = func(*omx.RecvHandle) {
		received++
		rcv.Irecv(0, 0, nil, spec.Size, onRecv)
	}
	dst := rcv.Addr()
	for i := 0; i < spec.Senders; i++ {
		node := 1 + i
		cores := cl.Hosts[node].Cores
		snd := cl.Stacks[node].Open(0, cores[1%len(cores)])
		var chain func()
		chain = func() { snd.Isend(dst, 1, nil, spec.Size, chain) }
		// Each sender chain lives on its own node's shard engine; the
		// chains never touch shared harness state, which is what lets the
		// incast shard cleanly.
		cl.ScheduleOn(node, 0, func() {
			for k := 0; k < spec.Chains; k++ {
				chain()
			}
		})
	}
	cl.ScheduleOn(0, 0, func() {
		for k := 0; k < 192+64*spec.Senders; k++ {
			rcv.Irecv(0, 0, nil, spec.Size, onRecv)
		}
	})

	got, intr, wake := measureWindow(cl, 0, spec.Warmup, spec.Measure, &received)
	secs := float64(spec.Measure) / 1e9
	port := cl.PortStats(0)
	var wait float64
	if port.Enqueued > 0 {
		wait = float64(port.QueueWait) / float64(port.Enqueued)
	}
	return IncastResult{
		Rate:           float64(got) / secs,
		Interrupts:     intr,
		IntrRate:       float64(intr) / secs,
		Wakeups:        wake,
		Received:       got,
		PortDrops:      port.Drops,
		MaxQueueFrames: port.MaxQueueFrames,
		QueueWaitNS:    wait,
		Proto:          protoCounters(cl),
		Ports:          portSnapshots(cl),
	}
}
