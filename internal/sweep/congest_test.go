package sweep

import (
	"bytes"
	"testing"

	"openmxsim/internal/cluster"
	"openmxsim/internal/fabric"
	"openmxsim/internal/nic"
	"openmxsim/internal/sim"
)

func TestGridExpandsNodeAndBackgroundAxes(t *testing.T) {
	g := Grid{
		Strategies: []nic.Strategy{nic.StrategyTimeout},
		Nodes:      []int{2, 4},
		BgStreams:  []int{0, 2},
	}
	if got := g.Size(); got != 4 {
		t.Fatalf("Size() = %d, want 4", got)
	}
	pts := g.Points()
	if len(pts) != 4 {
		t.Fatalf("expanded %d points, want 4", len(pts))
	}
	// bg innermost: (2,0) (2,2) (4,0) (4,2).
	want := [][2]int{{2, 0}, {2, 2}, {4, 0}, {4, 2}}
	for i, p := range pts {
		if p.Nodes != want[i][0] || p.BgStreams != want[i][1] {
			t.Errorf("point %d = nodes %d, bg %d; want %v", i, p.Nodes, p.BgStreams, want[i])
		}
	}
	// A 2-node point with 2 background streams builds a 4-node cluster.
	if cfg := pts[1].Config(); cfg.Nodes != 4 {
		t.Errorf("bg=2 point expanded to %d nodes, want 4", cfg.Nodes)
	}
}

func TestDefaultGridUnchangedByNewAxes(t *testing.T) {
	var g Grid
	pts := g.Points()
	if len(pts) != 1 {
		t.Fatalf("zero grid expands to %d points, want 1", len(pts))
	}
	if pts[0].Nodes != 2 || pts[0].BgStreams != 0 {
		t.Errorf("zero grid point = nodes %d, bg %d; want 2, 0", pts[0].Nodes, pts[0].BgStreams)
	}
	if cfg := pts[0].Config(); cfg.Nodes != cluster.Paper().Nodes {
		t.Errorf("zero grid config nodes = %d, want paper default", cfg.Nodes)
	}
}

// TestBackgroundLoadRaisesPingPongLatency checks the congestion mechanism
// end to end: bulk streams sharing the receiver's port must slow the
// latency-sensitive ping-pong down.
func TestBackgroundLoadRaisesPingPongLatency(t *testing.T) {
	cfg := cluster.Paper()
	sizes := []int{4 << 10}
	const iters = 6
	base, _, _, err := RunPingPongLoaded(cfg, sizes, iters, Background{})
	if err != nil {
		t.Fatalf("unloaded: %v", err)
	}
	loaded, _, msgs, err := RunPingPongLoaded(cfg, sizes, iters, Background{Streams: 2})
	if err != nil {
		t.Fatalf("loaded: %v", err)
	}
	if msgs == 0 {
		t.Fatal("loaded run reported no messages")
	}
	if loaded[sizes[0]] <= base[sizes[0]] {
		t.Errorf("background load did not slow the ping-pong: base %v, loaded %v",
			base[sizes[0]], loaded[sizes[0]])
	}
}

// TestLoadedPingPongZeroStreamsIsPingPong checks the bg=0 path is the
// canonical harness, bit for bit.
func TestLoadedPingPongZeroStreamsIsPingPong(t *testing.T) {
	cfg := cluster.Paper()
	sizes := []int{128}
	a, ai, am, err := RunPingPong(cfg, sizes, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, bi, bm, err := RunPingPongLoaded(cfg, sizes, 5, Background{})
	if err != nil {
		t.Fatal(err)
	}
	if a[128] != b[128] || ai != bi || am != bm {
		t.Errorf("bg=0 diverged from RunPingPong: %v/%d/%d vs %v/%d/%d", a[128], ai, am, b[128], bi, bm)
	}
}

// TestIncastFanIn checks the incast harness: more senders converge more
// messages on the receiver, and a shallow output-queued buffer records
// congestion (occupancy, and under enough fan-in, drops).
func TestIncastFanIn(t *testing.T) {
	run := func(senders int) IncastResult {
		cfg := cluster.Paper()
		cfg.Topology = fabric.Topology{Kind: fabric.TopologyOutputQueued, EgressQueueFrames: 32}
		return RunIncast(IncastSpec{
			Cluster: cfg, Senders: senders, Size: 128,
			Warmup: 2 * sim.Millisecond, Measure: 10 * sim.Millisecond,
		})
	}
	r2, r4 := run(2), run(4)
	if r2.Received == 0 || r4.Received == 0 {
		t.Fatalf("incast received nothing: %d, %d", r2.Received, r4.Received)
	}
	if r4.Rate <= r2.Rate {
		t.Errorf("rate did not grow with fan-in: 2 senders %.0f/s, 4 senders %.0f/s", r2.Rate, r4.Rate)
	}
	if r4.MaxQueueFrames == 0 {
		t.Error("4-way incast never queued at the egress port")
	}
	if r4.Interrupts == 0 {
		t.Error("incast raised no interrupts")
	}
}

// TestLoadedSweepDeterministicAcrossWorkers runs a grid with node and
// background axes at 1 and 4 workers and requires byte-identical JSON.
func TestLoadedSweepDeterministicAcrossWorkers(t *testing.T) {
	g := Grid{
		Strategies: []nic.Strategy{nic.StrategyTimeout, nic.StrategyOpenMX},
		Sizes:      []int{128},
		BgStreams:  []int{0, 1},
		Iters:      3,
	}
	r1, err := Run(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := r1.JSON()
	j4, _ := r4.JSON()
	if !bytes.Equal(j1, j4) {
		t.Error("loaded sweep JSON differs between 1 and 4 workers")
	}
	for _, r := range r1 {
		if r.Err != "" {
			t.Errorf("point %d failed: %s", r.Index, r.Err)
		}
		if r.BgStreams > 0 && r.Nodes < 2+r.BgStreams {
			t.Errorf("point %d: nodes %d < 2+bg %d", r.Index, r.Nodes, r.BgStreams)
		}
	}
}
