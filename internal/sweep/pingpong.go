package sweep

import (
	"fmt"

	"openmxsim/internal/cluster"
	"openmxsim/internal/fabric"
	"openmxsim/internal/mpi"
	"openmxsim/internal/proc"
	"openmxsim/internal/sim"
)

// ProtoCounters sums the reliability layer's robustness counters over a
// cluster's nodes: how hard the protocol worked to complete the
// measurement.
type ProtoCounters struct {
	Retransmits uint64
	Backoffs    uint64
	GiveUps     uint64
	PullRetries uint64
	// FeedbackSteps sums the closed-loop coalescer's delay adjustments
	// over every NIC — always 0 unless a point runs StrategyFeedback.
	FeedbackSteps uint64
	// FeedbackClamps sums the controller walks absorbed by the [min,max]
	// delay clamp — the controller hit a wall and could not move.
	FeedbackClamps uint64
}

func protoCounters(cl *cluster.Cluster) ProtoCounters {
	var pc ProtoCounters
	for _, s := range cl.Stacks {
		pc.Retransmits += s.Stats.Retransmits
		pc.Backoffs += s.Stats.Backoffs
		pc.GiveUps += s.Stats.GiveUps
		pc.PullRetries += s.Stats.PullBlockRetries
	}
	for _, n := range cl.NICs {
		pc.FeedbackSteps += n.Stats.FeedbackSteps
		pc.FeedbackClamps += n.Stats.FeedbackClamps
	}
	return pc
}

// PingPongOutcome bundles everything one ping-pong measurement produces:
// the per-size latency map, the interrupt/message totals, the summed
// protocol counters, and — under the output-queued topology — a per-node
// snapshot of the switch's egress-port counters (nil in the direct model,
// whose ideal ports have no queue to report).
type PingPongOutcome struct {
	Latency    map[int]sim.Time
	Interrupts uint64
	Messages   int
	Proto      ProtoCounters
	Ports      []fabric.PortStats
}

// portSnapshots captures every node's egress-port counters for queued
// topologies; the direct model reports nil.
func portSnapshots(cl *cluster.Cluster) []fabric.PortStats {
	if cl.Cfg.Topology.Kind != fabric.TopologyOutputQueued {
		return nil
	}
	ps := make([]fabric.PortStats, cl.Cfg.Nodes)
	for i := range ps {
		ps[i] = cl.PortStats(i)
	}
	return ps
}

// RunPingPong is the canonical ping-pong harness (the experiment runners
// in internal/exp delegate to it): mean one-way transfer time per message
// size between two ranks on different nodes, plus the interrupt total
// across both NICs and the number of messages it covers.
func RunPingPong(cfg cluster.Config, sizes []int, iters int) (map[int]sim.Time, uint64, int, error) {
	res, intr, msgs, _, err := RunPingPongStats(cfg, sizes, iters)
	return res, intr, msgs, err
}

// RunPingPongStats is RunPingPong plus the cluster's summed protocol
// robustness counters (the resilience experiments report them).
func RunPingPongStats(cfg cluster.Config, sizes []int, iters int) (map[int]sim.Time, uint64, int, ProtoCounters, error) {
	out, err := RunPingPongOutcome(cfg, sizes, iters)
	return out.Latency, out.Interrupts, out.Messages, out.Proto, err
}

// RunPingPongOutcome is the full-outcome form of RunPingPongStats,
// additionally snapshotting per-port switch counters on queued topologies.
func RunPingPongOutcome(cfg cluster.Config, sizes []int, iters int) (PingPongOutcome, error) {
	// The two ranks share the result map and panic slot in runPingPong, so
	// the harness stays on the single-engine reference at any requested
	// parallelism (a 2-node ping-pong has nothing to shard anyway).
	cfg.Parallelism = 1
	cl := cluster.New(cfg)
	w := mpi.NewWorld(cl, cl.OpenEndpoints(1))
	res, msgs, err := runPingPong(w, sizes, iters, nil)
	return PingPongOutcome{
		Latency:    res,
		Interrupts: cl.Interrupts(),
		Messages:   msgs,
		Proto:      protoCounters(cl),
		Ports:      portSnapshots(cl),
	}, err
}

// runPingPong drives the two-rank measurement body on a prepared world:
// rank 0 times warmup+iters round trips per size against rank 1. onFinish,
// when non-nil, runs as soon as either rank leaves its loop (or panics) —
// the loaded variant uses it to quench background traffic so the engine
// can drain.
//
// Rank bodies run on their own goroutines, so a panic inside one would
// escape any recover on the caller's goroutine and kill the whole process;
// the per-rank recover below converts it into an error instead (the
// partner rank then deadlocks, which World.Run reports and tears down
// cleanly).
func runPingPong(w *mpi.World, sizes []int, iters int, onFinish func()) (map[int]sim.Time, int, error) {
	c := w.CommWorld()
	const warmup = 2
	res := make(map[int]sim.Time, len(sizes))
	var rankPanic error
	_, err := w.Run(func(r *mpi.Rank) {
		defer func() {
			if p := recover(); p != nil {
				if proc.IsKill(p) {
					panic(p)
				}
				if rankPanic == nil {
					rankPanic = fmt.Errorf("rank %d panicked: %v", r.ID, p)
				}
				if onFinish != nil {
					onFinish()
				}
			}
		}()
		for si, size := range sizes {
			tag := 100 + si
			switch r.ID {
			case 0:
				for k := 0; k < warmup; k++ {
					r.Send(c, 1, tag, nil, size)
					r.Recv(c, 1, tag, nil, size)
				}
				t0 := r.Now()
				for k := 0; k < iters; k++ {
					r.Send(c, 1, tag, nil, size)
					r.Recv(c, 1, tag, nil, size)
				}
				res[size] = (r.Now() - t0) / sim.Time(2*iters)
			case 1:
				for k := 0; k < warmup+iters; k++ {
					r.Recv(c, 0, tag, nil, size)
					r.Send(c, 0, tag, nil, size)
				}
			}
		}
		if onFinish != nil {
			onFinish()
		}
	})
	msgs := 2 * (warmup + iters) * len(sizes)
	if rankPanic != nil {
		if err != nil {
			err = fmt.Errorf("%v (%v)", rankPanic, err)
		} else {
			err = rankPanic
		}
		msgs = 0
	}
	return res, msgs, err
}
