package sweep

import (
	"reflect"
	"sync/atomic"
	"testing"

	"openmxsim/internal/chaos"
	"openmxsim/internal/cluster"
	"openmxsim/internal/fabric"
	"openmxsim/internal/sim"
	"openmxsim/internal/wire"
)

func incastSpec(par int, sc *chaos.Scenario, seed uint64) IncastSpec {
	cfg := cluster.Paper()
	cfg.Seed = seed
	cfg.Parallelism = par
	cfg.Topology = fabric.Topology{
		Kind:              fabric.TopologyOutputQueued,
		EgressQueueFrames: 64,
	}
	cfg.Scenario = sc
	return IncastSpec{
		Cluster: cfg,
		Senders: 4,
		Size:    128,
		Warmup:  2 * sim.Millisecond,
		// Long enough past the 10ms base resend timeout that lost small
		// messages actually retransmit inside the run.
		Measure: 14 * sim.Millisecond,
	}
}

// TestProtoCountersBitIdenticalAcrossPar is the robustness layer's
// determinism gate: the full incast result — rate, drops, and every
// protocol recovery counter — must be bit-identical between the serial
// reference engine and any shard count, with a bursty-loss scenario
// active. The chaos engine keys its chains and RNG streams by source
// node precisely so this holds.
func TestProtoCountersBitIdenticalAcrossPar(t *testing.T) {
	for _, seed := range []uint64{1, 7} {
		sc := &chaos.Scenario{Loss: chaos.Bursty(0.02, 8), Seed: seed}
		serial := RunIncast(incastSpec(1, sc, seed))
		if serial.Proto.Retransmits == 0 && serial.Proto.PullRetries == 0 && serial.Proto.Backoffs == 0 {
			t.Errorf("seed %d: 2%% bursty loss produced no recovery work — scenario not wired", seed)
		}
		for _, par := range []int{2, 4, 8} {
			sharded := RunIncast(incastSpec(par, sc, seed))
			// reflect.DeepEqual: IncastResult grew a port-stats slice, so ==
			// no longer compiles; the check stays exhaustive.
			if !reflect.DeepEqual(sharded, serial) {
				t.Errorf("seed %d: incast result differs between par 1 and par %d:\npar 1: %+v\npar %d: %+v",
					seed, par, serial, par, sharded)
			}
		}
	}
}

// TestFaultFilterConcurrencyContract exercises the documented
// Fault.Filter thread-safety contract: under Parallelism > 1 the filter
// runs concurrently from every shard goroutine, so a contract-compliant
// filter (atomic counter, pure decision) must work — and this test is
// the -race probe that the fabric's shard-owned send paths really do
// invoke it without an unsynchronized write in the framework itself.
func TestFaultFilterConcurrencyContract(t *testing.T) {
	var inspected atomic.Uint64
	cfg := cluster.Paper()
	cfg.Seed = 1
	cfg.Parallelism = 4
	cfg.Topology = fabric.Topology{
		Kind:              fabric.TopologyOutputQueued,
		EgressQueueFrames: 64,
	}
	cfg.Fault = &fabric.Fault{
		DropProb: 0.01,
		// Pure decision + atomic side effect: the contract's worked example.
		Filter: func(f *wire.Frame) bool {
			inspected.Add(1)
			return true
		},
	}
	res := RunIncast(IncastSpec{
		Cluster: cfg,
		Senders: 4,
		Size:    128,
		Warmup:  sim.Millisecond,
		Measure: 4 * sim.Millisecond,
	})
	if inspected.Load() == 0 {
		t.Fatal("filter never consulted")
	}
	if res.Received == 0 {
		t.Fatal("no traffic flowed under the filtered fault")
	}
}

// TestGridDropAxes pins the loss-axis plumbing: a zero DropProb point
// must install no scenario at all (bit-identical to the pre-loss grid),
// a positive one installs a Bursty chain seeded from the point's seed,
// and out-of-range values are rejected before any point runs.
func TestGridDropAxes(t *testing.T) {
	g := Grid{DropProb: []float64{0, 0.02}, Burst: []float64{4}}.normalized()
	pts := g.Points()
	var clean, lossy *Point
	for i := range pts {
		if pts[i].DropProb == 0 {
			clean = &pts[i]
		} else {
			lossy = &pts[i]
		}
	}
	if clean == nil || lossy == nil {
		t.Fatalf("axis expansion lost points: %+v", pts)
	}
	if cfg := clean.Config(); cfg.Scenario != nil {
		t.Error("DropProb=0 installed a scenario")
	}
	cfg := lossy.Config()
	if cfg.Scenario == nil || cfg.Scenario.Loss == nil {
		t.Fatal("DropProb=0.02 installed no loss scenario")
	}
	if got := cfg.Scenario.Loss.Loss(); got < 0.019 || got > 0.021 {
		t.Errorf("scenario stationary loss = %g, want 0.02", got)
	}
	if cfg.Scenario.Seed != lossy.Seed {
		t.Errorf("scenario seed %d != point seed %d", cfg.Scenario.Seed, lossy.Seed)
	}

	if _, err := Run(Grid{DropProb: []float64{1}, Iters: 1}, 1); err == nil {
		t.Error("DropProb=1 accepted (certain loss can never complete a ping-pong)")
	}
	if _, err := Run(Grid{Burst: []float64{-2}, Iters: 1}, 1); err == nil {
		t.Error("negative burst accepted")
	}
}
