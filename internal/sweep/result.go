package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"openmxsim/internal/trace"
)

// Result is the measurement at one grid point. Fields use flat,
// JSON-friendly types so sweep outputs are trivially consumed by plotting
// scripts and the benchmark-trajectory tooling.
type Result struct {
	Index         int     `json:"index"`
	Strategy      string  `json:"strategy"`
	DelayUS       float64 `json:"delay_us"`
	SizeBytes     int     `json:"size_bytes"`
	IRQ           string  `json:"irq"`
	Queues        int     `json:"queues"`
	Seed          uint64  `json:"seed"`
	SleepDisabled bool    `json:"sleep_disabled"`
	// Nodes is the effective cluster size of the point (after raising for
	// background streams); BgStreams the background-load axis value.
	Nodes     int `json:"nodes"`
	BgStreams int `json:"bg_streams"`
	// DropProb and Burst echo the loss-scenario axes (0 = clean point).
	DropProb float64 `json:"drop_prob"`
	Burst    float64 `json:"burst"`

	// LatencyNS is the mean one-way ping-pong transfer time in virtual ns.
	LatencyNS int64 `json:"latency_ns"`
	// Interrupts counts interrupts on both NICs over the whole ping-pong;
	// IntrPerMsg divides by the number of messages exchanged.
	Interrupts uint64  `json:"interrupts"`
	IntrPerMsg float64 `json:"intr_per_msg"`
	// RateMsgPerSec and RateIntrPerSec are only measured when Grid.Rate is
	// on; the keys are always present so every point shares one schema.
	RateMsgPerSec  float64 `json:"rate_msg_per_sec"`
	RateIntrPerSec float64 `json:"rate_intr_per_sec"`
	// Retransmits, Backoffs and GiveUps sum the protocol-robustness
	// counters over every node of the latency measurement's cluster —
	// how hard the reliability layer worked at this point.
	Retransmits uint64 `json:"retransmits"`
	Backoffs    uint64 `json:"backoffs"`
	GiveUps     uint64 `json:"give_ups"`
	PullRetries uint64 `json:"pull_retries"`
	// FeedbackSteps counts the closed-loop coalescer's delay adjustments
	// over the point (0 unless the point runs the feedback strategy) —
	// the telemetry the service streams alongside each result.
	FeedbackSteps uint64 `json:"feedback_steps"`
	// FeedbackClamps counts controller walks absorbed by the delay clamp
	// (the controller hit its [min,max] wall and could not move).
	FeedbackClamps uint64 `json:"feedback_clamps"`
	// Series is the point's virtual-time metric series, present only when
	// Grid.Sample is set (JSON only; the flat CSV schema stays scalar).
	Series []trace.Sample `json:"series,omitempty"`
	// Err is set when the point failed instead of measuring.
	Err string `json:"error,omitempty"`
}

// Results is an ordered sweep outcome (grid-expansion order).
type Results []Result

// JSON renders the results as indented JSON. The encoding is fully
// deterministic: equal grids and seeds yield byte-identical output
// regardless of how many workers produced them.
func (rs Results) JSON() ([]byte, error) {
	return json.MarshalIndent(rs, "", "  ")
}

// WriteJSON writes the JSON form followed by a newline.
func (rs Results) WriteJSON(w io.Writer) error {
	b, err := rs.JSON()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// csvHeader names the CSV columns, in Result field order.
var csvHeader = []string{
	"index", "strategy", "delay_us", "size_bytes", "irq", "queues", "seed",
	"sleep_disabled", "nodes", "bg_streams", "drop_prob", "burst",
	"latency_ns", "interrupts", "intr_per_msg", "rate_msg_per_sec",
	"rate_intr_per_sec", "retransmits", "backoffs", "give_ups",
	"pull_retries", "feedback_steps", "feedback_clamps", "error",
}

// WriteCSV writes the results as comma-separated values with a header row.
func (rs Results) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, r := range rs {
		cells := []string{
			strconv.Itoa(r.Index), r.Strategy, f(r.DelayUS),
			strconv.Itoa(r.SizeBytes), r.IRQ, strconv.Itoa(r.Queues),
			strconv.FormatUint(r.Seed, 10), strconv.FormatBool(r.SleepDisabled),
			strconv.Itoa(r.Nodes), strconv.Itoa(r.BgStreams),
			f(r.DropProb), f(r.Burst),
			strconv.FormatInt(r.LatencyNS, 10),
			strconv.FormatUint(r.Interrupts, 10), f(r.IntrPerMsg),
			f(r.RateMsgPerSec), f(r.RateIntrPerSec),
			strconv.FormatUint(r.Retransmits, 10),
			strconv.FormatUint(r.Backoffs, 10),
			strconv.FormatUint(r.GiveUps, 10),
			strconv.FormatUint(r.PullRetries, 10),
			strconv.FormatUint(r.FeedbackSteps, 10),
			strconv.FormatUint(r.FeedbackClamps, 10),
			r.Err,
		}
		if err := cw.Write(cells); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSV renders the results as a CSV string.
func (rs Results) CSV() string {
	var b strings.Builder
	if err := rs.WriteCSV(&b); err != nil {
		return fmt.Sprintf("error: %v", err)
	}
	return b.String()
}
