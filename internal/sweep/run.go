package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"openmxsim/internal/fabric"
	"openmxsim/internal/sim"
	"openmxsim/internal/trace"
)

// Observer receives each point's result the moment its simulation
// completes. It is invoked from the worker goroutines, concurrently and
// in completion order (not grid order); implementations must be safe for
// concurrent use. A nil Observer is ignored.
type Observer func(Result)

// Run expands the grid and executes every point on a pool of workers
// (workers <= 0 means GOMAXPROCS). Each point builds its own clusters from
// its own seed, so points never share state and the pool is free to run
// them in any order; the returned slice is nevertheless always in grid
// order. A point that fails records its error in Result.Err instead of
// aborting the sweep.
func Run(g Grid, workers int) (Results, error) {
	return RunContext(context.Background(), g, workers, nil)
}

// RunContext is Run under external supervision: ctx cancellation (or
// deadline expiry) is checked between points only — a point that has
// started always finishes, so every completed result is bit-identical to
// the same point of an uncancelled run. On cancellation the full-length
// result slice still comes back in grid order: completed points carry
// their measurements, unstarted points carry the cancellation cause in
// Result.Err, and the returned error wraps ctx's error (errors.Is
// against context.Canceled / DeadlineExceeded works). obs, when non-nil,
// observes every completed result as it lands (see Observer).
func RunContext(ctx context.Context, g Grid, workers int, obs Observer) (Results, error) {
	g = g.normalized()
	pts := g.Points() // never empty: normalized() fills every axis
	// Rejections mirror cluster.Config.Validate's shape — "invalid <field>
	// <value>: want <range>" — so a bad axis value in a wide grid is
	// pinpointed by value, not hunted by position.
	for _, p := range pts {
		if p.Size < 0 {
			return nil, fmt.Errorf("sweep: point %d: invalid message size %d B: want >= 0", p.Index, p.Size)
		}
		if p.BgStreams < 0 {
			return nil, fmt.Errorf("sweep: point %d: invalid background stream count %d: want >= 0", p.Index, p.BgStreams)
		}
		// normalized() fills an empty Nodes axis with the default, so any
		// sub-2 value here was explicit user input, not "unset".
		if p.Nodes < 2 {
			return nil, fmt.Errorf("sweep: point %d: invalid node count %d: want >= 2 (the ping-pong needs two nodes)", p.Index, p.Nodes)
		}
		if p.DropProb < 0 || p.DropProb >= 1 {
			return nil, fmt.Errorf("sweep: point %d: invalid drop probability %g: want [0,1)", p.Index, p.DropProb)
		}
		if p.Burst < 0 {
			return nil, fmt.Errorf("sweep: point %d: invalid burst length %g: want >= 0", p.Index, p.Burst)
		}
		if err := p.Config().Validate(); err != nil {
			return nil, fmt.Errorf("sweep: point %d: %w", p.Index, err)
		}
	}
	workers = workerBudget(workers, g.Par, len(pts))
	if g.Trace != nil {
		// A shared event recorder claims one run index per point; a single
		// worker keeps that claim order equal to grid order, so trace
		// bytes are deterministic (results were order-independent anyway).
		workers = 1
	}

	results := make(Results, len(pts))
	// The jobs channel is buffered to the full point count and filled
	// before any worker starts: dispatch is a single non-blocking drain, so
	// a worker never stalls on handoff with a producer goroutine (an
	// unbuffered channel would serialize every job with the producer's
	// send, which dominates short points on wide machines).
	jobs := make(chan int, len(pts))
	for i := range pts {
		jobs <- i
	}
	close(jobs)
	// done[i] flags points that actually ran (each index is claimed by
	// exactly one worker, so plain bool writes never race); completed
	// counts them for the cancellation error.
	done := make([]bool, len(pts))
	var completed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker reusable scratch: runPoint needs a one-element
			// size slice per point; reusing the worker's buffer keeps the
			// dispatch loop allocation-free.
			var scratch pointScratch
			for i := range jobs {
				// The supervision seam: cancellation is observed here,
				// between points, never inside one — the worker abandons
				// the rest of its queue and the started points' results
				// stay untouched.
				if ctx.Err() != nil {
					return
				}
				results[i] = runPoint(g, pts[i], &scratch)
				done[i] = true
				completed.Add(1)
				if obs != nil {
					obs(results[i])
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		for i, p := range pts {
			if !done[i] {
				results[i] = cancelledResult(g, p, err)
			}
		}
		return results, fmt.Errorf("sweep: cancelled after %d of %d points: %w",
			completed.Load(), len(pts), err)
	}
	return results, nil
}

// cancelledResult is the placeholder for a point the supervision seam
// skipped: the point's coordinates with the cancellation cause in Err, so
// partial result sets stay full-length, grid-ordered, and self-describing.
func cancelledResult(g Grid, p Point, cause error) Result {
	cfg := p.Config()
	return Result{
		Index:         p.Index,
		Strategy:      p.Strategy.String(),
		DelayUS:       float64(p.Delay) / float64(sim.Microsecond),
		SizeBytes:     p.Size,
		IRQ:           p.IRQ.String(),
		Queues:        p.Queues,
		Seed:          p.Seed,
		SleepDisabled: p.SleepDisabled,
		Nodes:         cfg.Nodes,
		BgStreams:     p.BgStreams,
		DropProb:      p.DropProb,
		Burst:         p.Burst,
		Err:           fmt.Sprintf("cancelled: %v", cause),
	}
}

// workerBudget resolves the worker-pool size: non-positive means
// GOMAXPROCS, and the pool never exceeds the point count. Each worker
// drives up to par simulation goroutines, so the real concurrency is
// workers x par; when par > 1 the pool shrinks so the product stays within
// the machine rather than letting the two knobs silently multiply past it
// (oversubscription slows every point's barrier windows at once).
func workerBudget(workers, par, points int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if par > 1 {
		if cap := runtime.GOMAXPROCS(0) / par; workers > cap {
			workers = cap
		}
	}
	if workers > points {
		workers = points
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Workers reports the worker-pool size Run will use for this grid and
// requested worker count (omxsweep's banner mirrors it).
func (g Grid) Workers(workers int) int {
	g = g.normalized()
	return workerBudget(workers, g.Par, g.Size())
}

// pointScratch is per-worker reusable state for runPoint. Workers own one
// each, so nothing here is shared or locked.
type pointScratch struct {
	sizes [1]int
}

// runPoint executes one point: a ping-pong latency measurement, and
// optionally a unidirectional message-rate measurement on a second
// cluster. A panic inside the simulator is converted into Result.Err so a
// single bad point cannot take down a long sweep.
func runPoint(g Grid, p Point, scratch *pointScratch) (res Result) {
	cfg := p.Config()
	cfg.Parallelism = g.Par
	if g.QFrames > 0 {
		cfg.Topology = fabric.Topology{
			Kind:              fabric.TopologyOutputQueued,
			EgressQueueFrames: g.QFrames,
		}
	}
	res = Result{
		Index:         p.Index,
		Strategy:      p.Strategy.String(),
		DelayUS:       float64(p.Delay) / float64(sim.Microsecond),
		SizeBytes:     p.Size,
		IRQ:           p.IRQ.String(),
		Queues:        p.Queues,
		Seed:          p.Seed,
		SleepDisabled: p.SleepDisabled,
		Nodes:         cfg.Nodes, // effective count, after the bg raise
		BgStreams:     p.BgStreams,
		DropProb:      p.DropProb,
		Burst:         p.Burst,
	}
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Sprintf("panic: %v", r)
		}
	}()

	// Telemetry: a shared event recorder (g.Trace) records every cluster
	// the point builds; a sampling-only grid gives each point its own
	// recorder, so concurrent workers never share one.
	rec := g.Trace
	runIdx := 0
	if rec != nil {
		runIdx = rec.Runs()
	} else if g.Sample > 0 {
		rec = trace.New(trace.Config{SampleEvery: g.Sample})
	}
	cfg.Trace = rec

	scratch.sizes[0] = p.Size
	out, err := RunPingPongLoadedOutcome(cfg, scratch.sizes[:], g.Iters, Background{Streams: p.BgStreams})
	res.Retransmits = out.Proto.Retransmits
	res.Backoffs = out.Proto.Backoffs
	res.GiveUps = out.Proto.GiveUps
	res.PullRetries = out.Proto.PullRetries
	res.FeedbackSteps = out.Proto.FeedbackSteps
	res.FeedbackClamps = out.Proto.FeedbackClamps
	if g.Sample > 0 {
		// Rezero the run index: a point's series is self-contained, and
		// the payload must not depend on whether a shared event recorder
		// (whose run counter spans the whole sweep) happened to be on.
		series := rec.RunSamples(runIdx)
		for i := range series {
			series[i].Run = 0
		}
		res.Series = series
	}
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.LatencyNS = int64(out.Latency[p.Size])
	res.Interrupts = out.Interrupts
	if msgs := out.Messages; msgs > 0 {
		res.IntrPerMsg = float64(out.Interrupts) / float64(msgs)
	}

	if g.Rate {
		sr := RunStream(StreamSpec{
			Cluster: cfg, Size: p.Size,
			Warmup: g.RateWarmup, Measure: g.RateMeasure,
		})
		res.RateMsgPerSec = sr.Rate
		res.RateIntrPerSec = sr.IntrRate
	}
	return res
}
