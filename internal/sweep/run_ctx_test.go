package sweep

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"openmxsim/internal/nic"
	"openmxsim/internal/sim"
)

// TestRunContextCancelMidSweep is the supervision-seam proof: cancelling
// a sweep between points returns promptly with a full-length, grid-ordered
// result set in which completed points carry real measurements (bit-
// identical to an uncancelled run) and skipped points carry the
// cancellation cause — the worker pool never hangs and never starts a new
// point after the cancel.
func TestRunContextCancelMidSweep(t *testing.T) {
	g := Grid{
		Strategies: []nic.Strategy{nic.StrategyTimeout},
		Delays:     []sim.Time{25 * sim.Microsecond, 75 * sim.Microsecond},
		Sizes:      []int{1, 128, 4096},
		Seeds:      []uint64{1, 7},
		Iters:      3,
	}
	full, err := Run(g, 1)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// Cancel as soon as the first result lands: on a single worker the
	// remaining points must all be skipped.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var observed atomic.Int64
	done := make(chan struct{})
	var partial Results
	var perr error
	go func() {
		defer close(done)
		partial, perr = RunContext(ctx, g, 1, func(Result) {
			if observed.Add(1) == 1 {
				cancel()
			}
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled sweep did not return: worker pool hung")
	}

	if perr == nil || !errors.Is(perr, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled in the chain", perr)
	}
	if len(partial) != len(full) {
		t.Fatalf("partial result length %d, want full grid length %d", len(partial), len(full))
	}
	ran, skipped := 0, 0
	for i, r := range partial {
		if r.Index != i {
			t.Errorf("result %d carries index %d", i, r.Index)
		}
		if strings.HasPrefix(r.Err, "cancelled: ") {
			skipped++
			if r.Strategy == "" || r.Seed == 0 {
				t.Errorf("skipped point %d lost its coordinates: %+v", i, r)
			}
			continue
		}
		ran++
		// reflect.DeepEqual: Result grew a series slice, so == no longer
		// compiles; the identity check stays exhaustive.
		if !reflect.DeepEqual(r, full[i]) {
			t.Errorf("completed point %d differs from the uncancelled run:\n got %+v\nwant %+v", i, r, full[i])
		}
	}
	if ran == 0 || skipped == 0 {
		t.Fatalf("ran=%d skipped=%d: the cancel landed outside the sweep (want a genuine partial)", ran, skipped)
	}
	if n := int(observed.Load()); n != ran {
		t.Errorf("observer saw %d results, %d points completed", n, ran)
	}
}

// TestRunContextPreCancelled pins the degenerate case: an already-dead
// context runs nothing, and every point reports the cause.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := Grid{Sizes: []int{1, 128}, Iters: 2}
	rs, err := RunContext(ctx, g, 4, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if len(rs) != g.Size() {
		t.Fatalf("got %d results, want %d", len(rs), g.Size())
	}
	for i, r := range rs {
		if !strings.HasPrefix(r.Err, "cancelled: ") {
			t.Errorf("point %d ran under a cancelled context (err %q)", i, r.Err)
		}
	}
}

// TestCanonicalGrid pins the cache-key form: equivalent spellings of the
// same sweep canonicalize identically, and the machine-shaped Par knob
// never reaches the key.
func TestCanonicalGrid(t *testing.T) {
	a := Grid{Sizes: []int{128}}.Canonical()
	b := Grid{Sizes: []int{128}, Par: 8, Iters: 30}.Canonical()
	if a.Par != 0 || b.Par != 0 {
		t.Errorf("Canonical kept Par: %d, %d (want 0, 0)", a.Par, b.Par)
	}
	if a.Iters != b.Iters || len(a.Strategies) != len(b.Strategies) {
		t.Errorf("equivalent grids canonicalized differently: %+v vs %+v", a, b)
	}
}
