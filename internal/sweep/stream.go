package sweep

import (
	"openmxsim/internal/cluster"
	"openmxsim/internal/omx"
	"openmxsim/internal/sim"
)

// StreamSpec describes a unidirectional message-rate measurement: a sender
// on node 0 keeps `Chains` back-to-back send chains running toward a
// receiver on node 1, which reposts wildcard receives. The receiver side
// is where interrupts matter (the paper's Table I is measured there).
// This is the canonical stream harness; the experiment runners in
// internal/exp delegate to it.
type StreamSpec struct {
	Cluster cluster.Config
	Size    int
	// Chains <= 0 picks the default: 8 concurrent chains, dropping to 4
	// above 256 KiB where fewer large pulls already saturate the link.
	Chains  int
	Warmup  sim.Time
	Measure sim.Time
}

// StreamResult is the receiver-side outcome of a stream measurement.
type StreamResult struct {
	// Rate is messages per second completed at the receiving application
	// during the measurement window.
	Rate float64
	// Interrupts and IntrRate cover the receiver NIC in the window.
	Interrupts uint64
	IntrRate   float64
	// Wakeups on the receiving host in the window.
	Wakeups uint64
	// Received is the raw message count in the window.
	Received int
}

// RunStream builds a cluster from the spec and runs the measurement.
func RunStream(spec StreamSpec) StreamResult {
	if spec.Chains <= 0 {
		spec.Chains = 8
		if spec.Size > 256<<10 {
			spec.Chains = 4
		}
	}
	cl := cluster.New(spec.Cluster)
	// Application processes pinned away from the default IRQ core. Like
	// the paper's benchmark processes, they wait in blocking mode, so
	// their cores enter C1E between message batches and pay the wake-up
	// penalty — the dominant effect behind Fig. 4's sleep curves.
	snd := cl.Stacks[0].Open(0, cl.Hosts[0].Cores[1])
	rcv := cl.Stacks[1].Open(0, cl.Hosts[1].Cores[1])

	received := 0
	// One completion closure reposts itself, so the steady-state receive
	// loop allocates only the handle Irecv returns.
	var onRecv func(*omx.RecvHandle)
	onRecv = func(*omx.RecvHandle) {
		received++
		rcv.Irecv(0, 0, nil, spec.Size, onRecv)
	}
	repost := func() { rcv.Irecv(0, 0, nil, spec.Size, onRecv) }
	dst := rcv.Addr()
	var chain func()
	chain = func() { snd.Isend(dst, 1, nil, spec.Size, chain) }

	// Receiver preposts and sender chains start on their own nodes' shard
	// engines (the same engine, in the same order, when unsharded).
	cl.ScheduleOn(1, 0, func() {
		for i := 0; i < 192; i++ {
			repost()
		}
	})
	cl.ScheduleOn(0, 0, func() {
		for i := 0; i < spec.Chains; i++ {
			chain()
		}
	})

	got, intr, wake := measureWindow(cl, 1, spec.Warmup, spec.Measure, &received)
	secs := float64(spec.Measure) / 1e9
	return StreamResult{
		Rate:       float64(got) / secs,
		Interrupts: intr,
		IntrRate:   float64(intr) / secs,
		Wakeups:    wake,
		Received:   got,
	}
}

// measureWindow runs the cluster through warmup+measure virtual time and
// returns the receiving node's message/interrupt/wakeup deltas over the
// measurement window (shared by the stream and incast harnesses). The
// start-of-window snapshot runs on the measured node's shard, so it reads
// that node's counters (and the harness's received counter, which only that
// node's events touch) without crossing shards; the end-of-window reads
// happen after RunUntil, with every shard quiesced at the same instant.
func measureWindow(cl *cluster.Cluster, node int, warmup, measure sim.Time, received *int) (got int, intr, wake uint64) {
	var startCount int
	var startIntr, startWake uint64
	cl.ScheduleOn(node, warmup, func() {
		startCount = *received
		startIntr = cl.NICs[node].Stats.Interrupts
		startWake = cl.Hosts[node].Stats().Wakeups
	})
	cl.RunUntil(warmup + measure)
	return *received - startCount,
		cl.NICs[node].Stats.Interrupts - startIntr,
		cl.Hosts[node].Stats().Wakeups - startWake
}
