// Package sweep turns the one-shot simulator into a parameter-sweep
// platform: it expands cartesian grids over the paper's tuning axes
// (coalescing strategy, coalescing delay, message size, IRQ routing, queue
// count, seed) into independent jobs, runs them on a bounded worker pool —
// every simulation is deterministic and self-contained, so the sweep is
// embarrassingly parallel — and collects machine-readable results.
//
// Result ordering is deterministic: results come back in grid-expansion
// order regardless of worker count or completion order, so equal grids and
// seeds produce byte-identical JSON whether run serially or on all cores.
package sweep

import (
	"runtime"

	"openmxsim/internal/chaos"
	"openmxsim/internal/cluster"
	"openmxsim/internal/host"
	"openmxsim/internal/nic"
	"openmxsim/internal/sim"
	"openmxsim/internal/trace"
)

// Grid describes a cartesian parameter space. Empty axes default to the
// paper platform's value for that axis, so the zero Grid expands to the
// single default point (timeout coalescing at 75 us, 128 B messages,
// round-robin IRQs, one queue, seed 1).
type Grid struct {
	// Strategies is the NIC coalescing strategy axis.
	Strategies []nic.Strategy
	// Delays is the coalescing-delay axis (ignored by StrategyDisabled,
	// which is still expanded literally so delay columns stay rectangular).
	Delays []sim.Time
	// Sizes is the message-size axis in bytes.
	Sizes []int
	// IRQ is the interrupt-routing axis.
	IRQ []host.IRQPolicy
	// Queues is the NIC receive-queue-count axis (multiqueue extension).
	Queues []int
	// Seeds is the simulation-seed axis.
	Seeds []uint64
	// SleepDisabled optionally sweeps the C1E idle-sleep switch
	// (false = sleep possible, the platform default).
	SleepDisabled []bool
	// Nodes is the cluster-size axis (default 2, the paper's testbed).
	// The ping-pong still runs between nodes 0 and 1; extra nodes carry
	// background load when the BgStreams axis is non-zero.
	Nodes []int
	// BgStreams is the background-load axis: the number of bulk senders
	// (one per extra node) congesting the ping-pong receiver's port. A
	// point's node count is raised to 2+streams when too small.
	BgStreams []int
	// DropProb is the loss-rate axis: a point with DropProb > 0 runs
	// under a Gilbert–Elliott loss scenario (chaos.Bursty) with this
	// stationary drop probability, seeded from the point's seed. 0 (the
	// default) installs no scenario at all, keeping clean points
	// bit-identical to pre-resilience sweeps.
	DropProb []float64
	// Burst is the mean loss-burst-length axis paired with DropProb:
	// values > 1 cluster the losses into bursts of that mean length;
	// <= 1 is uniform (Bernoulli) loss. Ignored at DropProb 0.
	Burst []float64

	// Iters is the ping-pong iteration count per point (default 30).
	Iters int
	// Rate additionally measures the unidirectional message rate at every
	// point (a second cluster per point; roughly doubles the cost). The
	// rate stream runs unloaded — the BgStreams axis applies to the
	// ping-pong latency measurement only — so rate columns isolate the
	// strategy/delay axes at any background level.
	Rate bool
	// RateWarmup and RateMeasure bound the rate measurement windows
	// (defaults 10 ms and 50 ms of virtual time, matching the single-shot
	// MessageRate harness in internal/exp).
	RateWarmup, RateMeasure sim.Time
	// Par is the per-point simulation parallelism (cluster.Config
	// .Parallelism): every point's cluster shards across this many engines.
	// normalized clamps it to [1, NumCPU], and Run shrinks its worker pool
	// so workers x Par never oversubscribes the machine. For wide grids of
	// small points the default (1) is optimal — cross-point workers beat
	// intra-point sharding; Par earns its keep on grids of few, large
	// (many-node, congested) points.
	Par int
	// QFrames, when positive, swaps every point's fabric to the bounded
	// output-queued topology with this egress queue depth (omxsim's
	// -qframes knob). Par > 1 needs it to engage: the ideal direct
	// topology has zero wire lookahead, so sharded clusters fall back to
	// the serial reference engine.
	QFrames int
	// Sample, when positive, records a virtual-time metric series at this
	// interval during every point's latency measurement and attaches it as
	// Result.Series. Part of the canonical grid: sampling changes the
	// result payload, so sampled and unsampled sweeps must not share a
	// cache key.
	Sample sim.Time
	// Trace, when non-nil, additionally records every point's discrete
	// event timeline into this recorder (one run per point, in
	// grid-expansion order). An execution knob, not part of the payload:
	// Run forces a single worker so run indices follow point order, and
	// callers writing trace files must bypass result caches themselves.
	Trace *trace.Recorder `json:"-"`
}

// Point is one fully-specified configuration of the grid.
type Point struct {
	Index         int
	Strategy      nic.Strategy
	Delay         sim.Time
	Size          int
	IRQ           host.IRQPolicy
	Queues        int
	Seed          uint64
	SleepDisabled bool
	Nodes         int
	BgStreams     int
	DropProb      float64
	Burst         float64
}

// Config builds the cluster configuration for the point: the paper
// platform with this point's knobs applied.
func (p Point) Config() cluster.Config {
	cfg := cluster.Paper()
	cfg.Strategy = p.Strategy
	cfg.CoalesceDelay = p.Delay
	cfg.IRQPolicy = p.IRQ
	cfg.Queues = p.Queues
	cfg.Seed = p.Seed
	cfg.SleepDisabled = p.SleepDisabled
	if p.Nodes > 0 {
		cfg.Nodes = p.Nodes
	}
	if min := 2 + p.BgStreams; cfg.Nodes < min {
		cfg.Nodes = min // background senders need a node each
	}
	if p.DropProb > 0 {
		cfg.Scenario = &chaos.Scenario{
			Loss: chaos.Bursty(p.DropProb, p.Burst),
			Seed: p.Seed,
		}
	}
	return cfg
}

// normalized returns a copy of g with every empty axis replaced by its
// paper-platform default.
func (g Grid) normalized() Grid {
	def := cluster.Paper()
	if len(g.Strategies) == 0 {
		g.Strategies = []nic.Strategy{def.Strategy}
	}
	if len(g.Delays) == 0 {
		g.Delays = []sim.Time{def.CoalesceDelay}
	}
	if len(g.Sizes) == 0 {
		g.Sizes = []int{128}
	}
	if len(g.IRQ) == 0 {
		g.IRQ = []host.IRQPolicy{host.IRQRoundRobin}
	}
	if len(g.Queues) == 0 {
		g.Queues = []int{1}
	}
	if len(g.Seeds) == 0 {
		g.Seeds = []uint64{def.Seed}
	}
	if len(g.SleepDisabled) == 0 {
		g.SleepDisabled = []bool{false}
	}
	if len(g.Nodes) == 0 {
		g.Nodes = []int{def.Nodes}
	}
	if len(g.BgStreams) == 0 {
		g.BgStreams = []int{0}
	}
	if len(g.DropProb) == 0 {
		g.DropProb = []float64{0}
	}
	if len(g.Burst) == 0 {
		g.Burst = []float64{0}
	}
	if g.Iters <= 0 {
		g.Iters = 30
	}
	if g.RateWarmup <= 0 {
		g.RateWarmup = 10 * sim.Millisecond
	}
	if g.RateMeasure <= 0 {
		g.RateMeasure = 50 * sim.Millisecond
	}
	// Clamp per-point parallelism to the machine: a zero/negative request
	// means "default" (serial), and more shards than cores can only add
	// barrier overhead, never speed — don't let a misconfigured grid
	// silently oversubscribe.
	if g.Par < 1 {
		g.Par = 1
	}
	if max := runtime.NumCPU(); g.Par > max {
		g.Par = max
	}
	return g
}

// Canonical returns the grid in content-address form: every empty axis
// filled with its default — so equivalent spellings of the same sweep
// collide on one cache key — and the execution-only Par knob cleared,
// because sweep output is bit-identical at any parallelism and worker
// count and must not split a result cache by machine shape.
func (g Grid) Canonical() Grid {
	g = g.normalized()
	g.Par = 0
	g.Trace = nil
	return g
}

// Size returns the number of points the grid expands to.
func (g Grid) Size() int {
	g = g.normalized()
	return len(g.Strategies) * len(g.Delays) * len(g.Sizes) *
		len(g.IRQ) * len(g.Queues) * len(g.Seeds) * len(g.SleepDisabled) *
		len(g.Nodes) * len(g.BgStreams) * len(g.DropProb) * len(g.Burst)
}

// Points expands the cartesian product in deterministic order: seed
// outermost, then strategy, delay, size, IRQ policy, queue count, sleep,
// node count, background streams, drop probability, burst length.
func (g Grid) Points() []Point {
	g = g.normalized()
	pts := make([]Point, 0, g.Size())
	for _, seed := range g.Seeds {
		for _, st := range g.Strategies {
			for _, d := range g.Delays {
				for _, size := range g.Sizes {
					for _, irq := range g.IRQ {
						for _, q := range g.Queues {
							for _, sl := range g.SleepDisabled {
								for _, nodes := range g.Nodes {
									for _, bg := range g.BgStreams {
										for _, dp := range g.DropProb {
											for _, bu := range g.Burst {
												pts = append(pts, Point{
													Index:         len(pts),
													Strategy:      st,
													Delay:         d,
													Size:          size,
													IRQ:           irq,
													Queues:        q,
													Seed:          seed,
													SleepDisabled: sl,
													Nodes:         nodes,
													BgStreams:     bg,
													DropProb:      dp,
													Burst:         bu,
												})
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return pts
}
