package sweep

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"testing"

	"openmxsim/internal/host"
	"openmxsim/internal/nic"
	"openmxsim/internal/sim"
)

func testGrid() Grid {
	return Grid{
		Strategies: []nic.Strategy{nic.StrategyDisabled, nic.StrategyTimeout, nic.StrategyOpenMX},
		Delays:     []sim.Time{25 * sim.Microsecond, 75 * sim.Microsecond},
		Sizes:      []int{1, 4 << 10},
		Iters:      5,
	}
}

func TestGridExpansion(t *testing.T) {
	g := testGrid()
	pts := g.Points()
	if len(pts) != g.Size() || len(pts) != 12 {
		t.Fatalf("expanded %d points, Size() = %d, want 12", len(pts), g.Size())
	}
	for i, p := range pts {
		if p.Index != i {
			t.Errorf("point %d carries index %d", i, p.Index)
		}
	}
	// The zero grid is the single paper-default point.
	var zero Grid
	pts = zero.Points()
	if len(pts) != 1 {
		t.Fatalf("zero grid expanded to %d points", len(pts))
	}
	cfg := pts[0].Config()
	if cfg.Strategy != nic.StrategyTimeout || cfg.CoalesceDelay != 75*sim.Microsecond ||
		cfg.IRQPolicy != host.IRQRoundRobin || cfg.Seed != 1 {
		t.Errorf("zero-grid point is not the paper default: %+v", cfg)
	}
}

// TestGridNormalizedEdgeCases pins the zero/negative handling of the
// scalar grid fields feeding Validate: non-positive Iters and rate
// windows must come back as the documented defaults, never zero (a zero
// measurement window would divide by zero downstream), and every axis of
// the zero grid must be filled so the expanded point validates.
func TestGridNormalizedEdgeCases(t *testing.T) {
	cases := []Grid{
		{},
		{Iters: 0, RateWarmup: 0, RateMeasure: 0},
		{Iters: -3, RateWarmup: -sim.Millisecond, RateMeasure: -sim.Second},
	}
	for i, g := range cases {
		n := g.normalized()
		if n.Iters != 30 {
			t.Errorf("case %d: Iters = %d, want 30", i, n.Iters)
		}
		if n.RateWarmup != 10*sim.Millisecond || n.RateMeasure != 50*sim.Millisecond {
			t.Errorf("case %d: rate windows = %v/%v, want 10ms/50ms", i, n.RateWarmup, n.RateMeasure)
		}
		for axis, size := range map[string]int{
			"Strategies": len(n.Strategies), "Delays": len(n.Delays),
			"Sizes": len(n.Sizes), "IRQ": len(n.IRQ), "Queues": len(n.Queues),
			"Seeds": len(n.Seeds), "SleepDisabled": len(n.SleepDisabled),
			"Nodes": len(n.Nodes), "BgStreams": len(n.BgStreams),
		} {
			if size != 1 {
				t.Errorf("case %d: axis %s has %d defaults, want 1", i, axis, size)
			}
		}
		for _, p := range n.Points() {
			if err := p.Config().Validate(); err != nil {
				t.Errorf("case %d: normalized point does not validate: %v", i, err)
			}
		}
	}
	// Explicit axis values — including invalid ones — survive
	// normalization untouched; rejection is Run's job, not normalized's.
	g := Grid{Sizes: []int{-5}, Nodes: []int{1}}.normalized()
	if g.Sizes[0] != -5 || g.Nodes[0] != 1 {
		t.Errorf("normalized rewrote explicit values: %+v", g)
	}
}

// TestBackgroundNormalizedEdgeCases pins Background's zero/negative
// handling: Size and Chains come back at their documented defaults while
// an explicit positive value survives, and Streams passes through for
// RunPingPongLoaded to gate on.
func TestBackgroundNormalizedEdgeCases(t *testing.T) {
	for i, b := range []Background{{}, {Size: 0, Chains: 0}, {Size: -64 << 10, Chains: -2}} {
		n := b.normalized()
		if n.Size != 64<<10 {
			t.Errorf("case %d: Size = %d, want 64KiB", i, n.Size)
		}
		if n.Chains != 1 {
			t.Errorf("case %d: Chains = %d, want 1", i, n.Chains)
		}
	}
	n := Background{Streams: 3, Size: 4096, Chains: 2}.normalized()
	if n.Streams != 3 || n.Size != 4096 || n.Chains != 2 {
		t.Errorf("normalized rewrote explicit values: %+v", n)
	}
}

// TestGridParClamp pins the parallelism clamp in normalized: zero and
// negative requests mean the serial default, anything beyond the machine's
// core count is pulled back to NumCPU, and in-range values survive.
func TestGridParClamp(t *testing.T) {
	ncpu := runtime.NumCPU()
	for _, tc := range []struct{ in, want int }{
		{0, 1},
		{-4, 1},
		{1, 1},
		{ncpu, ncpu},
		{ncpu + 1, ncpu},
		{8 * ncpu, ncpu},
	} {
		if got := (Grid{Par: tc.in}).normalized().Par; got != tc.want {
			t.Errorf("Par %d normalized to %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestWorkerBudget pins the workers x par oversubscription clamp: an
// explicit worker count survives at par 1 (users may oversubscribe on
// purpose), but any par > 1 shrinks the pool so the product stays within
// GOMAXPROCS, and the result never leaves [1, points].
func TestWorkerBudget(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	if got := workerBudget(6, 1, 100); got != 6 {
		t.Errorf("explicit workers=6 par=1 became %d", got)
	}
	if got, want := workerBudget(0, 1, 1000), min(max, 1000); got != want {
		t.Errorf("default workers = %d, want %d", got, want)
	}
	if got := workerBudget(7, 1, 3); got != 3 {
		t.Errorf("workers not capped at point count: %d", got)
	}
	for _, par := range []int{2, max + 1, 4 * max} {
		got := workerBudget(100, par, 1000)
		if got < 1 {
			t.Fatalf("par %d: budget %d < 1", par, got)
		}
		if got > 1 && got*par > max {
			t.Errorf("par %d: workers %d oversubscribes %d cores", par, got, max)
		}
	}
	if got := workerBudget(-3, 4*max, 50); got != 1 {
		t.Errorf("overcommitted par must degrade to 1 worker, got %d", got)
	}
}

func TestRunRejectsInvalidGrid(t *testing.T) {
	g := Grid{Queues: []int{-1}}
	if _, err := Run(g, 1); err == nil {
		t.Fatal("negative queue count accepted")
	}
}

// TestDeterministicAcrossWorkerCounts is the sweep contract: the same grid
// and seed yield byte-identical JSON regardless of worker count.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	g := testGrid()
	serial, err := Run(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	js, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jp, err := parallel.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js, jp) {
		t.Fatalf("worker count changed the output:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", js, jp)
	}
}

// TestSweepDeterministicAcrossPar is the same contract along the other
// axis: per-point simulation parallelism must not change a byte of output.
// The grid needs the output-queued topology (QFrames) for sharding to
// engage at all, and the rate stream is the harness that actually runs
// sharded (the ping-pong always uses the serial reference).
func TestSweepDeterministicAcrossPar(t *testing.T) {
	g := Grid{
		Sizes:       []int{128, 4 << 10},
		Seeds:       []uint64{1, 7},
		Iters:       3,
		Rate:        true,
		RateWarmup:  2 * sim.Millisecond,
		RateMeasure: 5 * sim.Millisecond,
		QFrames:     64,
	}
	serial, err := Run(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	g.Par = 4
	sharded, err := Run(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	js, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jp, err := sharded.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js, jp) {
		t.Fatalf("parallelism changed the output:\n--- par=1 ---\n%s\n--- par=4 ---\n%s", js, jp)
	}
}

func TestResultsMeasureTheTradeoff(t *testing.T) {
	g := Grid{
		Strategies: []nic.Strategy{nic.StrategyDisabled, nic.StrategyTimeout, nic.StrategyOpenMX},
		Sizes:      []int{128},
		Iters:      8,
	}
	rs, err := Run(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	byStrategy := map[string]Result{}
	for _, r := range rs {
		if r.Err != "" {
			t.Fatalf("point %d failed: %s", r.Index, r.Err)
		}
		if r.LatencyNS <= 0 {
			t.Errorf("point %d: non-positive latency %d", r.Index, r.LatencyNS)
		}
		byStrategy[r.Strategy] = r
	}
	// The paper's headline: timeout coalescing costs ~the delay in latency,
	// disabled costs interrupts, openmx gets both right.
	if byStrategy["disabled"].LatencyNS >= byStrategy["timeout"].LatencyNS {
		t.Errorf("disabled latency %d not below timeout %d",
			byStrategy["disabled"].LatencyNS, byStrategy["timeout"].LatencyNS)
	}
	if byStrategy["openmx"].IntrPerMsg > byStrategy["disabled"].IntrPerMsg {
		t.Errorf("openmx intr/msg %.2f above disabled %.2f",
			byStrategy["openmx"].IntrPerMsg, byStrategy["disabled"].IntrPerMsg)
	}
}

func TestRateMeasurement(t *testing.T) {
	g := Grid{
		Sizes:       []int{128},
		Iters:       4,
		Rate:        true,
		RateWarmup:  2 * sim.Millisecond,
		RateMeasure: 10 * sim.Millisecond,
	}
	rs, err := Run(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].RateMsgPerSec < 10_000 {
		t.Errorf("128B rate %.0f msg/s implausibly low", rs[0].RateMsgPerSec)
	}
}

func TestSerializationShape(t *testing.T) {
	g := Grid{Sizes: []int{1}, Iters: 3}
	rs, err := Run(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rs.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("sweep JSON does not parse: %v", err)
	}
	if len(decoded) != 1 || decoded[0]["strategy"] != "timeout" {
		t.Errorf("unexpected JSON content: %v", decoded)
	}

	csv := rs.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 row", len(lines))
	}
	if got, want := len(strings.Split(lines[1], ",")), len(csvHeader); got != want {
		t.Errorf("CSV row has %d cells, header names %d", got, want)
	}
}

// TestRunValidationMessages pins the rejection style shared with
// cluster.Config.Validate: every message names the offending point, the
// offending value, and the valid range.
func TestRunValidationMessages(t *testing.T) {
	cases := []struct {
		name string
		grid Grid
		want string
	}{
		{"size", Grid{Sizes: []int{-4}}, "invalid message size -4 B: want >= 0"},
		{"bg streams", Grid{BgStreams: []int{-2}}, "invalid background stream count -2: want >= 0"},
		{"nodes", Grid{Nodes: []int{1}}, "invalid node count 1: want >= 2"},
		{"drop prob", Grid{DropProb: []float64{1.5}}, "invalid drop probability 1.5: want [0,1)"},
		{"burst", Grid{DropProb: []float64{0.1}, Burst: []float64{-3}}, "invalid burst length -3: want >= 0"},
		{"queues via config", Grid{Queues: []int{-1}}, "invalid queue count -1: want >= 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(tc.grid, 1)
			if err == nil {
				t.Fatalf("grid accepted: %+v", tc.grid)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
			if !strings.Contains(err.Error(), "point 0") {
				t.Errorf("error %q does not name the offending point", err)
			}
		})
	}
}
