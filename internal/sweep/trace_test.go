package sweep

import (
	"bytes"
	"testing"

	"openmxsim/internal/sim"
	"openmxsim/internal/trace"
)

func sampledGrid() Grid {
	return Grid{
		Strategies: nil, // normalized() fills defaults
		Delays:     []sim.Time{15 * sim.Microsecond},
		Sizes:      []int{128},
		Iters:      5,
		Sample:     200 * sim.Microsecond,
	}
}

// TestSampledPayloadIndependentOfSharedRecorder is the cache-consistency
// gate: a grid with Sample set produces byte-identical Results JSON
// whether each point records privately (parallel pool) or a shared event
// recorder spans the sweep (-trace; single worker, run counter spanning
// all points). Result.Series rezeroes its run index to keep this true.
func TestSampledPayloadIndependentOfSharedRecorder(t *testing.T) {
	g := sampledGrid()
	private, err := Run(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	g2 := sampledGrid()
	g2.Trace = trace.New(trace.Config{Events: true, SampleEvery: g2.Sample})
	shared, err := Run(g2, 4)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := private.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := shared.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("Results JSON differs with a shared recorder attached:\nprivate: %s\nshared:  %s", a.Bytes(), b.Bytes())
	}
	if len(private) == 0 || len(private[0].Series) == 0 {
		t.Fatal("sampling produced no series")
	}
	for _, s := range private[0].Series {
		if s.Run != 0 {
			t.Errorf("series run index not rezeroed: %+v", s)
		}
	}
}

// TestCanonicalKeepsSampleDropsTrace pins the cache-key discipline: the
// sampling interval changes the payload and must survive Canonical; the
// recorder is an execution knob and must not.
func TestCanonicalKeepsSampleDropsTrace(t *testing.T) {
	g := sampledGrid()
	g.Trace = trace.New(trace.Config{Events: true})
	c := g.Canonical()
	if c.Sample != g.Sample {
		t.Errorf("Canonical dropped Sample: %v", c.Sample)
	}
	if c.Trace != nil {
		t.Error("Canonical kept the recorder; equal workloads would miss each other's cache entries")
	}
}
