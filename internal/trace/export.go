package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"openmxsim/internal/sim"
)

// WriteSeriesJSON writes the merged metric series as one JSON array. The
// encoding is fully deterministic: equal runs yield byte-identical output
// at any cluster parallelism.
func (r *Recorder) WriteSeriesJSON(w io.Writer) error {
	samples := r.Samples()
	if samples == nil {
		samples = []Sample{}
	}
	b, err := json.MarshalIndent(samples, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// seriesCSVHeader names the series columns, in Sample field order.
var seriesCSVHeader = []string{
	"run", "t_ns", "node", "interrupts", "coalesce_delay_ns", "packets_in",
	"packets_out", "queue_frames", "port_drops", "ring_drops", "retransmits",
	"backoffs", "give_ups", "pull_retries", "feedback_steps", "feedback_clamps",
}

// WriteSeriesCSV writes the merged metric series as CSV with a header row.
func (r *Recorder) WriteSeriesCSV(w io.Writer) error {
	bw := newLineWriter(w)
	bw.fields(seriesCSVHeader...)
	for _, s := range r.Samples() {
		bw.fields(
			strconv.Itoa(s.Run), strconv.FormatInt(int64(s.At), 10),
			strconv.Itoa(s.Node), strconv.FormatUint(s.Interrupts, 10),
			strconv.FormatInt(s.CoalesceDelayNS, 10),
			strconv.FormatUint(s.PacketsIn, 10),
			strconv.FormatUint(s.PacketsOut, 10),
			strconv.Itoa(s.QueueFrames), strconv.FormatUint(s.PortDrops, 10),
			strconv.FormatUint(s.RingDrops, 10),
			strconv.FormatUint(s.Retransmits, 10),
			strconv.FormatUint(s.Backoffs, 10),
			strconv.FormatUint(s.GiveUps, 10),
			strconv.FormatUint(s.PullRetries, 10),
			strconv.FormatUint(s.FeedbackSteps, 10),
			strconv.FormatUint(s.FeedbackClamps, 10),
		)
	}
	return bw.err
}

// lineWriter is a minimal CSV emitter: every value this package writes is
// numeric or a fixed identifier, so no quoting is ever needed and the
// byte-for-byte output is trivially auditable.
type lineWriter struct {
	w   io.Writer
	err error
}

func newLineWriter(w io.Writer) *lineWriter { return &lineWriter{w: w} }

func (lw *lineWriter) fields(cells ...string) {
	if lw.err != nil {
		return
	}
	for i, c := range cells {
		if i > 0 {
			if _, lw.err = io.WriteString(lw.w, ","); lw.err != nil {
				return
			}
		}
		if _, lw.err = io.WriteString(lw.w, c); lw.err != nil {
			return
		}
	}
	_, lw.err = io.WriteString(lw.w, "\n")
}

// WriteChromeTrace writes the recorded timeline in the Chrome trace-event
// JSON format, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing:
// discrete events become instant events ("ph":"i") and each metric sample
// becomes counter tracks ("ph":"C") for the coalescing delay, the egress
// queue depth, and the cumulative interrupt count. Runs map to pids,
// nodes to tids, and timestamps are virtual microseconds formatted with
// fixed precision, so the bytes are deterministic at any parallelism.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	ew := &errWriter{w: w}
	ew.printf("{\"traceEvents\":[")
	first := true
	sep := func() {
		if first {
			ew.printf("\n")
			first = false
		} else {
			ew.printf(",\n")
		}
	}
	runs := 0
	if r != nil {
		runs = len(r.runs)
	}
	for run := 0; run < runs; run++ {
		sep()
		ew.printf("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"run %d\"}}", run, run)
		for _, rec := range mergeTimeline(r.runs[run].nodes) {
			if rec.ev != nil {
				e := rec.ev
				sep()
				ew.printf("{\"name\":%q,\"cat\":\"sim\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,\"pid\":%d,\"tid\":%d,\"args\":{%s}}",
					e.Name, tsUS(e.At), e.Run, e.Node, eventArgs(*e))
				continue
			}
			s := rec.sm
			sep()
			ew.printf("{\"name\":\"coalesce_delay_us\",\"ph\":\"C\",\"ts\":%s,\"pid\":%d,\"tid\":%d,\"args\":{\"value\":%s}}",
				tsUS(s.At), s.Run, s.Node, tsUS(s.CoalesceDelayNS))
			sep()
			ew.printf("{\"name\":\"queue_frames\",\"ph\":\"C\",\"ts\":%s,\"pid\":%d,\"tid\":%d,\"args\":{\"value\":%d}}",
				tsUS(s.At), s.Run, s.Node, s.QueueFrames)
			sep()
			ew.printf("{\"name\":\"interrupts\",\"ph\":\"C\",\"ts\":%s,\"pid\":%d,\"tid\":%d,\"args\":{\"value\":%d}}",
				tsUS(s.At), s.Run, s.Node, s.Interrupts)
		}
	}
	ew.printf("\n]}\n")
	return ew.err
}

// eventArgs renders an event's argument object.
func eventArgs(e Event) string {
	if e.Kind == EvIRQ && e.Arg >= 0 && int(e.Arg) < len(irqCauseNames) {
		return fmt.Sprintf("\"cause\":%q", irqCauseNames[e.Arg])
	}
	return fmt.Sprintf("\"arg\":%d", e.Arg)
}

// tsUS formats a nanosecond virtual timestamp (or duration) as fixed
// 3-decimal microseconds — never via float printing, whose shortest-form
// rounding would be a determinism hazard hiding in an exporter.
func tsUS[T ~int64](ns T) string {
	return fmt.Sprintf("%d.%03d", int64(ns)/1000, int64(ns)%1000)
}

// timelineRec is one merged element: exactly one of ev/sm is set.
type timelineRec struct {
	ev *Event
	sm *Sample
}

// mergeTimeline interleaves one run's events and samples into the
// canonical (time, node, seq) order. The per-node sequence counter is
// shared between events and samples, so the interleave is total. Node
// order breaks timestamp ties: the scan visits nodes in ascending order
// and only a strictly earlier timestamp displaces the current best.
func mergeTimeline(nodes []*Node) []timelineRec {
	type cursor struct{ ei, si int }
	cur := make([]cursor, len(nodes))
	total := 0
	for _, n := range nodes {
		total += len(n.events) + len(n.samples)
	}
	out := make([]timelineRec, 0, total)
	// head returns node ni's next record timestamp and kind, or ok=false
	// when the node is drained. Within a node the shared seq counter
	// decides event-vs-sample order.
	head := func(ni int) (at sim.Time, isEv bool, ok bool) {
		n, c := nodes[ni], cur[ni]
		hasE, hasS := c.ei < len(n.events), c.si < len(n.samples)
		switch {
		case hasE && (!hasS || n.events[c.ei].seq < n.samples[c.si].seq):
			return n.events[c.ei].At, true, true
		case hasS:
			return n.samples[c.si].At, false, true
		}
		return 0, false, false
	}
	for len(out) < total {
		best := -1
		var bestAt sim.Time
		bestEv := false
		for ni := range nodes {
			at, isEv, ok := head(ni)
			if !ok {
				continue
			}
			if best < 0 || at < bestAt {
				best, bestAt, bestEv = ni, at, isEv
			}
		}
		n := nodes[best]
		if bestEv {
			out = append(out, timelineRec{ev: &n.events[cur[best].ei]})
			cur[best].ei++
		} else {
			out = append(out, timelineRec{sm: &n.samples[cur[best].si]})
			cur[best].si++
		}
	}
	return out
}

// errWriter accumulates the first write error of a formatted dump.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) printf(format string, args ...any) {
	if ew.err != nil {
		return
	}
	_, ew.err = fmt.Fprintf(ew.w, format, args...)
}
