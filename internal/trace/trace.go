// Package trace is the simulator's deterministic observability layer:
// discrete event timelines and virtual-time-sampled metric series for a
// running cluster, recorded without perturbing the simulation.
//
// The recorder lives inside the lint.SimVisible boundary, so everything
// here obeys the determinism rules the reports rest on: no wall clock, no
// ambient randomness, no map iteration, no concurrency primitives.
// Par-safety comes from ownership instead of locks: all recording goes
// through per-node handles (Node), and every emit site for a node — its
// NIC, its Open-MX stack, its egress switch port, its chaos flap markers,
// its sampler — runs on the one shard engine that owns the node. Buffers
// are therefore single-writer by construction, and the exporters merge
// them only at quiescent points (after Run / between RunUntil windows) by
// the shard-layout-independent key (run, time, node, per-node sequence),
// which is why trace bytes are bit-identical at any cluster parallelism.
//
// Recording also never changes what the simulation reports: handles only
// read statistics and append to their own buffers, and the sampler events
// a recorder schedules preserve the relative order of all model events
// (engine sequence numbers shift uniformly; they only break ties between
// events whose relative order is unchanged). With a nil recorder every
// emit site is a nil-receiver no-op that allocates nothing.
package trace

import (
	"openmxsim/internal/sim"
)

// Kind classifies a discrete timeline event.
type Kind uint8

const (
	// EvIRQ is an interrupt actually raised to the host; Arg is the
	// cause (0 = coalescing timeout, 1 = marked packet, 2 = immediate /
	// coalescing disabled).
	EvIRQ Kind = iota
	// EvCoalesceWalk is an effective feedback-controller delay change;
	// Arg is the new delay in ns.
	EvCoalesceWalk
	// EvFeedbackClamp is a controller walk absorbed by the [min,max]
	// clamp; Arg is the (unchanged) delay in ns.
	EvFeedbackClamp
	// EvRingDrop is a frame dropped because the NIC receive ring was
	// full; Arg is the cumulative ring-drop count.
	EvRingDrop
	// EvPortDrop is a drop-tail loss at the node's egress switch port;
	// Arg is the cumulative port-drop count.
	EvPortDrop
	// EvFlapEdge is a chaos-scenario link-flap edge on the node's link;
	// Arg is the edge ordinal (1 = first edge, usually link-down).
	EvFlapEdge
	// EvGiveUp is the reliability layer abandoning an operation after
	// exhausting its retry budget (omx.ErrGiveUp); Arg is the cumulative
	// give-up count.
	EvGiveUp

	kindCount
)

// kindNames are the Chrome-trace event names, indexed by Kind.
var kindNames = [kindCount]string{
	"irq", "coalesce_walk", "feedback_clamp", "ring_drop",
	"port_drop", "flap_edge", "give_up",
}

// String returns the stable exported name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// irqCauseNames label EvIRQ's Arg (mirrors nic's interrupt causes).
var irqCauseNames = [3]string{"timeout", "marked", "immediate"}

// Event is one discrete occurrence on a node's timeline.
type Event struct {
	Run  int      `json:"run"`
	At   sim.Time `json:"t_ns"`
	Node int      `json:"node"`
	Kind Kind     `json:"-"`
	Name string   `json:"event"`
	Arg  int64    `json:"arg"`

	seq uint64 // per-(run,node) emission index, the merge tiebreaker
}

// Sample is one virtual-time sample of a node's gauges and counters.
// Counter fields are cumulative since the run started; CoalesceDelayNS
// and QueueFrames are instantaneous gauges.
type Sample struct {
	Run             int      `json:"run"`
	At              sim.Time `json:"t_ns"`
	Node            int      `json:"node"`
	Interrupts      uint64   `json:"interrupts"`
	CoalesceDelayNS int64    `json:"coalesce_delay_ns"`
	PacketsIn       uint64   `json:"packets_in"`
	PacketsOut      uint64   `json:"packets_out"`
	QueueFrames     int      `json:"queue_frames"`
	PortDrops       uint64   `json:"port_drops"`
	RingDrops       uint64   `json:"ring_drops"`
	Retransmits     uint64   `json:"retransmits"`
	Backoffs        uint64   `json:"backoffs"`
	GiveUps         uint64   `json:"give_ups"`
	PullRetries     uint64   `json:"pull_retries"`
	FeedbackSteps   uint64   `json:"feedback_steps"`
	FeedbackClamps  uint64   `json:"feedback_clamps"`

	seq uint64 // shares the node's emission counter with events
}

// Config selects what a Recorder captures.
type Config struct {
	// SampleEvery is the virtual-time sampling interval; 0 disables the
	// metric series (the cluster then installs no sampler events at all).
	SampleEvery sim.Time
	// Events enables the discrete timeline (EvIRQ, drops, flap edges,
	// give-ups, controller walks).
	Events bool
}

// Recorder collects the telemetry of one or more sequential cluster runs.
// A Recorder is installed via cluster.Config.Trace; each cluster.New
// claims the next run index with Start. Handles write concurrently from
// their owning shards; Start and the exporters must only be called at
// quiescent points (no cluster running), which every harness guarantees
// by construction.
type Recorder struct {
	cfg  Config
	runs []runBuf
}

type runBuf struct {
	nodes []*Node
}

// Node is the per-node recording handle. The zero of the type is never
// used; a nil *Node is the disabled recorder, and every method is a
// nil-receiver no-op so hot paths carry exactly one pointer test.
type Node struct {
	run     int
	node    int
	ev      bool
	seq     uint64
	events  []Event
	samples []Sample
}

// New creates a recorder. A nil return is never needed: callers that
// don't trace simply leave cluster.Config.Trace nil.
func New(cfg Config) *Recorder {
	return &Recorder{cfg: cfg}
}

// SampleEvery returns the configured sampling interval (0 = no series).
func (r *Recorder) SampleEvery() sim.Time {
	if r == nil {
		return 0
	}
	return r.cfg.SampleEvery
}

// Start begins the recorder's next run and returns one handle per node.
// Runs are sequential: the previous run's cluster must be quiescent.
func (r *Recorder) Start(nodes int) []*Node {
	run := len(r.runs)
	hs := make([]*Node, nodes)
	for i := range hs {
		hs[i] = &Node{run: run, node: i, ev: r.cfg.Events}
	}
	r.runs = append(r.runs, runBuf{nodes: hs})
	return hs
}

// Runs returns how many runs the recorder has recorded.
func (r *Recorder) Runs() int {
	if r == nil {
		return 0
	}
	return len(r.runs)
}

// Event appends a discrete event to the node's timeline. Nil-receiver
// no-op; also a no-op when the recorder was configured without Events,
// so samplers can run without paying for a timeline nobody asked for.
func (n *Node) Event(at sim.Time, k Kind, arg int64) {
	if n == nil || !n.ev {
		return
	}
	n.events = append(n.events, Event{
		Run: n.run, At: at, Node: n.node, Kind: k, Name: k.String(),
		Arg: arg, seq: n.seq,
	})
	n.seq++
}

// Sample appends one metric sample to the node's series. s.Run, s.Node
// and the merge sequence are stamped here; callers fill the measurements.
func (n *Node) Sample(s Sample) {
	if n == nil {
		return
	}
	s.Run, s.Node, s.seq = n.run, n.node, n.seq
	n.seq++
	n.samples = append(n.samples, s)
}

// Events returns every recorded event merged across runs and nodes in
// the canonical deterministic order (run, time, node, emission index) —
// independent of shard layout, because each node's stream is recorded in
// its own virtual-time order regardless of which shard owns it.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for _, run := range r.runs {
		out = append(out, mergeEvents(run.nodes)...)
	}
	return out
}

// RunSamples returns one run's merged sample series in canonical order
// (nil for an unknown run index).
func (r *Recorder) RunSamples(run int) []Sample {
	if r == nil || run < 0 || run >= len(r.runs) {
		return nil
	}
	return mergeSamples(r.runs[run].nodes)
}

// Samples returns every recorded sample in canonical order (see Events).
func (r *Recorder) Samples() []Sample {
	if r == nil {
		return nil
	}
	var out []Sample
	for _, run := range r.runs {
		out = append(out, mergeSamples(run.nodes)...)
	}
	return out
}

// mergeEvents k-way merges the per-node event streams of one run by
// (time, node, seq). Each per-node stream is already sorted by (time,
// seq): a node's events are emitted by its shard engine in nondecreasing
// virtual time with a monotonic per-node counter.
func mergeEvents(nodes []*Node) []Event {
	total := 0
	for _, n := range nodes {
		total += len(n.events)
	}
	out := make([]Event, 0, total)
	idx := make([]int, len(nodes))
	for len(out) < total {
		best := -1
		for ni, n := range nodes {
			i := idx[ni]
			if i >= len(n.events) {
				continue
			}
			if best < 0 || eventLess(n.events[i], nodes[best].events[idx[best]]) {
				best = ni
			}
		}
		out = append(out, nodes[best].events[idx[best]])
		idx[best]++
	}
	return out
}

func eventLess(a, b Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.seq < b.seq
}

// mergeSamples is mergeEvents for the metric series.
func mergeSamples(nodes []*Node) []Sample {
	total := 0
	for _, n := range nodes {
		total += len(n.samples)
	}
	out := make([]Sample, 0, total)
	idx := make([]int, len(nodes))
	for len(out) < total {
		best := -1
		for ni, n := range nodes {
			i := idx[ni]
			if i >= len(n.samples) {
				continue
			}
			if best < 0 || sampleLess(n.samples[i], nodes[best].samples[idx[best]]) {
				best = ni
			}
		}
		out = append(out, nodes[best].samples[idx[best]])
		idx[best]++
	}
	return out
}

func sampleLess(a, b Sample) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.seq < b.seq
}
