package trace_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"openmxsim/internal/sim"
	"openmxsim/internal/trace"
)

// TestMergeCanonicalOrder pins the exporters' ordering contract: events
// and samples come back merged by (run, time, node, emission index), no
// matter which order the per-node handles were written in.
func TestMergeCanonicalOrder(t *testing.T) {
	rec := trace.New(trace.Config{Events: true, SampleEvery: sim.Microsecond})
	hs := rec.Start(3)
	// Write the nodes in a deliberately scrambled global order; only each
	// node's own stream is time-ordered, as the shard engines guarantee.
	hs[2].Event(5*sim.Microsecond, trace.EvIRQ, 0)
	hs[0].Event(3*sim.Microsecond, trace.EvRingDrop, 1)
	hs[1].Event(3*sim.Microsecond, trace.EvIRQ, 1)
	hs[0].Event(5*sim.Microsecond, trace.EvIRQ, 2)
	hs[0].Event(5*sim.Microsecond, trace.EvPortDrop, 1)

	evs := rec.Events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	type key struct {
		at   sim.Time
		node int
		name string
	}
	want := []key{
		{3 * sim.Microsecond, 0, "ring_drop"},
		{3 * sim.Microsecond, 1, "irq"},
		{5 * sim.Microsecond, 0, "irq"},
		{5 * sim.Microsecond, 0, "port_drop"}, // same (t, node): emission order
		{5 * sim.Microsecond, 2, "irq"},
	}
	for i, w := range want {
		got := key{evs[i].At, evs[i].Node, evs[i].Name}
		if got != w {
			t.Errorf("event %d = %+v, want %+v", i, got, w)
		}
	}

	hs[1].Sample(trace.Sample{At: 2 * sim.Microsecond, Interrupts: 7})
	hs[0].Sample(trace.Sample{At: 2 * sim.Microsecond, Interrupts: 3})
	ss := rec.Samples()
	if len(ss) != 2 || ss[0].Node != 0 || ss[1].Node != 1 {
		t.Fatalf("samples not merged by node at equal time: %+v", ss)
	}
	if ss[0].Run != 0 || ss[0].Interrupts != 3 {
		t.Errorf("sample stamping wrong: %+v", ss[0])
	}
}

// TestRunsAreSequential pins the multi-run layout: each Start claims the
// next run index, and exporters emit runs in order.
func TestRunsAreSequential(t *testing.T) {
	rec := trace.New(trace.Config{Events: true})
	a := rec.Start(1)
	a[0].Event(9*sim.Microsecond, trace.EvIRQ, 0)
	b := rec.Start(1)
	b[0].Event(1*sim.Microsecond, trace.EvIRQ, 0)
	if rec.Runs() != 2 {
		t.Fatalf("Runs() = %d, want 2", rec.Runs())
	}
	evs := rec.Events()
	if len(evs) != 2 || evs[0].Run != 0 || evs[1].Run != 1 {
		t.Fatalf("runs not emitted in claim order: %+v", evs)
	}
	if evs[0].At != 9*sim.Microsecond {
		t.Errorf("run 0's later event must precede run 1's earlier one")
	}
}

// TestNilHandleIsFree is the hot-path contract: with tracing disabled
// every emit site is a nil-receiver no-op that allocates nothing.
func TestNilHandleIsFree(t *testing.T) {
	var n *trace.Node
	allocs := testing.AllocsPerRun(200, func() {
		n.Event(sim.Microsecond, trace.EvIRQ, 1)
		n.Sample(trace.Sample{At: sim.Microsecond})
	})
	if allocs != 0 {
		t.Errorf("nil handle emitted %v allocs/op, want 0", allocs)
	}
	var rec *trace.Recorder
	if rec.Events() != nil || rec.Samples() != nil || rec.Runs() != 0 || rec.SampleEvery() != 0 {
		t.Error("nil recorder accessors must return zero values")
	}
}

// TestEventsGate pins Config.Events: a sampling-only recorder drops
// timeline events but still records samples.
func TestEventsGate(t *testing.T) {
	rec := trace.New(trace.Config{SampleEvery: sim.Microsecond})
	hs := rec.Start(1)
	hs[0].Event(sim.Microsecond, trace.EvIRQ, 0)
	hs[0].Sample(trace.Sample{At: sim.Microsecond})
	if got := len(rec.Events()); got != 0 {
		t.Errorf("events-off recorder kept %d events", got)
	}
	if got := len(rec.Samples()); got != 1 {
		t.Errorf("events-off recorder lost samples: got %d, want 1", got)
	}
}

// TestChromeTraceFormat checks the exported timeline is a well-formed
// Chrome trace-event document: one traceEvents array, per-run
// process_name metadata, named instant events with decoded IRQ causes,
// counter tracks for samples, and fixed-point microsecond timestamps.
func TestChromeTraceFormat(t *testing.T) {
	rec := trace.New(trace.Config{Events: true, SampleEvery: sim.Microsecond})
	hs := rec.Start(2)
	hs[0].Event(1500, trace.EvIRQ, 1) // 1500 ns -> ts "1.500", cause "marked"
	hs[1].Event(2*sim.Microsecond, trace.EvRingDrop, 3)
	hs[0].Sample(trace.Sample{At: 4 * sim.Microsecond, Interrupts: 2, CoalesceDelayNS: 75000})

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	if doc.TraceEvents[0]["ph"] != "M" || doc.TraceEvents[0]["name"] != "process_name" {
		t.Errorf("first record must be process_name metadata, got %+v", doc.TraceEvents[0])
	}
	out := buf.String()
	for _, want := range []string{
		`"ts":1.500`,          // fixed-point µs, never float-printed
		`"cause":"marked"`,    // EvIRQ Arg decoded
		`"name":"ring_drop"`,  // kind names exported
		`"coalesce_delay_us"`, // sample counter track
		`"ph":"C"`,            // counter phase present
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %s", want)
		}
	}
}

// TestSeriesExports pins the series file formats: the CSV header
// column-for-column, and JSON emitting [] (not null) when empty.
func TestSeriesExports(t *testing.T) {
	rec := trace.New(trace.Config{SampleEvery: sim.Microsecond})
	hs := rec.Start(1)
	hs[0].Sample(trace.Sample{At: sim.Microsecond, Interrupts: 1, PacketsIn: 2})

	var csv bytes.Buffer
	if err := rec.WriteSeriesCSV(&csv); err != nil {
		t.Fatalf("WriteSeriesCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	wantHeader := "run,t_ns,node,interrupts,coalesce_delay_ns,packets_in,packets_out,queue_frames,port_drops,ring_drops,retransmits,backoffs,give_ups,pull_retries,feedback_steps,feedback_clamps"
	if len(lines) != 2 || lines[0] != wantHeader {
		t.Errorf("CSV = %q, want header %q + 1 row", csv.String(), wantHeader)
	}

	var empty bytes.Buffer
	if err := trace.New(trace.Config{}).WriteSeriesJSON(&empty); err != nil {
		t.Fatalf("WriteSeriesJSON: %v", err)
	}
	if got := strings.TrimSpace(empty.String()); got != "[]" {
		t.Errorf("empty series JSON = %q, want []", got)
	}
}

// TestExportBytesIndependentOfWriteInterleaving is the unit-level half of
// the par-determinism contract: two recorders holding identical per-node
// streams produce byte-identical exports even when the global interleaving
// of writes differed (as it does across shard layouts).
func TestExportBytesIndependentOfWriteInterleaving(t *testing.T) {
	build := func(order []int) *trace.Recorder {
		rec := trace.New(trace.Config{Events: true, SampleEvery: sim.Microsecond})
		hs := rec.Start(2)
		for _, step := range order {
			switch step {
			case 0:
				hs[0].Event(sim.Microsecond, trace.EvIRQ, 0)
			case 1:
				hs[1].Event(sim.Microsecond, trace.EvIRQ, 2)
			case 2:
				hs[0].Sample(trace.Sample{At: 2 * sim.Microsecond, Interrupts: 1})
			case 3:
				hs[1].Sample(trace.Sample{At: 2 * sim.Microsecond, Interrupts: 4})
			}
		}
		return rec
	}
	// Per-node streams identical; cross-node write order reversed.
	a, b := build([]int{0, 2, 1, 3}), build([]int{1, 3, 0, 2})
	var ta, tb bytes.Buffer
	if err := a.WriteChromeTrace(&ta); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteChromeTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ta.Bytes(), tb.Bytes()) {
		t.Error("trace bytes depend on cross-node write interleaving")
	}
	var sa, sb bytes.Buffer
	if err := a.WriteSeriesCSV(&sa); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteSeriesCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa.Bytes(), sb.Bytes()) {
		t.Error("series bytes depend on cross-node write interleaving")
	}
}
