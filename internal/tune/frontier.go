// Package tune closes the loop the paper's title opens: *finding* the
// tradeoff between host interrupt load and MPI latency, not just
// enumerating it. It has three layers:
//
//   - Analysis: Frontier extracts the Pareto-optimal set of a sweep over
//     (interrupt load, latency), tags dominated points, selects the knee
//     (the frontier point farthest from the chord between the frontier's
//     endpoints — the canonical "best compromise"), and scalarizes the
//     two objectives so callers can dial latency- vs load-priority.
//   - Search: Search drives the sweep executor adaptively — coarse grid,
//     successive halving over strategies, local refinement around the
//     incumbent knee — converging to the exhaustive frontier's knee in a
//     fraction of the evaluations, deterministically.
//   - Runtime: the chosen point is turned into a nic.FeedbackGoal, the
//     target the closed-loop StrategyFeedback firmware walks its delay
//     toward at run time.
//
// All analysis is a pure function of sweep results, so equal inputs give
// byte-identical JSON/CSV regardless of worker count or machine.
package tune

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"openmxsim/internal/sweep"
)

// Point is one sweep result positioned in the tradeoff plane.
type Point struct {
	sweep.Result
	// Load is the interrupt-load objective: interrupts/second when the
	// sweep measured rate (Grid.Rate), interrupts/message otherwise.
	Load float64 `json:"load"`
	// LatencyUS is the latency objective in microseconds.
	LatencyUS float64 `json:"latency_us"`
	// Dominated marks points beaten on both objectives by another point
	// (errored points are always dominated).
	Dominated bool `json:"dominated"`
	// Knee marks the selected knee point (at most one per analysis).
	Knee bool `json:"knee"`
}

// objectives extracts the (load, latency) pair of a result. useRate picks
// the load axis for the whole result set: the stream interrupt rate
// (interrupts/sec) when the sweep measured it, interrupts per message
// from the ping-pong otherwise. The choice is per analysis, not per
// point, so one point's legitimately-zero measured rate is never silently
// swapped for a value in different units.
func objectives(r sweep.Result, useRate bool) (load, latencyUS float64) {
	if useRate {
		load = r.RateIntrPerSec
	} else {
		load = r.IntrPerMsg
	}
	return load, float64(r.LatencyNS) / 1000
}

// Tradeoff is the analysis of one result set: every input point tagged
// with its position relative to the Pareto frontier.
type Tradeoff struct {
	// Points holds all input points in input order.
	Points []Point `json:"points"`
	// Front indexes the Pareto-optimal points in Points, sorted by
	// latency ascending (load therefore descending).
	Front []int `json:"front"`
	// KneeIdx indexes the knee point in Points (-1 when no valid point).
	KneeIdx int `json:"knee_idx"`
}

// Frontier analyzes a sweep outcome: it computes the Pareto-optimal set
// over (interrupt load, latency), tags dominated points, and selects the
// knee. A point is kept on the frontier iff no other point is at least as
// good on both objectives and strictly better on one; among exact
// duplicates the first in input order is kept. Errored points never reach
// the frontier.
func Frontier(rs sweep.Results) *Tradeoff {
	t := &Tradeoff{Points: make([]Point, len(rs)), KneeIdx: -1}
	useRate := false
	for _, r := range rs {
		if r.RateIntrPerSec > 0 {
			useRate = true
			break
		}
	}
	valid := make([]int, 0, len(rs))
	for i, r := range rs {
		load, lat := objectives(r, useRate)
		t.Points[i] = Point{Result: r, Load: load, LatencyUS: lat, Dominated: true}
		if r.Err == "" {
			valid = append(valid, i)
		}
	}
	if len(valid) == 0 {
		return t
	}

	// Sort by (latency asc, load asc, input order) and sweep: a point is
	// non-dominated iff its load is strictly below every earlier (i.e.
	// latency-no-worse) point's best load.
	sort.SliceStable(valid, func(a, b int) bool {
		pa, pb := t.Points[valid[a]], t.Points[valid[b]]
		if pa.LatencyUS != pb.LatencyUS {
			return pa.LatencyUS < pb.LatencyUS
		}
		if pa.Load != pb.Load {
			return pa.Load < pb.Load
		}
		return valid[a] < valid[b]
	})
	best := math.Inf(1)
	for _, i := range valid {
		if t.Points[i].Load < best {
			best = t.Points[i].Load
			t.Points[i].Dominated = false
			t.Front = append(t.Front, i)
		}
	}
	t.KneeIdx = t.knee()
	if t.KneeIdx >= 0 {
		t.Points[t.KneeIdx].Knee = true
	}
	return t
}

// normalizer returns the frontier's objective extents, for mapping both
// axes onto [0,1]. Degenerate (flat) axes normalize to zero span.
func (t *Tradeoff) normalizer() (loadMin, loadSpan, latMin, latSpan float64) {
	loadMin, latMin = math.Inf(1), math.Inf(1)
	loadMax, latMax := math.Inf(-1), math.Inf(-1)
	for _, i := range t.Front {
		p := t.Points[i]
		loadMin, loadMax = math.Min(loadMin, p.Load), math.Max(loadMax, p.Load)
		latMin, latMax = math.Min(latMin, p.LatencyUS), math.Max(latMax, p.LatencyUS)
	}
	return loadMin, loadMax - loadMin, latMin, latMax - latMin
}

// knee selects the frontier point with the greatest perpendicular distance
// to the chord between the frontier's endpoints, in normalized objective
// space. With fewer than three frontier points it falls back to the
// balanced scalarization (Score(0.5)). Ties keep the earliest input point.
func (t *Tradeoff) knee() int {
	if len(t.Front) == 0 {
		return -1
	}
	if len(t.Front) < 3 {
		return t.scoreIdx(0.5)
	}
	loadMin, loadSpan, latMin, latSpan := t.normalizer()
	if loadSpan == 0 || latSpan == 0 {
		return t.scoreIdx(0.5)
	}
	norm := func(i int) (x, y float64) {
		p := t.Points[i]
		return (p.LatencyUS - latMin) / latSpan, (p.Load - loadMin) / loadSpan
	}
	// Front is sorted by latency asc, so its ends are the min-latency and
	// min-load extremes of the frontier.
	x0, y0 := norm(t.Front[0])
	x1, y1 := norm(t.Front[len(t.Front)-1])
	dx, dy := x1-x0, y1-y0
	chord := math.Hypot(dx, dy)
	bestIdx, bestDist := -1, -1.0
	for _, i := range t.Front {
		x, y := norm(i)
		d := math.Abs(dx*(y0-y)-dy*(x0-x)) / chord
		if d > bestDist {
			bestDist, bestIdx = d, i
		}
	}
	return bestIdx
}

// Knee returns the knee point; ok is false when the analysis has no valid
// point.
func (t *Tradeoff) Knee() (Point, bool) {
	if t.KneeIdx < 0 {
		return Point{}, false
	}
	return t.Points[t.KneeIdx], true
}

// scoreOf scalarizes one point against the frontier's extents:
// w*latency + (1-w)*load, both axes normalized to the frontier's span.
// Dominated points outside the frontier's extent legitimately score
// above 1. w is clamped to [0,1].
func (t *Tradeoff) scoreOf(p Point, latencyWeight float64) float64 {
	w := math.Min(math.Max(latencyWeight, 0), 1)
	loadMin, loadSpan, latMin, latSpan := t.normalizer()
	var lat, load float64
	if latSpan > 0 {
		lat = (p.LatencyUS - latMin) / latSpan
	}
	if loadSpan > 0 {
		load = (p.Load - loadMin) / loadSpan
	}
	return w*lat + (1-w)*load
}

// scoreIdx is Score without the Point copy: the index of the frontier
// point minimizing the scalarized objective, -1 on an empty frontier.
func (t *Tradeoff) scoreIdx(latencyWeight float64) int {
	bestIdx, bestScore := -1, math.Inf(1)
	for _, i := range t.Front {
		if s := t.scoreOf(t.Points[i], latencyWeight); s < bestScore {
			bestScore, bestIdx = s, i
		}
	}
	return bestIdx
}

// Score scalarizes the two objectives and returns the frontier point that
// minimizes latencyWeight*latency + (1-latencyWeight)*load, both axes
// normalized to the frontier's extent. latencyWeight 1 chases pure
// latency, 0 pure interrupt load, 0.5 the balanced compromise; values are
// clamped to [0,1]. ok is false on an empty frontier.
func (t *Tradeoff) Score(latencyWeight float64) (Point, bool) {
	i := t.scoreIdx(latencyWeight)
	if i < 0 {
		return Point{}, false
	}
	return t.Points[i], true
}

// FrontPoints returns the Pareto-optimal points, latency ascending.
func (t *Tradeoff) FrontPoints() []Point {
	pts := make([]Point, len(t.Front))
	for k, i := range t.Front {
		pts[k] = t.Points[i]
	}
	return pts
}

// JSON renders the analysis as indented JSON; equal inputs yield
// byte-identical output.
func (t *Tradeoff) JSON() ([]byte, error) {
	c := *t
	if c.Points == nil {
		c.Points = []Point{}
	}
	if c.Front == nil {
		c.Front = []int{}
	}
	return json.MarshalIndent(&c, "", "  ")
}

// WriteJSON writes the JSON form followed by a newline.
func (t *Tradeoff) WriteJSON(w io.Writer) error {
	b, err := t.JSON()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// tradeoffCSVHeader names the CSV columns, mirroring the sweep schema's
// identity columns plus the tradeoff tags.
var tradeoffCSVHeader = []string{
	"index", "strategy", "delay_us", "size_bytes", "seed", "nodes",
	"bg_streams", "latency_us", "load", "dominated", "knee", "error",
}

// WriteCSV writes the tagged points as comma-separated values with a
// header row, in input order.
func (t *Tradeoff) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(tradeoffCSVHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, p := range t.Points {
		cells := []string{
			strconv.Itoa(p.Index), p.Strategy, f(p.DelayUS),
			strconv.Itoa(p.SizeBytes), strconv.FormatUint(p.Seed, 10),
			strconv.Itoa(p.Nodes), strconv.Itoa(p.BgStreams),
			f(p.LatencyUS), f(p.Load),
			strconv.FormatBool(p.Dominated), strconv.FormatBool(p.Knee),
			p.Err,
		}
		if err := cw.Write(cells); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSV renders the analysis as a CSV string.
func (t *Tradeoff) CSV() string {
	var b strings.Builder
	if err := t.WriteCSV(&b); err != nil {
		return fmt.Sprintf("error: %v", err)
	}
	return b.String()
}
