package tune

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"openmxsim/internal/nic"
	"openmxsim/internal/sim"
	"openmxsim/internal/sweep"
)

// Spec describes one tuning problem: a workload (message size, cluster
// shape, background load), a search space (strategies crossed with a
// discrete delay lattice), an evaluation budget, and the latency-weight
// the caller dials. The zero Spec tunes the paper platform's 0-byte
// ping-pong over the four fixed strategies and a 0-100 us lattice.
type Spec struct {
	// Size is the message size in bytes. Zero is a valid workload (the
	// paper's minimum message), not a default sentinel.
	Size int `json:"size_bytes"`
	// Nodes is the cluster size (default 2, raised for background load).
	Nodes int `json:"nodes"`
	// BgStreams adds background bulk senders congesting the receiver.
	BgStreams int `json:"bg_streams"`
	// DropProb, when > 0, tunes under a bursty-loss scenario of this
	// stationary rate (sweep.Grid.DropProb semantics): the knee the
	// search converges to is then the lossy-fabric knee, which can sit
	// at a very different delay than the clean one. Burst is the mean
	// loss-episode length (<= 1 = uniform loss).
	DropProb float64 `json:"drop_prob"`
	Burst    float64 `json:"burst"`
	// Iters is the ping-pong iteration count per evaluation (default 30).
	Iters int `json:"iters"`
	// Seed drives every evaluation (default 1); equal Specs converge to
	// the same point bit for bit.
	Seed uint64 `json:"seed"`
	// Rate additionally measures the stream interrupt rate at every
	// evaluated point, making interrupts/sec the load objective (roughly
	// doubles the per-point cost; off, the load objective is the
	// ping-pong's interrupts per message).
	Rate bool `json:"rate"`
	// RateWarmup and RateMeasure bound the rate windows when Rate is on
	// (defaults 10 ms and 50 ms, as in sweep.Grid).
	RateWarmup  sim.Time `json:"rate_warmup_ns"`
	RateMeasure sim.Time `json:"rate_measure_ns"`

	// Strategies is the strategy axis (default disabled, timeout,
	// openmx, stream). Strategies that ignore the delay (disabled) cost
	// one evaluation instead of one per lattice point.
	Strategies []nic.Strategy `json:"strategies"`
	// Delays is the discrete delay lattice the search refines over
	// (default 0-100 us every 5 us). It is sorted and deduplicated.
	Delays []sim.Time `json:"delays_ns"`

	// MaxEvals bounds the number of simulated points (the budget).
	// Default: 30% of the exhaustive cartesian size, but at least 8.
	MaxEvals int `json:"max_evals"`
	// LatencyWeight dials the scalarized objective used to rank
	// strategies during halving and to pick Outcome.Best. The zero value
	// selects the balanced default 0.5; use a small positive value (e.g.
	// 0.01) to chase pure interrupt load, 1 for pure latency.
	LatencyWeight float64 `json:"latency_weight"`
	// Workers sizes the sweep worker pool per round (0 = GOMAXPROCS).
	// Excluded from JSON: the outcome is identical at any worker count.
	Workers int `json:"-"`
	// Par shards each evaluated cluster across this many engines
	// (sweep.Grid.Par). Excluded from JSON for the same reason as Workers:
	// the outcome is identical at any parallelism.
	Par int `json:"-"`
	// Observer, when non-nil, receives every evaluated point's result the
	// moment its simulation completes (sweep.Observer semantics: worker
	// goroutines, completion order, Index still carrying the per-batch
	// position — the Outcome reindexes afterwards). Execution-only, like
	// Workers and Par: it never affects the outcome and never reaches the
	// JSON form.
	Observer sweep.Observer `json:"-"`
}

// normalized fills defaulted Spec fields; the delay lattice comes back
// sorted and deduplicated.
func (s Spec) normalized() Spec {
	if s.Iters <= 0 {
		s.Iters = 30
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.RateWarmup <= 0 {
		s.RateWarmup = 10 * sim.Millisecond
	}
	if s.RateMeasure <= 0 {
		s.RateMeasure = 50 * sim.Millisecond
	}
	// Burst only means anything under loss; canonicalize so a clean Spec
	// has one JSON form regardless of how the caller spelled "no loss".
	if s.DropProb <= 0 {
		s.Burst = 0
	} else if s.Burst <= 1 {
		s.Burst = 1
	}
	if len(s.Strategies) == 0 {
		s.Strategies = []nic.Strategy{
			nic.StrategyDisabled, nic.StrategyTimeout,
			nic.StrategyOpenMX, nic.StrategyStream,
		}
	}
	if len(s.Delays) == 0 {
		for d := sim.Time(0); d <= 100*sim.Microsecond; d += 5 * sim.Microsecond {
			s.Delays = append(s.Delays, d)
		}
	}
	lattice := append([]sim.Time(nil), s.Delays...)
	sort.Slice(lattice, func(a, b int) bool { return lattice[a] < lattice[b] })
	dedup := lattice[:0]
	for i, d := range lattice {
		if i == 0 || d != lattice[i-1] {
			dedup = append(dedup, d)
		}
	}
	s.Delays = dedup
	if s.MaxEvals <= 0 {
		s.MaxEvals = 3 * len(s.Strategies) * len(s.Delays) / 10
		if s.MaxEvals < 8 {
			s.MaxEvals = 8
		}
	}
	if s.LatencyWeight == 0 {
		s.LatencyWeight = 0.5
	}
	return s
}

// validate rejects specs the sweep executor would refuse, before any
// simulation runs.
func (s Spec) validate() error {
	if s.Size < 0 {
		return fmt.Errorf("tune: negative message size %d", s.Size)
	}
	if s.BgStreams < 0 {
		return fmt.Errorf("tune: negative background stream count %d", s.BgStreams)
	}
	if s.Nodes != 0 && s.Nodes < 2 {
		return fmt.Errorf("tune: node count %d (the ping-pong needs two nodes)", s.Nodes)
	}
	for _, st := range s.Strategies {
		if !st.Known() {
			return fmt.Errorf("tune: unknown strategy %d", int(st))
		}
	}
	for _, d := range s.Delays {
		if d < 0 {
			return fmt.Errorf("tune: negative delay %d in lattice", d)
		}
	}
	if s.LatencyWeight < 0 || s.LatencyWeight > 1 {
		return fmt.Errorf("tune: latency weight %g outside [0,1]", s.LatencyWeight)
	}
	if s.DropProb < 0 || s.DropProb >= 1 {
		return fmt.Errorf("tune: drop probability %g outside [0,1)", s.DropProb)
	}
	if s.Burst < 0 {
		return fmt.Errorf("tune: negative burst length %g", s.Burst)
	}
	return nil
}

// delaySensitive reports whether a strategy's behaviour depends on the
// coalescing delay at all; insensitive strategies are evaluated at a
// single lattice point.
func delaySensitive(s nic.Strategy) bool { return s != nic.StrategyDisabled }

// Outcome is the result of one Search: every evaluated point (in
// evaluation order), the tradeoff analysis over them, the chosen knee and
// weighted-best points, and the feedback goal derived from the knee. The
// encoding is deterministic: equal Specs yield byte-identical JSON at any
// worker count.
type Outcome struct {
	Spec Spec `json:"spec"`
	// Evaluated lists the simulated points in evaluation order,
	// reindexed sequentially.
	Evaluated sweep.Results `json:"evaluated"`
	// Evals is len(Evaluated); Exhaustive the cartesian size an
	// exhaustive sweep of the same space would cost.
	Evals      int `json:"evals"`
	Exhaustive int `json:"exhaustive"`
	// Tradeoff is the frontier analysis over Evaluated.
	Tradeoff *Tradeoff `json:"tradeoff"`
	// Knee is the chord-distance knee of the evaluated frontier; Best
	// the Score(LatencyWeight) minimizer. They often coincide.
	Knee Point `json:"knee"`
	Best Point `json:"best"`
	// Feedback is the closed-loop goal derived from the knee, ready for
	// cluster.Config.Feedback with Strategy = StrategyFeedback.
	Feedback nic.FeedbackGoal `json:"feedback"`
}

// JSON renders the outcome as indented JSON; equal Specs yield
// byte-identical output at any worker count.
func (o *Outcome) JSON() ([]byte, error) {
	c := *o
	if c.Evaluated == nil {
		c.Evaluated = sweep.Results{}
	}
	return json.MarshalIndent(&c, "", "  ")
}

// WriteJSON writes the JSON form followed by a newline.
func (o *Outcome) WriteJSON(w io.Writer) error {
	b, err := o.JSON()
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// FeedbackGoalFor derives the closed-loop runtime goal from a chosen
// tradeoff point: hold the interrupt rate at the point's measured load
// and keep delivery latency under the point's measured latency. When the
// load objective is interrupts/message (no rate measurement), the rate
// target is approximated from the ping-pong period (one message each way
// per two one-way latencies).
func FeedbackGoalFor(p Point) nic.FeedbackGoal {
	g := nic.FeedbackGoal{MaxLatency: sim.Time(p.LatencyNS)}
	switch {
	case p.RateIntrPerSec > 0:
		g.TargetIntrPerSec = p.RateIntrPerSec
	case p.LatencyNS > 0:
		g.TargetIntrPerSec = p.IntrPerMsg * float64(sim.Second) / (2 * float64(p.LatencyNS))
	}
	return g
}

// Canonical returns the spec in content-address form: every defaulted
// field filled — so equivalent spellings of the same tuning problem
// collide on one cache key — and the execution-only knobs (Workers, Par,
// Observer) cleared, because the outcome is bit-identical at any worker
// count and parallelism and must not split a result cache by machine
// shape.
func (s Spec) Canonical() Spec {
	s = s.normalized()
	s.Workers, s.Par, s.Observer = 0, 0, nil
	return s
}

// searcher carries one Search invocation's state.
type searcher struct {
	ctx       context.Context
	spec      Spec
	lattice   []sim.Time
	seen      map[searchKey]bool
	evaluated sweep.Results
}

type searchKey struct {
	strategy nic.Strategy
	delay    sim.Time
}

// Search finds the tradeoff for a workload without sweeping the whole
// space: a coarse pass samples every strategy across the delay lattice
// (endpoints always included), successive halving then concentrates the
// budget on the best-scoring strategies at ever finer strides, and a
// final local pass refines the lattice neighborhood of the incumbent
// knee. Every decision is a pure function of deterministic sweep results,
// so the same Spec converges to the same point at any worker count. The
// search stops at Spec.MaxEvals simulated points.
func Search(spec Spec) (*Outcome, error) {
	return SearchContext(context.Background(), spec)
}

// SearchContext is Search under external supervision: ctx cancellation is
// observed at the sweep executor's between-points seam, so every
// completed evaluation is bit-identical to an uncancelled search's. A
// cancelled search returns a nil Outcome and an error wrapping ctx's
// (errors.Is against context.Canceled / DeadlineExceeded works) — unlike
// a sweep, a truncated search has no meaningful partial answer, because
// the knee moves as points land.
func SearchContext(ctx context.Context, spec Spec) (*Outcome, error) {
	spec = spec.normalized()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	s := &searcher{ctx: ctx, spec: spec, lattice: spec.Delays, seen: map[searchKey]bool{}}

	// Phase 1 — coarse: every strategy at both lattice endpoints and the
	// midpoint, so the frontier's extremes (which anchor the knee chord)
	// are represented from the start.
	half := (len(s.lattice) - 1) / 2
	coarse := []int{0, half, len(s.lattice) - 1}
	for _, st := range spec.Strategies {
		if err := s.evalBatch(st, coarse); err != nil {
			return nil, err
		}
	}

	// Phase 2 — successive halving: rank strategies by their best
	// scalarized score, keep the better half, and sample midpoints
	// around each survivor's best delay at a halving stride.
	survivors := append([]nic.Strategy(nil), spec.Strategies...)
	for stride := half; stride >= 1 && s.budgetLeft(); stride /= 2 {
		if len(survivors) > 1 {
			survivors = s.keepBest((len(survivors)+1)/2, survivors)
		}
		for _, st := range survivors {
			bi, ok := s.bestIndexFor(st)
			if !ok {
				continue
			}
			if err := s.evalBatch(st, []int{bi - stride, bi + stride}); err != nil {
				return nil, err
			}
		}
	}

	// Phase 3 — local refinement: walk the +-1/+-2 lattice neighborhood
	// of the incumbent knee (and weighted best) until the neighborhood
	// is exhausted or the budget runs out. Each pass evaluates at least
	// one fresh point or stops, so the loop terminates.
	for s.budgetLeft() {
		t := Frontier(s.evaluated)
		fresh := false
		for _, idx := range []int{t.KneeIdx, t.scoreIdx(spec.LatencyWeight)} {
			if idx < 0 {
				continue
			}
			p := t.Points[idx]
			st, li, ok := s.locate(p)
			if !ok || !delaySensitive(st) {
				continue
			}
			n := len(s.evaluated)
			if err := s.evalBatch(st, []int{li - 2, li - 1, li + 1, li + 2}); err != nil {
				return nil, err
			}
			if len(s.evaluated) > n {
				fresh = true
			}
		}
		if !fresh {
			break
		}
	}

	out := &Outcome{
		Spec:       spec,
		Evaluated:  s.evaluated,
		Evals:      len(s.evaluated),
		Exhaustive: len(spec.Strategies) * len(s.lattice),
		Tradeoff:   Frontier(s.evaluated),
	}
	if p, ok := out.Tradeoff.Knee(); ok {
		out.Knee = p
		out.Feedback = FeedbackGoalFor(p)
	}
	if p, ok := out.Tradeoff.Score(spec.LatencyWeight); ok {
		out.Best = p
	}
	return out, nil
}

// budgetLeft reports whether another evaluation fits in the budget.
func (s *searcher) budgetLeft() bool { return len(s.evaluated) < s.spec.MaxEvals }

// evalBatch simulates the strategy at the given lattice indices (clipped,
// deduplicated, unseen-only, truncated to the budget) through the sweep
// executor, and appends the results in lattice order.
func (s *searcher) evalBatch(st nic.Strategy, indices []int) error {
	space := s.lattice
	if !delaySensitive(st) {
		space = s.lattice[:1]
	}
	picked := map[int]bool{}
	var delays []sim.Time
	for _, i := range indices {
		if i < 0 {
			i = 0
		}
		if i >= len(space) {
			i = len(space) - 1
		}
		if picked[i] || s.seen[searchKey{st, space[i]}] {
			continue
		}
		if len(s.evaluated)+len(delays) >= s.spec.MaxEvals {
			break
		}
		picked[i] = true
		delays = append(delays, space[i])
	}
	if len(delays) == 0 {
		return nil
	}
	sort.Slice(delays, func(a, b int) bool { return delays[a] < delays[b] })

	g := sweep.Grid{
		Strategies:  []nic.Strategy{st},
		Delays:      delays,
		Sizes:       []int{s.spec.Size},
		Seeds:       []uint64{s.spec.Seed},
		Iters:       s.spec.Iters,
		Rate:        s.spec.Rate,
		RateWarmup:  s.spec.RateWarmup,
		RateMeasure: s.spec.RateMeasure,
		Par:         s.spec.Par,
	}
	if s.spec.Nodes > 0 {
		g.Nodes = []int{s.spec.Nodes}
	}
	if s.spec.BgStreams > 0 {
		g.BgStreams = []int{s.spec.BgStreams}
	}
	if s.spec.DropProb > 0 {
		g.DropProb = []float64{s.spec.DropProb}
		g.Burst = []float64{s.spec.Burst}
	}
	rs, err := sweep.RunContext(s.ctx, g, s.spec.Workers, s.spec.Observer)
	if err != nil {
		return err
	}
	for _, r := range rs {
		r.Index = len(s.evaluated)
		s.evaluated = append(s.evaluated, r)
	}
	for _, d := range delays {
		s.seen[searchKey{st, d}] = true
	}
	return nil
}

// keepBest ranks the strategies by their best scalarized score over the
// points evaluated so far and keeps the top n, preserving Spec order
// among the kept (deterministic tie-break).
func (s *searcher) keepBest(n int, strategies []nic.Strategy) []nic.Strategy {
	t := Frontier(s.evaluated)
	type ranked struct {
		st    nic.Strategy
		best  float64
		order int
	}
	rs := make([]ranked, 0, len(strategies))
	for oi, st := range strategies {
		r := ranked{st: st, best: math.Inf(1), order: oi}
		name := st.String()
		for _, p := range t.Points {
			if p.Err == "" && p.Strategy == name {
				if sc := t.scoreOf(p, s.spec.LatencyWeight); sc < r.best {
					r.best = sc
				}
			}
		}
		rs = append(rs, r)
	}
	sort.SliceStable(rs, func(a, b int) bool {
		if rs[a].best != rs[b].best {
			return rs[a].best < rs[b].best
		}
		return rs[a].order < rs[b].order
	})
	if n > len(rs) {
		n = len(rs)
	}
	kept := make([]nic.Strategy, 0, n)
	for _, r := range rs[:n] {
		kept = append(kept, r.st)
	}
	// Restore Spec order so later batches evaluate in a stable sequence.
	sort.SliceStable(kept, func(a, b int) bool {
		return specOrder(s.spec.Strategies, kept[a]) < specOrder(s.spec.Strategies, kept[b])
	})
	return kept
}

func specOrder(strategies []nic.Strategy, st nic.Strategy) int {
	for i, v := range strategies {
		if v == st {
			return i
		}
	}
	return len(strategies)
}

// bestIndexFor returns the lattice index of the strategy's best-scoring
// evaluated delay.
func (s *searcher) bestIndexFor(st nic.Strategy) (int, bool) {
	t := Frontier(s.evaluated)
	name := st.String()
	bi, found := -1, false
	bestScore := math.Inf(1)
	for _, p := range t.Points {
		if p.Err != "" || p.Strategy != name {
			continue
		}
		if sc := t.scoreOf(p, s.spec.LatencyWeight); sc < bestScore {
			if _, li, ok := s.locate(p); ok {
				bestScore, bi, found = sc, li, true
			}
		}
	}
	return bi, found
}

// locate maps an evaluated point back to its (strategy, lattice index).
// The delay comparison reproduces the sweep's ns -> us float conversion
// instead of truncating the float back to ns, so lattice delays that are
// not whole microseconds still match exactly.
func (s *searcher) locate(p Point) (nic.Strategy, int, bool) {
	st, err := nic.ParseStrategy(p.Strategy)
	if err != nil {
		return 0, 0, false
	}
	for i, v := range s.lattice {
		if float64(v)/float64(sim.Microsecond) == p.DelayUS {
			return st, i, true
		}
	}
	return st, 0, false
}
