package tune

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"

	"openmxsim/internal/nic"
	"openmxsim/internal/sim"
	"openmxsim/internal/sweep"
)

// synth builds a synthetic result at (load intr/msg, latency us).
func synth(i int, strategy string, delayUS, load, latUS float64) sweep.Result {
	return sweep.Result{
		Index: i, Strategy: strategy, DelayUS: delayUS, SizeBytes: 128,
		IRQ: "round-robin", Queues: 1, Seed: 1, Nodes: 2,
		LatencyNS: int64(latUS * 1000), IntrPerMsg: load,
	}
}

func TestFrontierTagsDominance(t *testing.T) {
	rs := sweep.Results{
		synth(0, "disabled", 0, 2.0, 10), // min latency end
		synth(1, "timeout", 75, 1.0, 80), // min load end
		synth(2, "openmx", 25, 1.2, 12),  // the knee-ish compromise
		synth(3, "timeout", 25, 1.8, 40), // dominated by 2 on both axes
	}
	tr := Frontier(rs)
	wantFront := map[int]bool{0: true, 1: true, 2: true}
	for i, p := range tr.Points {
		if p.Dominated == wantFront[i] {
			t.Errorf("point %d: dominated = %v, want %v", i, p.Dominated, !wantFront[i])
		}
	}
	if len(tr.Front) != 3 {
		t.Fatalf("frontier size %d, want 3", len(tr.Front))
	}
	// Front is latency-ascending: disabled, openmx, timeout.
	if tr.Front[0] != 0 || tr.Front[1] != 2 || tr.Front[2] != 1 {
		t.Errorf("front order %v, want [0 2 1]", tr.Front)
	}
	knee, ok := tr.Knee()
	if !ok || knee.Index != 2 {
		t.Errorf("knee = %+v (ok=%v), want point 2 (the compromise)", knee.Index, ok)
	}
}

func TestFrontierErroredPointsNeverSurface(t *testing.T) {
	bad := synth(1, "timeout", 25, 0.1, 1) // would dominate everything...
	bad.Err = "panic: synthetic"           // ...but it failed
	rs := sweep.Results{synth(0, "openmx", 25, 1.0, 10), bad}
	tr := Frontier(rs)
	if !tr.Points[1].Dominated || tr.Points[1].Knee {
		t.Error("errored point surfaced on the frontier")
	}
	if len(tr.Front) != 1 || tr.Front[0] != 0 {
		t.Errorf("front %v, want [0]", tr.Front)
	}
}

func TestFrontierDuplicatesKeepFirst(t *testing.T) {
	rs := sweep.Results{
		synth(0, "openmx", 25, 1.0, 10),
		synth(1, "openmx", 25, 1.0, 10),
	}
	tr := Frontier(rs)
	if tr.Points[0].Dominated || !tr.Points[1].Dominated {
		t.Errorf("duplicate handling wrong: %v / %v",
			tr.Points[0].Dominated, tr.Points[1].Dominated)
	}
}

func TestScoreDialsTheWeight(t *testing.T) {
	rs := sweep.Results{
		synth(0, "disabled", 0, 2.0, 10),
		synth(1, "timeout", 75, 1.0, 80),
		synth(2, "openmx", 25, 1.2, 12),
	}
	tr := Frontier(rs)
	if p, ok := tr.Score(1); !ok || p.Index != 0 {
		t.Errorf("Score(1) = point %d, want 0 (pure latency)", p.Index)
	}
	if p, ok := tr.Score(0.001); !ok || p.Index != 1 {
		t.Errorf("Score(~0) = point %d, want 1 (pure load)", p.Index)
	}
	if p, ok := tr.Score(0.5); !ok || p.Index != 2 {
		t.Errorf("Score(0.5) = point %d, want 2 (compromise)", p.Index)
	}
}

func TestFrontierEmptyAndSerialization(t *testing.T) {
	tr := Frontier(nil)
	if _, ok := tr.Knee(); ok || tr.KneeIdx != -1 {
		t.Error("empty analysis produced a knee")
	}
	b, err := tr.JSON()
	if err != nil || !bytes.Contains(b, []byte(`"points": []`)) {
		t.Errorf("empty JSON = %s, %v", b, err)
	}

	tr = Frontier(sweep.Results{synth(0, "openmx", 25, 1.0, 10)})
	csvStr := tr.CSV()
	lines := strings.Split(strings.TrimSpace(csvStr), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 row", len(lines))
	}
	if got, want := len(strings.Split(lines[1], ",")), len(tradeoffCSVHeader); got != want {
		t.Errorf("CSV row has %d cells, header names %d", got, want)
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []Spec{
		{Size: -1},
		{BgStreams: -1},
		{Nodes: 1},
		{Strategies: []nic.Strategy{nic.Strategy(99)}},
		{Delays: []sim.Time{-sim.Microsecond}},
		{LatencyWeight: 1.5},
	}
	for i, spec := range cases {
		if _, err := Search(spec); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, spec)
		}
	}
}

// searchSpecSmall is a fast search problem for tests: 9-point lattice,
// three strategies, short ping-pongs, no rate measurement.
func searchSpecSmall(workers int) Spec {
	var delays []sim.Time
	for d := sim.Time(0); d <= 80*sim.Microsecond; d += 10 * sim.Microsecond {
		delays = append(delays, d)
	}
	return Spec{
		Size:  128,
		Iters: 4,
		Strategies: []nic.Strategy{
			nic.StrategyDisabled, nic.StrategyTimeout, nic.StrategyOpenMX,
		},
		Delays:   delays,
		MaxEvals: 10,
		Workers:  workers,
	}
}

func TestSearchStaysInBudgetAndChooses(t *testing.T) {
	out, err := Search(searchSpecSmall(0))
	if err != nil {
		t.Fatal(err)
	}
	if out.Evals == 0 || out.Evals > 10 {
		t.Fatalf("evals = %d, want 1..10", out.Evals)
	}
	if out.Evals != len(out.Evaluated) {
		t.Errorf("Evals %d != len(Evaluated) %d", out.Evals, len(out.Evaluated))
	}
	if out.Exhaustive != 3*9 {
		t.Errorf("Exhaustive = %d, want 27", out.Exhaustive)
	}
	if out.Knee.Strategy == "" || out.Best.Strategy == "" {
		t.Fatalf("search chose nothing: knee=%+v best=%+v", out.Knee, out.Best)
	}
	if out.Feedback.TargetIntrPerSec <= 0 || out.Feedback.MaxLatency <= 0 {
		t.Errorf("feedback goal not derived: %+v", out.Feedback)
	}
	for i, r := range out.Evaluated {
		if r.Index != i {
			t.Errorf("evaluated[%d] carries index %d", i, r.Index)
		}
		if r.Err != "" {
			t.Errorf("evaluated[%d] failed: %s", i, r.Err)
		}
	}
}

// TestSearchRefinesSubMicrosecondLattice is the regression test for
// locate() truncating the sweep's float microsecond delay back to ns: a
// lattice of non-whole-microsecond delays must still map evaluated points
// back to lattice indices, so the halving/refinement phases run (with the
// truncation bug the search silently degenerated to the coarse pass).
func TestSearchRefinesSubMicrosecondLattice(t *testing.T) {
	out, err := Search(Spec{
		Size:       128,
		Iters:      2,
		Strategies: []nic.Strategy{nic.StrategyTimeout},
		Delays: []sim.Time{
			0, 1500, 3000, 4500, 6000, 7500, // ns, none a whole us
		},
		MaxEvals: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The coarse pass evaluates 3 points (endpoints + midpoint); any
	// evaluation beyond that proves refinement located its incumbents.
	if out.Evals <= 3 {
		t.Errorf("evals = %d, want > 3 (refinement skipped: locate failed?)", out.Evals)
	}
}

// TestSearchMatchesSmokeGolden keeps the library in lockstep with the CI
// smoke job: the Spec below is exactly what
//
//	omxtune -strategies timeout,openmx -delays 0:60:15 -budget 8 -iters 4 -json
//
// builds, and the committed golden file is that command's output. A
// mismatch here means either the search changed behaviour (regenerate the
// golden deliberately) or determinism broke (fix it).
func TestSearchMatchesSmokeGolden(t *testing.T) {
	out, err := Search(Spec{
		Size:  128,
		Iters: 4,
		Strategies: []nic.Strategy{
			nic.StrategyTimeout, nic.StrategyOpenMX,
		},
		Delays: []sim.Time{
			0, 15 * sim.Microsecond, 30 * sim.Microsecond,
			45 * sim.Microsecond, 60 * sim.Microsecond,
		},
		MaxEvals: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := out.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/smoke.golden.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("outcome diverged from testdata/smoke.golden.json; regenerate with\n  go run ./cmd/omxtune -strategies timeout,openmx -delays 0:60:15 -budget 8 -iters 4 -json > internal/tune/testdata/smoke.golden.json\nif the change is intentional.\n--- got ---\n%.2000s", got.String())
	}
}

// TestSearchDeterministicAcrossWorkerCounts is the tuner's contract
// (mirroring the sweep-determinism CI diff): the same Spec must converge
// to the identical outcome — chosen point and full JSON — at any worker
// count.
func TestSearchDeterministicAcrossWorkerCounts(t *testing.T) {
	serial, err := Search(searchSpecSmall(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Search(searchSpecSmall(8))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Knee.Strategy != parallel.Knee.Strategy || serial.Knee.DelayUS != parallel.Knee.DelayUS {
		t.Fatalf("worker count changed the knee: 1 worker -> %s@%gus, 8 workers -> %s@%gus",
			serial.Knee.Strategy, serial.Knee.DelayUS,
			parallel.Knee.Strategy, parallel.Knee.DelayUS)
	}
	js, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	jp, err := parallel.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js, jp) {
		t.Fatalf("worker count changed the outcome JSON:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", js, jp)
	}
}

// TestSearchContextCancelled pins the supervision seam: a search under an
// already-cancelled context evaluates nothing and surfaces the context's
// error (never a half-built Outcome), and a mid-search cancel triggered
// from the observer stops the search with the same error shape — the
// server's job supervisor relies on both to distinguish "user cancelled"
// from "search failed".
func TestSearchContextCancelled(t *testing.T) {
	spec := Spec{
		Strategies: []nic.Strategy{nic.StrategyTimeout, nic.StrategyOpenMX},
		Delays:     []sim.Time{0, 15 * sim.Microsecond, 30 * sim.Microsecond},
		Iters:      2,
		MaxEvals:   8,
	}

	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if out, err := SearchContext(pre, spec); err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled SearchContext = (%v, %v), want context.Canceled", out, err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	evals := 0
	spec.Workers = 1
	spec.Observer = func(sweep.Result) {
		evals++
		if evals == 2 {
			cancel()
		}
	}
	out, err := SearchContext(ctx, spec)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-search cancel returned (%v, %v), want context.Canceled", out, err)
	}
	if evals >= spec.MaxEvals {
		t.Fatalf("observer saw %d evaluations; the cancel did not stop the search early", evals)
	}
}

// TestSpecCanonicalStripsExecutionKnobs pins the cache-key form: two
// spellings of the same problem canonicalize identically whatever their
// Workers/Par/Observer, so a shared result cache never splits by machine
// shape.
func TestSpecCanonicalStripsExecutionKnobs(t *testing.T) {
	a := Spec{Size: 128}.Canonical()
	b := Spec{Size: 128, Workers: 7, Par: 4, Observer: func(sweep.Result) {}}.Canonical()
	if b.Workers != 0 || b.Par != 0 || b.Observer != nil {
		t.Fatalf("Canonical kept execution knobs: %+v", b)
	}
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("equivalent specs canonicalized differently:\n%s\n%s", aj, bj)
	}
}
