// Package units holds byte-size constants and human-readable formatting for
// durations, sizes, and rates used throughout the benchmark output.
package units

import "fmt"

// Byte-size constants.
const (
	B   = 1
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
)

// FormatBytes renders a byte count in the paper's style (1B, 128B, 32kiB,
// 1MiB).
func FormatBytes(n int) string {
	switch {
	case n >= GiB && n%GiB == 0:
		return fmt.Sprintf("%dGiB", n/GiB)
	case n >= MiB && n%MiB == 0:
		return fmt.Sprintf("%dMiB", n/MiB)
	case n >= KiB && n%KiB == 0:
		return fmt.Sprintf("%dkiB", n/KiB)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// FormatDuration renders virtual nanoseconds with a natural unit.
func FormatDuration(ns int64) string {
	switch {
	case ns >= 10_000_000_000:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1_000_000_000:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	case ns >= 1_000_000:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1_000:
		return fmt.Sprintf("%.1fus", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// FormatRate renders an events-per-second rate in the paper's style
// (490k, 14507, 452).
func FormatRate(perSec float64) string {
	switch {
	case perSec >= 100_000:
		return fmt.Sprintf("%.0fk", perSec/1000)
	case perSec >= 10_000:
		return fmt.Sprintf("%.0f", perSec)
	default:
		return fmt.Sprintf("%.0f", perSec)
	}
}

// FormatCount renders a large count in the paper's style (86.4k, 1.93M).
func FormatCount(n float64) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%.2fM", n/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fk", n/1e3)
	default:
		return fmt.Sprintf("%.0f", n)
	}
}
