package units

import "testing"

func TestFormatBytes(t *testing.T) {
	cases := map[int]string{
		0:           "0B",
		1:           "1B",
		128:         "128B",
		1024:        "1kiB",
		32 * KiB:    "32kiB",
		234 * KiB:   "234kiB",
		MiB:         "1MiB",
		GiB:         "1GiB",
		1500:        "1500B",
		3 * KiB / 2: "1536B",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[int64]string{
		5:              "5ns",
		1500:           "1.5us",
		705_000:        "705.0us",
		2_500_000:      "2.50ms",
		1_234_000_000:  "1.234s",
		32_750_000_000: "32.75s",
	}
	for in, want := range cases {
		if got := FormatDuration(in); got != want {
			t.Errorf("FormatDuration(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatRate(t *testing.T) {
	cases := map[float64]string{
		490_000: "490k",
		14_507:  "14507",
		452:     "452",
	}
	for in, want := range cases {
		if got := FormatRate(in); got != want {
			t.Errorf("FormatRate(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatCount(t *testing.T) {
	cases := map[float64]string{
		86_400:    "86.4k",
		1_930_000: "1.93M",
		42:        "42",
	}
	for in, want := range cases {
		if got := FormatCount(in); got != want {
			t.Errorf("FormatCount(%v) = %q, want %q", in, got, want)
		}
	}
}
