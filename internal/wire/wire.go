// Package wire defines the MXoE-style Open-MX wire format used by the
// simulated stack: an Ethernet frame carrying a fixed 32-byte Open-MX header
// and an optional payload.
//
// The format follows the structure of the Myrinet Express over Ethernet
// specification as described in the paper: eager small messages (single
// packet), eager medium fragments, and the rendezvous / pull-request /
// pull-reply / notify packets of the large-message protocol, plus acks and
// connection management. The one addition over stock MXoE is the
// latency-sensitive marker flag set by the sender driver, which is the
// paper's contribution (Section III-B).
//
// # Frame ownership and recycling
//
// Frames on the simulated wire are reference-counted and recycled through a
// per-cluster Pool so the per-packet hot path allocates nothing in steady
// state. The ownership rules are:
//
//   - Pool.Get returns a frame holding one reference, owned by the creator.
//   - Handing a frame to the wire (stack -> NIC -> fabric -> receiving NIC)
//     transfers that reference; whoever drops the frame (fabric fault
//     injection, a full receive ring) or finishes processing it (the
//     receive handler, after the protocol effect ran) calls Release.
//   - A holder that needs the frame beyond the transfer it initiated — the
//     reliable channel retaining packets for retransmission, fabric
//     duplicate delivery — takes an extra reference with Ref and Releases
//     it when done.
//   - Release returns the frame to the pool it came from when the count
//     reaches zero, so cross-node flows are safe regardless of which node
//     releases last.
//
// Frames built with NewFrame (tests, callers outside a cluster) have no
// pool; Ref/Release on them are no-ops and the GC reclaims them as usual.
// Frame payloads alias the sender's buffer (frames never own payload
// memory), which is also why size-only simulation carries PayloadLen with a
// nil Payload.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// EtherTypeOMX is Open-MX's registered EtherType.
const EtherTypeOMX = 0x86DF

// EthernetHeaderLen is the classic dst+src+type framing length.
const EthernetHeaderLen = 14

// HeaderLen is the fixed Open-MX header size carried inside the MTU.
const HeaderLen = 32

// Version is the wire protocol version this package implements.
const Version = 1

// PacketType enumerates the Open-MX packet kinds.
type PacketType uint8

const (
	// TypeInvalid marks an intentionally malformed packet (used by the
	// interrupt-overhead microbenchmark: dropped immediately on receive).
	TypeInvalid PacketType = iota
	// TypeConnect opens a communication channel between two endpoints.
	TypeConnect
	// TypeConnectReply completes the connect handshake.
	TypeConnectReply
	// TypeTiny is an eager message up to 32 bytes (data inline with event).
	TypeTiny
	// TypeSmall is an eager message up to 128 bytes, one packet.
	TypeSmall
	// TypeMediumFrag is one fragment of an eager message up to 32 KiB.
	TypeMediumFrag
	// TypeRendezvous announces a large message (> 32 KiB).
	TypeRendezvous
	// TypePullRequest asks the sender for a block of up to 32 fragments.
	TypePullRequest
	// TypePullReply carries one fragment of pulled data.
	TypePullReply
	// TypeNotify tells the sender the pull completed.
	TypeNotify
	// TypeAck acknowledges received eager messages (cumulative).
	TypeAck
	// TypeNack requests retransmission after a drop was detected.
	TypeNack
	typeCount
)

var typeNames = [...]string{
	"invalid", "connect", "connect-reply", "tiny", "small", "medium-frag",
	"rendezvous", "pull-request", "pull-reply", "notify", "ack", "nack",
}

func (t PacketType) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Valid reports whether t is a defined packet type.
func (t PacketType) Valid() bool { return t > TypeInvalid && t < typeCount }

// Header flags.
const (
	// FlagLatencySensitive is the paper's marker: the sender driver sets it
	// on packets the NIC should interrupt for as soon as their DMA
	// completes (small messages, last medium fragment, rendezvous, pull
	// requests, last pull reply of a block, notify).
	FlagLatencySensitive uint8 = 1 << 0
	// FlagLastFragment marks the final fragment of a medium message or the
	// final reply of a pull block (informational; marking policy decides
	// whether it also carries FlagLatencySensitive).
	FlagLastFragment uint8 = 1 << 1
)

// Header is the fixed-size Open-MX packet header.
//
// Layout (32 bytes, big-endian):
//
//	0     version
//	1     type
//	2     flags
//	3     src endpoint
//	4     dst endpoint
//	5     reserved
//	6-7   payload length
//	8-11  sequence number (per-channel, eager reliability)
//	12-15 message id
//	16-23 match information (MX 64-bit tag)
//	24-27 aux (message total length, pull offset, or cumulative ack seq)
//	28-29 fragment / block index
//	30-31 fragment count / block fragment count
type Header struct {
	Version   uint8
	Type      PacketType
	Flags     uint8
	SrcEP     uint8
	DstEP     uint8
	Length    uint16
	Seq       uint32
	MsgID     uint32
	Match     uint64
	Aux       uint32
	FragIndex uint16
	FragCount uint16
}

// Marked reports whether the latency-sensitive flag is set.
func (h *Header) Marked() bool { return h.Flags&FlagLatencySensitive != 0 }

// Errors returned by Decode and Validate.
var (
	ErrShortBuffer = errors.New("wire: buffer shorter than header")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrBadType     = errors.New("wire: invalid packet type")
)

// Encode writes the header into buf, which must be at least HeaderLen bytes.
func (h *Header) Encode(buf []byte) error {
	if len(buf) < HeaderLen {
		return ErrShortBuffer
	}
	buf[0] = h.Version
	buf[1] = uint8(h.Type)
	buf[2] = h.Flags
	buf[3] = h.SrcEP
	buf[4] = h.DstEP
	buf[5] = 0
	binary.BigEndian.PutUint16(buf[6:8], h.Length)
	binary.BigEndian.PutUint32(buf[8:12], h.Seq)
	binary.BigEndian.PutUint32(buf[12:16], h.MsgID)
	binary.BigEndian.PutUint64(buf[16:24], h.Match)
	binary.BigEndian.PutUint32(buf[24:28], h.Aux)
	binary.BigEndian.PutUint16(buf[28:30], h.FragIndex)
	binary.BigEndian.PutUint16(buf[30:32], h.FragCount)
	return nil
}

// Decode parses a header from buf without validating semantic fields.
func (h *Header) Decode(buf []byte) error {
	if len(buf) < HeaderLen {
		return ErrShortBuffer
	}
	h.Version = buf[0]
	h.Type = PacketType(buf[1])
	h.Flags = buf[2]
	h.SrcEP = buf[3]
	h.DstEP = buf[4]
	h.Length = binary.BigEndian.Uint16(buf[6:8])
	h.Seq = binary.BigEndian.Uint32(buf[8:12])
	h.MsgID = binary.BigEndian.Uint32(buf[12:16])
	h.Match = binary.BigEndian.Uint64(buf[16:24])
	h.Aux = binary.BigEndian.Uint32(buf[24:28])
	h.FragIndex = binary.BigEndian.Uint16(buf[28:30])
	h.FragCount = binary.BigEndian.Uint16(buf[30:32])
	return nil
}

// Validate checks version and type. The receive handler drops packets that
// fail validation (this is the path the overhead microbenchmark exercises).
func (h *Header) Validate() error {
	if h.Version != Version {
		return ErrBadVersion
	}
	if !h.Type.Valid() {
		return ErrBadType
	}
	return nil
}

// MAC is an Ethernet hardware address.
type MAC [6]byte

func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// NodeMAC returns a deterministic locally-administered MAC for node i.
func NodeMAC(i int) MAC {
	return MAC{0x02, 0x4d, 0x58, byte(i >> 16), byte(i >> 8), byte(i)}
}

// NodeIndex recovers the node index NodeMAC encoded in the last three
// bytes (fault-scenario hooks key per-node state by it).
func (m MAC) NodeIndex() int {
	return int(m[3])<<16 | int(m[4])<<8 | int(m[5])
}

// Frame is one Ethernet frame in flight. Payload may be nil for size-only
// simulation (large benchmark runs), in which case PayloadLen carries the
// logical size; when Payload is non-nil the two agree.
//
// Frames obtained from a Pool are reference-counted; see the package
// comment for the ownership rules.
type Frame struct {
	Src, Dst   MAC
	Header     Header
	Payload    []byte
	PayloadLen int

	pool *Pool
	refs int32
}

// Ref takes an additional reference on a pooled frame. It is a no-op for
// frames built outside a pool. The count is manipulated atomically: under
// the sharded engine a frame's sender (retransmission retain) and receiver
// (delivery release) may live on different shards.
//
//omxlint:hotpath
func (f *Frame) Ref() {
	if f.pool != nil {
		atomic.AddInt32(&f.refs, 1) //omxlint:allow goroutine: frame refcounts/pool cross shard goroutines under -par (Share contract, audited in PR 6; race-checked in CI)
	}
}

// Release drops one reference; the last release returns the frame to its
// pool. Releasing a frame built outside a pool is a no-op, so protocol code
// may release unconditionally.
//
//omxlint:hotpath
func (f *Frame) Release() {
	if f.pool == nil {
		return
	}
	n := atomic.AddInt32(&f.refs, -1) //omxlint:allow goroutine: frame refcounts/pool cross shard goroutines under -par (Share contract, audited in PR 6; race-checked in CI)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("wire: frame released more times than referenced")
	}
	f.Payload = nil // never pin sender buffers from the free list
	f.pool.put(f)
}

// Pool is a frame free list. Each cluster owns one, shared by every stack,
// NIC, and the switch, so a frame allocated on the sending node is recycled
// when the receiving node releases it. A pool is single-threaded by default
// (the cluster's one engine serializes access, and concurrent sweeps use
// one pool per cluster); a cluster sharding across engines calls Share once
// at build time to put the free list behind a mutex.
type Pool struct {
	shared bool
	mu     sync.Mutex //omxlint:allow goroutine: frame refcounts/pool cross shard goroutines under -par (Share contract, audited in PR 6; race-checked in CI)
	free   []*Frame
}

// NewPool returns an empty frame pool.
func NewPool() *Pool { return &Pool{} }

// Share makes the pool safe for concurrent Get/Release from multiple shard
// goroutines. Call before first use; there is no way back.
func (p *Pool) Share() { p.shared = true }

// take pops a free frame, or nil when the list is empty.
//
//omxlint:hotpath
func (p *Pool) take() *Frame {
	if p.shared {
		p.mu.Lock() //omxlint:allow goroutine: frame refcounts/pool cross shard goroutines under -par (Share contract, audited in PR 6; race-checked in CI)
		defer p.mu.Unlock()
	}
	n := len(p.free)
	if n == 0 {
		return nil
	}
	f := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	return f
}

// put returns a dead frame to the free list.
//
//omxlint:hotpath
func (p *Pool) put(f *Frame) {
	if p.shared {
		p.mu.Lock() //omxlint:allow goroutine: frame refcounts/pool cross shard goroutines under -par (Share contract, audited in PR 6; race-checked in CI)
		defer p.mu.Unlock()
	}
	//omxlint:allow hotpathalloc: free-list growth is amortized; the frame round trip is guarded at <= 1 alloc by AllocsPerRun
	p.free = append(p.free, f)
}

// Get returns a frame initialized exactly like NewFrame, holding one
// reference, recycling a free frame when available.
//
//omxlint:hotpath
func (p *Pool) Get(src, dst MAC, h Header, payload []byte, payloadLen int) *Frame {
	f := p.take()
	if f == nil {
		//omxlint:allow hotpathalloc: cold-path pool refill; steady state recycles (frame round trip guarded at <= 1 alloc)
		f = &Frame{pool: p}
	}
	if payload != nil {
		payloadLen = len(payload)
	}
	h.Version = Version
	h.Length = uint16(payloadLen)
	f.Src, f.Dst = src, dst
	f.Header = h
	f.Payload = payload
	f.PayloadLen = payloadLen
	atomic.StoreInt32(&f.refs, 1) //omxlint:allow goroutine: frame refcounts/pool cross shard goroutines under -par (Share contract, audited in PR 6; race-checked in CI)
	return f
}

// Clone returns a pooled copy of f holding one reference (used by
// retransmission, which keeps the original retained while a copy travels).
func (p *Pool) Clone(f *Frame) *Frame {
	return p.Get(f.Src, f.Dst, f.Header, f.Payload, f.PayloadLen)
}

// NewFrame builds a frame and keeps Length/PayloadLen consistent.
func NewFrame(src, dst MAC, h Header, payload []byte, payloadLen int) *Frame {
	if payload != nil {
		payloadLen = len(payload)
	}
	h.Version = Version
	h.Length = uint16(payloadLen)
	return &Frame{Src: src, Dst: dst, Header: h, Payload: payload, PayloadLen: payloadLen}
}

// WireBytes is the frame's size on the wire: Ethernet framing + Open-MX
// header + payload. (Preamble/IFG overhead is charged by the link model.)
func (f *Frame) WireBytes() int {
	n := EthernetHeaderLen + HeaderLen + f.PayloadLen
	if n < 60 { // Ethernet minimum frame (without FCS)
		n = 60
	}
	return n
}

// Marked reports whether the frame carries the latency-sensitive marker.
func (f *Frame) Marked() bool { return f.Header.Marked() }

// EncodeFrame serializes the full frame (framing + header + payload) for
// tests that exercise the byte-level format end to end.
func EncodeFrame(f *Frame) []byte {
	buf := make([]byte, EthernetHeaderLen+HeaderLen+f.PayloadLen)
	copy(buf[0:6], f.Dst[:])
	copy(buf[6:12], f.Src[:])
	binary.BigEndian.PutUint16(buf[12:14], EtherTypeOMX)
	if err := f.Header.Encode(buf[EthernetHeaderLen:]); err != nil {
		panic(err) // buffer is sized above; cannot happen
	}
	if f.Payload != nil {
		copy(buf[EthernetHeaderLen+HeaderLen:], f.Payload)
	}
	return buf
}

// DecodeFrame parses bytes produced by EncodeFrame. The returned frame's
// payload is an independent copy of buf, so the caller may reuse buf freely;
// receive paths that control the buffer lifetime should prefer
// DecodeFrameNoCopy.
func DecodeFrame(buf []byte) (*Frame, error) {
	f, err := DecodeFrameNoCopy(buf)
	if err != nil {
		return nil, err
	}
	if f.PayloadLen > 0 {
		f.Payload = append([]byte(nil), f.Payload...)
	}
	return f, nil
}

// DecodeFrameNoCopy parses bytes produced by EncodeFrame without copying the
// payload: the returned frame's Payload aliases buf. The frame is only valid
// while buf is neither reused nor mutated — the zero-copy contract of a real
// driver processing a DMA ring slot in place. Callers that hand the frame
// beyond the buffer's lifetime must copy first (or use DecodeFrame).
func DecodeFrameNoCopy(buf []byte) (*Frame, error) {
	if len(buf) < EthernetHeaderLen+HeaderLen {
		return nil, ErrShortBuffer
	}
	if binary.BigEndian.Uint16(buf[12:14]) != EtherTypeOMX {
		return nil, fmt.Errorf("wire: not an Open-MX frame")
	}
	f := &Frame{}
	copy(f.Dst[:], buf[0:6])
	copy(f.Src[:], buf[6:12])
	if err := f.Header.Decode(buf[EthernetHeaderLen:]); err != nil {
		return nil, err
	}
	f.PayloadLen = int(f.Header.Length)
	rest := buf[EthernetHeaderLen+HeaderLen:]
	if len(rest) < f.PayloadLen {
		return nil, fmt.Errorf("wire: truncated payload: have %d want %d", len(rest), f.PayloadLen)
	}
	if f.PayloadLen > 0 {
		f.Payload = rest[:f.PayloadLen:f.PayloadLen]
	}
	return f, nil
}
