package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func sampleHeader() Header {
	return Header{
		Version:   Version,
		Type:      TypeMediumFrag,
		Flags:     FlagLatencySensitive | FlagLastFragment,
		SrcEP:     3,
		DstEP:     5,
		Length:    1468,
		Seq:       0xDEADBEEF,
		MsgID:     42,
		Match:     0x1122334455667788,
		Aux:       32768,
		FragIndex: 22,
		FragCount: 23,
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := sampleHeader()
	buf := make([]byte, HeaderLen)
	if err := h.Encode(buf); err != nil {
		t.Fatal(err)
	}
	var got Header
	if err := got.Decode(buf); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

// Property: every header round-trips through its wire encoding.
func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(typ, flags, src, dst uint8, length uint16, seq, msgID uint32,
		match uint64, aux uint32, fi, fc uint16) bool {
		h := Header{
			Version: Version, Type: PacketType(typ % uint8(typeCount)),
			Flags: flags, SrcEP: src, DstEP: dst, Length: length,
			Seq: seq, MsgID: msgID, Match: match, Aux: aux,
			FragIndex: fi, FragCount: fc,
		}
		buf := make([]byte, HeaderLen)
		if err := h.Encode(buf); err != nil {
			return false
		}
		var got Header
		if err := got.Decode(buf); err != nil {
			return false
		}
		return got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEncodeShortBuffer(t *testing.T) {
	h := sampleHeader()
	if err := h.Encode(make([]byte, HeaderLen-1)); err != ErrShortBuffer {
		t.Fatalf("err = %v, want ErrShortBuffer", err)
	}
	var g Header
	if err := g.Decode(make([]byte, 3)); err != ErrShortBuffer {
		t.Fatalf("decode err = %v, want ErrShortBuffer", err)
	}
}

func TestValidate(t *testing.T) {
	h := sampleHeader()
	if err := h.Validate(); err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
	bad := h
	bad.Version = 99
	if err := bad.Validate(); err != ErrBadVersion {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
	bad = h
	bad.Type = TypeInvalid
	if err := bad.Validate(); err != ErrBadType {
		t.Fatalf("err = %v, want ErrBadType", err)
	}
	bad.Type = typeCount
	if err := bad.Validate(); err != ErrBadType {
		t.Fatalf("err = %v, want ErrBadType", err)
	}
}

func TestMarked(t *testing.T) {
	h := Header{}
	if h.Marked() {
		t.Fatal("unmarked header reports Marked")
	}
	h.Flags = FlagLatencySensitive
	if !h.Marked() {
		t.Fatal("marked header reports !Marked")
	}
}

func TestPacketTypeString(t *testing.T) {
	if TypeSmall.String() != "small" {
		t.Errorf("TypeSmall = %q", TypeSmall.String())
	}
	if TypePullReply.String() != "pull-reply" {
		t.Errorf("TypePullReply = %q", TypePullReply.String())
	}
	if PacketType(200).String() != "type(200)" {
		t.Errorf("unknown type = %q", PacketType(200).String())
	}
}

func TestNodeMACDistinct(t *testing.T) {
	seen := map[MAC]bool{}
	for i := 0; i < 64; i++ {
		m := NodeMAC(i)
		if seen[m] {
			t.Fatalf("duplicate MAC for node %d", i)
		}
		seen[m] = true
	}
	if NodeMAC(0).String() != "02:4d:58:00:00:00" {
		t.Errorf("MAC string = %s", NodeMAC(0))
	}
}

func TestFrameWireBytes(t *testing.T) {
	h := Header{Type: TypeSmall}
	// Tiny frames are padded to the Ethernet minimum of 60 bytes.
	f := NewFrame(NodeMAC(0), NodeMAC(1), h, nil, 0)
	if f.WireBytes() != 60 {
		t.Errorf("empty frame wire bytes = %d, want 60", f.WireBytes())
	}
	f = NewFrame(NodeMAC(0), NodeMAC(1), h, nil, 1468)
	if want := EthernetHeaderLen + HeaderLen + 1468; f.WireBytes() != want {
		t.Errorf("1468B frame wire bytes = %d, want %d", f.WireBytes(), want)
	}
}

func TestNewFrameConsistency(t *testing.T) {
	h := Header{Type: TypeSmall}
	data := []byte("hello world")
	f := NewFrame(NodeMAC(0), NodeMAC(1), h, data, 999)
	if f.PayloadLen != len(data) {
		t.Errorf("PayloadLen = %d, want %d (payload wins over hint)", f.PayloadLen, len(data))
	}
	if int(f.Header.Length) != len(data) {
		t.Errorf("Header.Length = %d, want %d", f.Header.Length, len(data))
	}
	if f.Header.Version != Version {
		t.Errorf("Version not stamped")
	}
}

func TestFrameEncodeDecodeRoundTrip(t *testing.T) {
	h := sampleHeader()
	payload := bytes.Repeat([]byte{0xA5}, int(h.Length))
	f := NewFrame(NodeMAC(1), NodeMAC(2), h, payload, 0)
	buf := EncodeFrame(f)
	got, err := DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != f.Src || got.Dst != f.Dst {
		t.Errorf("MAC mismatch: %v->%v", got.Src, got.Dst)
	}
	if got.Header != f.Header {
		t.Errorf("header mismatch: %+v vs %+v", got.Header, f.Header)
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Error("payload mismatch")
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	if _, err := DecodeFrame(make([]byte, 10)); err == nil {
		t.Error("short frame accepted")
	}
	f := NewFrame(NodeMAC(0), NodeMAC(1), Header{Type: TypeSmall}, []byte("abc"), 0)
	buf := EncodeFrame(f)
	buf[12], buf[13] = 0x08, 0x00 // IPv4 ethertype
	if _, err := DecodeFrame(buf); err == nil {
		t.Error("non-OMX ethertype accepted")
	}
	buf = EncodeFrame(f)
	if _, err := DecodeFrame(buf[:len(buf)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
}

func TestDecodeFrameNoCopyAliases(t *testing.T) {
	h := Header{Type: TypeSmall, SrcEP: 1, DstEP: 2, Match: 42}
	payload := []byte("hello wire")
	buf := EncodeFrame(NewFrame(NodeMAC(0), NodeMAC(1), h, payload, 0))

	zc, err := DecodeFrameNoCopy(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(zc.Payload) != "hello wire" {
		t.Fatalf("zero-copy payload = %q", zc.Payload)
	}
	// The zero-copy payload must alias the input buffer...
	buf[EthernetHeaderLen+HeaderLen] = 'H'
	if string(zc.Payload) != "Hello wire" {
		t.Fatal("DecodeFrameNoCopy copied the payload")
	}
	// ...while the copying variant must stay independent.
	cp, err := DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	buf[EthernetHeaderLen+HeaderLen] = 'J'
	if string(cp.Payload) != "Hello wire" {
		t.Fatal("DecodeFrame aliased the input buffer")
	}
}

func TestPoolRecyclesFrames(t *testing.T) {
	p := NewPool()
	h := Header{Type: TypeSmall}
	f := p.Get(NodeMAC(0), NodeMAC(1), h, []byte("abc"), 0)
	if f.PayloadLen != 3 || f.Header.Length != 3 || f.Header.Version != Version {
		t.Fatalf("Get did not normalize frame: %+v", f)
	}
	f.Release()
	g := p.Get(NodeMAC(2), NodeMAC(3), Header{Type: TypeAck}, nil, 0)
	if g != f {
		t.Fatal("pool did not recycle the released frame")
	}
	if g.Payload != nil || g.PayloadLen != 0 || g.Header.Type != TypeAck {
		t.Fatalf("recycled frame not reset: %+v", g)
	}
	if g.Src != NodeMAC(2) || g.Dst != NodeMAC(3) {
		t.Fatalf("recycled frame kept stale addresses: %v -> %v", g.Src, g.Dst)
	}
}

func TestPoolRefCounting(t *testing.T) {
	p := NewPool()
	f := p.Get(NodeMAC(0), NodeMAC(1), Header{Type: TypeSmall}, nil, 8)
	f.Ref() // second holder (e.g. retransmit retention)
	f.Release()
	if g := p.Get(NodeMAC(0), NodeMAC(1), Header{Type: TypeSmall}, nil, 0); g == f {
		t.Fatal("frame returned to pool while still referenced")
	}
	f.Release()
	// Now it must be recyclable.
	seen := false
	for i := 0; i < 4; i++ {
		if p.Get(NodeMAC(0), NodeMAC(1), Header{Type: TypeSmall}, nil, 0) == f {
			seen = true
		}
	}
	if !seen {
		t.Fatal("frame never recycled after final release")
	}
}

func TestUnpooledFrameRefReleaseNoOp(t *testing.T) {
	f := NewFrame(NodeMAC(0), NodeMAC(1), Header{Type: TypeSmall}, nil, 4)
	f.Release()
	f.Release() // must not panic without a pool
	f.Ref()
}

func TestPoolOverReleasePanics(t *testing.T) {
	p := NewPool()
	f := p.Get(NodeMAC(0), NodeMAC(1), Header{Type: TypeSmall}, nil, 0)
	f.Release()
	// Re-acquire so refs is 1 again, then over-release.
	f = p.Get(NodeMAC(0), NodeMAC(1), Header{Type: TypeSmall}, nil, 0)
	f.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	f.Release()
}

// Steady-state frame round trips through the pool must not allocate.
func TestPoolZeroAllocSteadyState(t *testing.T) {
	p := NewPool()
	h := Header{Type: TypeSmall}
	if got := testing.AllocsPerRun(1000, func() {
		f := p.Get(NodeMAC(0), NodeMAC(1), h, nil, 64)
		f.Release()
	}); got != 0 {
		t.Fatalf("pooled Get+Release allocates %v objects/op, want 0", got)
	}
}
