// Package openmxsim reproduces the system and evaluation of "Finding a
// Tradeoff between Host Interrupt Load and MPI Latency over Ethernet"
// (Goglin & Furmento, IEEE Cluster 2009) as a deterministic discrete-event
// simulation: the Open-MX message-passing stack over generic Ethernet, a
// NIC model with the paper's marker-driven interrupt-coalescing firmwares,
// a host model with NAPI, C1E sleep and cache-bounce effects, a mini-MPI,
// and the NAS Parallel Benchmark workloads.
//
// The public API wires complete testbeds and runs the paper's experiments:
//
//	cfg := openmxsim.PaperPlatform()
//	cfg.Strategy = openmxsim.StrategyOpenMX
//	lat, _ := openmxsim.PingPong(cfg, []int{128}, 30)
//	fmt.Println(lat[128]) // one-way 128B latency in virtual ns
//
// All time is virtual (nanoseconds), so results are exact, reproducible,
// and immune to the host's GC or scheduling.
package openmxsim

import (
	"openmxsim/internal/cluster"
	"openmxsim/internal/exp"
	"openmxsim/internal/fabric"
	"openmxsim/internal/mpi"
	"openmxsim/internal/nas"
	"openmxsim/internal/nic"
	"openmxsim/internal/omx"
	"openmxsim/internal/params"
	"openmxsim/internal/sim"
	"openmxsim/internal/sweep"
	"openmxsim/internal/tune"
)

// Time is a virtual duration or timestamp in nanoseconds.
type Time = sim.Time

// Time unit constants.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Strategy selects the NIC interrupt-coalescing behaviour.
type Strategy = nic.Strategy

// The five coalescing strategies under study.
const (
	// StrategyDisabled interrupts per packet.
	StrategyDisabled = nic.StrategyDisabled
	// StrategyTimeout is classic delay-based coalescing (the default).
	StrategyTimeout = nic.StrategyTimeout
	// StrategyOpenMX is the paper's Algorithm 1 (marker-driven).
	StrategyOpenMX = nic.StrategyOpenMX
	// StrategyStream is the paper's Algorithm 2 (burst deferral).
	StrategyStream = nic.StrategyStream
	// StrategyAdaptive adapts the delay to traffic (Section VI).
	StrategyAdaptive = nic.StrategyAdaptive
	// StrategyFeedback is the closed-loop tuner extension: the firmware
	// walks its delay toward a goal (Config.Feedback) supplied by the
	// tuner — see Tune.
	StrategyFeedback = nic.StrategyFeedback
)

// ParseStrategy converts a strategy name ("disabled", "timeout", "openmx",
// "stream", "adaptive", "feedback") into a Strategy.
func ParseStrategy(name string) (Strategy, error) { return nic.ParseStrategy(name) }

// Config describes a simulated testbed; the zero value is not useful, start
// from PaperPlatform. Config.Parallelism shards the cluster across that
// many engines running conservatively in parallel (lookahead = the
// output-queued fabric's wire latency); results are bit-identical at any
// value, so it is purely a wall-clock knob for large clusters.
type Config = cluster.Config

// Cluster is a wired testbed (hosts, NICs, switch, Open-MX stacks).
type Cluster = cluster.Cluster

// PaperPlatform returns the paper's evaluation platform: two 8-core nodes
// with Myri-10G-like NICs at MTU 1500, 75 us default coalescing,
// round-robin IRQs, C1E sleep enabled.
func PaperPlatform() Config { return cluster.Paper() }

// NewCluster builds a testbed from cfg.
func NewCluster(cfg Config) *Cluster { return cluster.New(cfg) }

// DefaultParams returns the calibrated model parameter set; assign a
// modified copy to Config.Params to explore the design space.
func DefaultParams() *params.Params { return params.Default() }

// Topology selects the fabric switching model for Config.Topology: the
// zero value is the paper's ideal direct link, TopologyOutputQueued an
// output-queued switch with bounded drop-tail egress queues and per-port
// occupancy/drop/latency statistics for N-node congestion scenarios.
type Topology = fabric.Topology

// PortStats are the switch's per-egress-port counters (see Cluster.PortStats).
type PortStats = fabric.PortStats

// Fabric topology kinds and queue disciplines.
const (
	// TopologyDirect is the legacy ideal model (unbounded egress).
	TopologyDirect = fabric.TopologyDirect
	// TopologyOutputQueued bounds each egress port with a FIFO queue.
	TopologyOutputQueued = fabric.TopologyOutputQueued
	// DropTail rejects arrivals at a full egress queue.
	DropTail = fabric.DropTail
)

// NewWorld opens ranksPerNode endpoints per node on a fresh cluster and
// returns the MPI world spanning them.
func NewWorld(cfg Config, ranksPerNode int) (*Cluster, *mpi.World) {
	cl := cluster.New(cfg)
	eps := cl.OpenEndpoints(ranksPerNode)
	return cl, mpi.NewWorld(cl, eps)
}

// Rank is an MPI process; World is an MPI job. See internal/mpi for the
// full point-to-point and collective API.
type (
	Rank  = mpi.Rank
	World = mpi.World
	Comm  = mpi.Comm
)

// MarkPolicy controls which packets the sender flags latency-sensitive.
type MarkPolicy = omx.MarkPolicy

// DefaultMarkPolicy marks the paper's Section III-B set.
func DefaultMarkPolicy() MarkPolicy { return omx.DefaultMarkPolicy() }

// PingPong measures mean one-way transfer times (ns) between two ranks on
// different nodes for each message size.
func PingPong(cfg Config, sizes []int, iters int) (map[int]Time, error) {
	return exp.PingPongLatency(cfg, sizes, iters)
}

// MessageRate measures the sustained receiver-side message rate (msg/s)
// for a unidirectional stream of size-byte messages.
func MessageRate(cfg Config, size int, warmup, measure Time) float64 {
	return exp.MessageRate(cfg, size, warmup, measure)
}

// Background describes bulk streams congesting the ping-pong receiver's
// switch port (one sender per extra node).
type Background = sweep.Background

// PingPongLoaded is PingPong under background congestion: bg.Streams bulk
// senders on extra nodes share node 1's port with the latency-sensitive
// ping-pong. With bg.Streams == 0 it is exactly PingPong.
func PingPongLoaded(cfg Config, sizes []int, iters int, bg Background) (map[int]Time, error) {
	lat, _, _, err := sweep.RunPingPongLoaded(cfg, sizes, iters, bg)
	return lat, err
}

// IncastSpec describes an N-to-1 fan-in measurement; IncastResult is the
// receiver-side outcome, including switch-port congestion counters.
type (
	IncastSpec   = sweep.IncastSpec
	IncastResult = sweep.IncastResult
)

// Incast runs an N-to-1 fan-in measurement on a fresh cluster.
func Incast(spec IncastSpec) IncastResult { return sweep.RunIncast(spec) }

// NASResult is one NAS benchmark execution.
type NASResult = nas.Result

// RunNAS executes a NAS Parallel Benchmark (is, ft, cg, mg, ep, lu, bt,
// sp) of the given class ('S', 'W', 'A', 'B', 'C') with the given rank
// count on a fresh cluster.
func RunNAS(cfg Config, name string, class byte, ranks int) (*NASResult, error) {
	wl, err := nas.Get(name, class, ranks)
	if err != nil {
		return nil, err
	}
	return nas.Run(cfg, wl)
}

// NASBenchmarks lists the available benchmark names.
func NASBenchmarks() []string { return nas.Names() }

// Sweep types: a SweepGrid is a cartesian parameter space over strategy,
// delay, size, IRQ policy, queue count and seed; SweepResults is the
// ordered, JSON/CSV-serializable outcome.
type (
	SweepGrid    = sweep.Grid
	SweepPoint   = sweep.Point
	SweepResult  = sweep.Result
	SweepResults = sweep.Results
)

// Sweep expands the grid and runs every point in parallel on `workers`
// goroutines (0 = GOMAXPROCS), each on its own simulated cluster. Results
// come back in deterministic grid order: equal grids and seeds yield
// byte-identical serialized output regardless of worker count.
func Sweep(grid SweepGrid, workers int) (SweepResults, error) {
	return sweep.Run(grid, workers)
}

// Tuner types: a TuneSpec describes one tuning problem (workload, search
// space, budget, latency weight); a TuneOutcome is the search result; a
// Tradeoff is the Pareto analysis of a result set; a TradeoffPoint one
// tagged point; a FeedbackGoal the closed-loop runtime target for
// StrategyFeedback (Config.Feedback).
type (
	TuneSpec      = tune.Spec
	TuneOutcome   = tune.Outcome
	Tradeoff      = tune.Tradeoff
	TradeoffPoint = tune.Point
	FeedbackGoal  = nic.FeedbackGoal
)

// Frontier analyzes a sweep outcome: the Pareto-optimal set over
// (interrupt load, latency) with dominated-point tagging, knee selection
// (max distance to the frontier chord), and a Score(latencyWeight)
// scalarization to dial latency- vs load-priority.
func Frontier(rs SweepResults) *Tradeoff { return tune.Frontier(rs) }

// Tune finds the tradeoff for a workload adaptively: coarse grid,
// successive halving, local refinement around the incumbent knee — the
// exhaustive frontier's knee in a fraction of the evaluations. The same
// Spec converges to the same point at any worker count.
func Tune(spec TuneSpec) (*TuneOutcome, error) { return tune.Search(spec) }

// Experiment options and reports (the paper's tables and figures).
type (
	Options = exp.Options
	Report  = exp.Report
)

// Experiments lists the available experiment ids in the paper's order.
func Experiments() []string { return exp.IDs() }

// DescribeExperiment returns the one-line description of an experiment.
func DescribeExperiment(id string) string { return exp.Describe(id) }

// RunExperiment regenerates one of the paper's tables or figures.
func RunExperiment(id string, opts Options) (*Report, error) {
	r, err := exp.Get(id)
	if err != nil {
		return nil, err
	}
	return r(opts), nil
}
