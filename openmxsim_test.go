package openmxsim

import (
	"fmt"
	"testing"

	"openmxsim/internal/sim"
)

func TestPaperPlatformShape(t *testing.T) {
	cfg := PaperPlatform()
	if cfg.Nodes != 2 {
		t.Errorf("paper platform has %d nodes, want 2", cfg.Nodes)
	}
	cl := NewCluster(cfg)
	if len(cl.Hosts) != 2 || len(cl.Hosts[0].Cores) != 8 {
		t.Errorf("paper platform: %d hosts x %d cores, want 2x8", len(cl.Hosts), len(cl.Hosts[0].Cores))
	}
}

func TestParseStrategy(t *testing.T) {
	s, err := ParseStrategy("stream")
	if err != nil || s != StrategyStream {
		t.Fatalf("ParseStrategy(stream) = %v, %v", s, err)
	}
	if _, err := ParseStrategy("nope"); err == nil {
		t.Fatal("bogus strategy accepted")
	}
}

func TestPingPongLatencyOrdering(t *testing.T) {
	// The paper's core latency claim: for small messages,
	// disabled ~= openmx << timeout-75us.
	lat := map[Strategy]sim.Time{}
	for _, s := range []Strategy{StrategyTimeout, StrategyDisabled, StrategyOpenMX} {
		cfg := PaperPlatform()
		cfg.Strategy = s
		m, err := PingPong(cfg, []int{128}, 10)
		if err != nil {
			t.Fatal(err)
		}
		lat[s] = m[128]
	}
	if lat[StrategyTimeout] < 60*Microsecond {
		t.Errorf("timeout-75us small latency %v, want >= ~75us", lat[StrategyTimeout])
	}
	if lat[StrategyDisabled] > 20*Microsecond {
		t.Errorf("disabled small latency %v, want ~10us", lat[StrategyDisabled])
	}
	if lat[StrategyOpenMX] > 2*lat[StrategyDisabled] {
		t.Errorf("openmx latency %v not close to disabled %v", lat[StrategyOpenMX], lat[StrategyDisabled])
	}
}

func TestMessageRatePositive(t *testing.T) {
	cfg := PaperPlatform()
	rate := MessageRate(cfg, 128, 5*Millisecond, 20*Millisecond)
	if rate < 50_000 {
		t.Fatalf("128B message rate %.0f/s implausibly low", rate)
	}
}

func TestRunNASQuick(t *testing.T) {
	cfg := PaperPlatform()
	res, err := RunNAS(cfg, "is", 'S', 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 || res.Interrupts == 0 {
		t.Fatalf("suspicious NAS result: %+v", res)
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := Experiments()
	if len(ids) < 10 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	for _, id := range ids {
		if DescribeExperiment(id) == "" {
			t.Errorf("experiment %s has no description", id)
		}
	}
	if _, err := RunExperiment("bogus", Options{}); err == nil {
		t.Fatal("bogus experiment accepted")
	}
}

func TestRunExperimentOverhead(t *testing.T) {
	rep, err := RunExperiment("overhead", Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("overhead report has %d rows, want 4", len(rep.Rows))
	}
	if rep.String() == "" || rep.CSV() == "" {
		t.Fatal("empty report rendering")
	}
}

func TestSweepAPI(t *testing.T) {
	grid := SweepGrid{
		Strategies: []Strategy{StrategyDisabled, StrategyOpenMX},
		Sizes:      []int{128},
		Iters:      5,
	}
	res, err := Sweep(grid, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	for _, r := range res {
		if r.Err != "" || r.LatencyNS <= 0 {
			t.Errorf("bad sweep result: %+v", r)
		}
	}
}

// ExampleSweep runs a minimal three-strategy sweep in parallel and picks
// the strategy with the lowest small-message latency. All time in the
// simulator is virtual, so the output is exactly reproducible.
func ExampleSweep() {
	grid := SweepGrid{
		Strategies: []Strategy{StrategyDisabled, StrategyTimeout, StrategyOpenMX},
		Sizes:      []int{128},
		Iters:      8,
	}
	results, err := Sweep(grid, 0) // 0 = one worker per core
	if err != nil {
		panic(err)
	}
	best := results[0]
	for _, r := range results {
		if r.LatencyNS < best.LatencyNS {
			best = r
		}
	}
	fmt.Printf("%d points; lowest 128B latency: %s\n", len(results), best.Strategy)
	// Output: 3 points; lowest 128B latency: disabled
}

func TestTuneAPI(t *testing.T) {
	out, err := Tune(TuneSpec{
		Size:       128,
		Iters:      4,
		Strategies: []Strategy{StrategyTimeout, StrategyOpenMX},
		Delays:     []Time{0, 25 * Microsecond, 50 * Microsecond, 75 * Microsecond, 100 * Microsecond},
		MaxEvals:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Evals == 0 || out.Evals > 8 {
		t.Fatalf("evals = %d, want 1..8", out.Evals)
	}
	if out.Knee.Strategy == "" {
		t.Fatal("tune chose no knee")
	}
	// The frontier of the evaluated points must re-derive identically
	// through the public analysis entry point.
	tr := Frontier(out.Evaluated)
	k, ok := tr.Knee()
	if !ok || k.Strategy != out.Knee.Strategy || k.DelayUS != out.Knee.DelayUS {
		t.Errorf("Frontier re-analysis knee %s@%g differs from Tune's %s@%g",
			k.Strategy, k.DelayUS, out.Knee.Strategy, out.Knee.DelayUS)
	}
	// The derived goal plugs straight into a feedback-strategy config.
	cfg := PaperPlatform()
	cfg.Strategy = StrategyFeedback
	cfg.Feedback = out.Feedback
	lat, err := PingPong(cfg, []int{128}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if lat[128] <= 0 {
		t.Errorf("feedback ping-pong latency %v", lat[128])
	}
}
